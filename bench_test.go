package pef

import (
	"context"
	"fmt"
	"io"
	"testing"

	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/harness"
)

// benchExperiment runs one harness experiment per iteration; the bench
// names index the paper artifacts (see DESIGN.md experiment index). The
// measured quantity is the wall cost of regenerating the artifact; the
// experiment's own pass verdict is asserted.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(harness.Config{Seed: uint64(i) + 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s failed: %v", id, res.Notes)
		}
	}
}

// Table 1 — one bench per row.

func BenchmarkTable1Row1_PEF3Plus(b *testing.B)          { benchExperiment(b, "E-T1.R1") }
func BenchmarkTable1Row2_TwoRobotAdversary(b *testing.B) { benchExperiment(b, "E-T1.R2") }
func BenchmarkTable1Row3_PEF2(b *testing.B)              { benchExperiment(b, "E-T1.R3") }
func BenchmarkTable1Row4_OneRobotAdversary(b *testing.B) { benchExperiment(b, "E-T1.R4") }
func BenchmarkTable1Row5_PEF1(b *testing.B)              { benchExperiment(b, "E-T1.R5") }

// Figures 1-3.

func BenchmarkFigure1_MirrorConstruction(b *testing.B)  { benchExperiment(b, "E-F1") }
func BenchmarkFigure2_ConfinementSchedule(b *testing.B) { benchExperiment(b, "E-F2") }
func BenchmarkFigure3_ConfinementSchedule(b *testing.B) { benchExperiment(b, "E-F3") }

// Extension experiments.

func BenchmarkX1_CoverTimeScaling(b *testing.B)       { benchExperiment(b, "E-X1") }
func BenchmarkX2_GapVsRecurrence(b *testing.B)        { benchExperiment(b, "E-X2") }
func BenchmarkX3_RuleAblation(b *testing.B)           { benchExperiment(b, "E-X3") }
func BenchmarkX4_SSYNCImpossibility(b *testing.B)     { benchExperiment(b, "E-X4") }
func BenchmarkX5_Chains(b *testing.B)                 { benchExperiment(b, "E-X5") }
func BenchmarkX6_SelfStabilizationProbe(b *testing.B) { benchExperiment(b, "E-X6") }
func BenchmarkX7_TeamSizeSweep(b *testing.B)          { benchExperiment(b, "E-X7") }
func BenchmarkX8_ConvergencePrefixes(b *testing.B)    { benchExperiment(b, "E-X8") }
func BenchmarkX9_TaxonomyClassification(b *testing.B) { benchExperiment(b, "E-X9") }
func BenchmarkX10_SentinelFormation(b *testing.B)     { benchExperiment(b, "E-X10") }
func BenchmarkX11_ThreeRobotThreshold(b *testing.B)   { benchExperiment(b, "E-X11") }

// BenchmarkFullReport regenerates the entire EXPERIMENTS.md data set.
func BenchmarkFullReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunAll(harness.Config{Seed: 1, Quick: true}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSweep measures the concurrent seed sweep of the full
// experiment index: the same 4-seed batch fanned across growing worker
// pools. The workers=1 case is the sequential baseline; the speedup curve
// shows the hot path scaling with cores instead of experiments.
func BenchmarkBatchSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jobs, err := harness.RunBatch(context.Background(), harness.BatchConfig{
					Seeds:   harness.Seeds(1, 4),
					Workers: workers,
					Quick:   true,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range jobs {
					if j.Err != nil || !j.Result.Pass {
						b.Fatalf("%s seed=%d failed: %v", j.ID, j.Seed, j.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBatchAggregate measures the pure aggregation cost (sweep matrix
// plus report rendering) on a pre-computed batch, isolating it from
// experiment execution.
func BenchmarkBatchAggregate(b *testing.B) {
	jobs, err := harness.RunBatch(context.Background(), harness.BatchConfig{
		Seeds: harness.Seeds(1, 8),
		Quick: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := harness.WriteBatchReport(io.Discard, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// Simulator throughput: rounds per second for PEF_3+ across ring sizes and
// team sizes, on the hardest oblivious workload (Bernoulli 0.5).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		for _, k := range []int{3, 8} {
			if k >= n {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				rep, err := Explore(context.Background(), ExploreConfig{
					Robots:    k,
					Algorithm: PEF3Plus(),
					Dynamics:  Bernoulli(n, 0.5, 99),
					Horizon:   b.N,
					Seed:      99,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = rep
			})
		}
	}
}

// BenchmarkJourney measures the foremost-journey computation on a long
// Bernoulli trace.
func BenchmarkJourney(b *testing.B) {
	for _, n := range []int{16, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := dynamics.NewBernoulli(n, 0.3, 5)
			for i := 0; i < b.N; i++ {
				arr := dyngraph.ForemostArrivals(g, 0, 0, 50*n)
				if arr[n/2] < 0 {
					b.Fatal("unreachable midpoint")
				}
			}
		})
	}
}

// BenchmarkDynamics measures raw presence-set generation.
func BenchmarkDynamics(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("bernoulli/n=%d", n), func(b *testing.B) {
			g := dynamics.NewBernoulli(n, 0.5, 7)
			for i := 0; i < b.N; i++ {
				dyngraph.EdgesAt(g, i)
			}
		})
		b.Run(fmt.Sprintf("t-interval/n=%d", n), func(b *testing.B) {
			g := dynamics.NewTInterval(n, 4, 7)
			for i := 0; i < b.N; i++ {
				dyngraph.EdgesAt(g, i)
			}
		})
	}
}
