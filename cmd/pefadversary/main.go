// Command pefadversary runs the paper's impossibility constructions live:
// the Theorem 5.1 adversary (one robot, rings of size >= 3) and the
// Theorem 4.1 adversary (two robots, rings of size >= 4) against any
// registered algorithm, printing the confinement evidence and a space-time
// diagram of the schedule (Figures 2 and 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"pef"
	"pef/internal/adversary"
	"pef/internal/fsync"
	"pef/internal/robot"
	"pef/internal/spec"
	"pef/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pefadversary:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		robots = flag.Int("robots", 1, "number of victim robots: 1 (Theorem 5.1) or 2 (Theorem 4.1)")
		n      = flag.Int("n", 8, "ring size")
		algo   = flag.String("alg", "", "algorithm to defeat (empty: all registered)")
		rounds = flag.Int("rounds", 512, "rounds to simulate")
		viz    = flag.Int("viz", 24, "diagram rows to print (0 disables)")
	)
	flag.Parse()
	pef.RegisterBuiltins()

	names := pef.Algorithms()
	if *algo != "" {
		names = []string{*algo}
	}
	for _, name := range names {
		alg, err := pef.NewAlgorithm(name)
		if err != nil {
			return err
		}
		if err := defeat(alg, *robots, *n, *rounds, *viz); err != nil {
			return err
		}
		*viz = 0 // diagram only for the first victim to keep output readable
	}
	return nil
}

func defeat(alg pef.Algorithm, robots, n, rounds, viz int) error {
	var dyn fsync.Dynamics
	var placements []fsync.Placement
	var limit int
	switch robots {
	case 1:
		dyn = adversary.NewOneRobotConfinement(n, 0, 0)
		placements = []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}
		limit = 2
	case 2:
		dyn = adversary.NewTwoRobotConfinement(n, 0, 0, 1)
		placements = []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCCW},
		}
		limit = 3
	default:
		return fmt.Errorf("robots must be 1 or 2, got %d", robots)
	}

	ct := spec.NewConfinementTracker()
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    dyn,
		Placements:  placements,
		Observers:   []fsync.Observer{ct, rec},
		RecordGraph: viz > 0,
	})
	if err != nil {
		return err
	}
	sim.Run(rounds)

	status := "CONFINED"
	if !ct.ConfinedTo(limit) {
		status = "ESCAPED (bug!)"
	}
	fmt.Printf("%-24s k=%d n=%-4d visited %d/%d nodes %v  -> %s\n",
		alg.Name(), robots, n, ct.Distinct(), n, ct.VisitedNodes(), status)

	if viz > 0 {
		snaps := make([]fsync.Snapshot, rec.Len())
		for t := range snaps {
			snaps[t] = rec.At(t)
		}
		fmt.Println()
		fmt.Print(trace.Header(n))
		fmt.Print(trace.SpaceTimeString(sim.RecordedGraph(), snaps, 0, viz))
		fmt.Println()
	}
	if !ct.ConfinedTo(limit) {
		return fmt.Errorf("adversary failed against %s", alg.Name())
	}
	return nil
}
