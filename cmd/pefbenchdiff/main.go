// Command pefbenchdiff compares two BENCH_*.json trajectories (as emitted
// by pefexperiments -json) and prints a regression/improvement table: the
// per-experiment pass rates, the scalar aggregates (cover times, revisit
// gaps, …), and — when both files carry -timings data — the per-experiment
// wall times. It is the trend-diff half of the bench-trajectory loop: CI
// regenerates the current trajectory and diffs it against the committed
// previous one.
//
// When both arguments are scenario-campaign documents (pefscenarios -json)
// instead, the diff switches to campaign mode: it compares the oracle OK
// rates, the margin distributions (coverSlack, gapHeadroom,
// confineHeadroom — how much slack each family kept against its
// predicate; a "tighter" flag warns of drift toward the boundary before
// any verdict flips), and — when both documents carry -timings wall
// times — the campaign wall time, under the same gate. CI uses this to
// require the lockstep engine's campaign to run no slower than the
// scalar engine's.
//
// When both arguments are search boundary reports (pefsearch -json)
// instead, the diff switches to boundary mode: per (family, metric), the
// tightest margin either run observed, with "tightened" flagging cells
// where the new search pushed closer to the theorem boundary and any
// newly found violations called out. Like the campaign margin section,
// boundary mode is diagnostic and never joins the regression gate.
//
//	pefbenchdiff BENCH_0002.json BENCH_0003.json
//	pefbenchdiff -fail-on-regress 0.0 OLD.json NEW.json
//	pefbenchdiff -fail-on-regress 0.0 campaign_scalar.json campaign_lockstep.json
//	pefbenchdiff boundary_old.json boundary_new.json
//
// Flags:
//
//	-fail-on-regress f   exit non-zero when any experiment's pass rate (or
//	                     the campaign's OK rate) drops by more than f (a
//	                     fraction in [0, 1]), or when wall times are present
//	                     in both files and an experiment (or the campaign)
//	                     slows down by more than fraction f. Negative values
//	                     (the default) disable the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pef/internal/metrics"
	"pef/internal/search"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pefbenchdiff:", err)
		os.Exit(1)
	}
}

// benchJob mirrors the per-job fields pefbenchdiff consumes from a
// pefexperiments -json document.
type benchJob struct {
	ID     string  `json:"id"`
	Seed   uint64  `json:"seed"`
	Pass   bool    `json:"pass"`
	Millis float64 `json:"millis"`
}

// benchFile mirrors the top-level trajectory document.
type benchFile struct {
	Seeds    []uint64            `json:"seeds"`
	Quick    bool                `json:"quick"`
	Jobs     []benchJob          `json:"jobs"`
	Passes   int                 `json:"passes"`
	Total    int                 `json:"total"`
	PassRate float64             `json:"passRate"`
	Scalars  []metrics.ScalarRow `json:"scalars"`
}

// expStats is one experiment's aggregate within a trajectory.
type expStats struct {
	jobs   int
	passes int
	millis float64 // summed wall time; 0 means "no timings recorded"
}

func (e expStats) passRate() float64 {
	if e.jobs == 0 {
		return 0
	}
	return float64(e.passes) / float64(e.jobs)
}

// aggregate folds a trajectory's job list per experiment, preserving
// first-seen experiment order.
func aggregate(f benchFile) (order []string, stats map[string]expStats) {
	stats = make(map[string]expStats)
	for _, j := range f.Jobs {
		s, ok := stats[j.ID]
		if !ok {
			order = append(order, j.ID)
		}
		s.jobs++
		if j.Pass {
			s.passes++
		}
		s.millis += j.Millis
		stats[j.ID] = s
	}
	return order, stats
}

// campaignFile mirrors the fields pefbenchdiff consumes from a
// pefscenarios -json campaign document.
type campaignFile struct {
	Version   int      `json:"version"`
	Generator string   `json:"generator"`
	Count     int      `json:"count"`
	Seeds     []uint64 `json:"seeds"`
	Total     int      `json:"total"`
	OK        int      `json:"ok"`
	OKRate    float64  `json:"okRate"`
	// Millis is the campaign wall time; zero unless the document was
	// captured with -timings.
	Millis int64 `json:"millis"`
	// Scalars carries the per-family scalar distributions, including the
	// oracle's margin instrumentation (coverSlack, gapHeadroom,
	// confineHeadroom) — how close each family ran to its predicate's
	// edge.
	Scalars []metrics.ScalarRow `json:"scalars"`
}

// marginMetrics names the oracle's margin distributions: the slack each
// verdict had against its predicate. Shrinking margins flag a sweep
// drifting toward the predicate boundary before any verdict flips.
var marginMetrics = map[string]bool{
	"coverSlack":      true,
	"gapHeadroom":     true,
	"confineHeadroom": true,
}

// document is one parsed input file: an experiment trajectory (Jobs
// non-empty), a scenario-campaign document (isCamp), or a search
// boundary report (isBoundary).
type document struct {
	bench      benchFile
	campaign   campaignFile
	boundary   *search.BoundaryReport
	isCamp     bool
	isBoundary bool
}

// load parses one input file, detecting its kind: a "searchBoundary"
// kind tag marks a boundary report, a jobs list marks an experiment
// trajectory, a generator name marks a campaign document.
func load(path string) (document, error) {
	var d document
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	var kind struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &kind); err == nil && kind.Kind == search.ReportKind {
		if d.boundary, err = search.DecodeReport(data); err != nil {
			return d, fmt.Errorf("parsing %s: %w", path, err)
		}
		d.isBoundary = true
		return d, nil
	}
	if err := json.Unmarshal(data, &d.bench); err != nil {
		return d, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(d.bench.Jobs) > 0 {
		return d, nil
	}
	if err := json.Unmarshal(data, &d.campaign); err != nil {
		return d, fmt.Errorf("parsing %s: %w", path, err)
	}
	if d.campaign.Generator != "" && d.campaign.Total > 0 {
		d.isCamp = true
		return d, nil
	}
	return d, fmt.Errorf("%s carries neither experiment jobs, a campaign, nor a boundary report", path)
}

// mergedOrder returns oldOrder followed by the experiments that only the
// new trajectory has, so rows render in a stable, reviewable order.
func mergedOrder(oldOrder, newOrder []string, oldStats map[string]expStats) []string {
	out := append([]string(nil), oldOrder...)
	for _, id := range newOrder {
		if _, ok := oldStats[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pefbenchdiff", flag.ContinueOnError)
	failOn := fs.Float64("fail-on-regress", -1,
		"fail when a pass rate drops, or a wall time grows, by more than this fraction (negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: pefbenchdiff [-fail-on-regress f] OLD.json NEW.json")
	}
	oldD, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newD, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	if oldD.isCamp != newD.isCamp || oldD.isBoundary != newD.isBoundary {
		return fmt.Errorf("cannot diff documents of different kinds (trajectory, campaign, boundary report)")
	}
	if oldD.isBoundary {
		return boundaryDiff(stdout, fs.Arg(0), fs.Arg(1), oldD.boundary, newD.boundary)
	}
	if oldD.isCamp {
		return campaignDiff(stdout, fs.Arg(0), fs.Arg(1), oldD.campaign, newD.campaign, *failOn)
	}
	oldF, newF := oldD.bench, newD.bench

	oldOrder, oldStats := aggregate(oldF)
	newOrder, newStats := aggregate(newF)
	order := mergedOrder(oldOrder, newOrder, oldStats)

	fmt.Fprintf(stdout, "# Bench trajectory diff: %s → %s\n\n", fs.Arg(0), fs.Arg(1))
	fmt.Fprintf(stdout, "old: %d jobs over %d seeds (quick=%t), pass rate %s\n",
		oldF.Total, len(oldF.Seeds), oldF.Quick, pct(oldF.PassRate))
	fmt.Fprintf(stdout, "new: %d jobs over %d seeds (quick=%t), pass rate %s\n",
		newF.Total, len(newF.Seeds), newF.Quick, pct(newF.PassRate))

	var regressions []string

	// Per-experiment pass rates.
	fmt.Fprintf(stdout, "\n## Pass rates\n\n")
	pt := metrics.NewTable("experiment", "old", "new", "delta", "flag")
	for _, id := range order {
		o, hasOld := oldStats[id]
		n, hasNew := newStats[id]
		switch {
		case !hasNew:
			pt.AddRow(id, pct(o.passRate()), "-", "-", "gone")
		case !hasOld:
			pt.AddRow(id, "-", pct(n.passRate()), "-", "new")
		default:
			delta := n.passRate() - o.passRate()
			flag := "="
			if delta < 0 {
				flag = "REGRESS"
				if *failOn >= 0 && -delta > *failOn {
					regressions = append(regressions,
						fmt.Sprintf("%s: pass rate %s → %s", id, pct(o.passRate()), pct(n.passRate())))
				}
			} else if delta > 0 {
				flag = "improve"
			}
			pt.AddRow(id, pct(o.passRate()), pct(n.passRate()), fmt.Sprintf("%+.1f%%", 100*delta), flag)
		}
	}
	if err := pt.Render(stdout); err != nil {
		return err
	}

	// Per-experiment wall times, when both trajectories carry timings.
	if oldHasTimings(oldStats) && oldHasTimings(newStats) {
		fmt.Fprintf(stdout, "\n## Wall time (ms per experiment, summed over seeds)\n\n")
		wt := metrics.NewTable("experiment", "old ms", "new ms", "ratio", "flag")
		for _, id := range order {
			o, hasOld := oldStats[id]
			n, hasNew := newStats[id]
			if !hasOld || !hasNew || o.millis == 0 {
				continue
			}
			ratio := n.millis / o.millis
			flag := "="
			if ratio > 1.05 {
				flag = "slower"
			} else if ratio < 0.95 {
				flag = "faster"
			}
			// The gate is independent of the 5% display bands: any
			// threshold the flag sets is honored, even below 0.05.
			if *failOn >= 0 && ratio > 1+*failOn {
				flag = "REGRESS"
				regressions = append(regressions,
					fmt.Sprintf("%s: wall time %.0fms → %.0fms (%.2fx)", id, o.millis, n.millis, ratio))
			}
			wt.AddRow(id, fmt.Sprintf("%.0f", o.millis), fmt.Sprintf("%.0f", n.millis),
				fmt.Sprintf("%.2fx", ratio), flag)
		}
		if err := wt.Render(stdout); err != nil {
			return err
		}
	}

	// Scalar aggregates joined on (experiment, metric).
	if len(oldF.Scalars) > 0 || len(newF.Scalars) > 0 {
		fmt.Fprintf(stdout, "\n## Scalar aggregates (mean)\n\n")
		type key struct{ id, metric string }
		oldScalars := make(map[key]metrics.ScalarRow, len(oldF.Scalars))
		for _, r := range oldF.Scalars {
			oldScalars[key{r.ID, r.Metric}] = r
		}
		newScalars := make(map[key]metrics.ScalarRow, len(newF.Scalars))
		for _, r := range newF.Scalars {
			newScalars[key{r.ID, r.Metric}] = r
		}
		st := metrics.NewTable("experiment", "metric", "old mean", "new mean", "delta")
		emit := func(r metrics.ScalarRow) {
			k := key{r.ID, r.Metric}
			o, hasOld := oldScalars[k]
			n, hasNew := newScalars[k]
			switch {
			case !hasNew:
				st.AddRow(r.ID, r.Metric, fmt.Sprintf("%.1f", o.Mean), "-", "gone")
			case !hasOld:
				st.AddRow(r.ID, r.Metric, "-", fmt.Sprintf("%.1f", n.Mean), "new")
			default:
				st.AddRow(r.ID, r.Metric, fmt.Sprintf("%.1f", o.Mean), fmt.Sprintf("%.1f", n.Mean),
					fmt.Sprintf("%+.1f", n.Mean-o.Mean))
			}
		}
		seen := make(map[key]bool)
		for _, r := range oldF.Scalars {
			seen[key{r.ID, r.Metric}] = true
			emit(r)
		}
		for _, r := range newF.Scalars {
			if !seen[key{r.ID, r.Metric}] {
				emit(r)
			}
		}
		if err := st.Render(stdout); err != nil {
			return err
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(stdout, "\n---\n%d regression(s) beyond threshold %.2f:\n", len(regressions), *failOn)
		for _, r := range regressions {
			fmt.Fprintf(stdout, "- %s\n", r)
		}
		return fmt.Errorf("%d regression(s) beyond threshold %v", len(regressions), *failOn)
	}
	fmt.Fprintf(stdout, "\n---\nno regressions%s.\n", gateSuffix(*failOn))
	return nil
}

// oldHasTimings reports whether any experiment recorded a wall time.
func oldHasTimings(stats map[string]expStats) bool {
	for _, s := range stats {
		if s.millis > 0 && !math.IsNaN(s.millis) {
			return true
		}
	}
	return false
}

// campaignDiff renders the campaign-mode comparison: OK rates always,
// wall times when both documents carry them, both under the regression
// gate. The two campaigns need not share a generator — the lockstep
// wall-time gate diffs the same campaign under two engines — but mismatched
// scenario counts make the wall-time ratio meaningless, so they fail.
func campaignDiff(stdout io.Writer, oldPath, newPath string, oldC, newC campaignFile, failOn float64) error {
	fmt.Fprintf(stdout, "# Campaign diff: %s → %s\n\n", oldPath, newPath)
	ct := metrics.NewTable("campaign", "generator", "scenarios", "ok", "okRate", "wall ms")
	wall := func(ms int64) string {
		if ms == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", ms)
	}
	ct.AddRow("old", oldC.Generator, oldC.Total, oldC.OK, pct(oldC.OKRate), wall(oldC.Millis))
	ct.AddRow("new", newC.Generator, newC.Total, newC.OK, pct(newC.OKRate), wall(newC.Millis))
	if err := ct.Render(stdout); err != nil {
		return err
	}

	var regressions []string
	if oldC.Total != newC.Total {
		regressions = append(regressions,
			fmt.Sprintf("scenario counts differ: %d → %d (wall times not comparable)", oldC.Total, newC.Total))
	}
	if delta := newC.OKRate - oldC.OKRate; failOn >= 0 && -delta > failOn {
		regressions = append(regressions,
			fmt.Sprintf("OK rate %s → %s", pct(oldC.OKRate), pct(newC.OKRate)))
	}
	if oldC.Millis > 0 && newC.Millis > 0 {
		ratio := float64(newC.Millis) / float64(oldC.Millis)
		fmt.Fprintf(stdout, "\nwall time: %dms → %dms (%.2fx)\n", oldC.Millis, newC.Millis, ratio)
		if failOn >= 0 && ratio > 1+failOn {
			regressions = append(regressions,
				fmt.Sprintf("wall time %dms → %dms (%.2fx)", oldC.Millis, newC.Millis, ratio))
		}
	}
	if err := marginDiff(stdout, oldC, newC); err != nil {
		return err
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stdout, "\n---\n%d regression(s) beyond threshold %.2f:\n", len(regressions), failOn)
		for _, r := range regressions {
			fmt.Fprintf(stdout, "- %s\n", r)
		}
		return fmt.Errorf("%d regression(s) beyond threshold %v", len(regressions), failOn)
	}
	fmt.Fprintf(stdout, "\n---\nno regressions%s.\n", gateSuffix(failOn))
	return nil
}

// marginDiff renders the margin-distribution comparison of campaign
// mode: per (family, margin metric), the old and new summary — how much
// slack the sweep kept against the paper's predicate bounds. Margins are
// diagnostic (a shrinking mean flags drift toward the predicate boundary
// before any verdict flips), so this section never joins the regression
// gate; the OK rate does the gating.
func marginDiff(stdout io.Writer, oldC, newC campaignFile) error {
	type key struct{ id, metric string }
	filter := func(rows []metrics.ScalarRow) (order []key, byKey map[key]metrics.ScalarRow) {
		byKey = make(map[key]metrics.ScalarRow)
		for _, r := range rows {
			if !marginMetrics[r.Metric] {
				continue
			}
			k := key{r.ID, r.Metric}
			if _, ok := byKey[k]; !ok {
				order = append(order, k)
			}
			byKey[k] = r
		}
		return order, byKey
	}
	oldOrder, oldRows := filter(oldC.Scalars)
	newOrder, newRows := filter(newC.Scalars)
	if len(oldRows) == 0 && len(newRows) == 0 {
		return nil
	}
	order := append([]key(nil), oldOrder...)
	for _, k := range newOrder {
		if _, ok := oldRows[k]; !ok {
			order = append(order, k)
		}
	}

	fmt.Fprintf(stdout, "\n## Predicate margins (min / mean / median / max)\n\n")
	mt := metrics.NewTable("family", "margin", "old", "new", "mean delta", "flag")
	summary := func(r metrics.ScalarRow) string {
		return fmt.Sprintf("%d / %.1f / %.1f / %d (n=%d)", r.Min, r.Mean, r.Median, r.Max, r.Count)
	}
	for _, k := range order {
		o, hasOld := oldRows[k]
		n, hasNew := newRows[k]
		switch {
		case !hasNew:
			mt.AddRow(k.id, k.metric, summary(o), "-", "-", "gone")
		case !hasOld:
			mt.AddRow(k.id, k.metric, "-", summary(n), "-", "new")
		default:
			delta := n.Mean - o.Mean
			flag := "="
			if delta < 0 {
				flag = "tighter"
			} else if delta > 0 {
				flag = "wider"
			}
			mt.AddRow(k.id, k.metric, summary(o), summary(n), fmt.Sprintf("%+.1f", delta), flag)
		}
	}
	return mt.Render(stdout)
}

// boundaryDiff renders the search-boundary comparison: per (family,
// metric), the tightest margin either run observed. "tightened" flags
// cells where the new search pushed closer to the theorem boundary —
// the searcher doing its job — and newly found violations are called
// out. Boundary runs usually differ in seed or budget, so like the
// campaign margin section this mode is diagnostic and never joins the
// -fail-on-regress gate.
func boundaryDiff(stdout io.Writer, oldPath, newPath string, oldR, newR *search.BoundaryReport) error {
	fmt.Fprintf(stdout, "# Boundary report diff: %s → %s\n\n", oldPath, newPath)
	st := metrics.NewTable("run", "seed", "generations", "samples", "violations")
	st.AddRow("old", oldR.Seed, oldR.Generations, oldR.Samples, len(oldR.Violations))
	st.AddRow("new", newR.Seed, newR.Generations, newR.Samples, len(newR.Violations))
	if err := st.Render(stdout); err != nil {
		return err
	}

	type key struct{ family, metric string }
	index := func(rows []search.BoundaryRow) (order []key, byKey map[key]search.BoundaryRow) {
		byKey = make(map[key]search.BoundaryRow, len(rows))
		for _, r := range rows {
			k := key{r.Family, r.Metric}
			if _, ok := byKey[k]; !ok {
				order = append(order, k)
			}
			byKey[k] = r
		}
		return order, byKey
	}
	oldOrder, oldRows := index(oldR.Rows)
	newOrder, newRows := index(newR.Rows)
	order := append([]key(nil), oldOrder...)
	for _, k := range newOrder {
		if _, ok := oldRows[k]; !ok {
			order = append(order, k)
		}
	}

	tightened := 0
	fmt.Fprintf(stdout, "\n## Tightest observed margins (‰ of bound)\n\n")
	bt := metrics.NewTable("family", "metric", "old rel(‰)", "new rel(‰)", "delta", "flag")
	for _, k := range order {
		o, hasOld := oldRows[k]
		n, hasNew := newRows[k]
		switch {
		case !hasNew:
			bt.AddRow(k.family, k.metric, o.RelMin, "-", "-", "gone")
		case !hasOld:
			bt.AddRow(k.family, k.metric, "-", n.RelMin, "-", "new")
		default:
			delta := n.RelMin - o.RelMin
			flag := "="
			if delta < 0 {
				flag = "tightened"
				tightened++
			} else if delta > 0 {
				flag = "widened"
			}
			bt.AddRow(k.family, k.metric, o.RelMin, n.RelMin, fmt.Sprintf("%+d", delta), flag)
		}
	}
	if err := bt.Render(stdout); err != nil {
		return err
	}
	if tightened > 0 {
		fmt.Fprintf(stdout, "\n%d cell(s) tightened toward the theorem boundary.\n", tightened)
	}

	oldViol := make(map[string]bool, len(oldR.Violations))
	for _, v := range oldR.Violations {
		oldViol[v.ID] = true
	}
	fresh := 0
	for _, v := range newR.Violations {
		if !oldViol[v.ID] {
			if fresh == 0 {
				fmt.Fprintf(stdout, "\n## New violations\n\n")
			}
			fresh++
			fmt.Fprintf(stdout, "- %s", v.ID)
			if v.MinimizedID != "" {
				fmt.Fprintf(stdout, " (minimal reproducer: %s)", v.MinimizedID)
			}
			fmt.Fprintln(stdout)
		}
	}
	fmt.Fprintf(stdout, "\n---\nboundary mode is diagnostic: margins never join the regression gate.\n")
	return nil
}

// gateSuffix annotates the verdict with the active gate, if any.
func gateSuffix(failOn float64) string {
	if failOn < 0 {
		return " (gate disabled)"
	}
	return fmt.Sprintf(" beyond threshold %.2f", failOn)
}
