// Command pefbenchdiff compares two BENCH_*.json trajectories (as emitted
// by pefexperiments -json) and prints a regression/improvement table: the
// per-experiment pass rates, the scalar aggregates (cover times, revisit
// gaps, …), and — when both files carry -timings data — the per-experiment
// wall times. It is the trend-diff half of the bench-trajectory loop: CI
// regenerates the current trajectory and diffs it against the committed
// previous one.
//
//	pefbenchdiff BENCH_0002.json BENCH_0003.json
//	pefbenchdiff -fail-on-regress 0.0 OLD.json NEW.json
//
// Flags:
//
//	-fail-on-regress f   exit non-zero when any experiment's pass rate
//	                     drops by more than f (a fraction in [0, 1]), or
//	                     when wall times are present in both files and an
//	                     experiment slows down by more than fraction f.
//	                     Negative values (the default) disable the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pef/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pefbenchdiff:", err)
		os.Exit(1)
	}
}

// benchJob mirrors the per-job fields pefbenchdiff consumes from a
// pefexperiments -json document.
type benchJob struct {
	ID     string  `json:"id"`
	Seed   uint64  `json:"seed"`
	Pass   bool    `json:"pass"`
	Millis float64 `json:"millis"`
}

// benchFile mirrors the top-level trajectory document.
type benchFile struct {
	Seeds    []uint64            `json:"seeds"`
	Quick    bool                `json:"quick"`
	Jobs     []benchJob          `json:"jobs"`
	Passes   int                 `json:"passes"`
	Total    int                 `json:"total"`
	PassRate float64             `json:"passRate"`
	Scalars  []metrics.ScalarRow `json:"scalars"`
}

// expStats is one experiment's aggregate within a trajectory.
type expStats struct {
	jobs   int
	passes int
	millis float64 // summed wall time; 0 means "no timings recorded"
}

func (e expStats) passRate() float64 {
	if e.jobs == 0 {
		return 0
	}
	return float64(e.passes) / float64(e.jobs)
}

// aggregate folds a trajectory's job list per experiment, preserving
// first-seen experiment order.
func aggregate(f benchFile) (order []string, stats map[string]expStats) {
	stats = make(map[string]expStats)
	for _, j := range f.Jobs {
		s, ok := stats[j.ID]
		if !ok {
			order = append(order, j.ID)
		}
		s.jobs++
		if j.Pass {
			s.passes++
		}
		s.millis += j.Millis
		stats[j.ID] = s
	}
	return order, stats
}

// load parses one trajectory file.
func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(f.Jobs) == 0 {
		return f, fmt.Errorf("%s carries no jobs", path)
	}
	return f, nil
}

// mergedOrder returns oldOrder followed by the experiments that only the
// new trajectory has, so rows render in a stable, reviewable order.
func mergedOrder(oldOrder, newOrder []string, oldStats map[string]expStats) []string {
	out := append([]string(nil), oldOrder...)
	for _, id := range newOrder {
		if _, ok := oldStats[id]; !ok {
			out = append(out, id)
		}
	}
	return out
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pefbenchdiff", flag.ContinueOnError)
	failOn := fs.Float64("fail-on-regress", -1,
		"fail when a pass rate drops, or a wall time grows, by more than this fraction (negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: pefbenchdiff [-fail-on-regress f] OLD.json NEW.json")
	}
	oldF, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newF, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	oldOrder, oldStats := aggregate(oldF)
	newOrder, newStats := aggregate(newF)
	order := mergedOrder(oldOrder, newOrder, oldStats)

	fmt.Fprintf(stdout, "# Bench trajectory diff: %s → %s\n\n", fs.Arg(0), fs.Arg(1))
	fmt.Fprintf(stdout, "old: %d jobs over %d seeds (quick=%t), pass rate %s\n",
		oldF.Total, len(oldF.Seeds), oldF.Quick, pct(oldF.PassRate))
	fmt.Fprintf(stdout, "new: %d jobs over %d seeds (quick=%t), pass rate %s\n",
		newF.Total, len(newF.Seeds), newF.Quick, pct(newF.PassRate))

	var regressions []string

	// Per-experiment pass rates.
	fmt.Fprintf(stdout, "\n## Pass rates\n\n")
	pt := metrics.NewTable("experiment", "old", "new", "delta", "flag")
	for _, id := range order {
		o, hasOld := oldStats[id]
		n, hasNew := newStats[id]
		switch {
		case !hasNew:
			pt.AddRow(id, pct(o.passRate()), "-", "-", "gone")
		case !hasOld:
			pt.AddRow(id, "-", pct(n.passRate()), "-", "new")
		default:
			delta := n.passRate() - o.passRate()
			flag := "="
			if delta < 0 {
				flag = "REGRESS"
				if *failOn >= 0 && -delta > *failOn {
					regressions = append(regressions,
						fmt.Sprintf("%s: pass rate %s → %s", id, pct(o.passRate()), pct(n.passRate())))
				}
			} else if delta > 0 {
				flag = "improve"
			}
			pt.AddRow(id, pct(o.passRate()), pct(n.passRate()), fmt.Sprintf("%+.1f%%", 100*delta), flag)
		}
	}
	if err := pt.Render(stdout); err != nil {
		return err
	}

	// Per-experiment wall times, when both trajectories carry timings.
	if oldHasTimings(oldStats) && oldHasTimings(newStats) {
		fmt.Fprintf(stdout, "\n## Wall time (ms per experiment, summed over seeds)\n\n")
		wt := metrics.NewTable("experiment", "old ms", "new ms", "ratio", "flag")
		for _, id := range order {
			o, hasOld := oldStats[id]
			n, hasNew := newStats[id]
			if !hasOld || !hasNew || o.millis == 0 {
				continue
			}
			ratio := n.millis / o.millis
			flag := "="
			if ratio > 1.05 {
				flag = "slower"
			} else if ratio < 0.95 {
				flag = "faster"
			}
			// The gate is independent of the 5% display bands: any
			// threshold the flag sets is honored, even below 0.05.
			if *failOn >= 0 && ratio > 1+*failOn {
				flag = "REGRESS"
				regressions = append(regressions,
					fmt.Sprintf("%s: wall time %.0fms → %.0fms (%.2fx)", id, o.millis, n.millis, ratio))
			}
			wt.AddRow(id, fmt.Sprintf("%.0f", o.millis), fmt.Sprintf("%.0f", n.millis),
				fmt.Sprintf("%.2fx", ratio), flag)
		}
		if err := wt.Render(stdout); err != nil {
			return err
		}
	}

	// Scalar aggregates joined on (experiment, metric).
	if len(oldF.Scalars) > 0 || len(newF.Scalars) > 0 {
		fmt.Fprintf(stdout, "\n## Scalar aggregates (mean)\n\n")
		type key struct{ id, metric string }
		oldScalars := make(map[key]metrics.ScalarRow, len(oldF.Scalars))
		for _, r := range oldF.Scalars {
			oldScalars[key{r.ID, r.Metric}] = r
		}
		newScalars := make(map[key]metrics.ScalarRow, len(newF.Scalars))
		for _, r := range newF.Scalars {
			newScalars[key{r.ID, r.Metric}] = r
		}
		st := metrics.NewTable("experiment", "metric", "old mean", "new mean", "delta")
		emit := func(r metrics.ScalarRow) {
			k := key{r.ID, r.Metric}
			o, hasOld := oldScalars[k]
			n, hasNew := newScalars[k]
			switch {
			case !hasNew:
				st.AddRow(r.ID, r.Metric, fmt.Sprintf("%.1f", o.Mean), "-", "gone")
			case !hasOld:
				st.AddRow(r.ID, r.Metric, "-", fmt.Sprintf("%.1f", n.Mean), "new")
			default:
				st.AddRow(r.ID, r.Metric, fmt.Sprintf("%.1f", o.Mean), fmt.Sprintf("%.1f", n.Mean),
					fmt.Sprintf("%+.1f", n.Mean-o.Mean))
			}
		}
		seen := make(map[key]bool)
		for _, r := range oldF.Scalars {
			seen[key{r.ID, r.Metric}] = true
			emit(r)
		}
		for _, r := range newF.Scalars {
			if !seen[key{r.ID, r.Metric}] {
				emit(r)
			}
		}
		if err := st.Render(stdout); err != nil {
			return err
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(stdout, "\n---\n%d regression(s) beyond threshold %.2f:\n", len(regressions), *failOn)
		for _, r := range regressions {
			fmt.Fprintf(stdout, "- %s\n", r)
		}
		return fmt.Errorf("%d regression(s) beyond threshold %v", len(regressions), *failOn)
	}
	fmt.Fprintf(stdout, "\n---\nno regressions%s.\n", gateSuffix(*failOn))
	return nil
}

// oldHasTimings reports whether any experiment recorded a wall time.
func oldHasTimings(stats map[string]expStats) bool {
	for _, s := range stats {
		if s.millis > 0 && !math.IsNaN(s.millis) {
			return true
		}
	}
	return false
}

// gateSuffix annotates the verdict with the active gate, if any.
func gateSuffix(failOn float64) string {
	if failOn < 0 {
		return " (gate disabled)"
	}
	return fmt.Sprintf(" beyond threshold %.2f", failOn)
}
