package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a trajectory JSON into dir and returns its path.
func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oldDoc = `{
  "seeds": [1, 2],
  "quick": false,
  "jobs": [
    {"id": "E-A", "seed": 1, "pass": true, "millis": 100},
    {"id": "E-A", "seed": 2, "pass": true, "millis": 100},
    {"id": "E-B", "seed": 1, "pass": true, "millis": 50},
    {"id": "E-B", "seed": 2, "pass": false, "millis": 50},
    {"id": "E-GONE", "seed": 1, "pass": true, "millis": 10}
  ],
  "passes": 4, "total": 5, "passRate": 0.8,
  "scalars": [
    {"id": "E-A", "metric": "cover", "count": 2, "min": 1, "mean": 4.0, "median": 4.0, "max": 7}
  ]
}`

const newDoc = `{
  "seeds": [1, 2],
  "quick": false,
  "jobs": [
    {"id": "E-A", "seed": 1, "pass": true, "millis": 40},
    {"id": "E-A", "seed": 2, "pass": false, "millis": 40},
    {"id": "E-B", "seed": 1, "pass": true, "millis": 200},
    {"id": "E-B", "seed": 2, "pass": true, "millis": 200},
    {"id": "E-NEW", "seed": 1, "pass": true, "millis": 10}
  ],
  "passes": 4, "total": 5, "passRate": 0.8,
  "scalars": [
    {"id": "E-A", "metric": "cover", "count": 2, "min": 2, "mean": 6.0, "median": 6.0, "max": 9}
  ]
}`

func TestDiffTableAndVerdict(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldDoc)
	newP := write(t, dir, "new.json", newDoc)

	var b strings.Builder
	if err := run([]string{oldP, newP}, &b); err != nil {
		t.Fatalf("ungated diff failed: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"E-A", "REGRESS", // pass rate 100% -> 50%
		"improve",     // E-B 50% -> 100%
		"gone", "new", // asymmetric experiments flagged, not failed
		"faster",        // E-A wall time 200 -> 80
		"slower",        // E-B wall time 100 -> 400
		"cover", "+2.0", // scalar mean delta
		"no regressions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestFailOnRegressGate(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldDoc)
	newP := write(t, dir, "new.json", newDoc)

	var b strings.Builder
	err := run([]string{"-fail-on-regress", "0.1", oldP, newP}, &b)
	if err == nil {
		t.Fatal("gate accepted a 50-point pass-rate drop and a 4x slowdown")
	}
	out := b.String()
	if !strings.Contains(out, "E-A: pass rate") || !strings.Contains(out, "E-B: wall time") {
		t.Fatalf("gate did not name both regressions:\n%s", out)
	}
}

func TestIdenticalTrajectoriesPass(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldDoc)
	newP := write(t, dir, "new.json", oldDoc)
	var b strings.Builder
	if err := run([]string{"-fail-on-regress", "0", oldP, newP}, &b); err != nil {
		t.Fatalf("identical trajectories reported a regression: %v\n%s", err, b.String())
	}
}

const oldCampaign = `{
  "version": 1, "generator": "uniform", "count": 200, "seeds": [1, 2],
  "total": 400, "ok": 400, "okRate": 1.0, "families": [], "scalars": [],
  "millis": 500
}`

const newCampaign = `{
  "version": 1, "generator": "uniform", "count": 200, "seeds": [1, 2],
  "total": 400, "ok": 396, "okRate": 0.99, "families": [], "scalars": [],
  "millis": 150
}`

func TestCampaignDiff(t *testing.T) {
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldCampaign)
	newP := write(t, dir, "new.json", newCampaign)

	var b strings.Builder
	if err := run([]string{"-fail-on-regress", "0.05", oldP, newP}, &b); err != nil {
		t.Fatalf("campaign diff within tolerance failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"Campaign diff", "uniform", "0.30x", "no regressions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign diff output missing %q:\n%s", want, out)
		}
	}

	// A zero-tolerance gate must flag both the OK-rate drop and, with the
	// roles swapped, the wall-time growth.
	b.Reset()
	if err := run([]string{"-fail-on-regress", "0", oldP, newP}, &b); err == nil {
		t.Fatalf("gate accepted an OK-rate drop:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"-fail-on-regress", "0", newP, oldP}, &b); err == nil {
		t.Fatalf("gate accepted a 3.3x wall-time growth:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "wall time") {
		t.Fatalf("gate did not name the wall-time regression:\n%s", b.String())
	}
}

// TestCampaignMarginDiff checks the margin-distribution section of
// campaign mode: margin metrics (coverSlack, gapHeadroom,
// confineHeadroom) render per (family, metric) with tighter/wider flags,
// non-margin scalars stay out, and margins never trip the gate — they
// are drift diagnostics, not pass/fail signals.
func TestCampaignMarginDiff(t *testing.T) {
	const oldM = `{
	  "version": 1, "generator": "uniform", "count": 200, "seeds": [1],
	  "total": 200, "ok": 200, "okRate": 1.0, "families": [],
	  "scalars": [
	    {"id": "bounded", "metric": "coverTime", "count": 80, "min": 3, "mean": 9.0, "median": 8.0, "max": 30},
	    {"id": "bounded", "metric": "coverSlack", "count": 80, "min": 4, "mean": 51.0, "median": 50.0, "max": 97},
	    {"id": "eventual", "metric": "gapHeadroom", "count": 60, "min": 1, "mean": 20.0, "median": 19.0, "max": 44},
	    {"id": "gone-fam", "metric": "confineHeadroom", "count": 10, "min": 1, "mean": 1.5, "median": 1.0, "max": 2}
	  ]
	}`
	const newM = `{
	  "version": 1, "generator": "uniform", "count": 200, "seeds": [1],
	  "total": 200, "ok": 200, "okRate": 1.0, "families": [],
	  "scalars": [
	    {"id": "bounded", "metric": "coverSlack", "count": 80, "min": 2, "mean": 44.0, "median": 43.0, "max": 95},
	    {"id": "eventual", "metric": "gapHeadroom", "count": 60, "min": 1, "mean": 23.0, "median": 22.0, "max": 48}
	  ]
	}`
	dir := t.TempDir()
	oldP := write(t, dir, "old.json", oldM)
	newP := write(t, dir, "new.json", newM)

	var b strings.Builder
	if err := run([]string{"-fail-on-regress", "0", oldP, newP}, &b); err != nil {
		t.Fatalf("tightening margins must not trip the gate: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"Predicate margins",
		"coverSlack",
		"4 / 51.0 / 50.0 / 97 (n=80)",
		"2 / 44.0 / 43.0 / 95 (n=80)",
		"-7.0",
		"tighter",
		"wider",
		"gone",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("margin diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "coverTime") {
		t.Fatalf("non-margin scalar leaked into the margin section:\n%s", out)
	}
}

func TestMixedDocumentKindsRejected(t *testing.T) {
	dir := t.TempDir()
	trajP := write(t, dir, "traj.json", oldDoc)
	campP := write(t, dir, "camp.json", oldCampaign)
	var b strings.Builder
	if err := run([]string{trajP, campP}, &b); err == nil {
		t.Fatal("trajectory-vs-campaign diff accepted")
	}
}

func TestUsageErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"one.json"}, &b); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{"missing-a.json", "missing-b.json"}, &b); err == nil {
		t.Fatal("missing files accepted")
	}
}
