// Command pefcoord is the leased campaign coordinator: it partitions a
// scenario campaign's canonical spec stream into contiguous blocks,
// leases them to pefscenarios worker processes over a small HTTP/JSON
// API (/lease, /heartbeat, /ack), and folds the acked per-block
// checkpoints into the canonical campaign report.
//
// Fault tolerance is the point: every lease carries an epoch and a
// fencing token, heartbeats keep it alive, and a worker that dies — or
// takes a lease and vanishes — loses the block to a bounded re-lease.
// The determinism bar of the rest of the repository still holds: for a
// fixed campaign the merged report is byte-identical to a single-process
// `pefscenarios` run, for any worker fleet and any failure pattern
// (blocks are deterministic functions of the campaign identity, so it
// never matters which worker incarnation computed one).
//
//	# coordinator (prints the report when every block is acked)
//	pefcoord -family boundary -count 200 -seeds 2 -blocks 6 \
//	         -listen 127.0.0.1:7077
//
//	# workers (any number, anywhere that can reach the coordinator)
//	pefscenarios -worker-coord http://127.0.0.1:7077 -worker-id w1
//
// Flags:
//
//	-listen A         listen address (default 127.0.0.1:0 — a free port)
//	-addr-file P      write the bound address to P (for scripts racing
//	                  against ":0")
//	-count N          scenarios generated per seed (default 100)
//	-seed N           base generator seed (default 1)
//	-seeds N          sweep N consecutive generator seeds starting at -seed
//	-family F         generator: uniform, boundary, markov, adversarial,
//	                  registered
//	-families F,G     restrict the "registered" generator's family pool
//	-maxring N        largest sampled ring size (default 16)
//	-blocks B         lease granularity: the stream is split into B
//	                  contiguous blocks (default 8, capped at the stream
//	                  length)
//	-heartbeat-timeout D
//	                  a lease with no heartbeat for D is expired and its
//	                  block re-leased (default 5s)
//	-max-epochs N     a block leased N times without an ack fails the
//	                  campaign loudly (default 16)
//	-linger D         after the report is written, keep serving "done" to
//	                  workers for D so they exit cleanly (default 2s)
//	-json             emit the versioned campaign document instead of the
//	                  report
//
// The lease fabric serves live introspection on the same listener: GET
// /status (lease-fabric state) and GET /metrics (telemetry snapshot:
// lease.granted/expired/reLeased/... counters, lease.ackLatencyMillis
// histogram). At exit a summary line lands on stderr; at completion
// every expired lease has been re-leased, so its expired= and reLeased=
// fields agree — the observable recovery invariant CI asserts.
//
// The process exits non-zero when any scenario violates its predicate,
// when the campaign fails (a block exhausted -max-epochs), or on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pef/internal/harness"
	"pef/internal/lease"
	"pef/internal/scenario"
	"pef/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pefcoord:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pefcoord", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "listen address (\":0\" picks a free port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file")
		count     = fs.Int("count", 100, "scenarios generated per seed")
		seed      = fs.Uint64("seed", 1, "base generator seed")
		seeds     = fs.Int("seeds", 1, "number of consecutive generator seeds, starting at -seed")
		family    = fs.String("family", "uniform", "generator (see pefscenarios -list)")
		families  = fs.String("families", "", "comma-separated family pool for the registered generator")
		maxRing   = fs.Int("maxring", 16, "largest sampled ring size")
		blocks    = fs.Int("blocks", 8, "contiguous lease blocks the stream is split into")
		hbTimeout = fs.Duration("heartbeat-timeout", 5*time.Second, "expire a lease after this long without a heartbeat")
		maxEpochs = fs.Int("max-epochs", 16, "fail the campaign when a block is leased this many times without an ack")
		linger    = fs.Duration("linger", 2*time.Second, "keep serving \"done\" to workers for this long after the report")
		jsonOut   = fs.Bool("json", false, "emit the versioned campaign document")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *blocks < 1 {
		return fmt.Errorf("-blocks must be >= 1, got %d", *blocks)
	}

	reg := telemetry.NewRegistry()
	coord, err := lease.New(lease.Config{
		Campaign: lease.Campaign{
			Generator: *family,
			Gen:       scenario.GenConfig{MaxRing: *maxRing, Families: *families},
			Count:     *count,
			Seeds:     harness.Seeds(*seed, *seeds),
			Blocks:    *blocks,
		},
		HeartbeatTimeout: *hbTimeout,
		MaxEpochs:        *maxEpochs,
		Registry:         reg,
	})
	if err != nil {
		return err
	}
	srv, err := lease.Serve(*listen, coord)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			return err
		}
	}
	camp := coord.Campaign()
	fmt.Fprintf(stderr, "pefcoord: serving http://%s — %d scenarios (generator=%s, count=%d, seeds=%d) in %d blocks\n",
		srv.Addr(), camp.Total(), camp.Generator, camp.Count, len(camp.Seeds), camp.Blocks)

	select {
	case <-coord.Done():
	case <-ctx.Done():
		st := coord.Status()
		fmt.Fprintln(stderr, "pefcoord:", st.Summary())
		return fmt.Errorf("interrupted with %d of %d blocks acked", st.Acked, st.Blocks)
	}
	agg, err := coord.Result()
	fmt.Fprintln(stderr, "pefcoord:", coord.Status().Summary())
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := agg.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := agg.WriteReport(stdout); err != nil {
		return err
	}
	// Give the fleet a beat to poll /lease, see "done", and exit cleanly
	// before the listener disappears under them.
	if *linger > 0 {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	if n := len(agg.Violations()); n > 0 {
		return fmt.Errorf("%d of %d scenario(s) violate the paper's predicates", n, agg.Done())
	}
	return nil
}
