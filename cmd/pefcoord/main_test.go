package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pef/internal/lease"
	"pef/internal/scenario"
)

// wholeReport runs the campaign single-process — the byte-identity
// baseline the coordinator's merged report must match.
func wholeReport(t *testing.T, cfg scenario.CampaignConfig) string {
	t.Helper()
	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		t.Fatalf("NewAggregate: %v", err)
	}
	for v, serr := range scenario.StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign: %v", serr)
		}
		agg.Add(v)
	}
	var buf bytes.Buffer
	if err := agg.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	return buf.String()
}

func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return string(data)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("coordinator never wrote its address file")
	return ""
}

// TestCoordinatorChaosFleetByteIdentity is the command-level chaos bar:
// pefcoord plus an in-process chaos fleet must print the byte-identical
// report of a single-process pefscenarios run, and the stderr summary
// must show the recovery accounting (expired == reLeased > 0).
func TestCoordinatorChaosFleetByteIdentity(t *testing.T) {
	want := wholeReport(t, scenario.CampaignConfig{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     48,
		Seeds:     []uint64{5},
	})

	addrFile := filepath.Join(t.TempDir(), "addr")
	var stdout bytes.Buffer
	var stderr strings.Builder
	coordDone := make(chan error, 1)
	go func() {
		coordDone <- run(context.Background(), []string{
			"-listen", "127.0.0.1:0", "-addr-file", addrFile,
			"-family", "boundary", "-maxring", "8", "-count", "48", "-seed", "5",
			// The linger keeps /lease answering "done" while the fleet
			// finishes polling — exactly the window it exists for.
			"-blocks", "6", "-heartbeat-timeout", "250ms", "-linger", "2s",
		}, &stdout, &stderr)
	}()
	addr := waitForAddr(t, addrFile)

	// chaos seed 1 is known (pinned by the lease package's chaos tests)
	// to cover every action class across a handful of blocks; workers
	// run real blocks through the scenario engine.
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := range workerErrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerErrs[i] = lease.Work(ctx, lease.WorkerConfig{
				URL:   "http://" + addr,
				ID:    fmt.Sprintf("w%d", i),
				Chaos: &lease.Chaos{Seed: 1},
				Run: func(ctx context.Context, g lease.Grant) ([]byte, error) {
					cfg := scenario.CampaignConfig{
						Generator:  g.Campaign.Generator,
						Gen:        g.Campaign.Gen,
						Count:      g.Campaign.Count,
						Seeds:      g.Campaign.Seeds,
						ShardIndex: g.Block,
						ShardCount: g.Campaign.Blocks,
					}
					agg, err := scenario.NewAggregate(cfg)
					if err != nil {
						return nil, err
					}
					for v, serr := range scenario.StreamCampaign(ctx, cfg) {
						if serr != nil {
							return nil, serr
						}
						agg.Add(v)
					}
					return agg.Checkpoint().Encode()
				},
			})
		}()
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-coordDone; err != nil {
		t.Fatalf("pefcoord: %v\nstderr:\n%s", err, stderr.String())
	}
	if stdout.String() != want {
		t.Fatalf("coordinator report diverged from single-process bytes:\n--- coord ---\n%s\n--- whole ---\n%s",
			stdout.String(), want)
	}
	summary := stderr.String()
	if !strings.Contains(summary, "lease summary:") {
		t.Fatalf("no lease summary on stderr:\n%s", summary)
	}
}

func TestCoordinatorFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-count", "0"},
		{"-seeds", "0"},
		{"-blocks", "0"},
		{"-family", "nope"},
		{"-maxring", "3"},
		{"positional"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestCoordinatorInterrupt pins the signal path: a cancelled context
// makes run exit non-zero with the lease summary on stderr instead of
// hanging on an unfinished campaign.
func TestCoordinatorInterrupt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stderr strings.Builder
	err := run(ctx, []string{"-listen", "127.0.0.1:0", "-count", "8", "-blocks", "2"}, io.Discard, &stderr)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted coordinator: %v", err)
	}
	if !strings.Contains(stderr.String(), "lease summary:") {
		t.Fatalf("no summary on interrupt; stderr:\n%s", stderr.String())
	}
}
