// Command pefexperiments runs the complete experiment index of DESIGN.md —
// every table and figure of the paper plus the extension experiments — and
// writes the markdown report that EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"

	"pef/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pefexperiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed  = flag.Uint64("seed", 1, "experiment seed")
		quick = flag.Bool("quick", false, "reduced horizons and sweeps")
		only  = flag.String("only", "", "run a single experiment by ID (e.g. E-F2)")
	)
	flag.Parse()

	cfg := harness.Config{Seed: *seed, Quick: *quick}
	fmt.Printf("# Experiment report (seed=%d, quick=%t)\n", *seed, *quick)

	if *only != "" {
		exp, ok := harness.Find(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		res, err := exp.Run(cfg)
		if err != nil {
			return err
		}
		if err := harness.WriteResult(os.Stdout, res); err != nil {
			return err
		}
		if !res.Pass {
			return fmt.Errorf("experiment %s failed", *only)
		}
		return nil
	}

	results, err := harness.RunAll(cfg, os.Stdout)
	if err != nil {
		return err
	}
	failures := 0
	for _, r := range results {
		if !r.Pass {
			failures++
		}
	}
	fmt.Printf("\n---\n%d/%d experiments reproduce the paper's predictions.\n",
		len(results)-failures, len(results))
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
