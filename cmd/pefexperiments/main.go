// Command pefexperiments runs the complete experiment index of DESIGN.md —
// every table and figure of the paper plus the extension experiments — and
// writes the markdown report that EXPERIMENTS.md records.
//
// Beyond the classic single-seed report, the command sweeps the index over
// many adversary schedules via the concurrent batch engine:
//
//	pefexperiments                      # full index, seed 1, markdown report
//	pefexperiments -only E-F2           # one experiment
//	pefexperiments -seeds 8             # sweep seeds 1..8, aggregate report
//	pefexperiments -seeds 32 -workers 8 # same sweep, 8 workers
//	pefexperiments -seeds 8 -json       # machine-readable sweep output
//
// Flags:
//
//	-seed N     base seed (default 1)
//	-seeds N    sweep N consecutive seeds starting at -seed (default 1)
//	-workers M  worker pool size; <1 means GOMAXPROCS. Output is
//	            byte-identical for any worker count.
//	-json       emit the sweep as JSON (for BENCH_*.json trajectories)
//	-timings    add per-job wall times to -json output (non-deterministic;
//	            feeds pefbenchdiff's wall-time comparison)
//	-only ID    restrict to a single experiment (combines with -seeds)
//	-shard      split heavy ring-size sweeps into per-(ring, victim) jobs
//	            so no single experiment serializes on one worker. On by
//	            default since the report consumers migrated to the finer
//	            row IDs (E-T1.R1#n=4, E-T1.R2#n=4/a=keep-direction, …);
//	            pass -shard=false for the coarse one-row-per-experiment
//	            tables.
//	-lockstep   exercise the bit-parallel lockstep engine in experiments
//	            that use it (E-X12). On by default; -lockstep=false is the
//	            scalar escape hatch for bisecting a suspected engine
//	            divergence, mirroring pefscenarios -lockstep=false.
//	-quick      reduced horizons and sweeps
//	-progress N print a progress line to stderr every N retired jobs
//	            (stderr only: stdout stays byte-identical)
//	-telemetry-addr A
//	            serve the live pool telemetry (JSON under /metrics) and
//	            net/http/pprof on A (":0" picks a free port; the chosen
//	            address is printed to stderr)
//	-trace-events P
//	            write sweep lifecycle events (sweep-start, job-retired,
//	            sweep-end) to P as JSONL, with monotonic sequence numbers
//	            and no wall clocks — byte-identical for any worker count
//
// The process exits non-zero when any (experiment, seed) job errors or
// fails to reproduce the paper's prediction, in every mode — single run,
// -only, sweep, and -json — so CI can trust the exit code.
//
// SIGINT/SIGTERM interrupt a sweep gracefully: in-flight jobs drain, the
// partial report is still rendered, and the process exits non-zero with
// an "interrupted after N of M" note.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"pef/internal/harness"
	"pef/internal/metrics"
	"pef/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pefexperiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pefexperiments", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "base experiment seed")
		seeds    = fs.Int("seeds", 1, "number of consecutive seeds to sweep, starting at -seed")
		workers  = fs.Int("workers", 0, "worker pool size (<1 means GOMAXPROCS)")
		jsonOut  = fs.Bool("json", false, "emit the sweep as JSON")
		timings  = fs.Bool("timings", false, "include per-job wall times in -json output (non-deterministic; for pefbenchdiff)")
		quick    = fs.Bool("quick", false, "reduced horizons and sweeps")
		shard    = fs.Bool("shard", true, "split heavy ring-size sweeps into per-ring-size jobs (-shard=false for coarse rows)")
		lockstep = fs.Bool("lockstep", true, "exercise the bit-parallel lockstep engine where experiments use it (-lockstep=false for the scalar escape hatch)")
		only     = fs.String("only", "", "run a single experiment by ID (e.g. E-F2)")
		progress = fs.Int("progress", 0, "print a progress line to stderr every N retired jobs")
		telAddr  = fs.String("telemetry-addr", "", "serve the live pool telemetry and pprof on this address (\":0\" picks a free port)")
		traceFn  = fs.String("trace-events", "", "write sweep lifecycle events to this path as JSONL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *progress < 0 {
		return fmt.Errorf("-progress must be >= 0, got %d", *progress)
	}

	exps := harness.All()
	if *only != "" {
		exp, ok := harness.Find(*only)
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		exps = []harness.Experiment{exp}
	}
	sweep := harness.Seeds(*seed, *seeds)

	cfg := harness.BatchConfig{
		Experiments:     exps,
		Seeds:           sweep,
		Workers:         *workers,
		Quick:           *quick,
		Shard:           *shard,
		DisableLockstep: !*lockstep,
	}

	// Observability wiring. Nothing here writes to stdout, so the report
	// and -json bytes are identical with these flags on or off (the CI
	// trajectory comparison depends on that).
	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Metrics = harness.NewPoolMetrics(reg, "pool")
		srv, err := telemetry.Serve(*telAddr, reg.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	var tracer *telemetry.Tracer
	if *traceFn != "" {
		f, err := os.Create(*traceFn)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = telemetry.NewTracer(f)
	}
	// observe sees every retired job in canonical order (the OnResult
	// sequence is worker-count independent), feeding -progress and the
	// event trace in every mode.
	retired := 0
	var observe func(harness.JobResult)
	if *progress > 0 || tracer != nil {
		observe = func(j harness.JobResult) {
			retired++
			tracer.Emit("job-retired", map[string]any{"id": j.ID, "seed": j.Seed, "pass": j.Passed()})
			if *progress > 0 && retired%*progress == 0 {
				fmt.Fprintf(stderr, "progress: %d jobs retired\n", retired)
			}
		}
		cfg.OnResult = observe
	}
	tracer.Emit("sweep-start", map[string]any{
		"experiments": len(exps), "seeds": len(sweep), "quick": *quick, "shard": *shard,
	})

	// A SIGINT/SIGTERM cancels ctx: RunBatch drains in-flight jobs, marks
	// unstarted ones cancelled, and returns the partial slice with the
	// context error. The partial report is still rendered — the drained
	// prefix is valid output — before the interrupt fails the process.
	var jobs []harness.JobResult
	var runErr error
	switch {
	case *jsonOut:
		jobs, runErr = harness.RunBatch(ctx, cfg)
		if eerr := writeJSON(stdout, sweep, *quick, *timings, jobs); eerr != nil {
			return eerr
		}
	case *seeds == 1:
		// Classic report: stream every result section in canonical order.
		fmt.Fprintf(stdout, "# Experiment report (seed=%d, quick=%t)\n", *seed, *quick)
		var werr error
		cfg.OnResult = func(j harness.JobResult) {
			if observe != nil {
				observe(j)
			}
			if werr != nil || j.Err != nil {
				return
			}
			werr = harness.WriteResult(stdout, j.Result)
		}
		jobs, runErr = harness.RunBatch(ctx, cfg)
		if werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "\n---\n%d/%d experiments reproduce the paper's predictions.\n", harness.Passes(jobs), len(jobs))
	default:
		fmt.Fprintf(stdout, "# Experiment sweep (seeds=%d..%d, quick=%t)\n", sweep[0], sweep[len(sweep)-1], *quick)
		jobs, runErr = harness.RunBatch(ctx, cfg)
		if werr := harness.WriteBatchReport(stdout, jobs); werr != nil {
			return werr
		}
	}

	tracer.Emit("sweep-end", map[string]any{"passes": harness.Passes(jobs), "total": len(jobs)})
	if terr := tracer.Err(); terr != nil {
		return terr
	}
	if runErr != nil {
		done := 0
		for _, j := range jobs {
			if !errors.Is(j.Err, context.Canceled) {
				done++
			}
		}
		return fmt.Errorf("interrupted after %d of %d experiment job(s): %w", done, len(jobs), runErr)
	}
	return failure(jobs)
}

// failure returns a non-nil error when any job errored or failed, so the
// process exit code reflects the sweep verdict.
func failure(jobs []harness.JobResult) error {
	for _, j := range jobs {
		if j.Err != nil {
			return j.Err
		}
	}
	if failed := len(jobs) - harness.Passes(jobs); failed > 0 {
		return fmt.Errorf("%d of %d experiment job(s) failed", failed, len(jobs))
	}
	return nil
}

// jsonJob is the machine-readable form of one (experiment, seed) outcome.
type jsonJob struct {
	ID       string   `json:"id"`
	Seed     uint64   `json:"seed"`
	Title    string   `json:"title"`
	Artifact string   `json:"artifact"`
	Pass     bool     `json:"pass"`
	Error    string   `json:"error,omitempty"`
	Notes    []string `json:"notes,omitempty"`
	Table    string   `json:"table,omitempty"`
	// Millis is the job's wall time, present only under -timings: the
	// committed BENCH_*.json trajectories stay byte-deterministic, while
	// timing-enabled captures feed pefbenchdiff's wall-time comparison.
	Millis float64 `json:"millis,omitempty"`
}

// jsonReport is the top-level -json document. It deliberately omits the
// worker count so reports are byte-identical for any -workers value.
type jsonReport struct {
	Seeds    []uint64            `json:"seeds"`
	Quick    bool                `json:"quick"`
	Jobs     []jsonJob           `json:"jobs"`
	Passes   int                 `json:"passes"`
	Total    int                 `json:"total"`
	PassRate float64             `json:"passRate"`
	Scalars  []metrics.ScalarRow `json:"scalars,omitempty"`
}

func writeJSON(w io.Writer, seeds []uint64, quick, timings bool, jobs []harness.JobResult) error {
	rep := jsonReport{Seeds: seeds, Quick: quick, Total: len(jobs)}
	rep.Scalars = harness.SweepAggregate(jobs).ScalarRows()
	for _, j := range jobs {
		jj := jsonJob{
			ID:       j.ID,
			Seed:     j.Seed,
			Title:    j.Result.Title,
			Artifact: j.Result.Artifact,
			Pass:     j.Passed(),
			Notes:    j.Result.Notes,
		}
		if timings {
			jj.Millis = float64(j.Elapsed.Microseconds()) / 1000
		}
		if j.Err != nil {
			jj.Error = j.Err.Error()
		}
		if j.Result.Table != nil && j.Result.Table.Rows() > 0 {
			jj.Table = j.Result.Table.String()
		}
		if jj.Pass {
			rep.Passes++
		}
		rep.Jobs = append(rep.Jobs, jj)
	}
	if rep.Total > 0 {
		rep.PassRate = float64(rep.Passes) / float64(rep.Total)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
