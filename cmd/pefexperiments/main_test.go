package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"pef/internal/harness"
)

// TestSweepByteIdenticalAcrossWorkers is the acceptance check from the
// batch-runner issue: -seeds 8 with -workers 1 and -workers 8 must emit
// byte-identical reports.
func TestSweepByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(extra ...string) string {
		var buf bytes.Buffer
		args := append([]string{"-quick", "-seeds", "8"}, extra...)
		if err := run(context.Background(), args, &buf, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return buf.String()
	}
	seq := render("-workers", "1")
	par := render("-workers", "8")
	if seq != par {
		t.Fatalf("sweep reports differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	for _, want := range []string{"Experiment sweep", "Aggregate", "Per-seed spread", "overall", "100.0%"} {
		if !strings.Contains(seq, want) {
			t.Errorf("sweep report missing %q", want)
		}
	}
}

func TestJSONByteIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		var buf bytes.Buffer
		args := []string{"-quick", "-seeds", "4", "-json", "-only", "E-T1.R5", "-workers", workers}
		if err := run(context.Background(), args, &buf, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return buf.String()
	}
	seq := render("1")
	if par := render("8"); seq != par {
		t.Fatal("JSON reports differ across worker counts")
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(seq), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Total != 4 || rep.Passes != 4 || rep.PassRate != 1 {
		t.Fatalf("unexpected JSON summary: total=%d passes=%d rate=%v", rep.Total, rep.Passes, rep.PassRate)
	}
	if len(rep.Jobs) != 4 || rep.Jobs[0].ID != "E-T1.R5" {
		t.Fatalf("unexpected jobs: %+v", rep.Jobs)
	}
}

func TestClassicSingleSeedReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Experiment report (seed=1, quick=true)") {
		t.Fatalf("missing classic header:\n%.200s", out)
	}
	for _, e := range harness.All() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("report missing %s", e.ID)
		}
	}
	if !strings.Contains(out, "experiments reproduce the paper's predictions.") {
		t.Error("report missing summary line")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-only", "bogus"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("unknown -only must error")
	}
	if err := run(context.Background(), []string{"-seeds", "0"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("-seeds 0 must error")
	}
}

// TestFailureDrivesExitCode checks the CI contract: any failing or
// erroring job in a batch makes run()'s caller exit non-zero.
func TestFailureDrivesExitCode(t *testing.T) {
	pass := harness.JobResult{ID: "A", Seed: 1, Result: harness.Result{Pass: true}}
	fail := harness.JobResult{ID: "B", Seed: 1, Result: harness.Result{Pass: false}}
	errJob := harness.JobResult{ID: "C", Seed: 1, Err: errors.New("boom")}

	if err := failure([]harness.JobResult{pass, pass}); err != nil {
		t.Errorf("all-pass batch must not error, got %v", err)
	}
	if err := failure([]harness.JobResult{pass, fail}); err == nil {
		t.Error("failing job must produce an error")
	}
	if err := failure([]harness.JobResult{pass, errJob}); !errors.Is(err, errJob.Err) {
		t.Errorf("erroring job must surface its error, got %v", err)
	}
}

// TestShardDefaultOn pins the ROADMAP migration: heavy ring-size sweeps
// decompose into per-(ring, victim) jobs by default, with -shard=false as
// the coarse-row escape hatch.
func TestShardDefaultOn(t *testing.T) {
	render := func(extra ...string) string {
		var buf bytes.Buffer
		args := append([]string{"-quick", "-seeds", "2", "-only", "E-T1.R1"}, extra...)
		if err := run(context.Background(), args, &buf, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return buf.String()
	}
	sharded := render()
	if !strings.Contains(sharded, "E-T1.R1#n=") {
		t.Fatalf("default run lacks sharded row IDs:\n%.400s", sharded)
	}
	coarse := render("-shard=false")
	if strings.Contains(coarse, "E-T1.R1#n=") {
		t.Fatalf("-shard=false still shards:\n%.400s", coarse)
	}
	if !strings.Contains(coarse, "E-T1.R1") {
		t.Fatal("-shard=false lost the experiment row")
	}
}
