package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservabilityFlagsKeepStdout pins the CI trajectory contract:
// -progress, -trace-events and -telemetry-addr never change a stdout
// byte, so BENCH_*.json captures stay comparable with them enabled.
func TestObservabilityFlagsKeepStdout(t *testing.T) {
	base := []string{"-quick", "-seeds", "2", "-json", "-only", "E-T1.R5"}
	var plain bytes.Buffer
	if err := run(context.Background(), base, &plain, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", base, err)
	}
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	instrumented := append([]string{
		"-progress", "1", "-trace-events", trace, "-telemetry-addr", "127.0.0.1:0",
	}, base...)
	var out, errOut bytes.Buffer
	if err := run(context.Background(), instrumented, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", instrumented, err)
	}
	if plain.String() != out.String() {
		t.Fatalf("observability flags changed stdout:\n--- plain ---\n%s\n--- instrumented ---\n%s",
			plain.String(), out.String())
	}
	if !strings.Contains(errOut.String(), "progress: 1 jobs retired") {
		t.Errorf("stderr missing progress lines:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "telemetry: serving http://") {
		t.Errorf("stderr missing telemetry address line:\n%s", errOut.String())
	}
}

// TestTraceEventsDeterministicAcrossWorkers checks that the sweep's event
// trace — job retirement order included — is byte-identical for any
// worker count, and brackets the sweep with start/end events.
func TestTraceEventsDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		args := []string{"-quick", "-seeds", "4", "-only", "E-T1.R5",
			"-workers", workers, "-trace-events", trace}
		if err := run(context.Background(), args, io.Discard, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	seq := render("1")
	if par := render("8"); seq != par {
		t.Fatalf("trace differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
	lines := strings.Split(strings.TrimSuffix(seq, "\n"), "\n")
	if !strings.Contains(lines[0], `"event":"sweep-start"`) {
		t.Errorf("first event is not sweep-start: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"event":"sweep-end"`) {
		t.Errorf("last event is not sweep-end: %s", lines[len(lines)-1])
	}
	retired := 0
	for _, line := range lines {
		if strings.Contains(line, `"event":"job-retired"`) {
			retired++
		}
	}
	if retired != 4 {
		t.Errorf("expected 4 job-retired events, got %d:\n%s", retired, seq)
	}
}
