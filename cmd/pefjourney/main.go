// Command pefjourney analyzes the temporal structure of a dynamics class:
// foremost-arrival matrix, temporal diameter, recurrence bound, and the
// taxonomy classification of Casteigts et al. — the machinery behind the
// paper's connected-over-time assumption.
//
// Example:
//
//	pefjourney -n 8 -dyn bernoulli -p 0.4 -horizon 400
package main

import (
	"flag"
	"fmt"
	"os"

	"pef/internal/classes"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pefjourney:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 8, "ring size")
		dyn     = flag.String("dyn", "bernoulli", "dynamics: static|bernoulli|eventual-missing|t-interval|roving|chain|periodic")
		p       = flag.Float64("p", 0.5, "edge presence probability (bernoulli)")
		edge    = flag.Int("edge", 0, "edge index (eventual-missing, chain)")
		from    = flag.Int("from", 32, "removal time (eventual-missing)")
		tint    = flag.Int("t", 4, "interval length (t-interval)")
		period  = flag.Int("period", 3, "rotation period (roving) / base period (periodic)")
		seed    = flag.Uint64("seed", 42, "random seed")
		horizon = flag.Int("horizon", 400, "analysis horizon")
		start   = flag.Int("start", 0, "journey departure instant")
	)
	flag.Parse()

	g, err := buildGraph(*dyn, *n, *p, *edge, *from, *tint, *period, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("dynamics %s on %d nodes, horizon %d, departures at t=%d\n\n", *dyn, *n, *horizon, *start)

	// Foremost arrival matrix.
	table := metrics.NewTable(append([]string{"src\\dst"}, nodeHeaders(*n)...)...)
	diameter := 0
	unreachable := 0
	for src := 0; src < *n; src++ {
		arr := dyngraph.ForemostArrivals(g, src, *start, *horizon)
		row := make([]interface{}, 0, *n+1)
		row = append(row, src)
		for dst, a := range arr {
			if a < 0 {
				row = append(row, "-")
				if dst != src {
					unreachable++
				}
				continue
			}
			lag := a - *start
			row = append(row, lag)
			if lag > diameter {
				diameter = lag
			}
		}
		table.AddRow(row...)
	}
	fmt.Println("foremost arrival lags (instants after departure):")
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\ntemporal diameter (from t=%d): %d\n", *start, diameter)
	if unreachable > 0 {
		fmt.Printf("UNREACHABLE pairs within horizon: %d — not connected-over-time here\n", unreachable)
	}

	if delta, ok := dyngraph.RecurrenceBound(g, *horizon); ok {
		fmt.Printf("edge recurrence bound Δ: %d\n", delta)
	} else {
		fmt.Println("edge recurrence bound Δ: none (an edge looks eventually missing)")
	}

	m := classes.Classify(g, *horizon, 8, 4**period)
	fmt.Printf("\ntaxonomy: always-connected=%t  T-interval=%d  period=%d  Δ=%d  recurrent=%t  connected-over-time=%t\n",
		m.AlwaysConnected, m.TInterval, m.Period, m.RecurrenceBound, m.Recurrent, m.ConnectedOverTime)
	if !m.RespectsHierarchy() {
		return fmt.Errorf("classification violates the taxonomy hierarchy: %+v", m)
	}
	return nil
}

func nodeHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

func buildGraph(name string, n int, p float64, edge, from, tint, period int, seed uint64) (dyngraph.EvolvingGraph, error) {
	switch name {
	case "static":
		return dyngraph.NewStatic(n), nil
	case "bernoulli":
		return dynamics.NewBernoulli(n, p, seed), nil
	case "eventual-missing":
		base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0x51DE)
		return dyngraph.NewEventualMissing(base, edge%n, from), nil
	case "t-interval":
		return dynamics.NewTInterval(n, tint, seed), nil
	case "roving":
		return dynamics.NewRovingMissing(n, period), nil
	case "chain":
		base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0xC4A1)
		return dynamics.NewChain(base, edge%n), nil
	case "periodic":
		patterns := make([][]bool, n)
		for e := range patterns {
			pat := make([]bool, period+1)
			pat[e%(period+1)] = true
			pat[period] = true
			patterns[e] = pat
		}
		return dynamics.NewPeriodic(n, patterns)
	default:
		return nil, fmt.Errorf("unknown dynamics %q", name)
	}
}
