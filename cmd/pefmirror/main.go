// Command pefmirror builds and verifies the Lemma 4.1 gadget (Figure 1)
// live: it runs the chosen algorithm as a single robot against the
// Theorem 5.1 confinement adversary until it stalls, transfers the stalled
// prefix onto the 8-node mirror ring G′, re-executes two opposite-chirality
// copies there, and reports Claims 1–4 plus the permanent freeze.
//
// Example:
//
//	pefmirror -alg keep-direction -n 8
package main

import (
	"flag"
	"fmt"
	"os"

	"pef"
	"pef/internal/adversary"
	"pef/internal/fsync"
	"pef/internal/robot"
	"pef/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pefmirror:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo     = flag.String("alg", "keep-direction", "victim algorithm")
		n        = flag.Int("n", 8, "original ring size (>= 3)")
		horizon  = flag.Int("horizon", 200, "rounds to hunt for a stall")
		patience = flag.Int("patience", 50, "rounds without phase progress that count as a stall")
		extra    = flag.Int("extra", 48, "instants to verify beyond the stall")
		viz      = flag.Int("viz", 12, "space-time rows of the mirror execution to print")
	)
	flag.Parse()
	pef.RegisterBuiltins()

	alg, err := pef.NewAlgorithm(*algo)
	if err != nil {
		return err
	}

	// Phase 1: produce a stalled prefix with the Theorem 5.1 adversary.
	adv := adversary.NewOneRobotConfinement(*n, 0, 0)
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
		Observers:   []fsync.Observer{rec},
		RecordGraph: true,
	})
	if err != nil {
		return err
	}
	sim.Run(*horizon)
	info, stalled := adv.Stall(sim.Now(), *patience)
	if !stalled {
		return fmt.Errorf("%s never stalled within %d rounds (it cycles; the direct Theorem 5.1 run already confines it — try keep-direction, pendulum-3, doubling-zigzag or pef3+)", alg.Name(), *horizon)
	}
	fmt.Printf("stall found: robot on node %d since t=%d, blocked side %s\n",
		info.Node, info.Since, info.MissingSide)

	// Phase 2: build and verify the gadget.
	world, err := adversary.BuildMirror(adversary.MirrorInput{
		Alg:         alg,
		Chir:        robot.RightIsCW,
		G:           sim.RecordedGraph(),
		Traj:        rec.Trajectory(0)[:info.Since+1],
		States:      rec.States(0)[:info.Since+1],
		StallTime:   info.Since,
		MissingSide: info.MissingSide,
	})
	if err != nil {
		return err
	}
	fmt.Printf("mirror G': %d nodes, r1 starts at %d (%v), r2 at %d (%v), cut edge removed from t=%d\n",
		adversary.MirrorSize,
		world.Placements[0].Node, world.Placements[0].Chirality,
		world.Placements[1].Node, world.Placements[1].Chirality,
		world.StallTime)

	rep, err := world.Verify(*extra)
	if err != nil {
		return err
	}
	fmt.Printf("\nClaim 1 (symmetric actions)      %t\n", rep.Claim1)
	fmt.Printf("Claim 2 (odd distance, no tower) %t\n", rep.Claim2)
	fmt.Printf("Claim 3 (prefix retraced)        %t\n", rep.Claim3)
	fmt.Printf("Claim 4 (adjacent, same state)   %t\n", rep.Claim4)
	fmt.Printf("frozen forever after stall       %t\n", rep.StalledForever)
	fmt.Printf("distinct G' nodes visited        %d/%d\n", rep.DistinctVisited, adversary.MirrorSize)
	for _, f := range rep.Failures {
		fmt.Println("violation:", f)
	}

	if *viz > 0 {
		// Re-run the mirror execution to render it.
		mrec := &fsync.SnapshotRecorder{}
		msim, err := fsync.New(fsync.Config{
			Algorithm:   alg,
			Dynamics:    fsync.Oblivious{G: world.Graph},
			Placements:  world.Placements[:],
			Observers:   []fsync.Observer{mrec},
			RecordGraph: true,
		})
		if err != nil {
			return err
		}
		msim.Run(world.StallTime + *viz)
		snaps := make([]fsync.Snapshot, mrec.Len())
		for i := range snaps {
			snaps[i] = mrec.At(i)
		}
		fmt.Println()
		fmt.Print(trace.Header(adversary.MirrorSize))
		fmt.Print(trace.SpaceTimeString(msim.RecordedGraph(), snaps, 0, world.StallTime+*viz))
	}
	if !rep.OK() {
		return fmt.Errorf("claims failed")
	}
	return nil
}
