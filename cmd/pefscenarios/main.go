// Command pefscenarios sweeps generated scenarios through the property
// oracle: a seeded generator samples the scenario space (ring size, team,
// algorithm, placement, dynamics family and parameters, horizon), each
// sample runs through the simulator, and the oracle checks the paper's
// predicates — exploration where Table 1 says possible, confinement where
// its adversaries apply. Campaigns shard across the batch worker pool and
// their output is byte-identical for any worker count.
//
//	pefscenarios                               # 100 uniform scenarios, seed 1
//	pefscenarios -count 1000 -seeds 4          # 4000 scenarios, seeds 1..4
//	pefscenarios -family boundary -json        # machine-readable sweep output
//	pefscenarios -list                         # list the generator families
//
// Flags:
//
//	-count N    scenarios generated per seed (default 100)
//	-seed N     base generator seed (default 1)
//	-seeds N    sweep N consecutive generator seeds starting at -seed
//	-workers M  worker pool size; <1 means GOMAXPROCS. Output is
//	            byte-identical for any worker count.
//	-family F   generator family: uniform, boundary, markov, adversarial
//	-maxring N  largest sampled ring size (default 16)
//	-json       emit the versioned campaign document (for BENCH_*.json)
//	-list       list the generator families and exit
//
// The process exits non-zero when any scenario violates its predicate or
// errors, so CI can trust the exit code.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"pef/internal/harness"
	"pef/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pefscenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pefscenarios", flag.ContinueOnError)
	var (
		count   = fs.Int("count", 100, "scenarios generated per seed")
		seed    = fs.Uint64("seed", 1, "base generator seed")
		seeds   = fs.Int("seeds", 1, "number of consecutive generator seeds, starting at -seed")
		workers = fs.Int("workers", 0, "worker pool size (<1 means GOMAXPROCS)")
		family  = fs.String("family", "uniform", "generator family (see -list)")
		maxRing = fs.Int("maxring", 16, "largest sampled ring size")
		jsonOut = fs.Bool("json", false, "emit the versioned campaign document")
		list    = fs.Bool("list", false, "list the generator families and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, g := range scenario.Generators() {
			fmt.Fprintf(stdout, "%-12s %s\n", g.Name, g.Description)
		}
		return nil
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}

	c, err := scenario.RunCampaign(context.Background(), scenario.CampaignConfig{
		Generator: *family,
		Gen:       scenario.GenConfig{MaxRing: *maxRing},
		Count:     *count,
		Seeds:     harness.Seeds(*seed, *seeds),
		Workers:   *workers,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := c.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := c.WriteReport(stdout); err != nil {
		return err
	}
	if violations := len(c.Violations()); violations > 0 {
		return fmt.Errorf("%d of %d scenario(s) violate the paper's predicates", violations, len(c.Verdicts))
	}
	return nil
}
