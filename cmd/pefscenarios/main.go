// Command pefscenarios sweeps generated scenarios through the property
// oracle: a seeded generator samples the scenario space (ring size, team,
// algorithm, placement, dynamics family and parameters, horizon), each
// sample runs through the simulator, and the oracle checks the paper's
// predicates — exploration where Table 1 says possible, confinement where
// its adversaries apply. Campaigns stream through the batch worker pool
// with bounded memory (verdicts fold into an online aggregate, never a
// slice) and their output is byte-identical for any worker count.
//
// Every name the tool accepts — generators, dynamics families, algorithms,
// oracle properties — resolves through the scenario extension registry;
// -list prints the full enumeration.
//
//	pefscenarios                               # 100 uniform scenarios, seed 1
//	pefscenarios -count 1000 -seeds 4          # 4000 scenarios, seeds 1..4
//	pefscenarios -family boundary -json        # machine-readable sweep output
//	pefscenarios -family registered \
//	             -families periodic,compose:union  # combinator families only
//	pefscenarios -list                         # list the registry contents
//
//	# checkpoint/resume: run half, stop, resume — final report identical
//	pefscenarios -count 1000 -checkpoint c.json -halt-after 500
//	pefscenarios -resume c.json
//
//	# multi-process sharding: run disjoint blocks anywhere, then merge —
//	# the merged report is byte-identical to the single-process run
//	pefscenarios -count 1000 -shard-index 0 -shard-count 2 -checkpoint a.json
//	pefscenarios -count 1000 -shard-index 1 -shard-count 2 -checkpoint b.json
//	pefscenarios -merge a.json b.json
//
//	# fault-tolerant fleet: join a pefcoord lease fabric as a worker —
//	# the coordinator assigns blocks, tracks heartbeats, and re-leases
//	# work from dead workers (see cmd/pefcoord)
//	pefscenarios -worker-coord http://127.0.0.1:7077 -worker-id w1
//
// Flags:
//
//	-count N         scenarios generated per seed (default 100)
//	-seed N          base generator seed (default 1)
//	-seeds N         sweep N consecutive generator seeds starting at -seed
//	-workers M       worker pool size; <1 means GOMAXPROCS. Output is
//	                 byte-identical for any worker count.
//	-family F        generator: uniform, boundary, markov, adversarial,
//	                 registered (see -list)
//	-families F,G    restrict the "registered" generator to these
//	                 registered explorable families
//	-family-weights  bias the "registered" generator's family pool,
//	                 e.g. "bernoulli=3,periodic=1" (exclusive with
//	                 -families; equal weights sample identically to it)
//	-maxring N       largest sampled ring size (default 16)
//	-lockstep        run shape-aligned scenarios on the bit-parallel
//	                 lockstep engine, up to 64 seeds per machine word
//	                 (default true; -lockstep=false forces the scalar
//	                 engine — output is byte-identical either way)
//	-lanewidth N     scenarios batched per worker job for lane packing
//	                 (default 1024; ignored with -lockstep=false)
//	-timings         record the campaign's wall time: a trailing line in
//	                 report mode, the "millis" field in -json mode (the
//	                 only field that varies run to run)
//	-json            emit the versioned campaign document (for BENCH_*.json)
//	-list            list the registry contents (generators, families,
//	                 algorithms, properties) and exit
//	-checkpoint P    write a resumable campaign checkpoint to P when the
//	                 campaign finishes or halts
//	-checkpoint-every N
//	                 additionally write a rotating checkpoint (P.1, with
//	                 the previous one kept at P.2; fsync + atomic rename)
//	                 every N aggregated scenarios, so a very long sweep
//	                 survives a kill without waiting for the final write
//	-halt-after N    stop after aggregating N scenarios (requires
//	                 -checkpoint; simulates a kill for resume testing)
//	-resume P        continue the campaign checkpointed at P: its
//	                 generator, bounds, count, seeds and shard block are
//	                 adopted, the finished prefix is skipped, and the
//	                 final report is byte-identical to an uninterrupted
//	                 run. Checkpoints carry a content checksum; when P is
//	                 corrupt or truncated, the resume falls back to the
//	                 rotation files (P.1, then P.2) with a loud stderr
//	                 warning instead of failing or silently restarting.
//	-shard-index I   with -shard-count, run only shard I (0-based) of the
//	-shard-count C   canonical stream: the contiguous block
//	                 [I·total/C, (I+1)·total/C). Requires -checkpoint so
//	                 the block's aggregate can be merged later.
//	-merge A B ...   fold completed per-shard checkpoints into the
//	                 whole-campaign report (they must tile the stream) and
//	                 exit with the usual violation status
//	-minimize        shrink each violation to a minimal reproducer and
//	                 append it to the report (report mode only)
//	-progress N      print a progress line to stderr every N aggregated
//	                 scenarios (stderr only: stdout stays byte-identical)
//	-telemetry-addr A
//	                 serve the live telemetry snapshot (JSON under
//	                 /metrics) and net/http/pprof on A (":0" picks a free
//	                 port; the chosen address is printed to stderr)
//	-trace-events P  append structured campaign lifecycle events
//	                 (campaign-start, block-retired, checkpoint-written,
//	                 campaign-end) to P as JSONL; the trace carries
//	                 monotonic sequence numbers and no wall clocks, so it
//	                 is byte-identical for any worker count
//
//	-worker-coord U  worker mode: join the pefcoord lease fabric at base
//	                 URL U and run granted blocks until the campaign is
//	                 done. The coordinator owns the campaign identity, so
//	                 every campaign-shaping flag conflicts; only engine
//	                 knobs (-workers, -lockstep, -lanewidth) apply.
//	-worker-id ID    worker name in the lease fabric (default
//	                 worker-<pid>)
//	-chaos-seed N    arm the deterministic fault schedule: per the seeded
//	                 plan the worker kills, stalls, or double-acks leases
//	                 (lease.Chaos), chaos-proving the coordinator's
//	                 recovery — the merged report must stay byte-identical
//
// The observability flags never change stdout: reports, JSON documents
// and checkpoints are byte-identical with them on or off.
//
// SIGINT/SIGTERM interrupt a campaign gracefully: the stream stops at a
// verdict boundary, in-flight runs drain, and with -checkpoint set the
// clean prefix is written as a final resumable checkpoint before the
// process exits non-zero.
//
// The process exits non-zero when any scenario violates its predicate or
// errors, so CI can trust the exit code.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pef/internal/harness"
	"pef/internal/scenario"
	"pef/internal/telemetry"
)

func main() {
	// One SIGINT/SIGTERM asks the campaign to drain and checkpoint; a
	// second one restores default delivery and kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pefscenarios:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pefscenarios", flag.ContinueOnError)
	var (
		count      = fs.Int("count", 100, "scenarios generated per seed")
		seed       = fs.Uint64("seed", 1, "base generator seed")
		seeds      = fs.Int("seeds", 1, "number of consecutive generator seeds, starting at -seed")
		workers    = fs.Int("workers", 0, "worker pool size (<1 means GOMAXPROCS)")
		family     = fs.String("family", "uniform", "generator (see -list)")
		families   = fs.String("families", "", "comma-separated family pool for the registered generator")
		weights    = fs.String("family-weights", "", "weighted family pool for the registered generator, e.g. \"bernoulli=3,periodic=1\"")
		maxRing    = fs.Int("maxring", 16, "largest sampled ring size")
		lockstep   = fs.Bool("lockstep", true, "run shape-aligned scenarios on the bit-parallel lane engine")
		laneWidth  = fs.Int("lanewidth", 0, "scenarios batched per worker job for lane packing (<1 means 1024)")
		timings    = fs.Bool("timings", false, "record the campaign's wall time in the output")
		jsonOut    = fs.Bool("json", false, "emit the versioned campaign document")
		list       = fs.Bool("list", false, "list the registry contents and exit")
		checkpoint = fs.String("checkpoint", "", "write a resumable checkpoint to this path on finish or halt")
		ckptEvery  = fs.Int("checkpoint-every", 0, "write a rotating checkpoint every N aggregated scenarios")
		haltAfter  = fs.Int("halt-after", 0, "stop after aggregating this many scenarios (requires -checkpoint)")
		resume     = fs.String("resume", "", "resume the campaign checkpointed at this path")
		shardIdx   = fs.Int("shard-index", 0, "run only this shard of the campaign (with -shard-count)")
		shardCnt   = fs.Int("shard-count", 0, "number of contiguous shards the campaign is split into")
		merge      = fs.Bool("merge", false, "merge completed per-shard checkpoint files (positional args) into one report")
		minimize   = fs.Bool("minimize", false, "append a minimal reproducer per violation (report mode only)")
		progress   = fs.Int("progress", 0, "print a progress line to stderr every N aggregated scenarios")
		telAddr    = fs.String("telemetry-addr", "", "serve the live telemetry snapshot and pprof on this address (\":0\" picks a free port)")
		traceFile  = fs.String("trace-events", "", "write campaign lifecycle events to this path as JSONL")
		workerURL  = fs.String("worker-coord", "", "join the pefcoord lease fabric at this base URL as a worker")
		workerID   = fs.String("worker-id", "", "worker name in the lease fabric (default worker-<pid>)")
		chaosSeed  = fs.Uint64("chaos-seed", 0, "arm the deterministic fault schedule with this seed (worker mode only; 0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return writeList(stdout)
	}
	if *workerURL != "" {
		// Worker mode: the campaign identity comes from the coordinator's
		// grants, so every local campaign-shaping flag is a conflict.
		for _, name := range []string{"count", "seed", "seeds", "family", "families", "family-weights", "maxring",
			"checkpoint", "checkpoint-every", "halt-after", "resume", "shard-index", "shard-count",
			"merge", "minimize", "json", "timings"} {
			if explicitFlag(fs, name) {
				return fmt.Errorf("-%s conflicts with -worker-coord (the coordinator owns the campaign; workers only bring -workers/-lockstep/-lanewidth)", name)
			}
		}
		return runWorker(ctx, strings.TrimRight(*workerURL, "/"), *workerID, workerOptions{
			Workers:         *workers,
			DisableLockstep: !*lockstep,
			LaneWidth:       *laneWidth,
			ChaosSeed:       *chaosSeed,
		}, stderr)
	}
	if *chaosSeed != 0 {
		return fmt.Errorf("-chaos-seed requires -worker-coord (chaos is injected on the worker side)")
	}
	if *workerID != "" {
		return fmt.Errorf("-worker-id requires -worker-coord")
	}
	if *merge {
		return runMerge(fs.Args(), *jsonOut, stdout)
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v (checkpoint files are only positional with -merge)", fs.Args())
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *haltAfter < 0 {
		return fmt.Errorf("-halt-after must be >= 0, got %d", *haltAfter)
	}
	if *haltAfter > 0 && *checkpoint == "" {
		return fmt.Errorf("-halt-after requires -checkpoint (a halted campaign without one is unrecoverable)")
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *checkpoint == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint (it rotates that path)")
	}
	if *shardCnt > 0 && *checkpoint == "" {
		return fmt.Errorf("-shard-count requires -checkpoint (a shard's aggregate is merged from its checkpoint)")
	}
	if *minimize && *jsonOut {
		return fmt.Errorf("-minimize applies to the report mode, not -json")
	}
	if *progress < 0 {
		return fmt.Errorf("-progress must be >= 0, got %d", *progress)
	}

	// When resuming, the campaign identity comes from the checkpoint;
	// explicitly set flags still apply (and conflicts are rejected), but
	// flag *defaults* must not shadow the checkpointed values.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	cfg := scenario.CampaignConfig{
		Workers:         *workers,
		ShardIndex:      *shardIdx,
		ShardCount:      *shardCnt,
		DisableLockstep: !*lockstep,
		LaneWidth:       *laneWidth,
	}
	if *resume != "" {
		ckpt, err := loadResumeCheckpoint(*resume, stderr)
		if err != nil {
			return err
		}
		cfg.Resume = ckpt
	}
	if *resume == "" || explicit["family"] {
		cfg.Generator = *family
	}
	if *resume == "" || explicit["count"] {
		cfg.Count = *count
	}
	if *resume == "" || explicit["seed"] || explicit["seeds"] {
		cfg.Seeds = harness.Seeds(*seed, *seeds)
	}
	if *resume == "" || explicit["maxring"] || explicit["families"] || explicit["family-weights"] {
		cfg.Gen = scenario.GenConfig{MaxRing: *maxRing, Families: *families, FamilyWeights: *weights}
	}

	// Observability wiring. None of it touches stdout: telemetry and the
	// event trace are read-only taps, so reports, JSON documents and
	// checkpoints stay byte-identical with these flags on or off.
	var tel *scenario.Telemetry
	if *telAddr != "" {
		tel = scenario.NewTelemetry()
		cfg.Telemetry = tel
		srv, err := telemetry.Serve(*telAddr, tel.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	var tracer *telemetry.Tracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = telemetry.NewTracer(f)
		cfg.Trace = tracer
	}

	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		return err
	}
	start := agg.Start() + agg.Done()
	halted := false
	interrupted := false
	began := time.Now()
	// The campaign itself runs under the background context: on a signal
	// we stop consuming at a verdict boundary instead, which cancels the
	// pool, drains in-flight runs, and leaves the aggregate covering a
	// clean prefix — exactly what a resumable checkpoint needs. Killing
	// the stream's context would instead flood the tail of the stream
	// with cancellation verdicts and poison the aggregate.
	for v, serr := range scenario.StreamCampaign(context.Background(), cfg) {
		if serr != nil && v.ID == "" {
			return serr // configuration failure: nothing ran
		}
		agg.Add(v)
		ran := agg.Start() + agg.Done() - start
		if *progress > 0 && ran%*progress == 0 {
			fmt.Fprintf(stderr, "progress: %d/%d scenarios, %d violations\n",
				agg.Done(), agg.End()-agg.Start(), len(agg.Violations()))
		}
		if *ckptEvery > 0 && ran%*ckptEvery == 0 {
			if err := writeRotatingCheckpoint(*checkpoint, agg); err != nil {
				return err
			}
			tracer.Emit("checkpoint-written", map[string]any{"kind": "rotating", "done": agg.Done()})
		}
		if ctx.Err() != nil {
			interrupted = true
			halted = true
			break
		}
		if *haltAfter > 0 && ran >= *haltAfter {
			halted = true
			break
		}
	}
	if interrupted && *checkpoint == "" {
		return fmt.Errorf("interrupted after %d of %d scenarios (no -checkpoint set, progress discarded)",
			agg.Done(), agg.End()-agg.Start())
	}
	if *checkpoint != "" {
		data, err := agg.Checkpoint().Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*checkpoint, data, 0o644); err != nil {
			return err
		}
		tracer.Emit("checkpoint-written", map[string]any{"kind": "final", "done": agg.Done()})
	}
	if halted {
		tracer.Emit("campaign-end", map[string]any{"done": agg.Done(), "halted": true})
		if err := tracer.Err(); err != nil {
			return err
		}
		if interrupted {
			// Non-nil so the exit code reflects the interruption, but the
			// campaign state is safe: in-flight runs drained and the clean
			// prefix is checkpointed.
			return fmt.Errorf("interrupted after %d of %d scenarios; resume with -resume %s",
				agg.Done(), agg.End()-agg.Start(), *checkpoint)
		}
		fmt.Fprintf(stdout, "halted after %d of %d scenarios; resume with -resume %s\n",
			agg.Done(), agg.End()-agg.Start(), *checkpoint)
		return nil
	}

	elapsed := time.Since(began)
	if *timings {
		agg.SetWallMillis(elapsed.Milliseconds())
	}
	if tel != nil {
		tel.Registry().Counter("campaign." + generatorName(cfg) + ".millis").Add(elapsed.Milliseconds())
	}
	tracer.Emit("campaign-end", map[string]any{"done": agg.Done(), "violations": len(agg.Violations())})
	if err := tracer.Err(); err != nil {
		return err
	}
	if *jsonOut {
		if err := agg.WriteJSON(stdout); err != nil {
			return err
		}
	} else {
		if err := agg.WriteReport(stdout); err != nil {
			return err
		}
		if *timings {
			if _, err := fmt.Fprintf(stdout, "wall time: %d ms\n", elapsed.Milliseconds()); err != nil {
				return err
			}
		}
	}
	violations := agg.Violations()
	if *minimize {
		for _, v := range violations {
			m := scenario.Minimize(v.Spec)
			if _, err := fmt.Fprintf(stdout, "\nminimal reproducer for %s:\n  %s\n", v.ID, m.ID()); err != nil {
				return err
			}
			if enc, err := m.Encode(); err == nil {
				if _, err := fmt.Fprintf(stdout, "  %s\n", enc); err != nil {
					return err
				}
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d of %d scenario(s) violate the paper's predicates", len(violations), agg.Done())
	}
	return nil
}

// explicitFlag reports whether the user set a flag on the command line
// (as opposed to its default applying).
func explicitFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// loadResumeCheckpoint reads the checkpoint at path, falling back to the
// rotation siblings when the preferred file is corrupt, truncated, or
// missing: a campaign killed mid-write of c.json still resumes from the
// last intact rotating checkpoint (c.json.1, then c.json.2) — losing at
// most one -checkpoint-every window — with a loud stderr note instead of
// failing or silently restarting. Resuming from a rotation file directly
// (-resume c.json.1) falls back to its older sibling.
func loadResumeCheckpoint(path string, stderr io.Writer) (*scenario.Checkpoint, error) {
	candidates := []string{path}
	if strings.HasSuffix(path, ".1") {
		candidates = append(candidates, strings.TrimSuffix(path, ".1")+".2")
	} else if !strings.HasSuffix(path, ".2") {
		candidates = append(candidates, path+".1", path+".2")
	}
	var errs []error
	for i, p := range candidates {
		data, err := os.ReadFile(p)
		if err == nil {
			var ckpt *scenario.Checkpoint
			if ckpt, err = scenario.DecodeCheckpoint(data); err == nil {
				if i > 0 {
					fmt.Fprintf(stderr, "pefscenarios: WARNING: checkpoint %s is unusable (%v); resuming from rotation %s instead\n",
						path, errs[0], p)
				}
				return ckpt, nil
			}
		}
		errs = append(errs, fmt.Errorf("%s: %w", p, err))
	}
	if len(errs) > 1 {
		return nil, fmt.Errorf("checkpoint %s is unusable and no rotation could be recovered: %w", path, errors.Join(errs...))
	}
	return nil, errs[0]
}

// generatorName resolves the campaign's generator label for the
// campaign.<generator>.millis telemetry counter, mirroring the resolution
// StreamCampaign performs (resume checkpoints win, default "uniform").
func generatorName(cfg scenario.CampaignConfig) string {
	switch {
	case cfg.Generator != "":
		return cfg.Generator
	case cfg.Resume != nil && cfg.Resume.Generator != "":
		return cfg.Resume.Generator
	default:
		return "uniform"
	}
}

// writeList enumerates the extension registry: the generators plus every
// registered family, algorithm and oracle property, in canonical
// (registration) order.
func writeList(w io.Writer) error {
	r := scenario.DefaultRegistry()
	if _, err := fmt.Fprintln(w, "generators:"); err != nil {
		return err
	}
	for _, g := range scenario.Generators() {
		if _, err := fmt.Fprintf(w, "  %-20s %s\n", g.Name, g.Description); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "families:"); err != nil {
		return err
	}
	for _, name := range r.FamilyNames() {
		d, _ := r.Family(name)
		if _, err := fmt.Fprintf(w, "  %-20s %s\n", name, d.Description); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "algorithms:"); err != nil {
		return err
	}
	for _, name := range r.AlgorithmNames() {
		d, _ := r.AlgorithmDescriptor(name)
		if _, err := fmt.Fprintf(w, "  %-20s %s\n", name, d.Description); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "properties:"); err != nil {
		return err
	}
	for _, name := range r.PropertyNames() {
		p, _ := r.Property(name)
		if _, err := fmt.Fprintf(w, "  %-20s %s\n", name, p.Description); err != nil {
			return err
		}
	}
	return nil
}

// runMerge folds completed per-shard checkpoints into the whole-campaign
// report, byte-identical to a single-process run.
func runMerge(paths []string, jsonOut bool, stdout io.Writer) error {
	if len(paths) < 1 {
		return fmt.Errorf("-merge needs at least one checkpoint file")
	}
	ckpts := make([]*scenario.Checkpoint, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if ckpts[i], err = scenario.DecodeCheckpoint(data); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}
	agg, err := scenario.MergeCheckpoints(ckpts...)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := agg.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := agg.WriteReport(stdout); err != nil {
		return err
	}
	if n := len(agg.Violations()); n > 0 {
		return fmt.Errorf("%d of %d scenario(s) violate the paper's predicates", n, agg.Done())
	}
	return nil
}

// writeRotatingCheckpoint writes the aggregate's checkpoint to path.1,
// rotating the previous one to path.2 (keep last two), via fsync and an
// atomic rename so a kill mid-write never corrupts an existing file.
func writeRotatingCheckpoint(path string, agg *scenario.Aggregate) error {
	data, err := agg.Checkpoint().Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		if err := os.Rename(path+".1", path+".2"); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path+".1")
}
