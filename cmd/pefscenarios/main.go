// Command pefscenarios sweeps generated scenarios through the property
// oracle: a seeded generator samples the scenario space (ring size, team,
// algorithm, placement, dynamics family and parameters, horizon), each
// sample runs through the simulator, and the oracle checks the paper's
// predicates — exploration where Table 1 says possible, confinement where
// its adversaries apply. Campaigns stream through the batch worker pool
// with bounded memory (verdicts fold into an online aggregate, never a
// slice) and their output is byte-identical for any worker count.
//
//	pefscenarios                               # 100 uniform scenarios, seed 1
//	pefscenarios -count 1000 -seeds 4          # 4000 scenarios, seeds 1..4
//	pefscenarios -family boundary -json        # machine-readable sweep output
//	pefscenarios -list                         # list the generator families
//
//	# checkpoint/resume: run half, stop, resume — final report identical
//	pefscenarios -count 1000 -checkpoint c.json -halt-after 500
//	pefscenarios -resume c.json
//
// Flags:
//
//	-count N         scenarios generated per seed (default 100)
//	-seed N          base generator seed (default 1)
//	-seeds N         sweep N consecutive generator seeds starting at -seed
//	-workers M       worker pool size; <1 means GOMAXPROCS. Output is
//	                 byte-identical for any worker count.
//	-family F        generator family: uniform, boundary, markov, adversarial
//	-maxring N       largest sampled ring size (default 16)
//	-json            emit the versioned campaign document (for BENCH_*.json)
//	-list            list the generator families and exit
//	-checkpoint P    write a resumable campaign checkpoint to P when the
//	                 campaign finishes or halts
//	-halt-after N    stop after aggregating N scenarios (requires
//	                 -checkpoint; simulates a kill for resume testing)
//	-resume P        continue the campaign checkpointed at P: its
//	                 generator, bounds, count and seeds are adopted, the
//	                 finished prefix is skipped, and the final report is
//	                 byte-identical to an uninterrupted run
//	-minimize        shrink each violation to a minimal reproducer and
//	                 append it to the report (report mode only)
//
// The process exits non-zero when any scenario violates its predicate or
// errors, so CI can trust the exit code.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"pef/internal/harness"
	"pef/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pefscenarios:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pefscenarios", flag.ContinueOnError)
	var (
		count      = fs.Int("count", 100, "scenarios generated per seed")
		seed       = fs.Uint64("seed", 1, "base generator seed")
		seeds      = fs.Int("seeds", 1, "number of consecutive generator seeds, starting at -seed")
		workers    = fs.Int("workers", 0, "worker pool size (<1 means GOMAXPROCS)")
		family     = fs.String("family", "uniform", "generator family (see -list)")
		maxRing    = fs.Int("maxring", 16, "largest sampled ring size")
		jsonOut    = fs.Bool("json", false, "emit the versioned campaign document")
		list       = fs.Bool("list", false, "list the generator families and exit")
		checkpoint = fs.String("checkpoint", "", "write a resumable checkpoint to this path on finish or halt")
		haltAfter  = fs.Int("halt-after", 0, "stop after aggregating this many scenarios (requires -checkpoint)")
		resume     = fs.String("resume", "", "resume the campaign checkpointed at this path")
		minimize   = fs.Bool("minimize", false, "append a minimal reproducer per violation (report mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, g := range scenario.Generators() {
			fmt.Fprintf(stdout, "%-12s %s\n", g.Name, g.Description)
		}
		return nil
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *haltAfter < 0 {
		return fmt.Errorf("-halt-after must be >= 0, got %d", *haltAfter)
	}
	if *haltAfter > 0 && *checkpoint == "" {
		return fmt.Errorf("-halt-after requires -checkpoint (a halted campaign without one is unrecoverable)")
	}
	if *minimize && *jsonOut {
		return fmt.Errorf("-minimize applies to the report mode, not -json")
	}

	// When resuming, the campaign identity comes from the checkpoint;
	// explicitly set flags still apply (and conflicts are rejected), but
	// flag *defaults* must not shadow the checkpointed values.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	cfg := scenario.CampaignConfig{Workers: *workers}
	if *resume != "" {
		data, err := os.ReadFile(*resume)
		if err != nil {
			return err
		}
		ckpt, err := scenario.DecodeCheckpoint(data)
		if err != nil {
			return err
		}
		cfg.Resume = ckpt
	}
	if *resume == "" || explicit["family"] {
		cfg.Generator = *family
	}
	if *resume == "" || explicit["count"] {
		cfg.Count = *count
	}
	if *resume == "" || explicit["seed"] || explicit["seeds"] {
		cfg.Seeds = harness.Seeds(*seed, *seeds)
	}
	if *resume == "" || explicit["maxring"] {
		cfg.Gen = scenario.GenConfig{MaxRing: *maxRing}
	}

	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		return err
	}
	halted := false
	for v, serr := range scenario.StreamCampaign(context.Background(), cfg) {
		if serr != nil && v.ID == "" {
			return serr // configuration failure: nothing ran
		}
		agg.Add(v)
		if *haltAfter > 0 && agg.Done()-startOf(cfg) >= *haltAfter {
			halted = true
			break
		}
	}
	if *checkpoint != "" {
		data, err := agg.Checkpoint().Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*checkpoint, data, 0o644); err != nil {
			return err
		}
	}
	if halted {
		fmt.Fprintf(stdout, "halted after %d of %d scenarios; resume with -resume %s\n",
			agg.Done(), agg.Count*len(agg.Seeds), *checkpoint)
		return nil
	}

	if *jsonOut {
		if err := agg.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := agg.WriteReport(stdout); err != nil {
		return err
	}
	violations := agg.Violations()
	if *minimize {
		for _, v := range violations {
			m := scenario.Minimize(v.Spec)
			if _, err := fmt.Fprintf(stdout, "\nminimal reproducer for %s:\n  %s\n", v.ID, m.ID()); err != nil {
				return err
			}
			if enc, err := m.Encode(); err == nil {
				if _, err := fmt.Fprintf(stdout, "  %s\n", enc); err != nil {
					return err
				}
			}
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d of %d scenario(s) violate the paper's predicates", len(violations), agg.Done())
	}
	return nil
}

// startOf returns the number of scenarios a resumed campaign starts from.
func startOf(cfg scenario.CampaignConfig) int {
	if cfg.Resume != nil {
		return cfg.Resume.Done
	}
	return 0
}
