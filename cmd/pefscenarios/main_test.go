package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunByteIdenticalAcrossWorkers checks the CLI-level determinism
// guarantee for both output modes.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	for _, mode := range []string{"report", "json"} {
		render := func(workers string) string {
			args := []string{"-family", "boundary", "-count", "40", "-seeds", "2", "-workers", workers}
			if mode == "json" {
				args = append(args, "-json")
			}
			var buf bytes.Buffer
			if err := run(args, &buf); err != nil {
				t.Fatalf("%s workers=%s: %v", mode, workers, err)
			}
			return buf.String()
		}
		if render("1") != render("8") {
			t.Fatalf("%s output differs between -workers 1 and -workers 8", mode)
		}
	}
}

func TestRunJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-family", "adversarial", "-count", "25", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"generator": "adversarial"`, `"total": 25`, `"families"`, `"scalars"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"uniform", "boundary", "markov", "adversarial"} {
		if !strings.Contains(buf.String(), g) {
			t.Errorf("-list output missing generator %s", g)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-count", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for -count 0")
	}
	if err := run([]string{"-seeds", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for -seeds 0")
	}
	if err := run([]string{"-family", "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for unknown -family")
	}
	if err := run([]string{"-maxring", "3"}, &bytes.Buffer{}); err == nil {
		t.Error("want error for -maxring below 4")
	}
}
