package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pef/internal/scenario"
)

// TestRunByteIdenticalAcrossWorkers checks the CLI-level determinism
// guarantee for both output modes.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	for _, mode := range []string{"report", "json"} {
		render := func(workers string) string {
			args := []string{"-family", "boundary", "-count", "40", "-seeds", "2", "-workers", workers}
			if mode == "json" {
				args = append(args, "-json")
			}
			var buf bytes.Buffer
			if err := run(context.Background(), args, &buf, io.Discard); err != nil {
				t.Fatalf("%s workers=%s: %v", mode, workers, err)
			}
			return buf.String()
		}
		if render("1") != render("8") {
			t.Fatalf("%s output differs between -workers 1 and -workers 8", mode)
		}
	}
}

func TestRunJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-family", "adversarial", "-count", "25", "-json"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"generator": "adversarial"`, `"total": 25`, `"families"`, `"scalars"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"uniform", "boundary", "markov", "adversarial"} {
		if !strings.Contains(buf.String(), g) {
			t.Errorf("-list output missing generator %s", g)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-count", "0"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("want error for -count 0")
	}
	if err := run(context.Background(), []string{"-seeds", "0"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("want error for -seeds 0")
	}
	if err := run(context.Background(), []string{"-family", "nope"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("want error for unknown -family")
	}
	if err := run(context.Background(), []string{"-maxring", "3"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("want error for -maxring below 4")
	}
}

// TestCheckpointHaltResumeRoundTrip is the CLI-level resume-determinism
// contract CI enforces: halt a campaign partway with a checkpoint, resume
// it, and the final report must be byte-identical to an uninterrupted run
// — in both output modes and across worker counts.
func TestCheckpointHaltResumeRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt.json")
	base := []string{"-family", "boundary", "-count", "40", "-seeds", "2", "-maxring", "8"}

	var uninterrupted bytes.Buffer
	if err := run(context.Background(), append([]string{"-workers", "2"}, base...), &uninterrupted, io.Discard); err != nil {
		t.Fatal(err)
	}

	var halted bytes.Buffer
	if err := run(context.Background(), append([]string{"-checkpoint", ckpt, "-halt-after", "33", "-workers", "1"}, base...), &halted, io.Discard); err != nil {
		t.Fatalf("halted run failed: %v", err)
	}
	if !strings.Contains(halted.String(), "halted after 33 of 80 scenarios") {
		t.Fatalf("halt note missing:\n%s", halted.String())
	}

	var resumed bytes.Buffer
	if err := run(context.Background(), []string{"-resume", ckpt, "-workers", "4"}, &resumed, io.Discard); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if resumed.String() != uninterrupted.String() {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\n--- want ---\n%s",
			resumed.String(), uninterrupted.String())
	}

	// A finished campaign's checkpoint covers everything; resuming it runs
	// zero scenarios and still reproduces the report.
	full := filepath.Join(t.TempDir(), "full.ckpt.json")
	var again bytes.Buffer
	if err := run(context.Background(), append([]string{"-checkpoint", full}, base...), &again, io.Discard); err != nil {
		t.Fatal(err)
	}
	var replay bytes.Buffer
	if err := run(context.Background(), []string{"-resume", full}, &replay, io.Discard); err != nil {
		t.Fatal(err)
	}
	if replay.String() != uninterrupted.String() {
		t.Fatal("replaying a complete checkpoint changed the report")
	}
}

// TestResumeRejectsConflictingFlags checks explicitly set flags are
// validated against the checkpoint instead of silently diverging.
func TestResumeRejectsConflictingFlags(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.json")
	if err := run(context.Background(), []string{"-family", "boundary", "-count", "10", "-maxring", "8", "-checkpoint", ckpt, "-halt-after", "5"}, &bytes.Buffer{}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-resume", ckpt, "-family", "uniform"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("conflicting -family accepted on resume")
	}
	if err := run(context.Background(), []string{"-resume", ckpt, "-count", "99"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("conflicting -count accepted on resume")
	}
	if err := run(context.Background(), []string{"-resume", filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("missing checkpoint file accepted")
	}
}

func TestHaltAndMinimizeFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-halt-after", "5"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("-halt-after without -checkpoint accepted")
	}
	if err := run(context.Background(), []string{"-minimize", "-json"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("-minimize with -json accepted")
	}
}

// TestListEnumeratesRegistry pins the -list contract CI leans on: every
// registered generator, family, algorithm and property appears in the
// listing, section by section.
func TestListEnumeratesRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"generators:", "families:", "algorithms:", "properties:"} {
		if !strings.Contains(out, section) {
			t.Fatalf("-list output missing section %q:\n%s", section, out)
		}
	}
	r := scenario.DefaultRegistry()
	var want []string
	for _, g := range scenario.Generators() {
		want = append(want, g.Name)
	}
	want = append(want, r.FamilyNames()...)
	want = append(want, r.AlgorithmNames()...)
	want = append(want, r.PropertyNames()...)
	for _, name := range want {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing registry entry %q", name)
		}
	}
}

// TestShardMergeByteIdentity runs a campaign as three shard processes,
// merges their checkpoints with -merge, and requires both output modes to
// be byte-identical to the single-process run.
func TestShardMergeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-family", "boundary", "-count", "40", "-seeds", "2", "-maxring", "8"}

	var whole, wholeJSON bytes.Buffer
	if err := run(context.Background(), append([]string{"-workers", "2"}, base...), &whole, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-workers", "2", "-json"}, base...), &wholeJSON, io.Discard); err != nil {
		t.Fatal(err)
	}

	var paths []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		paths = append(paths, p)
		args := append([]string{
			"-shard-index", fmt.Sprint(i), "-shard-count", "3",
			"-checkpoint", p, "-workers", fmt.Sprint(i + 1),
		}, base...)
		if err := run(context.Background(), args, io.Discard, io.Discard); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	var merged bytes.Buffer
	if err := run(context.Background(), append([]string{"-merge"}, paths...), &merged, io.Discard); err != nil {
		t.Fatal(err)
	}
	if merged.String() != whole.String() {
		t.Fatal("merged shard report differs from single-process run")
	}
	var mergedJSON bytes.Buffer
	if err := run(context.Background(), append([]string{"-merge", "-json"}, paths...), &mergedJSON, io.Discard); err != nil {
		t.Fatal(err)
	}
	if mergedJSON.String() != wholeJSON.String() {
		t.Fatal("merged shard JSON differs from single-process run")
	}

	// Merging with a missing shard fails loudly.
	if err := run(context.Background(), []string{"-merge", paths[0], paths[2]}, io.Discard, io.Discard); err == nil {
		t.Error("merge with a missing shard accepted")
	}
	// Sharding without a checkpoint is rejected (the block would be lost).
	if err := run(context.Background(), append([]string{"-shard-index", "0", "-shard-count", "2"}, base...), io.Discard, io.Discard); err == nil {
		t.Error("-shard-count without -checkpoint accepted")
	}
}

// TestCheckpointRotation checks -checkpoint-every: rotating .1/.2 files
// appear, stay decodable, trail the aggregate by the rotation cadence,
// and resuming from the freshest one reproduces the uninterrupted report.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "rot.json")
	base := []string{"-family", "uniform", "-count", "35", "-maxring", "8"}

	var whole bytes.Buffer
	if err := run(context.Background(), base, &whole, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append([]string{"-checkpoint", ckpt, "-checkpoint-every", "10"}, base...), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	newest, err := os.ReadFile(ckpt + ".1")
	if err != nil {
		t.Fatalf("rotating checkpoint .1 missing: %v", err)
	}
	previous, err := os.ReadFile(ckpt + ".2")
	if err != nil {
		t.Fatalf("rotating checkpoint .2 missing: %v", err)
	}
	ck1, err := scenario.DecodeCheckpoint(newest)
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := scenario.DecodeCheckpoint(previous)
	if err != nil {
		t.Fatal(err)
	}
	if ck1.Done != 30 || ck2.Done != 20 {
		t.Fatalf("rotation kept Done=%d/%d, want 30/20", ck1.Done, ck2.Done)
	}
	var resumed bytes.Buffer
	if err := run(context.Background(), []string{"-resume", ckpt + ".1"}, &resumed, io.Discard); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != whole.String() {
		t.Fatal("resume from rotating checkpoint differs from uninterrupted run")
	}
	if err := run(context.Background(), append([]string{"-checkpoint-every", "5"}, base...), io.Discard, io.Discard); err == nil {
		t.Error("-checkpoint-every without -checkpoint accepted")
	}
}
