package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResumeFallsBackToRotation corrupts the preferred checkpoint and
// requires -resume to recover from the rotation sibling with a loud
// stderr warning — and the recovered campaign to finish byte-identical
// to an uninterrupted run.
func TestResumeFallsBackToRotation(t *testing.T) {
	base := []string{"-family", "boundary", "-count", "40", "-maxring", "8"}
	var whole bytes.Buffer
	if err := run(context.Background(), base, &whole, io.Discard); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ckpt := filepath.Join(t.TempDir(), "c.json")
	// Rotating checkpoints every 10 plus a halt at 30: c.json holds the
	// 30-scenario prefix and c.json.1 the most recent rotation.
	halted := append([]string{"-checkpoint", ckpt, "-checkpoint-every", "10", "-halt-after", "30"}, base...)
	if err := run(context.Background(), halted, io.Discard, io.Discard); err != nil {
		t.Fatalf("halted run: %v", err)
	}
	if _, err := os.Stat(ckpt + ".1"); err != nil {
		t.Fatalf("rotation %s.1 missing: %v", ckpt, err)
	}

	// Truncate the preferred file mid-write, as a crash would.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var resumed bytes.Buffer
	var errOut strings.Builder
	if err := run(context.Background(), []string{"-resume", ckpt}, &resumed, &errOut); err != nil {
		t.Fatalf("resume from corrupt checkpoint: %v", err)
	}
	if !strings.Contains(errOut.String(), "WARNING") || !strings.Contains(errOut.String(), ckpt+".1") {
		t.Fatalf("fallback was silent; stderr:\n%s", errOut.String())
	}
	if resumed.String() != whole.String() {
		t.Fatal("resume via rotation fallback diverged from the uninterrupted run")
	}

	// With every candidate corrupt the failure is loud and total.
	for _, p := range []string{ckpt, ckpt + ".1", ckpt + ".2"} {
		if _, err := os.Stat(p); err == nil {
			if err := os.WriteFile(p, []byte("{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := run(context.Background(), []string{"-resume", ckpt}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no rotation could be recovered") {
		t.Fatalf("all-corrupt resume: %v, want unrecoverable error", err)
	}
}

// TestResumeRejectsCorruptWithoutRotation pins the no-rotation case: a
// checksum-mismatched checkpoint with no siblings fails with the
// integrity error, never a silent restart.
func TestResumeRejectsCorruptWithoutRotation(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "solo.json")
	args := []string{"-family", "uniform", "-count", "20", "-maxring", "8", "-checkpoint", ckpt, "-halt-after", "10"}
	if err := run(context.Background(), args, io.Discard, io.Discard); err != nil {
		t.Fatalf("halted run: %v", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a content byte that stays valid JSON: only the checksum can
	// catch this.
	flipped := bytes.Replace(data, []byte(`"generator": "uniform"`), []byte(`"generator": "uniforn"`), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("corruption did not land; fixture drifted")
	}
	if err := os.WriteFile(ckpt, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-resume", ckpt}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("bit-flipped resume: %v, want checksum mismatch", err)
	}
}

// TestInterruptedCampaignCheckpointsCleanPrefix drives run with an
// already-cancelled context — the moral equivalent of a SIGINT landing
// mid-campaign — and requires a resumable checkpoint plus a non-nil
// "interrupted" error; resuming must reproduce the uninterrupted bytes.
func TestInterruptedCampaignCheckpointsCleanPrefix(t *testing.T) {
	base := []string{"-family", "uniform", "-count", "30", "-maxring", "8"}
	var whole bytes.Buffer
	if err := run(context.Background(), base, &whole, io.Discard); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ckpt := filepath.Join(t.TempDir(), "int.json")
	err := run(ctx, append([]string{"-checkpoint", ckpt}, base...), io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "interrupted after") {
		t.Fatalf("interrupted run: %v, want interrupted error", err)
	}
	if !strings.Contains(err.Error(), "-resume "+ckpt) {
		t.Fatalf("interrupted error does not point at the checkpoint: %v", err)
	}
	var resumed bytes.Buffer
	if err := run(context.Background(), []string{"-resume", ckpt}, &resumed, io.Discard); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	if resumed.String() != whole.String() {
		t.Fatal("interrupt + resume diverged from the uninterrupted run")
	}

	// Without -checkpoint the interruption is still loud, and honest
	// about the progress being discarded.
	err = run(ctx, base, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "progress discarded") {
		t.Fatalf("interrupted run without checkpoint: %v, want progress-discarded error", err)
	}
}

// TestWorkerFlagValidation pins the worker-mode flag surface: campaign-
// shaping flags conflict with -worker-coord, and the worker-only flags
// require it.
func TestWorkerFlagValidation(t *testing.T) {
	conflicts := [][]string{
		{"-worker-coord", "http://127.0.0.1:1", "-count", "10"},
		{"-worker-coord", "http://127.0.0.1:1", "-family", "boundary"},
		{"-worker-coord", "http://127.0.0.1:1", "-resume", "x.json"},
		{"-worker-coord", "http://127.0.0.1:1", "-json"},
	}
	for _, args := range conflicts {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil ||
			!strings.Contains(err.Error(), "conflicts with -worker-coord") {
			t.Errorf("run(%v): %v, want conflict error", args, err)
		}
	}
	if err := run(context.Background(), []string{"-chaos-seed", "7"}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "requires -worker-coord") {
		t.Errorf("-chaos-seed alone: %v, want requires error", err)
	}
	if err := run(context.Background(), []string{"-worker-id", "w"}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "requires -worker-coord") {
		t.Errorf("-worker-id alone: %v, want requires error", err)
	}
	// A worker pointed at nothing exhausts its retries and reports it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, []string{"-worker-coord", "http://127.0.0.1:1"}, io.Discard, io.Discard); err == nil {
		t.Error("worker with cancelled context returned nil")
	}
}
