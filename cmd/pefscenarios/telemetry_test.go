package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservabilityFlagsKeepStdout pins the hard bar of the telemetry
// issue at the CLI layer: -progress, -trace-events and -telemetry-addr
// must not perturb a single stdout byte, in report or -json mode.
func TestObservabilityFlagsKeepStdout(t *testing.T) {
	for _, mode := range [][]string{nil, {"-json"}} {
		base := append([]string{"-family", "boundary", "-count", "40", "-maxring", "8"}, mode...)
		var plain bytes.Buffer
		if err := run(context.Background(), base, &plain, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", base, err)
		}
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		instrumented := append([]string{
			"-progress", "10", "-trace-events", trace, "-telemetry-addr", "127.0.0.1:0",
		}, base...)
		var out, errOut bytes.Buffer
		if err := run(context.Background(), instrumented, &out, &errOut); err != nil {
			t.Fatalf("run(%v): %v", instrumented, err)
		}
		if plain.String() != out.String() {
			t.Fatalf("observability flags changed stdout (mode %v):\n--- plain ---\n%s\n--- instrumented ---\n%s",
				mode, plain.String(), out.String())
		}
		if !strings.Contains(errOut.String(), "progress: 10/40 scenarios") {
			t.Errorf("stderr missing progress lines:\n%s", errOut.String())
		}
		if !strings.Contains(errOut.String(), "telemetry: serving http://") {
			t.Errorf("stderr missing telemetry address line:\n%s", errOut.String())
		}
	}
}

// TestTraceEventsDeterministicAcrossWorkers checks the trace contract:
// same campaign, different worker counts, byte-identical JSONL event
// streams — no wall clocks, monotonic sequence numbers.
func TestTraceEventsDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		args := []string{"-count", "60", "-maxring", "8", "-workers", workers, "-trace-events", trace}
		if err := run(context.Background(), args, io.Discard, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	seq := render("1")
	if par := render("4"); seq != par {
		t.Fatalf("trace differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	lines := strings.Split(strings.TrimSuffix(seq, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short: %q", seq)
	}
	for i, line := range lines {
		var ev struct {
			Seq   int64  `json:"seq"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not a JSON event: %v", i, err)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("line %d has seq %d: sequence numbers must be monotonic from 0", i, ev.Seq)
		}
	}
	if !strings.Contains(lines[0], `"event":"campaign-start"`) {
		t.Errorf("first event is not campaign-start: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"event":"campaign-end"`) {
		t.Errorf("last event is not campaign-end: %s", lines[len(lines)-1])
	}
}

// TestTraceEventsCoverCheckpoints checks that checkpoint writes (rotating
// and final) appear in the event trace.
func TestTraceEventsCoverCheckpoints(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	ckpt := filepath.Join(dir, "c.json")
	args := []string{"-count", "40", "-maxring", "8",
		"-checkpoint", ckpt, "-checkpoint-every", "10", "-trace-events", trace}
	if err := run(context.Background(), args, io.Discard, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, `"event":"checkpoint-written","fields":{"done":10,"kind":"rotating"}`) {
		t.Errorf("trace missing rotating checkpoint event:\n%s", got)
	}
	if !strings.Contains(got, `"kind":"final"`) {
		t.Errorf("trace missing final checkpoint event:\n%s", got)
	}
}

// TestBadObservabilityFlags pins the failure modes: an unusable telemetry
// address or trace path fails the run instead of being dropped silently.
func TestBadObservabilityFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-count", "1", "-telemetry-addr", "256.0.0.1:bogus"}, io.Discard, io.Discard); err == nil {
		t.Error("unusable -telemetry-addr must error")
	}
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.jsonl")
	if err := run(context.Background(), []string{"-count", "1", "-trace-events", bad}, io.Discard, io.Discard); err == nil {
		t.Error("unwritable -trace-events path must error")
	}
	if err := run(context.Background(), []string{"-progress", "-1"}, io.Discard, io.Discard); err == nil {
		t.Error("-progress -1 must error")
	}
}
