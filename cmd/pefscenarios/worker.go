package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"pef/internal/lease"
	"pef/internal/scenario"
)

// workerOptions carries the engine knobs a lease worker applies to every
// block it runs. The campaign identity itself always comes from the
// coordinator's grant — workers bring compute, not configuration — and
// none of these knobs can change block bytes (worker count, lane width
// and engine choice are all byte-invisible).
type workerOptions struct {
	Workers         int
	DisableLockstep bool
	LaneWidth       int
	ChaosSeed       uint64
}

// runWorker joins the lease fabric at coordURL and runs granted blocks
// until the coordinator reports the campaign done. Each block executes
// as the contiguous [start, end) shard of the canonical stream — exactly
// what -shard-index/-shard-count would run — and is delivered back as an
// encoded checkpoint under the grant's fencing token.
//
// A non-zero ChaosSeed arms the deterministic fault schedule
// (lease.Chaos): the worker then kills, stalls, or double-acks leases
// per the seeded plan, for chaos-testing the coordinator's recovery. The
// final merged report must stay byte-identical either way.
func runWorker(ctx context.Context, coordURL, id string, opts workerOptions, stderr io.Writer) error {
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var chaos *lease.Chaos
	if opts.ChaosSeed != 0 {
		chaos = &lease.Chaos{Seed: opts.ChaosSeed}
	}
	return lease.Work(ctx, lease.WorkerConfig{
		URL:   coordURL,
		ID:    id,
		Chaos: chaos,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "pefscenarios: "+format+"\n", args...)
		},
		Run: func(ctx context.Context, g lease.Grant) ([]byte, error) {
			cfg := scenario.CampaignConfig{
				Generator:       g.Campaign.Generator,
				Gen:             g.Campaign.Gen,
				Count:           g.Campaign.Count,
				Seeds:           g.Campaign.Seeds,
				ShardIndex:      g.Block,
				ShardCount:      g.Campaign.Blocks,
				Workers:         opts.Workers,
				DisableLockstep: opts.DisableLockstep,
				LaneWidth:       opts.LaneWidth,
			}
			agg, err := scenario.NewAggregate(cfg)
			if err != nil {
				return nil, err
			}
			for v, serr := range scenario.StreamCampaign(ctx, cfg) {
				if serr != nil {
					// Configuration failure or cancellation (a fenced lease
					// cancels the run context): the block is abandoned, never
					// acked with a partial aggregate.
					return nil, serr
				}
				agg.Add(v)
			}
			return agg.Checkpoint().Encode()
		},
	})
}
