// Command pefsearch hunts the theorem boundary: a coverage-guided,
// generational scenario search that runs blocks of specs through the
// campaign engine, reads back the per-family predicate margins
// (cover-time slack, revisit-gap headroom, confinement headroom), and
// steers the next generation's budget toward the tightest margins — a
// seeded UCB bandit chooses among the registered explorable dynamics
// families, and a near-violation corpus of the lowest-margin surviving
// specs is mutated through the parameter space (ring and team nudges,
// declared-parameter jiggles, reseeds). Violations are auto-shrunk into
// minimal reproducers; the run ends with a boundary report — the
// tightest observed margin per family × metric — that pefbenchdiff can
// diff run over run.
//
// Every draw is hash-keyed by (seed, generation, slot) and all steering
// is single-threaded, so a fixed-seed search is byte-identical for any
// -workers, -lanewidth and -lockstep setting.
//
//	pefsearch                                  # 8 generations of 256, seed 1
//	pefsearch -seed 7 -generations 20 -json    # machine-readable boundary report
//	pefsearch -family-weights bernoulli=3,markov=1
//
//	# checkpoint/resume: halt mid-search, resume — report byte-identical
//	pefsearch -generations 10 -checkpoint s.json -halt-after 4
//	pefsearch -resume s.json
//
// Flags:
//
//	-seed N            search seed (default 1); keys every deterministic draw
//	-generations N     generations to run (default 8)
//	-generation-size N specs per generation (default 256)
//	-warmup N          leading uniformly-sampled generations that initialize
//	                   the bandit and fix the bottom-quartile margin
//	                   threshold (default min(2, generations))
//	-mutation-share P  percent of each post-warmup generation spent mutating
//	                   the near-violation corpus (default 50; -1 disables)
//	-corpus-size N     near-violation corpus bound (default 64)
//	-max-minimize N    violations shrunk into minimal reproducers
//	                   (default 4; -1 disables)
//	-families F,G      restrict the explorable-family pool
//	-family-weights W  weighted pool, e.g. "bernoulli=3,periodic=1"
//	                   (mutually exclusive with -families)
//	-minring/-maxring  sampled ring bounds (defaults 4/16)
//	-maxrobots N       largest sampled team (default 5)
//	-workers M         worker pool size; <1 means GOMAXPROCS
//	-lockstep          bit-parallel lane engine (default true)
//	-lanewidth N       lane packing width (default 1024)
//	-json              emit the boundary-report document instead of text
//	-checkpoint P      write a resumable search checkpoint to P on finish
//	                   or halt
//	-checkpoint-every N
//	                   additionally write a rotating checkpoint (P.1, P.2;
//	                   fsync + atomic rename) every N generations
//	-halt-after N      stop cleanly after generation N (requires
//	                   -checkpoint; simulates a kill for resume testing)
//	-resume P          continue the search checkpointed at P (rotation
//	                   fallback to P.1/P.2 when P is corrupt)
//	-progress          print a per-generation progress line to stderr
//	-metrics P         write the final telemetry snapshot (search.* and
//	                   engine counters) to P as JSON
//	-telemetry-addr A  serve the live telemetry snapshot and pprof on A
//	-trace-events P    append search lifecycle events (search-start,
//	                   generation, violation-found, search-end) to P as
//	                   JSONL — byte-identical for any engine configuration
//
// The observability flags never change stdout. The process exits
// non-zero when the search finds any predicate violation, so CI can
// trust the exit code.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pef/internal/scenario"
	"pef/internal/search"
	"pef/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pefsearch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pefsearch", flag.ContinueOnError)
	var (
		seed       = fs.Uint64("seed", 1, "search seed")
		gens       = fs.Int("generations", 0, "generations to run (default 8)")
		genSize    = fs.Int("generation-size", 0, "specs per generation (default 256)")
		warmup     = fs.Int("warmup", 0, "uniformly-sampled warmup generations (default min(2, generations))")
		mutShare   = fs.Int("mutation-share", 0, "percent of each post-warmup generation spent on corpus mutation (default 50; -1 disables)")
		corpusSize = fs.Int("corpus-size", 0, "near-violation corpus bound (default 64)")
		maxMin     = fs.Int("max-minimize", 0, "violations shrunk into minimal reproducers (default 4; -1 disables)")
		families   = fs.String("families", "", "comma-separated explorable-family pool")
		weights    = fs.String("family-weights", "", "weighted family pool, e.g. \"bernoulli=3,periodic=1\"")
		minRing    = fs.Int("minring", 0, "smallest sampled ring size (default 4)")
		maxRing    = fs.Int("maxring", 16, "largest sampled ring size")
		maxRobots  = fs.Int("maxrobots", 0, "largest sampled team size (default 5)")
		workers    = fs.Int("workers", 0, "worker pool size (<1 means GOMAXPROCS)")
		lockstep   = fs.Bool("lockstep", true, "run shape-aligned specs on the bit-parallel lane engine")
		laneWidth  = fs.Int("lanewidth", 0, "specs batched per worker job for lane packing (<1 means 1024)")
		jsonOut    = fs.Bool("json", false, "emit the boundary-report document instead of the text report")
		checkpoint = fs.String("checkpoint", "", "write a resumable checkpoint to this path on finish or halt")
		ckptEvery  = fs.Int("checkpoint-every", 0, "write a rotating checkpoint every N generations")
		haltAfter  = fs.Int("halt-after", 0, "stop cleanly after this generation (requires -checkpoint)")
		resume     = fs.String("resume", "", "resume the search checkpointed at this path")
		progress   = fs.Bool("progress", false, "print a per-generation progress line to stderr")
		metricsOut = fs.String("metrics", "", "write the final telemetry snapshot to this path as JSON")
		telAddr    = fs.String("telemetry-addr", "", "serve the live telemetry snapshot and pprof on this address (\":0\" picks a free port)")
		traceFile  = fs.String("trace-events", "", "write search lifecycle events to this path as JSONL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *haltAfter < 0 {
		return fmt.Errorf("-halt-after must be >= 0, got %d", *haltAfter)
	}
	if *haltAfter > 0 && *checkpoint == "" {
		return fmt.Errorf("-halt-after requires -checkpoint (a halted search without one is unrecoverable)")
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *checkpoint == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint (it rotates that path)")
	}

	// When resuming, the search identity comes from the checkpoint;
	// explicitly set flags still apply (conflicts are rejected by the
	// resolver), but flag *defaults* must not shadow checkpointed values.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	cfg := search.Config{
		Generations:     *gens,
		GenerationSize:  *genSize,
		Warmup:          *warmup,
		MutationShare:   *mutShare,
		CorpusSize:      *corpusSize,
		MaxMinimize:     *maxMin,
		Workers:         *workers,
		LaneWidth:       *laneWidth,
		DisableLockstep: !*lockstep,
	}
	if *resume != "" {
		ckpt, err := loadResumeCheckpoint(*resume, stderr)
		if err != nil {
			return err
		}
		cfg.Resume = ckpt
	}
	if *resume == "" || explicit["seed"] {
		cfg.Seed = *seed
	}
	if *resume == "" || explicit["minring"] || explicit["maxring"] || explicit["maxrobots"] ||
		explicit["families"] || explicit["family-weights"] {
		cfg.Gen = scenario.GenConfig{
			MinRing:       *minRing,
			MaxRing:       *maxRing,
			MaxRobots:     *maxRobots,
			Families:      *families,
			FamilyWeights: *weights,
		}
	}

	// Observability wiring. None of it touches stdout: boundary reports,
	// JSON documents and checkpoints are byte-identical with these flags
	// on or off.
	var tel *scenario.Telemetry
	if *telAddr != "" || *metricsOut != "" {
		tel = scenario.NewTelemetry()
		cfg.Telemetry = tel
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, tel.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Trace = telemetry.NewTracer(f)
	}

	// The search itself runs under the background context: a signal halts
	// at the next generation boundary (the checkpoint grain) instead of
	// poisoning the in-flight generation with cancellation verdicts.
	var lastCk *search.Checkpoint
	interrupted := false
	cfg.OnGeneration = func(p search.Progress) error {
		if *progress {
			fmt.Fprintf(stderr, "progress: generation %d/%d, %d samples, corpus %d, %d violations\n",
				p.Generation, p.Generations, p.Samples, p.CorpusSize, p.Violations)
		}
		if *checkpoint != "" {
			lastCk = p.Checkpoint()
			if *ckptEvery > 0 && p.Generation%*ckptEvery == 0 {
				if err := writeRotatingCheckpoint(*checkpoint, lastCk); err != nil {
					return err
				}
				cfg.Trace.Emit("checkpoint-written", map[string]any{"kind": "rotating", "done": p.Generation})
			}
		}
		if ctx.Err() != nil {
			interrupted = true
			return search.ErrHalted
		}
		if *haltAfter > 0 && p.Generation >= *haltAfter {
			return search.ErrHalted
		}
		return nil
	}

	res, err := search.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	if res.Halted && *checkpoint == "" {
		return fmt.Errorf("interrupted after %d generations (no -checkpoint set, progress discarded)", res.Generations)
	}
	if *checkpoint != "" && lastCk != nil {
		data, err := lastCk.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*checkpoint, data, 0o644); err != nil {
			return err
		}
		cfg.Trace.Emit("checkpoint-written", map[string]any{"kind": "final", "done": res.Generations})
	}
	if err := cfg.Trace.Err(); err != nil {
		return err
	}
	if *metricsOut != "" {
		data, err := json.MarshalIndent(tel.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if res.Halted {
		if interrupted {
			// Non-nil so the exit code reflects the interruption, but the
			// search state is safe: the clean prefix is checkpointed.
			return fmt.Errorf("interrupted after %d generations; resume with -resume %s", res.Generations, *checkpoint)
		}
		fmt.Fprintf(stdout, "halted after %d of %d generations; resume with -resume %s\n",
			res.Generations, generationsTarget(cfg), *checkpoint)
		return nil
	}
	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			return err
		}
	} else if err := res.WriteReport(stdout); err != nil {
		return err
	}
	if n := len(res.Violations); n > 0 {
		return fmt.Errorf("%d violation(s) found across %d samples", n, res.Samples)
	}
	return nil
}

// generationsTarget resolves the configured generation count for the
// halt message (the checkpoint wins on resume, default 8).
func generationsTarget(cfg search.Config) int {
	switch {
	case cfg.Generations > 0:
		return cfg.Generations
	case cfg.Resume != nil:
		return cfg.Resume.Generations
	default:
		return 8
	}
}

// loadResumeCheckpoint reads the checkpoint at path, falling back to the
// rotation siblings when the preferred file is corrupt, truncated, or
// missing — same recovery contract as pefscenarios.
func loadResumeCheckpoint(path string, stderr io.Writer) (*search.Checkpoint, error) {
	candidates := []string{path}
	if strings.HasSuffix(path, ".1") {
		candidates = append(candidates, strings.TrimSuffix(path, ".1")+".2")
	} else if !strings.HasSuffix(path, ".2") {
		candidates = append(candidates, path+".1", path+".2")
	}
	var errs []error
	for i, p := range candidates {
		data, err := os.ReadFile(p)
		if err == nil {
			var ckpt *search.Checkpoint
			if ckpt, err = search.DecodeCheckpoint(data); err == nil {
				if i > 0 {
					fmt.Fprintf(stderr, "pefsearch: WARNING: checkpoint %s is unusable (%v); resuming from rotation %s instead\n",
						path, errs[0], p)
				}
				return ckpt, nil
			}
		}
		errs = append(errs, fmt.Errorf("%s: %w", p, err))
	}
	if len(errs) > 1 {
		return nil, fmt.Errorf("checkpoint %s is unusable and no rotation could be recovered: %w", path, errors.Join(errs...))
	}
	return nil, errs[0]
}

// writeRotatingCheckpoint writes the checkpoint to path.1, rotating the
// previous one to path.2 (keep last two), via fsync and an atomic rename
// so a kill mid-write never corrupts an existing file.
func writeRotatingCheckpoint(path string, ck *search.Checkpoint) error {
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		if err := os.Rename(path+".1", path+".2"); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path+".1")
}
