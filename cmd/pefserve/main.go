// Command pefserve is the campaign-as-a-service daemon: a long-running
// HTTP server that accepts scenario specs and campaign configs as
// JSON/JSONL and streams back verdicts and reports, with a shared worker
// pool sized once per process and a content-addressed verdict cache in
// front of the engines — resubmitting a campaign costs cache lookups,
// not simulations.
//
//	pefserve -listen 127.0.0.1:7080 -spill /var/tmp/pef.spill
//
//	curl -s -XPOST localhost:7080/campaign \
//	     -d '{"generator":"boundary","count":200,"seeds":[1,2]}'
//
// The report a served campaign streams is byte-identical to the
// single-process `pefscenarios` run of the same config — cache on or
// off, any concurrency.
//
// Routes (see internal/serve):
//
//	POST /run       one encoded Spec → its Verdict (?cache=off bypasses)
//	POST /campaign  campaign config → optional JSONL verdicts + report
//	GET  /healthz   liveness + drain state
//	GET  /metrics   telemetry snapshot (engine, pool, cache.*, serve.*)
//
// Flags:
//
//	-listen A         listen address (default 127.0.0.1:0 — a free port)
//	-addr-file P      write the bound address to P (for scripts racing
//	                  against ":0")
//	-workers N        campaign worker pool size (<1 means GOMAXPROCS)
//	-lanewidth N      scenarios batched per worker job (<1 means 1024)
//	-lockstep         use the bit-parallel lane engine (default true)
//	-cache-bytes N    verdict cache capacity (default 256 MiB; 0 disables
//	                  the cache entirely)
//	-spill P          warm the cache from P at startup and spill it back
//	                  on drain (requires the cache)
//	-rate R           per-client admission rate in requests/second
//	                  (0 disables rate limiting)
//	-burst N          rate-limit bucket depth (<1 means ceil(rate))
//	-max-inflight N   concurrently admitted requests (<1 means
//	                  2×GOMAXPROCS); excess get 503 + Retry-After
//	-drain-grace D    how long a SIGINT/SIGTERM drain lets open requests
//	                  finish before aborting them (default 30s)
//
// On SIGINT/SIGTERM the server stops admitting work (503, /healthz
// flips to draining), lets open streams finish within -drain-grace,
// aborts stragglers at a verdict boundary with a loud trailer, spills
// the cache, and logs "drained cleanly". A second signal kills the
// process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pef/internal/scenario"
	"pef/internal/serve"
	"pef/internal/serve/cache"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Restore default signal handling once the drain starts: a second
	// signal then kills the process instead of waiting out the grace.
	go func() { <-ctx.Done(); stop() }()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pefserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("pefserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:0", "listen address (\":0\" picks a free port)")
		addrFile    = fs.String("addr-file", "", "write the bound address to this file")
		workers     = fs.Int("workers", 0, "campaign worker pool size (<1 means GOMAXPROCS)")
		laneWidth   = fs.Int("lanewidth", 0, "scenarios batched per worker job for lane packing (<1 means 1024)")
		lockstep    = fs.Bool("lockstep", true, "run shape-aligned scenarios on the bit-parallel lane engine")
		cacheBytes  = fs.Int64("cache-bytes", 256<<20, "verdict cache capacity in bytes (0 disables the cache)")
		spill       = fs.String("spill", "", "warm the cache from this file at startup, spill back on drain")
		rate        = fs.Float64("rate", 0, "per-client admission rate in requests/second (0 disables)")
		burst       = fs.Int("burst", 0, "rate-limit bucket depth (<1 means ceil(rate))")
		maxInFlight = fs.Int("max-inflight", 0, "concurrently admitted requests (<1 means 2×GOMAXPROCS)")
		drainGrace  = fs.Duration("drain-grace", 30*time.Second, "how long a drain lets open requests finish")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *spill != "" && *cacheBytes == 0 {
		return errors.New("-spill requires the verdict cache; remove -cache-bytes=0")
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }

	tel := scenario.NewTelemetry()
	var store *cache.Cache
	if *cacheBytes > 0 {
		store = cache.New(cache.Config{Capacity: *cacheBytes, Telemetry: tel.Registry()})
		if *spill != "" {
			warmed, err := store.WarmFromSpill(*spill, logf)
			if err != nil {
				return fmt.Errorf("warming cache from %s: %w", *spill, err)
			}
			if warmed > 0 {
				logf("pefserve: warmed %d cached verdicts from %s", warmed, *spill)
			}
		}
	}

	srv := serve.New(serve.Config{
		Cache:           store,
		Workers:         *workers,
		LaneWidth:       *laneWidth,
		DisableLockstep: !*lockstep,
		MaxInFlight:     *maxInFlight,
		Rate:            *rate,
		Burst:           *burst,
		Telemetry:       tel,
		Logf:            logf,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	logf("pefserve: serving http://%s (cache=%s, rate=%s)",
		ln.Addr(), describeCache(store, *cacheBytes), describeRate(*rate))

	hsrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logf("pefserve: signal received; draining (grace %s)", *drainGrace)
	srv.StartDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hsrv.Shutdown(graceCtx); err != nil {
		// Grace expired with streams still open: abort them at their next
		// verdict boundary and give the trailers a beat to flush.
		srv.Abort()
		abortCtx, cancelAbort := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelAbort()
		if err := hsrv.Shutdown(abortCtx); err != nil {
			hsrv.Close()
		}
	}
	if store != nil && *spill != "" {
		n, err := store.WriteSpill(*spill)
		if err != nil {
			return fmt.Errorf("spilling cache to %s: %w", *spill, err)
		}
		logf("pefserve: spilled %d cached verdicts to %s", n, *spill)
	}
	logf("pefserve: drained cleanly")
	return nil
}

func describeCache(store *cache.Cache, capacity int64) string {
	if store == nil {
		return "off"
	}
	return fmt.Sprintf("%d MiB", capacity>>20)
}

func describeRate(rate float64) string {
	if rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%g req/s per client", rate)
}
