package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pef/internal/scenario"
)

// syncBuffer is a concurrency-safe stderr sink: run writes from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe runs the daemon in a goroutine and waits for its bound
// address, returning the address, stderr sink, a cancel that triggers
// the drain, and the run-result channel.
func startServe(t *testing.T, extraArgs ...string) (string, *syncBuffer, context.CancelFunc, <-chan error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	stderr := &syncBuffer{}
	args := append([]string{"-addr-file", addrFile, "-drain-grace", "5s"}, extraArgs...)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return string(data), stderr, cancel, done
		}
		select {
		case err := <-done:
			t.Fatalf("pefserve exited before binding: %v\nstderr: %s", err, stderr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("pefserve never wrote its address\nstderr: %s", stderr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func directReport(t *testing.T, ccfg scenario.CampaignConfig) string {
	t.Helper()
	agg, err := scenario.NewAggregate(ccfg)
	if err != nil {
		t.Fatalf("NewAggregate: %v", err)
	}
	for v, serr := range scenario.StreamCampaign(context.Background(), ccfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign: %v", serr)
		}
		agg.Add(v)
	}
	var buf bytes.Buffer
	if err := agg.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	return buf.String()
}

func postCampaign(t *testing.T, addr, body string) string {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/campaign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /campaign: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading campaign stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /campaign: status %d, body %s", resp.StatusCode, data)
	}
	return string(data)
}

func metricsCounters(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return snap.Counters
}

// TestServeEndToEnd is the daemon's lifecycle in one pass: serve a
// campaign byte-identical to the direct run, serve it again entirely
// from cache, drain cleanly on cancel spilling the cache, then restart
// warm from the spill and serve it a third time without one simulation.
func TestServeEndToEnd(t *testing.T) {
	const count = 16
	body := fmt.Sprintf(`{"generator":"boundary","gen":{"maxRing":8},"count":%d,"seeds":[5]}`, count)
	want := directReport(t, scenario.CampaignConfig{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     count,
		Seeds:     []uint64{5},
	})
	spill := filepath.Join(t.TempDir(), "pef.spill")

	addr, stderr, cancel, done := startServe(t, "-spill", spill)
	if got := postCampaign(t, addr, body); got != want {
		t.Fatalf("served report diverged from direct bytes:\n--- served ---\n%s\n--- direct ---\n%s", got, want)
	}
	coldHits := metricsCounters(t, addr)["cache.hits"]
	if got := postCampaign(t, addr, body); got != want {
		t.Fatal("resubmitted report diverged from direct bytes")
	}
	if hits := metricsCounters(t, addr)["cache.hits"] - coldHits; hits < count {
		t.Fatalf("resubmission hit the cache %d of %d times", hits, count)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("drain returned an error: %v\nstderr: %s", err, stderr)
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("stderr lacks the clean-drain line:\n%s", stderr)
	}
	if fi, err := os.Stat(spill); err != nil || fi.Size() == 0 {
		t.Fatalf("drain left no spill at %s: %v", spill, err)
	}

	// Warm restart: the spill makes the whole campaign cache hits.
	addr2, stderr2, cancel2, done2 := startServe(t, "-spill", spill)
	if !strings.Contains(stderr2.String(), "warmed") {
		t.Fatalf("restart did not log the warm: %s", stderr2)
	}
	if got := postCampaign(t, addr2, body); got != want {
		t.Fatal("warm-restart report diverged from direct bytes")
	}
	c := metricsCounters(t, addr2)
	if c["cache.hits"] < count || c["cache.misses"] != 0 {
		t.Fatalf("warm restart ran simulations: hits=%d misses=%d", c["cache.hits"], c["cache.misses"])
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestServeHealthzAndRun(t *testing.T) {
	addr, _, cancel, done := startServe(t)
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	spec := scenario.Spec{
		Version:   scenario.Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: scenario.PlaceEven,
		Family:    "bernoulli",
		Params:    scenario.Params{P: 0.5},
		Horizon:   50,
		Seed:      9,
	}
	want := scenario.Run(spec)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantStatus := range []string{"miss", "hit"} {
		resp, err := http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /run #%d: %v", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /run #%d: status %d, body %s", i, resp.StatusCode, data)
		}
		if st := resp.Header.Get("X-Pef-Cache"); st != wantStatus {
			t.Fatalf("POST /run #%d: X-Pef-Cache %q, want %q", i, st, wantStatus)
		}
		var v scenario.Verdict
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("decoding verdict: %v", err)
		}
		if v != want {
			t.Fatalf("served verdict diverged from direct run")
		}
	}
	cancel()
	<-done
}

func TestServeFlagValidation(t *testing.T) {
	stderr := &syncBuffer{}
	if err := run(context.Background(), []string{"-spill", "x", "-cache-bytes", "0"}, stderr); err == nil ||
		!strings.Contains(err.Error(), "-spill requires") {
		t.Fatalf("spill without cache: err = %v", err)
	}
	if err := run(context.Background(), []string{"positional"}, stderr); err == nil ||
		!strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("positional args: err = %v", err)
	}
}
