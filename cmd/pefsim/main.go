// Command pefsim runs one fully synchronous execution of a perpetual
// exploration algorithm on a dynamic ring and reports the exploration
// verdict, optionally with a space-time diagram of the first rounds.
//
// Examples:
//
//	pefsim -n 8 -k 3 -alg pef3+ -dyn eventual-missing -rounds 2000
//	pefsim -n 3 -k 2 -alg pef2 -dyn bernoulli -p 0.5 -rounds 1000
//	pefsim -n 8 -k 3 -alg pef3+ -dyn block-pointed -budget 3 -viz 40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pef"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/spec"
	"pef/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pefsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 8, "ring size (number of nodes)")
		k      = flag.Int("k", 3, "number of robots")
		algo   = flag.String("alg", "pef3+", "algorithm name (see -list)")
		dyn    = flag.String("dyn", "static", "dynamics: static|bernoulli|eventual-missing|t-interval|roving|chain|block-pointed")
		p      = flag.Float64("p", 0.6, "edge presence probability (bernoulli)")
		edge   = flag.Int("edge", 0, "edge index (eventual-missing, chain)")
		from   = flag.Int("from", 32, "removal time (eventual-missing)")
		tint   = flag.Int("t", 4, "interval length (t-interval)")
		period = flag.Int("period", 3, "rotation period (roving)")
		budget = flag.Int("budget", 3, "absence budget (block-pointed)")
		rounds = flag.Int("rounds", 2000, "rounds to simulate")
		seed   = flag.Uint64("seed", 42, "random seed")
		viz    = flag.Int("viz", 0, "render a space-time diagram of the first N rounds")
		list   = flag.Bool("list", false, "list registered algorithms and exit")
		save   = flag.String("save", "", "save the realized evolving graph to this JSON file")
		load   = flag.String("load", "", "replay a previously saved evolving graph instead of -dyn")
	)
	flag.Parse()
	pef.RegisterBuiltins()

	if *list {
		for _, name := range pef.Algorithms() {
			fmt.Println(name)
		}
		return nil
	}

	alg, err := pef.NewAlgorithm(*algo)
	if err != nil {
		return err
	}
	var dynamics pef.Dynamics
	if *load != "" {
		rec, err := loadGraph(*load)
		if err != nil {
			return err
		}
		if rec.Ring().Size() != *n {
			*n = rec.Ring().Size()
		}
		*dyn = "replay:" + *load
		dynamics = fsync.Oblivious{G: rec}
	} else {
		dynamics, err = buildDynamics(*dyn, *n, *p, *edge, *from, *tint, *period, *budget, *seed)
		if err != nil {
			return err
		}
	}

	vt := spec.NewVisitTracker(*n)
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    dynamics,
		Placements:  fsync.RandomPlacements(*n, *k, prng.NewSource(*seed)),
		Observers:   []fsync.Observer{vt, rec},
		RecordGraph: *viz > 0 || *save != "",
	})
	if err != nil {
		return err
	}
	sim.Run(*rounds)
	rep := vt.Report()

	if *save != "" {
		if err := saveGraph(*save, sim.RecordedGraph()); err != nil {
			return err
		}
		fmt.Printf("saved realized evolving graph to %s\n", *save)
	}

	fmt.Printf("algorithm   %s\n", alg.Name())
	fmt.Printf("ring        n=%d, k=%d, dynamics=%s, seed=%d\n", *n, *k, *dyn, *seed)
	fmt.Printf("horizon     %d rounds\n", rep.Horizon)
	fmt.Printf("covered     %d/%d nodes (cover time %d)\n", rep.Covered, rep.Nodes, rep.CoverTime)
	fmt.Printf("max gap     %d rounds (node %d)\n", rep.MaxGap, rep.WorstNode)
	fmt.Printf("visits/node %v\n", rep.Visits)
	if rep.PerpetuallyExplored(rep.Horizon / 2) {
		fmt.Println("verdict     PERPETUAL EXPLORATION (finite-horizon criterion)")
	} else {
		fmt.Println("verdict     exploration NOT sustained on this horizon")
	}

	if *viz > 0 {
		snaps := make([]fsync.Snapshot, rec.Len())
		for t := range snaps {
			snaps[t] = rec.At(t)
		}
		fmt.Println()
		fmt.Print(trace.Header(*n))
		fmt.Print(trace.SpaceTimeString(sim.RecordedGraph(), snaps, 0, *viz))
	}
	return nil
}

func buildDynamics(name string, n int, p float64, edge, from, tint, period, budget int, seed uint64) (pef.Dynamics, error) {
	switch name {
	case "static":
		return pef.Static(n), nil
	case "bernoulli":
		return pef.Bernoulli(n, p, seed), nil
	case "eventual-missing":
		return pef.EventualMissing(n, edge, from, seed), nil
	case "t-interval":
		return pef.TInterval(n, tint, seed), nil
	case "roving":
		return pef.Roving(n, period), nil
	case "chain":
		return pef.Chain(n, edge, seed), nil
	case "block-pointed":
		return pef.BlockPointed(n, budget), nil
	default:
		return nil, fmt.Errorf("unknown dynamics %q", name)
	}
}

// saveGraph writes a recorded evolving graph as JSON.
func saveGraph(path string, rec *dyngraph.Recorded) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding graph: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// loadGraph reads a recorded evolving graph from JSON.
func loadGraph(path string) (*dyngraph.Recorded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var rec dyngraph.Recorded
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &rec, nil
}
