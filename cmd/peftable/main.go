// Command peftable regenerates Table 1 of the paper ("Overview of the
// results") empirically: for each (robots, ring size) regime it runs the
// corresponding possibility algorithm across the workload battery or the
// corresponding impossibility adversary across the algorithm suite, and
// prints the verdict next to the paper's claim.
package main

import (
	"flag"
	"fmt"
	"os"

	"pef/internal/harness"
	"pef/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "peftable:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 1, "experiment seed")
		quick   = flag.Bool("quick", false, "reduced horizons")
		details = flag.Bool("details", false, "print per-run detail tables")
	)
	flag.Parse()

	rows := []struct {
		id      string
		robots  string
		size    string
		claim   string
		theorem string
	}{
		{"E-T1.R1", "3 and more", ">= 4 (n > k)", "Possible", "Theorem 3.1 (PEF_3+)"},
		{"E-T1.R2", "2", "> 3", "Impossible", "Theorem 4.1"},
		{"E-T1.R3", "2", "= 3", "Possible", "Theorem 4.2 (PEF_2)"},
		{"E-T1.R4", "1", "> 2", "Impossible", "Theorem 5.1"},
		{"E-T1.R5", "1", "= 2", "Possible", "Theorem 5.2 (PEF_1)"},
	}

	table := metrics.NewTable("Robots", "Ring size", "Paper", "Result", "Reproduced")
	cfg := harness.Config{Seed: *seed, Quick: *quick}
	var failures int
	for _, row := range rows {
		exp, ok := harness.Find(row.id)
		if !ok {
			return fmt.Errorf("missing experiment %s", row.id)
		}
		res, err := exp.Run(cfg)
		if err != nil {
			return err
		}
		mark := "yes"
		if !res.Pass {
			mark = "NO"
			failures++
		}
		table.AddRow(row.robots, row.size, row.claim, row.theorem, mark)
		if *details {
			if err := harness.WriteResult(os.Stdout, res); err != nil {
				return err
			}
		}
	}

	fmt.Println("Table 1 — Overview of the results (empirical reproduction)")
	fmt.Println()
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d row(s) failed to reproduce", failures)
	}
	fmt.Println("\nAll five rows reproduce the paper's characterization.")
	return nil
}
