package pef_test

import (
	"context"
	"fmt"

	"pef"
)

// The possibility side of Table 1: three PEF_3+ robots perpetually explore
// a ring whose edge vanishes forever — the paper's canonical hard case.
func ExampleExplore() {
	report, err := pef.Explore(context.Background(), pef.ExploreConfig{
		Robots:    3,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.EventualMissing(8, 2, 32, 7),
		Horizon:   2000,
		Seed:      7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("covered %d/%d nodes\n", report.Covered, report.Nodes)
	fmt.Printf("perpetual: %t\n", report.PerpetuallyExplored(1000))
	// Output:
	// covered 8/8 nodes
	// perpetual: true
}

// The impossibility side: the Theorem 5.1 adversary confines any single
// deterministic robot — here the paper's own PEF_3+ run with one robot —
// to two nodes of an 8-node ring.
func ExampleConfineOneRobot() {
	report, err := pef.ConfineOneRobot(context.Background(), pef.PEF3Plus(), 8, 512)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("visited %d nodes (limit %d): confined=%t\n",
		report.DistinctVisited, report.Limit, report.Confined)
	// Output:
	// visited 2 nodes (limit 2): confined=true
}

// Two robots fare no better on rings of size at least four: the four-phase
// schedule of Theorem 4.1 (Figure 2) confines them to three nodes.
func ExampleConfineTwoRobots() {
	report, err := pef.ConfineTwoRobots(context.Background(), pef.PEF2(), 8, 512)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("visited %d nodes (limit %d): confined=%t\n",
		report.DistinctVisited, report.Limit, report.Confined)
	// Output:
	// visited 3 nodes (limit 3): confined=true
}

// Explicit placements fix the initial configuration: the paper requires a
// towerless start with fewer robots than nodes.
func ExampleExplore_placements() {
	report, err := pef.Explore(context.Background(), pef.ExploreConfig{
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.Static(6),
		Horizon:   120,
		Placements: []pef.Placement{
			{Node: 0, Chirality: pef.RightIsCW},
			{Node: 2, Chirality: pef.RightIsCW},
			{Node: 4, Chirality: pef.RightIsCW},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cover time %d, max revisit gap %d\n", report.CoverTime, report.MaxGap)
	// Output:
	// cover time 1, max revisit gap 2
}

// The unified entry point: one declarative scenario, one context-aware
// call, one structured verdict checked against the paper's prediction.
func ExampleRun() {
	verdict, err := pef.Run(context.Background(), pef.Scenario{
		Version: 1, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: "even",
		Family: "eventual-missing", Params: pef.ScenarioParams{Edge: 2, From: 32, P: 0.7, Delta: 4},
		Horizon: 1600, Seed: 42,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("expect=%s outcome=%s ok=%t covered=%d/8\n",
		verdict.Expect, verdict.Outcome, verdict.OK, verdict.Covered)
	// Output:
	// expect=explore outcome=explored ok=true covered=8/8
}

// RunSeeds amortizes one scenario shape across many seeds: up to 64
// seeds advance bit-parallel per machine word on the lockstep engine,
// and every verdict is byte-identical to a scalar Run with that seed.
func ExampleRunSeeds() {
	shape := pef.Scenario{
		Version: 1, Ring: 10, Robots: 3, Algorithm: "pef3+", Placement: "random",
		Family: "bernoulli", Params: pef.ScenarioParams{P: 0.7},
		Horizon: 2000,
	}
	seeds := make([]uint64, 64)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	verdicts, err := pef.RunSeeds(context.Background(), shape, seeds)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	explored := 0
	for _, v := range verdicts {
		if v.OK && v.Outcome == "explored" {
			explored++
		}
	}
	fmt.Printf("%d/%d seeds explored the ring\n", explored, len(verdicts))
	// Output:
	// 64/64 seeds explored the ring
}

// Campaigns stream verdicts in canonical order with bounded memory: fold
// them into a CampaignAggregate for reports (byte-identical to the
// collected RunCampaign path) and checkpoint at any cut for resumption.
func ExampleStreamCampaign() {
	cfg := pef.CampaignConfig{
		Generator: "boundary",
		Gen:       pef.GenConfig{MaxRing: 8},
		Count:     50,
		Seeds:     []uint64{1, 2},
		Workers:   2,
	}
	agg, err := pef.NewCampaignAggregate(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for verdict, err := range pef.StreamCampaign(context.Background(), cfg) {
		if err != nil {
			fmt.Println("stream error:", err)
			return
		}
		agg.Add(verdict) // O(aggregate) memory, however long the campaign
	}
	fmt.Printf("%d scenarios, %d ok, %d violations\n",
		agg.Done(), agg.OKCount(), len(agg.Violations()))
	fmt.Printf("checkpoint covers %d scenarios\n", agg.Checkpoint().Done)
	// Output:
	// 100 scenarios, 100 ok, 0 violations
	// checkpoint covers 100 scenarios
}

// Minimize shrinks a violating scenario to a minimal reproducer: here a
// deliberately broken claim — the oscillator baseline forced under the
// explore expectation — reduces from a 12-node, 2400-round scenario to a
// 5-node, 6-round one that still fails, while the paper's own PEF_3+
// still passes at the shrunk size (so the failure stays attributable).
func ExampleMinimize() {
	broken := pef.Scenario{
		Version: 1, Ring: 12, Robots: 3, Algorithm: "oscillator",
		Placement: "adjacent", Family: "static", Horizon: 2400, Seed: 7,
		Expect: "explore",
	}
	minimal := pef.Minimize(broken)
	fmt.Printf("minimal reproducer: %s\n", minimal.ID())
	fmt.Printf("still violating: %t\n", !pef.RunScenario(minimal).OK)
	// Output:
	// minimal reproducer: v1/n5.k3/oscillator/adjacent/static/h6/s7/explore
	// still violating: true
}

// The extension registry makes user dynamics first-class: register a
// family descriptor once and declarative scenarios, campaigns, the
// minimizer and the CLI listings all resolve it by name. Here a "half-day"
// family — edges alternate day/night shifts of Period rounds, phase split
// down the middle of the ring — runs under the paper's explore predicate.
func ExampleRegisterFamily() {
	err := pef.RegisterFamily("half-day", pef.FamilyDescriptor{
		Description: "edges on the first half of the ring work days, the rest nights",
		Params: []pef.ParamField{
			{Name: "period", Kind: pef.ParamInt, Min: 1, Max: 32, Required: true, Doc: "shift length"},
		},
		Explorable: true,
		Graph: func(s pef.Scenario) (pef.EvolvingGraph, error) {
			r := pef.NewRing(s.Ring)
			period, half := s.Params.Period, s.Ring/2
			return presentFunc{r: r, f: func(e, t int) bool {
				day := (t/period)%2 == 0
				return day == (e < half)
			}}, nil
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	verdict, err := pef.Run(context.Background(), pef.Scenario{
		Version: 1, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: "even",
		Family: "half-day", Params: pef.ScenarioParams{Period: 3},
		Horizon: 2400, Seed: 5,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("expect=%s outcome=%s ok=%t\n", verdict.Expect, verdict.Outcome, verdict.OK)
	// Output:
	// expect=explore outcome=explored ok=true
}

// Search hunts the theorem boundary: a seeded bandit over the
// explorable families plus mutation of the lowest-margin survivors
// concentrates the campaign budget where the paper's predicates have
// the least slack. Fixed-seed searches are byte-identical for any
// worker count, and the near-violation corpus doubles as the seed
// corpus of FuzzScenario (go test -fuzz).
func ExampleSearch() {
	res, err := pef.Search(context.Background(), pef.SearchConfig{
		Registry: pef.NewRegistry(), // builtins only: hermetic whatever else is registered
		Seed:     11, Generations: 4, GenerationSize: 32, Warmup: 2, CorpusSize: 8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d samples, %d mutations, %d violations\n",
		res.Samples, res.Mutations, len(res.Violations))
	fmt.Printf("corpus holds %d near-violation specs\n", len(res.Corpus))
	tightest := res.Boundary[0]
	for _, row := range res.Boundary {
		if row.RelMin < tightest.RelMin {
			tightest = row
		}
	}
	fmt.Printf("tightest margin: %s %s at %d‰ of its bound\n",
		tightest.Family, tightest.Metric, tightest.RelMin)
	// Output:
	// 128 samples, 32 mutations, 0 violations
	// corpus holds 8 near-violation specs
	// tightest margin: bernoulli gapHeadroom at 960‰ of its bound
}

// presentFunc adapts a presence function to the EvolvingGraph interface.
type presentFunc struct {
	r pef.Ring
	f func(e, t int) bool
}

func (g presentFunc) Ring() pef.Ring { return g.r }
func (g presentFunc) Present(e, t int) bool {
	return g.r.ValidEdge(e) && t >= 0 && g.f(e, t)
}

// ComposeFamilies folds registered oblivious families into one schedule —
// here the intersection of Bernoulli noise with a T-interval-connected
// ring, each adversary vetoing edges independently. The descriptor can be
// registered like any family; building it directly shows the shared
// parameter bag in action.
func ExampleComposeFamilies() {
	desc, err := pef.ComposeFamilies(pef.ComposeIntersect, "bernoulli", "t-interval")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(desc.Description)
	verdict, err := pef.Run(context.Background(), pef.Scenario{
		Version: 1, Ring: 8, Robots: 3, Algorithm: "pef3+", Placement: "even",
		Family: "compose:intersect", Params: pef.ScenarioParams{P: 0.8, T: 4},
		Horizon: 1600, Seed: 11,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("expect=%s outcome=%s ok=%t\n", verdict.Expect, verdict.Outcome, verdict.OK)
	// Output:
	// intersect of bernoulli+t-interval edge schedules
	// expect=explore outcome=explored ok=true
}
