package pef_test

import (
	"fmt"

	"pef"
)

// The possibility side of Table 1: three PEF_3+ robots perpetually explore
// a ring whose edge vanishes forever — the paper's canonical hard case.
func ExampleExplore() {
	report, err := pef.Explore(pef.ExploreConfig{
		Robots:    3,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.EventualMissing(8, 2, 32, 7),
		Horizon:   2000,
		Seed:      7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("covered %d/%d nodes\n", report.Covered, report.Nodes)
	fmt.Printf("perpetual: %t\n", report.PerpetuallyExplored(1000))
	// Output:
	// covered 8/8 nodes
	// perpetual: true
}

// The impossibility side: the Theorem 5.1 adversary confines any single
// deterministic robot — here the paper's own PEF_3+ run with one robot —
// to two nodes of an 8-node ring.
func ExampleConfineOneRobot() {
	report, err := pef.ConfineOneRobot(pef.PEF3Plus(), 8, 512)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("visited %d nodes (limit %d): confined=%t\n",
		report.DistinctVisited, report.Limit, report.Confined)
	// Output:
	// visited 2 nodes (limit 2): confined=true
}

// Two robots fare no better on rings of size at least four: the four-phase
// schedule of Theorem 4.1 (Figure 2) confines them to three nodes.
func ExampleConfineTwoRobots() {
	report, err := pef.ConfineTwoRobots(pef.PEF2(), 8, 512)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("visited %d nodes (limit %d): confined=%t\n",
		report.DistinctVisited, report.Limit, report.Confined)
	// Output:
	// visited 3 nodes (limit 3): confined=true
}

// Explicit placements fix the initial configuration: the paper requires a
// towerless start with fewer robots than nodes.
func ExampleExplore_placements() {
	report, err := pef.Explore(pef.ExploreConfig{
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.Static(6),
		Horizon:   120,
		Placements: []pef.Placement{
			{Node: 0, Chirality: pef.RightIsCW},
			{Node: 2, Chirality: pef.RightIsCW},
			{Node: 4, Chirality: pef.RightIsCW},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cover time %d, max revisit gap %d\n", report.CoverTime, report.MaxGap)
	// Output:
	// cover time 1, max revisit gap 2
}
