// Adversarial: the impossibility side of the paper, live. The Theorem 5.1
// adversary confines any single robot to 2 nodes; the Theorem 4.1 adversary
// confines any two robots to 3 nodes — here demonstrated against the
// strongest single-robot candidate (bounce-on-missing) and against the
// paper's own PEF_3+ run below its robot requirement. The printed
// space-time diagrams are the executable Figures 2 and 3.
//
//	go run ./examples/adversarial
package main

import (
	"context"
	"fmt"
	"log"

	"pef"
)

func main() {
	pef.RegisterBuiltins()
	const n = 8

	bounce, err := pef.NewAlgorithm("bounce-on-missing")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Theorem 5.1: one robot, ring of size 8 (Figure 3) ===")
	rep1, diag1, err := pef.ConfineOneRobotWithDiagram(bounce, n, 400, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(diag1)
	fmt.Printf("\nbounce-on-missing visited %d/%d nodes %v — confined: %t\n\n",
		rep1.DistinctVisited, n, rep1.VisitedNodes, rep1.Confined)

	fmt.Println("=== Theorem 4.1: two robots, ring of size 8 (Figure 2) ===")
	rep2, diag2, err := pef.ConfineTwoRobotsWithDiagram(bounce, n, 400, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(diag2)
	fmt.Printf("\nbounce-on-missing pair visited %d/%d nodes %v — confined: %t\n\n",
		rep2.DistinctVisited, n, rep2.VisitedNodes, rep2.Confined)

	fmt.Println("=== The paper's own algorithms below their robot requirement ===")
	for _, name := range []string{"pef3+", "pef2", "pef1"} {
		alg, err := pef.NewAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		one, err := pef.ConfineOneRobot(context.Background(), alg, n, 400)
		if err != nil {
			log.Fatal(err)
		}
		two, err := pef.ConfineTwoRobots(context.Background(), alg, n, 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  1 robot: %d nodes (confined %t)   2 robots: %d nodes (confined %t)\n",
			name, one.DistinctVisited, one.Confined, two.DistinctVisited, two.Confined)
	}
	fmt.Println("\nThree robots are not a convenience — they are the computability threshold.")
}
