// Campaign: a thousand generated scenarios sweep through the property
// oracle. The boundary generator samples the computability threshold of
// Table 1 — the minimal rings of PEF_1 and PEF_2, minimal-margin PEF_3+
// teams, under-threshold teams, and the confinement adversaries of the
// impossibility theorems — and every sample is checked against the paper's
// prediction for it.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pef"
)

func main() {
	const perSeed = 250 // 250 scenarios × 4 generator seeds = 1000

	campaign, err := pef.RunCampaign(context.Background(), pef.CampaignConfig{
		Generator: "boundary",
		Gen:       pef.GenConfig{MaxRing: 12},
		Count:     perSeed,
		Seeds:     []uint64{1, 2, 3, 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := campaign.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A single scenario is just as declarative: encode it, ship it,
	// replay it anywhere.
	specs, err := pef.GenerateScenarios("boundary", pef.GenConfig{MaxRing: 12}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := specs[0].Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst generated spec (%s):\n%s\n", specs[0].ID(), encoded)

	verdict := pef.RunScenario(specs[0])
	fmt.Printf("replayed verdict: expect=%s outcome=%s ok=%t\n", verdict.Expect, verdict.Outcome, verdict.OK)

	if violations := campaign.Violations(); len(violations) > 0 {
		log.Fatalf("%d scenario(s) violate the paper's predicates", len(violations))
	}
	fmt.Printf("\nall %d scenarios satisfy the paper's predicates.\n", len(campaign.Verdicts))
}
