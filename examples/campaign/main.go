// Campaign: a thousand generated scenarios stream through the property
// oracle with bounded memory. The boundary generator samples the
// computability threshold of Table 1 — the minimal rings of PEF_1 and
// PEF_2, minimal-margin PEF_3+ teams, under-threshold teams, and the
// confinement adversaries of the impossibility theorems — and every
// sample is checked against the paper's prediction for it. Verdicts fold
// one by one into an online aggregate (never a slice), a checkpoint is
// cut halfway to show resumability, and any violation would be shrunk to
// a minimal reproducer.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pef"
)

func main() {
	cfg := pef.CampaignConfig{
		Generator: "boundary",
		Gen:       pef.GenConfig{MaxRing: 12},
		Count:     250, // 250 scenarios × 4 generator seeds = 1000
		Seeds:     []uint64{1, 2, 3, 4},
	}

	// The streaming path: verdicts arrive in canonical order (identical
	// for any worker count) and nothing is retained beyond the aggregate.
	aggregate, err := pef.NewCampaignAggregate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var checkpoint *pef.CampaignCheckpoint
	for verdict, err := range pef.StreamCampaign(context.Background(), cfg) {
		if err != nil {
			log.Fatal(err)
		}
		aggregate.Add(verdict)
		if aggregate.Done() == 500 {
			// Snapshot mid-campaign: resuming from this checkpoint
			// reproduces the final report byte for byte.
			checkpoint = aggregate.Checkpoint()
		}
	}

	if err := aggregate.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmid-campaign checkpoint covered %d scenarios; CampaignConfig.Resume would finish the remaining %d.\n",
		checkpoint.Done, aggregate.Done()-checkpoint.Done)

	// A single scenario is just as declarative: encode it, ship it,
	// replay it anywhere through the unified context-aware entry point.
	specs, err := pef.GenerateScenarios("boundary", pef.GenConfig{MaxRing: 12}, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := specs[0].Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst generated spec (%s):\n%s\n", specs[0].ID(), encoded)

	verdict, err := pef.Run(context.Background(), specs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed verdict: expect=%s outcome=%s ok=%t\n", verdict.Expect, verdict.Outcome, verdict.OK)

	if violations := aggregate.Violations(); len(violations) > 0 {
		// Counterexamples ship minimized: smallest ring, team, horizon and
		// parameters that still violate the paper's prediction.
		for _, v := range violations {
			fmt.Printf("minimal reproducer: %s\n", pef.Minimize(v.Spec).ID())
		}
		log.Fatalf("%d scenario(s) violate the paper's predicates", len(violations))
	}
	fmt.Printf("\nall %d scenarios satisfy the paper's predicates.\n", aggregate.Done())
}
