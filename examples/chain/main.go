// Chain: the paper's closing remark of Section 1 — a connected-over-time
// chain is a connected-over-time ring with one edge missing forever, so all
// results transfer. A mine gallery (dead-end corridor) is swept perpetually
// by three PEF_3+ robots while rockfalls block individual segments for
// short periods.
//
//	go run ./examples/chain
package main

import (
	"context"
	"fmt"
	"log"

	"pef"
)

func main() {
	const (
		segments = 10 // nodes of the gallery
		cut      = 9  // the "edge" that never existed: ring -> chain
		robots   = 3
		horizon  = 6000
		seed     = 77
	)

	report, err := pef.Explore(context.Background(), pef.ExploreConfig{
		Nodes:     segments,
		Robots:    robots,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.Chain(segments, cut, seed),
		Horizon:   horizon,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Mine gallery: %d chambers in a line (ring with edge %d permanently removed),\n", segments, cut)
	fmt.Printf("%d sweep robots, transient rockfalls on every other segment\n\n", robots)
	fmt.Printf("chambers swept: %d/%d (all by round %d)\n", report.Covered, report.Nodes, report.CoverTime)
	fmt.Printf("longest unswept stretch: %d rounds\n", report.MaxGap)
	fmt.Printf("sweeps per chamber: %v\n", report.Visits)
	if report.PerpetuallyExplored(horizon / 2) {
		fmt.Println("\nverdict: the chain is perpetually explored — the ring results transfer.")
	} else {
		fmt.Println("\nverdict: exploration not sustained (unexpected).")
	}
}
