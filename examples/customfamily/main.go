// Command customfamily demonstrates the extension registry end to end: a
// user-defined dynamics family ("tide") and a user-defined oracle
// property ("visit-majority") registered at startup, then driven through
// the exact same machinery as the built-ins — single runs via pef.Run, a
// sharded campaign via the "registered" generator restricted to the new
// family, and enumeration next to the stock families.
//
// The tide dynamics is a staggered duty cycle: edge e is switched off for
// `period` rounds out of every 3·period, phase-shifted by its index, so
// snapshots may even be disconnected while every edge recurs within
// 3·period rounds — connected-over-time, the only assumption the paper's
// algorithms need.
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"pef"
)

// tide is the custom oblivious dynamics: a pure function of (edge, time),
// like every registered Graph family, so runs replay bit for bit.
type tide struct {
	r      pef.Ring
	period int
}

func (g tide) Ring() pef.Ring { return g.r }

func (g tide) Present(e, t int) bool {
	if !g.r.ValidEdge(e) || t < 0 {
		return false
	}
	return (t/g.period+e)%3 != 0
}

// register installs the tide family and the visit-majority property into
// the default registry. Everything downstream — validation, generators,
// oracle, CLI listings — picks them up from there.
func register() error {
	if err := pef.RegisterFamily("tide", pef.FamilyDescriptor{
		Description: "staggered duty cycle: edge e off for period rounds out of every 3*period",
		Params: []pef.ParamField{
			{Name: "period", Kind: pef.ParamInt, Min: 1, Max: 64, Required: true, Doc: "duty-cycle third"},
		},
		Explorable: true, // connected-over-time: the registered generator may sample it
		Graph: func(s pef.Scenario) (pef.EvolvingGraph, error) {
			return tide{r: pef.NewRing(s.Ring), period: s.Params.Period}, nil
		},
		Sample: func(src *pef.Rand, _, _ int) pef.ScenarioParams {
			return pef.ScenarioParams{Period: 1 + src.Intn(4)}
		},
		Horizon: func(n int, p pef.ScenarioParams) int {
			// Every edge recurs within 3·period rounds; scale the horizon
			// like the bounded-recurrence family does for its Delta.
			h := 200 * n
			if h < 1200 {
				h = 1200
			}
			if min := 400 * 3 * p.Period; h < min {
				h = min
			}
			return h
		},
	}); err != nil {
		return err
	}
	return pef.RegisterProperty("visit-majority", pef.Property{
		Description: "the robots visit a strict majority of the ring's nodes",
		Check: func(in pef.PropertyInput) pef.PropertyResult {
			need := in.Spec.Ring/2 + 1
			if in.Distinct >= need {
				return pef.PropertyResult{OK: true}
			}
			return pef.PropertyResult{
				Violation: fmt.Sprintf("visited %d distinct nodes, majority needs %d", in.Distinct, need),
			}
		},
	})
}

func run() error {
	if err := register(); err != nil {
		return err
	}

	// The new family now enumerates next to the built-ins.
	fmt.Println("registered families:")
	for _, name := range pef.ScenarioFamilies() {
		fmt.Println("  " + name)
	}

	// One declarative run of the custom family, judged by the custom
	// property: the same unified entry point the built-ins use.
	v, err := pef.Run(context.Background(), pef.Scenario{
		Ring: 10, Robots: 3, Algorithm: "pef3+", Placement: "even",
		Family: "tide", Params: pef.ScenarioParams{Period: 3},
		Horizon: 3600, Seed: 42, Expect: "visit-majority",
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsingle run %s\n  expect=%s outcome=%s ok=%v covered=%d/%d maxGap=%d\n",
		v.ID, v.Expect, v.Outcome, v.OK, v.Covered, v.Spec.Ring, v.MaxGap)
	if !v.OK {
		return fmt.Errorf("custom property violated: %s", v.Violation)
	}

	// A campaign over the custom family alone: the "registered" generator
	// samples any explorable registry entry, and GenConfig.Families
	// restricts its pool. The oracle enforces the derived explore
	// expectation for every sample — pef3+ must keep covering the ring
	// under tide outages.
	c, err := pef.RunCampaign(context.Background(), pef.CampaignConfig{
		Generator: "registered",
		Gen:       pef.GenConfig{Families: "tide"},
		Count:     150,
		Seeds:     []uint64{1, 2},
	})
	if err != nil {
		return err
	}
	minCover, maxCover := math.MaxInt, -1
	for _, cv := range c.Verdicts {
		if cv.CoverTime >= 0 {
			minCover = min(minCover, cv.CoverTime)
			maxCover = max(maxCover, cv.CoverTime)
		}
	}
	fmt.Printf("\ncampaign over tide: %d scenarios, %d ok, cover time %d..%d rounds\n",
		c.Total(), c.OKCount(), minCover, maxCover)
	for _, viol := range c.Violations() {
		fmt.Printf("  violation %s: %s%s\n", viol.ID, viol.Violation, viol.Err)
	}
	if len(c.Violations()) > 0 {
		return fmt.Errorf("%d violation(s) in the tide campaign", len(c.Violations()))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customfamily:", err)
		os.Exit(1)
	}
}
