// Patrol: the surveillance scenario from the paper's introduction. A ring
// of 12 rooms must be patrolled while doors open and close unpredictably
// (no stability or periodicity assumption — only connected-over-time).
// Three PEF_3+ guards patrol; the example checks every room against an
// inspection deadline and prints the patrol log.
//
//	go run ./examples/patrol
package main

import (
	"context"
	"fmt"
	"log"

	"pef"
)

func main() {
	const (
		rooms    = 12
		guards   = 3
		shift    = 6000 // rounds in one patrol shift
		deadline = 900  // max rounds a room may stay uninspected
		seed     = 2026
	)

	// Doors behave adversarially: every door a guard walks towards slams
	// shut, but no door can stay shut more than 4 consecutive rounds
	// (fire regulations, say). This is the block-pointed stress adversary —
	// the worst connected-over-time behaviour the theory still tolerates.
	report, err := pef.Explore(context.Background(), pef.ExploreConfig{
		Nodes:     rooms,
		Robots:    guards,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.BlockPointed(rooms, 4),
		Horizon:   shift,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Patrolling %d rooms with %d guards for %d rounds\n", rooms, guards, shift)
	fmt.Printf("(adversarial doors: every door a guard approaches closes, budget 4)\n\n")
	fmt.Printf("%-6s %-8s %-10s\n", "room", "visits", "status")
	breaches := 0
	for room, visits := range report.Visits {
		status := "ok"
		if visits == 0 {
			status = "NEVER INSPECTED"
			breaches++
		}
		fmt.Printf("%-6d %-8d %-10s\n", room, visits, status)
	}
	fmt.Printf("\nworst inspection gap: %d rounds (deadline %d)\n", report.MaxGap, deadline)
	if breaches == 0 && report.MaxGap <= deadline {
		fmt.Println("shift verdict: every room inspected within deadline.")
	} else {
		fmt.Printf("shift verdict: %d rooms breached the deadline policy.\n", breaches)
	}
}
