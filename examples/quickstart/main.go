// Quickstart: three PEF_3+ robots perpetually explore an 8-node ring whose
// edge 2 disappears forever at round 32 — the paper's canonical hard case.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pef"
)

func main() {
	const (
		nodes   = 8
		robots  = 3
		horizon = 2000
		seed    = 42
	)

	report, err := pef.Explore(context.Background(), pef.ExploreConfig{
		Nodes:     nodes,
		Robots:    robots,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  pef.EventualMissing(nodes, 2, 32, seed),
		Horizon:   horizon,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PEF_3+ with %d robots on an %d-node connected-over-time ring\n", robots, nodes)
	fmt.Printf("(edge 2 disappears forever at round 32)\n\n")
	fmt.Printf("covered      %d/%d nodes, all visited by round %d\n", report.Covered, report.Nodes, report.CoverTime)
	fmt.Printf("max gap      %d rounds between consecutive visits (node %d)\n", report.MaxGap, report.WorstNode)
	fmt.Printf("visits/node  %v\n\n", report.Visits)

	if report.PerpetuallyExplored(horizon / 2) {
		fmt.Println("verdict: perpetual exploration sustained — Theorem 3.1 in action.")
	} else {
		fmt.Println("verdict: exploration NOT sustained (unexpected; file a bug).")
	}
}
