// Serveclient: a client of the pefserve campaign service, showing the
// shared retry discipline (internal/retry — the same bounded
// exponential backoff with deterministic jitter the lease workers use)
// and the content-addressed verdict cache doing its job: the same spec
// submitted twice costs one simulation, and the X-Pef-Cache header
// says so.
//
//	# against a self-hosted in-process server
//	go run ./examples/serveclient
//
//	# against a running daemon
//	pefserve -listen 127.0.0.1:7080 &
//	go run ./examples/serveclient http://127.0.0.1:7080
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"pef/internal/retry"
	"pef/internal/scenario"
	"pef/internal/serve"
	"pef/internal/serve/cache"
)

func main() {
	ctx := context.Background()

	base := ""
	if len(os.Args) > 1 {
		base = strings.TrimRight(os.Args[1], "/")
	} else {
		// No server given: host one in-process, exactly as pefserve would.
		tel := scenario.NewTelemetry()
		srv := serve.New(serve.Config{
			Cache:     cache.New(cache.Config{Telemetry: tel.Registry()}),
			Telemetry: tel,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv) //nolint:errcheck // torn down with the process
		base = "http://" + ln.Addr().String()
		fmt.Printf("self-hosted pefserve at %s\n\n", base)
	}

	// Wait for the server with the shared retry policy: bounded
	// exponential backoff, deterministically jittered by a seed derived
	// from the client identity — a fleet of these clients fans out
	// instead of thundering in lockstep.
	pol := retry.Policy{MaxRetries: 6, Base: 50 * time.Millisecond, Seed: retry.SeedString("serveclient")}
	var stream uint64
	stream++
	err := retry.Do(ctx, pol, stream, func(int) (bool, error) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return true, err // transport error: the server may still be binding
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return true, fmt.Errorf("healthz: %s", resp.Status)
		}
		return false, nil
	})
	if err != nil {
		log.Fatalf("server never became healthy: %v", err)
	}
	fmt.Println("=== /healthz: server is up ===")

	// The same spec twice: one simulation, then a cache hit.
	spec := scenario.Spec{
		Version:   scenario.Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: scenario.PlaceEven,
		Family:    "bernoulli",
		Params:    scenario.Params{P: 0.5},
		Horizon:   200,
		Seed:      7,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== /run: the same spec twice ===")
	for i := 0; i < 2; i++ {
		v, status, err := postRun(ctx, pol, base, body)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %s → outcome=%s ok=%t\n", status, v.ID, v.Outcome, v.OK)
	}

	// A small campaign, streamed as the exact pefscenarios report bytes.
	fmt.Println("\n=== /campaign: boundary, 50 scenarios ===")
	resp, err := http.Post(base+"/campaign", "application/json",
		strings.NewReader(`{"generator":"boundary","gen":{"maxRing":8},"count":50,"seeds":[1]}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	report, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(report))
}

// postRun submits one spec under the retry policy — transient transport
// failures and 5xx are retried with jittered backoff, client errors are
// final — and returns the verdict plus the X-Pef-Cache status.
func postRun(ctx context.Context, pol retry.Policy, base string, body []byte) (scenario.Verdict, string, error) {
	var (
		v      scenario.Verdict
		status string
		stream uint64 = 100
	)
	stream++
	err := retry.Do(ctx, pol, stream, func(int) (bool, error) {
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode >= 500 {
			return true, fmt.Errorf("server error %s: %s", resp.Status, data)
		}
		if resp.StatusCode >= 400 {
			return false, fmt.Errorf("request refused %s: %s", resp.Status, data)
		}
		status = resp.Header.Get("X-Pef-Cache")
		return false, json.Unmarshal(data, &v)
	})
	return v, status, err
}
