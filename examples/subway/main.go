// Subway: the public-transport scenario of Flocchini, Mans and Santoro
// (cited as [16]/[19] in the paper) recast in the paper's model. A circular
// metro line of 10 stations runs on per-segment timetables: each track
// segment is only usable during its scheduled windows. Three inspectors
// running PEF_3+ — who know nothing about the timetables — must still
// visit every station infinitely often, because a periodic line is in
// particular connected-over-time.
//
//	go run ./examples/subway
package main

import (
	"fmt"
	"log"

	"pef"
)

// timetable builds a period-8 schedule for segment e: the segment is open
// for a contiguous window whose offset shifts along the line, like a train
// circulating.
func timetable(e, stations int) []bool {
	const period = 8
	pattern := make([]bool, period)
	start := (e * 3) % period
	for w := 0; w < 4; w++ {
		pattern[(start+w)%period] = true
	}
	return pattern
}

func main() {
	const (
		stations   = 10
		inspectors = 3
		horizon    = 4000
	)

	patterns := make([][]bool, stations)
	for e := range patterns {
		patterns[e] = timetable(e, stations)
	}
	line, err := pef.Periodic(stations, patterns)
	if err != nil {
		log.Fatal(err)
	}

	report, diagram, err := pef.ExploreWithDiagram(pef.ExploreConfig{
		Nodes:     stations,
		Robots:    inspectors,
		Algorithm: pef.PEF3Plus(),
		Dynamics:  line,
		Horizon:   horizon,
		Seed:      7,
	}, 12)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Circular line with %d stations, %d ticket inspectors, period-8 timetables\n\n", stations, inspectors)
	fmt.Print(diagram)
	fmt.Printf("\nstations covered: %d/%d (all by round %d)\n", report.Covered, report.Nodes, report.CoverTime)
	fmt.Printf("longest uninspected stretch: %d rounds\n", report.MaxGap)
	if report.PerpetuallyExplored(horizon / 2) {
		fmt.Println("verdict: every station is inspected infinitely often — no timetable knowledge needed.")
	} else {
		fmt.Println("verdict: inspection gaps too large (unexpected).")
	}
}
