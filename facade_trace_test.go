package pef

import (
	"context"
	"strings"
	"testing"
)

func TestExploreWithDiagramRendersRows(t *testing.T) {
	rep, diagram, err := ExploreWithDiagram(ExploreConfig{
		Robots:    3,
		Algorithm: PEF3Plus(),
		Dynamics:  Static(6),
		Horizon:   50,
		Seed:      3,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 6 {
		t.Fatalf("not covered: %s", rep)
	}
	lines := strings.Split(strings.TrimRight(diagram, "\n"), "\n")
	if len(lines) != 6 { // header + 5 rows
		t.Fatalf("diagram has %d lines:\n%s", len(lines), diagram)
	}
	if !strings.Contains(diagram, "t=   0") {
		t.Fatalf("diagram missing first instant:\n%s", diagram)
	}
}

func TestExploreWithDiagramValidation(t *testing.T) {
	if _, _, err := ExploreWithDiagram(ExploreConfig{}, 4); err == nil {
		t.Error("empty config accepted")
	}
	if _, _, err := ExploreWithDiagram(ExploreConfig{
		Algorithm: PEF1(), Dynamics: Static(4), Robots: 9,
	}, 4); err == nil {
		t.Error("oversized team accepted")
	}
}

func TestConfineWithDiagramVariants(t *testing.T) {
	rep1, d1, err := ConfineOneRobotWithDiagram(PEF3Plus(), 8, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Confined || !strings.Contains(d1, "~") {
		t.Fatalf("one-robot diagram missing removals: %+v\n%s", rep1, d1)
	}
	rep2, d2, err := ConfineTwoRobotsWithDiagram(PEF3Plus(), 8, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Confined || !strings.Contains(d2, "[1]") {
		t.Fatalf("two-robot diagram missing robots: %+v\n%s", rep2, d2)
	}
	// Zero rows disables rendering.
	_, d3, err := ConfineOneRobotWithDiagram(PEF3Plus(), 8, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != "" {
		t.Fatal("rows=0 should render nothing")
	}
}

func TestPeriodicFacadeValidation(t *testing.T) {
	if _, err := Periodic(2, [][]bool{{true}}); err == nil {
		t.Error("pattern count mismatch accepted")
	}
	dyn, err := Periodic(3, [][]bool{{true}, {true, false}, {false, true}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(context.Background(), ExploreConfig{
		Robots: 2, Algorithm: PEF3Plus(), Dynamics: dyn, Horizon: 300, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Covered != 3 {
		t.Fatalf("periodic facade run failed: %s", rep)
	}
}
