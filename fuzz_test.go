package pef_test

import (
	"context"
	"testing"

	"pef"
)

// FuzzScenario bridges the coverage-guided search to go test -fuzz: the
// seed corpus is a search run's near-violation corpus — the specs that
// finished closest to the theorem boundary — so the fuzzer starts its
// mutations exactly where the margins are thinnest. Any input that
// decodes as a valid scenario replays through the oracle under the
// paper's own derived expectation; a violation fails with a
// pef.Minimize minimal reproducer so the counterexample is immediately
// actionable. Run it with:
//
//	go test -fuzz FuzzScenario -fuzztime 30s
func FuzzScenario(f *testing.F) {
	res, err := pef.Search(context.Background(), pef.SearchConfig{
		Seed: 11, Generations: 3, GenerationSize: 32, Warmup: 1, CorpusSize: 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range res.Corpus {
		data, err := e.Spec.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := pef.DecodeScenario(data)
		if err != nil {
			t.Skip()
		}
		// Keep individual executions cheap; the search corpus stays well
		// inside these bounds, so only fuzzer-invented giants are skipped.
		if s.Ring > 64 || s.Horizon > 1<<14 {
			t.Skip()
		}
		// Let the oracle derive the paper's prediction: a failure is then
		// a genuine theorem-boundary violation, not a mutated claim.
		s.Expect = ""
		v := pef.RunScenario(s)
		if v.Err != "" {
			t.Fatalf("execution error on valid spec %s: %s", v.ID, v.Err)
		}
		if !v.OK {
			minimal := pef.Minimize(v.Spec)
			t.Fatalf("violation: %s (%s); minimal reproducer: %s",
				v.ID, v.Violation, minimal.ID())
		}
	})
}
