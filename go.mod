module pef

go 1.24
