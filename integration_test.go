package pef

import (
	"context"
	"encoding/json"
	"testing"
	"testing/quick"

	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/spec"
)

// TestTowerLemmasHoldUnderRandomDynamics is the repository's central
// property test: Lemmas 3.3 and 3.4 — no tower of three or more robots,
// and two-robot towers always point in opposite global directions after
// Compute — must hold for PEF_3+ on every connected-over-time dynamics,
// from every towerless initial configuration.
func TestTowerLemmasHoldUnderRandomDynamics(t *testing.T) {
	prop := func(seed uint64, n8, k8, p8 uint8) bool {
		n := int(n8%13) + 4 // 4..16
		k := int(k8%3) + 3  // 3..5
		if k >= n {
			k = n - 1
		}
		p := 0.2 + float64(p8%8)/10 // 0.2..0.9
		src := prng.NewSource(seed)
		ti := spec.NewTowerInvariants()
		base := dynamics.NewBernoulli(n, p, seed)
		g := dynamics.NewBoundedRecurrence(base, 6, seed^0xABCD)
		sim, err := fsync.New(fsync.Config{
			Algorithm:  core.PEF3Plus{},
			Dynamics:   fsync.Oblivious{G: g},
			Placements: fsync.RandomPlacements(n, k, src),
			Observers:  []fsync.Observer{ti},
		})
		if err != nil {
			return false
		}
		sim.Run(40 * n)
		return ti.OK()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExplorationHoldsUnderRandomRecurrentDynamics checks Theorem 3.1 as a
// property: PEF_3+ covers every node of every bounded-recurrent random
// ring.
func TestExplorationHoldsUnderRandomRecurrentDynamics(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		n := int(n8%9) + 4 // 4..12
		rep, err := Explore(context.Background(), ExploreConfig{
			Robots:    3,
			Algorithm: PEF3Plus(),
			Dynamics: fsync.Oblivious{G: dynamics.NewBoundedRecurrence(
				dynamics.NewBernoulli(n, 0.3, seed), 5, seed^0x77)},
			Horizon: 120 * n,
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		return rep.Covered == n && rep.MaxGap <= 60*n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConfinementHoldsForRandomizedVictims checks Theorem 5.1 as a
// property: the one-robot adversary confines LCG walkers of every seed.
func TestConfinementHoldsForRandomizedVictims(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		n := int(n8%14) + 3 // 3..16
		rep, err := ConfineOneRobot(context.Background(), baseline.LCGWalker{Seed: seed}, n, 48*n)
		if err != nil {
			return false
		}
		return rep.Confined
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoRobotConfinementForRandomizedVictims is the two-robot analogue.
func TestTwoRobotConfinementForRandomizedVictims(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		n := int(n8%13) + 4 // 4..16
		rep, err := ConfineTwoRobots(context.Background(), baseline.LCGWalker{Seed: seed}, n, 48*n)
		if err != nil {
			return false
		}
		return rep.Confined
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRecordReplayPipeline runs an exploration, serializes the realized
// evolving graph, reloads it, re-runs the same deterministic algorithm on
// the replay and demands an identical execution — the full persistence
// pipeline end to end.
func TestRecordReplayPipeline(t *testing.T) {
	const n, k, horizon = 8, 3, 400
	placements := fsync.EvenPlacements(n, k)

	run := func(dyn Dynamics) ([]int, ExplorationReport) {
		vt := spec.NewVisitTracker(n)
		rec := &fsync.SnapshotRecorder{}
		sim, err := fsync.New(fsync.Config{
			Algorithm:   PEF3Plus(),
			Dynamics:    dyn,
			Placements:  placements,
			Observers:   []fsync.Observer{vt, rec},
			RecordGraph: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		final := sim.Run(horizon)
		// Serialize and reload the graph.
		data, err := json.Marshal(sim.RecordedGraph())
		if err != nil {
			t.Fatal(err)
		}
		var back dyngraph.Recorded
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		// Replay on the reloaded graph.
		vt2 := spec.NewVisitTracker(n)
		sim2, err := fsync.New(fsync.Config{
			Algorithm:  PEF3Plus(),
			Dynamics:   fsync.Oblivious{G: &back},
			Placements: placements,
			Observers:  []fsync.Observer{vt2},
		})
		if err != nil {
			t.Fatal(err)
		}
		final2 := sim2.Run(horizon)
		for i := range final.Positions {
			if final.Positions[i] != final2.Positions[i] || final.States[i] != final2.States[i] {
				t.Fatalf("replay diverged at robot %d: %v/%v vs %v/%v",
					i, final.Positions[i], final.States[i], final2.Positions[i], final2.States[i])
			}
		}
		if vt.Report().MaxGap != vt2.Report().MaxGap {
			t.Fatal("replay changed the exploration report")
		}
		return final.Positions, vt.Report()
	}

	_, rep := run(Bernoulli(n, 0.5, 2024))
	if rep.Covered != n {
		t.Fatalf("pipeline run did not cover: %s", rep)
	}
}

// TestSentinelPipeline integrates dynamics, simulator and the Lemma 3.7
// watch: sentinels must form after the edge disappears and the two posted
// robots must be on the missing edge's extremities.
func TestSentinelPipeline(t *testing.T) {
	const n, k, edge, from, horizon = 10, 3, 4, 20, 2400
	g := dyngraph.NewEventualMissing(
		dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.8, 5), 4, 6), edge, from)
	watch := spec.NewSentinelWatch(g.Ring(), edge, from)
	vt := spec.NewVisitTracker(n)
	sim, err := fsync.New(fsync.Config{
		Algorithm:  PEF3Plus(),
		Dynamics:   fsync.Oblivious{G: g},
		Placements: fsync.EvenPlacements(n, k),
		Observers:  []fsync.Observer{watch, vt},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(horizon)
	srep := watch.Report()
	if !srep.Stabilized {
		t.Fatalf("sentinels never stabilized: %+v", srep)
	}
	if srep.StableFrom < from {
		t.Fatalf("sentinels 'stable' before the edge vanished: %+v", srep)
	}
	if rep := vt.Report(); rep.Covered != n {
		t.Fatalf("exploration failed alongside sentinels: %s", rep)
	}
}

// TestChiralityIrrelevanceForExploration: the paper's robots do not share
// orientation; exploration must succeed for every chirality assignment.
func TestChiralityIrrelevanceForExploration(t *testing.T) {
	const n, k = 6, 3
	for mask := 0; mask < 1<<k; mask++ {
		placements := make([]fsync.Placement, k)
		for i := 0; i < k; i++ {
			ch := robot.RightIsCW
			if mask&(1<<i) != 0 {
				ch = robot.RightIsCCW
			}
			placements[i] = fsync.Placement{Node: 2 * i, Chirality: ch}
		}
		rep, err := Explore(context.Background(), ExploreConfig{
			Algorithm:  PEF3Plus(),
			Dynamics:   EventualMissing(n, 1, 16, uint64(mask)),
			Horizon:    1600,
			Placements: placements,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Covered != n {
			t.Fatalf("chirality mask %03b broke exploration: %s", mask, rep)
		}
	}
}
