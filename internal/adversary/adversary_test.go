package adversary

import (
	"testing"

	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
	"pef/internal/spec"
)

// victimSuite is the empirical stand-in for "any deterministic algorithm":
// all baselines plus the paper's algorithms used outside their valid range.
func victimSuite() []robot.Algorithm {
	suite := baseline.Suite()
	suite = append(suite, core.PEF3Plus{}, core.PEF2{}, core.PEF1{}, core.NoRule2{}, core.NoRule3{})
	return suite
}

func TestOneRobotConfinementAcrossSuite(t *testing.T) {
	for _, alg := range victimSuite() {
		for _, n := range []int{3, 4, 8, 16} {
			for _, chir := range []robot.Chirality{robot.RightIsCW, robot.RightIsCCW} {
				adv := NewOneRobotConfinement(n, 0, 0)
				ct := spec.NewConfinementTracker()
				sim, err := fsync.New(fsync.Config{
					Algorithm:  alg,
					Dynamics:   adv,
					Placements: []fsync.Placement{{Node: 0, Chirality: chir}},
					Observers:  []fsync.Observer{ct},
				})
				if err != nil {
					t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
				}
				sim.Run(64 * n)
				if !ct.ConfinedTo(2) {
					t.Errorf("%s n=%d chir=%v: visited %d nodes %v, expected <= 2",
						alg.Name(), n, chir, ct.Distinct(), ct.VisitedNodes())
				}
			}
		}
	}
}

func TestOneRobotConfinementNodes(t *testing.T) {
	adv := NewOneRobotConfinement(8, 5, 0)
	u, v := adv.Nodes()
	if u != 5 || v != 4 {
		t.Fatalf("Nodes = (%d,%d), want (5,4)", u, v)
	}
}

func TestOneRobotAdversaryKeepsSnapshotsConnected(t *testing.T) {
	// Every snapshot the adversary produces removes exactly one edge.
	adv := NewOneRobotConfinement(6, 0, 0)
	sim, err := fsync.New(fsync.Config{
		Algorithm:   baseline.BounceOnMissing{},
		Dynamics:    adv,
		Placements:  []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(100)
	rec := sim.RecordedGraph()
	for tt := 0; tt < rec.Horizon(); tt++ {
		if !rec.Snapshot(tt).ConnectedAsRing() {
			t.Fatalf("snapshot at t=%d disconnected", tt)
		}
	}
}

func TestOneRobotAdversaryRealizesConnectedOverTime(t *testing.T) {
	// Against a live victim (bounce-on-missing keeps moving), all edges
	// must be recurrent: absence intervals finite, every pair reachable.
	adv := NewOneRobotConfinement(5, 0, 0)
	sim, err := fsync.New(fsync.Config{
		Algorithm:   baseline.BounceOnMissing{},
		Dynamics:    adv,
		Placements:  []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(400)
	rec := sim.RecordedGraph()
	rep := dyngraph.VerifyConnectedOverTime(rec, 400, []int{0, 100, 250})
	if !rep.OK {
		t.Fatalf("realized graph not connected-over-time: %+v", rep.Failures)
	}
}

func TestOneRobotStallDetection(t *testing.T) {
	// keep-direction with RightIsCW points CCW; at node 0 the adversary
	// blocks the CW edge, so the robot moves to v=n-1 immediately, then at
	// v the CCW edge is blocked while the robot still points CCW: stall.
	adv := NewOneRobotConfinement(5, 0, 0)
	sim, err := fsync.New(fsync.Config{
		Algorithm:  baseline.KeepDirection{},
		Dynamics:   adv,
		Placements: []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(50)
	info, stalled := adv.Stall(sim.Now(), 20)
	if !stalled {
		t.Fatal("expected a stall for keep-direction")
	}
	if info.Node != 4 || info.MissingSide != ring.CCW {
		t.Fatalf("stall info = %+v, want node 4 missing CCW", info)
	}
}

func TestTwoRobotConfinementAcrossSuite(t *testing.T) {
	for _, alg := range victimSuite() {
		for _, n := range []int{4, 5, 8, 16} {
			for _, chirs := range [][2]robot.Chirality{
				{robot.RightIsCW, robot.RightIsCW},
				{robot.RightIsCW, robot.RightIsCCW},
			} {
				adv := NewTwoRobotConfinement(n, 0, 0, 1)
				ct := spec.NewConfinementTracker()
				sim, err := fsync.New(fsync.Config{
					Algorithm: alg,
					Dynamics:  adv,
					Placements: []fsync.Placement{
						{Node: 0, Chirality: chirs[0]},
						{Node: 1, Chirality: chirs[1]},
					},
					Observers: []fsync.Observer{ct},
				})
				if err != nil {
					t.Fatalf("%s n=%d: %v", alg.Name(), n, err)
				}
				sim.Run(64 * n)
				if !ct.ConfinedTo(3) {
					t.Errorf("%s n=%d chirs=%v: visited %d nodes %v, expected <= 3",
						alg.Name(), n, chirs, ct.Distinct(), ct.VisitedNodes())
				}
			}
		}
	}
}

func TestTwoRobotPhasesCycleAgainstLiveVictim(t *testing.T) {
	// tower-bounce robots keep moving when forced, so the adversary must
	// complete many full phase cycles.
	adv := NewTwoRobotConfinement(6, 0, 0, 1)
	sim, err := fsync.New(fsync.Config{
		Algorithm: baseline.BounceOnMissing{},
		Dynamics:  adv,
		Placements: []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCW},
		},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(200)
	if _, stalled := adv.Stall(sim.Now(), 100); stalled {
		t.Fatal("bounce-on-missing should not stall the phase machine")
	}
	// Realized graph must be connected-over-time (all absence intervals
	// finite) when phases keep cycling.
	rec := sim.RecordedGraph()
	rep := dyngraph.VerifyConnectedOverTime(rec, 200, []int{0, 60})
	if !rep.OK {
		t.Fatalf("realized graph not connected-over-time: %+v", rep.Failures)
	}
}

func TestTwoRobotStallInfoSides(t *testing.T) {
	// keep-direction robots: r2 at node 1 points CCW (towards u), which
	// phase 0 blocks — immediate stall on v with the missing edge CCW.
	adv := NewTwoRobotConfinement(5, 0, 0, 1)
	sim, err := fsync.New(fsync.Config{
		Algorithm: baseline.KeepDirection{},
		Dynamics:  adv,
		Placements: []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCW},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(40)
	info, stalled := adv.Stall(sim.Now(), 30)
	if !stalled {
		t.Fatal("expected stall")
	}
	if info.Robot != 1 || info.Node != 1 || info.MissingSide != ring.CCW {
		t.Fatalf("stall info = %+v", info)
	}
}

func TestBlockPointedBudgetIsRespected(t *testing.T) {
	adv := NewBlockPointed(6, 3)
	sim, err := fsync.New(fsync.Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    adv,
		Placements:  fsync.EvenPlacements(6, 3),
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(300)
	rec := sim.RecordedGraph()
	for e := 0; e < 6; e++ {
		if run := dyngraph.MaxAbsenceRun(rec, e, 300); run > 3 {
			t.Fatalf("edge %d absent for %d consecutive rounds, budget 3", e, run)
		}
	}
}

func TestBlockBothSidesStillAllowsExploration(t *testing.T) {
	adv := NewBlockBothSides(6, 2)
	vt := spec.NewVisitTracker(6)
	sim, err := fsync.New(fsync.Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   adv,
		Placements: fsync.EvenPlacements(6, 3),
		Observers:  []fsync.Observer{vt},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(600)
	rep := vt.Report()
	if rep.Covered != 6 {
		t.Fatalf("FSYNC control failed to cover: %s", rep)
	}
}
