package adversary

import (
	"fmt"

	"pef/internal/fsync"
	"pef/internal/ring"
)

// BlockPointed is the budgeted stress adversary used by the possibility
// experiments: each round it removes every edge some robot currently points
// to — the most obstructive choice — except that no edge may be absent for
// more than Budget consecutive rounds. The release rule makes every edge
// recurrent with recurrence bound Budget+1, so the realized graph is
// connected-over-time and PEF_3+ must (and does) keep exploring, with a
// revisit gap that grows with the budget (experiment E-X2 quantifies this).
type BlockPointed struct {
	r      ring.Ring
	budget int
	run    []int // consecutive rounds each edge has been absent
}

// NewBlockPointed builds the adversary for an n-node ring with the given
// consecutive-absence budget (>= 1).
func NewBlockPointed(n, budget int) *BlockPointed {
	if budget < 1 {
		panic(fmt.Sprintf("adversary: block budget %d below 1", budget))
	}
	return &BlockPointed{r: ring.New(n), budget: budget, run: make([]int, ring.New(n).Edges())}
}

// Ring implements fsync.Dynamics.
func (a *BlockPointed) Ring() ring.Ring { return a.r }

// EdgesAt implements fsync.Dynamics.
func (a *BlockPointed) EdgesAt(_ int, snap fsync.Snapshot) ring.EdgeSet {
	edges := ring.FullEdgeSet(a.r.Edges())
	for i, pos := range snap.Positions {
		e := a.r.EdgeTowards(pos, snap.GlobalDirs[i])
		if a.run[e] < a.budget {
			edges.Remove(e)
		}
	}
	for e := 0; e < a.r.Edges(); e++ {
		if edges.Contains(e) {
			a.run[e] = 0
		} else {
			a.run[e]++
		}
	}
	return edges
}

// BlockBothSides removes, each round, both adjacent edges of every robot's
// node subject to the same per-edge consecutive-absence budget. It is the
// FSYNC control of experiment E-X4: the SSYNC trick of freezing the active
// robot cannot work when every robot is active every round and edges must
// keep reappearing — robots provably get to move.
type BlockBothSides struct {
	r      ring.Ring
	budget int
	run    []int
}

// NewBlockBothSides builds the adversary with the given budget (>= 1).
func NewBlockBothSides(n, budget int) *BlockBothSides {
	if budget < 1 {
		panic(fmt.Sprintf("adversary: block budget %d below 1", budget))
	}
	return &BlockBothSides{r: ring.New(n), budget: budget, run: make([]int, ring.New(n).Edges())}
}

// Ring implements fsync.Dynamics.
func (a *BlockBothSides) Ring() ring.Ring { return a.r }

// EdgesAt implements fsync.Dynamics.
func (a *BlockBothSides) EdgesAt(_ int, snap fsync.Snapshot) ring.EdgeSet {
	edges := ring.FullEdgeSet(a.r.Edges())
	for _, pos := range snap.Positions {
		for _, d := range []ring.Direction{ring.CW, ring.CCW} {
			e := a.r.EdgeTowards(pos, d)
			if a.run[e] < a.budget {
				edges.Remove(e)
			}
		}
	}
	for e := 0; e < a.r.Edges(); e++ {
		if edges.Contains(e) {
			a.run[e] = 0
		} else {
			a.run[e]++
		}
	}
	return edges
}
