// Package adversary implements the paper's proof constructions as runnable
// adaptive dynamics:
//
//   - OneRobotConfinement: the evolving-graph sequence of Theorem 5.1
//     (Figure 3), which confines any single deterministic robot to two
//     adjacent nodes of a connected-over-time ring of size >= 3.
//   - TwoRobotConfinement: the four-phase sequence of Theorem 4.1
//     (Figure 2), which confines any two deterministic robots to three
//     consecutive nodes of a connected-over-time ring of size >= 4.
//   - Mirror: the eight-node indistinguishability gadget of Lemma 4.1
//     (Figure 1), with checkers for its Claims 1–4.
//   - BlockPointed: a budgeted stress adversary for the possibility
//     experiments.
//
// The proofs wait for the victim to move ("there exists t' >= t such that
// the robot leaves"); the adaptive implementations do the same, observing
// only robot positions. If the victim never moves, the frozen schedule is
// itself a legal connected-over-time counterexample (an eventually missing
// edge keeps the eventual underlying graph connected), which the verdicts
// detect as confinement all the same.
package adversary

import (
	"fmt"

	"pef/internal/fsync"
	"pef/internal/ring"
)

// StallInfo describes a phase that the victim never completed: the watched
// robot sat on Node from Since onwards while OneEdge(Node, Since, now)
// held, with the missing adjacent edge on side MissingSide.
type StallInfo struct {
	// Robot is the index of the stalled robot.
	Robot int
	// Node is where it is stuck.
	Node int
	// Since is the first instant of the stalled phase.
	Since int
	// MissingSide is the global direction from Node towards the blocked
	// adjacent edge.
	MissingSide ring.Direction
}

// OneRobotConfinement is the Theorem 5.1 adversary. Starting from the
// victim's initial node u, it alternates two phases:
//
//	Phase A (robot at u): remove e_ur, the clockwise adjacent edge of u.
//	        The only exit is counter-clockwise, to v.
//	Phase B (robot at v): remove e_vl, the counter-clockwise adjacent edge
//	        of v. The only exit is back to u.
//
// Every other edge stays present, so each snapshot is a connected chain.
// Whatever the algorithm does, the robot only ever occupies {u, v}; if it
// keeps moving, every removal interval is finite and the realized graph is
// connected-over-time with all edges recurrent (the paper's Gω); if it
// eventually stops, the realized graph has a single eventually missing edge
// and is still connected-over-time.
type OneRobotConfinement struct {
	r     ring.Ring
	u, v  int
	robot int

	phaseStart int
	lastNode   int
}

// NewOneRobotConfinement builds the adversary for the robot with the given
// index, whose initial node is u, on an n-node ring (n >= 3).
func NewOneRobotConfinement(n, u, robotIdx int) *OneRobotConfinement {
	r := ring.New(n)
	if n < 3 {
		panic(fmt.Sprintf("adversary: Theorem 5.1 needs n >= 3, got %d", n))
	}
	if !r.ValidNode(u) {
		panic(fmt.Sprintf("adversary: invalid start node %d", u))
	}
	return &OneRobotConfinement{r: r, u: u, v: r.Next(u, ring.CCW), robot: robotIdx, lastNode: u}
}

// Ring implements fsync.Dynamics.
func (a *OneRobotConfinement) Ring() ring.Ring { return a.r }

// EdgesAt implements fsync.Dynamics.
func (a *OneRobotConfinement) EdgesAt(t int, snap fsync.Snapshot) ring.EdgeSet {
	pos := snap.Positions[a.robot]
	if pos != a.lastNode {
		a.phaseStart = t
		a.lastNode = pos
	}
	full := ring.FullEdgeSet(a.r.Edges())
	switch pos {
	case a.u:
		// Block e_ur: the clockwise adjacent edge of u.
		return full.Without(a.r.EdgeTowards(a.u, ring.CW))
	case a.v:
		// Block e_vl: the counter-clockwise adjacent edge of v.
		return full.Without(a.r.EdgeTowards(a.v, ring.CCW))
	default:
		// Unreachable by construction: the victim can only ever occupy
		// u or v. Fail loudly rather than let a bug masquerade as a
		// successful escape.
		panic(fmt.Sprintf("adversary: victim escaped to node %d at t=%d", pos, t))
	}
}

// Nodes returns the two nodes the victim is confined to.
func (a *OneRobotConfinement) Nodes() (u, v int) { return a.u, a.v }

// Stall returns information about the current phase if the victim has been
// sitting still for at least patience rounds, observed at time now.
func (a *OneRobotConfinement) Stall(now, patience int) (StallInfo, bool) {
	if now-a.phaseStart < patience {
		return StallInfo{}, false
	}
	side := ring.CW
	if a.lastNode == a.v {
		side = ring.CCW
	}
	return StallInfo{Robot: a.robot, Node: a.lastNode, Since: a.phaseStart, MissingSide: side}, true
}
