package adversary

import (
	"fmt"

	"pef/internal/fsync"
	"pef/internal/ring"
)

// TwoRobotConfinement is the Theorem 4.1 adversary (Figure 2). With robot
// r1 initially on node u and r2 on node v = u+1 (clockwise), and w = u+2,
// it cycles through four phases; each phase blocks a set of edges until its
// watched robot is forced across the single edge left open to it:
//
//	phase 0: block {e_ul, e_vl}            — r2 forced v → w, r1 boxed on u
//	phase 1: block {e_ul, e_wl, e_wr}      — r1 forced u → v, r2 boxed on w
//	phase 2: block {e_wl, e_wr}            — r1 forced v → u, r2 boxed on w
//	phase 3: block {e_ul, e_ur, e_wr}      — r2 forced w → v, r1 boxed on u
//
// (e_xl / e_xr denote the counter-clockwise / clockwise adjacent edges of
// node x; e_ur = e_vl and e_vr = e_wl on the ring.) After phase 3 the
// configuration is again (r1@u, r2@v) and the cycle repeats: the robots
// visit only {u, v, w} forever while every edge keeps reappearing between
// phases — the realized graph converges to the paper's Gω.
type TwoRobotConfinement struct {
	r       ring.Ring
	u, v, w int
	r1, r2  int // robot indices

	phase      int
	phaseStart int
}

// NewTwoRobotConfinement builds the adversary on an n-node ring (n >= 4)
// for robots r1Idx (initially on node u) and r2Idx (initially on node u+1).
func NewTwoRobotConfinement(n, u, r1Idx, r2Idx int) *TwoRobotConfinement {
	r := ring.New(n)
	if n < 4 {
		panic(fmt.Sprintf("adversary: Theorem 4.1 needs n >= 4, got %d", n))
	}
	if !r.ValidNode(u) {
		panic(fmt.Sprintf("adversary: invalid start node %d", u))
	}
	if r1Idx == r2Idx {
		panic("adversary: the two watched robots must be distinct")
	}
	return &TwoRobotConfinement{
		r: r, u: u, v: r.Next(u, ring.CW), w: r.Walk(u, 2, ring.CW),
		r1: r1Idx, r2: r2Idx,
	}
}

// Ring implements fsync.Dynamics.
func (a *TwoRobotConfinement) Ring() ring.Ring { return a.r }

// watchedTarget returns, per phase, the robot the adversary is waiting on
// and the node whose reaching completes the phase.
func (a *TwoRobotConfinement) watchedTarget() (robotIdx, target int) {
	switch a.phase {
	case 0:
		return a.r2, a.w
	case 1:
		return a.r1, a.v
	case 2:
		return a.r1, a.u
	default:
		return a.r2, a.v
	}
}

// blocked returns the edges removed during the current phase.
func (a *TwoRobotConfinement) blocked() []int {
	eul := a.r.EdgeTowards(a.u, ring.CCW)
	eur := a.r.EdgeTowards(a.u, ring.CW)
	evl := eur
	ewl := a.r.EdgeTowards(a.w, ring.CCW)
	ewr := a.r.EdgeTowards(a.w, ring.CW)
	switch a.phase {
	case 0:
		return []int{eul, evl}
	case 1:
		return []int{eul, ewl, ewr}
	case 2:
		return []int{ewl, ewr}
	default:
		return []int{eul, eur, ewr}
	}
}

// EdgesAt implements fsync.Dynamics.
func (a *TwoRobotConfinement) EdgesAt(t int, snap fsync.Snapshot) ring.EdgeSet {
	watched, target := a.watchedTarget()
	if snap.Positions[watched] == target {
		a.phase = (a.phase + 1) % 4
		a.phaseStart = t
	}
	a.guard(snap, t)
	return ring.FullEdgeSet(a.r.Edges()).Without(a.blocked()...)
}

// guard panics if either robot ever leaves {u, v, w}: by construction that
// is impossible, so an escape means a bug in the schedule, which must not
// be reported as an algorithm win.
func (a *TwoRobotConfinement) guard(snap fsync.Snapshot, t int) {
	for _, idx := range []int{a.r1, a.r2} {
		p := snap.Positions[idx]
		if p != a.u && p != a.v && p != a.w {
			panic(fmt.Sprintf("adversary: robot %d escaped to node %d at t=%d (phase %d)", idx, p, t, a.phase))
		}
	}
}

// Phase returns the current phase index (0..3).
func (a *TwoRobotConfinement) Phase() int { return a.phase }

// Nodes returns the three nodes the victims are confined to.
func (a *TwoRobotConfinement) Nodes() (u, v, w int) { return a.u, a.v, a.w }

// Stall reports the watched robot of the current phase if it has not
// completed the phase within patience rounds, observed at time now. The
// stalled robot sits on a node satisfying OneEdge since the phase start;
// MissingSide is the direction of its blocked adjacent edge, which is the
// input the Lemma 4.1 mirror construction needs.
func (a *TwoRobotConfinement) Stall(now, patience int) (StallInfo, bool) {
	if now-a.phaseStart < patience {
		return StallInfo{}, false
	}
	watched, _ := a.watchedTarget()
	var node int
	var side ring.Direction
	switch a.phase {
	case 0:
		// r2 stuck on v: e_vl blocked (CCW side), e_vr open.
		node, side = a.v, ring.CCW
	case 1:
		// r1 stuck on u: e_ul blocked (CCW side), e_ur open.
		node, side = a.u, ring.CCW
	case 2:
		// r1 stuck on v: e_vr blocked (CW side), e_vl open.
		node, side = a.v, ring.CW
	default:
		// r2 stuck on w: e_wr blocked (CW side), e_wl open.
		node, side = a.w, ring.CW
	}
	return StallInfo{Robot: watched, Node: node, Since: a.phaseStart, MissingSide: side}, true
}
