package adversary

import (
	"fmt"

	"pef/internal/fsync"
	"pef/internal/ring"
)

// ArcContainment is the naive generalization of the confinement adversaries
// to arbitrary team sizes: it tries to imprison all robots inside the arc
// of nodes [Start, Start+Width) by removing the arc's two boundary edges.
// BoundaryBudget controls legality:
//
//   - BoundaryBudget == 0: boundaries stay removed forever. Containment is
//     then trivial, but the realized graph has two eventually missing
//     edges, so its eventual underlying graph is disconnected — NOT a
//     connected-over-time ring. The run is disqualified as an
//     impossibility witness.
//   - BoundaryBudget == B > 0: a boundary edge must reappear for one round
//     after B consecutive absences. The realized graph is legal, but
//     Theorem 3.1 robots (k >= 3 running PEF_3+) cross reopened boundaries
//     and explore the whole ring.
//
// Experiment E-X11 runs both policies against PEF_3+ to make the paper's
// threshold visible: below three robots the phase adversaries confine
// legally; from three robots on, every containment attempt must choose
// between illegality and escape.
type ArcContainment struct {
	r              ring.Ring
	start, width   int
	boundaryBudget int
	run            [2]int // consecutive absences per boundary edge
}

// NewArcContainment confines to the arc of width nodes starting at start.
// Width must leave at least one node outside the arc.
func NewArcContainment(n, start, width, boundaryBudget int) *ArcContainment {
	r := ring.New(n)
	if width < 1 || width >= n {
		panic(fmt.Sprintf("adversary: arc width %d invalid for ring of %d", width, n))
	}
	if boundaryBudget < 0 {
		panic("adversary: negative boundary budget")
	}
	return &ArcContainment{r: r, start: r.Node(start), width: width, boundaryBudget: boundaryBudget}
}

// Ring implements fsync.Dynamics.
func (a *ArcContainment) Ring() ring.Ring { return a.r }

// Boundaries returns the two boundary edges of the arc: the CCW edge of
// its first node and the CW edge of its last node.
func (a *ArcContainment) Boundaries() (left, right int) {
	left = a.r.EdgeTowards(a.start, ring.CCW)
	right = a.r.EdgeTowards(a.r.Node(a.start+a.width-1), ring.CW)
	return left, right
}

// EdgesAt implements fsync.Dynamics.
func (a *ArcContainment) EdgesAt(_ int, _ fsync.Snapshot) ring.EdgeSet {
	edges := ring.FullEdgeSet(a.r.Edges())
	left, right := a.Boundaries()
	for i, e := range [2]int{left, right} {
		if a.boundaryBudget == 0 || a.run[i] < a.boundaryBudget {
			edges.Remove(e)
			a.run[i]++
		} else {
			a.run[i] = 0 // forced reopening round
		}
	}
	return edges
}
