package adversary

import (
	"testing"

	"pef/internal/core"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/spec"
)

func TestArcContainmentBoundaries(t *testing.T) {
	a := NewArcContainment(8, 2, 3, 0) // arc {2,3,4}
	left, right := a.Boundaries()
	if left != 1 || right != 4 {
		t.Fatalf("boundaries = (%d,%d), want (1,4)", left, right)
	}
}

func TestArcContainmentValidation(t *testing.T) {
	for _, c := range []struct{ start, width, budget int }{
		{0, 0, 0}, {0, 8, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", c.width)
				}
			}()
			NewArcContainment(8, c.start, c.width, c.budget)
		}()
	}
}

func TestArcContainmentForeverConfinesButIllegal(t *testing.T) {
	const n, horizon = 8, 400
	adv := NewArcContainment(n, 0, 4, 0)
	ct := spec.NewConfinementTracker()
	sim, err := fsync.New(fsync.Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    adv,
		Placements:  fsync.AdjacentPlacements(n, 3, 0),
		Observers:   []fsync.Observer{ct},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(horizon)
	if !ct.ConfinedTo(4) {
		t.Fatalf("budget-0 walls leaked: visited %v", ct.VisitedNodes())
	}
	// Two eventually missing edges: the realized graph is NOT
	// connected-over-time — an illegal impossibility witness.
	missing := dyngraph.EventuallyMissingEdges(sim.RecordedGraph(), horizon, horizon/2)
	if len(missing) != 2 {
		t.Fatalf("eventually missing edges = %v, want the two walls", missing)
	}
	if rep := dyngraph.VerifyConnectedOverTime(sim.RecordedGraph(), horizon, []int{0}); rep.OK {
		t.Fatal("budget-0 realized graph verified connected-over-time, impossible")
	}
}

func TestArcContainmentWithBudgetIsEscaped(t *testing.T) {
	const n, horizon = 8, 1200
	adv := NewArcContainment(n, 0, 4, 6)
	ct := spec.NewConfinementTracker()
	vt := spec.NewVisitTracker(n)
	sim, err := fsync.New(fsync.Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    adv,
		Placements:  fsync.AdjacentPlacements(n, 3, 0),
		Observers:   []fsync.Observer{ct, vt},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(horizon)
	if ct.ConfinedTo(4) {
		t.Fatal("PEF_3+ stayed confined despite reopening walls (contradicts Theorem 3.1)")
	}
	if rep := vt.Report(); rep.Covered != n {
		t.Fatalf("escaped but did not explore: %s", rep)
	}
	// The budget keeps each wall's absence runs bounded: legal dynamics.
	left, right := adv.Boundaries()
	for _, e := range []int{left, right} {
		if run := dyngraph.MaxAbsenceRun(sim.RecordedGraph(), e, horizon); run > 6 {
			t.Fatalf("wall %d absent for %d consecutive rounds, budget 6", e, run)
		}
	}
}
