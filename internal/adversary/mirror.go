package adversary

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// MirrorSize is the ring size of the Lemma 4.1 gadget: G′ has 8 nodes, an
// even count so that the odd-distance parity argument (Claim 2) goes
// through.
const MirrorSize = 8

// mirrorF1 and mirrorF2 are the adjacent nodes carrying the two robot
// copies at the stall time; the edge between them (index mirrorF1) is the
// eventually missing edge of G′.
const (
	mirrorF1     = 3
	mirrorF2     = 4
	mirrorCutoff = mirrorF1 // edge joining f1' and f2'
)

// MirrorInput packages a stalled execution prefix: a robot that, running
// alg with chirality Chir on the recorded evolving graph G, followed the
// node trajectory Traj (positions at instants 0..StallTime) and then sat
// on Traj[StallTime] under OneEdge with its blocked adjacent edge on side
// MissingSide. States optionally carries the robot's persistent state at
// each instant for the Claim 3/4 checks.
type MirrorInput struct {
	Alg         robot.Algorithm
	Chir        robot.Chirality
	G           dyngraph.EvolvingGraph
	Traj        []int
	States      []robot.StateCode
	StallTime   int
	MissingSide ring.Direction
}

// MirrorWorld is the constructed gadget of Figure 1: the 8-node evolving
// graph G′ together with the placement of the two opposite-chirality robot
// copies.
type MirrorWorld struct {
	// Graph is G′.
	Graph dyngraph.EvolvingGraph
	// Placements holds the two robots: index 0 is r1 (same local behaviour
	// as the original robot), index 1 is its mirrored copy r2.
	Placements [2]fsync.Placement
	// StallTime is the instant t from which edge (f1', f2') is removed
	// forever.
	StallTime int
	// Phi maps the original robot's (at most two) visited nodes into the
	// r1 half of G′.
	Phi map[int]int
	// Orient is the global-direction multiplier between the original ring
	// and the r1 half of G′.
	Orient int

	in MirrorInput
}

// sigmaNode is the reflection of G′ exchanging the two halves; it swaps
// f1' and f2'.
func sigmaNode(x int) int { return (7 - x) % MirrorSize }

// sigmaEdge is the induced reflection on edges; it fixes the central edge
// (f1', f2') and the antipodal edge.
func sigmaEdge(e int) int { return ((6-e)%MirrorSize + MirrorSize) % MirrorSize }

// BuildMirror constructs G′ from a stalled prefix, validating the
// hypotheses of Lemma 4.1: the robot visited at most two adjacent nodes and
// its blocked side at the stall points away from the previously visited
// node. It returns an error when the prefix does not satisfy them.
func BuildMirror(in MirrorInput) (*MirrorWorld, error) {
	if in.Alg == nil || in.G == nil {
		return nil, fmt.Errorf("adversary: mirror input missing algorithm or graph")
	}
	if in.StallTime < 0 || in.StallTime >= len(in.Traj) {
		return nil, fmt.Errorf("adversary: stall time %d outside trajectory of length %d", in.StallTime, len(in.Traj))
	}
	if !in.MissingSide.Valid() {
		return nil, fmt.Errorf("adversary: invalid missing side %d", in.MissingSide)
	}
	if len(in.States) > 0 && len(in.States) != len(in.Traj) {
		return nil, fmt.Errorf("adversary: %d states for %d trajectory points", len(in.States), len(in.Traj))
	}
	orig := in.G.Ring()

	// Collect the visited set R and check the "at most two adjacent nodes"
	// hypothesis (iii) of Lemma 4.1.
	visited := map[int]bool{}
	for _, p := range in.Traj[:in.StallTime+1] {
		if !orig.ValidNode(p) {
			return nil, fmt.Errorf("adversary: trajectory node %d invalid", p)
		}
		visited[p] = true
	}
	if len(visited) > 2 {
		return nil, fmt.Errorf("adversary: robot visited %d nodes, Lemma 4.1 needs at most 2", len(visited))
	}
	f := in.Traj[in.StallTime]
	var other int
	hasOther := false
	for p := range visited {
		if p != f {
			other, hasOther = p, true
		}
	}
	if hasOther {
		if _, adjacent := orig.EdgeBetween(f, other); !adjacent {
			return nil, fmt.Errorf("adversary: visited nodes %d and %d are not adjacent", f, other)
		}
	}

	// Orientation of the embedding: the r1 half of G′ is laid out so that
	// the blocked side at the stall maps to the central edge (f1', f2').
	orient := int(in.MissingSide)
	phi := map[int]int{f: mirrorF1}
	if hasOther {
		// φ(other) = 2, one step away from f1' on the outside; this is
		// only consistent when the original step from f to other is the
		// opposite of the missing side (which Figure 1's case analysis
		// guarantees for prefixes produced by OneEdge confinement).
		delta := 0
		switch other {
		case orig.Next(f, ring.CW):
			delta = 1
		case orig.Next(f, ring.CCW):
			delta = -1
		}
		if delta != -orient {
			return nil, fmt.Errorf("adversary: stall side %s points towards the other visited node; prefix violates the Figure 1 layout", in.MissingSide)
		}
		phi[other] = mirrorF1 - 1
	}

	// Edge schedule constraints for instants before the stall: each edge
	// adjacent to a visited node carries the original edge's schedule, both
	// in the r1 half and (reflected) in the r2 half. The construction of
	// Figure 1 guarantees the constraints never contradict; verify anyway.
	mr := ring.New(MirrorSize)
	constraint := map[int]int{} // G′ edge -> original edge
	for x := range phi {
		for _, d := range []ring.Direction{ring.CW, ring.CCW} {
			origEdge := orig.EdgeTowards(x, d)
			mirDir := ring.Direction(int(d) * orient)
			mirEdge := mr.EdgeTowards(phi[x], mirDir)
			for _, e := range []int{mirEdge, sigmaEdge(mirEdge)} {
				if prev, ok := constraint[e]; ok && prev != origEdge {
					return nil, fmt.Errorf("adversary: contradictory constraints on mirror edge %d (%d vs %d)", e, prev, origEdge)
				}
				constraint[e] = origEdge
			}
		}
	}

	stall := in.StallTime
	g := in.G
	mirror := dyngraph.Func{
		R: mr,
		F: func(e, t int) bool {
			if t >= stall {
				return e != mirrorCutoff
			}
			if origEdge, ok := constraint[e]; ok {
				return g.Present(origEdge, t)
			}
			return true
		},
	}

	i1 := phi[in.Traj[0]]
	chir1 := robot.Chirality(int8(in.Chir) * int8(orient))
	w := &MirrorWorld{
		Graph:     mirror,
		StallTime: stall,
		Phi:       phi,
		Orient:    orient,
		in:        in,
	}
	w.Placements[0] = fsync.Placement{Node: i1, Chirality: chir1}
	w.Placements[1] = fsync.Placement{Node: sigmaNode(i1), Chirality: chir1.Opposite()}
	return w, nil
}

// MirrorReport carries the verdicts of the four claims in the proof of
// Lemma 4.1, plus the post-stall confinement observation.
type MirrorReport struct {
	// Horizon is the number of simulated instants of ε′.
	Horizon int
	// Claim1 (symmetry): at every instant the two robots are in the same
	// state and at reflected positions.
	Claim1 bool
	// Claim2 (no tower): the robots are always at odd distance, hence
	// never co-located.
	Claim2 bool
	// Claim3 (prefix equality): up to the stall time, r1 retraces the
	// original robot's trajectory (and states, when provided) under φ.
	Claim3 bool
	// Claim4: at the stall time the robots stand on the adjacent nodes
	// f1', f2' in equal states.
	Claim4 bool
	// StalledForever: after the stall time neither robot ever moved again
	// within the horizon (the contradiction outcome of Lemma 4.1: only
	// f1', f2' are visited from then on, on an 8-node ring).
	StalledForever bool
	// DistinctVisited counts the distinct G′ nodes visited by both robots
	// over the whole horizon.
	DistinctVisited int
	// Failures lists human-readable claim violations (capped).
	Failures []string
}

// OK reports whether all four claims hold.
func (r MirrorReport) OK() bool { return r.Claim1 && r.Claim2 && r.Claim3 && r.Claim4 }

// Verify runs ε′ on the gadget for stallTime+extra instants and checks
// Claims 1–4 of Lemma 4.1 plus post-stall confinement.
func (w *MirrorWorld) Verify(extra int) (MirrorReport, error) {
	horizon := w.StallTime + extra
	var track mirrorTrack
	sim, err := fsync.New(fsync.Config{
		Algorithm:  w.in.Alg,
		Dynamics:   fsync.Oblivious{G: w.Graph},
		Placements: w.Placements[:],
		Observers:  []fsync.Observer{&track},
	})
	if err != nil {
		return MirrorReport{}, fmt.Errorf("adversary: mirror simulation: %w", err)
	}
	sim.Run(horizon)

	rep := MirrorReport{Horizon: horizon, Claim1: true, Claim2: true, Claim3: true, Claim4: true}
	fail := func(ok *bool, format string, args ...interface{}) {
		*ok = false
		if len(rep.Failures) < 16 {
			rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
		}
	}

	mr := ring.New(MirrorSize)
	distinct := map[int]bool{}
	for t, cfg := range track.snaps {
		p1, p2 := cfg.Positions[0], cfg.Positions[1]
		distinct[p1] = true
		distinct[p2] = true
		if p2 != sigmaNode(p1) || cfg.States[0] != cfg.States[1] {
			fail(&rep.Claim1, "t=%d: asymmetric configuration: r1@%d(%s) r2@%d(%s)", t, p1, cfg.States[0], p2, cfg.States[1])
		}
		if mr.CWDist(p1, p2)%2 == 0 {
			fail(&rep.Claim2, "t=%d: robots at even distance (%d, %d)", t, p1, p2)
		}
		if t <= w.StallTime {
			want, ok := w.Phi[w.in.Traj[t]]
			if !ok || p1 != want {
				fail(&rep.Claim3, "t=%d: r1 at %d, expected φ(%d)=%d", t, p1, w.in.Traj[t], want)
			}
			if len(w.in.States) > 0 && cfg.States[0] != w.in.States[t] {
				fail(&rep.Claim3, "t=%d: r1 state %q, original %q", t, cfg.States[0], w.in.States[t])
			}
		}
	}
	if w.StallTime < len(track.snaps) {
		cfg := track.snaps[w.StallTime]
		if cfg.Positions[0] != mirrorF1 || cfg.Positions[1] != mirrorF2 {
			fail(&rep.Claim4, "stall t=%d: robots at (%d,%d), expected (f1'=%d, f2'=%d)",
				w.StallTime, cfg.Positions[0], cfg.Positions[1], mirrorF1, mirrorF2)
		}
		if cfg.States[0] != cfg.States[1] {
			fail(&rep.Claim4, "stall t=%d: states differ: %q vs %q", w.StallTime, cfg.States[0], cfg.States[1])
		}
	} else {
		fail(&rep.Claim4, "horizon %d does not reach stall time %d", len(track.snaps), w.StallTime)
	}

	rep.StalledForever = true
	for t := w.StallTime; t < len(track.snaps); t++ {
		cfg := track.snaps[t]
		if cfg.Positions[0] != mirrorF1 || cfg.Positions[1] != mirrorF2 {
			rep.StalledForever = false
			break
		}
	}
	rep.DistinctVisited = len(distinct)
	return rep, nil
}

// mirrorTrack records the per-instant snapshots of ε′ including the initial
// configuration.
type mirrorTrack struct {
	snaps []fsync.Snapshot
}

func (m *mirrorTrack) ObserveRound(ev fsync.RoundEvent) {
	if len(m.snaps) == 0 {
		m.snaps = append(m.snaps, ev.Before.Clone())
	}
	m.snaps = append(m.snaps, ev.After.Clone())
}
