package adversary

import (
	"testing"

	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// stalledPrefix runs alg as a single robot against the Theorem 5.1
// confinement adversary until it stalls, and returns the mirror input.
// ok=false when the algorithm never stalled within the horizon (it keeps
// ping-ponging, which is the other — already confined — proof outcome).
func stalledPrefix(t *testing.T, alg robot.Algorithm, chir robot.Chirality, n, horizon, patience int) (MirrorInput, bool) {
	t.Helper()
	adv := NewOneRobotConfinement(n, 0, 0)
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  []fsync.Placement{{Node: 0, Chirality: chir}},
		Observers:   []fsync.Observer{rec},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(horizon)
	info, stalled := adv.Stall(sim.Now(), patience)
	if !stalled {
		return MirrorInput{}, false
	}
	stallT := info.Since
	return MirrorInput{
		Alg:         alg,
		Chir:        chir,
		G:           sim.RecordedGraph(),
		Traj:        rec.Trajectory(0)[:stallT+1],
		States:      rec.States(0)[:stallT+1],
		StallTime:   stallT,
		MissingSide: info.MissingSide,
	}, true
}

func TestMirrorClaimsOnStalledKeepDirection(t *testing.T) {
	for _, chir := range []robot.Chirality{robot.RightIsCW, robot.RightIsCCW} {
		in, ok := stalledPrefix(t, baseline.KeepDirection{}, chir, 6, 60, 20)
		if !ok {
			t.Fatalf("keep-direction (chir %v) did not stall", chir)
		}
		world, err := BuildMirror(in)
		if err != nil {
			t.Fatalf("chir %v: %v", chir, err)
		}
		rep, err := world.Verify(64)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("chir %v: claims failed: %+v", chir, rep.Failures)
		}
		if !rep.StalledForever {
			t.Fatalf("chir %v: keep-direction should stall forever in G'", chir)
		}
		if rep.DistinctVisited > 4 {
			t.Fatalf("chir %v: visited %d nodes of G', expected confinement", chir, rep.DistinctVisited)
		}
	}
}

func TestMirrorClaimsAcrossStallingVictims(t *testing.T) {
	// Algorithms that stall under the one-robot adversary feed the mirror;
	// claims 1-4 must hold for each.
	algs := []robot.Algorithm{
		baseline.KeepDirection{},
		core.NoRule3{},
		core.PEF3Plus{}, // with one robot it never meets anyone: pure rule 1
	}
	for _, alg := range algs {
		in, ok := stalledPrefix(t, alg, robot.RightIsCW, 8, 100, 30)
		if !ok {
			t.Logf("%s: no stall (cycling outcome), skipping mirror", alg.Name())
			continue
		}
		world, err := BuildMirror(in)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		rep, err := world.Verify(40)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%s: claims failed: %+v", alg.Name(), rep.Failures)
		}
	}
}

func TestMirrorPlacementGeometry(t *testing.T) {
	in, ok := stalledPrefix(t, baseline.KeepDirection{}, robot.RightIsCW, 6, 60, 20)
	if !ok {
		t.Fatal("no stall")
	}
	world, err := BuildMirror(in)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := world.Placements[0], world.Placements[1]
	if p2.Node != sigmaNode(p1.Node) {
		t.Fatalf("placements not mirrored: %d vs %d", p1.Node, p2.Node)
	}
	if p1.Chirality != p2.Chirality.Opposite() {
		t.Fatal("robots must have opposite chirality")
	}
	mr := ring.New(MirrorSize)
	if mr.CWDist(p1.Node, p2.Node)%2 == 0 {
		t.Fatal("initial distance must be odd (Claim 2 base case)")
	}
}

func TestMirrorRejectsBadInput(t *testing.T) {
	in, ok := stalledPrefix(t, baseline.KeepDirection{}, robot.RightIsCW, 6, 60, 20)
	if !ok {
		t.Fatal("no stall")
	}
	bad := in
	bad.Alg = nil
	if _, err := BuildMirror(bad); err == nil {
		t.Error("nil algorithm accepted")
	}
	bad = in
	bad.StallTime = len(bad.Traj) + 5
	if _, err := BuildMirror(bad); err == nil {
		t.Error("out-of-range stall time accepted")
	}
	bad = in
	bad.MissingSide = 0
	if _, err := BuildMirror(bad); err == nil {
		t.Error("invalid missing side accepted")
	}
	bad = in
	bad.Traj = []int{0, 1, 2, 3}
	bad.States = nil
	bad.StallTime = 3
	if _, err := BuildMirror(bad); err == nil {
		t.Error("three-node trajectory accepted")
	}
}

func TestSigmaInvolutions(t *testing.T) {
	for x := 0; x < MirrorSize; x++ {
		if sigmaNode(sigmaNode(x)) != x {
			t.Fatalf("sigmaNode not an involution at %d", x)
		}
		if sigmaEdge(sigmaEdge(x)) != x {
			t.Fatalf("sigmaEdge not an involution at %d", x)
		}
	}
	if sigmaNode(mirrorF1) != mirrorF2 {
		t.Fatal("sigma must swap f1' and f2'")
	}
	if sigmaEdge(mirrorCutoff) != mirrorCutoff {
		t.Fatal("sigma must fix the central edge")
	}
}
