package adversary

import (
	"testing"

	"pef/internal/core"
	"pef/internal/fsync"
	"pef/internal/robot"
)

// TestMirrorFromTwoRobotStall feeds the mirror gadget from a stall of the
// Theorem 4.1 adversary — the exact situation Lemma 4.1 is invoked for in
// the paper's proof. PEF_3+ with two robots stalls in phase 1 (robot 0
// boxed on u with its counter-clockwise edge missing), and the stalled
// prefix must transfer to G′ with all four claims and a permanent freeze.
func TestMirrorFromTwoRobotStall(t *testing.T) {
	const n, horizon, patience = 8, 160, 60
	adv := NewTwoRobotConfinement(n, 0, 0, 1)
	rec := &fsync.SnapshotRecorder{}
	chirs := []robot.Chirality{robot.RightIsCW, robot.RightIsCCW}
	sim, err := fsync.New(fsync.Config{
		Algorithm: core.PEF3Plus{},
		Dynamics:  adv,
		Placements: []fsync.Placement{
			{Node: 0, Chirality: chirs[0]},
			{Node: 1, Chirality: chirs[1]},
		},
		Observers:   []fsync.Observer{rec},
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(horizon)

	info, stalled := adv.Stall(sim.Now(), patience)
	if !stalled {
		t.Fatal("PEF_3+ with two robots should stall against the phase machine")
	}
	world, err := BuildMirror(MirrorInput{
		Alg:         core.PEF3Plus{},
		Chir:        chirs[info.Robot],
		G:           sim.RecordedGraph(),
		Traj:        rec.Trajectory(info.Robot)[:info.Since+1],
		States:      rec.States(info.Robot)[:info.Since+1],
		StallTime:   info.Since,
		MissingSide: info.MissingSide,
	})
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := world.Verify(80)
	if err != nil {
		t.Fatal(err)
	}
	if !mrep.OK() {
		t.Fatalf("claims failed: %+v", mrep.Failures)
	}
	if !mrep.StalledForever {
		t.Fatal("mirror copies did not freeze forever")
	}
	if mrep.DistinctVisited >= MirrorSize {
		t.Fatalf("mirror world fully visited (%d nodes): no confinement", mrep.DistinctVisited)
	}
}
