// Package baseline provides a diverse suite of candidate deterministic
// algorithms. The impossibility theorems of the paper (4.1 and 5.1)
// quantify over *all* deterministic algorithms; their adversaries are
// implemented algorithm-agnostically in package adversary, and this suite
// is the empirical stand-in for the universal quantifier: every experiment
// runs the adversary against each member and shows confinement for all.
//
// The members cover the natural design space: direction-keepers, missing-
// edge bouncers, bounded and doubling zigzags, tower-reactive rules, and a
// deterministic pseudo-random walker.
package baseline

import (
	"fmt"
	"strconv"

	"pef/internal/robot"
)

// KeepDirectionName names the never-turning walker.
const KeepDirectionName = "keep-direction"

// KeepDirection never changes direction (Rule 1 of PEF_3+ alone). On a
// static ring one such robot explores perpetually; one blocked edge defeats
// it.
type KeepDirection struct{}

// Name implements robot.Algorithm.
func (KeepDirection) Name() string { return KeepDirectionName }

// NewCore implements robot.Algorithm.
func (KeepDirection) NewCore() robot.Core {
	return robot.Func{
		AlgName: KeepDirectionName,
		Rule: func(dir robot.LocalDir, _ robot.View) robot.LocalDir {
			return dir
		},
	}.NewCore()
}

// BounceOnMissingName names the blocked-edge bouncer.
const BounceOnMissingName = "bounce-on-missing"

// BounceOnMissing turns back exactly when the edge it points to is absent.
// It perpetually explores a ring with one eventual missing edge (it sweeps
// the resulting chain), which makes it the strongest single-robot candidate
// — and exactly the algorithm the Theorem 5.1 adversary is built to beat.
type BounceOnMissing struct{}

// Name implements robot.Algorithm.
func (BounceOnMissing) Name() string { return BounceOnMissingName }

// NewCore implements robot.Algorithm.
func (BounceOnMissing) NewCore() robot.Core {
	return robot.Func{
		AlgName: BounceOnMissingName,
		Rule: func(dir robot.LocalDir, view robot.View) robot.LocalDir {
			if !view.EdgeDir && view.EdgeOpp {
				return dir.Opposite()
			}
			return dir
		},
	}.NewCore()
}

// TowerBounceName names the meet-reactive bouncer.
const TowerBounceName = "tower-bounce"

// TowerBounce turns back when co-located with another robot or blocked,
// a natural "social" exploration rule.
type TowerBounce struct{}

// Name implements robot.Algorithm.
func (TowerBounce) Name() string { return TowerBounceName }

// NewCore implements robot.Algorithm.
func (TowerBounce) NewCore() robot.Core {
	return robot.Func{
		AlgName: TowerBounceName,
		Rule: func(dir robot.LocalDir, view robot.View) robot.LocalDir {
			if view.OtherRobots || (!view.EdgeDir && view.EdgeOpp) {
				return dir.Opposite()
			}
			return dir
		},
	}.NewCore()
}

// Pendulum sweeps m successful steps in one direction, then turns and
// sweeps m steps the other way, forever. A robot knows it will move this
// round iff the edge it points to is present (FSYNC), so the step counter
// advances on ExistsEdge(dir).
type Pendulum struct {
	// M is the sweep length in successful steps; must be >= 1.
	M int
}

// Name implements robot.Algorithm.
func (p Pendulum) Name() string { return "pendulum-" + strconv.Itoa(p.M) }

// NewCore implements robot.Algorithm.
func (p Pendulum) NewCore() robot.Core {
	if p.M < 1 {
		panic(fmt.Sprintf("baseline: pendulum sweep %d below 1", p.M))
	}
	return &pendulumCore{dir: robot.Left, sweep: p.M}
}

type pendulumCore struct {
	dir   robot.LocalDir
	sweep int
	done  int // successful steps in the current sweep
}

func (c *pendulumCore) Dir() robot.LocalDir { return c.dir }

func (c *pendulumCore) Compute(view robot.View) {
	look := c.dir // the direction the Look-phase predicates were gathered with
	if c.done >= c.sweep {
		c.dir = c.dir.Opposite()
		c.done = 0
	}
	if view.ExistsEdge(look, c.dir) {
		c.done++
	}
}

func (c *pendulumCore) State() robot.StateCode {
	return robot.SweepState(c.dir, c.done, c.sweep)
}

// DoublingZigzag sweeps 1 step, turns, sweeps 2, turns, sweeps 4, ... —
// the classic doubling search that covers any static ring from any start
// without knowing n. (The adversaries beat it anyway.)
type DoublingZigzag struct{}

// Name implements robot.Algorithm.
func (DoublingZigzag) Name() string { return "doubling-zigzag" }

// NewCore implements robot.Algorithm.
func (DoublingZigzag) NewCore() robot.Core {
	return &zigzagCore{dir: robot.Left, sweep: 1}
}

type zigzagCore struct {
	dir   robot.LocalDir
	sweep int
	done  int
}

func (c *zigzagCore) Dir() robot.LocalDir { return c.dir }

func (c *zigzagCore) Compute(view robot.View) {
	look := c.dir // the direction the Look-phase predicates were gathered with
	if c.done >= c.sweep {
		c.dir = c.dir.Opposite()
		// Cap the doubling so the counter cannot overflow on very long
		// adversary runs; by then the sweep already exceeds any ring size
		// used in experiments.
		if c.sweep < 1<<30 {
			c.sweep *= 2
		}
		c.done = 0
	}
	if view.ExistsEdge(look, c.dir) {
		c.done++
	}
}

func (c *zigzagCore) State() robot.StateCode {
	return robot.SweepState(c.dir, c.done, c.sweep)
}

// LCGWalker chooses its direction each round from a deterministic linear
// congruential sequence: it looks random but is a legitimate deterministic
// algorithm, probing that the adversaries do not rely on structural
// regularity of their victim.
type LCGWalker struct {
	// Seed selects the deterministic sequence; the same seed yields the
	// same walker (robots are uniform: every robot runs the same sequence).
	Seed uint64
}

// Name implements robot.Algorithm.
func (w LCGWalker) Name() string { return "lcg-walker-" + strconv.FormatUint(w.Seed, 10) }

// NewCore implements robot.Algorithm.
func (w LCGWalker) NewCore() robot.Core {
	return &lcgCore{dir: robot.Left, state: w.Seed*2 + 1}
}

type lcgCore struct {
	dir   robot.LocalDir
	state uint64
}

func (c *lcgCore) Dir() robot.LocalDir { return c.dir }

func (c *lcgCore) Compute(_ robot.View) {
	// Numerical Recipes LCG constants.
	c.state = c.state*6364136223846793005 + 1442695040888963407
	if c.state>>63 == 1 {
		c.dir = c.dir.Opposite()
	}
}

func (c *lcgCore) State() robot.StateCode {
	return robot.LCGState(c.dir, c.state)
}

// Oscillator flips direction every round, a pathological but legal member
// of the suite.
type Oscillator struct{}

// Name implements robot.Algorithm.
func (Oscillator) Name() string { return "oscillator" }

// NewCore implements robot.Algorithm.
func (Oscillator) NewCore() robot.Core {
	return robot.Func{
		AlgName: "oscillator",
		Rule: func(dir robot.LocalDir, _ robot.View) robot.LocalDir {
			return dir.Opposite()
		},
	}.NewCore()
}

// Suite returns the baseline algorithms in a stable order. Combined by the
// harness with the paper's own algorithms (run outside their valid (k, n)
// range) to form the empirical universal quantifier for the impossibility
// experiments.
func Suite() []robot.Algorithm {
	return []robot.Algorithm{
		KeepDirection{},
		BounceOnMissing{},
		TowerBounce{},
		Pendulum{M: 3},
		DoublingZigzag{},
		LCGWalker{Seed: 7},
		Oscillator{},
	}
}

// RegisterBuiltins installs the suite into the robot registry.
func RegisterBuiltins() {
	for _, alg := range Suite() {
		alg := alg
		robot.Register(alg.Name(), func() robot.Algorithm { return alg })
	}
}
