package baseline

import (
	"testing"

	"pef/internal/robot"
)

func TestSuiteDistinctNamesAndFreshCores(t *testing.T) {
	seen := map[string]bool{}
	for _, alg := range Suite() {
		if seen[alg.Name()] {
			t.Fatalf("duplicate algorithm name %q", alg.Name())
		}
		seen[alg.Name()] = true
		a, b := alg.NewCore(), alg.NewCore()
		if a == b {
			t.Fatalf("%s: NewCore returned shared core", alg.Name())
		}
		if a.Dir() != robot.Left {
			t.Fatalf("%s: initial dir not Left", alg.Name())
		}
		if a.State().String() == "" {
			t.Fatalf("%s: empty state encoding", alg.Name())
		}
	}
	if len(seen) < 7 {
		t.Fatalf("suite has only %d algorithms", len(seen))
	}
}

func TestKeepDirectionNeverFlips(t *testing.T) {
	c := KeepDirection{}.NewCore()
	views := []robot.View{
		{}, {EdgeDir: true}, {EdgeOpp: true}, {OtherRobots: true},
		{EdgeDir: true, EdgeOpp: true, OtherRobots: true},
	}
	for _, v := range views {
		c.Compute(v)
		if c.Dir() != robot.Left {
			t.Fatalf("flipped on view %+v", v)
		}
	}
}

func TestBounceOnMissing(t *testing.T) {
	c := BounceOnMissing{}.NewCore()
	c.Compute(robot.View{EdgeDir: true})
	if c.Dir() != robot.Left {
		t.Fatal("flipped while pointed edge present")
	}
	c.Compute(robot.View{EdgeDir: false, EdgeOpp: true})
	if c.Dir() != robot.Right {
		t.Fatal("did not flip when blocked with open opposite")
	}
	c.Compute(robot.View{EdgeDir: false, EdgeOpp: false})
	if c.Dir() != robot.Right {
		t.Fatal("flipped while both edges missing")
	}
}

func TestTowerBounce(t *testing.T) {
	c := TowerBounce{}.NewCore()
	c.Compute(robot.View{EdgeDir: true, OtherRobots: true})
	if c.Dir() != robot.Right {
		t.Fatal("did not flip in tower")
	}
	c.Compute(robot.View{EdgeDir: false, EdgeOpp: true})
	if c.Dir() != robot.Left {
		t.Fatal("did not flip when blocked")
	}
}

func TestPendulumSweepsAndTurns(t *testing.T) {
	c := Pendulum{M: 2}.NewCore()
	open := robot.View{EdgeDir: true, EdgeOpp: true}
	// Two successful steps pointing Left...
	c.Compute(open)
	c.Compute(open)
	if c.Dir() != robot.Left {
		t.Fatal("turned too early")
	}
	// ...then the third compute turns.
	c.Compute(open)
	if c.Dir() != robot.Right {
		t.Fatalf("did not turn after sweep: %s", c.State())
	}
	// Blocked rounds do not advance the sweep.
	c2 := Pendulum{M: 1}.NewCore()
	blocked := robot.View{EdgeDir: false, EdgeOpp: false}
	for i := 0; i < 5; i++ {
		c2.Compute(blocked)
		if c2.Dir() != robot.Left {
			t.Fatal("blocked pendulum turned")
		}
	}
}

func TestPendulumValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("M=0 accepted")
		}
	}()
	Pendulum{M: 0}.NewCore()
}

func TestDoublingZigzagDoubles(t *testing.T) {
	c := DoublingZigzag{}.NewCore()
	open := robot.View{EdgeDir: true, EdgeOpp: true}
	dirs := []robot.LocalDir{}
	for i := 0; i < 7; i++ {
		c.Compute(open)
		dirs = append(dirs, c.Dir())
	}
	// Sweep 1: L; turn; sweep 2: R,R; turn; sweep 4: L,L,L,L.
	want := []robot.LocalDir{robot.Left, robot.Right, robot.Right, robot.Left, robot.Left, robot.Left, robot.Left}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
}

func TestLCGWalkerDeterministicPerSeed(t *testing.T) {
	a := LCGWalker{Seed: 5}.NewCore()
	b := LCGWalker{Seed: 5}.NewCore()
	for i := 0; i < 64; i++ {
		a.Compute(robot.View{})
		b.Compute(robot.View{})
		if a.Dir() != b.Dir() {
			t.Fatal("same seed diverged")
		}
	}
	// Different seeds should diverge somewhere.
	cDiff := LCGWalker{Seed: 6}.NewCore()
	a2 := LCGWalker{Seed: 5}.NewCore()
	diverged := false
	for i := 0; i < 64; i++ {
		a2.Compute(robot.View{})
		cDiff.Compute(robot.View{})
		if a2.Dir() != cDiff.Dir() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds never diverged")
	}
}

func TestOscillatorFlipsEveryRound(t *testing.T) {
	c := Oscillator{}.NewCore()
	last := c.Dir()
	for i := 0; i < 8; i++ {
		c.Compute(robot.View{})
		if c.Dir() == last {
			t.Fatal("did not flip")
		}
		last = c.Dir()
	}
}
