// Package classes implements finite-horizon membership checkers for the
// dynamic-graph class taxonomy of Casteigts, Flocchini, Quattrociocchi and
// Santoro ("Time-varying graphs and dynamic networks", cited as [6] by the
// paper). The paper positions its contribution at the weakest useful level
// of the hierarchy — connected-over-time rings — and its related work sits
// at stronger levels (T-interval connectivity for Di Luna et al. and
// Ilcinkas–Wade, periodicity for Flocchini–Mans–Santoro).
//
// On finite horizons the checkers are necessarily approximations of the
// limit definitions; each documents its finite-horizon reading. They order
// into the hierarchy
//
//	AlwaysConnected = 1-IntervalConnected ⊇ TIntervalConnected(T) for T ≥ 1
//	TIntervalConnected(T) ⊆ ConnectedOverTime
//	BoundedRecurrence(Δ) ⊆ Recurrent ⊆ ConnectedOverTime
//	Periodic(p) with every ring edge appearing ⊆ BoundedRecurrence(Δ ≤ p)
//
// (schedule periodicity alone implies nothing about connectivity: a split
// ring whose two cut edges never appear is perfectly periodic), which
// experiment E-X9 verifies on generated instances.
package classes

import (
	"pef/internal/dyngraph"
)

// Class identifies one taxonomy level.
type Class string

// The implemented taxonomy levels, from strongest to weakest.
const (
	AlwaysConnected    Class = "always-connected"
	TIntervalConnected Class = "t-interval-connected"
	Periodic           Class = "periodic"
	BoundedRecurrent   Class = "bounded-recurrent"
	Recurrent          Class = "recurrent"
	ConnectedOverTime  Class = "connected-over-time"
)

// IsAlwaysConnected reports whether every snapshot in [0, horizon) is a
// connected subgraph of the ring (at most one edge missing per instant).
func IsAlwaysConnected(g dyngraph.EvolvingGraph, horizon int) bool {
	for t := 0; t < horizon; t++ {
		if !dyngraph.EdgesAt(g, t).ConnectedAsRing() {
			return false
		}
	}
	return true
}

// IsTIntervalConnected reports whether the trace is T-interval connected on
// the horizon: every window of T consecutive instants shares a connected
// spanning subgraph — on a ring, the intersection of the window's presence
// sets misses at most one edge.
func IsTIntervalConnected(g dyngraph.EvolvingGraph, tLen, horizon int) bool {
	if tLen <= 0 {
		return false
	}
	for start := 0; start+tLen <= horizon; start++ {
		inter := dyngraph.EdgesAt(g, start)
		for i := 1; i < tLen; i++ {
			inter = inter.Intersect(dyngraph.EdgesAt(g, start+i))
		}
		if !inter.ConnectedAsRing() {
			return false
		}
	}
	return true
}

// IsPeriodic reports whether the trace repeats with the given period on the
// horizon: presence(e, t) == presence(e, t+period) wherever both instants
// lie on the horizon. Returns false for non-positive periods.
func IsPeriodic(g dyngraph.EvolvingGraph, period, horizon int) bool {
	if period <= 0 {
		return false
	}
	r := g.Ring()
	for t := 0; t+period < horizon; t++ {
		for e := 0; e < r.Edges(); e++ {
			if g.Present(e, t) != g.Present(e, t+period) {
				return false
			}
		}
	}
	return true
}

// MinimalPeriod returns the smallest period in [1, maxPeriod] under which
// the trace is periodic on the horizon, and ok=false if none is.
func MinimalPeriod(g dyngraph.EvolvingGraph, maxPeriod, horizon int) (int, bool) {
	for p := 1; p <= maxPeriod; p++ {
		if IsPeriodic(g, p, horizon) {
			return p, true
		}
	}
	return 0, false
}

// IsBoundedRecurrent reports whether every edge appears at least once in
// every window of delta instants that closes before the horizon.
func IsBoundedRecurrent(g dyngraph.EvolvingGraph, delta, horizon int) bool {
	got, ok := dyngraph.RecurrenceBound(g, horizon)
	return ok && got <= delta
}

// IsRecurrent reports whether every edge of the ring is present at least
// once and no edge looks eventually missing on the horizon (its trailing
// absence run does not exceed every completed one).
func IsRecurrent(g dyngraph.EvolvingGraph, horizon int) bool {
	_, ok := dyngraph.RecurrenceBound(g, horizon)
	return ok
}

// IsConnectedOverTime reports the paper's class on the horizon: from each
// probe instant, every ordered pair of nodes is linked by a temporal
// journey completing before the horizon.
func IsConnectedOverTime(g dyngraph.EvolvingGraph, horizon int, probes []int) bool {
	return dyngraph.VerifyConnectedOverTime(g, horizon, probes).OK
}

// Membership is the classification of one trace against the taxonomy.
type Membership struct {
	AlwaysConnected   bool
	TInterval         int // largest T in [1, TMax] for which T-interval holds, 0 if none
	Period            int // minimal period if periodic on the horizon, 0 otherwise
	RecurrenceBound   int // Δ if bounded-recurrent, 0 otherwise
	Recurrent         bool
	ConnectedOverTime bool
}

// Classify runs the whole battery. TMax and PMax bound the searched
// T-interval lengths and periods.
func Classify(g dyngraph.EvolvingGraph, horizon, tMax, pMax int) Membership {
	m := Membership{
		AlwaysConnected:   IsAlwaysConnected(g, horizon),
		Recurrent:         IsRecurrent(g, horizon),
		ConnectedOverTime: IsConnectedOverTime(g, horizon, []int{0, horizon / 2}),
	}
	for t := tMax; t >= 1; t-- {
		if IsTIntervalConnected(g, t, horizon) {
			m.TInterval = t
			break
		}
	}
	if p, ok := MinimalPeriod(g, pMax, horizon); ok {
		m.Period = p
	}
	if delta, ok := dyngraph.RecurrenceBound(g, horizon); ok {
		m.RecurrenceBound = delta
	}
	return m
}

// RespectsHierarchy checks the sound taxonomy inclusions on a
// classification: stronger memberships must imply the weaker ones. Note
// that schedule periodicity implies recurrence only for edges that appear
// at all, so a periodic classification constrains the recurrence bound
// only when the trace is recurrent.
func (m Membership) RespectsHierarchy() bool {
	if m.AlwaysConnected && m.TInterval < 1 {
		return false
	}
	if m.TInterval >= 1 && !m.ConnectedOverTime {
		return false
	}
	if m.Period > 0 && m.Recurrent && m.RecurrenceBound > m.Period {
		return false
	}
	if m.RecurrenceBound > 0 && !m.Recurrent {
		return false
	}
	if m.Recurrent && !m.ConnectedOverTime {
		return false
	}
	return true
}
