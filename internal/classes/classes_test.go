package classes

import (
	"testing"

	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/ring"
)

const horizon = 240

func TestStaticIsEverything(t *testing.T) {
	g := dyngraph.NewStatic(5)
	m := Classify(g, horizon, 8, 8)
	if !m.AlwaysConnected || m.TInterval != 8 || m.Period != 1 ||
		m.RecurrenceBound != 1 || !m.Recurrent || !m.ConnectedOverTime {
		t.Fatalf("static classification = %+v", m)
	}
	if !m.RespectsHierarchy() {
		t.Fatal("hierarchy violated")
	}
}

func TestRovingIsAlwaysConnectedNotStatic(t *testing.T) {
	g := dynamics.NewRovingMissing(5, 3)
	if !IsAlwaysConnected(g, horizon) {
		t.Fatal("roving must be always connected")
	}
	// With rotation period 3 over 5 edges, the full cycle has period 15.
	if p, ok := MinimalPeriod(g, 20, horizon); !ok || p != 15 {
		t.Fatalf("period = %d,%v, want 15", p, ok)
	}
	// Strict T-interval connectivity considers every window, including
	// those straddling two damage phases whose intersections miss two
	// edges: roving is exactly 1-interval connected.
	if !IsTIntervalConnected(g, 1, horizon) {
		t.Fatal("1-interval connectivity must hold")
	}
	if IsTIntervalConnected(g, 2, horizon) {
		t.Fatal("2-interval connectivity must fail across phase boundaries")
	}
}

func TestTIntervalGeneratorMatchesChecker(t *testing.T) {
	g := dynamics.NewTInterval(6, 4, 3)
	if !IsAlwaysConnected(g, horizon) {
		t.Fatal("t-interval generator produced a disconnected snapshot")
	}
	if !IsTIntervalConnected(g, 4, horizon) {
		t.Fatal("generator violates its own interval length")
	}
}

func TestBernoulliIsConnectedOverTimeOnly(t *testing.T) {
	g := dynamics.NewBernoulli(5, 0.5, 9)
	m := Classify(g, horizon, 4, 12)
	if m.AlwaysConnected {
		t.Fatal("Bernoulli(0.5) always connected over 240 instants is absurd")
	}
	if m.Period != 0 {
		t.Fatalf("Bernoulli reported periodic with period %d", m.Period)
	}
	if !m.ConnectedOverTime {
		t.Fatal("Bernoulli(0.5) must be connected-over-time on this horizon")
	}
	if !m.RespectsHierarchy() {
		t.Fatalf("hierarchy violated: %+v", m)
	}
}

func TestEventualMissingIsNotRecurrent(t *testing.T) {
	g := dyngraph.NewEventualMissing(dyngraph.NewStatic(5), 2, 20)
	if IsRecurrent(g, horizon) {
		t.Fatal("eventual missing edge reported recurrent")
	}
	// But it is still connected-over-time (journeys detour around).
	if !IsConnectedOverTime(g, horizon, []int{0, 100}) {
		t.Fatal("eventual missing edge must remain connected-over-time")
	}
}

func TestDisconnectedIsNothing(t *testing.T) {
	// Two permanently missing edges split the ring.
	g := dyngraph.NewWithout(dyngraph.NewStatic(6),
		dyngraph.Removal{Edge: 0, During: []dyngraph.Interval{{Start: 0, End: 1 << 30}}},
		dyngraph.Removal{Edge: 3, During: []dyngraph.Interval{{Start: 0, End: 1 << 30}}},
	)
	m := Classify(g, horizon, 4, 8)
	if m.ConnectedOverTime || m.Recurrent || m.AlwaysConnected {
		t.Fatalf("split ring classified as %+v", m)
	}
	if !m.RespectsHierarchy() {
		t.Fatalf("hierarchy violated: %+v", m)
	}
}

func TestPeriodicGenerator(t *testing.T) {
	p, err := dynamics.NewPeriodic(3, [][]bool{
		{true, false},
		{true, true, false},
		{true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// lcm(2,3,1) = 6.
	if got, ok := MinimalPeriod(p, 12, horizon); !ok || got != 6 {
		t.Fatalf("period = %d,%v, want 6", got, ok)
	}
	if !IsPeriodic(p, 12, horizon) {
		t.Fatal("multiples of the period must also be periods")
	}
	if IsPeriodic(p, 0, horizon) {
		t.Fatal("non-positive period accepted")
	}
}

func TestBoundedRecurrentChecker(t *testing.T) {
	base := dynamics.NewBernoulli(4, 0.0, 1)
	g := dynamics.NewBoundedRecurrence(base, 5, 2)
	if !IsBoundedRecurrent(g, 5, horizon) {
		t.Fatal("generator violates its own bound")
	}
	if IsBoundedRecurrent(g, 1, horizon) {
		t.Fatal("bound 1 should fail for a sparse schedule")
	}
}

func TestHierarchyAcrossGenerators(t *testing.T) {
	gens := map[string]dyngraph.EvolvingGraph{
		"static":      dyngraph.NewStatic(6),
		"bernoulli":   dynamics.NewBernoulli(6, 0.6, 4),
		"t-interval":  dynamics.NewTInterval(6, 3, 4),
		"roving":      dynamics.NewRovingMissing(6, 2),
		"bounded-rec": dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(6, 0.2, 5), 4, 6),
	}
	for name, g := range gens {
		m := Classify(g, horizon, 4, 16)
		if !m.RespectsHierarchy() {
			t.Errorf("%s violates the hierarchy: %+v", name, m)
		}
		if !m.ConnectedOverTime {
			t.Errorf("%s not connected-over-time on the horizon", name)
		}
	}
}

func TestTIntervalChecksDegenerateInputs(t *testing.T) {
	g := dyngraph.NewStatic(4)
	if IsTIntervalConnected(g, 0, horizon) {
		t.Fatal("T=0 accepted")
	}
	if !IsTIntervalConnected(g, horizon+10, horizon) {
		// No full window fits on the horizon: vacuously true.
		t.Fatal("oversized window should be vacuously true")
	}
	_ = ring.New(4) // keep the ring import for the helper below
}
