// Package convergence implements the impossibility framework of
// Braud-Santoni, Dubois, Kaaouachi and Petit ("The next 700 impossibility
// results in time-varying graphs", IJNC 2016), which both Theorem 4.1 and
// Theorem 5.1 of the paper instantiate:
//
// Take a sequence of evolving graphs (G_i) with ever-growing common
// prefixes; it converges to the evolving graph Gω sharing all those
// prefixes. The framework's theorem states that the executions of a
// deterministic algorithm on the G_i then converge to the execution on Gω:
// they agree on ever-growing prefixes. An impossibility proof constructs
// (G_i) such that the execution on G_i violates the specification for an
// ever-growing duration; the limit execution then violates it forever.
//
// This package makes those objects concrete for recorded ring schedules
// and verifies the two facts empirically: growing graph prefixes, and
// execution prefix agreement.
package convergence

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

// Sequence is a finite prefix of an evolving-graph sequence (G_0, G_1, ...)
// over a common node set.
type Sequence struct {
	graphs []*dyngraph.Recorded
}

// NewSequence validates that all graphs share a ring size and returns the
// sequence.
func NewSequence(graphs ...*dyngraph.Recorded) (*Sequence, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("convergence: empty sequence")
	}
	n := graphs[0].Ring().Size()
	for i, g := range graphs {
		if g.Ring().Size() != n {
			return nil, fmt.Errorf("convergence: graph %d has %d nodes, want %d", i, g.Ring().Size(), n)
		}
	}
	return &Sequence{graphs: graphs}, nil
}

// Len returns the number of graphs.
func (s *Sequence) Len() int { return len(s.graphs) }

// Graph returns the i-th graph.
func (s *Sequence) Graph(i int) *dyngraph.Recorded { return s.graphs[i] }

// PrefixLengths returns, for each consecutive pair (G_i, G_{i+1}), the
// length of their common prefix.
func (s *Sequence) PrefixLengths() []int {
	out := make([]int, 0, len(s.graphs)-1)
	for i := 0; i+1 < len(s.graphs); i++ {
		out = append(out, dyngraph.CommonPrefix(s.graphs[i], s.graphs[i+1]))
	}
	return out
}

// GrowingPrefixes reports whether consecutive common prefixes are strictly
// increasing — the hypothesis of the framework's convergence theorem.
func (s *Sequence) GrowingPrefixes() bool {
	ls := s.PrefixLengths()
	for i := 1; i < len(ls); i++ {
		if ls[i] <= ls[i-1] {
			return false
		}
	}
	return len(ls) > 0
}

// PhaseBoundaries returns the instants t >= 1 at which the presence set of
// the recorded schedule changes. For the paper's adversaries each phase
// uses a constant blocked set, so these boundaries are exactly the t_i of
// the constructions.
func PhaseBoundaries(rec *dyngraph.Recorded) []int {
	var out []int
	for t := 1; t < rec.Horizon(); t++ {
		if !rec.Snapshot(t).Equal(rec.Snapshot(t - 1)) {
			out = append(out, t)
		}
	}
	return out
}

// SequenceFromSchedule reconstructs the proof's graph sequence from a
// realized adversary schedule: G_i equals the schedule before the i-th
// boundary and is the full (all edges present) ring afterwards. G_0 is the
// fully static ring; the recorded schedule itself plays the role of (a
// prefix of) Gω. All graphs share the schedule's horizon.
func SequenceFromSchedule(rec *dyngraph.Recorded, boundaries []int) *Sequence {
	n := rec.Ring().Size()
	graphs := make([]*dyngraph.Recorded, 0, len(boundaries)+1)
	build := func(cut int) *dyngraph.Recorded {
		g := dyngraph.NewRecorded(n)
		for t := 0; t < rec.Horizon(); t++ {
			if t < cut {
				g.Append(rec.Snapshot(t))
			} else {
				g.Append(ring.FullEdgeSet(n))
			}
		}
		return g
	}
	graphs = append(graphs, build(0))
	for _, b := range boundaries {
		graphs = append(graphs, build(b))
	}
	seq, err := NewSequence(graphs...)
	if err != nil {
		// Unreachable: all graphs are built over rec's ring.
		panic(err)
	}
	return seq
}

// Report is the outcome of VerifyExecutionConvergence.
type Report struct {
	// GraphPrefixes[i] is the common prefix length of G_i with the limit.
	GraphPrefixes []int
	// ExecutionPrefixes[i] is the number of instants for which the
	// execution on G_i agrees (positions and states) with the execution
	// on the limit graph.
	ExecutionPrefixes []int
	// OK reports the framework's guarantee: every execution agrees with
	// the limit execution at least as long as its graph does.
	OK bool
	// Failures explains violations (capped at 8).
	Failures []string
}

// VerifyExecutionConvergence checks the framework's theorem empirically:
// for every G_i, the execution of alg from the placements on G_i must
// coincide with the execution on the limit graph for at least the length
// of their common graph prefix.
func VerifyExecutionConvergence(alg robot.Algorithm, placements []fsync.Placement, seq *Sequence, limit *dyngraph.Recorded, horizon int) (Report, error) {
	rep := Report{OK: true}
	limitTrace, err := executionTrace(alg, placements, limit, horizon)
	if err != nil {
		return rep, err
	}
	for i := 0; i < seq.Len(); i++ {
		g := seq.Graph(i)
		gp := dyngraph.CommonPrefix(g, limit)
		rep.GraphPrefixes = append(rep.GraphPrefixes, gp)
		trace, err := executionTrace(alg, placements, g, horizon)
		if err != nil {
			return rep, err
		}
		ep := agreement(trace, limitTrace)
		rep.ExecutionPrefixes = append(rep.ExecutionPrefixes, ep)
		// Executions run on G_t snapshots for t < prefix produce identical
		// configurations up to instant prefix (configuration at time p is
		// determined by snapshots 0..p-1).
		if ep < gp {
			rep.OK = false
			if len(rep.Failures) < 8 {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("G_%d: execution agrees for %d instants, graph prefix is %d", i, ep, gp))
			}
		}
	}
	return rep, nil
}

// executionTrace runs alg deterministically and returns per-instant
// snapshots (including the initial configuration).
func executionTrace(alg robot.Algorithm, placements []fsync.Placement, g dyngraph.EvolvingGraph, horizon int) ([]fsync.Snapshot, error) {
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:  alg,
		Dynamics:   fsync.Oblivious{G: g},
		Placements: placements,
		Observers:  []fsync.Observer{rec},
	})
	if err != nil {
		return nil, fmt.Errorf("convergence: %w", err)
	}
	sim.Run(horizon)
	snaps := make([]fsync.Snapshot, rec.Len())
	for t := 0; t < rec.Len(); t++ {
		snaps[t] = rec.At(t)
	}
	return snaps, nil
}

// agreement returns the number of leading instants at which the two traces
// have identical configurations (positions and states).
func agreement(a, b []fsync.Snapshot) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		if !sameConfig(a[t], b[t]) {
			return t
		}
	}
	return n
}

func sameConfig(a, b fsync.Snapshot) bool {
	if len(a.Positions) != len(b.Positions) {
		return false
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] || a.States[i] != b.States[i] {
			return false
		}
	}
	return true
}
