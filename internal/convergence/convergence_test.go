package convergence

import (
	"testing"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/ring"
	"pef/internal/robot"
)

func TestNewSequenceValidation(t *testing.T) {
	if _, err := NewSequence(); err == nil {
		t.Fatal("empty sequence accepted")
	}
	a, b := dyngraph.NewRecorded(4), dyngraph.NewRecorded(5)
	if _, err := NewSequence(a, b); err == nil {
		t.Fatal("mixed ring sizes accepted")
	}
	seq, err := NewSequence(a)
	if err != nil || seq.Len() != 1 {
		t.Fatalf("singleton sequence: %v", err)
	}
}

func TestPrefixLengthsAndGrowth(t *testing.T) {
	mk := func(flipAt int) *dyngraph.Recorded {
		g := dyngraph.NewRecorded(4)
		for tt := 0; tt < 10; tt++ {
			if tt < flipAt {
				g.Append(ring.FullEdgeSet(4))
			} else {
				g.Append(ring.EdgeSetOf(4, 0))
			}
		}
		return g
	}
	seq, err := NewSequence(mk(2), mk(5), mk(8))
	if err != nil {
		t.Fatal(err)
	}
	ls := seq.PrefixLengths()
	if len(ls) != 2 || ls[0] != 2 || ls[1] != 5 {
		t.Fatalf("prefixes = %v", ls)
	}
	if !seq.GrowingPrefixes() {
		t.Fatal("growing prefixes not detected")
	}
	// Three graphs with two equal consecutive prefixes: not growing.
	bad, err := NewSequence(mk(5), mk(5), mk(5))
	if err != nil {
		t.Fatal(err)
	}
	if bad.GrowingPrefixes() {
		t.Fatal("constant prefixes reported growing")
	}
}

func TestPhaseBoundaries(t *testing.T) {
	g := dyngraph.NewRecorded(3)
	sets := []ring.EdgeSet{
		ring.FullEdgeSet(3), ring.FullEdgeSet(3),
		ring.EdgeSetOf(3, 0), ring.EdgeSetOf(3, 0),
		ring.FullEdgeSet(3),
	}
	for _, s := range sets {
		g.Append(s)
	}
	bs := PhaseBoundaries(g)
	if len(bs) != 2 || bs[0] != 2 || bs[1] != 4 {
		t.Fatalf("boundaries = %v", bs)
	}
}

func TestSequenceFromSchedule(t *testing.T) {
	g := dyngraph.NewRecorded(3)
	for tt := 0; tt < 6; tt++ {
		if tt < 3 {
			g.Append(ring.EdgeSetOf(3, 0, 1))
		} else {
			g.Append(ring.EdgeSetOf(3, 2))
		}
	}
	seq := SequenceFromSchedule(g, []int{3})
	if seq.Len() != 2 {
		t.Fatalf("len = %d", seq.Len())
	}
	// G_0 is fully static.
	if !seq.Graph(0).Snapshot(0).IsFull() || !seq.Graph(0).Snapshot(5).IsFull() {
		t.Fatal("G_0 must be the static ring")
	}
	// G_1 follows the schedule before the boundary, static after.
	if !seq.Graph(1).Snapshot(2).Equal(ring.EdgeSetOf(3, 0, 1)) {
		t.Fatal("G_1 prefix wrong")
	}
	if !seq.Graph(1).Snapshot(3).IsFull() {
		t.Fatal("G_1 suffix must be full")
	}
}

func TestVerifyExecutionConvergenceOnRealSchedule(t *testing.T) {
	// Realize a Theorem 5.1 schedule against a live victim and check the
	// [5] theorem on it.
	alg := baseline.BounceOnMissing{}
	adv := adversary.NewOneRobotConfinement(5, 0, 0)
	placements := []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  placements,
		RecordGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(120)
	g := sim.RecordedGraph()
	bs := PhaseBoundaries(g)
	if len(bs) < 4 {
		t.Fatalf("only %d phase boundaries", len(bs))
	}
	seq := SequenceFromSchedule(g, bs[:4])
	if !seq.GrowingPrefixes() {
		t.Fatalf("prefixes not growing: %v", seq.PrefixLengths())
	}
	rep, err := VerifyExecutionConvergence(alg, placements, seq, g, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("convergence violated: %+v", rep.Failures)
	}
	if len(rep.ExecutionPrefixes) != seq.Len() {
		t.Fatalf("prefix counts: %+v", rep)
	}
	// Execution agreement must be monotone along the sequence.
	for i := 1; i < len(rep.ExecutionPrefixes); i++ {
		if rep.ExecutionPrefixes[i] < rep.ExecutionPrefixes[i-1] {
			t.Fatalf("execution prefixes not monotone: %v", rep.ExecutionPrefixes)
		}
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	// A sequence unrelated to the limit graph: executions diverge before
	// the (zero-length) graph prefix cannot be violated, so craft a case
	// where the graph prefix is long but executions differ — impossible
	// for deterministic algorithms, so instead check the honest case:
	// graphs with zero common prefix yield OK trivially.
	gA := dyngraph.NewRecorded(4)
	gB := dyngraph.NewRecorded(4)
	for tt := 0; tt < 8; tt++ {
		gA.Append(ring.EdgeSetOf(4, 0))
		gB.Append(ring.EdgeSetOf(4, 1, 2, 3))
	}
	seq, err := NewSequence(gA)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyExecutionConvergence(baseline.KeepDirection{},
		[]fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}, seq, gB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("zero-prefix case must hold vacuously: %+v", rep)
	}
	if rep.GraphPrefixes[0] != 0 {
		t.Fatalf("graph prefix = %d, want 0", rep.GraphPrefixes[0])
	}
}
