package core

import (
	"testing"

	"pef/internal/robot"
)

func TestPEF3PlusComputeTable(t *testing.T) {
	// Each case starts from a fresh core driven through a sequence of
	// views; we check the resulting dir and HasMovedPreviousStep.
	type step struct {
		view      robot.View
		wantDir   robot.LocalDir
		wantState string
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "keeps direction while alone",
			steps: []step{
				{robot.View{EdgeDir: true}, robot.Left, "dir=left,moved=true"},
				{robot.View{EdgeDir: true}, robot.Left, "dir=left,moved=true"},
			},
		},
		{
			name: "blocked robot records no move",
			steps: []step{
				{robot.View{EdgeDir: false, EdgeOpp: true}, robot.Left, "dir=left,moved=false"},
			},
		},
		{
			name: "rule 3: moved into a tower, turn back",
			steps: []step{
				// Round 0: moves (edge present, alone).
				{robot.View{EdgeDir: true}, robot.Left, "dir=left,moved=true"},
				// Round 1: now in a tower having moved: flip. After the
				// flip, the edge on the new direction (EdgeOpp at Look
				// time) decides the next moved flag.
				{robot.View{EdgeDir: true, EdgeOpp: true, OtherRobots: true}, robot.Right, "dir=right,moved=true"},
			},
		},
		{
			name: "rule 2: did not move, tower forms, keep direction",
			steps: []step{
				// Round 0: blocked (no move).
				{robot.View{EdgeDir: false, EdgeOpp: true}, robot.Left, "dir=left,moved=false"},
				// Round 1: another robot arrived; sentinel keeps pointing.
				{robot.View{EdgeDir: false, EdgeOpp: true, OtherRobots: true}, robot.Left, "dir=left,moved=false"},
			},
		},
		{
			name: "flip uses opposite-edge presence for moved flag",
			steps: []step{
				{robot.View{EdgeDir: true}, robot.Left, "dir=left,moved=true"},
				// Flips; new direction's edge (EdgeOpp) is absent: no move.
				{robot.View{EdgeDir: true, EdgeOpp: false, OtherRobots: true}, robot.Right, "dir=right,moved=false"},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			core := PEF3Plus{}.NewCore()
			if core.Dir() != robot.Left {
				t.Fatal("initial dir must be left")
			}
			for i, s := range c.steps {
				core.Compute(s.view)
				if core.Dir() != s.wantDir {
					t.Fatalf("step %d: dir = %v, want %v", i, core.Dir(), s.wantDir)
				}
				if core.State().String() != s.wantState {
					t.Fatalf("step %d: state = %q, want %q", i, core.State(), s.wantState)
				}
			}
		})
	}
}

func TestPEF2ComputeTable(t *testing.T) {
	cases := []struct {
		name    string
		view    robot.View
		wantDir robot.LocalDir
	}{
		{"no edges: keep", robot.View{}, robot.Left},
		{"both edges: keep", robot.View{EdgeDir: true, EdgeOpp: true}, robot.Left},
		{"only pointed edge: keep", robot.View{EdgeDir: true}, robot.Left},
		{"only opposite edge: flip", robot.View{EdgeOpp: true}, robot.Right},
		{"tower: keep even if opposite-only", robot.View{EdgeOpp: true, OtherRobots: true}, robot.Left},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			core := PEF2{}.NewCore()
			core.Compute(c.view)
			if core.Dir() != c.wantDir {
				t.Fatalf("dir = %v, want %v", core.Dir(), c.wantDir)
			}
		})
	}
}

func TestPEF1ComputeTable(t *testing.T) {
	cases := []struct {
		name    string
		view    robot.View
		wantDir robot.LocalDir
	}{
		{"no edges: keep", robot.View{}, robot.Left},
		{"pointed edge present: keep", robot.View{EdgeDir: true}, robot.Left},
		{"only opposite: flip", robot.View{EdgeOpp: true}, robot.Right},
		{"both: keep", robot.View{EdgeDir: true, EdgeOpp: true}, robot.Left},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			core := PEF1{}.NewCore()
			core.Compute(c.view)
			if core.Dir() != c.wantDir {
				t.Fatalf("dir = %v, want %v", core.Dir(), c.wantDir)
			}
		})
	}
}

func TestAblationsDiffer(t *testing.T) {
	// NoRule3 never flips even in a moved-into-tower situation.
	c3 := NoRule3{}.NewCore()
	c3.Compute(robot.View{EdgeDir: true})
	c3.Compute(robot.View{EdgeDir: true, EdgeOpp: true, OtherRobots: true})
	if c3.Dir() != robot.Left {
		t.Fatal("NoRule3 flipped")
	}
	// NoRule2 flips in a tower even without having moved.
	c2 := NoRule2{}.NewCore()
	c2.Compute(robot.View{EdgeDir: false, EdgeOpp: true, OtherRobots: true})
	if c2.Dir() != robot.Right {
		t.Fatal("NoRule2 did not flip")
	}
}

func TestNames(t *testing.T) {
	if (PEF3Plus{}).Name() != "pef3+" || (PEF2{}).Name() != "pef2" || (PEF1{}).Name() != "pef1" {
		t.Fatal("unexpected algorithm names")
	}
	if (NoRule2{}).NewCore() == nil || (NoRule3{}).NewCore() == nil {
		t.Fatal("ablations must build cores")
	}
}
