package core

import "pef/internal/robot"

// This file gives every paper algorithm (and the two ablations) a
// bit-parallel lane core: the same Compute rule expressed as a boolean
// circuit over 64-lane words, so the lockstep engine advances 64 seeds of
// a spec with a handful of word operations. Each circuit is derived
// line-by-line from the scalar Compute next to it; the differential tests
// in lanes_test.go verify the equivalence exhaustively.

// pef3LaneCore is pef3Core across 64 lanes: per-lane dir and
// HasMovedPreviousStep bits.
type pef3LaneCore struct {
	dirRight uint64 // bit l: lane l's dir is Right
	moved    uint64 // bit l: lane l's HasMovedPreviousStep
}

// NewLaneCore implements robot.LaneAlgorithm.
func (PEF3Plus) NewLaneCore() robot.LaneCore { return &pef3LaneCore{} }

func (c *pef3LaneCore) DirRight() uint64 { return c.dirRight }

// Compute is Algorithm 1 as a circuit. A lane flips (Rule 3) iff it moved
// last step and stands in a tower; line 4's ExistsEdge(dir) with the
// updated dir selects EdgeDir on unflipped lanes and EdgeOpp on flipped
// ones (the view was gathered with the Look-phase dir).
func (c *pef3LaneCore) Compute(view robot.LaneView) {
	flip := c.moved & view.OtherRobots
	c.dirRight ^= flip
	c.moved = (view.EdgeDir &^ flip) | (view.EdgeOpp & flip)
}

// dirLaneCore covers the dir-only algorithms: the flip rule is a pure
// function of the view, returning the mask of lanes whose dir negates.
type dirLaneCore struct {
	dirRight uint64
	flip     func(view robot.LaneView) uint64
}

func (c *dirLaneCore) DirRight() uint64 { return c.dirRight }

func (c *dirLaneCore) Compute(view robot.LaneView) {
	c.dirRight ^= c.flip(view)
}

// NewLaneCore implements robot.LaneAlgorithm: an isolated robot with
// exactly one adjacent edge present turns towards it; all other lanes
// keep their direction.
func (PEF2) NewLaneCore() robot.LaneCore {
	return &dirLaneCore{flip: func(view robot.LaneView) uint64 {
		return ^view.OtherRobots & view.EdgeOpp & ^view.EdgeDir
	}}
}

// NewLaneCore implements robot.LaneAlgorithm: a lane turns iff its pointed
// edge is absent and the other one is present.
func (PEF1) NewLaneCore() robot.LaneCore {
	return &dirLaneCore{flip: func(view robot.LaneView) uint64 {
		return ^view.EdgeDir & view.EdgeOpp
	}}
}

// NewLaneCore implements robot.LaneAlgorithm: pure Rule 1, no lane ever
// turns.
func (NoRule3) NewLaneCore() robot.LaneCore {
	return &dirLaneCore{flip: func(robot.LaneView) uint64 { return 0 }}
}

// NewLaneCore implements robot.LaneAlgorithm: every lane in a tower turns,
// moved or not.
func (NoRule2) NewLaneCore() robot.LaneCore {
	return &dirLaneCore{flip: func(view robot.LaneView) uint64 {
		return view.OtherRobots
	}}
}

// verify interface compliance at compile time.
var (
	_ robot.LaneAlgorithm = PEF3Plus{}
	_ robot.LaneAlgorithm = PEF2{}
	_ robot.LaneAlgorithm = PEF1{}
	_ robot.LaneAlgorithm = NoRule3{}
	_ robot.LaneAlgorithm = NoRule2{}
)
