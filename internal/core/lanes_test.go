package core

import (
	"testing"

	"pef/internal/prng"
	"pef/internal/robot"
)

// laneAlgorithms lists every algorithm that must keep its lane core in
// lockstep with its scalar core.
func laneAlgorithms() []robot.LaneAlgorithm {
	return []robot.LaneAlgorithm{PEF3Plus{}, PEF2{}, PEF1{}, NoRule3{}, NoRule2{}}
}

// TestLaneCoresMatchScalarCores drives each algorithm's lane core and 64
// independent scalar cores through the same random view sequences and
// checks the dir words agree after every step. Sixty-four random lanes
// over 256 steps cover every reachable (state, view) transition of these
// tiny state machines many times over.
func TestLaneCoresMatchScalarCores(t *testing.T) {
	for _, alg := range laneAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			src := prng.NewSource(0x1A9E5 ^ uint64(len(alg.Name())))
			lane := alg.NewLaneCore()
			scalars := make([]robot.Core, 64)
			for l := range scalars {
				scalars[l] = alg.NewCore()
			}
			if lane.DirRight() != 0 {
				t.Fatalf("initial DirRight = %#x, want 0 (all lanes start Left)", lane.DirRight())
			}
			for step := 0; step < 256; step++ {
				view := robot.LaneView{
					EdgeDir:     src.Uint64(),
					EdgeOpp:     src.Uint64(),
					OtherRobots: src.Uint64(),
				}
				lane.Compute(view)
				var wantDir uint64
				for l, c := range scalars {
					c.Compute(robot.View{
						EdgeDir:     view.EdgeDir&(1<<uint(l)) != 0,
						EdgeOpp:     view.EdgeOpp&(1<<uint(l)) != 0,
						OtherRobots: view.OtherRobots&(1<<uint(l)) != 0,
					})
					if c.Dir() == robot.Right {
						wantDir |= 1 << uint(l)
					}
				}
				if got := lane.DirRight(); got != wantDir {
					t.Fatalf("step %d: DirRight = %#x, want %#x (diff %#x)",
						step, got, wantDir, got^wantDir)
				}
			}
		})
	}
}
