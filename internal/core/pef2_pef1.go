package core

import (
	"pef/internal/robot"
)

// PEF2Name is the registry name of the two-robot, three-node algorithm.
const PEF2Name = "pef2"

// PEF2 is the algorithm of Section 4.2: perpetual exploration of the 3-node
// connected-over-time ring by 2 robots. Each robot has only its dir
// variable. The rule: an isolated robot with exactly one adjacent edge
// present points to that edge; in every other situation (no edge, both
// edges, or a co-located robot) it keeps its direction.
type PEF2 struct{}

// Name implements robot.Algorithm.
func (PEF2) Name() string { return PEF2Name }

// NewCore implements robot.Algorithm.
func (PEF2) NewCore() robot.Core { return &pef2Core{dir: robot.Left} }

type pef2Core struct {
	dir robot.LocalDir
}

func (c *pef2Core) Dir() robot.LocalDir { return c.dir }

func (c *pef2Core) Compute(view robot.View) {
	if view.OtherRobots {
		return
	}
	// Exactly one adjacent edge present: point to it. The robot already
	// points to it when EdgeDir is the present one.
	if view.EdgeOpp && !view.EdgeDir {
		c.dir = c.dir.Opposite()
	}
}

func (c *pef2Core) State() robot.StateCode { return robot.DirState(c.dir) }

var _ robot.Algorithm = PEF2{}

// PEF1Name is the registry name of the single-robot, two-node algorithm.
const PEF1Name = "pef1"

// PEF1 is the algorithm of Section 5.2: perpetual exploration of the 2-node
// connected-over-time ring by a single robot. As soon as at least one
// adjacent edge is present, dir points to one of them (deterministically:
// the current direction if its edge is present, the other one otherwise).
// On a 2-node ring every traversal swaps nodes, so moving whenever possible
// is perpetual exploration; connected-over-time guarantees motion happens
// infinitely often.
type PEF1 struct{}

// Name implements robot.Algorithm.
func (PEF1) Name() string { return PEF1Name }

// NewCore implements robot.Algorithm.
func (PEF1) NewCore() robot.Core { return &pef1Core{dir: robot.Left} }

type pef1Core struct {
	dir robot.LocalDir
}

func (c *pef1Core) Dir() robot.LocalDir { return c.dir }

func (c *pef1Core) Compute(view robot.View) {
	if !view.EdgeDir && view.EdgeOpp {
		c.dir = c.dir.Opposite()
	}
}

func (c *pef1Core) State() robot.StateCode { return robot.DirState(c.dir) }

var _ robot.Algorithm = PEF1{}

// RegisterBuiltins installs the paper's algorithms (and the ablations) into
// the robot registry. It is idempotent-unsafe by design (duplicate
// registration panics); call it once from main or TestMain.
func RegisterBuiltins() {
	robot.Register(PEF3PlusName, func() robot.Algorithm { return PEF3Plus{} })
	robot.Register(PEF2Name, func() robot.Algorithm { return PEF2{} })
	robot.Register(PEF1Name, func() robot.Algorithm { return PEF1{} })
	robot.Register(NoRule3Name, func() robot.Algorithm { return NoRule3{} })
	robot.Register(NoRule2Name, func() robot.Algorithm { return NoRule2{} })
}
