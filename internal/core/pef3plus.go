// Package core implements the paper's primary contribution: the three
// perpetual-exploration algorithms for fully synchronous robots on
// connected-over-time rings.
//
//   - PEF_3+ (Algorithm 1, Section 3): k >= 3 robots, any ring of n > k
//     nodes.
//   - PEF_2 (Section 4.2): 2 robots on the 3-node ring.
//   - PEF_1 (Section 5.2): 1 robot on the 2-node ring.
//
// The package also provides the two single-rule ablations of PEF_3+ used by
// experiment E-X3 to demonstrate why Rules 2 and 3 are both necessary.
package core

import (
	"pef/internal/robot"
)

// PEF3PlusName is the registry name of Algorithm 1.
const PEF3PlusName = "pef3+"

// PEF3Plus is Algorithm 1 of the paper (Perpetual Exploration in FSYNC with
// 3 or more robots). Its entire behaviour is three rules:
//
//	Rule 1: a robot that is not involved in a tower keeps its direction.
//	Rule 2: a robot that did not move in the previous step and is now in a
//	        tower keeps its direction (the sentinel keeps its post).
//	Rule 3: a robot that moved in the previous step and is now in a tower
//	        turns back (the explorer bounces off the sentinel).
//
// The persistent variables are dir and HasMovedPreviousStep.
type PEF3Plus struct{}

// Name implements robot.Algorithm.
func (PEF3Plus) Name() string { return PEF3PlusName }

// NewCore implements robot.Algorithm.
func (PEF3Plus) NewCore() robot.Core { return &pef3Core{dir: robot.Left} }

type pef3Core struct {
	dir   robot.LocalDir
	moved bool // HasMovedPreviousStep
}

func (c *pef3Core) Dir() robot.LocalDir { return c.dir }

// Compute is the literal transcription of Algorithm 1:
//
//	1: if HasMovedPreviousStep ∧ ExistsOtherRobotsOnCurrentNode() then
//	2:     dir ← opposite(dir)
//	3: end if
//	4: HasMovedPreviousStep ← ExistsEdge(dir)
//
// Line 4 reads ExistsEdge with the *possibly updated* dir: it predicts
// whether the Move phase of this very round will cross an edge, which is
// exactly "has moved" when the next Look runs.
func (c *pef3Core) Compute(view robot.View) {
	look := c.dir // the direction the Look-phase predicates were gathered with
	if c.moved && view.OtherRobots {
		c.dir = c.dir.Opposite()
	}
	c.moved = view.ExistsEdge(look, c.dir)
}

func (c *pef3Core) State() robot.StateCode {
	return robot.DirMovedState(c.dir, c.moved)
}

// verify interface compliance at compile time.
var _ robot.Algorithm = PEF3Plus{}
var _ robot.Core = (*pef3Core)(nil)

// NoRule3Name is the registry name of the ablation that removes Rule 3.
const NoRule3Name = "pef3+/no-rule3"

// NoRule3 is PEF_3+ with Rule 3 removed: robots never turn back, towers or
// not (pure Rule 1). Lemma 3.1's argument shows why this fails: with an
// eventual missing edge every robot eventually parks at an extremity and
// the far side of the ring is never visited again (experiment E-X3).
type NoRule3 struct{}

// Name implements robot.Algorithm.
func (NoRule3) Name() string { return NoRule3Name }

// NewCore implements robot.Algorithm.
func (NoRule3) NewCore() robot.Core {
	return robot.Func{
		AlgName: NoRule3Name,
		Rule: func(dir robot.LocalDir, _ robot.View) robot.LocalDir {
			return dir
		},
	}.NewCore()
}

// NoRule2Name is the registry name of the ablation that removes Rule 2.
const NoRule2Name = "pef3+/no-rule2"

// NoRule2 is PEF_3+ with Rule 2 inverted: every robot involved in a tower
// turns back, whether or not it moved in the previous step. Sentinels
// abandon their post at the eventual missing edge on every meeting, so the
// sentinel/explorer role separation of Lemma 3.7 is destroyed (E-X3 shows
// the consequences empirically).
type NoRule2 struct{}

// Name implements robot.Algorithm.
func (NoRule2) Name() string { return NoRule2Name }

// NewCore implements robot.Algorithm.
func (NoRule2) NewCore() robot.Core {
	return robot.Func{
		AlgName: NoRule2Name,
		Rule: func(dir robot.LocalDir, view robot.View) robot.LocalDir {
			if view.OtherRobots {
				return dir.Opposite()
			}
			return dir
		},
	}.NewCore()
}
