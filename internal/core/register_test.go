package core

import (
	"testing"

	"pef/internal/robot"
)

func TestRegisterBuiltins(t *testing.T) {
	RegisterBuiltins()
	for _, name := range []string{PEF3PlusName, PEF2Name, PEF1Name, NoRule2Name, NoRule3Name} {
		if !robot.Registered(name) {
			t.Errorf("%s not registered", name)
		}
		alg, err := robot.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() != name {
			t.Errorf("constructor for %s returned %s", name, alg.Name())
		}
		core := alg.NewCore()
		if core.Dir() != robot.Left {
			t.Errorf("%s: initial dir not left", name)
		}
	}
}

func TestStateEncodingsAreLocal(t *testing.T) {
	// State strings must never leak global directions: the robots are
	// disoriented, and the mirror construction compares states across
	// opposite-chirality robots.
	algs := []robot.Algorithm{PEF3Plus{}, PEF2{}, PEF1{}, NoRule2{}, NoRule3{}}
	for _, alg := range algs {
		c := alg.NewCore()
		c.Compute(robot.View{EdgeDir: true})
		for _, banned := range []string{"CW", "CCW", "clockwise"} {
			if contains(c.State().String(), banned) {
				t.Errorf("%s state %q leaks global direction", alg.Name(), c.State())
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPEF3PlusSequenceAgainstHandTrace(t *testing.T) {
	// A hand-computed 5-round trace of Algorithm 1 for one robot:
	// round 0: alone, edge ahead        -> keep left, moved=true
	// round 1: blocked both sides       -> keep left, moved=false
	// round 2: tower but did not move   -> Rule 2: keep left; opp edge only -> moved=false
	// round 3: alone, edge ahead        -> moved=true
	// round 4: tower and moved          -> Rule 3: flip to right; right edge present -> moved=true
	c := PEF3Plus{}.NewCore()
	steps := []struct {
		view  robot.View
		state string
	}{
		{robot.View{EdgeDir: true}, "dir=left,moved=true"},
		{robot.View{}, "dir=left,moved=false"},
		{robot.View{EdgeOpp: true, OtherRobots: true}, "dir=left,moved=false"},
		{robot.View{EdgeDir: true}, "dir=left,moved=true"},
		{robot.View{EdgeDir: true, EdgeOpp: true, OtherRobots: true}, "dir=right,moved=true"},
	}
	for i, s := range steps {
		c.Compute(s.view)
		if c.State().String() != s.state {
			t.Fatalf("round %d: state %q, want %q", i, c.State(), s.state)
		}
	}
}
