package dynamics

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
)

// Compose modes: how a Composed graph folds its members' edge schedules
// into one. The names double as the "compose:*" family-name suffixes the
// scenario registry exposes.
const (
	// ComposeUnion keeps an edge present when any member has it: the
	// densest composition, connected-over-time whenever one member is.
	ComposeUnion = "union"
	// ComposeIntersect keeps an edge present only when every member has
	// it: the adversary-composition mode (each member may independently
	// veto an edge). Connectivity-over-time must come from the members'
	// joint behaviour; pair at least one stochastic member with recurrent
	// margins when exploration is expected.
	ComposeIntersect = "intersect"
	// ComposeInterleave alternates rounds among the members: round t uses
	// member t mod m's schedule, a round-robin timetable of adversaries.
	ComposeInterleave = "interleave"
)

// ComposeModes lists the supported modes in canonical order.
func ComposeModes() []string {
	return []string{ComposeUnion, ComposeIntersect, ComposeInterleave}
}

// Composed folds the edge schedules of several member graphs over the same
// ring into one evolving graph. Like every oblivious dynamics it is a pure
// function of (edge, time), so composed runs replay exactly.
type Composed struct {
	r       ring.Ring
	mode    string
	members []dyngraph.EvolvingGraph
}

// NewComposed combines the members' schedules under the given mode
// (ComposeUnion, ComposeIntersect or ComposeInterleave). All members must
// share one ring size and at least one member is required.
func NewComposed(mode string, members ...dyngraph.EvolvingGraph) (*Composed, error) {
	switch mode {
	case ComposeUnion, ComposeIntersect, ComposeInterleave:
	default:
		return nil, fmt.Errorf("dynamics: unknown compose mode %q (known: %v)", mode, ComposeModes())
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("dynamics: compose %s needs at least one member", mode)
	}
	r := members[0].Ring()
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("dynamics: compose %s: nil member %d", mode, i)
		}
		if m.Ring().Size() != r.Size() {
			return nil, fmt.Errorf("dynamics: compose %s: member %d ring size %d disagrees with %d",
				mode, i, m.Ring().Size(), r.Size())
		}
	}
	return &Composed{r: r, mode: mode, members: members}, nil
}

// Ring implements dyngraph.EvolvingGraph.
func (c *Composed) Ring() ring.Ring { return c.r }

// Mode returns the composition mode.
func (c *Composed) Mode() string { return c.mode }

// Present implements dyngraph.EvolvingGraph.
func (c *Composed) Present(e, t int) bool {
	if !c.r.ValidEdge(e) || t < 0 {
		return false
	}
	switch c.mode {
	case ComposeUnion:
		for _, m := range c.members {
			if m.Present(e, t) {
				return true
			}
		}
		return false
	case ComposeIntersect:
		for _, m := range c.members {
			if !m.Present(e, t) {
				return false
			}
		}
		return true
	default: // ComposeInterleave
		return c.members[t%len(c.members)].Present(e, t)
	}
}

// NewTimetable returns a seeded periodic timetable over an n-node ring:
// each edge gets a pseudo-random appearance pattern of the given period
// with one guaranteed presence slot (so every edge recurs at least once
// per period and the graph is connected-over-time with recurrence bound at
// most 2·period−1), the remaining slots drawn present with probability
// one half. The same (n, period, seed) always yields the same timetable.
func NewTimetable(n, period int, seed uint64) (*Periodic, error) {
	if period < 1 {
		return nil, fmt.Errorf("dynamics: timetable period %d below 1", period)
	}
	patterns := make([][]bool, n)
	for e := 0; e < n; e++ {
		pat := make([]bool, period)
		guaranteed := prng.UintnAt(seed, uint64(e), 0xA11DA, period)
		for t := range pat {
			pat[t] = t == guaranteed || prng.BoolAt(seed, uint64(e), 0x71DE0+uint64(t), 0.5)
		}
		patterns[e] = pat
	}
	return NewPeriodic(n, patterns)
}

// TimetableSpec returns the seeded periodic-timetable workload, the
// constructor behind the scenario registry's "periodic" family.
func TimetableSpec(period int) Spec {
	return Spec{
		Name: "periodic-" + itoa(period),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			g, err := NewTimetable(n, period, seed)
			if err != nil {
				panic(err) // period was validated by the caller
			}
			return g
		},
	}
}
