package dynamics

import (
	"strings"
	"testing"

	"pef/internal/dyngraph"
)

func TestComposedSemantics(t *testing.T) {
	n := 6
	a := NewRovingMissing(n, 2)   // exactly one edge absent per instant
	b := dyngraph.NewStatic(n)    // everything present
	c := NewBernoulli(n, 0.5, 99) // stochastic
	union, err := NewComposed(ComposeUnion, a, b)
	if err != nil {
		t.Fatal(err)
	}
	intersect, err := NewComposed(ComposeIntersect, a, b)
	if err != nil {
		t.Fatal(err)
	}
	interleave, err := NewComposed(ComposeInterleave, a, c)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 64; tt++ {
		for e := 0; e < n; e++ {
			if union.Present(e, tt) != (a.Present(e, tt) || b.Present(e, tt)) {
				t.Fatalf("union(%d,%d) wrong", e, tt)
			}
			if intersect.Present(e, tt) != (a.Present(e, tt) && b.Present(e, tt)) {
				t.Fatalf("intersect(%d,%d) wrong", e, tt)
			}
			want := a.Present(e, tt)
			if tt%2 == 1 {
				want = c.Present(e, tt)
			}
			if interleave.Present(e, tt) != want {
				t.Fatalf("interleave(%d,%d) wrong", e, tt)
			}
		}
	}
	// Out-of-range queries are false, like every oblivious dynamics.
	if union.Present(-1, 3) || union.Present(n, 3) || union.Present(0, -1) {
		t.Error("out-of-range query reported presence")
	}
}

func TestComposedValidation(t *testing.T) {
	if _, err := NewComposed("xor", dyngraph.NewStatic(4)); err == nil || !strings.Contains(err.Error(), "unknown compose mode") {
		t.Errorf("unknown mode: err = %v", err)
	}
	if _, err := NewComposed(ComposeUnion); err == nil || !strings.Contains(err.Error(), "at least one") {
		t.Errorf("no members: err = %v", err)
	}
	if _, err := NewComposed(ComposeUnion, dyngraph.NewStatic(4), dyngraph.NewStatic(5)); err == nil || !strings.Contains(err.Error(), "ring size") {
		t.Errorf("ring mismatch: err = %v", err)
	}
	if _, err := NewComposed(ComposeUnion, dyngraph.NewStatic(4), nil); err == nil || !strings.Contains(err.Error(), "nil member") {
		t.Errorf("nil member: err = %v", err)
	}
}

func TestTimetableDeterministicAndRecurrent(t *testing.T) {
	const n, period = 7, 5
	a, err := NewTimetable(n, period, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTimetable(n, period, 42)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewTimetable(n, period, 43)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, false
	for tt := 0; tt < 4*period; tt++ {
		for e := 0; e < n; e++ {
			if a.Present(e, tt) != b.Present(e, tt) {
				same = false
			}
			if a.Present(e, tt) != other.Present(e, tt) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same (n, period, seed) produced different timetables")
	}
	if !diff {
		t.Error("different seeds produced identical timetables")
	}
	// Every edge appears at least once per period (the guaranteed slot),
	// so the timetable is connected-over-time with bounded recurrence.
	for e := 0; e < n; e++ {
		for start := 0; start < 3; start++ {
			seen := false
			for tt := start * period; tt < (start+1)*period; tt++ {
				seen = seen || a.Present(e, tt)
			}
			if !seen {
				t.Fatalf("edge %d absent for the whole period starting at %d", e, start*period)
			}
		}
	}
	if _, err := NewTimetable(n, 0, 1); err == nil {
		t.Error("period 0 accepted")
	}
}
