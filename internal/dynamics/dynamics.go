// Package dynamics provides the library of oblivious (position-independent)
// dynamics classes used as workloads by the experiments: stochastic,
// periodic, interval-connected, and permanently-damaged rings. Each class
// implements dyngraph.EvolvingGraph as a pure function of (edge, time), so
// all analyses are random-access and every run is reproducible from a seed.
//
// Adaptive adversaries — those reacting to robot positions, as in the
// impossibility proofs — live in package adversary instead, because they
// cannot be pure functions of (edge, time).
package dynamics

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
)

// Bernoulli is the memoryless stochastic ring: each edge is present at each
// instant independently with probability P. For any P > 0 it is
// connected-over-time with probability 1 (every edge is present infinitely
// often), making it the canonical "highly dynamic, no stability assumption"
// workload of the paper's introduction.
type Bernoulli struct {
	r    ring.Ring
	p    float64
	seed uint64

	// Lane fast-path tables (lanes.go), built lazily on first EdgeWordAt:
	// the per-edge Stream3 prefixes and the integer acceptance threshold.
	lanePrefix []uint64
	laneThr    uint64
}

// NewBernoulli returns a Bernoulli(p) dynamics over an n-node ring. It
// panics if p is outside [0, 1].
func NewBernoulli(n int, p float64, seed uint64) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("dynamics: Bernoulli probability %v outside [0,1]", p))
	}
	return &Bernoulli{r: ring.New(n), p: p, seed: seed}
}

// Ring implements dyngraph.EvolvingGraph.
func (b *Bernoulli) Ring() ring.Ring { return b.r }

// Present implements dyngraph.EvolvingGraph.
func (b *Bernoulli) Present(e, t int) bool {
	if !b.r.ValidEdge(e) || t < 0 {
		return false
	}
	return prng.BoolAt(b.seed, uint64(e), uint64(t), b.p)
}

// Periodic is the periodically-varying ring of Flocchini, Mans and Santoro:
// edge e is present at t iff its pattern bit at t mod len(pattern) is set.
// The subway example builds timetables on top of it.
type Periodic struct {
	r        ring.Ring
	patterns [][]bool
}

// NewPeriodic builds a periodic dynamics from one presence pattern per edge.
// Patterns may have different lengths; each must be non-empty and contain at
// least one true bit (otherwise the edge would never appear and the graph
// could not be connected-over-time).
func NewPeriodic(n int, patterns [][]bool) (*Periodic, error) {
	if len(patterns) != n {
		return nil, fmt.Errorf("dynamics: %d patterns for %d edges", len(patterns), n)
	}
	cp := make([][]bool, n)
	for e, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("dynamics: empty pattern for edge %d", e)
		}
		hasTrue := false
		for _, bit := range p {
			hasTrue = hasTrue || bit
		}
		if !hasTrue {
			return nil, fmt.Errorf("dynamics: pattern for edge %d never present", e)
		}
		cp[e] = append([]bool(nil), p...)
	}
	return &Periodic{r: ring.New(n), patterns: cp}, nil
}

// Ring implements dyngraph.EvolvingGraph.
func (p *Periodic) Ring() ring.Ring { return p.r }

// Present implements dyngraph.EvolvingGraph.
func (p *Periodic) Present(e, t int) bool {
	if !p.r.ValidEdge(e) || t < 0 {
		return false
	}
	pat := p.patterns[e]
	return pat[t%len(pat)]
}

// TInterval is a T-interval-connected ring (Kuhn, Lynch, Oshman; the setting
// of Di Luna et al. and Ilcinkas–Wade): every window of T consecutive
// instants shares a stable connected spanning subgraph. The generator
// alternates "damaged" windows of T instants (one pseudo-randomly chosen
// edge missing, or none) with fully-present windows of T instants, so any
// window of length T overlaps at most one damaged phase and its
// intersection misses at most one edge — genuinely T-interval-connected,
// not merely per-phase stable.
type TInterval struct {
	r    ring.Ring
	t    int
	seed uint64
}

// NewTInterval returns a T-interval-connected dynamics with the given
// window length t >= 1.
func NewTInterval(n, t int, seed uint64) *TInterval {
	if t <= 0 {
		panic(fmt.Sprintf("dynamics: non-positive interval length %d", t))
	}
	return &TInterval{r: ring.New(n), t: t, seed: seed}
}

// Ring implements dyngraph.EvolvingGraph.
func (g *TInterval) Ring() ring.Ring { return g.r }

// Present implements dyngraph.EvolvingGraph.
func (g *TInterval) Present(e, t int) bool {
	if !g.r.ValidEdge(e) || t < 0 {
		return false
	}
	window := uint64(t / g.t)
	if window%2 == 1 {
		// Recovery window: everything present.
		return true
	}
	// Damaged window: n+1 outcomes — one per removable edge, plus
	// "remove nothing".
	pick := prng.UintnAt(g.seed, 0xD15C0, window/2, g.r.Edges()+1)
	return pick == g.r.Edges() || pick != e
}

// BoundedRecurrence wraps any dynamics and guarantees the recurrence bound
// Δ: edge e is forced present whenever t ≡ phase(e) (mod Δ), regardless of
// the base generator. Experiment E-X2 sweeps Δ to measure how PEF_3+'s
// revisit gap scales with edge recurrence.
type BoundedRecurrence struct {
	base  dyngraph.EvolvingGraph
	delta int
	seed  uint64

	// Lane fast-path table (lanes.go), built lazily on first EdgeWordAt:
	// forced[r] holds the edges whose phase is r, so the wrapper's whole
	// contribution at instant t is one OR of forced[t%delta].
	forced []uint64
}

// NewBoundedRecurrence wraps base with recurrence bound delta >= 1.
func NewBoundedRecurrence(base dyngraph.EvolvingGraph, delta int, seed uint64) *BoundedRecurrence {
	if delta < 1 {
		panic(fmt.Sprintf("dynamics: recurrence bound %d below 1", delta))
	}
	return &BoundedRecurrence{base: base, delta: delta, seed: seed}
}

// Ring implements dyngraph.EvolvingGraph.
func (g *BoundedRecurrence) Ring() ring.Ring { return g.base.Ring() }

// Present implements dyngraph.EvolvingGraph.
func (g *BoundedRecurrence) Present(e, t int) bool {
	if !g.base.Ring().ValidEdge(e) || t < 0 {
		return false
	}
	phase := prng.UintnAt(g.seed, 0xFA5E, uint64(e), g.delta)
	if t%g.delta == phase {
		return true
	}
	return g.base.Present(e, t)
}

// Delta returns the recurrence bound.
func (g *BoundedRecurrence) Delta() int { return g.delta }

// Chain is a connected-over-time chain: the ring with one edge permanently
// absent from time zero. Its eventual underlying graph is an n-node chain,
// which is connected, so all of the paper's results apply (Section 1,
// "our results are also valid on connected-over-time chains").
type Chain struct {
	base    dyngraph.EvolvingGraph
	missing int
}

// NewChain removes edge missing from base forever.
func NewChain(base dyngraph.EvolvingGraph, missing int) *Chain {
	if !base.Ring().ValidEdge(missing) {
		panic(fmt.Sprintf("dynamics: invalid chain cut edge %d", missing))
	}
	return &Chain{base: base, missing: missing}
}

// Ring implements dyngraph.EvolvingGraph.
func (c *Chain) Ring() ring.Ring { return c.base.Ring() }

// Present implements dyngraph.EvolvingGraph.
func (c *Chain) Present(e, t int) bool {
	return e != c.missing && c.base.Present(e, t)
}

// CutEdge returns the permanently missing edge.
func (c *Chain) CutEdge() int { return c.missing }

// RovingMissing removes a single edge at every instant, rotating which edge
// is missing every period instants (edge t/period mod n). Every snapshot is
// a connected chain and every edge is recurrent: a harsh but fair dynamics.
type RovingMissing struct {
	r      ring.Ring
	period int
}

// NewRovingMissing returns the roving-missing-edge dynamics.
func NewRovingMissing(n, period int) *RovingMissing {
	if period <= 0 {
		panic(fmt.Sprintf("dynamics: non-positive roving period %d", period))
	}
	return &RovingMissing{r: ring.New(n), period: period}
}

// Ring implements dyngraph.EvolvingGraph.
func (g *RovingMissing) Ring() ring.Ring { return g.r }

// Present implements dyngraph.EvolvingGraph.
func (g *RovingMissing) Present(e, t int) bool {
	if !g.r.ValidEdge(e) || t < 0 {
		return false
	}
	return (t/g.period)%g.r.Edges() != e
}
