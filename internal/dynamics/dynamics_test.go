package dynamics

import (
	"testing"
	"testing/quick"

	"pef/internal/dyngraph"
)

func TestBernoulliDeterministicAndRandomAccess(t *testing.T) {
	g := NewBernoulli(6, 0.5, 42)
	h := NewBernoulli(6, 0.5, 42)
	for tt := 0; tt < 100; tt++ {
		for e := 0; e < 6; e++ {
			if g.Present(e, tt) != h.Present(e, tt) {
				t.Fatal("same seed must give same schedule")
			}
		}
	}
	// Random access: querying out of order must not change answers.
	before := g.Present(3, 77)
	_ = g.Present(3, 5)
	if g.Present(3, 77) != before {
		t.Fatal("Present is not a pure function of (e,t)")
	}
	// Different seeds should differ somewhere on a sizable window.
	d := NewBernoulli(6, 0.5, 43)
	same := true
	for tt := 0; tt < 64 && same; tt++ {
		for e := 0; e < 6; e++ {
			if g.Present(e, tt) != d.Present(e, tt) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical schedules")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := NewBernoulli(4, 0.7, 1)
	hits, total := 0, 0
	for tt := 0; tt < 4000; tt++ {
		for e := 0; e < 4; e++ {
			total++
			if g.Present(e, tt) {
				hits++
			}
		}
	}
	freq := float64(hits) / float64(total)
	if freq < 0.65 || freq > 0.75 {
		t.Fatalf("empirical presence frequency %.3f far from 0.7", freq)
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	always := NewBernoulli(3, 1.0, 9)
	never := NewBernoulli(3, 0.0, 9)
	for tt := 0; tt < 50; tt++ {
		for e := 0; e < 3; e++ {
			if !always.Present(e, tt) {
				t.Fatal("p=1 edge absent")
			}
			if never.Present(e, tt) {
				t.Fatal("p=0 edge present")
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("p=2 accepted")
		}
	}()
	NewBernoulli(3, 2.0, 0)
}

func TestPeriodicSchedule(t *testing.T) {
	p, err := NewPeriodic(2, [][]bool{
		{true, false},
		{false, false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	wants0 := []bool{true, false, true, false, true, false}
	wants1 := []bool{false, false, true, false, false, true}
	for tt := 0; tt < 6; tt++ {
		if p.Present(0, tt) != wants0[tt] || p.Present(1, tt) != wants1[tt] {
			t.Fatalf("t=%d: got (%v,%v)", tt, p.Present(0, tt), p.Present(1, tt))
		}
	}
}

func TestPeriodicValidation(t *testing.T) {
	if _, err := NewPeriodic(2, [][]bool{{true}}); err == nil {
		t.Fatal("wrong pattern count accepted")
	}
	if _, err := NewPeriodic(1, [][]bool{{}}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := NewPeriodic(1, [][]bool{{false, false}}); err == nil {
		t.Fatal("never-present pattern accepted")
	}
}

func TestPeriodicCopiesPatterns(t *testing.T) {
	pat := [][]bool{{true, false}, {true}}
	p, err := NewPeriodic(2, pat)
	if err != nil {
		t.Fatal(err)
	}
	pat[0][1] = true
	if p.Present(0, 1) {
		t.Fatal("pattern mutation leaked into Periodic")
	}
}

func TestTIntervalConnectedEveryInstant(t *testing.T) {
	g := NewTInterval(7, 4, 11)
	for tt := 0; tt < 400; tt++ {
		if !dyngraph.EdgesAt(g, tt).ConnectedAsRing() {
			t.Fatalf("snapshot at t=%d disconnected", tt)
		}
	}
}

func TestTIntervalStableWithinWindows(t *testing.T) {
	g := NewTInterval(6, 5, 3)
	for w := 0; w < 60; w++ {
		base := dyngraph.EdgesAt(g, w*5)
		for i := 1; i < 5; i++ {
			if !dyngraph.EdgesAt(g, w*5+i).Equal(base) {
				t.Fatalf("window %d not stable at offset %d", w, i)
			}
		}
	}
}

func TestTIntervalEveryEdgeRecurrent(t *testing.T) {
	g := NewTInterval(5, 2, 7)
	const horizon = 2000
	for e := 0; e < 5; e++ {
		if _, ok := dyngraph.LastPresence(g, e, horizon); !ok {
			t.Fatalf("edge %d never present on horizon", e)
		}
		if run := dyngraph.MaxAbsenceRun(g, e, horizon); run > 20*2 {
			t.Fatalf("edge %d has suspicious absence run %d", e, run)
		}
	}
}

func TestBoundedRecurrenceForcesPresence(t *testing.T) {
	// Base: never present. The wrapper must still force each edge once per
	// window of delta.
	base := NewBernoulli(5, 0.0, 3)
	g := NewBoundedRecurrence(base, 4, 9)
	if g.Delta() != 4 {
		t.Fatal("Delta accessor wrong")
	}
	for e := 0; e < 5; e++ {
		for w := 0; w < 50; w++ {
			found := false
			for i := 0; i < 4; i++ {
				if g.Present(e, w*4+i) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d absent during window %d", e, w)
			}
		}
	}
	if delta, ok := dyngraph.RecurrenceBound(g, 400); !ok || delta > 8 {
		t.Fatalf("recurrence bound = %d,%v", delta, ok)
	}
}

func TestBoundedRecurrencePassesBasePresence(t *testing.T) {
	base := NewBernoulli(4, 1.0, 3)
	g := NewBoundedRecurrence(base, 16, 9)
	for tt := 0; tt < 64; tt++ {
		for e := 0; e < 4; e++ {
			if !g.Present(e, tt) {
				t.Fatal("wrapper suppressed base presence")
			}
		}
	}
}

func TestChainSemantics(t *testing.T) {
	c := NewChain(dyngraph.NewStatic(5), 2)
	if c.CutEdge() != 2 {
		t.Fatal("CutEdge wrong")
	}
	for tt := 0; tt < 50; tt++ {
		if c.Present(2, tt) {
			t.Fatal("cut edge present")
		}
		for _, e := range []int{0, 1, 3, 4} {
			if !c.Present(e, tt) {
				t.Fatalf("edge %d absent", e)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid cut edge accepted")
		}
	}()
	NewChain(dyngraph.NewStatic(5), 7)
}

func TestRovingMissing(t *testing.T) {
	g := NewRovingMissing(4, 3)
	for tt := 0; tt < 48; tt++ {
		s := dyngraph.EdgesAt(g, tt)
		if s.Count() != 3 {
			t.Fatalf("t=%d: %d edges present, want 3", tt, s.Count())
		}
		wantMissing := (tt / 3) % 4
		if s.Contains(wantMissing) {
			t.Fatalf("t=%d: edge %d should be the missing one", tt, wantMissing)
		}
	}
}

func TestStandardSuiteConnectedOverTime(t *testing.T) {
	// Every workload of the standard suite must be connected-over-time on
	// the horizons the harness uses.
	for _, sp := range StandardSuite() {
		for _, n := range []int{3, 6} {
			g := sp.Build(n, 123)
			rep := dyngraph.VerifyConnectedOverTime(g, 400, []int{0, 100, 200})
			if !rep.OK {
				t.Errorf("workload %s on n=%d is not connected-over-time: %+v", sp.Name, n, rep.Failures)
			}
		}
	}
}

func TestSuiteNamesUniqueAndStable(t *testing.T) {
	seen := map[string]bool{}
	for _, sp := range StandardSuite() {
		if seen[sp.Name] {
			t.Fatalf("duplicate workload name %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	if !seen["static"] || !seen["bernoulli-0.6"] || !seen["eventual-missing"] {
		t.Fatalf("unexpected suite names: %v", seen)
	}
}

func TestBernoulliPurityProperty(t *testing.T) {
	prop := func(seed uint64, e8, t8 uint8) bool {
		g := NewBernoulli(8, 0.5, seed)
		e, tt := int(e8%8), int(t8)
		a := g.Present(e, tt)
		// Interleave other queries.
		_ = g.Present((e+1)%8, tt+3)
		_ = g.Present(e, tt+1)
		return g.Present(e, tt) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
