package dynamics

import (
	"fmt"

	"pef/internal/dyngraph"
)

// FamilyParams carries the parameters of every oblivious dynamics family in
// one flat bag, so samplers can draw a point in the full parameter space
// and hand it to Family without a per-family constructor switch. Fields a
// family does not use are ignored.
type FamilyParams struct {
	// P is the per-edge presence probability (bernoulli, bounded) or the
	// keep probability of the recurrent background (chain,
	// eventual-missing).
	P float64
	// Up and Down are the Markov per-edge transition probabilities
	// (absent→present, present→absent).
	Up, Down float64
	// Delta is the forced recurrence bound (bounded, chain,
	// eventual-missing).
	Delta int
	// Edge is the edge that eventually disappears (eventual-missing).
	Edge int
	// From is the instant the edge disappears at (eventual-missing).
	From int
	// Period is the rotation period (roving).
	Period int
	// T is the interval-connectivity window (t-interval).
	T int
	// Cut is the permanently missing edge (chain).
	Cut int
	// Horizon bounds the materialized trace (markov).
	Horizon int
}

// BoundedBernoulliSpec returns the Bernoulli(p) workload forced recurrent
// with bound delta — the sparse-but-fair stochastic family E-X2 sweeps.
func BoundedBernoulliSpec(p float64, delta int) Spec {
	return Spec{
		Name: "bounded-" + ftoa(p) + "-d" + itoa(delta),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			base := dyngraph.EvolvingGraph(NewBernoulli(n, p, seed))
			return NewBoundedRecurrence(base, delta, seed^0xB0B0)
		},
	}
}

// FamilyNames lists the parameterized oblivious families Family accepts, in
// canonical order.
func FamilyNames() []string {
	return []string{
		"static",
		"bernoulli",
		"bounded",
		"t-interval",
		"roving",
		"chain",
		"eventual-missing",
		"markov",
	}
}

// Family instantiates the named workload family at the given parameter
// point, validating ranges up front so generated (rather than hand-written)
// parameters fail with an error instead of a deep panic:
//
//	static            — every edge always present (no parameters)
//	bernoulli         — P
//	bounded           — P, Delta
//	t-interval        — T
//	roving            — Period
//	chain             — Cut, P, Delta
//	eventual-missing  — Edge, From, P, Delta
//	markov            — Up, Down, Horizon
func Family(name string, fp FamilyParams) (Spec, error) {
	switch name {
	case "static":
		return StaticSpec(), nil
	case "bernoulli":
		if fp.P < 0 || fp.P > 1 {
			return Spec{}, fmt.Errorf("dynamics: bernoulli P=%v outside [0,1]", fp.P)
		}
		return BernoulliSpec(fp.P), nil
	case "bounded":
		if fp.P < 0 || fp.P > 1 {
			return Spec{}, fmt.Errorf("dynamics: bounded P=%v outside [0,1]", fp.P)
		}
		if fp.Delta < 1 {
			return Spec{}, fmt.Errorf("dynamics: bounded Delta=%d below 1", fp.Delta)
		}
		return BoundedBernoulliSpec(fp.P, fp.Delta), nil
	case "t-interval":
		if fp.T < 1 {
			return Spec{}, fmt.Errorf("dynamics: t-interval T=%d below 1", fp.T)
		}
		return TIntervalSpec(fp.T), nil
	case "roving":
		if fp.Period < 1 {
			return Spec{}, fmt.Errorf("dynamics: roving Period=%d below 1", fp.Period)
		}
		return RovingSpec(fp.Period), nil
	case "chain":
		if fp.Cut < 0 {
			return Spec{}, fmt.Errorf("dynamics: chain Cut=%d negative", fp.Cut)
		}
		if fp.P < 0 || fp.P > 1 {
			return Spec{}, fmt.Errorf("dynamics: chain P=%v outside [0,1]", fp.P)
		}
		if fp.Delta < 1 {
			return Spec{}, fmt.Errorf("dynamics: chain Delta=%d below 1", fp.Delta)
		}
		return ChainSpec(fp.Cut, fp.P, fp.Delta), nil
	case "eventual-missing":
		if fp.Edge < 0 {
			return Spec{}, fmt.Errorf("dynamics: eventual-missing Edge=%d negative", fp.Edge)
		}
		if fp.From < 0 {
			return Spec{}, fmt.Errorf("dynamics: eventual-missing From=%d negative", fp.From)
		}
		if fp.P < 0 || fp.P > 1 {
			return Spec{}, fmt.Errorf("dynamics: eventual-missing P=%v outside [0,1]", fp.P)
		}
		if fp.Delta < 1 {
			return Spec{}, fmt.Errorf("dynamics: eventual-missing Delta=%d below 1", fp.Delta)
		}
		return EventualMissingSpec(fp.Edge, fp.From, fp.P, fp.Delta), nil
	case "markov":
		if fp.Up <= 0 || fp.Up > 1 || fp.Down < 0 || fp.Down > 1 {
			return Spec{}, fmt.Errorf("dynamics: markov Up=%v Down=%v outside (0,1]/[0,1]", fp.Up, fp.Down)
		}
		if fp.Horizon < 0 {
			return Spec{}, fmt.Errorf("dynamics: markov Horizon=%d negative", fp.Horizon)
		}
		return MarkovSpec(fp.Up, fp.Down, fp.Horizon), nil
	}
	return Spec{}, fmt.Errorf("dynamics: unknown family %q (known: %v)", name, FamilyNames())
}
