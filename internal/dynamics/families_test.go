package dynamics

import (
	"strings"
	"testing"

	"pef/internal/dyngraph"
)

func TestFamilyBuildsEveryName(t *testing.T) {
	fp := FamilyParams{
		P: 0.6, Up: 0.4, Down: 0.25,
		Delta: 4, Edge: 1, From: 16, Period: 3, T: 4, Cut: 2, Horizon: 256,
	}
	for _, name := range FamilyNames() {
		sp, err := Family(name, fp)
		if err != nil {
			t.Fatalf("Family(%q): %v", name, err)
		}
		if sp.Name == "" {
			t.Fatalf("Family(%q): empty workload name", name)
		}
		g := sp.Build(6, 7)
		if g.Ring().Size() != 6 {
			t.Fatalf("Family(%q): built ring size %d", name, g.Ring().Size())
		}
		// The built graph must answer presence queries in range.
		g.Present(0, 0)
	}
}

func TestFamilyValidation(t *testing.T) {
	cases := []struct {
		name string
		fp   FamilyParams
		want string
	}{
		{"bernoulli", FamilyParams{P: 1.5}, "outside [0,1]"},
		{"bounded", FamilyParams{P: 0.5, Delta: 0}, "Delta"},
		{"t-interval", FamilyParams{T: 0}, "T=0"},
		{"roving", FamilyParams{Period: 0}, "Period"},
		{"chain", FamilyParams{Cut: -1, P: 0.5, Delta: 2}, "Cut"},
		{"eventual-missing", FamilyParams{Edge: 0, From: -2, P: 0.5, Delta: 2}, "From"},
		{"markov", FamilyParams{Up: 0, Down: 0.5}, "markov"},
		{"no-such-family", FamilyParams{}, "unknown family"},
	}
	for _, c := range cases {
		if _, err := Family(c.name, c.fp); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Family(%q, %+v): err = %v, want mention of %q", c.name, c.fp, err, c.want)
		}
	}
}

func TestBoundedBernoulliSpecRecurrence(t *testing.T) {
	sp := BoundedBernoulliSpec(0, 4) // base never present: only the forced recurrence fires
	g := sp.Build(5, 11)
	for e := 0; e < 5; e++ {
		present := 0
		for tt := 0; tt < 64; tt++ {
			if g.Present(e, tt) {
				present++
			}
		}
		// The recurrence bound forces each edge present every 4 instants.
		if present != 16 {
			t.Fatalf("edge %d present %d/64 instants, want exactly 16", e, present)
		}
	}
	if _, ok := g.(*BoundedRecurrence); !ok {
		t.Fatalf("BoundedBernoulliSpec built %T", g)
	}
	var _ dyngraph.EvolvingGraph = g
}
