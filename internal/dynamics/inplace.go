package dynamics

import (
	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
)

// This file gives every oblivious family an in-place materialization fast
// path (dyngraph.InPlaceGraph): presence words are built locally and
// stored with one SetWord per 64 edges, instead of a per-edge interface
// dispatch plus bitset Add. The bits are identical to the Present-based
// generic path — the per-(edge, time) pseudo-randomness is the same
// function — which families_test.go verifies edge by edge; the fast path
// only removes dispatch overhead on the campaign hot loop.

// ensureEdges resizes dst to n edges when its capacity disagrees.
func ensureEdges(dst *ring.EdgeSet, n int) {
	if dst.Size() != n {
		*dst = ring.NewEdgeSet(n)
	}
}

// wordSpan returns the [base, base+span) edge range of word wi over n
// edges.
func wordSpan(wi, n int) (base, span int) {
	base = wi * 64
	span = n - base
	if span > 64 {
		span = 64
	}
	return base, span
}

// EdgesAtInto implements dyngraph.InPlaceGraph.
func (b *Bernoulli) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := b.r.Edges()
	ensureEdges(dst, n)
	if t < 0 {
		dst.Clear()
		return
	}
	for wi := 0; wi < dst.Words(); wi++ {
		base, span := wordSpan(wi, n)
		var w uint64
		for i := 0; i < span; i++ {
			if prng.BoolAt(b.seed, uint64(base+i), uint64(t), b.p) {
				w |= 1 << uint(i)
			}
		}
		dst.SetWord(wi, w)
	}
}

// EdgesAtInto implements dyngraph.InPlaceGraph.
func (g *TInterval) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := g.r.Edges()
	ensureEdges(dst, n)
	if t < 0 {
		dst.Clear()
		return
	}
	missing := -1
	window := uint64(t / g.t)
	if window%2 == 0 {
		if pick := prng.UintnAt(g.seed, 0xD15C0, window/2, n+1); pick != n {
			missing = pick
		}
	}
	fillAllBut(dst, n, missing)
}

// EdgesAtInto implements dyngraph.InPlaceGraph.
func (g *RovingMissing) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := g.r.Edges()
	ensureEdges(dst, n)
	if t < 0 {
		dst.Clear()
		return
	}
	fillAllBut(dst, n, (t/g.period)%n)
}

// fillAllBut sets dst to every edge of [0, n) except missing (-1 keeps
// them all).
func fillAllBut(dst *ring.EdgeSet, n, missing int) {
	for wi := 0; wi < dst.Words(); wi++ {
		dst.SetWord(wi, ^uint64(0)) // SetWord masks the tail
	}
	if missing >= 0 {
		dst.Remove(missing)
	}
}

// EdgesAtInto implements dyngraph.InPlaceGraph.
func (p *Periodic) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := p.r.Edges()
	ensureEdges(dst, n)
	dst.Clear()
	if t < 0 {
		return
	}
	for e := 0; e < n; e++ {
		pat := p.patterns[e]
		if pat[t%len(pat)] {
			dst.Add(e)
		}
	}
}

// EdgesAtInto implements dyngraph.InPlaceGraph: the base set plus the
// forced recurrent edges of this instant.
func (g *BoundedRecurrence) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := g.base.Ring().Edges()
	ensureEdges(dst, n)
	if t < 0 {
		dst.Clear()
		return
	}
	dyngraph.EdgesInto(g.base, t, dst)
	for wi := 0; wi < dst.Words(); wi++ {
		base, span := wordSpan(wi, n)
		w := dst.Word(wi)
		for i := 0; i < span; i++ {
			if w&(1<<uint(i)) != 0 {
				continue
			}
			e := base + i
			if t%g.delta == prng.UintnAt(g.seed, 0xFA5E, uint64(e), g.delta) {
				w |= 1 << uint(i)
			}
		}
		dst.SetWord(wi, w)
	}
}

// EdgesAtInto implements dyngraph.InPlaceGraph: the base set minus the
// permanent cut.
func (c *Chain) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := c.base.Ring().Edges()
	ensureEdges(dst, n)
	if t < 0 {
		dst.Clear()
		return
	}
	dyngraph.EdgesInto(c.base, t, dst)
	dst.Remove(c.missing)
}

// verify interface compliance at compile time.
var (
	_ dyngraph.InPlaceGraph = (*Bernoulli)(nil)
	_ dyngraph.InPlaceGraph = (*TInterval)(nil)
	_ dyngraph.InPlaceGraph = (*RovingMissing)(nil)
	_ dyngraph.InPlaceGraph = (*Periodic)(nil)
	_ dyngraph.InPlaceGraph = (*BoundedRecurrence)(nil)
	_ dyngraph.InPlaceGraph = (*Chain)(nil)
)
