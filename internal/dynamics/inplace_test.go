package dynamics

import (
	"testing"

	"pef/internal/dyngraph"
	"pef/internal/ring"
)

// TestInPlaceMatchesPresent checks that every family's in-place fast path
// produces exactly the edge set its Present function describes, instant
// by instant — the invariant the lockstep engine's byte-identity rests on.
func TestInPlaceMatchesPresent(t *testing.T) {
	const n = 11
	bern := NewBernoulli(n, 0.6, 42)
	graphs := []struct {
		name string
		g    dyngraph.InPlaceGraph
	}{
		{"bernoulli", bern},
		{"t-interval", NewTInterval(n, 3, 7)},
		{"roving", NewRovingMissing(n, 4)},
		{"bounded", NewBoundedRecurrence(NewBernoulli(n, 0.3, 9), 5, 13)},
		{"chain", NewChain(NewBoundedRecurrence(NewBernoulli(n, 0.5, 3), 4, 21), 6)},
	}
	pat := make([][]bool, n)
	for e := range pat {
		pat[e] = []bool{true, e%2 == 0, e%3 != 0}
	}
	periodic, err := NewPeriodic(n, pat)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, struct {
		name string
		g    dyngraph.InPlaceGraph
	}{"periodic", periodic})

	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			var dst ring.EdgeSet
			for instant := -1; instant < 80; instant++ {
				tc.g.EdgesAtInto(instant, &dst)
				if dst.Size() != n {
					t.Fatalf("t=%d: set size %d, want %d", instant, dst.Size(), n)
				}
				for e := 0; e < n; e++ {
					if got, want := dst.Contains(e), tc.g.Present(e, instant); got != want {
						t.Fatalf("t=%d edge %d: in-place says %v, Present says %v", instant, e, got, want)
					}
				}
			}
		})
	}
}
