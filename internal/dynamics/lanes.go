package dynamics

import (
	"pef/internal/dyngraph"
	"pef/internal/prng"
)

// This file gives the oblivious families the lane engine's word fast path
// (dyngraph.WordGraph): E_t produced directly as one presence word,
// bit-identical to the EdgesAtInto sets, with the per-instant work reduced
// to what genuinely depends on t. The big win is hash amortization: the
// (seed, stream) prefix of every Hash3 the stochastic families draw is
// constant across instants, so Bernoulli pays one SplitMix64 finalizer per
// edge per round instead of three, and BoundedRecurrence's forced-phase
// draw — which never depended on t at all — collapses into delta
// precomputed masks. lanes_test.go pins word-vs-set identity for every
// family across the parameter space.

// edgeMask returns the full presence word of an n-edge ring (n <= 64).
func edgeMask(n int) uint64 {
	return ^uint64(0) >> uint(64-n)
}

// EdgeWordAt implements dyngraph.WordGraph.
func (b *Bernoulli) EdgeWordAt(t int) (uint64, bool) {
	n := b.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	if b.lanePrefix == nil {
		b.lanePrefix = make([]uint64, n)
		for e := range b.lanePrefix {
			b.lanePrefix[e] = prng.Stream3(b.seed, uint64(e))
		}
		b.laneThr = prng.Threshold53(b.p)
	}
	var w uint64
	ut := uint64(t)
	for e, prefix := range b.lanePrefix {
		if prng.At3(prefix, ut)>>11 < b.laneThr {
			w |= 1 << uint(e)
		}
	}
	return w, true
}

// EdgeWordAt implements dyngraph.WordGraph.
func (g *TInterval) EdgeWordAt(t int) (uint64, bool) {
	n := g.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	w := edgeMask(n)
	window := uint64(t / g.t)
	if window%2 == 0 {
		if pick := prng.UintnAt(g.seed, 0xD15C0, window/2, n+1); pick != n {
			w &^= 1 << uint(pick)
		}
	}
	return w, true
}

// EdgeWordAt implements dyngraph.WordGraph.
func (g *RovingMissing) EdgeWordAt(t int) (uint64, bool) {
	n := g.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	return edgeMask(n) &^ (1 << uint((t/g.period)%n)), true
}

// EdgeWordAt implements dyngraph.WordGraph.
func (p *Periodic) EdgeWordAt(t int) (uint64, bool) {
	n := p.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	var w uint64
	for e, pat := range p.patterns {
		if pat[t%len(pat)] {
			w |= 1 << uint(e)
		}
	}
	return w, true
}

// EdgeWordAt implements dyngraph.WordGraph: the base word, plus the forced
// recurrent edges of this instant's phase.
func (g *BoundedRecurrence) EdgeWordAt(t int) (uint64, bool) {
	wb, ok := g.base.(dyngraph.WordGraph)
	if !ok {
		return 0, false
	}
	n := g.base.Ring().Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	w, ok := wb.EdgeWordAt(t)
	if !ok {
		return 0, false
	}
	if g.forced == nil {
		g.forced = make([]uint64, g.delta)
		for e := 0; e < n; e++ {
			phase := prng.UintnAt(g.seed, 0xFA5E, uint64(e), g.delta)
			g.forced[phase] |= 1 << uint(e)
		}
	}
	return w | g.forced[t%g.delta], true
}

// EdgeWordAt implements dyngraph.WordGraph: the base word, minus the
// permanent cut.
func (c *Chain) EdgeWordAt(t int) (uint64, bool) {
	wb, ok := c.base.(dyngraph.WordGraph)
	if !ok {
		return 0, false
	}
	if t < 0 {
		if c.base.Ring().Edges() > 64 {
			return 0, false
		}
		return 0, true
	}
	w, ok := wb.EdgeWordAt(t)
	if !ok {
		return 0, false
	}
	return w &^ (1 << uint(c.missing)), true
}

// EdgeWordAt implements dyngraph.WordGraph: the members' words folded
// under the composition mode.
func (c *Composed) EdgeWordAt(t int) (uint64, bool) {
	n := c.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	if c.mode == ComposeInterleave {
		wm, ok := c.members[t%len(c.members)].(dyngraph.WordGraph)
		if !ok {
			return 0, false
		}
		return wm.EdgeWordAt(t)
	}
	w := edgeMask(n)
	if c.mode == ComposeUnion {
		w = 0
	}
	for _, m := range c.members {
		wm, ok := m.(dyngraph.WordGraph)
		if !ok {
			return 0, false
		}
		mw, ok := wm.EdgeWordAt(t)
		if !ok {
			return 0, false
		}
		if c.mode == ComposeUnion {
			w |= mw
		} else {
			w &= mw
		}
	}
	return w, true
}

// verify interface compliance at compile time.
var (
	_ dyngraph.WordGraph = (*Bernoulli)(nil)
	_ dyngraph.WordGraph = (*TInterval)(nil)
	_ dyngraph.WordGraph = (*RovingMissing)(nil)
	_ dyngraph.WordGraph = (*Periodic)(nil)
	_ dyngraph.WordGraph = (*BoundedRecurrence)(nil)
	_ dyngraph.WordGraph = (*Chain)(nil)
	_ dyngraph.WordGraph = (*Composed)(nil)
)
