package dynamics

import (
	"testing"

	"pef/internal/dyngraph"
	"pef/internal/ring"
)

// TestEdgeWordMatchesInPlace checks that every family's word fast path
// reports exactly the presence word of its EdgesAtInto set, instant by
// instant — the invariant that lets the lockstep engine skip the EdgeSet.
func TestEdgeWordMatchesInPlace(t *testing.T) {
	const n = 11
	pat := make([][]bool, n)
	for e := range pat {
		pat[e] = []bool{true, e%2 == 0, e%3 != 0}
	}
	periodic, err := NewPeriodic(n, pat)
	if err != nil {
		t.Fatal(err)
	}
	union, err := NewComposed(ComposeUnion, NewBernoulli(n, 0.3, 5), NewRovingMissing(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	intersect, err := NewComposed(ComposeIntersect, NewBernoulli(n, 0.8, 6), NewTInterval(n, 3, 8))
	if err != nil {
		t.Fatal(err)
	}
	interleave, err := NewComposed(ComposeInterleave, NewBernoulli(n, 0.5, 7), periodic)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []struct {
		name string
		g    dyngraph.WordGraph
	}{
		{"bernoulli", NewBernoulli(n, 0.6, 42)},
		{"bernoulli-never", NewBernoulli(n, 0, 42)},
		{"bernoulli-always", NewBernoulli(n, 1, 42)},
		{"t-interval", NewTInterval(n, 3, 7)},
		{"roving", NewRovingMissing(n, 4)},
		{"periodic", periodic},
		{"bounded", NewBoundedRecurrence(NewBernoulli(n, 0.3, 9), 5, 13)},
		{"chain", NewChain(NewBoundedRecurrence(NewBernoulli(n, 0.5, 3), 4, 21), 6)},
		{"compose-union", union},
		{"compose-intersect", intersect},
		{"compose-interleave", interleave},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			var dst ring.EdgeSet
			for instant := -1; instant < 200; instant++ {
				dyngraph.EdgesInto(tc.g, instant, &dst)
				w, ok := tc.g.EdgeWordAt(instant)
				if !ok {
					t.Fatalf("t=%d: word path unexpectedly unavailable", instant)
				}
				if want := dst.Word(0); w != want {
					t.Fatalf("t=%d: word %#x, set word %#x", instant, w, want)
				}
			}
		})
	}
}

// TestEdgeWordProbabilitySweep sweeps Bernoulli probabilities — including
// awkward ones near the threshold-rounding boundaries — to pin the integer
// acceptance bound against the float comparison at scale.
func TestEdgeWordProbabilitySweep(t *testing.T) {
	const n = 13
	for _, p := range []float64{0, 1e-12, 0.1, 0.25, 1.0 / 3, 0.5, 0.7, 0.99999, 1} {
		b := NewBernoulli(n, p, 99)
		var dst ring.EdgeSet
		for instant := 0; instant < 300; instant++ {
			dyngraph.EdgesInto(b, instant, &dst)
			w, ok := b.EdgeWordAt(instant)
			if !ok || w != dst.Word(0) {
				t.Fatalf("p=%v t=%d: word %#x ok=%v, set word %#x", p, instant, w, ok, dst.Word(0))
			}
		}
	}
}

// TestEdgeWordUnavailable checks that wrappers over word-less bases decline
// the fast path instead of fabricating words.
func TestEdgeWordUnavailable(t *testing.T) {
	base := presentOnly{r: ring.New(8)}
	for name, g := range map[string]dyngraph.WordGraph{
		"bounded": NewBoundedRecurrence(base, 4, 1),
		"chain":   NewChain(base, 2),
	} {
		if _, ok := g.EdgeWordAt(5); ok {
			t.Errorf("%s over a word-less base claims the fast path", name)
		}
	}
	comp, err := NewComposed(ComposeIntersect, NewBernoulli(8, 0.5, 1), base)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := comp.EdgeWordAt(5); ok {
		t.Error("composition with a word-less member claims the fast path")
	}
}

// presentOnly is an EvolvingGraph without in-place or word fast paths.
type presentOnly struct{ r ring.Ring }

func (g presentOnly) Ring() ring.Ring       { return g.r }
func (g presentOnly) Present(e, t int) bool { return g.r.ValidEdge(e) && t >= 0 }
