package dynamics

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
)

// GenerateMarkov materializes a bursty-link evolving ring: each edge is an
// independent two-state Markov chain (present/absent) with transition
// probabilities up (absent→present) and down (present→absent). Unlike the
// memoryless Bernoulli dynamics, absences come in runs — the realistic
// model for doors, road works, or flaky radio links. Chains are sequential
// by nature, so the generator returns a pre-materialized Recorded trace of
// the given horizon (random-access, serializable, replayable like any
// other recorded schedule).
//
// All edges start present. With up > 0 every edge is recurrent in
// expectation with mean absence run 1/up, so the trace is
// connected-over-time with overwhelming probability on the horizons the
// experiments use (tests verify it).
func GenerateMarkov(n int, up, down float64, seed uint64, horizon int) (*dyngraph.Recorded, error) {
	if up <= 0 || up > 1 || down < 0 || down > 1 {
		return nil, fmt.Errorf("dynamics: Markov probabilities up=%v down=%v outside (0,1]/[0,1]", up, down)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("dynamics: negative horizon %d", horizon)
	}
	rec := dyngraph.NewRecorded(n)
	state := make([]bool, n)
	for e := range state {
		state[e] = true
	}
	src := prng.NewSource(seed)
	for t := 0; t < horizon; t++ {
		set := ring.NewEdgeSet(n)
		for e := 0; e < n; e++ {
			if state[e] {
				set.Add(e)
			}
		}
		rec.Append(set)
		// Transition between instants: the state at t+1 derives from the
		// state at t.
		for e := 0; e < n; e++ {
			if state[e] {
				if src.Bool(down) {
					state[e] = false
				}
			} else if src.Bool(up) {
				state[e] = true
			}
		}
	}
	return rec, nil
}

// MarkovStream is the lazily generated counterpart of GenerateMarkov: the
// same per-edge two-state chain driven by the same sequential PRNG walk —
// presence sets are bit-identical to the materialized trace — but produced
// forward on demand into a bounded sliding window. A campaign run over a
// million-round horizon therefore holds O(window) edge sets instead of
// O(horizon).
//
// Present may be queried at any instant from the retained window onwards
// (the chain advances as needed); reading an instant that has slid out of
// the window panics. Simulators only ever read the current instant, so
// any window >= 1 serves them.
type MarkovStream struct {
	win      *dyngraph.Recorded
	state    []bool
	scratch  ring.EdgeSet
	src      *prng.Source
	up, down float64
}

// NewMarkovStream creates a streaming Markov dynamics over an n-node ring
// retaining a window of the given size (values < 1 mean 1).
func NewMarkovStream(n int, up, down float64, seed uint64, window int) (*MarkovStream, error) {
	if up <= 0 || up > 1 || down < 0 || down > 1 {
		return nil, fmt.Errorf("dynamics: Markov probabilities up=%v down=%v outside (0,1]/[0,1]", up, down)
	}
	if window < 1 {
		window = 1
	}
	m := &MarkovStream{
		win:     dyngraph.NewStreamingRecorded(n, window),
		state:   make([]bool, n),
		scratch: ring.NewEdgeSet(n),
		src:     prng.NewSource(seed),
		up:      up,
		down:    down,
	}
	for e := range m.state {
		m.state[e] = true
	}
	return m, nil
}

// advance generates instants until t is inside the window, replaying the
// exact PRNG call order of GenerateMarkov.
func (m *MarkovStream) advance(t int) {
	for m.win.Horizon() <= t {
		m.scratch.Clear()
		for e, up := range m.state {
			if up {
				m.scratch.Add(e)
			}
		}
		m.win.Append(m.scratch)
		// Transition between instants: the state at t+1 derives from the
		// state at t.
		for e := range m.state {
			if m.state[e] {
				if m.src.Bool(m.down) {
					m.state[e] = false
				}
			} else if m.src.Bool(m.up) {
				m.state[e] = true
			}
		}
	}
}

// Ring implements dyngraph.EvolvingGraph.
func (m *MarkovStream) Ring() ring.Ring { return m.win.Ring() }

// Present implements dyngraph.EvolvingGraph for instants inside or beyond
// the current window (the chain advances forward as needed).
func (m *MarkovStream) Present(e, t int) bool {
	if t < 0 {
		return false
	}
	m.advance(t)
	return m.win.Present(e, t)
}

// EdgesAtInto implements dyngraph.InPlaceGraph.
func (m *MarkovStream) EdgesAtInto(t int, dst *ring.EdgeSet) {
	if t >= 0 {
		m.advance(t)
	}
	m.win.EdgesAtInto(t, dst)
}

// MarkovSpec wraps GenerateMarkov as a workload Spec with the given
// horizon; Build panics on invalid parameters (they are programmer-chosen
// constants in the suites).
func MarkovSpec(up, down float64, horizon int) Spec {
	return Spec{
		Name: "markov-" + ftoa(up) + "-" + ftoa(down),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			g, err := GenerateMarkov(n, up, down, seed, horizon)
			if err != nil {
				panic(err)
			}
			return g
		},
	}
}
