package dynamics

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
)

// GenerateMarkov materializes a bursty-link evolving ring: each edge is an
// independent two-state Markov chain (present/absent) with transition
// probabilities up (absent→present) and down (present→absent). Unlike the
// memoryless Bernoulli dynamics, absences come in runs — the realistic
// model for doors, road works, or flaky radio links. Chains are sequential
// by nature, so the generator returns a pre-materialized Recorded trace of
// the given horizon (random-access, serializable, replayable like any
// other recorded schedule).
//
// All edges start present. With up > 0 every edge is recurrent in
// expectation with mean absence run 1/up, so the trace is
// connected-over-time with overwhelming probability on the horizons the
// experiments use (tests verify it).
func GenerateMarkov(n int, up, down float64, seed uint64, horizon int) (*dyngraph.Recorded, error) {
	if up <= 0 || up > 1 || down < 0 || down > 1 {
		return nil, fmt.Errorf("dynamics: Markov probabilities up=%v down=%v outside (0,1]/[0,1]", up, down)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("dynamics: negative horizon %d", horizon)
	}
	rec := dyngraph.NewRecorded(n)
	state := make([]bool, n)
	for e := range state {
		state[e] = true
	}
	src := prng.NewSource(seed)
	for t := 0; t < horizon; t++ {
		set := ring.NewEdgeSet(n)
		for e := 0; e < n; e++ {
			if state[e] {
				set.Add(e)
			}
		}
		rec.Append(set)
		// Transition between instants: the state at t+1 derives from the
		// state at t.
		for e := 0; e < n; e++ {
			if state[e] {
				if src.Bool(down) {
					state[e] = false
				}
			} else if src.Bool(up) {
				state[e] = true
			}
		}
	}
	return rec, nil
}

// MarkovSpec wraps GenerateMarkov as a workload Spec with the given
// horizon; Build panics on invalid parameters (they are programmer-chosen
// constants in the suites).
func MarkovSpec(up, down float64, horizon int) Spec {
	return Spec{
		Name: "markov-" + ftoa(up) + "-" + ftoa(down),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			g, err := GenerateMarkov(n, up, down, seed, horizon)
			if err != nil {
				panic(err)
			}
			return g
		},
	}
}
