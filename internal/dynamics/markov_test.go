package dynamics

import (
	"testing"

	"pef/internal/dyngraph"
)

func TestGenerateMarkovShape(t *testing.T) {
	g, err := GenerateMarkov(6, 0.4, 0.2, 9, 500)
	if err != nil {
		t.Fatal(err)
	}
	if g.Horizon() != 500 || g.Ring().Size() != 6 {
		t.Fatalf("horizon=%d n=%d", g.Horizon(), g.Ring().Size())
	}
	// All edges start present.
	if !g.Snapshot(0).IsFull() {
		t.Fatalf("initial snapshot %v not full", g.Snapshot(0))
	}
}

func TestGenerateMarkovValidation(t *testing.T) {
	cases := []struct{ up, down float64 }{
		{0, 0.5}, {-0.1, 0.5}, {1.5, 0.5}, {0.5, -0.1}, {0.5, 1.5},
	}
	for _, c := range cases {
		if _, err := GenerateMarkov(4, c.up, c.down, 1, 10); err == nil {
			t.Errorf("up=%v down=%v accepted", c.up, c.down)
		}
	}
	if _, err := GenerateMarkov(4, 0.5, 0.5, 1, -1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestGenerateMarkovDeterministic(t *testing.T) {
	a, _ := GenerateMarkov(5, 0.3, 0.3, 42, 200)
	b, _ := GenerateMarkov(5, 0.3, 0.3, 42, 200)
	if dyngraph.CommonPrefix(a, b) != 200 {
		t.Fatal("same seed diverged")
	}
	c, _ := GenerateMarkov(5, 0.3, 0.3, 43, 200)
	if dyngraph.CommonPrefix(a, c) == 200 {
		t.Fatal("different seeds identical")
	}
}

func TestGenerateMarkovBurstiness(t *testing.T) {
	// With small transition probabilities, consecutive instants should
	// mostly agree — the defining property versus Bernoulli.
	g, err := GenerateMarkov(4, 0.2, 0.2, 7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for tt := 1; tt < 2000; tt++ {
		for e := 0; e < 4; e++ {
			total++
			if g.Present(e, tt) == g.Present(e, tt-1) {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.7 {
		t.Fatalf("agreement fraction %.2f too low for a bursty chain", frac)
	}
}

func TestGenerateMarkovConnectedOverTime(t *testing.T) {
	g, err := GenerateMarkov(6, 0.5, 0.2, 3, 600)
	if err != nil {
		t.Fatal(err)
	}
	rep := dyngraph.VerifyConnectedOverTime(g, 600, []int{0, 200, 400})
	if !rep.OK {
		t.Fatalf("Markov trace not connected-over-time: %+v", rep.Failures)
	}
}

func TestMarkovSpec(t *testing.T) {
	sp := MarkovSpec(0.5, 0.3, 300)
	g := sp.Build(5, 11)
	if g.Ring().Size() != 5 {
		t.Fatal("spec built wrong ring")
	}
	if sp.Name == "" {
		t.Fatal("empty spec name")
	}
}

func TestMarkovStreamMatchesMaterialized(t *testing.T) {
	const n, horizon = 6, 400
	full, err := GenerateMarkov(n, 0.4, 0.25, 9, horizon)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewMarkovStream(n, 0.4, 0.25, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Forward access (the simulator's pattern) must reproduce the
	// materialized chain bit for bit.
	for tt := 0; tt < horizon; tt++ {
		for e := 0; e < n; e++ {
			if stream.Present(e, tt) != full.Present(e, tt) {
				t.Fatalf("stream diverges from materialized chain at edge %d t=%d", e, tt)
			}
		}
	}
	// Instants inside the trailing window remain readable; evicted ones
	// panic rather than lie.
	if stream.Present(0, horizon-2) != full.Present(0, horizon-2) {
		t.Fatal("window read mismatch")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("evicted read did not panic")
			}
		}()
		stream.Present(0, 0)
	}()
}

func TestMarkovStreamRejectsBadProbabilities(t *testing.T) {
	if _, err := NewMarkovStream(4, 0, 0.5, 1, 4); err == nil {
		t.Fatal("up=0 accepted")
	}
	if _, err := NewMarkovStream(4, 0.5, 1.5, 1, 4); err == nil {
		t.Fatal("down=1.5 accepted")
	}
}
