package dynamics

import (
	"strconv"

	"pef/internal/dyngraph"
)

// Spec is a named, seedable dynamics constructor, the unit of the workload
// suites swept by the experiment harness.
type Spec struct {
	// Name identifies the workload in reports (e.g. "bernoulli-0.5").
	Name string
	// Build instantiates the dynamics over an n-node ring with the seed.
	Build func(n int, seed uint64) dyngraph.EvolvingGraph
}

// Static returns the all-edges-always-present workload.
func StaticSpec() Spec {
	return Spec{
		Name: "static",
		Build: func(n int, _ uint64) dyngraph.EvolvingGraph {
			return dyngraph.NewStatic(n)
		},
	}
}

// BernoulliSpec returns the Bernoulli(p) workload.
func BernoulliSpec(p float64) Spec {
	return Spec{
		Name: "bernoulli-" + ftoa(p),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			return NewBernoulli(n, p, seed)
		},
	}
}

// EventualMissingSpec returns the workload whose edge `edge mod n` is
// present (under Bernoulli(keepP) noise on the other edges, forced recurrent
// with bound delta) until time from, then absent forever. This is the
// defining hard case for PEF_3+ (sentinels, Lemma 3.7).
func EventualMissingSpec(edge, from int, keepP float64, delta int) Spec {
	return Spec{
		Name: "eventual-missing",
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			base := dyngraph.EvolvingGraph(NewBernoulli(n, keepP, seed))
			base = NewBoundedRecurrence(base, delta, seed^0x51DE)
			return dyngraph.NewEventualMissing(base, edge%n, from)
		},
	}
}

// TIntervalSpec returns the T-interval-connected workload.
func TIntervalSpec(t int) Spec {
	return Spec{
		Name: "t-interval-" + itoa(t),
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			return NewTInterval(n, t, seed)
		},
	}
}

// RovingSpec returns the roving-missing-edge workload.
func RovingSpec(period int) Spec {
	return Spec{
		Name: "roving-" + itoa(period),
		Build: func(n int, _ uint64) dyngraph.EvolvingGraph {
			return NewRovingMissing(n, period)
		},
	}
}

// ChainSpec returns the permanent-chain workload: Bernoulli(keepP) forced
// recurrent on all edges but one, which is absent from time zero.
func ChainSpec(cut int, keepP float64, delta int) Spec {
	return Spec{
		Name: "chain",
		Build: func(n int, seed uint64) dyngraph.EvolvingGraph {
			base := dyngraph.EvolvingGraph(NewBernoulli(n, keepP, seed))
			base = NewBoundedRecurrence(base, delta, seed^0xC0DE)
			return NewChain(base, cut%n)
		},
	}
}

// StandardSuite is the battery of connected-over-time workloads every
// positive (possibility) experiment must pass: stable, stochastic at three
// densities, interval-connected, roving damage, and an eventual missing
// edge. All are connected-over-time on the horizons used by the harness
// (verified by dyngraph.VerifyConnectedOverTime in tests).
func StandardSuite() []Spec {
	return []Spec{
		StaticSpec(),
		BernoulliSpec(0.9),
		BernoulliSpec(0.6),
		BernoulliSpec(0.3),
		TIntervalSpec(4),
		RovingSpec(3),
		MarkovSpec(0.4, 0.25, 4096),
		EventualMissingSpec(0, 32, 0.7, 4),
	}
}

// ftoa formats a probability compactly for workload names.
func ftoa(p float64) string {
	return strconv.FormatFloat(p, 'g', 3, 64)
}

func itoa(v int) string { return strconv.Itoa(v) }
