package dyngraph

import (
	"pef/internal/ring"
)

// UnderlyingEdges returns the edge set of the underlying graph U_G restricted
// to the horizon [0, horizon): every edge present at least once.
func UnderlyingEdges(g EvolvingGraph, horizon int) ring.EdgeSet {
	r := g.Ring()
	s := ring.NewEdgeSet(r.Edges())
	for e := 0; e < r.Edges(); e++ {
		for t := 0; t < horizon; t++ {
			if g.Present(e, t) {
				s.Add(e)
				break
			}
		}
	}
	return s
}

// LastPresence returns the last instant in [0, horizon) at which edge e is
// present, and ok=false if it is never present on the horizon.
func LastPresence(g EvolvingGraph, e, horizon int) (last int, ok bool) {
	for t := horizon - 1; t >= 0; t-- {
		if g.Present(e, t) {
			return t, true
		}
	}
	return 0, false
}

// EventuallyMissingEdges returns the edges that disappear before the horizon
// ends and never come back within it: e is reported iff it is absent on the
// whole suffix [horizon-suffix, horizon). On an infinite graph this is an
// approximation of the paper's eventual-missing set that becomes exact when
// the suffix covers the post-convergence regime; experiments choose the
// suffix accordingly.
func EventuallyMissingEdges(g EvolvingGraph, horizon, suffix int) []int {
	r := g.Ring()
	if suffix > horizon {
		suffix = horizon
	}
	var out []int
	for e := 0; e < r.Edges(); e++ {
		missing := true
		for t := horizon - suffix; t < horizon; t++ {
			if g.Present(e, t) {
				missing = false
				break
			}
		}
		if missing {
			out = append(out, e)
		}
	}
	return out
}

// RecurrentEdges returns the edges of the eventual underlying graph U^ω_G
// restricted to the horizon: edges present at least once in the suffix
// window [horizon-suffix, horizon). Complement of EventuallyMissingEdges
// within the underlying edge set.
func RecurrentEdges(g EvolvingGraph, horizon, suffix int) ring.EdgeSet {
	r := g.Ring()
	if suffix > horizon {
		suffix = horizon
	}
	s := ring.NewEdgeSet(r.Edges())
	for e := 0; e < r.Edges(); e++ {
		for t := horizon - suffix; t < horizon; t++ {
			if g.Present(e, t) {
				s.Add(e)
				break
			}
		}
	}
	return s
}

// OneEdge implements the predicate OneEdge(u, t, t') of Section 2.1: an
// adjacent edge of u is continuously missing from time t to time t' while
// the other adjacent edge of u is continuously present from t to t'. Both
// bounds are inclusive, as in the paper.
func OneEdge(g EvolvingGraph, u, t, tPrime int) bool {
	r := g.Ring()
	cw := r.EdgeTowards(u, ring.CW)
	ccw := r.EdgeTowards(u, ring.CCW)
	return edgeConstant(g, cw, t, tPrime, false) && edgeConstant(g, ccw, t, tPrime, true) ||
		edgeConstant(g, cw, t, tPrime, true) && edgeConstant(g, ccw, t, tPrime, false)
}

// edgeConstant reports whether edge e is present (want=true) or absent
// (want=false) at every instant of the inclusive range [t, tPrime].
func edgeConstant(g EvolvingGraph, e, t, tPrime int, want bool) bool {
	for i := t; i <= tPrime; i++ {
		if g.Present(e, i) != want {
			return false
		}
	}
	return true
}

// AbsenceIntervals returns the maximal half-open intervals of [0, horizon)
// during which edge e is absent, in increasing order. The impossibility
// constructions use this to verify that every edge of Gω has only finite,
// disjoint absence intervals (hence is recurrent).
func AbsenceIntervals(g EvolvingGraph, e, horizon int) []Interval {
	var out []Interval
	start := -1
	for t := 0; t < horizon; t++ {
		if !g.Present(e, t) {
			if start < 0 {
				start = t
			}
		} else if start >= 0 {
			out = append(out, Interval{Start: start, End: t})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Interval{Start: start, End: horizon})
	}
	return out
}

// MaxAbsenceRun returns the length of the longest absence interval of edge e
// within [0, horizon). An edge with MaxAbsenceRun < horizon that ends
// present is recurrent on the horizon.
func MaxAbsenceRun(g EvolvingGraph, e, horizon int) int {
	longest := 0
	for _, iv := range AbsenceIntervals(g, e, horizon) {
		if iv.Len() > longest {
			longest = iv.Len()
		}
	}
	return longest
}

// RecurrenceBound returns the smallest Δ such that on [0, horizon) every
// edge of the ring is present at least once in every window of Δ
// consecutive instants that closes before the horizon. It returns ok=false
// when some edge looks eventually missing on this horizon: it is never
// present at all, or its trailing (unresolved) absence run is strictly
// longer than every completed one. The bound controls PEF_3+'s revisit gap
// (experiment E-X2).
func RecurrenceBound(g EvolvingGraph, horizon int) (delta int, ok bool) {
	r := g.Ring()
	delta = 1
	for e := 0; e < r.Edges(); e++ {
		if _, present := LastPresence(g, e, horizon); !present {
			return 0, false
		}
		completed, trailing := 0, 0
		for _, iv := range AbsenceIntervals(g, e, horizon) {
			if iv.End == horizon {
				trailing = iv.Len()
			} else if iv.Len() > completed {
				completed = iv.Len()
			}
		}
		if trailing > completed {
			// The edge has been absent for longer than ever before and the
			// horizon cannot tell whether it will return.
			return 0, false
		}
		// An absence run of length L means a window of L+1 instants is
		// needed to guarantee one presence.
		if completed+1 > delta {
			delta = completed + 1
		}
	}
	return delta, true
}
