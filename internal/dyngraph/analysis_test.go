package dyngraph

import (
	"testing"

	"pef/internal/ring"
)

// scheduleGraph builds a small recorded trace from explicit presence rows.
func scheduleGraph(t *testing.T, n int, rows [][]int) *Recorded {
	t.Helper()
	rec := NewRecorded(n)
	for _, row := range rows {
		rec.Append(ring.EdgeSetOf(n, row...))
	}
	return rec
}

func TestUnderlyingEdges(t *testing.T) {
	g := scheduleGraph(t, 4, [][]int{
		{0},
		{0, 1},
		{},
		{0, 2},
	})
	u := UnderlyingEdges(g, 4)
	if !u.Contains(0) || !u.Contains(1) || !u.Contains(2) || u.Contains(3) {
		t.Fatalf("underlying = %v", u)
	}
	// Restricting the horizon excludes later appearances.
	u = UnderlyingEdges(g, 2)
	if u.Contains(2) {
		t.Fatal("edge 2 should not be in the 2-instant underlying graph")
	}
}

func TestLastPresence(t *testing.T) {
	g := scheduleGraph(t, 3, [][]int{{1}, {0, 1}, {1}, {}})
	if last, ok := LastPresence(g, 0, 4); !ok || last != 1 {
		t.Fatalf("LastPresence(0) = %d,%v", last, ok)
	}
	if last, ok := LastPresence(g, 1, 4); !ok || last != 2 {
		t.Fatalf("LastPresence(1) = %d,%v", last, ok)
	}
	if _, ok := LastPresence(g, 2, 4); ok {
		t.Fatal("edge 2 was never present")
	}
}

func TestEventuallyMissingAndRecurrent(t *testing.T) {
	// Edge 0 present only early; edge 1 always; edge 2 never.
	g := scheduleGraph(t, 3, [][]int{
		{0, 1}, {0, 1}, {1}, {1}, {1}, {1},
	})
	missing := EventuallyMissingEdges(g, 6, 4)
	if len(missing) != 2 || missing[0] != 0 || missing[1] != 2 {
		t.Fatalf("eventually missing = %v", missing)
	}
	rec := RecurrentEdges(g, 6, 4)
	if !rec.Contains(1) || rec.Contains(0) || rec.Contains(2) {
		t.Fatalf("recurrent = %v", rec)
	}
	// A suffix longer than the horizon clamps.
	if got := EventuallyMissingEdges(g, 6, 100); len(got) != 1 || got[0] != 2 {
		t.Fatalf("clamped suffix = %v", got)
	}
}

func TestOneEdgePredicate(t *testing.T) {
	// Node 1 of a 4-ring has adjacent edges 0 (CCW side) and 1 (CW side).
	g := scheduleGraph(t, 4, [][]int{
		{0, 2, 3},    // t=0: edge 1 missing, edge 0 present -> OneEdge holds
		{0, 2, 3},    // t=1: same
		{0, 1, 2, 3}, // t=2: both present -> violated
	})
	if !OneEdge(g, 1, 0, 1) {
		t.Fatal("OneEdge(1,0,1) should hold")
	}
	if OneEdge(g, 1, 0, 2) {
		t.Fatal("OneEdge(1,0,2) should fail at t=2")
	}
	// The mirrored situation (CW side present, CCW missing) also counts.
	g2 := scheduleGraph(t, 4, [][]int{{1, 2, 3}, {1, 2, 3}})
	if !OneEdge(g2, 1, 0, 1) {
		t.Fatal("mirrored OneEdge should hold")
	}
	// Both missing: not OneEdge.
	g3 := scheduleGraph(t, 4, [][]int{{2, 3}})
	if OneEdge(g3, 1, 0, 0) {
		t.Fatal("both-missing is not OneEdge")
	}
}

func TestAbsenceIntervals(t *testing.T) {
	g := scheduleGraph(t, 2, [][]int{
		{1}, {1}, {0, 1}, {1}, {0, 1}, {1}, {1},
	})
	ivs := AbsenceIntervals(g, 0, 7)
	want := []Interval{{0, 2}, {3, 4}, {5, 7}}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %v", ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", ivs, want)
		}
	}
	if len(AbsenceIntervals(g, 1, 7)) != 0 {
		t.Fatal("always-present edge has absence intervals")
	}
	if got := MaxAbsenceRun(g, 0, 7); got != 2 {
		t.Fatalf("MaxAbsenceRun = %d, want 2", got)
	}
}

func TestRecurrenceBound(t *testing.T) {
	// The longest absence run is 1 instant, so every window of 2 contains
	// a presence.
	g := scheduleGraph(t, 2, [][]int{
		{0}, {1}, {0, 1}, {0}, {1}, {0, 1},
	})
	delta, ok := RecurrenceBound(g, 6)
	if !ok || delta != 2 {
		t.Fatalf("RecurrenceBound = %d,%v, want 2,true", delta, ok)
	}
	// A two-instant absence run pushes the bound to 3.
	g4 := scheduleGraph(t, 2, [][]int{
		{1}, {1}, {0, 1}, {0, 1}, {0, 1}, {0, 1},
	})
	delta, ok = RecurrenceBound(g4, 6)
	if !ok || delta != 3 {
		t.Fatalf("RecurrenceBound = %d,%v, want 3,true", delta, ok)
	}
	// An edge absent through the end of the horizon is unresolved.
	g2 := scheduleGraph(t, 2, [][]int{{0, 1}, {0}, {0}, {0}})
	if _, ok := RecurrenceBound(g2, 4); ok {
		t.Fatal("unresolved trailing absence accepted")
	}
	// A never-present edge has no bound.
	g3 := scheduleGraph(t, 2, [][]int{{0}, {0}})
	if _, ok := RecurrenceBound(g3, 2); ok {
		t.Fatal("never-present edge accepted")
	}
}
