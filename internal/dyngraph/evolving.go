// Package dyngraph implements the evolving-graph model of Xuan, Ferreira and
// Jarry used by the paper (Section 2.1): an evolving graph G is a sequence
// {G_0, G_1, ...} of subgraphs of a static ring, where G_t = (V, E_t) and the
// edges of E_t are said to be present at time t.
//
// The package provides:
//
//   - the EvolvingGraph abstraction (random access to edge presence),
//   - the removal operator G \ {(e, τ1), ...} used throughout the
//     impossibility proofs,
//   - recorded finite traces,
//   - temporal analysis: underlying graph, eventually-missing and recurrent
//     edges on a horizon, the OneEdge(u, t, t') predicate of Section 2.1,
//   - temporal journeys (foremost / shortest / fastest) and finite-horizon
//     connected-over-time verification.
package dyngraph

import (
	"fmt"

	"pef/internal/ring"
)

// EvolvingGraph is a dynamic ring: a time-indexed family of presence sets
// over the edges of a fixed underlying ring. Present must be a pure function
// of (e, t); implementations requiring knowledge of robot positions (adaptive
// adversaries) live in the simulator layer instead, which records their
// decisions into a *Recorded for later analysis.
type EvolvingGraph interface {
	// Ring returns the underlying static ring (V, E) of which every G_t is
	// a subgraph.
	Ring() ring.Ring
	// Present reports whether edge e is present at time t. Present must
	// return false for out-of-range edges and may be called with arbitrary
	// t >= 0 in any order.
	Present(e, t int) bool
}

// EdgesAt materializes the presence set E_t of g.
func EdgesAt(g EvolvingGraph, t int) ring.EdgeSet {
	s := ring.NewEdgeSet(g.Ring().Edges())
	EdgesInto(g, t, &s)
	return s
}

// InPlaceGraph is an optional extension of EvolvingGraph: implementations
// write a presence set into a caller-provided EdgeSet, so per-round
// materialization needs no allocation (recorded traces copy words instead
// of re-testing every edge).
type InPlaceGraph interface {
	EvolvingGraph
	// EdgesAtInto overwrites dst with E_t. dst is resized if its capacity
	// does not match the ring's edge count.
	EdgesAtInto(t int, dst *ring.EdgeSet)
}

// EdgesInto materializes E_t of g into dst without allocating (when dst
// already has the right capacity), using the graph's own in-place fast
// path when it provides one.
func EdgesInto(g EvolvingGraph, t int, dst *ring.EdgeSet) {
	if ip, ok := g.(InPlaceGraph); ok {
		ip.EdgesAtInto(t, dst)
		return
	}
	r := g.Ring()
	if dst.Size() != r.Edges() {
		*dst = ring.NewEdgeSet(r.Edges())
	}
	dst.Clear()
	for e := 0; e < r.Edges(); e++ {
		if g.Present(e, t) {
			dst.Add(e)
		}
	}
}

// Static is the evolving graph in which every edge of the ring is present at
// every instant (the graph used as the starting point of both impossibility
// constructions, Theorems 4.1 and 5.1).
type Static struct {
	r ring.Ring
}

// NewStatic returns the always-complete evolving ring over n nodes.
func NewStatic(n int) Static { return Static{r: ring.New(n)} }

// Ring implements EvolvingGraph.
func (s Static) Ring() ring.Ring { return s.r }

// Present implements EvolvingGraph: every valid edge is always present.
func (s Static) Present(e, t int) bool {
	return s.r.ValidEdge(e) && t >= 0
}

// Interval is a half-open time interval [Start, End). The paper writes
// inclusive intervals {t, ..., t'}; the constructor Incl converts.
type Interval struct {
	Start int // first instant in the interval
	End   int // first instant past the interval
}

// Incl builds the half-open interval equal to the paper's inclusive
// {first, ..., last}.
func Incl(first, last int) Interval { return Interval{Start: first, End: last + 1} }

// Contains reports whether instant t lies in the interval.
func (iv Interval) Contains(t int) bool { return t >= iv.Start && t < iv.End }

// Empty reports whether the interval contains no instant.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Len returns the number of instants in the interval.
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

// Overlaps reports whether the two intervals share an instant.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Empty() && !o.Empty() && iv.Start < o.End && o.Start < iv.End
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// Removal is one (e, τ) pair of the paper's removal operator: edge Edge is
// forced absent during each interval of During.
type Removal struct {
	Edge   int
	During []Interval
}

// removed reports whether the removal suppresses its edge at time t.
func (rm Removal) removed(t int) bool {
	for _, iv := range rm.During {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// Without implements the evolving graph G \ {(e1, τ1), ..., (ek, τk)} of
// Section 2.1: edge e is present at t in the result iff it is present in g
// and no removal (e, τ) with t ∈ τ exists.
type Without struct {
	base     EvolvingGraph
	removals []Removal
}

// NewWithout applies the removal operator to g. The removals slice is copied
// so later mutation by the caller cannot corrupt the graph.
func NewWithout(g EvolvingGraph, removals ...Removal) *Without {
	rs := make([]Removal, len(removals))
	for i, rm := range removals {
		rs[i] = Removal{Edge: rm.Edge, During: append([]Interval(nil), rm.During...)}
	}
	return &Without{base: g, removals: rs}
}

// Ring implements EvolvingGraph.
func (w *Without) Ring() ring.Ring { return w.base.Ring() }

// Present implements EvolvingGraph.
func (w *Without) Present(e, t int) bool {
	if !w.base.Present(e, t) {
		return false
	}
	for _, rm := range w.removals {
		if rm.Edge == e && rm.removed(t) {
			return false
		}
	}
	return true
}

// Removals returns a copy of the removal list.
func (w *Without) Removals() []Removal {
	rs := make([]Removal, len(w.removals))
	for i, rm := range w.removals {
		rs[i] = Removal{Edge: rm.Edge, During: append([]Interval(nil), rm.During...)}
	}
	return rs
}

// EventualMissing is an evolving graph with exactly one eventual missing
// edge: edge Edge behaves as in the base graph before time From and is
// absent forever afterwards. This is the canonical hard instance for
// PEF_3+ (Section 3): the extremities of the missing edge become the
// sentinel posts of Lemma 3.7.
type EventualMissing struct {
	base EvolvingGraph
	edge int
	from int
}

// NewEventualMissing wraps base so that edge is permanently absent from time
// from onwards.
func NewEventualMissing(base EvolvingGraph, edge, from int) *EventualMissing {
	if !base.Ring().ValidEdge(edge) {
		panic(fmt.Sprintf("dyngraph: invalid eventual missing edge %d", edge))
	}
	return &EventualMissing{base: base, edge: edge, from: from}
}

// Ring implements EvolvingGraph.
func (g *EventualMissing) Ring() ring.Ring { return g.base.Ring() }

// Present implements EvolvingGraph.
func (g *EventualMissing) Present(e, t int) bool {
	if e == g.edge && t >= g.from {
		return false
	}
	return g.base.Present(e, t)
}

// Edge returns the index of the eventual missing edge.
func (g *EventualMissing) Edge() int { return g.edge }

// From returns the first instant at which the edge is gone forever.
func (g *EventualMissing) From() int { return g.from }

// Func adapts a presence function to the EvolvingGraph interface.
type Func struct {
	R ring.Ring
	F func(e, t int) bool
}

// Ring implements EvolvingGraph.
func (f Func) Ring() ring.Ring { return f.R }

// Present implements EvolvingGraph.
func (f Func) Present(e, t int) bool {
	if !f.R.ValidEdge(e) || t < 0 {
		return false
	}
	return f.F(e, t)
}
