package dyngraph

import (
	"testing"

	"pef/internal/ring"
)

func TestStaticAlwaysPresent(t *testing.T) {
	g := NewStatic(5)
	for _, tt := range []int{0, 1, 100, 1 << 20} {
		for e := 0; e < 5; e++ {
			if !g.Present(e, tt) {
				t.Fatalf("edge %d absent at t=%d on static graph", e, tt)
			}
		}
	}
	if g.Present(5, 0) || g.Present(-1, 0) || g.Present(0, -1) {
		t.Fatal("out-of-range queries must be false")
	}
}

func TestEdgesAt(t *testing.T) {
	g := NewEventualMissing(NewStatic(4), 2, 10)
	s := EdgesAt(g, 5)
	if !s.IsFull() {
		t.Fatalf("before removal: %v", s)
	}
	s = EdgesAt(g, 10)
	if s.Contains(2) || s.Count() != 3 {
		t.Fatalf("after removal: %v", s)
	}
}

func TestIntervalSemantics(t *testing.T) {
	iv := Incl(3, 5) // paper's {3,4,5}
	if iv.Len() != 3 || !iv.Contains(3) || !iv.Contains(5) || iv.Contains(6) || iv.Contains(2) {
		t.Fatalf("Incl(3,5) = %v", iv)
	}
	if (Interval{Start: 4, End: 4}).Len() != 0 {
		t.Fatal("empty interval has non-zero length")
	}
	if !(Interval{0, 3}).Overlaps(Interval{2, 5}) {
		t.Fatal("overlapping intervals not detected")
	}
	if (Interval{0, 3}).Overlaps(Interval{3, 5}) {
		t.Fatal("touching half-open intervals must not overlap")
	}
	if (Interval{2, 2}).Overlaps(Interval{0, 9}) {
		t.Fatal("empty interval cannot overlap")
	}
	if got := (Interval{1, 4}).String(); got != "[1,4)" {
		t.Fatalf("String = %q", got)
	}
}

func TestWithoutOperator(t *testing.T) {
	// G \ {(e1, τ1), (e2, τ2)} exactly as in Section 2.1.
	g := NewWithout(NewStatic(6),
		Removal{Edge: 0, During: []Interval{Incl(2, 4), Incl(8, 8)}},
		Removal{Edge: 3, During: []Interval{Incl(0, 1)}},
	)
	cases := []struct {
		e, t    int
		present bool
	}{
		{0, 1, true}, {0, 2, false}, {0, 4, false}, {0, 5, true},
		{0, 8, false}, {0, 9, true},
		{3, 0, false}, {3, 1, false}, {3, 2, true},
		{1, 3, true}, {5, 100, true},
	}
	for _, c := range cases {
		if got := g.Present(c.e, c.t); got != c.present {
			t.Errorf("Present(%d,%d) = %v, want %v", c.e, c.t, got, c.present)
		}
	}
}

func TestWithoutCopiesRemovals(t *testing.T) {
	during := []Interval{Incl(0, 5)}
	rm := Removal{Edge: 1, During: during}
	g := NewWithout(NewStatic(4), rm)
	during[0] = Incl(100, 200) // caller mutation must not affect g
	if g.Present(1, 3) {
		t.Fatal("mutation of caller's slice leaked into Without")
	}
	rs := g.Removals()
	rs[0].Edge = 99 // returned copy must be independent
	if g.Removals()[0].Edge != 1 {
		t.Fatal("Removals returned shared storage")
	}
}

func TestEventualMissingAccessors(t *testing.T) {
	g := NewEventualMissing(NewStatic(4), 1, 7)
	if g.Edge() != 1 || g.From() != 7 {
		t.Fatal("accessors wrong")
	}
	if !g.Present(1, 6) || g.Present(1, 7) || g.Present(1, 1000) {
		t.Fatal("eventual missing semantics wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid edge accepted")
		}
	}()
	NewEventualMissing(NewStatic(4), 9, 0)
}

func TestFuncAdapter(t *testing.T) {
	g := Func{R: ring.New(4), F: func(e, t int) bool { return e == t%4 }}
	if !g.Present(2, 2) || g.Present(1, 2) {
		t.Fatal("Func semantics wrong")
	}
	if g.Present(-1, 0) || g.Present(0, -1) || g.Present(4, 0) {
		t.Fatal("Func must reject out-of-range queries")
	}
}
