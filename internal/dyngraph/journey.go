package dyngraph

import (
	"fmt"

	"pef/internal/ring"
)

// Hop is one edge traversal of a journey: the edge is crossed at instant
// Depart (it must be present then) and the walker arrives at the far
// endpoint at instant Depart+1.
type Hop struct {
	Edge   int
	Depart int
}

// Journey is a temporal path (Section 2.1, citing Casteigts et al.): an
// alternating sequence of waits and hops from Src starting at time Start.
// The zero Journey (no hops) is the trivial journey staying on Src.
type Journey struct {
	Src   int
	Start int
	Hops  []Hop
}

// Dest returns the final node of the journey on the given ring.
func (j Journey) Dest(r ring.Ring) int {
	cur := j.Src
	for _, h := range j.Hops {
		a, b := r.EdgeEndpoints(h.Edge)
		switch cur {
		case a:
			cur = b
		case b:
			cur = a
		default:
			// Validate reports this precisely; Dest just walks.
			return cur
		}
	}
	return cur
}

// Arrival returns the instant at which the journey completes: Start for the
// trivial journey, last hop departure + 1 otherwise.
func (j Journey) Arrival() int {
	if len(j.Hops) == 0 {
		return j.Start
	}
	return j.Hops[len(j.Hops)-1].Depart + 1
}

// Duration returns Arrival - Start.
func (j Journey) Duration() int { return j.Arrival() - j.Start }

// Length returns the number of hops (the topological length).
func (j Journey) Length() int { return len(j.Hops) }

// Validate checks that the journey is realizable in g: departures are
// non-decreasing and no earlier than Start, every hop's edge is adjacent to
// the walker's current node, and every edge is present at its departure
// instant.
func (j Journey) Validate(g EvolvingGraph) error {
	r := g.Ring()
	if !r.ValidNode(j.Src) {
		return fmt.Errorf("dyngraph: journey source %d outside ring of %d nodes", j.Src, r.Size())
	}
	cur := j.Src
	now := j.Start
	for i, h := range j.Hops {
		if h.Depart < now {
			return fmt.Errorf("dyngraph: hop %d departs at %d before ready time %d", i, h.Depart, now)
		}
		a, b := r.EdgeEndpoints(h.Edge)
		var next int
		switch cur {
		case a:
			next = b
		case b:
			next = a
		default:
			return fmt.Errorf("dyngraph: hop %d uses edge %d not adjacent to node %d", i, h.Edge, cur)
		}
		if !g.Present(h.Edge, h.Depart) {
			return fmt.Errorf("dyngraph: hop %d crosses edge %d at %d while absent", i, h.Edge, h.Depart)
		}
		cur = next
		now = h.Depart + 1
	}
	return nil
}

// ForemostArrivals computes, for every node, the earliest instant at which a
// walker leaving src at time start can be located there, exploring presence
// up to the given horizon. Unreachable nodes (within the horizon) get -1.
// This is the foremost-journey computation of Xuan, Ferreira and Jarry,
// specialized to rings: O(horizon · n).
func ForemostArrivals(g EvolvingGraph, src, start, horizon int) []int {
	r := g.Ring()
	arrival := make([]int, r.Size())
	for i := range arrival {
		arrival[i] = -1
	}
	if !r.ValidNode(src) || start < 0 {
		return arrival
	}
	arrival[src] = start
	reached := 1
	for t := start; t < horizon && reached < r.Size(); t++ {
		for e := 0; e < r.Edges(); e++ {
			if !g.Present(e, t) {
				continue
			}
			a, b := r.EdgeEndpoints(e)
			if arrival[a] >= 0 && arrival[a] <= t && arrival[b] < 0 {
				arrival[b] = t + 1
				reached++
			}
			if arrival[b] >= 0 && arrival[b] <= t && arrival[a] < 0 {
				arrival[a] = t + 1
				reached++
			}
		}
	}
	return arrival
}

// ForemostJourney returns a journey from src (departing no earlier than
// start) arriving at dst at the earliest possible instant within the
// horizon, or ok=false if dst is unreachable on the horizon.
func ForemostJourney(g EvolvingGraph, src, dst, start, horizon int) (Journey, bool) {
	r := g.Ring()
	j := Journey{Src: src, Start: start}
	if !r.ValidNode(src) || !r.ValidNode(dst) {
		return j, false
	}
	if src == dst {
		return j, true
	}
	type pred struct {
		node int
		hop  Hop
	}
	arrival := make([]int, r.Size())
	preds := make([]pred, r.Size())
	for i := range arrival {
		arrival[i] = -1
	}
	arrival[src] = start
	for t := start; t < horizon; t++ {
		if arrival[dst] >= 0 {
			break
		}
		for e := 0; e < r.Edges(); e++ {
			if !g.Present(e, t) {
				continue
			}
			a, b := r.EdgeEndpoints(e)
			if arrival[a] >= 0 && arrival[a] <= t && arrival[b] < 0 {
				arrival[b] = t + 1
				preds[b] = pred{node: a, hop: Hop{Edge: e, Depart: t}}
			}
			if arrival[b] >= 0 && arrival[b] <= t && arrival[a] < 0 {
				arrival[a] = t + 1
				preds[a] = pred{node: b, hop: Hop{Edge: e, Depart: t}}
			}
		}
	}
	if arrival[dst] < 0 {
		return j, false
	}
	// Walk predecessors back from dst.
	var rev []Hop
	for cur := dst; cur != src; cur = preds[cur].node {
		rev = append(rev, preds[cur].hop)
	}
	j.Hops = make([]Hop, len(rev))
	for i := range rev {
		j.Hops[i] = rev[len(rev)-1-i]
	}
	return j, true
}

// ShortestJourney returns a journey from src to dst departing no earlier
// than start that minimizes the number of hops (topological length), within
// the horizon. Among journeys of minimal length it arrives foremost.
func ShortestJourney(g EvolvingGraph, src, dst, start, horizon int) (Journey, bool) {
	r := g.Ring()
	j := Journey{Src: src, Start: start}
	if !r.ValidNode(src) || !r.ValidNode(dst) {
		return j, false
	}
	if src == dst {
		return j, true
	}
	// best[v] = earliest arrival at v using exactly h hops (current layer).
	const inf = int(^uint(0) >> 1)
	type trail struct {
		hops []Hop
		at   int
	}
	layer := map[int]trail{src: {at: start}}
	// A ring journey never needs more than n hops if it is hop-minimal
	// (revisiting a node cannot reduce length on a cycle of n nodes).
	for h := 1; h <= r.Size(); h++ {
		next := map[int]trail{}
		for v, tr := range layer {
			for _, d := range []ring.Direction{ring.CW, ring.CCW} {
				e := r.EdgeTowards(v, d)
				u := r.Next(v, d)
				// Earliest instant >= tr.at at which e is present.
				depart := -1
				for t := tr.at; t < horizon; t++ {
					if g.Present(e, t) {
						depart = t
						break
					}
				}
				if depart < 0 {
					continue
				}
				arr := depart + 1
				if prev, ok := next[u]; !ok || arr < prev.at {
					hops := make([]Hop, len(tr.hops)+1)
					copy(hops, tr.hops)
					hops[len(tr.hops)] = Hop{Edge: e, Depart: depart}
					next[u] = trail{hops: hops, at: arr}
				}
			}
		}
		if tr, ok := next[dst]; ok {
			j.Hops = tr.hops
			return j, true
		}
		if len(next) == 0 {
			break
		}
		layer = next
	}
	return j, false
}

// FastestJourney returns a journey from src to dst departing no earlier
// than start that minimizes duration (arrival - departure), scanning
// departure instants within the horizon.
func FastestJourney(g EvolvingGraph, src, dst, start, horizon int) (Journey, bool) {
	best := Journey{}
	found := false
	// No journey can beat one instant per hop along a shortest underlying
	// path, which on a ring is the ring distance.
	lower := g.Ring().Dist(src, dst)
	for s := start; s < horizon; s++ {
		j, ok := ForemostJourney(g, src, dst, s, horizon)
		if !ok {
			continue
		}
		if !found || j.Duration() < best.Duration() {
			best = j
			found = true
		}
		if found && best.Duration() == lower {
			break
		}
	}
	return best, found
}

// ConnectedOverTimeReport is the result of a finite-horizon verification of
// the connected-over-time property.
type ConnectedOverTimeReport struct {
	// OK is true when every probed (source, destination, start) triple has
	// a journey within the horizon.
	OK bool
	// Failures lists the violating triples, capped at 16 entries.
	Failures []JourneyProbe
	// MaxArrivalLag is the largest observed arrival-start over all probes.
	MaxArrivalLag int
}

// JourneyProbe identifies one reachability query of the verification.
type JourneyProbe struct {
	Src, Dst, Start int
}

// JourneyScan is the online counterpart of VerifyConnectedOverTime: an
// accumulator fed one presence set per instant that maintains the foremost
// arrival times from every (probe start, source node) pair. It holds
// O(|starts| · n²) integers and no edge-set history, so campaign and
// experiment runs can verify connectivity-over-time without recording the
// evolving graph at all. Feeding it E_0, E_1, ... in order reproduces
// VerifyConnectedOverTime(g, horizon, starts) exactly.
type JourneyScan struct {
	r      ring.Ring
	starts []int
	// arrivals[si*n+src][node] is the foremost arrival at node for a
	// walker leaving src at starts[si]; -1 while unreached.
	arrivals [][]int
	// unreached[li] counts the -1 entries left in layer li — the online
	// equivalent of ForemostArrivals' reached-everything early exit, so
	// completed layers cost nothing per round.
	unreached []int
	next      int // the instant the next Observe must carry
}

// NewJourneyScan creates a scan over r probing the given start instants.
func NewJourneyScan(r ring.Ring, starts []int) *JourneyScan {
	n := r.Size()
	js := &JourneyScan{r: r, starts: append([]int(nil), starts...)}
	js.arrivals = make([][]int, len(starts)*n)
	js.unreached = make([]int, len(starts)*n)
	for si, s := range js.starts {
		for src := 0; src < n; src++ {
			arr := make([]int, n)
			for i := range arr {
				arr[i] = -1
			}
			remaining := n
			if r.ValidNode(src) && s >= 0 {
				arr[src] = s
				remaining--
			}
			js.arrivals[si*n+src] = arr
			js.unreached[si*n+src] = remaining
		}
	}
	return js
}

// Observe folds the presence set of instant t into every active layer.
// Instants must arrive consecutively from 0.
func (js *JourneyScan) Observe(t int, edges ring.EdgeSet) {
	if t != js.next {
		panic(fmt.Sprintf("dyngraph: JourneyScan observed instant %d, expected %d", t, js.next))
	}
	js.next++
	n := js.r.Size()
	for si, s := range js.starts {
		if t < s {
			continue
		}
		for src := 0; src < n; src++ {
			li := si*n + src
			if js.unreached[li] == 0 {
				continue
			}
			arr := js.arrivals[li]
			for e := 0; e < js.r.Edges(); e++ {
				if !edges.Contains(e) {
					continue
				}
				a, b := js.r.EdgeEndpoints(e)
				if arr[a] >= 0 && arr[a] <= t && arr[b] < 0 {
					arr[b] = t + 1
					js.unreached[li]--
				}
				if arr[b] >= 0 && arr[b] <= t && arr[a] < 0 {
					arr[a] = t + 1
					js.unreached[li]--
				}
			}
		}
	}
}

// Horizon returns the number of observed instants.
func (js *JourneyScan) Horizon() int { return js.next }

// Report summarizes the scan, byte-compatible with the offline
// VerifyConnectedOverTime on the same schedule and horizon.
func (js *JourneyScan) Report() ConnectedOverTimeReport {
	n := js.r.Size()
	rep := ConnectedOverTimeReport{OK: true}
	for si, s := range js.starts {
		for src := 0; src < n; src++ {
			arr := js.arrivals[si*n+src]
			for dst, a := range arr {
				if dst == src {
					continue
				}
				if a < 0 {
					rep.OK = false
					if len(rep.Failures) < 16 {
						rep.Failures = append(rep.Failures, JourneyProbe{Src: src, Dst: dst, Start: s})
					}
					continue
				}
				if lag := a - s; lag > rep.MaxArrivalLag {
					rep.MaxArrivalLag = lag
				}
			}
		}
	}
	return rep
}

// VerifyConnectedOverTime checks the paper's dynamicity assumption on a
// finite horizon: from each probe start time, every node must be reachable
// from every other through a journey completing before the horizon. An
// infinite connected-over-time graph satisfies this for every horizon large
// enough; generators in package dynamics are tested against it.
func VerifyConnectedOverTime(g EvolvingGraph, horizon int, starts []int) ConnectedOverTimeReport {
	r := g.Ring()
	rep := ConnectedOverTimeReport{OK: true}
	for _, s := range starts {
		for src := 0; src < r.Size(); src++ {
			arr := ForemostArrivals(g, src, s, horizon)
			for dst, a := range arr {
				if dst == src {
					continue
				}
				if a < 0 {
					rep.OK = false
					if len(rep.Failures) < 16 {
						rep.Failures = append(rep.Failures, JourneyProbe{Src: src, Dst: dst, Start: s})
					}
					continue
				}
				if lag := a - s; lag > rep.MaxArrivalLag {
					rep.MaxArrivalLag = lag
				}
			}
		}
	}
	return rep
}
