package dyngraph

import (
	"testing"
	"testing/quick"

	"pef/internal/prng"
	"pef/internal/ring"
)

func TestForemostArrivalsStatic(t *testing.T) {
	g := NewStatic(6)
	arr := ForemostArrivals(g, 0, 0, 100)
	want := []int{0, 1, 2, 3, 2, 1}
	for v, a := range arr {
		if a != want[v] {
			t.Fatalf("arrivals = %v, want %v", arr, want)
		}
	}
}

func TestForemostArrivalsBlockedUntil(t *testing.T) {
	// A 3-ring where everything is frozen until t=5.
	g := Func{R: ring.New(3), F: func(e, t int) bool { return t >= 5 }}
	arr := ForemostArrivals(g, 0, 0, 100)
	if arr[1] != 6 || arr[2] != 6 {
		t.Fatalf("arrivals = %v, want [0 6 6]", arr)
	}
	// Unreachable within a short horizon.
	arr = ForemostArrivals(g, 0, 0, 4)
	if arr[1] != -1 || arr[2] != -1 {
		t.Fatalf("arrivals within horizon 4 = %v", arr)
	}
}

func TestForemostJourneyReconstruction(t *testing.T) {
	// Edge 0 closed until t=3; edge 2 (the CCW route 0->2) open always on
	// a 3-ring: the foremost journey to node 1 goes the long way.
	g := Func{R: ring.New(3), F: func(e, t int) bool {
		if e == 0 {
			return t >= 3
		}
		return true
	}}
	j, ok := ForemostJourney(g, 0, 1, 0, 50)
	if !ok {
		t.Fatal("no journey found")
	}
	if err := j.Validate(g); err != nil {
		t.Fatalf("invalid journey: %v", err)
	}
	if j.Dest(g.Ring()) != 1 {
		t.Fatalf("journey ends at %d", j.Dest(g.Ring()))
	}
	if j.Arrival() != 2 || j.Length() != 2 {
		t.Fatalf("arrival=%d length=%d, want 2 hops arriving at 2", j.Arrival(), j.Length())
	}
}

func TestTrivialJourney(t *testing.T) {
	g := NewStatic(4)
	j, ok := ForemostJourney(g, 2, 2, 7, 50)
	if !ok || j.Length() != 0 || j.Arrival() != 7 || j.Duration() != 0 {
		t.Fatalf("trivial journey = %+v ok=%v", j, ok)
	}
	if err := j.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestJourneyValidateRejects(t *testing.T) {
	g := NewEventualMissing(NewStatic(4), 0, 0) // edge 0 never present
	bad := Journey{Src: 0, Start: 0, Hops: []Hop{{Edge: 0, Depart: 0}}}
	if bad.Validate(g) == nil {
		t.Fatal("crossing an absent edge accepted")
	}
	bad = Journey{Src: 0, Start: 5, Hops: []Hop{{Edge: 3, Depart: 2}}}
	if bad.Validate(g) == nil {
		t.Fatal("departing before ready time accepted")
	}
	bad = Journey{Src: 0, Start: 0, Hops: []Hop{{Edge: 2, Depart: 0}}}
	if bad.Validate(g) == nil {
		t.Fatal("non-adjacent hop accepted")
	}
	bad = Journey{Src: 9, Start: 0}
	if bad.Validate(g) == nil {
		t.Fatal("invalid source accepted")
	}
}

func TestShortestJourneyPrefersFewHops(t *testing.T) {
	// On a 5-ring with everything open, 0 -> 2 clockwise takes 2 hops
	// (the CCW route takes 3).
	g := NewStatic(5)
	j, ok := ShortestJourney(g, 0, 2, 0, 50)
	if !ok || j.Length() != 2 {
		t.Fatalf("shortest = %+v ok=%v", j, ok)
	}
	if err := j.Validate(g); err != nil {
		t.Fatal(err)
	}
	// When the short way is blocked for a long time, the shortest journey
	// still takes it (hop-minimal, not time-minimal): edges 0 and 1 closed
	// until t=20.
	g2 := Func{R: ring.New(5), F: func(e, t int) bool {
		if e == 0 || e == 1 {
			return t >= 20
		}
		return true
	}}
	j2, ok := ShortestJourney(g2, 0, 2, 0, 100)
	if !ok || j2.Length() != 2 {
		t.Fatalf("blocked shortest = %+v ok=%v", j2, ok)
	}
	if j2.Arrival() < 21 {
		t.Fatalf("shortest journey arrived at %d, must wait for t=20", j2.Arrival())
	}
}

func TestFastestJourneyWaitsForBetterDeparture(t *testing.T) {
	// Edge 0 opens at t=10 making a 1-hop trip 0->1 possible; before that
	// the CCW route (4 hops) is open. Foremost from 0 arrives via the long
	// way at t=4; fastest departs at 10 and takes 1 instant.
	g := Func{R: ring.New(5), F: func(e, t int) bool {
		if e == 0 {
			return t >= 10
		}
		return true
	}}
	fore, ok := ForemostJourney(g, 0, 1, 0, 100)
	if !ok || fore.Arrival() != 4 {
		t.Fatalf("foremost = %+v", fore)
	}
	fast, ok := FastestJourney(g, 0, 1, 0, 100)
	if !ok || fast.Duration() != 1 {
		t.Fatalf("fastest = %+v duration=%d", fast, fast.Duration())
	}
	if err := fast.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyConnectedOverTime(t *testing.T) {
	ok := VerifyConnectedOverTime(NewStatic(5), 60, []int{0, 10})
	if !ok.OK || ok.MaxArrivalLag == 0 {
		t.Fatalf("static ring report = %+v", ok)
	}
	// A permanently split ring (two opposite edges gone) must fail.
	split := NewWithout(NewStatic(6),
		Removal{Edge: 0, During: []Interval{{0, 1 << 30}}},
		Removal{Edge: 3, During: []Interval{{0, 1 << 30}}},
	)
	rep := VerifyConnectedOverTime(split, 60, []int{0})
	if rep.OK || len(rep.Failures) == 0 {
		t.Fatalf("split ring accepted: %+v", rep)
	}
}

func TestJourneyValidityProperty(t *testing.T) {
	// Foremost journeys on random Bernoulli-like schedules are always
	// valid and arrive when claimed.
	prop := func(seed uint64, n8, dst8 uint8) bool {
		n := int(n8%10) + 3
		dst := int(dst8) % n
		g := Func{R: ring.New(n), F: func(e, t int) bool {
			return prng.BoolAt(seed, uint64(e), uint64(t), 0.5)
		}}
		j, ok := ForemostJourney(g, 0, dst, 0, 40*n)
		arr := ForemostArrivals(g, 0, 0, 40*n)
		if !ok {
			return arr[dst] == -1
		}
		if j.Validate(g) != nil {
			return false
		}
		return j.Dest(g.Ring()) == dst && j.Arrival() == arr[dst]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortestNeverLongerThanForemostProperty(t *testing.T) {
	prop := func(seed uint64, n8, dst8 uint8) bool {
		n := int(n8%8) + 3
		dst := int(dst8) % n
		g := Func{R: ring.New(n), F: func(e, t int) bool {
			return prng.BoolAt(seed, uint64(e), uint64(t), 0.6)
		}}
		fore, okF := ForemostJourney(g, 0, dst, 0, 60*n)
		short, okS := ShortestJourney(g, 0, dst, 0, 60*n)
		if okF != okS {
			// The shortest search bounds hops by n, which on these dense
			// schedules is never the binding constraint; both should agree
			// on reachability.
			return !okF && !okS
		}
		if !okF {
			return true
		}
		return short.Length() <= fore.Length() && short.Validate(g) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
