package dyngraph

import (
	"math/bits"

	"pef/internal/ring"
)

// This file holds the dyngraph side of the lockstep engine: per-lane edge
// schedules materialized as per-edge lane columns, plus in-place fast
// paths for the package's own graph wrappers.

// WordGraph is the lane engine's materialization fast path: a graph whose
// E_t fits one presence word hands it over directly, skipping the EdgeSet
// and its per-edge plumbing. The word must be bit-identical to what
// EdgesInto reports at the same t — including each family's own
// out-of-range conventions — with bit e set iff edge e is present and
// bits at and past the edge count zero. ok=false means this instance
// cannot take the fast path — typically a wrapper whose base graph has
// none, or a ring wider than the word — and the caller must fall back to
// EdgesInto. Implementations may precompute lazily on first call; they
// need not be safe for concurrent use (each lane belongs to one run).
type WordGraph interface {
	EvolvingGraph
	// EdgeWordAt returns E_t as a presence word on rings of at most 64
	// edges.
	EdgeWordAt(t int) (word uint64, ok bool)
}

// LaneColumns materializes E_t of up to 64 evolving graphs — one per seed
// lane — and writes it column-wise into cols: bit l of cols[e] reports
// whether lane l's graph has edge e present at time t. Only lanes with
// their bit set in active are materialized; retired lanes contribute zero
// bits. sets provides per-lane scratch (len(sets) == len(graphs), each
// sized by EdgesInto on first use), so steady-state materialization does
// not allocate. The ring may have at most 64 edges (cols is indexed by
// edge and sliced to the edge count by the caller).
//
// Graphs implementing WordGraph produce their presence word directly; the
// rest go through the exact same EdgesInto call the scalar engine makes,
// in increasing t order per lane, so streaming (stateful) graphs observe
// the same call sequence. Either way every lane's schedule is
// bit-identical to its scalar run.
//
// The return value counts the active lanes that took the WordGraph fast
// path this instant (the rest fell back to EdgesInto) — telemetry's
// fast-path hit signal; callers that don't care simply drop it.
func LaneColumns(graphs []EvolvingGraph, sets []ring.EdgeSet, active uint64, t int, cols []uint64) (wordLanes int) {
	var m [64]uint64
	for w := active; w != 0; w &= w - 1 {
		l := bits.TrailingZeros64(w)
		if wg, ok := graphs[l].(WordGraph); ok {
			if word, ok := wg.EdgeWordAt(t); ok {
				m[l] = word
				wordLanes++
				continue
			}
		}
		EdgesInto(graphs[l], t, &sets[l])
		m[l] = sets[l].Word(0)
	}
	ring.Transpose64(&m)
	for e := range cols {
		cols[e] = m[e]
	}
	return wordLanes
}

// edgeMask returns the full presence word of an n-edge ring (n <= 64).
func edgeMask(n int) uint64 {
	return ^uint64(0) >> uint(64-n)
}

// EdgesAtInto implements InPlaceGraph: every valid edge is present.
func (s Static) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := s.r.Edges()
	if dst.Size() != n {
		*dst = ring.NewEdgeSet(n)
	}
	if t < 0 {
		dst.Clear()
		return
	}
	for wi := 0; wi < dst.Words(); wi++ {
		dst.SetWord(wi, ^uint64(0)) // SetWord masks the tail
	}
}

// EdgesAtInto implements InPlaceGraph: the base set, minus the missing
// edge once t reaches From.
func (g *EventualMissing) EdgesAtInto(t int, dst *ring.EdgeSet) {
	n := g.base.Ring().Edges()
	if dst.Size() != n {
		*dst = ring.NewEdgeSet(n)
	}
	if t < 0 {
		dst.Clear()
		return
	}
	EdgesInto(g.base, t, dst)
	if t >= g.from {
		dst.Remove(g.edge)
	}
}

// EdgeWordAt implements WordGraph: the full mask.
func (s Static) EdgeWordAt(t int) (uint64, bool) {
	n := s.r.Edges()
	if n > 64 {
		return 0, false
	}
	if t < 0 {
		return 0, true
	}
	return edgeMask(n), true
}

// EdgeWordAt implements WordGraph: the base word, minus the missing edge
// once t reaches From.
func (g *EventualMissing) EdgeWordAt(t int) (uint64, bool) {
	wb, ok := g.base.(WordGraph)
	if !ok {
		return 0, false
	}
	if t < 0 {
		if g.base.Ring().Edges() > 64 {
			return 0, false
		}
		return 0, true
	}
	w, ok := wb.EdgeWordAt(t)
	if !ok {
		return 0, false
	}
	if t >= g.from {
		w &^= 1 << uint(g.edge)
	}
	return w, true
}

// EdgeWordAt implements WordGraph: the stored presence word, with the same
// clamping as Present.
func (rec *Recorded) EdgeWordAt(t int) (uint64, bool) {
	if rec.r.Edges() > 64 {
		return 0, false
	}
	if rec.Horizon() == 0 {
		return 0, true
	}
	if t < 0 {
		t = 0
	}
	if t >= rec.Horizon() {
		t = rec.Horizon() - 1
	}
	return rec.at(t).Word(0), true
}

// verify interface compliance at compile time.
var (
	_ InPlaceGraph = Static{}
	_ InPlaceGraph = (*EventualMissing)(nil)
	_ WordGraph    = Static{}
	_ WordGraph    = (*EventualMissing)(nil)
	_ WordGraph    = (*Recorded)(nil)
)
