package dyngraph

import (
	"testing"

	"pef/internal/ring"
)

func TestStaticAndEventualMissingInPlace(t *testing.T) {
	const n = 9
	graphs := []struct {
		name string
		g    InPlaceGraph
	}{
		{"static", NewStatic(n)},
		{"eventual-missing", NewEventualMissing(NewStatic(n), 4, 10)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			var dst ring.EdgeSet
			for instant := -1; instant < 30; instant++ {
				tc.g.EdgesAtInto(instant, &dst)
				for e := 0; e < n; e++ {
					if got, want := dst.Contains(e), tc.g.Present(e, instant); got != want {
						t.Fatalf("t=%d edge %d: in-place %v, Present %v", instant, e, got, want)
					}
				}
			}
		})
	}
}

// TestLaneColumns checks column materialization against per-lane EdgesAt:
// bit l of cols[e] must equal lane l's presence of edge e, and retired
// lanes must contribute zero bits.
func TestLaneColumns(t *testing.T) {
	const n, lanes = 7, 5
	graphs := make([]EvolvingGraph, lanes)
	for l := range graphs {
		if l%2 == 0 {
			graphs[l] = NewStatic(n)
		} else {
			graphs[l] = NewEventualMissing(NewStatic(n), l%n, 3)
		}
	}
	sets := make([]ring.EdgeSet, lanes)
	cols := make([]uint64, n)
	active := uint64(1<<lanes) - 1
	active &^= 1 << 2 // lane 2 retired
	for instant := 0; instant < 8; instant++ {
		LaneColumns(graphs, sets, active, instant, cols)
		for e := 0; e < n; e++ {
			for l := 0; l < lanes; l++ {
				want := false
				if active&(1<<uint(l)) != 0 {
					want = graphs[l].Present(e, instant)
				}
				if got := cols[e]&(1<<uint(l)) != 0; got != want {
					t.Fatalf("t=%d edge %d lane %d: col bit %v, want %v", instant, e, l, got, want)
				}
			}
			if cols[e]>>lanes != 0 {
				t.Fatalf("t=%d edge %d: bits set beyond lane count: %#x", instant, e, cols[e])
			}
		}
	}
}

// TestEdgeWordMatchesEdgesInto checks this package's word fast paths
// against their EdgesInto sets, including the Recorded clamping rules.
func TestEdgeWordMatchesEdgesInto(t *testing.T) {
	const n = 9
	rec := NewRecorded(n)
	for i := 0; i < 12; i++ {
		set := ring.NewEdgeSet(n)
		for e := 0; e < n; e++ {
			if (e+i)%3 != 0 {
				set.Add(e)
			}
		}
		rec.Append(set)
	}
	graphs := []struct {
		name string
		g    WordGraph
	}{
		{"static", NewStatic(n)},
		{"eventual-missing", NewEventualMissing(NewStatic(n), 4, 10)},
		{"recorded", rec},
		{"recorded-empty", NewRecorded(n)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			var dst ring.EdgeSet
			for instant := -1; instant < 30; instant++ {
				EdgesInto(tc.g, instant, &dst)
				w, ok := tc.g.EdgeWordAt(instant)
				if !ok {
					t.Fatalf("t=%d: word path unexpectedly unavailable", instant)
				}
				if want := dst.Word(0); w != want {
					t.Fatalf("t=%d: word %#x, set word %#x", instant, w, want)
				}
			}
		})
	}
}
