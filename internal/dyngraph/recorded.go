package dyngraph

import (
	"encoding/json"
	"fmt"

	"pef/internal/ring"
)

// Recorded is a finite evolving-graph trace: presence sets for the instants
// [0, Horizon). It is the bridge between adaptive adversaries (which decide
// presence online, as a function of robot positions) and the offline
// analysis machinery: the simulator records their decisions and hands the
// result to journeys, convergence checks, and renderers.
//
// Queries beyond the horizon return the last recorded snapshot, so that a
// Recorded obtained from an adversary with a stable suffix can stand in for
// the infinite graph it converges to.
//
// A trace records in one of two modes:
//
//   - Full history (NewRecorded): every snapshot is retained; random access
//     over the whole horizon, serializable, replayable. Required by trace
//     emission and checker replay (mirror construction, convergence).
//   - Streaming (NewStreamingRecorded): only a sliding window of W
//     snapshots is retained in a ring buffer whose slots are reused, so a
//     campaign run holds O(W) instead of O(horizon) edge sets. Random
//     access is limited to the window; reads of evicted instants panic.
//
// Both modes maintain online recurrence accumulators per appended instant
// (last presence, longest absence run, trailing absence), so the
// suffix-window analyses the experiments need — EventuallyMissing,
// RecurrentAt, MaxRun, Bound — never require the evicted history.
type Recorded struct {
	r     ring.Ring
	snaps []ring.EdgeSet // full history, or the streaming ring buffer
	// window is the streaming ring-buffer capacity; 0 means full history.
	window int
	// count is the number of appended instants in streaming mode (full
	// mode uses len(snaps) directly).
	count int

	// Online recurrence accumulators, updated on every Append.
	lastPresent []int // last instant each edge was present, -1 if never
	longestGone []int // longest completed absence run per edge
	goneStart   []int // start of the current absence run, -1 if present
}

// NewRecorded creates an empty full-history trace over an n-node ring.
func NewRecorded(n int) *Recorded {
	rec := &Recorded{r: ring.New(n)}
	rec.initStats()
	return rec
}

// NewStreamingRecorded creates an empty streaming trace over an n-node
// ring retaining a sliding window of window snapshots (window >= 1).
func NewStreamingRecorded(n, window int) *Recorded {
	if window < 1 {
		panic(fmt.Sprintf("dyngraph: streaming window %d below 1", window))
	}
	rec := &Recorded{r: ring.New(n), window: window, snaps: make([]ring.EdgeSet, 0, window)}
	rec.initStats()
	return rec
}

func (rec *Recorded) initStats() {
	edges := rec.r.Edges()
	rec.lastPresent = make([]int, edges)
	rec.longestGone = make([]int, edges)
	rec.goneStart = make([]int, edges)
	for e := 0; e < edges; e++ {
		rec.lastPresent[e] = -1
		rec.longestGone[e] = 0
		rec.goneStart[e] = -1
	}
}

// Record captures g over the instants [0, horizon).
func Record(g EvolvingGraph, horizon int) *Recorded {
	rec := &Recorded{r: g.Ring(), snaps: make([]ring.EdgeSet, 0, horizon)}
	rec.initStats()
	// One scratch set filled in place per instant; Append's clone is the
	// single per-instant allocation.
	scratch := ring.NewEdgeSet(g.Ring().Edges())
	for t := 0; t < horizon; t++ {
		EdgesInto(g, t, &scratch)
		rec.Append(scratch)
	}
	return rec
}

// Streaming reports whether the trace records in streaming (bounded
// window) mode.
func (rec *Recorded) Streaming() bool { return rec.window > 0 }

// Window returns the streaming window size, 0 for full-history traces.
func (rec *Recorded) Window() int { return rec.window }

// Append adds the presence set of the next instant. The set's capacity must
// match the ring's edge count. The set is copied: in full mode into a fresh
// clone, in streaming mode into the reused ring-buffer slot.
func (rec *Recorded) Append(s ring.EdgeSet) {
	if s.Size() != rec.r.Edges() {
		panic(fmt.Sprintf("dyngraph: snapshot size %d does not match ring %d", s.Size(), rec.r.Edges()))
	}
	t := rec.Horizon()
	rec.updateStats(t, s)
	if rec.window == 0 {
		rec.snaps = append(rec.snaps, s.Clone())
		return
	}
	if len(rec.snaps) < rec.window {
		rec.snaps = append(rec.snaps, s.Clone())
	} else {
		rec.snaps[t%rec.window].CopyFrom(s)
	}
	rec.count++
}

// updateStats folds the presence set of instant t into the online
// recurrence accumulators.
func (rec *Recorded) updateStats(t int, s ring.EdgeSet) {
	for e := 0; e < rec.r.Edges(); e++ {
		if s.Contains(e) {
			if rec.goneStart[e] >= 0 {
				if run := t - rec.goneStart[e]; run > rec.longestGone[e] {
					rec.longestGone[e] = run
				}
				rec.goneStart[e] = -1
			}
			rec.lastPresent[e] = t
		} else if rec.goneStart[e] < 0 {
			rec.goneStart[e] = t
		}
	}
}

// Horizon returns the number of recorded instants.
func (rec *Recorded) Horizon() int {
	if rec.window > 0 {
		return rec.count
	}
	return len(rec.snaps)
}

// Oldest returns the first instant still readable: 0 for full-history
// traces, Horizon - Window (clamped at 0) for streaming ones.
func (rec *Recorded) Oldest() int {
	if rec.window == 0 {
		return 0
	}
	if rec.count <= rec.window {
		return 0
	}
	return rec.count - rec.window
}

// at returns the stored presence set of instant t, which must satisfy
// Oldest() <= t < Horizon(). Reads of evicted instants are a programming
// error (an analysis that needs full history ran on a streaming trace).
func (rec *Recorded) at(t int) ring.EdgeSet {
	if t < rec.Oldest() || t >= rec.Horizon() {
		panic(fmt.Sprintf("dyngraph: instant %d outside retained range [%d,%d) of %s trace",
			t, rec.Oldest(), rec.Horizon(), rec.modeName()))
	}
	if rec.window > 0 {
		return rec.snaps[t%rec.window]
	}
	return rec.snaps[t]
}

func (rec *Recorded) modeName() string {
	if rec.window > 0 {
		return "streaming"
	}
	return "recorded"
}

// Ring implements EvolvingGraph.
func (rec *Recorded) Ring() ring.Ring { return rec.r }

// Present implements EvolvingGraph. Instants at or beyond the horizon reuse
// the final snapshot; an empty trace has no edges. On streaming traces,
// reading an instant older than the retained window panics.
func (rec *Recorded) Present(e, t int) bool {
	if t < 0 || rec.Horizon() == 0 {
		return false
	}
	if t >= rec.Horizon() {
		t = rec.Horizon() - 1
	}
	return rec.at(t).Contains(e)
}

// Snapshot returns a copy of the presence set at instant t (clamped to the
// horizon like Present).
func (rec *Recorded) Snapshot(t int) ring.EdgeSet {
	if rec.Horizon() == 0 {
		return ring.NewEdgeSet(rec.r.Edges())
	}
	if t < 0 {
		t = 0
	}
	if t >= rec.Horizon() {
		t = rec.Horizon() - 1
	}
	return rec.at(t).Clone()
}

// EdgesAtInto implements InPlaceGraph: the presence set is copied word by
// word into dst, with the same clamping as Present.
func (rec *Recorded) EdgesAtInto(t int, dst *ring.EdgeSet) {
	if rec.Horizon() == 0 {
		if dst.Size() != rec.r.Edges() {
			*dst = ring.NewEdgeSet(rec.r.Edges())
		}
		dst.Clear()
		return
	}
	if t < 0 {
		t = 0
	}
	if t >= rec.Horizon() {
		t = rec.Horizon() - 1
	}
	dst.CopyFrom(rec.at(t))
}

// LastPresenceOnline returns the last instant at which edge e was present,
// from the online accumulators (no history scan), and ok=false if it was
// never present. Agrees with LastPresence(rec, e, rec.Horizon()) on full
// traces and stays available after eviction on streaming ones.
func (rec *Recorded) LastPresenceOnline(e int) (last int, ok bool) {
	if e < 0 || e >= rec.r.Edges() || rec.lastPresent[e] < 0 {
		return 0, false
	}
	return rec.lastPresent[e], true
}

// MaxAbsenceRunOnline returns the length of the longest absence run of
// edge e over the whole recorded horizon, counting the trailing
// (unresolved) run — the online counterpart of MaxAbsenceRun.
func (rec *Recorded) MaxAbsenceRunOnline(e int) int {
	longest := rec.longestGone[e]
	if rec.goneStart[e] >= 0 {
		if run := rec.Horizon() - rec.goneStart[e]; run > longest {
			longest = run
		}
	}
	return longest
}

// EventuallyMissingOnline returns the edges absent over the whole suffix
// window [Horizon-suffix, Horizon), in increasing order — the online
// counterpart of EventuallyMissingEdges, answered from the accumulators so
// streaming traces need not retain the suffix.
func (rec *Recorded) EventuallyMissingOnline(suffix int) []int {
	h := rec.Horizon()
	if suffix > h {
		suffix = h
	}
	var out []int
	for e := 0; e < rec.r.Edges(); e++ {
		if rec.lastPresent[e] < h-suffix {
			out = append(out, e)
		}
	}
	return out
}

// RecurrenceBoundOnline is the online counterpart of RecurrenceBound: the
// smallest Δ such that every edge is present at least once in every closed
// window of Δ instants, or ok=false when some edge looks eventually
// missing on this horizon.
func (rec *Recorded) RecurrenceBoundOnline() (delta int, ok bool) {
	h := rec.Horizon()
	delta = 1
	for e := 0; e < rec.r.Edges(); e++ {
		if rec.lastPresent[e] < 0 {
			return 0, false
		}
		completed := rec.longestGone[e]
		trailing := 0
		if rec.goneStart[e] >= 0 {
			trailing = h - rec.goneStart[e]
		}
		if trailing > completed {
			// The edge has been absent for longer than ever before and the
			// horizon cannot tell whether it will return.
			return 0, false
		}
		if completed+1 > delta {
			delta = completed + 1
		}
	}
	return delta, true
}

// recordedJSON is the serialization schema: one []int of present edges per
// instant.
type recordedJSON struct {
	Nodes int     `json:"nodes"`
	Snaps [][]int `json:"snapshots"`
}

// MarshalJSON implements json.Marshaler. Streaming traces have evicted
// part of their history and cannot be serialized.
func (rec *Recorded) MarshalJSON() ([]byte, error) {
	if rec.window > 0 {
		return nil, fmt.Errorf("dyngraph: streaming recorded trace is not serializable (window %d of %d instants retained)", rec.window, rec.Horizon())
	}
	out := recordedJSON{Nodes: rec.r.Size(), Snaps: make([][]int, len(rec.snaps))}
	for i, s := range rec.snaps {
		out.Snaps[i] = s.Edges()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. Decoded traces are always
// full-history.
func (rec *Recorded) UnmarshalJSON(data []byte) error {
	var in recordedJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dyngraph: decoding recorded trace: %w", err)
	}
	if in.Nodes < ring.MinSize {
		return fmt.Errorf("dyngraph: recorded trace has %d nodes, need at least %d", in.Nodes, ring.MinSize)
	}
	r := ring.New(in.Nodes)
	fresh := &Recorded{r: r}
	fresh.initStats()
	for i, edges := range in.Snaps {
		s := ring.NewEdgeSet(r.Edges())
		for _, e := range edges {
			if !r.ValidEdge(e) {
				return fmt.Errorf("dyngraph: recorded trace instant %d has invalid edge %d", i, e)
			}
			s.Add(e)
		}
		fresh.Append(s)
	}
	*rec = *fresh
	return nil
}

// DecomposeRemovals expresses a recorded schedule in the notation of the
// impossibility proofs: the list of (edge, interval) removals such that
// the schedule equals Static \ {(e1, τ1), ..., (ek, τk)} on its horizon.
// This is the inverse of the Without operator restricted to static bases;
// the property rec ≡ NewWithout(Static, DecomposeRemovals(rec)...) is
// tested in the package tests. Requires full history.
func (rec *Recorded) DecomposeRemovals() []Removal {
	var out []Removal
	for e := 0; e < rec.r.Edges(); e++ {
		ivs := AbsenceIntervals(rec, e, rec.Horizon())
		if len(ivs) > 0 {
			out = append(out, Removal{Edge: e, During: ivs})
		}
	}
	return out
}

// CommonPrefix returns the length of the longest common prefix of the two
// traces: the largest p such that the presence sets agree on every instant
// in [0, p). This is the quantity that drives the convergence framework of
// Braud-Santoni et al. (package convergence). Requires full history.
func CommonPrefix(a, b *Recorded) int {
	if a.r.Size() != b.r.Size() {
		return 0
	}
	n := min(a.Horizon(), b.Horizon())
	for t := 0; t < n; t++ {
		if !a.at(t).Equal(b.at(t)) {
			return t
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
