package dyngraph

import (
	"encoding/json"
	"fmt"

	"pef/internal/ring"
)

// Recorded is a finite evolving-graph trace: presence sets for the instants
// [0, Horizon). It is the bridge between adaptive adversaries (which decide
// presence online, as a function of robot positions) and the offline
// analysis machinery: the simulator records their decisions and hands the
// result to journeys, convergence checks, and renderers.
//
// Queries beyond the horizon return the last recorded snapshot, so that a
// Recorded obtained from an adversary with a stable suffix can stand in for
// the infinite graph it converges to.
type Recorded struct {
	r     ring.Ring
	snaps []ring.EdgeSet
}

// NewRecorded creates an empty trace over an n-node ring.
func NewRecorded(n int) *Recorded {
	return &Recorded{r: ring.New(n)}
}

// Record captures g over the instants [0, horizon).
func Record(g EvolvingGraph, horizon int) *Recorded {
	rec := &Recorded{r: g.Ring(), snaps: make([]ring.EdgeSet, 0, horizon)}
	for t := 0; t < horizon; t++ {
		rec.snaps = append(rec.snaps, EdgesAt(g, t))
	}
	return rec
}

// Append adds the presence set of the next instant. The set's capacity must
// match the ring's edge count.
func (rec *Recorded) Append(s ring.EdgeSet) {
	if s.Size() != rec.r.Edges() {
		panic(fmt.Sprintf("dyngraph: snapshot size %d does not match ring %d", s.Size(), rec.r.Edges()))
	}
	rec.snaps = append(rec.snaps, s.Clone())
}

// Horizon returns the number of recorded instants.
func (rec *Recorded) Horizon() int { return len(rec.snaps) }

// Ring implements EvolvingGraph.
func (rec *Recorded) Ring() ring.Ring { return rec.r }

// Present implements EvolvingGraph. Instants at or beyond the horizon reuse
// the final snapshot; an empty trace has no edges.
func (rec *Recorded) Present(e, t int) bool {
	if t < 0 || len(rec.snaps) == 0 {
		return false
	}
	if t >= len(rec.snaps) {
		t = len(rec.snaps) - 1
	}
	return rec.snaps[t].Contains(e)
}

// Snapshot returns a copy of the presence set at instant t (clamped to the
// horizon like Present).
func (rec *Recorded) Snapshot(t int) ring.EdgeSet {
	if len(rec.snaps) == 0 {
		return ring.NewEdgeSet(rec.r.Edges())
	}
	if t < 0 {
		t = 0
	}
	if t >= len(rec.snaps) {
		t = len(rec.snaps) - 1
	}
	return rec.snaps[t].Clone()
}

// recordedJSON is the serialization schema: one []int of present edges per
// instant.
type recordedJSON struct {
	Nodes int     `json:"nodes"`
	Snaps [][]int `json:"snapshots"`
}

// MarshalJSON implements json.Marshaler.
func (rec *Recorded) MarshalJSON() ([]byte, error) {
	out := recordedJSON{Nodes: rec.r.Size(), Snaps: make([][]int, len(rec.snaps))}
	for i, s := range rec.snaps {
		out.Snaps[i] = s.Edges()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (rec *Recorded) UnmarshalJSON(data []byte) error {
	var in recordedJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dyngraph: decoding recorded trace: %w", err)
	}
	if in.Nodes < ring.MinSize {
		return fmt.Errorf("dyngraph: recorded trace has %d nodes, need at least %d", in.Nodes, ring.MinSize)
	}
	r := ring.New(in.Nodes)
	snaps := make([]ring.EdgeSet, len(in.Snaps))
	for i, edges := range in.Snaps {
		s := ring.NewEdgeSet(r.Edges())
		for _, e := range edges {
			if !r.ValidEdge(e) {
				return fmt.Errorf("dyngraph: recorded trace instant %d has invalid edge %d", i, e)
			}
			s.Add(e)
		}
		snaps[i] = s
	}
	rec.r = r
	rec.snaps = snaps
	return nil
}

// DecomposeRemovals expresses a recorded schedule in the notation of the
// impossibility proofs: the list of (edge, interval) removals such that
// the schedule equals Static \ {(e1, τ1), ..., (ek, τk)} on its horizon.
// This is the inverse of the Without operator restricted to static bases;
// the property rec ≡ NewWithout(Static, DecomposeRemovals(rec)...) is
// tested in the package tests.
func (rec *Recorded) DecomposeRemovals() []Removal {
	var out []Removal
	for e := 0; e < rec.r.Edges(); e++ {
		ivs := AbsenceIntervals(rec, e, rec.Horizon())
		if len(ivs) > 0 {
			out = append(out, Removal{Edge: e, During: ivs})
		}
	}
	return out
}

// CommonPrefix returns the length of the longest common prefix of the two
// traces: the largest p such that the presence sets agree on every instant
// in [0, p). This is the quantity that drives the convergence framework of
// Braud-Santoni et al. (package convergence).
func CommonPrefix(a, b *Recorded) int {
	if a.r.Size() != b.r.Size() {
		return 0
	}
	n := min(a.Horizon(), b.Horizon())
	for t := 0; t < n; t++ {
		if !a.snaps[t].Equal(b.snaps[t]) {
			return t
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
