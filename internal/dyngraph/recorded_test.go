package dyngraph

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"pef/internal/prng"
	"pef/internal/ring"
)

func TestRecordMatchesSource(t *testing.T) {
	src := NewEventualMissing(NewStatic(5), 3, 4)
	rec := Record(src, 10)
	if rec.Horizon() != 10 {
		t.Fatalf("horizon = %d", rec.Horizon())
	}
	for tt := 0; tt < 10; tt++ {
		for e := 0; e < 5; e++ {
			if rec.Present(e, tt) != src.Present(e, tt) {
				t.Fatalf("mismatch at e=%d t=%d", e, tt)
			}
		}
	}
}

func TestRecordedClampsBeyondHorizon(t *testing.T) {
	rec := NewRecorded(4)
	rec.Append(ring.EdgeSetOf(4, 0, 1))
	rec.Append(ring.EdgeSetOf(4, 2))
	// Beyond the horizon the last snapshot persists.
	if !rec.Present(2, 100) || rec.Present(0, 100) {
		t.Fatal("clamping semantics wrong")
	}
	if rec.Present(0, -1) {
		t.Fatal("negative time must be absent")
	}
	empty := NewRecorded(4)
	if empty.Present(0, 0) {
		t.Fatal("empty trace has no edges")
	}
	if !empty.Snapshot(3).IsEmpty() {
		t.Fatal("empty trace snapshot must be empty")
	}
}

func TestAppendSizeMismatchPanics(t *testing.T) {
	rec := NewRecorded(4)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	rec.Append(ring.NewEdgeSet(5))
}

func TestRecordedJSONRoundTrip(t *testing.T) {
	src := NewRecorded(6)
	src.Append(ring.EdgeSetOf(6, 0, 2, 4))
	src.Append(ring.EdgeSetOf(6))
	src.Append(ring.FullEdgeSet(6))
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var back Recorded
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Horizon() != 3 || back.Ring().Size() != 6 {
		t.Fatalf("decoded horizon=%d n=%d", back.Horizon(), back.Ring().Size())
	}
	for tt := 0; tt < 3; tt++ {
		if !back.Snapshot(tt).Equal(src.Snapshot(tt)) {
			t.Fatalf("instant %d differs after round trip", tt)
		}
	}
}

func TestRecordedJSONRejectsGarbage(t *testing.T) {
	var rec Recorded
	for _, bad := range []string{
		`{"nodes":1,"snapshots":[]}`,    // below MinSize
		`{"nodes":4,"snapshots":[[9]]}`, // invalid edge
		`{"nodes":"x"}`,                 // wrong type
	} {
		if err := json.Unmarshal([]byte(bad), &rec); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestRecordedJSONRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, n8 uint8, h8 uint8) bool {
		n := int(n8%14) + 2
		h := int(h8 % 20)
		src := NewRecorded(n)
		s := prng.NewSource(seed)
		for i := 0; i < h; i++ {
			set := ring.NewEdgeSet(n)
			for e := 0; e < n; e++ {
				if s.Bool(0.5) {
					set.Add(e)
				}
			}
			src.Append(set)
		}
		data, err := json.Marshal(src)
		if err != nil {
			return false
		}
		var back Recorded
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.Horizon() != src.Horizon() {
			return false
		}
		for tt := 0; tt < src.Horizon(); tt++ {
			if !back.Snapshot(tt).Equal(src.Snapshot(tt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeRemovals(t *testing.T) {
	rec := NewRecorded(4)
	rows := [][]int{
		{0, 1, 2, 3},
		{1, 2},
		{1, 2},
		{0, 1, 2, 3},
		{0, 2, 3},
	}
	for _, row := range rows {
		rec.Append(ring.EdgeSetOf(4, row...))
	}
	removals := rec.DecomposeRemovals()
	// Edge 0 absent during [1,3), edge 1 during [4,5), edge 3 during [1,3).
	if len(removals) != 3 {
		t.Fatalf("removals = %+v", removals)
	}
	back := NewWithout(NewStatic(4), removals...)
	for tt := 0; tt < rec.Horizon(); tt++ {
		for e := 0; e < 4; e++ {
			if back.Present(e, tt) != rec.Present(e, tt) {
				t.Fatalf("decomposition mismatch at e=%d t=%d", e, tt)
			}
		}
	}
}

func TestDecomposeRemovalsProperty(t *testing.T) {
	prop := func(seed uint64, n8, h8 uint8) bool {
		n := int(n8%10) + 2
		h := int(h8%24) + 1
		rec := NewRecorded(n)
		s := prng.NewSource(seed)
		for i := 0; i < h; i++ {
			set := ring.NewEdgeSet(n)
			for e := 0; e < n; e++ {
				if s.Bool(0.6) {
					set.Add(e)
				}
			}
			rec.Append(set)
		}
		back := NewWithout(NewStatic(n), rec.DecomposeRemovals()...)
		for tt := 0; tt < h; tt++ {
			for e := 0; e < n; e++ {
				if back.Present(e, tt) != rec.Present(e, tt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefix(t *testing.T) {
	a := NewRecorded(4)
	b := NewRecorded(4)
	for i := 0; i < 5; i++ {
		a.Append(ring.FullEdgeSet(4))
		b.Append(ring.FullEdgeSet(4))
	}
	if got := CommonPrefix(a, b); got != 5 {
		t.Fatalf("identical traces: prefix %d", got)
	}
	b.Append(ring.EdgeSetOf(4, 1))
	a.Append(ring.FullEdgeSet(4))
	if got := CommonPrefix(a, b); got != 5 {
		t.Fatalf("diverging traces: prefix %d", got)
	}
	c := NewRecorded(5)
	if got := CommonPrefix(a, c); got != 0 {
		t.Fatalf("different sizes: prefix %d", got)
	}
}

// pseudoSchedule builds a deterministic, irregular 6-edge schedule with
// absences of several lengths, appended to every given trace.
func pseudoSchedule(h int, recs ...*Recorded) {
	n := 6
	for t := 0; t < h; t++ {
		set := ring.NewEdgeSet(n)
		for e := 0; e < n; e++ {
			// Edge e is absent during runs whose length grows with e.
			if (t+3*e)%(5+e) >= e {
				set.Add(e)
			}
		}
		for _, rec := range recs {
			rec.Append(set)
		}
	}
}

// TestStreamingRecordedMatchesOfflineAnalyses drives the same schedule
// into a full trace and a streaming one, then checks that the online
// accumulators reproduce the offline suffix analyses exactly — including
// for suffixes far longer than the retained window.
func TestStreamingRecordedMatchesOfflineAnalyses(t *testing.T) {
	const h, window = 64, 4
	full := NewRecorded(6)
	stream := NewStreamingRecorded(6, window)
	pseudoSchedule(h, full, stream)

	if full.Horizon() != h || stream.Horizon() != h {
		t.Fatalf("horizons: full=%d stream=%d", full.Horizon(), stream.Horizon())
	}
	if !stream.Streaming() || full.Streaming() {
		t.Fatal("mode flags wrong")
	}
	for e := 0; e < 6; e++ {
		wantLast, wantOK := LastPresence(full, e, h)
		gotLast, gotOK := stream.LastPresenceOnline(e)
		if wantOK != gotOK || (wantOK && wantLast != gotLast) {
			t.Fatalf("edge %d: LastPresenceOnline = (%d,%t), offline (%d,%t)", e, gotLast, gotOK, wantLast, wantOK)
		}
		if got, want := stream.MaxAbsenceRunOnline(e), MaxAbsenceRun(full, e, h); got != want {
			t.Fatalf("edge %d: MaxAbsenceRunOnline = %d, offline %d", e, got, want)
		}
		if got, want := full.MaxAbsenceRunOnline(e), MaxAbsenceRun(full, e, h); got != want {
			t.Fatalf("edge %d: full-mode online accumulators diverge: %d vs %d", e, got, want)
		}
	}
	for _, suffix := range []int{1, 7, 32, h} {
		want := EventuallyMissingEdges(full, h, suffix)
		got := stream.EventuallyMissingOnline(suffix)
		if len(want) != len(got) {
			t.Fatalf("suffix %d: EventuallyMissingOnline = %v, offline %v", suffix, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("suffix %d: EventuallyMissingOnline = %v, offline %v", suffix, got, want)
			}
		}
	}
	wantD, wantOK := RecurrenceBound(full, h)
	gotD, gotOK := stream.RecurrenceBoundOnline()
	if wantD != gotD || wantOK != gotOK {
		t.Fatalf("RecurrenceBoundOnline = (%d,%t), offline (%d,%t)", gotD, gotOK, wantD, wantOK)
	}

	// The window keeps the trailing instants readable and bit-identical.
	for tt := h - window; tt < h; tt++ {
		for e := 0; e < 6; e++ {
			if stream.Present(e, tt) != full.Present(e, tt) {
				t.Fatalf("window read differs at edge %d t=%d", e, tt)
			}
		}
	}
	if stream.Oldest() != h-window {
		t.Fatalf("Oldest = %d, want %d", stream.Oldest(), h-window)
	}
	// Evicted instants panic rather than lie.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("evicted read did not panic")
			}
		}()
		stream.Present(0, 0)
	}()
	// Streaming traces refuse serialization.
	if _, err := stream.MarshalJSON(); err == nil {
		t.Fatal("streaming trace serialized")
	}
}

// TestJourneyScanMatchesVerifyConnectedOverTime feeds the same schedule to
// the online scan and the offline verifier and demands identical reports.
func TestJourneyScanMatchesVerifyConnectedOverTime(t *testing.T) {
	const h = 48
	full := NewRecorded(6)
	pseudoSchedule(h, full)
	starts := []int{0, 13, 29}

	scan := NewJourneyScan(full.Ring(), starts)
	for tt := 0; tt < h; tt++ {
		scan.Observe(tt, full.Snapshot(tt))
	}
	got := scan.Report()
	want := VerifyConnectedOverTime(full, h, starts)
	if got.OK != want.OK || got.MaxArrivalLag != want.MaxArrivalLag || len(got.Failures) != len(want.Failures) {
		t.Fatalf("scan report %+v, offline %+v", got, want)
	}
	for i := range want.Failures {
		if got.Failures[i] != want.Failures[i] {
			t.Fatalf("failure %d: %+v vs %+v", i, got.Failures[i], want.Failures[i])
		}
	}
	if scan.Horizon() != h {
		t.Fatalf("scan horizon %d", scan.Horizon())
	}
	// Out-of-order feeding is a bug, not a silent miscount.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-order Observe did not panic")
			}
		}()
		scan.Observe(3, full.Snapshot(3))
	}()
}

// TestJourneyScanDisconnectedDetected checks the negative direction: a
// schedule that strands one node is reported exactly like the offline
// verifier reports it.
func TestJourneyScanDisconnectedDetected(t *testing.T) {
	const h = 24
	rec := NewRecorded(4)
	for tt := 0; tt < h; tt++ {
		// Node 2 is isolated forever: edges 1 (1-2) and 2 (2-3) never appear.
		rec.Append(ring.EdgeSetOf(4, 0, 3))
	}
	starts := []int{0, 8}
	scan := NewJourneyScan(rec.Ring(), starts)
	for tt := 0; tt < h; tt++ {
		scan.Observe(tt, rec.Snapshot(tt))
	}
	got := scan.Report()
	want := VerifyConnectedOverTime(rec, h, starts)
	if got.OK || got.OK != want.OK || len(got.Failures) != len(want.Failures) {
		t.Fatalf("scan %+v, offline %+v", got, want)
	}
}
