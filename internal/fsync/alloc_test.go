package fsync

import (
	"testing"

	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
)

// TestStepIsAllocationFree is the allocation-discipline guard for the
// round engine: after warm-up, Step must not allocate at all — snapshots
// are double-buffered, presence sets are written in place, occupancy uses
// the count slice. Skipped under -race (instrumented allocation counts).
func TestStepIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cases := []struct {
		name string
		g    dyngraph.EvolvingGraph
	}{
		{"static", dyngraph.NewStatic(16)},
		{"bernoulli", dynamics.NewBernoulli(16, 0.5, 7)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sim, err := New(Config{
				Algorithm:  core.PEF3Plus{},
				Dynamics:   Oblivious{G: c.g},
				Placements: EvenPlacements(16, 3),
			})
			if err != nil {
				t.Fatal(err)
			}
			sim.Run(16) // warm-up: size every scratch buffer
			if allocs := testing.AllocsPerRun(200, func() { sim.Step() }); allocs != 0 {
				t.Fatalf("Step allocates %v objects per round in steady state, want 0", allocs)
			}
		})
	}
}

// TestStepWithCheckersIsAllocationFree extends the guard to the standard
// checker stack of the possibility experiments: the visit tracker reads
// the reused snapshots without copying.
func TestStepWithCheckersIsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	// Import cycle note: spec imports fsync, so the tracker cannot be used
	// here; an ObserverFunc reading the event covers the observer path.
	reads := 0
	sim, err := New(Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   Oblivious{G: dyngraph.NewStatic(16)},
		Placements: EvenPlacements(16, 3),
		Observers: []Observer{ObserverFunc(func(ev RoundEvent) {
			for _, p := range ev.After.Positions {
				reads += p
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(16)
	if allocs := testing.AllocsPerRun(200, func() { sim.Step() }); allocs != 0 {
		t.Fatalf("observed Step allocates %v objects per round, want 0", allocs)
	}
}

// TestAcquireReusesSimulators checks the pooling contract: a released
// simulator's backing slices serve the next acquisition of the same shape
// without reallocation of the round scratch.
func TestAcquireReusesSimulators(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   Oblivious{G: dyngraph.NewStatic(8)},
		Placements: EvenPlacements(8, 3),
	}
	// Warm the pool.
	for i := 0; i < 4; i++ {
		sim, err := Acquire(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(8)
		sim.Release()
	}
	allocs := testing.AllocsPerRun(50, func() {
		sim, err := Acquire(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(8)
		sim.Release()
	})
	// Per-run allocations must be the O(k) core construction only, never
	// O(horizon): three robot cores plus interface boxing.
	if allocs > 8 {
		t.Fatalf("pooled acquire+run allocates %v objects, want <= 8", allocs)
	}
}
