package fsync

import (
	"testing"

	"pef/internal/dyngraph"
	"pef/internal/robot"
)

// benchSim builds the canonical Step benchmark workload: PEF_3+-shaped
// three-robot team on a 16-node static ring (the hot path of every sweep
// and campaign, without dynamics-generation noise).
func benchSim(b *testing.B, n, k int) *Simulator {
	b.Helper()
	sim, err := New(Config{
		Algorithm:  robot.Func{AlgName: "bench-keep", Rule: func(d robot.LocalDir, _ robot.View) robot.LocalDir { return d }},
		Dynamics:   Oblivious{G: dyngraph.NewStatic(n)},
		Placements: EvenPlacements(n, k),
	})
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkStep measures one synchronous round in steady state. The
// allocs/op of this benchmark is the quantity the zero-allocation round
// engine drives to zero.
func BenchmarkStep(b *testing.B) {
	sim := benchSim(b, 16, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
