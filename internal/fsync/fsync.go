// Package fsync implements the fully synchronous execution model of
// Section 2.3 of the paper: an execution is the infinite sequence
// (G_0, γ_0), (G_1, γ_1), ... where γ_{t+1} results from all robots
// synchronously and atomically performing one Look–Compute–Move cycle on
// the snapshot G_t.
//
// The simulator supports both oblivious dynamics (pure functions of time,
// package dynamics) and adaptive adversaries (functions of the current
// robot positions, package adversary) through the Dynamics interface, and
// records everything needed by the checkers: positions, global directions,
// robot states, tower events, and the realized evolving graph.
//
// The round engine is allocation-free in steady state: Before/After
// snapshots are double-buffered per simulator, presence sets are written
// in place (InPlaceDynamics / dyngraph.EdgesInto), occupancy uses a
// count slice instead of a map, and simulators themselves are pooled via
// Acquire/Release so million-scenario campaigns reuse backing slices
// across jobs. The price of the reuse is a retention contract: a
// RoundEvent's slices (and its Edges set) are valid only until the next
// Step on the same simulator — observers that keep data call Clone.
package fsync

import (
	"fmt"
	"sync"

	"pef/internal/dyngraph"
	"pef/internal/ring"
	"pef/internal/robot"
)

// Snapshot is the externally observable part of a configuration at the
// start of a round: where the robots are, which global direction each one
// points to, and each robot's persistent state. Adaptive adversaries
// receive it (the proofs' adversaries only use positions — they wait for
// robots to move — but checkers use all of it).
type Snapshot struct {
	// T is the time instant of the configuration.
	T int
	// Positions[i] is the node of robot i.
	Positions []int
	// GlobalDirs[i] is the global direction robot i currently points to.
	GlobalDirs []ring.Direction
	// States[i] is robot i's compact persistent state (robot.Core.State).
	// Render with String at the trace/report boundary only.
	States []robot.StateCode
	// MovedPrev[i] reports whether robot i moved during the previous round
	// (as observed by the scheduler, not by the robot).
	MovedPrev []bool
}

// cloneSlice deep-copies a slice preserving nil-vs-empty: a nil input
// stays nil, an empty non-nil input stays empty non-nil.
func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	c := make([]T, len(s))
	copy(c, s)
	return c
}

// Clone returns a deep copy of the snapshot. Nil and empty slices are
// preserved as such, so cloned snapshots compare like their originals.
func (s Snapshot) Clone() Snapshot {
	return Snapshot{
		T:          s.T,
		Positions:  cloneSlice(s.Positions),
		GlobalDirs: cloneSlice(s.GlobalDirs),
		States:     cloneSlice(s.States),
		MovedPrev:  cloneSlice(s.MovedPrev),
	}
}

// copyFrom overwrites dst in place with src, reusing backing arrays. It is
// the engine's double-buffer refill; the public retention-safe path stays
// Clone.
func (s *Snapshot) copyFrom(src Snapshot) {
	s.T = src.T
	s.Positions = append(s.Positions[:0], src.Positions...)
	s.GlobalDirs = append(s.GlobalDirs[:0], src.GlobalDirs...)
	s.States = append(s.States[:0], src.States...)
	s.MovedPrev = append(s.MovedPrev[:0], src.MovedPrev...)
}

// occScratch pools occupancy count slices, shared by Snapshot.Towers and
// any other positional aggregation that runs outside a simulator (the
// engine itself keeps a per-simulator slice instead).
var occScratch = sync.Pool{New: func() any { return new([]int) }}

// occupancyCounts tallies the robots per node into counts, growing it to
// cover at least max+1 nodes, and returns the slice. Counts beyond the
// touched nodes are zero; callers must re-zero the touched entries before
// returning a pooled slice (countsReset).
func occupancyCounts(positions []int, counts []int) []int {
	max := -1
	for _, p := range positions {
		if p > max {
			max = p
		}
	}
	if cap(counts) < max+1 {
		counts = make([]int, max+1)
	}
	counts = counts[:max+1]
	for _, p := range positions {
		counts[p]++
	}
	return counts
}

// countsReset re-zeroes exactly the entries touched by positions.
func countsReset(counts []int, positions []int) {
	for _, p := range positions {
		counts[p] = 0
	}
}

// Towers returns the nodes occupied by more than one robot, with the robot
// indices at each, in increasing node order — the order is deterministic
// by construction (an ascending scan over the occupancy counts), not by a
// post-hoc sort.
func (s Snapshot) Towers() []Tower {
	scratch := occScratch.Get().(*[]int)
	counts := occupancyCounts(s.Positions, *scratch)
	var towers []Tower
	for node, c := range counts {
		if c <= 1 {
			continue
		}
		robots := make([]int, 0, c)
		for i, p := range s.Positions {
			if p == node {
				robots = append(robots, i)
			}
		}
		towers = append(towers, Tower{Node: node, Robots: robots})
	}
	countsReset(counts, s.Positions)
	*scratch = counts
	occScratch.Put(scratch)
	return towers
}

// Tower is a multiplicity point: more than one robot on one node
// (Section 2.2).
type Tower struct {
	Node   int
	Robots []int
}

// Dynamics decides the presence set E_t of each round. Oblivious dynamics
// ignore the snapshot; adaptive adversaries use it.
type Dynamics interface {
	// Ring returns the underlying ring.
	Ring() ring.Ring
	// EdgesAt returns E_t given the configuration at the start of round t.
	// The returned set's capacity must equal the ring's edge count.
	EdgesAt(t int, snap Snapshot) ring.EdgeSet
}

// InPlaceDynamics is an optional extension of Dynamics: implementations
// write E_t into a caller-provided set, so the steady-state round engine
// allocates no presence set. The engine falls back to EdgesAt otherwise.
type InPlaceDynamics interface {
	Dynamics
	// EdgesAtInto overwrites dst with E_t given the configuration at the
	// start of round t. dst always arrives sized to the ring's edge count.
	EdgesAtInto(t int, snap Snapshot, dst *ring.EdgeSet)
}

// Oblivious adapts a position-independent evolving graph to Dynamics.
type Oblivious struct {
	G dyngraph.EvolvingGraph
}

// Ring implements Dynamics.
func (o Oblivious) Ring() ring.Ring { return o.G.Ring() }

// EdgesAt implements Dynamics.
func (o Oblivious) EdgesAt(t int, _ Snapshot) ring.EdgeSet {
	return dyngraph.EdgesAt(o.G, t)
}

// EdgesAtInto implements InPlaceDynamics.
func (o Oblivious) EdgesAtInto(t int, _ Snapshot, dst *ring.EdgeSet) {
	dyngraph.EdgesInto(o.G, t, dst)
}

// Placement is the initial condition of one robot.
type Placement struct {
	// Node is the robot's initial node.
	Node int
	// Chirality maps the robot's local directions to global ones.
	Chirality robot.Chirality
	// Core optionally overrides the algorithm-provided initial state —
	// used by the self-stabilization probe (E-X6) to start from arbitrary
	// states. Nil means Algorithm.NewCore().
	Core robot.Core
}

// Config assembles a simulation.
type Config struct {
	// Algorithm is the uniform algorithm every robot runs.
	Algorithm robot.Algorithm
	// Dynamics supplies E_t each round.
	Dynamics Dynamics
	// Placements give the initial configuration γ_0.
	Placements []Placement
	// AllowTowers permits initial configurations that are not towerless
	// (the paper's well-initiated executions are towerless; only the
	// self-stabilization probe sets this).
	AllowTowers bool
	// AllowFull permits k >= n configurations (rejected by default, as the
	// paper requires k < n).
	AllowFull bool
	// Observers are notified after every round.
	Observers []Observer
	// RecordGraph, when true, captures the realized evolving graph into a
	// dyngraph.Recorded retrievable via Simulator.RecordedGraph — needed
	// when Dynamics is adaptive and the analyses want to replay it.
	RecordGraph bool
	// RecordWindow bounds the retained history when RecordGraph is set:
	// values > 0 record in streaming mode (a sliding window of that many
	// snapshots plus online recurrence accumulators) instead of the full
	// O(horizon) trace. Zero keeps full history for trace emission and
	// checker replay.
	RecordWindow int
	// Metrics, when non-nil, receives engine counters (rounds simulated,
	// pool traffic). Recording is flushed once per run at Release/Reset —
	// never inside Step — so enabling it cannot perturb the hot path or
	// any output byte.
	Metrics *Metrics
}

// Observer receives one event per completed round.
type Observer interface {
	// ObserveRound is called after round t completed, with the presence
	// set used, the configuration before the round (time t) and after it
	// (time t+1). The event's slices are reused by the next Step: clone
	// whatever must outlive the round.
	ObserveRound(ev RoundEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev RoundEvent)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(ev RoundEvent) { f(ev) }

// RoundEvent describes one completed round. Its slices (including both
// snapshots and the presence set) are backed by per-simulator buffers and
// are valid until the next Step; retaining observers must Clone.
type RoundEvent struct {
	// T is the round index: the transition from time T to time T+1.
	T int
	// Edges is the presence set E_T the round ran on.
	Edges ring.EdgeSet
	// Before is the configuration at time T (after its Look, i.e. the
	// pre-round snapshot the adversary saw).
	Before Snapshot
	// After is the configuration at time T+1.
	After Snapshot
	// Moved[i] reports whether robot i crossed an edge this round.
	Moved []bool
	// Flipped[i] reports whether robot i changed its pointed global
	// direction during this round's Compute.
	Flipped []bool
}

type simRobot struct {
	core  robot.Core
	chir  robot.Chirality
	node  int
	moved bool // moved during the previous round, scheduler-observed
}

// Simulator executes rounds. Create with New (or Acquire, which reuses a
// pooled simulator), then call Step or Run.
type Simulator struct {
	r         ring.Ring
	dyn       Dynamics
	dynInto   InPlaceDynamics // non-nil when dyn supports in-place edges
	robots    []simRobot
	t         int
	observers []Observer
	recorded  *dyngraph.Recorded
	metrics   *Metrics

	// Steady-state scratch: reused by every Step, sized once per Reset.
	before  Snapshot
	after   Snapshot
	edges   ring.EdgeSet // presence-set buffer for InPlaceDynamics
	views   []robot.View
	moved   []bool
	flipped []bool
	occ     []int // occupancy counts indexed by node
}

// New validates the configuration and builds a simulator positioned at
// time 0.
func New(cfg Config) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reconfigures the simulator in place for a fresh run at time 0,
// reusing its backing slices where shapes allow. It validates cfg exactly
// like New; on error the simulator is left unusable until the next
// successful Reset.
func (s *Simulator) Reset(cfg Config) error {
	s.flushMetrics() // a direct re-Reset still credits the finished run
	if cfg.Algorithm == nil {
		return fmt.Errorf("fsync: nil algorithm")
	}
	if cfg.Dynamics == nil {
		return fmt.Errorf("fsync: nil dynamics")
	}
	r := cfg.Dynamics.Ring()
	k := len(cfg.Placements)
	if k == 0 {
		return fmt.Errorf("fsync: no robots placed")
	}
	if !cfg.AllowFull && k >= r.Size() {
		return fmt.Errorf("fsync: %d robots on %d nodes violates k < n", k, r.Size())
	}
	s.r = r
	s.dyn = cfg.Dynamics
	s.dynInto, _ = cfg.Dynamics.(InPlaceDynamics)
	s.metrics = cfg.Metrics
	s.t = 0
	s.robots = resize(s.robots, k)
	s.occ = resize(s.occ, r.Size())
	for i := range s.occ {
		s.occ[i] = 0
	}
	for i, p := range cfg.Placements {
		if !r.ValidNode(p.Node) {
			return fmt.Errorf("fsync: robot %d placed on invalid node %d", i, p.Node)
		}
		if !p.Chirality.Valid() {
			return fmt.Errorf("fsync: robot %d has invalid chirality %d", i, p.Chirality)
		}
		// occ doubles as the duplicate-placement detector; it is re-zeroed
		// at the top of every Reset, so error returns may leave it dirty.
		if s.occ[p.Node] > 0 && !cfg.AllowTowers {
			return fmt.Errorf("fsync: initial configuration has a tower on node %d (not towerless)", p.Node)
		}
		s.occ[p.Node]++
		core := p.Core
		if core == nil {
			core = cfg.Algorithm.NewCore()
		}
		s.robots[i] = simRobot{core: core, chir: p.Chirality, node: p.Node}
	}
	for _, p := range cfg.Placements {
		s.occ[p.Node] = 0
	}
	s.observers = append(s.observers[:0], cfg.Observers...)
	s.recorded = nil
	if cfg.RecordGraph {
		if cfg.RecordWindow > 0 {
			s.recorded = dyngraph.NewStreamingRecorded(r.Size(), cfg.RecordWindow)
		} else {
			s.recorded = dyngraph.NewRecorded(r.Size())
		}
	}
	if s.edges.Size() != r.Edges() {
		s.edges = ring.NewEdgeSet(r.Edges())
	}
	s.views = resize(s.views, k)
	s.moved = resize(s.moved, k)
	s.flipped = resize(s.flipped, k)
	s.fillSnapshot(&s.before)
	s.fillSnapshot(&s.after)
	return nil
}

// resize returns a slice of length n, reusing s's backing array when it is
// large enough.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// simPool backs Acquire/Release: batch sweeps and scenario campaigns run
// millions of (experiment × seed) jobs, and reusing simulators across them
// keeps the per-job cost at a Reset instead of a full reallocation.
var simPool = sync.Pool{New: func() any { return new(Simulator) }}

// Acquire returns a pooled simulator configured with cfg. It is New with
// recycled backing slices; pair it with Release when the run is done.
func Acquire(cfg Config) (*Simulator, error) {
	s := simPool.Get().(*Simulator)
	if err := s.Reset(cfg); err != nil {
		simPool.Put(s)
		return nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Acquires.Inc()
	}
	return s, nil
}

// Release returns the simulator to the pool. The caller must not use s (or
// any un-cloned RoundEvent data it produced) afterwards. Reference-typed
// fields that could pin large object graphs are dropped here; the scratch
// slices are the point of the pool and stay.
func (s *Simulator) Release() {
	if s.metrics != nil {
		s.metrics.Releases.Inc()
	}
	s.flushMetrics()
	s.dyn = nil
	s.dynInto = nil
	s.recorded = nil
	clear(s.observers) // drop observer references, not just the length
	s.observers = s.observers[:0]
	for i := range s.robots {
		s.robots[i].core = nil
	}
	simPool.Put(s)
}

// flushMetrics credits the finished run's round count to the wired
// Metrics and detaches them. Called from Release and from the top of
// Reset (a direct re-Reset without Release still accounts its run);
// idempotent because the metrics pointer is cleared on first flush.
func (s *Simulator) flushMetrics() {
	if s.metrics == nil {
		return
	}
	s.metrics.Rounds.Add(int64(s.t))
	s.metrics = nil
}

// Ring returns the underlying ring.
func (s *Simulator) Ring() ring.Ring { return s.r }

// Now returns the current time instant.
func (s *Simulator) Now() int { return s.t }

// Robots returns the number of robots.
func (s *Simulator) Robots() int { return len(s.robots) }

// Snapshot returns the externally observable configuration at the current
// instant. The returned snapshot is freshly allocated and safe to retain.
func (s *Simulator) Snapshot() Snapshot {
	snap := Snapshot{
		Positions:  make([]int, len(s.robots)),
		GlobalDirs: make([]ring.Direction, len(s.robots)),
		States:     make([]robot.StateCode, len(s.robots)),
		MovedPrev:  make([]bool, len(s.robots)),
	}
	s.fillSnapshot(&snap)
	return snap
}

// fillSnapshot overwrites snap in place with the current configuration,
// reusing its backing slices.
func (s *Simulator) fillSnapshot(snap *Snapshot) {
	snap.T = s.t
	snap.Positions = resize(snap.Positions, len(s.robots))
	snap.GlobalDirs = resize(snap.GlobalDirs, len(s.robots))
	snap.States = resize(snap.States, len(s.robots))
	snap.MovedPrev = resize(snap.MovedPrev, len(s.robots))
	for i := range s.robots {
		rb := &s.robots[i]
		snap.Positions[i] = rb.node
		snap.GlobalDirs[i] = globalDir(rb.chir, rb.core.Dir())
		snap.States[i] = rb.core.State()
		snap.MovedPrev[i] = rb.moved
	}
}

// globalDir converts a robot's local pointed direction to the external
// observer's global direction.
func globalDir(c robot.Chirality, d robot.LocalDir) ring.Direction {
	if c.GlobalSign(d) > 0 {
		return ring.CW
	}
	return ring.CCW
}

// RecordedGraph returns the realized evolving graph when Config.RecordGraph
// was set, and nil otherwise.
func (s *Simulator) RecordedGraph() *dyngraph.Recorded { return s.recorded }

// Step runs one synchronous round and returns its event. The event's
// slices are valid until the next Step on this simulator.
func (s *Simulator) Step() RoundEvent {
	s.fillSnapshot(&s.before)
	edges := s.edges
	if s.dynInto != nil {
		s.dynInto.EdgesAtInto(s.t, s.before, &s.edges)
		edges = s.edges
	} else {
		edges = s.dyn.EdgesAt(s.t, s.before)
	}
	if edges.Size() != s.r.Edges() {
		panic(fmt.Sprintf("fsync: dynamics produced edge set of size %d for ring with %d edges", edges.Size(), s.r.Edges()))
	}
	if s.recorded != nil {
		s.recorded.Append(edges)
	}

	for i := range s.robots {
		s.occ[s.robots[i].node]++
	}

	// Look: gather each robot's view on E_t.
	for i := range s.robots {
		rb := &s.robots[i]
		pointed := globalDir(rb.chir, rb.core.Dir())
		s.views[i] = robot.View{
			EdgeDir:     edges.Contains(s.r.EdgeTowards(rb.node, pointed)),
			EdgeOpp:     edges.Contains(s.r.EdgeTowards(rb.node, pointed.Opposite())),
			OtherRobots: s.occ[rb.node] > 1,
		}
	}
	for i := range s.robots {
		s.occ[s.robots[i].node] = 0
	}

	// Compute: all robots atomically.
	for i := range s.robots {
		rb := &s.robots[i]
		oldGlobal := globalDir(rb.chir, rb.core.Dir())
		rb.core.Compute(s.views[i])
		if !rb.core.Dir().Valid() {
			panic(fmt.Sprintf("fsync: robot %d computed invalid direction", i))
		}
		s.flipped[i] = globalDir(rb.chir, rb.core.Dir()) != oldGlobal
	}

	// Move: all robots atomically, on the same snapshot E_t.
	for i := range s.robots {
		rb := &s.robots[i]
		pointed := globalDir(rb.chir, rb.core.Dir())
		s.moved[i] = false
		if edges.Contains(s.r.EdgeTowards(rb.node, pointed)) {
			rb.node = s.r.Next(rb.node, pointed)
			s.moved[i] = true
		}
		rb.moved = s.moved[i]
	}

	s.t++
	s.fillSnapshot(&s.after)
	ev := RoundEvent{
		T:       s.before.T,
		Edges:   edges,
		Before:  s.before,
		After:   s.after,
		Moved:   s.moved,
		Flipped: s.flipped,
	}
	for _, ob := range s.observers {
		ob.ObserveRound(ev)
	}
	return ev
}

// Run executes rounds until the given horizon (exclusive). It returns the
// final snapshot.
func (s *Simulator) Run(horizon int) Snapshot {
	for s.t < horizon {
		s.Step()
	}
	return s.Snapshot()
}

// AddObserver attaches an observer mid-run (it starts receiving events from
// the next round).
func (s *Simulator) AddObserver(ob Observer) {
	s.observers = append(s.observers, ob)
}
