// Package fsync implements the fully synchronous execution model of
// Section 2.3 of the paper: an execution is the infinite sequence
// (G_0, γ_0), (G_1, γ_1), ... where γ_{t+1} results from all robots
// synchronously and atomically performing one Look–Compute–Move cycle on
// the snapshot G_t.
//
// The simulator supports both oblivious dynamics (pure functions of time,
// package dynamics) and adaptive adversaries (functions of the current
// robot positions, package adversary) through the Dynamics interface, and
// records everything needed by the checkers: positions, global directions,
// robot states, tower events, and the realized evolving graph.
package fsync

import (
	"fmt"

	"pef/internal/dyngraph"
	"pef/internal/ring"
	"pef/internal/robot"
)

// Snapshot is the externally observable part of a configuration at the
// start of a round: where the robots are, which global direction each one
// points to, and each robot's persistent state. Adaptive adversaries
// receive it (the proofs' adversaries only use positions — they wait for
// robots to move — but checkers use all of it).
type Snapshot struct {
	// T is the time instant of the configuration.
	T int
	// Positions[i] is the node of robot i.
	Positions []int
	// GlobalDirs[i] is the global direction robot i currently points to.
	GlobalDirs []ring.Direction
	// States[i] is robot i's persistent state encoding (robot.Core.State).
	States []string
	// MovedPrev[i] reports whether robot i moved during the previous round
	// (as observed by the scheduler, not by the robot).
	MovedPrev []bool
}

// Clone returns a deep copy of the snapshot.
func (s Snapshot) Clone() Snapshot {
	return Snapshot{
		T:          s.T,
		Positions:  append([]int(nil), s.Positions...),
		GlobalDirs: append([]ring.Direction(nil), s.GlobalDirs...),
		States:     append([]string(nil), s.States...),
		MovedPrev:  append([]bool(nil), s.MovedPrev...),
	}
}

// Towers returns the nodes occupied by more than one robot, with the robot
// indices at each, in increasing node order.
func (s Snapshot) Towers() []Tower {
	byNode := map[int][]int{}
	for i, p := range s.Positions {
		byNode[p] = append(byNode[p], i)
	}
	var towers []Tower
	for node, robots := range byNode {
		if len(robots) > 1 {
			towers = append(towers, Tower{Node: node, Robots: robots})
		}
	}
	sortTowers(towers)
	return towers
}

// Tower is a multiplicity point: more than one robot on one node
// (Section 2.2).
type Tower struct {
	Node   int
	Robots []int
}

func sortTowers(ts []Tower) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Node < ts[j-1].Node; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Dynamics decides the presence set E_t of each round. Oblivious dynamics
// ignore the snapshot; adaptive adversaries use it.
type Dynamics interface {
	// Ring returns the underlying ring.
	Ring() ring.Ring
	// EdgesAt returns E_t given the configuration at the start of round t.
	// The returned set's capacity must equal the ring's edge count.
	EdgesAt(t int, snap Snapshot) ring.EdgeSet
}

// Oblivious adapts a position-independent evolving graph to Dynamics.
type Oblivious struct {
	G dyngraph.EvolvingGraph
}

// Ring implements Dynamics.
func (o Oblivious) Ring() ring.Ring { return o.G.Ring() }

// EdgesAt implements Dynamics.
func (o Oblivious) EdgesAt(t int, _ Snapshot) ring.EdgeSet {
	return dyngraph.EdgesAt(o.G, t)
}

// Placement is the initial condition of one robot.
type Placement struct {
	// Node is the robot's initial node.
	Node int
	// Chirality maps the robot's local directions to global ones.
	Chirality robot.Chirality
	// Core optionally overrides the algorithm-provided initial state —
	// used by the self-stabilization probe (E-X6) to start from arbitrary
	// states. Nil means Algorithm.NewCore().
	Core robot.Core
}

// Config assembles a simulation.
type Config struct {
	// Algorithm is the uniform algorithm every robot runs.
	Algorithm robot.Algorithm
	// Dynamics supplies E_t each round.
	Dynamics Dynamics
	// Placements give the initial configuration γ_0.
	Placements []Placement
	// AllowTowers permits initial configurations that are not towerless
	// (the paper's well-initiated executions are towerless; only the
	// self-stabilization probe sets this).
	AllowTowers bool
	// AllowFull permits k >= n configurations (rejected by default, as the
	// paper requires k < n).
	AllowFull bool
	// Observers are notified after every round.
	Observers []Observer
	// RecordGraph, when true, captures the realized evolving graph into a
	// dyngraph.Recorded retrievable via Simulator.RecordedGraph — needed
	// when Dynamics is adaptive and the analyses want to replay it.
	RecordGraph bool
}

// Observer receives one event per completed round.
type Observer interface {
	// ObserveRound is called after round t completed, with the presence
	// set used, the configuration before the round (time t) and after it
	// (time t+1).
	ObserveRound(ev RoundEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev RoundEvent)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(ev RoundEvent) { f(ev) }

// RoundEvent describes one completed round.
type RoundEvent struct {
	// T is the round index: the transition from time T to time T+1.
	T int
	// Edges is the presence set E_T the round ran on.
	Edges ring.EdgeSet
	// Before is the configuration at time T (after its Look, i.e. the
	// pre-round snapshot the adversary saw).
	Before Snapshot
	// After is the configuration at time T+1.
	After Snapshot
	// Moved[i] reports whether robot i crossed an edge this round.
	Moved []bool
	// Flipped[i] reports whether robot i changed its pointed global
	// direction during this round's Compute.
	Flipped []bool
}

type simRobot struct {
	core  robot.Core
	chir  robot.Chirality
	node  int
	moved bool // moved during the previous round, scheduler-observed
}

// Simulator executes rounds. Create with New, then call Step or Run.
type Simulator struct {
	r         ring.Ring
	dyn       Dynamics
	robots    []simRobot
	t         int
	observers []Observer
	recorded  *dyngraph.Recorded
}

// New validates the configuration and builds a simulator positioned at
// time 0.
func New(cfg Config) (*Simulator, error) {
	if cfg.Algorithm == nil {
		return nil, fmt.Errorf("fsync: nil algorithm")
	}
	if cfg.Dynamics == nil {
		return nil, fmt.Errorf("fsync: nil dynamics")
	}
	r := cfg.Dynamics.Ring()
	k := len(cfg.Placements)
	if k == 0 {
		return nil, fmt.Errorf("fsync: no robots placed")
	}
	if !cfg.AllowFull && k >= r.Size() {
		return nil, fmt.Errorf("fsync: %d robots on %d nodes violates k < n", k, r.Size())
	}
	seen := make(map[int]bool, k)
	robots := make([]simRobot, k)
	for i, p := range cfg.Placements {
		if !r.ValidNode(p.Node) {
			return nil, fmt.Errorf("fsync: robot %d placed on invalid node %d", i, p.Node)
		}
		if !p.Chirality.Valid() {
			return nil, fmt.Errorf("fsync: robot %d has invalid chirality %d", i, p.Chirality)
		}
		if seen[p.Node] && !cfg.AllowTowers {
			return nil, fmt.Errorf("fsync: initial configuration has a tower on node %d (not towerless)", p.Node)
		}
		seen[p.Node] = true
		core := p.Core
		if core == nil {
			core = cfg.Algorithm.NewCore()
		}
		robots[i] = simRobot{core: core, chir: p.Chirality, node: p.Node}
	}
	s := &Simulator{
		r:         r,
		dyn:       cfg.Dynamics,
		robots:    robots,
		observers: append([]Observer(nil), cfg.Observers...),
	}
	if cfg.RecordGraph {
		s.recorded = dyngraph.NewRecorded(r.Size())
	}
	return s, nil
}

// Ring returns the underlying ring.
func (s *Simulator) Ring() ring.Ring { return s.r }

// Now returns the current time instant.
func (s *Simulator) Now() int { return s.t }

// Robots returns the number of robots.
func (s *Simulator) Robots() int { return len(s.robots) }

// Snapshot returns the externally observable configuration at the current
// instant.
func (s *Simulator) Snapshot() Snapshot {
	snap := Snapshot{
		T:          s.t,
		Positions:  make([]int, len(s.robots)),
		GlobalDirs: make([]ring.Direction, len(s.robots)),
		States:     make([]string, len(s.robots)),
		MovedPrev:  make([]bool, len(s.robots)),
	}
	for i := range s.robots {
		rb := &s.robots[i]
		snap.Positions[i] = rb.node
		snap.GlobalDirs[i] = globalDir(rb.chir, rb.core.Dir())
		snap.States[i] = rb.core.State()
		snap.MovedPrev[i] = rb.moved
	}
	return snap
}

// globalDir converts a robot's local pointed direction to the external
// observer's global direction.
func globalDir(c robot.Chirality, d robot.LocalDir) ring.Direction {
	if c.GlobalSign(d) > 0 {
		return ring.CW
	}
	return ring.CCW
}

// RecordedGraph returns the realized evolving graph when Config.RecordGraph
// was set, and nil otherwise.
func (s *Simulator) RecordedGraph() *dyngraph.Recorded { return s.recorded }

// Step runs one synchronous round and returns its event.
func (s *Simulator) Step() RoundEvent {
	before := s.Snapshot()
	edges := s.dyn.EdgesAt(s.t, before)
	if edges.Size() != s.r.Edges() {
		panic(fmt.Sprintf("fsync: dynamics produced edge set of size %d for ring with %d edges", edges.Size(), s.r.Edges()))
	}
	if s.recorded != nil {
		s.recorded.Append(edges)
	}

	occupancy := make(map[int]int, len(s.robots))
	for i := range s.robots {
		occupancy[s.robots[i].node]++
	}

	// Look: gather each robot's view on E_t.
	views := make([]robot.View, len(s.robots))
	for i := range s.robots {
		rb := &s.robots[i]
		pointed := globalDir(rb.chir, rb.core.Dir())
		views[i] = robot.View{
			EdgeDir:     edges.Contains(s.r.EdgeTowards(rb.node, pointed)),
			EdgeOpp:     edges.Contains(s.r.EdgeTowards(rb.node, pointed.Opposite())),
			OtherRobots: occupancy[rb.node] > 1,
		}
	}

	// Compute: all robots atomically.
	flipped := make([]bool, len(s.robots))
	for i := range s.robots {
		rb := &s.robots[i]
		oldGlobal := globalDir(rb.chir, rb.core.Dir())
		rb.core.Compute(views[i])
		if !rb.core.Dir().Valid() {
			panic(fmt.Sprintf("fsync: robot %d computed invalid direction", i))
		}
		flipped[i] = globalDir(rb.chir, rb.core.Dir()) != oldGlobal
	}

	// Move: all robots atomically, on the same snapshot E_t.
	moved := make([]bool, len(s.robots))
	for i := range s.robots {
		rb := &s.robots[i]
		pointed := globalDir(rb.chir, rb.core.Dir())
		if edges.Contains(s.r.EdgeTowards(rb.node, pointed)) {
			rb.node = s.r.Next(rb.node, pointed)
			moved[i] = true
		}
		rb.moved = moved[i]
	}

	s.t++
	ev := RoundEvent{
		T:       before.T,
		Edges:   edges,
		Before:  before,
		After:   s.Snapshot(),
		Moved:   moved,
		Flipped: flipped,
	}
	for _, ob := range s.observers {
		ob.ObserveRound(ev)
	}
	return ev
}

// Run executes rounds until the given horizon (exclusive). It returns the
// final snapshot.
func (s *Simulator) Run(horizon int) Snapshot {
	for s.t < horizon {
		s.Step()
	}
	return s.Snapshot()
}

// AddObserver attaches an observer mid-run (it starts receiving events from
// the next round).
func (s *Simulator) AddObserver(ob Observer) {
	s.observers = append(s.observers, ob)
}
