package fsync

import (
	"testing"

	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/ring"
	"pef/internal/robot"
)

// keepDir is a minimal test algorithm: never changes direction.
func keepDir() robot.Algorithm {
	return robot.Func{
		AlgName: "test-keep",
		Rule:    func(d robot.LocalDir, _ robot.View) robot.LocalDir { return d },
	}
}

// flipOnTower flips direction when co-located with another robot.
func flipOnTower() robot.Algorithm {
	return robot.Func{
		AlgName: "test-flip-on-tower",
		Rule: func(d robot.LocalDir, v robot.View) robot.LocalDir {
			if v.OtherRobots {
				return d.Opposite()
			}
			return d
		},
	}
}

func mustSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	static := Oblivious{G: dyngraph.NewStatic(5)}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil algorithm", Config{Dynamics: static, Placements: EvenPlacements(5, 2)}},
		{"nil dynamics", Config{Algorithm: keepDir(), Placements: EvenPlacements(5, 2)}},
		{"no robots", Config{Algorithm: keepDir(), Dynamics: static}},
		{"k >= n", Config{Algorithm: keepDir(), Dynamics: static, Placements: EvenPlacements(5, 5)}},
		{"invalid node", Config{Algorithm: keepDir(), Dynamics: static,
			Placements: []Placement{{Node: 9, Chirality: robot.RightIsCW}}}},
		{"invalid chirality", Config{Algorithm: keepDir(), Dynamics: static,
			Placements: []Placement{{Node: 0, Chirality: 0}}}},
		{"initial tower", Config{Algorithm: keepDir(), Dynamics: static,
			Placements: []Placement{{Node: 1, Chirality: robot.RightIsCW}, {Node: 1, Chirality: robot.RightIsCW}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAllowTowersAndAllowFull(t *testing.T) {
	static := Oblivious{G: dyngraph.NewStatic(3)}
	_, err := New(Config{
		Algorithm: keepDir(), Dynamics: static, AllowTowers: true,
		Placements: []Placement{{Node: 1, Chirality: robot.RightIsCW}, {Node: 1, Chirality: robot.RightIsCW}},
	})
	if err != nil {
		t.Fatalf("AllowTowers rejected tower: %v", err)
	}
	_, err = New(Config{
		Algorithm: keepDir(), Dynamics: static, AllowFull: true, AllowTowers: true,
		Placements: []Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCW},
			{Node: 2, Chirality: robot.RightIsCW},
		},
	})
	if err != nil {
		t.Fatalf("AllowFull rejected k=n: %v", err)
	}
}

func TestKeepDirectionWalksGlobally(t *testing.T) {
	// A keep-direction robot with RightIsCW chirality starts pointing Left,
	// i.e. globally CCW, and must circle the static ring counter-clockwise.
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	want := []int{4, 3, 2, 1, 0}
	for i, w := range want {
		ev := sim.Step()
		if got := ev.After.Positions[0]; got != w {
			t.Fatalf("step %d: robot at %d, want %d", i, got, w)
		}
		if !ev.Moved[0] {
			t.Fatalf("step %d: robot did not move on a static ring", i)
		}
	}
}

func TestChiralityMirrorsGlobalMotion(t *testing.T) {
	// Same algorithm, opposite chirality: the robot must walk clockwise.
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCCW}},
	})
	ev := sim.Step()
	if got := ev.After.Positions[0]; got != 1 {
		t.Fatalf("robot at %d, want 1 (global CW)", got)
	}
}

func TestBlockedRobotStays(t *testing.T) {
	// Remove the CCW edge of node 0 (edge 4 on a 5-ring) forever: the
	// keep-direction robot pointing CCW can never move.
	g := dyngraph.NewEventualMissing(dyngraph.NewStatic(5), 4, 0)
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: g},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	for i := 0; i < 10; i++ {
		ev := sim.Step()
		if ev.Moved[0] || ev.After.Positions[0] != 0 {
			t.Fatalf("step %d: blocked robot moved", i)
		}
	}
}

func TestMoveUsesPostComputeDirection(t *testing.T) {
	// Two robots meeting must use the direction chosen during Compute of
	// the same round for their Move: with flipOnTower, a robot that walks
	// into another one at time t flips at t+1's compute... Precisely:
	// robots on nodes 0 and 2 of a 4-ring, both walking CCW (0→3, 2→1),
	// then (3→2, 1→0), then they are at distance 2 again; with a 5-ring
	// start 0 and 1: r0 goes 0→4, r1 goes 1→0 — never meet. Use same node
	// approach: robots at 0 and 2 on a 4-ring walk CCW forever staying at
	// distance 2, so no tower ever forms; sanity-check that.
	sim := mustSim(t, Config{
		Algorithm: flipOnTower(),
		Dynamics:  Oblivious{G: dyngraph.NewStatic(4)},
		Placements: []Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 2, Chirality: robot.RightIsCW},
		},
	})
	for i := 0; i < 8; i++ {
		ev := sim.Step()
		if len(ev.After.Towers()) != 0 {
			t.Fatalf("step %d: unexpected tower", i)
		}
	}
}

func TestTowerFormationAndFlip(t *testing.T) {
	// Opposite chirality robots at distance 2 walk towards each other and
	// meet: r0 at node 0 (RightIsCW, dir Left → CCW), r1 at node 3
	// (RightIsCCW, dir Left → CW). On a 5-ring: r0 0→4, r1 3→4 — tower at
	// node 4 at time 1. With flipOnTower both flip at round 1's Compute
	// and walk apart at round 1's Move.
	sim := mustSim(t, Config{
		Algorithm: flipOnTower(),
		Dynamics:  Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 3, Chirality: robot.RightIsCCW},
		},
	})
	ev := sim.Step()
	if p := ev.After.Positions; p[0] != 4 || p[1] != 4 {
		t.Fatalf("after step 0 positions %v, want tower on 4", p)
	}
	if tw := ev.After.Towers(); len(tw) != 1 || tw[0].Node != 4 {
		t.Fatalf("Towers = %v", ev.After.Towers())
	}
	ev = sim.Step()
	if p := ev.After.Positions; p[0] != 0 || p[1] != 3 {
		t.Fatalf("robots did not separate after flip: %v", p)
	}
	if !ev.Flipped[0] || !ev.Flipped[1] {
		t.Fatal("Flipped flags not set on tower break")
	}
}

func TestSnapshotReflectsStateAndMoved(t *testing.T) {
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(4)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	snap := sim.Snapshot()
	if snap.T != 0 || snap.MovedPrev[0] {
		t.Fatal("initial snapshot wrong")
	}
	if snap.GlobalDirs[0] != ring.CCW {
		t.Fatalf("initial global dir %v, want CCW", snap.GlobalDirs[0])
	}
	if snap.States[0].String() != "dir=left" {
		t.Fatalf("state = %q", snap.States[0])
	}
	sim.Step()
	snap = sim.Snapshot()
	if snap.T != 1 || !snap.MovedPrev[0] {
		t.Fatal("post-step snapshot wrong")
	}
}

func TestRecordGraphCapturesDynamics(t *testing.T) {
	g := dyngraph.NewEventualMissing(dyngraph.NewStatic(4), 2, 3)
	sim := mustSim(t, Config{
		Algorithm:   keepDir(),
		Dynamics:    Oblivious{G: g},
		Placements:  EvenPlacements(4, 1),
		RecordGraph: true,
	})
	sim.Run(6)
	rec := sim.RecordedGraph()
	if rec == nil || rec.Horizon() != 6 {
		t.Fatalf("recorded horizon = %v", rec)
	}
	for tt := 0; tt < 6; tt++ {
		for e := 0; e < 4; e++ {
			if rec.Present(e, tt) != g.Present(e, tt) {
				t.Fatalf("recorded graph differs at edge %d t=%d", e, tt)
			}
		}
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	var rounds []int
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(4)},
		Placements: EvenPlacements(4, 2),
		Observers: []Observer{ObserverFunc(func(ev RoundEvent) {
			rounds = append(rounds, ev.T)
		})},
	})
	sim.Run(5)
	if len(rounds) != 5 {
		t.Fatalf("observer saw %d rounds, want 5", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("rounds = %v", rounds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		sim := mustSim(t, Config{
			Algorithm:  flipOnTower(),
			Dynamics:   Oblivious{G: dyngraph.NewStatic(7)},
			Placements: RandomPlacements(7, 3, prng.NewSource(42)),
		})
		final := sim.Run(50)
		return final.Positions
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic run: %v vs %v", a, b)
		}
	}
}

func TestPlacementHelpers(t *testing.T) {
	ps := EvenPlacements(8, 4)
	want := []int{0, 2, 4, 6}
	for i, p := range ps {
		if p.Node != want[i] {
			t.Fatalf("EvenPlacements = %v", ps)
		}
	}
	ps = AdjacentPlacements(5, 3, 4)
	if ps[0].Node != 4 || ps[1].Node != 0 || ps[2].Node != 1 {
		t.Fatalf("AdjacentPlacements = %v", ps)
	}
	ps = RandomPlacements(6, 6, prng.NewSource(1))
	seen := map[int]bool{}
	for _, p := range ps {
		if seen[p.Node] {
			t.Fatal("RandomPlacements produced duplicate node")
		}
		seen[p.Node] = true
	}
}

func TestCustomInitialCore(t *testing.T) {
	// A placement-provided core overrides the algorithm's initial state.
	alg := flipOnTower()
	core := alg.NewCore()
	core.Compute(robot.View{OtherRobots: true}) // flips to Right
	sim := mustSim(t, Config{
		Algorithm:  alg,
		Dynamics:   Oblivious{G: dyngraph.NewStatic(4)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW, Core: core}},
	})
	ev := sim.Step()
	if got := ev.After.Positions[0]; got != 1 {
		t.Fatalf("custom core ignored: robot at %d, want 1", got)
	}
}

func TestResetReusesSimulatorAcrossShapes(t *testing.T) {
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	first := sim.Run(10)
	// Reconfigure in place: different ring size, team size, and dynamics.
	if err := sim.Reset(Config{
		Algorithm:  flipOnTower(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(7)},
		Placements: EvenPlacements(7, 3),
	}); err != nil {
		t.Fatal(err)
	}
	if sim.Now() != 0 || sim.Robots() != 3 || sim.Ring().Size() != 7 {
		t.Fatalf("Reset left time=%d robots=%d n=%d", sim.Now(), sim.Robots(), sim.Ring().Size())
	}
	second := sim.Run(10)
	if len(second.Positions) != 3 {
		t.Fatalf("second run positions = %v", second.Positions)
	}
	// The first run's final snapshot must be untouched by the reuse.
	if len(first.Positions) != 1 {
		t.Fatalf("first run snapshot corrupted: %v", first.Positions)
	}
	// A failed Reset reports its error like New.
	if err := sim.Reset(Config{Dynamics: Oblivious{G: dyngraph.NewStatic(4)}}); err == nil {
		t.Fatal("Reset accepted a nil algorithm")
	}
}

func TestRoundEventBuffersReusedAcrossSteps(t *testing.T) {
	// The documented retention contract: RoundEvent slices belong to the
	// simulator and are rewritten by the next Step, while Clone detaches.
	sim := mustSim(t, Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
	})
	ev := sim.Step()
	kept := ev.After.Clone()
	pos := ev.After.Positions
	sim.Step()
	if kept.Positions[0] != 4 {
		t.Fatalf("cloned snapshot changed: %v", kept.Positions)
	}
	if pos[0] == 4 {
		t.Fatal("event buffer was not reused (expected the next step to overwrite it)")
	}
}
