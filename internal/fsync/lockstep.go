package fsync

import (
	"fmt"
	"math/bits"
	"sync"

	"pef/internal/dyngraph"
	"pef/internal/ring"
	"pef/internal/robot"
)

// This file implements the lockstep engine: one simulator instance that
// advances up to 64 seed lanes of the same scenario shape bit-parallel.
// Robot positions are kept one-hot — pos[r][v] is a lane word whose bit l
// says "lane l's robot r stands on node v" — and the whole
// Look–Compute–Move cycle becomes a fixed boolean circuit over such
// words: every lane advances exactly as it would under the scalar
// Simulator (same per-lane edge schedules, same placements, same
// algorithm rules), so lane l of a lockstep run is bit-identical to the
// corresponding scalar run. The differential tests in lockstep_test.go
// pin that equivalence round by round.
//
// The engine supports oblivious dynamics only (per-lane evolving graphs):
// adaptive adversaries read robot positions and stay on the scalar path.

// LaneRun describes one seed lane of a lockstep run.
type LaneRun struct {
	// Graph is the lane's edge schedule. All lanes must share one ring
	// size, which may be at most 64 (one presence word per instant).
	Graph dyngraph.EvolvingGraph
	// Placements give the lane's initial configuration; every lane must
	// place the same number of robots. The usual Config rules apply:
	// towerless, valid nodes and chiralities, k < n. Per-robot Core
	// overrides are not supported (lane cores come from the algorithm).
	Placements []Placement
	// Horizon is the number of rounds to execute for this lane (>= 1).
	// Lanes retire individually once their horizon is reached.
	Horizon int
}

// LockstepConfig assembles a lockstep simulation.
type LockstepConfig struct {
	// Algorithm is the uniform algorithm every robot of every lane runs.
	// It must provide a bit-parallel core.
	Algorithm robot.LaneAlgorithm
	// Lanes holds 1 to 64 seed lanes.
	Lanes []LaneRun
	// Metrics, when non-nil, receives engine counters (word steps,
	// lane·rounds, word-graph fast-path hits, pool traffic). Step only
	// accumulates plain ints; the atomics are touched once per run at
	// Release/Reset, so the hot path stays 0 allocs/op and contention-free.
	Metrics *Metrics
}

// LockstepSimulator executes synchronous rounds for up to 64 lanes at
// once. Create with NewLockstep (or AcquireLockstep, which reuses a
// pooled instance), then call Step until Done.
type LockstepSimulator struct {
	r      ring.Ring
	n, k   int
	lanes  int
	t      int
	active uint64 // lanes with t < horizon

	horizons []int
	cores    []robot.LaneCore         // per robot, shared across lanes
	chirCW   []uint64                 // per robot: bit l = lane l is right-is-CW
	graphs   []dyngraph.EvolvingGraph // per lane

	// Run-local telemetry accumulators: plain ints bumped by Step and
	// flushed to metrics once per run (Release or re-Reset).
	metrics       *Metrics
	statRounds    int // word steps executed
	statLaneSteps int // active lanes summed over steps
	statWordFast  int // lane-instants served by the WordGraph fast path

	// Steady-state scratch, sized once per Reset.
	sets []ring.EdgeSet // per lane materialization buffer
	cols []uint64       // per edge: lane presence column
	pos  []uint64       // k*n one-hot positions, pos[r*n+v]
	next []uint64       // per node move scratch
	mCW  []uint64       // per node move scratch
	mCCW []uint64       // per node move scratch
	occ  []uint64       // per node: any-robot occupancy at the current instant
}

// NewLockstep validates the configuration and builds a lockstep simulator
// positioned at time 0.
func NewLockstep(cfg LockstepConfig) (*LockstepSimulator, error) {
	ls := &LockstepSimulator{}
	if err := ls.Reset(cfg); err != nil {
		return nil, err
	}
	return ls, nil
}

// Reset reconfigures the simulator in place for a fresh run at time 0,
// reusing its backing slices where shapes allow.
func (ls *LockstepSimulator) Reset(cfg LockstepConfig) error {
	ls.flushMetrics() // a direct re-Reset still credits the finished run
	if cfg.Algorithm == nil {
		return fmt.Errorf("fsync: nil lockstep algorithm")
	}
	lanes := len(cfg.Lanes)
	if lanes == 0 || lanes > 64 {
		return fmt.Errorf("fsync: %d lanes outside [1,64]", lanes)
	}
	r := cfg.Lanes[0].Graph.Ring()
	n := r.Size()
	if n > 64 {
		return fmt.Errorf("fsync: ring size %d exceeds the 64-edge lane word", n)
	}
	k := len(cfg.Lanes[0].Placements)
	if k == 0 {
		return fmt.Errorf("fsync: no robots placed")
	}
	if k >= n {
		return fmt.Errorf("fsync: %d robots on %d nodes violates k < n", k, n)
	}
	ls.r, ls.n, ls.k, ls.lanes = r, n, k, lanes
	ls.metrics = cfg.Metrics
	ls.statRounds, ls.statLaneSteps, ls.statWordFast = 0, 0, 0
	ls.t = 0
	ls.active = 0
	ls.horizons = resize(ls.horizons, lanes)
	ls.graphs = resize(ls.graphs, lanes)
	ls.chirCW = resize(ls.chirCW, k)
	ls.cores = resize(ls.cores, k)
	ls.sets = resize(ls.sets, lanes)
	ls.cols = resize(ls.cols, n)
	ls.pos = resize(ls.pos, k*n)
	ls.next = resize(ls.next, n)
	ls.mCW = resize(ls.mCW, n)
	ls.mCCW = resize(ls.mCCW, n)
	ls.occ = resize(ls.occ, n)
	for i := range ls.pos {
		ls.pos[i] = 0
	}
	for i := 0; i < k; i++ {
		ls.chirCW[i] = 0
		ls.cores[i] = cfg.Algorithm.NewLaneCore()
	}
	for l, lane := range cfg.Lanes {
		if lane.Graph.Ring() != r {
			return fmt.Errorf("fsync: lane %d ring %v disagrees with lane 0 ring %v", l, lane.Graph.Ring(), r)
		}
		if len(lane.Placements) != k {
			return fmt.Errorf("fsync: lane %d places %d robots, lane 0 places %d", l, len(lane.Placements), k)
		}
		if lane.Horizon < 1 {
			return fmt.Errorf("fsync: lane %d has non-positive horizon %d", l, lane.Horizon)
		}
		bit := uint64(1) << uint(l)
		for i, p := range lane.Placements {
			if !r.ValidNode(p.Node) {
				return fmt.Errorf("fsync: lane %d robot %d placed on invalid node %d", l, i, p.Node)
			}
			if !p.Chirality.Valid() {
				return fmt.Errorf("fsync: lane %d robot %d has invalid chirality %d", l, i, p.Chirality)
			}
			if p.Core != nil {
				return fmt.Errorf("fsync: lane %d robot %d carries a Core override (unsupported in lockstep)", l, i)
			}
			ls.pos[i*n+p.Node] |= bit
			if p.Chirality == robot.RightIsCW {
				ls.chirCW[i] |= bit
			}
		}
		// Towerless check: the same lane must not place two robots on one
		// node.
		for v := 0; v < n; v++ {
			var seen uint64
			for i := 0; i < k; i++ {
				if p := ls.pos[i*n+v] & bit; p != 0 {
					if seen != 0 {
						return fmt.Errorf("fsync: lane %d initial configuration has a tower on node %d (not towerless)", l, v)
					}
					seen = p
				}
			}
		}
		ls.horizons[l] = lane.Horizon
		ls.graphs[l] = lane.Graph
		ls.active |= bit
		if ls.sets[l].Size() != n {
			ls.sets[l] = ring.NewEdgeSet(n)
		}
	}
	ls.refreshOccupancy()
	return nil
}

// lockstepPool backs AcquireLockstep/Release, mirroring the scalar
// simulator pool: campaigns run many seed blocks back to back and reuse
// the lane buffers across them.
var lockstepPool = sync.Pool{New: func() any { return new(LockstepSimulator) }}

// AcquireLockstep returns a pooled lockstep simulator configured with
// cfg. Pair it with Release when the run is done.
func AcquireLockstep(cfg LockstepConfig) (*LockstepSimulator, error) {
	ls := lockstepPool.Get().(*LockstepSimulator)
	if err := ls.Reset(cfg); err != nil {
		lockstepPool.Put(ls)
		return nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.LockstepAcquires.Inc()
	}
	return ls, nil
}

// Release returns the simulator to the pool. The caller must not use ls
// (or the Occupancy slice it handed out) afterwards.
func (ls *LockstepSimulator) Release() {
	if ls.metrics != nil {
		ls.metrics.LockstepReleases.Inc()
	}
	ls.flushMetrics()
	for l := range ls.graphs {
		ls.graphs[l] = nil
	}
	for r := range ls.cores {
		ls.cores[r] = nil
	}
	lockstepPool.Put(ls)
}

// flushMetrics credits the run's accumulated step statistics to the
// wired Metrics and detaches them; idempotent via the cleared pointer.
func (ls *LockstepSimulator) flushMetrics() {
	if ls.metrics == nil {
		return
	}
	ls.metrics.LockstepRounds.Add(int64(ls.statRounds))
	ls.metrics.LockstepLaneRounds.Add(int64(ls.statLaneSteps))
	ls.metrics.WordFastLanes.Add(int64(ls.statWordFast))
	ls.metrics.WordFallbackLanes.Add(int64(ls.statLaneSteps - ls.statWordFast))
	ls.metrics = nil
	ls.statRounds, ls.statLaneSteps, ls.statWordFast = 0, 0, 0
}

// Ring returns the underlying ring.
func (ls *LockstepSimulator) Ring() ring.Ring { return ls.r }

// Now returns the current time instant.
func (ls *LockstepSimulator) Now() int { return ls.t }

// Lanes returns the number of configured lanes.
func (ls *LockstepSimulator) Lanes() int { return ls.lanes }

// Robots returns the number of robots per lane.
func (ls *LockstepSimulator) Robots() int { return ls.k }

// Active returns the mask of lanes that have not yet reached their
// horizon.
func (ls *LockstepSimulator) Active() uint64 { return ls.active }

// Done reports whether every lane has reached its horizon.
func (ls *LockstepSimulator) Done() bool { return ls.active == 0 }

// Occupancy returns the per-node any-robot occupancy words of the current
// instant: bit l of Occupancy()[v] is set iff some robot of lane l stands
// on node v. Bits of retired lanes are stale (frozen at their final
// configuration); mask with the lane masks the caller tracks. The slice
// is reused by the next Step/Reset.
func (ls *LockstepSimulator) Occupancy() []uint64 { return ls.occ }

// Position returns lane l's robot i node at the current instant — the
// slow introspection path used by tests and debugging, not the engine.
func (ls *LockstepSimulator) Position(i, l int) int {
	bit := uint64(1) << uint(l)
	for v := 0; v < ls.n; v++ {
		if ls.pos[i*ls.n+v]&bit != 0 {
			return v
		}
	}
	panic(fmt.Sprintf("fsync: lane %d robot %d has no position bit", l, i))
}

// refreshOccupancy recomputes the per-node any-occupancy words from the
// one-hot position matrix.
func (ls *LockstepSimulator) refreshOccupancy() {
	n := ls.n
	for v := 0; v < n; v++ {
		ls.occ[v] = 0
	}
	for i := 0; i < ls.k; i++ {
		row := ls.pos[i*n : (i+1)*n]
		for v := 0; v < n; v++ {
			ls.occ[v] |= row[v]
		}
	}
}

// Step runs one synchronous round on every active lane and returns the
// mask of lanes that executed it (the pre-step active mask): those lanes'
// configurations advanced from instant Now()-1 to Now(). Retired lanes
// keep their final configuration.
func (ls *LockstepSimulator) Step() uint64 {
	stepped := ls.active
	if stepped == 0 {
		return 0
	}
	n, k := ls.n, ls.k

	// Materialize E_t of every active lane as per-edge lane columns. The
	// per-lane EdgesInto calls are issued in increasing t order, exactly
	// like the scalar engine's, so stateful graphs see the same sequence.
	wordFast := dyngraph.LaneColumns(ls.graphs, ls.sets, stepped, ls.t, ls.cols)
	ls.statRounds++
	ls.statLaneSteps += bits.OnesCount64(stepped)
	ls.statWordFast += wordFast

	// Occupancy: mCW doubles as the "seen one robot" accumulator and mCCW
	// as the "seen two or more" (tower) word per node during this phase;
	// both are overwritten again by Move below.
	any, multi := ls.mCW, ls.mCCW
	for v := 0; v < n; v++ {
		any[v], multi[v] = 0, 0
	}
	for i := 0; i < k; i++ {
		row := ls.pos[i*n : (i+1)*n]
		for v := 0; v < n; v++ {
			p := row[v]
			multi[v] |= any[v] & p
			any[v] |= p
		}
	}

	// Look + Compute per robot: gather the three predicates as lane words
	// and run the algorithm circuit. Pointing CW means the robot's edge
	// "towards dir" is its own node index and the opposite edge is the
	// counter-clockwise one (node-1), matching ring.EdgeTowards.
	for i := 0; i < k; i++ {
		row := ls.pos[i*n : (i+1)*n]
		var tower, ecw, eccw uint64
		prev := n - 1
		for v := 0; v < n; v++ {
			p := row[v]
			tower |= p & multi[v]
			ecw |= p & ls.cols[v]
			eccw |= p & ls.cols[prev]
			prev = v
		}
		core := ls.cores[i]
		pcw := ^(ls.chirCW[i] ^ core.DirRight()) // XNOR: global dir is CW
		core.Compute(robot.LaneView{
			EdgeDir:     (pcw & ecw) | (^pcw & eccw),
			EdgeOpp:     (pcw & eccw) | (^pcw & ecw),
			OtherRobots: tower,
		})
	}

	// Move per robot, with the post-Compute direction on the same E_t.
	// Lanes whose pointed edge is absent stay; columns of retired lanes
	// are zero, so retired positions never change.
	for i := 0; i < k; i++ {
		row := ls.pos[i*n : (i+1)*n]
		pcw := ^(ls.chirCW[i] ^ ls.cores[i].DirRight())
		prev := n - 1
		for v := 0; v < n; v++ {
			p := row[v]
			ls.mCW[v] = p & pcw & ls.cols[v]
			ls.mCCW[v] = p & ^pcw & ls.cols[prev]
			prev = v
		}
		prev = n - 1
		for v := 0; v < n; v++ {
			nxt := v + 1
			if nxt == n {
				nxt = 0
			}
			ls.next[v] = (row[v] &^ (ls.mCW[v] | ls.mCCW[v])) | ls.mCW[prev] | ls.mCCW[nxt]
			prev = v
		}
		copy(row, ls.next)
	}

	ls.refreshOccupancy()
	ls.t++
	// Retire lanes that reached their horizon.
	for w := stepped; w != 0; w &= w - 1 {
		l := bits.TrailingZeros64(w)
		if ls.horizons[l] == ls.t {
			ls.active &^= 1 << uint(l)
		}
	}
	return stepped
}
