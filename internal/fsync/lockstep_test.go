package fsync

import (
	"testing"

	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/prng"
	"pef/internal/robot"
)

// buildLaneGraph returns a per-lane evolving graph of varied families.
func buildLaneGraph(n int, kind int, seed uint64) dyngraph.EvolvingGraph {
	switch kind % 4 {
	case 0:
		return dynamics.NewBernoulli(n, 0.7, seed)
	case 1:
		return dyngraph.NewEventualMissing(
			dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.5, seed), 4, seed^0x51DE),
			int(seed%uint64(n)), 8)
	case 2:
		return dynamics.NewTInterval(n, 3, seed)
	default:
		return dyngraph.NewStatic(n)
	}
}

// TestLockstepMatchesScalarTrajectories runs mixed-family lane blocks and
// checks every lane's position trajectory round by round against a scalar
// Simulator configured identically — the engine-level byte-identity
// invariant.
func TestLockstepMatchesScalarTrajectories(t *testing.T) {
	algs := []robot.LaneAlgorithm{core.PEF3Plus{}, core.PEF2{}, core.PEF1{}, core.NoRule2{}, core.NoRule3{}}
	src := prng.NewSource(0xBEEF)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.Intn(15)
		k := 1 + src.Intn(min(5, n-1))
		alg := algs[src.Intn(len(algs))]
		lanes := 1 + src.Intn(64)
		horizon := 20 + src.Intn(60)

		cfg := LockstepConfig{Algorithm: alg}
		type scalarRun struct {
			sim     *Simulator
			horizon int
		}
		var scalars []scalarRun
		for l := 0; l < lanes; l++ {
			seed := src.Uint64()
			g := buildLaneGraph(n, l, seed)
			place := RandomPlacements(n, k, prng.NewSource(seed))
			h := horizon + l%7 // staggered horizons exercise retirement
			cfg.Lanes = append(cfg.Lanes, LaneRun{Graph: g, Placements: place, Horizon: h})

			// The scalar reference needs its own graph instance with the
			// same seed so stateful schedules match.
			sim, err := New(Config{
				Algorithm:  alg,
				Dynamics:   Oblivious{G: buildLaneGraph(n, l, seed)},
				Placements: RandomPlacements(n, k, prng.NewSource(seed)),
			})
			if err != nil {
				t.Fatalf("trial %d lane %d: scalar New: %v", trial, l, err)
			}
			scalars = append(scalars, scalarRun{sim, h})
		}
		ls, err := NewLockstep(cfg)
		if err != nil {
			t.Fatalf("trial %d: NewLockstep: %v", trial, err)
		}
		for !ls.Done() {
			stepped := ls.Step()
			for l, sc := range scalars {
				if stepped&(1<<uint(l)) == 0 {
					continue
				}
				sc.sim.Step()
				for i := 0; i < k; i++ {
					if got, want := ls.Position(i, l), sc.sim.Snapshot().Positions[i]; got != want {
						t.Fatalf("trial %d (n=%d k=%d alg=%s): lane %d robot %d at t=%d: lockstep node %d, scalar node %d",
							trial, n, k, alg.Name(), l, i, ls.Now(), got, want)
					}
				}
			}
		}
		for l, sc := range scalars {
			if sc.sim.Now() != cfg.Lanes[l].Horizon {
				t.Fatalf("trial %d lane %d: scalar ran %d rounds, want %d", trial, l, sc.sim.Now(), cfg.Lanes[l].Horizon)
			}
		}
	}
}

// TestLockstepOccupancyMatchesPositions checks the tracker-facing
// occupancy words against the one-hot positions.
func TestLockstepOccupancyMatchesPositions(t *testing.T) {
	src := prng.NewSource(7)
	var lanesCfg []LaneRun
	const n, k, lanes = 9, 3, 17
	for l := 0; l < lanes; l++ {
		seed := src.Uint64()
		lanesCfg = append(lanesCfg, LaneRun{
			Graph:      dynamics.NewBernoulli(n, 0.6, seed),
			Placements: RandomPlacements(n, k, prng.NewSource(seed)),
			Horizon:    25,
		})
	}
	ls, err := NewLockstep(LockstepConfig{Algorithm: core.PEF3Plus{}, Lanes: lanesCfg})
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		occ := ls.Occupancy()
		for v := 0; v < n; v++ {
			for l := 0; l < lanes; l++ {
				want := false
				for i := 0; i < k; i++ {
					if ls.Position(i, l) == v {
						want = true
					}
				}
				if got := occ[v]&(1<<uint(l)) != 0; got != want {
					t.Fatalf("t=%d node %d lane %d: occupancy bit %v, want %v", ls.Now(), v, l, got, want)
				}
			}
		}
	}
	check()
	for !ls.Done() {
		ls.Step()
		check()
	}
}

// TestLockstepStepAllocFree pins the hot path: once configured, stepping
// a lockstep block must not allocate (the engine is pure word arithmetic
// over preallocated buffers).
func TestLockstepStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	src := prng.NewSource(11)
	var lanesCfg []LaneRun
	const n, k = 12, 3
	for l := 0; l < 64; l++ {
		seed := src.Uint64()
		lanesCfg = append(lanesCfg, LaneRun{
			Graph:      dynamics.NewBernoulli(n, 0.8, seed),
			Placements: RandomPlacements(n, k, prng.NewSource(seed)),
			Horizon:    1 << 20,
		})
	}
	ls, err := AcquireLockstep(LockstepConfig{Algorithm: core.PEF3Plus{}, Lanes: lanesCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Release()
	ls.Step() // warm the materialization buffers
	if allocs := testing.AllocsPerRun(200, func() { ls.Step() }); allocs != 0 {
		t.Fatalf("lockstep Step allocates %.1f times per round, want 0", allocs)
	}
}
