package fsync

import "pef/internal/telemetry"

// Metrics collects the engine-level counters for both simulators. Every
// field is a nilable telemetry.Counter, and a nil *Metrics disables the
// whole group, so an unwired engine pays one branch per run.
//
// The hot loops never touch these atomics: simulators accumulate plain
// ints as they step and flush once per run at Release, which keeps Step
// at 0 allocs/op and free of cross-worker cache-line contention.
type Metrics struct {
	// Rounds counts scalar simulator rounds executed.
	Rounds *telemetry.Counter
	// Acquires / Releases count scalar pool traffic.
	Acquires *telemetry.Counter
	Releases *telemetry.Counter

	// LockstepRounds counts lane-engine word steps (one per Step call);
	// LockstepLaneRounds counts lane·round work (active lanes summed over
	// steps) — the scalar-equivalent round volume.
	LockstepRounds     *telemetry.Counter
	LockstepLaneRounds *telemetry.Counter
	// LockstepAcquires / LockstepReleases count lane-engine pool traffic.
	LockstepAcquires *telemetry.Counter
	LockstepReleases *telemetry.Counter

	// WordFastLanes counts lane-instants materialized through the
	// dyngraph.WordGraph presence-word fast path; WordFallbackLanes counts
	// those that fell back to EdgesInto.
	WordFastLanes     *telemetry.Counter
	WordFallbackLanes *telemetry.Counter
}
