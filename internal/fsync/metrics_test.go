package fsync

import (
	"testing"

	"pef/internal/core"
	"pef/internal/dyngraph"
	"pef/internal/robot"
	"pef/internal/telemetry"
)

// TestRoundEventOrderingAcrossPooledAndResetSimulators pins the observer
// contract under simulator reuse: events arrive strictly in round order
// (T = 0, 1, 2, …), and both an in-place Reset and a Release/Acquire
// cycle through the pool restart the sequence at zero — reuse never
// leaks a previous run's clock into the next run's events.
func TestRoundEventOrderingAcrossPooledAndResetSimulators(t *testing.T) {
	var order []int
	cfg := Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
		Observers: []Observer{ObserverFunc(func(ev RoundEvent) {
			order = append(order, ev.T)
		})},
	}
	wantSeq := func(n int) {
		t.Helper()
		if len(order) != n {
			t.Fatalf("observed %d rounds, want %d: %v", len(order), n, order)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("round %d observed out of order as T=%d (%v)", i, got, order)
			}
		}
	}

	sim, err := Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(6)
	wantSeq(6)

	// In-place Reset: the round clock — and thus the event sequence —
	// restarts at zero.
	order = order[:0]
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	sim.Run(4)
	wantSeq(4)
	sim.Release()

	// Pool round trip: a re-acquired (likely recycled) simulator starts a
	// fresh sequence too.
	order = order[:0]
	again, err := Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again.Run(3)
	wantSeq(3)
	again.Release()
}

// TestMetricsFlushPerRun pins the recording discipline: simulators
// accumulate plain ints on the hot path and flush them to the shared
// counters once per run — at Release, or at the Reset that begins the
// next run — and the flush is idempotent, so Release after a Reset never
// double-counts.
func TestMetricsFlushPerRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		Rounds:   reg.Counter("sim.rounds"),
		Acquires: reg.Counter("sim.acquires"),
		Releases: reg.Counter("sim.releases"),
	}
	cfg := Config{
		Algorithm:  keepDir(),
		Dynamics:   Oblivious{G: dyngraph.NewStatic(5)},
		Placements: []Placement{{Node: 0, Chirality: robot.RightIsCW}},
		Metrics:    m,
	}
	sim, err := Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(7)
	if got := m.Rounds.Value(); got != 0 {
		t.Fatalf("rounds flushed mid-run: %d", got)
	}
	// Reset flushes the finished run before starting the next.
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := m.Rounds.Value(); got != 7 {
		t.Fatalf("rounds after Reset = %d, want 7", got)
	}
	sim.Run(5)
	sim.Release()
	if got := m.Rounds.Value(); got != 12 {
		t.Fatalf("rounds after Release = %d, want 12", got)
	}
	if a, r := m.Acquires.Value(), m.Releases.Value(); a != 1 || r != 1 {
		t.Fatalf("acquires=%d releases=%d, want 1/1", a, r)
	}
}

// TestLockstepMetricsFlushPerRun is the lane-engine counterpart: rounds,
// per-lane steps and the word-graph fast-path split flush at Release.
func TestLockstepMetricsFlushPerRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		LockstepRounds:     reg.Counter("sim.lockstep.rounds"),
		LockstepLaneRounds: reg.Counter("sim.lockstep.laneRounds"),
		LockstepAcquires:   reg.Counter("sim.lockstep.acquires"),
		LockstepReleases:   reg.Counter("sim.lockstep.releases"),
		WordFastLanes:      reg.Counter("sim.wordFastLanes"),
		WordFallbackLanes:  reg.Counter("sim.wordFallbackLanes"),
	}
	ls, err := AcquireLockstep(LockstepConfig{
		Algorithm: core.PEF3Plus{},
		Lanes: []LaneRun{
			{Graph: dyngraph.NewStatic(6), Placements: EvenPlacements(6, 3), Horizon: 6},
			{Graph: dyngraph.NewStatic(6), Placements: EvenPlacements(6, 3), Horizon: 6},
		},
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	for !ls.Done() {
		ls.Step()
	}
	if got := m.LockstepRounds.Value(); got != 0 {
		t.Fatalf("lockstep rounds flushed mid-run: %d", got)
	}
	ls.Release()
	if got := m.LockstepRounds.Value(); got != 6 {
		t.Fatalf("lockstep rounds = %d, want 6", got)
	}
	if got := m.LockstepLaneRounds.Value(); got != 12 {
		t.Fatalf("lockstep lane rounds = %d, want 12 (2 lanes x 6 rounds)", got)
	}
	if fast, fall := m.WordFastLanes.Value(), m.WordFallbackLanes.Value(); fast+fall != 12 {
		t.Fatalf("word fast/fallback lanes = %d/%d, want sum 12 (one per lane-round)", fast, fall)
	}
	if a, r := m.LockstepAcquires.Value(), m.LockstepReleases.Value(); a != 1 || r != 1 {
		t.Fatalf("lockstep acquires=%d releases=%d, want 1/1", a, r)
	}
}
