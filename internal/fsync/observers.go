package fsync

import (
	"pef/internal/dyngraph"
	"pef/internal/robot"
)

// SnapshotRecorder is an Observer keeping a full per-instant snapshot
// history (including the initial configuration). It backs the trajectory
// extraction of the Lemma 4.1 mirror pipeline and the space-time renderers.
type SnapshotRecorder struct {
	snaps []Snapshot
}

// ObserveRound implements Observer.
func (sr *SnapshotRecorder) ObserveRound(ev RoundEvent) {
	if len(sr.snaps) == 0 {
		sr.snaps = append(sr.snaps, ev.Before.Clone())
	}
	sr.snaps = append(sr.snaps, ev.After.Clone())
}

// Len returns the number of recorded instants.
func (sr *SnapshotRecorder) Len() int { return len(sr.snaps) }

// At returns the snapshot of instant t. It panics on out-of-range t, which
// is always a harness bug.
func (sr *SnapshotRecorder) At(t int) Snapshot { return sr.snaps[t] }

// Trajectory returns robot idx's node at every recorded instant.
func (sr *SnapshotRecorder) Trajectory(idx int) []int {
	out := make([]int, len(sr.snaps))
	for t, s := range sr.snaps {
		out[t] = s.Positions[idx]
	}
	return out
}

// States returns robot idx's persistent-state codes at every instant.
func (sr *SnapshotRecorder) States(idx int) []robot.StateCode {
	out := make([]robot.StateCode, len(sr.snaps))
	for t, s := range sr.snaps {
		out[t] = s.States[idx]
	}
	return out
}

// COTScan feeds every round's realized presence set into an online
// dyngraph.JourneyScan, so connected-over-time verification runs without
// recording the evolving graph (no O(horizon) history).
type COTScan struct {
	Scan *dyngraph.JourneyScan
}

// ObserveRound implements Observer.
func (c COTScan) ObserveRound(ev RoundEvent) { c.Scan.Observe(ev.T, ev.Edges) }
