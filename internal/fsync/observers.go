package fsync

// SnapshotRecorder is an Observer keeping a full per-instant snapshot
// history (including the initial configuration). It backs the trajectory
// extraction of the Lemma 4.1 mirror pipeline and the space-time renderers.
type SnapshotRecorder struct {
	snaps []Snapshot
}

// ObserveRound implements Observer.
func (sr *SnapshotRecorder) ObserveRound(ev RoundEvent) {
	if len(sr.snaps) == 0 {
		sr.snaps = append(sr.snaps, ev.Before.Clone())
	}
	sr.snaps = append(sr.snaps, ev.After.Clone())
}

// Len returns the number of recorded instants.
func (sr *SnapshotRecorder) Len() int { return len(sr.snaps) }

// At returns the snapshot of instant t. It panics on out-of-range t, which
// is always a harness bug.
func (sr *SnapshotRecorder) At(t int) Snapshot { return sr.snaps[t] }

// Trajectory returns robot idx's node at every recorded instant.
func (sr *SnapshotRecorder) Trajectory(idx int) []int {
	out := make([]int, len(sr.snaps))
	for t, s := range sr.snaps {
		out[t] = s.Positions[idx]
	}
	return out
}

// States returns robot idx's persistent-state encodings at every instant.
func (sr *SnapshotRecorder) States(idx int) []string {
	out := make([]string, len(sr.snaps))
	for t, s := range sr.snaps {
		out[t] = s.States[idx]
	}
	return out
}
