package fsync

import (
	"fmt"

	"pef/internal/prng"
	"pef/internal/robot"
)

// EvenPlacements spreads k robots (all with RightIsCW chirality) as evenly
// as possible around an n-node ring, starting at node 0. It panics if
// k > n, which cannot form a towerless configuration.
func EvenPlacements(n, k int) []Placement {
	if k > n {
		panic(fmt.Sprintf("fsync: cannot place %d robots towerless on %d nodes", k, n))
	}
	ps := make([]Placement, k)
	for i := 0; i < k; i++ {
		ps[i] = Placement{Node: i * n / k, Chirality: robot.RightIsCW}
	}
	return ps
}

// AdjacentPlacements puts k robots on consecutive nodes starting at start,
// all with RightIsCW chirality.
func AdjacentPlacements(n, k, start int) []Placement {
	if k > n {
		panic(fmt.Sprintf("fsync: cannot place %d robots towerless on %d nodes", k, n))
	}
	ps := make([]Placement, k)
	for i := 0; i < k; i++ {
		ps[i] = Placement{Node: (start + i) % n, Chirality: robot.RightIsCW}
	}
	return ps
}

// RandomPlacements places k robots on distinct pseudo-random nodes with
// pseudo-random chirality, drawn from src.
func RandomPlacements(n, k int, src *prng.Source) []Placement {
	if k > n {
		panic(fmt.Sprintf("fsync: cannot place %d robots towerless on %d nodes", k, n))
	}
	perm := src.Perm(n)
	ps := make([]Placement, k)
	for i := 0; i < k; i++ {
		ch := robot.RightIsCW
		if src.Bool(0.5) {
			ch = robot.RightIsCCW
		}
		ps[i] = Placement{Node: perm[i], Chirality: ch}
	}
	return ps
}
