//go:build !race

package fsync

const raceEnabled = false
