package fsync

import (
	"testing"

	"pef/internal/ring"
	"pef/internal/robot"
)

func TestSnapshotTowersSortedAndComplete(t *testing.T) {
	snap := Snapshot{
		Positions: []int{5, 2, 5, 2, 2, 7},
	}
	towers := snap.Towers()
	if len(towers) != 2 {
		t.Fatalf("towers = %+v", towers)
	}
	if towers[0].Node != 2 || towers[1].Node != 5 {
		t.Fatalf("towers not sorted by node: %+v", towers)
	}
	if len(towers[0].Robots) != 3 || len(towers[1].Robots) != 2 {
		t.Fatalf("tower membership wrong: %+v", towers)
	}
	// Robot indices inside each tower come in increasing robot order.
	if r := towers[0].Robots; r[0] != 1 || r[1] != 3 || r[2] != 4 {
		t.Fatalf("tower robots not in index order: %+v", towers[0])
	}
	if r := towers[1].Robots; r[0] != 0 || r[1] != 2 {
		t.Fatalf("tower robots not in index order: %+v", towers[1])
	}
}

func TestSnapshotTowersNone(t *testing.T) {
	snap := Snapshot{Positions: []int{0, 1, 2}}
	if len(snap.Towers()) != 0 {
		t.Fatal("towerless configuration reported towers")
	}
}

// TestSnapshotTowersScratchReuse drives the pooled scratch path through
// configurations of different sizes: a large tower computation must not
// leak stale counts into a later small one.
func TestSnapshotTowersScratchReuse(t *testing.T) {
	big := Snapshot{Positions: []int{100, 100, 3, 3, 99}}
	if tw := big.Towers(); len(tw) != 2 || tw[0].Node != 3 || tw[1].Node != 100 {
		t.Fatalf("big towers = %+v", tw)
	}
	small := Snapshot{Positions: []int{3, 4}}
	if tw := small.Towers(); len(tw) != 0 {
		t.Fatalf("stale scratch counts leaked: %+v", tw)
	}
	again := Snapshot{Positions: []int{100, 100}}
	if tw := again.Towers(); len(tw) != 1 || tw[0].Node != 100 {
		t.Fatalf("reused scratch towers = %+v", tw)
	}
}

func TestSnapshotCloneIsDeep(t *testing.T) {
	snap := Snapshot{
		T:          3,
		Positions:  []int{1, 2},
		GlobalDirs: []ring.Direction{ring.CW, ring.CCW},
		States:     []robot.StateCode{robot.DirState(robot.Left), robot.DirState(robot.Right)},
		MovedPrev:  []bool{true, false},
	}
	c := snap.Clone()
	c.Positions[0] = 9
	c.GlobalDirs[0] = ring.CCW
	c.States[0] = robot.DirMovedState(robot.Right, true)
	c.MovedPrev[0] = false
	if snap.Positions[0] != 1 || snap.GlobalDirs[0] != ring.CW ||
		snap.States[0] != robot.DirState(robot.Left) || !snap.MovedPrev[0] {
		t.Fatal("Clone shares storage")
	}
}

// TestSnapshotClonePreservesNilVsEmpty is the regression test for the
// Clone semantics: append([]T(nil), empty...) used to collapse empty
// non-nil slices to nil, making clones compare differently from their
// originals under reflect.DeepEqual.
func TestSnapshotClonePreservesNilVsEmpty(t *testing.T) {
	nilSnap := Snapshot{}
	c := nilSnap.Clone()
	if c.Positions != nil || c.GlobalDirs != nil || c.States != nil || c.MovedPrev != nil {
		t.Fatal("Clone invented slices for a nil snapshot")
	}
	empty := Snapshot{
		Positions:  []int{},
		GlobalDirs: []ring.Direction{},
		States:     []robot.StateCode{},
		MovedPrev:  []bool{},
	}
	c = empty.Clone()
	if c.Positions == nil || c.GlobalDirs == nil || c.States == nil || c.MovedPrev == nil {
		t.Fatal("Clone collapsed empty slices to nil")
	}
}

func TestSnapshotRecorderAccessors(t *testing.T) {
	sr := &SnapshotRecorder{}
	st := func(aux uint64) robot.StateCode { return robot.StateCode{Kind: robot.StateLCG, Aux: aux} }
	mk := func(tt, pos int, aux uint64) Snapshot {
		return Snapshot{T: tt, Positions: []int{pos}, States: []robot.StateCode{st(aux)},
			GlobalDirs: []ring.Direction{ring.CW}, MovedPrev: []bool{false}}
	}
	sr.ObserveRound(RoundEvent{T: 0, Before: mk(0, 4, 0), After: mk(1, 3, 1)})
	sr.ObserveRound(RoundEvent{T: 1, Before: mk(1, 3, 1), After: mk(2, 2, 2)})
	if sr.Len() != 3 {
		t.Fatalf("Len = %d", sr.Len())
	}
	traj := sr.Trajectory(0)
	if traj[0] != 4 || traj[1] != 3 || traj[2] != 2 {
		t.Fatalf("trajectory = %v", traj)
	}
	states := sr.States(0)
	if states[0] != st(0) || states[2] != st(2) {
		t.Fatalf("states = %v", states)
	}
	if sr.At(1).T != 1 {
		t.Fatalf("At(1).T = %d", sr.At(1).T)
	}
}
