package fsync

import (
	"testing"

	"pef/internal/ring"
)

func TestSnapshotTowersSortedAndComplete(t *testing.T) {
	snap := Snapshot{
		Positions: []int{5, 2, 5, 2, 2, 7},
	}
	towers := snap.Towers()
	if len(towers) != 2 {
		t.Fatalf("towers = %+v", towers)
	}
	if towers[0].Node != 2 || towers[1].Node != 5 {
		t.Fatalf("towers not sorted by node: %+v", towers)
	}
	if len(towers[0].Robots) != 3 || len(towers[1].Robots) != 2 {
		t.Fatalf("tower membership wrong: %+v", towers)
	}
}

func TestSnapshotTowersNone(t *testing.T) {
	snap := Snapshot{Positions: []int{0, 1, 2}}
	if len(snap.Towers()) != 0 {
		t.Fatal("towerless configuration reported towers")
	}
}

func TestSnapshotCloneIsDeep(t *testing.T) {
	snap := Snapshot{
		T:          3,
		Positions:  []int{1, 2},
		GlobalDirs: []ring.Direction{ring.CW, ring.CCW},
		States:     []string{"a", "b"},
		MovedPrev:  []bool{true, false},
	}
	c := snap.Clone()
	c.Positions[0] = 9
	c.GlobalDirs[0] = ring.CCW
	c.States[0] = "x"
	c.MovedPrev[0] = false
	if snap.Positions[0] != 1 || snap.GlobalDirs[0] != ring.CW ||
		snap.States[0] != "a" || !snap.MovedPrev[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestSnapshotRecorderAccessors(t *testing.T) {
	sr := &SnapshotRecorder{}
	mk := func(tt, pos int, st string) Snapshot {
		return Snapshot{T: tt, Positions: []int{pos}, States: []string{st},
			GlobalDirs: []ring.Direction{ring.CW}, MovedPrev: []bool{false}}
	}
	sr.ObserveRound(RoundEvent{T: 0, Before: mk(0, 4, "s0"), After: mk(1, 3, "s1")})
	sr.ObserveRound(RoundEvent{T: 1, Before: mk(1, 3, "s1"), After: mk(2, 2, "s2")})
	if sr.Len() != 3 {
		t.Fatalf("Len = %d", sr.Len())
	}
	traj := sr.Trajectory(0)
	if traj[0] != 4 || traj[1] != 3 || traj[2] != 2 {
		t.Fatalf("trajectory = %v", traj)
	}
	states := sr.States(0)
	if states[0] != "s0" || states[2] != "s2" {
		t.Fatalf("states = %v", states)
	}
	if sr.At(1).T != 1 {
		t.Fatalf("At(1).T = %d", sr.At(1).T)
	}
}
