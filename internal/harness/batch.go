package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"pef/internal/metrics"
)

// BatchConfig parameterizes a concurrent (experiment × seed) sweep.
type BatchConfig struct {
	// Experiments selects the experiments to run; nil means All().
	Experiments []Experiment
	// Seeds lists the seeds swept per experiment; empty means {1}.
	Seeds []uint64
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Quick is forwarded to every job's Config.
	Quick bool
	// DisableLockstep is forwarded to every job's Config: experiments that
	// exercise the bit-parallel lockstep engine fall back to the scalar
	// path (pefexperiments -lockstep=false).
	DisableLockstep bool
	// Shard expands experiments that declare Shards (the heavy ring-size
	// sweeps) into per-ring-size sub-experiments before building the job
	// matrix, so no single experiment serializes a sweep on one worker.
	Shard bool
	// OnResult, when non-nil, is invoked from the collecting goroutine
	// in canonical (experiment, seed) order, as soon as every earlier
	// job has finished. Emission order is therefore independent of the
	// worker count. On cancellation only the solid prefix is streamed
	// (see PoolConfig.OnResult).
	OnResult func(JobResult)
	// Metrics, when non-nil, instruments the underlying pool (see
	// PoolConfig.Metrics); it never affects results or report bytes.
	Metrics *PoolMetrics
}

// JobResult is the outcome of one (experiment, seed) job.
type JobResult struct {
	// ID and Seed identify the job.
	ID   string
	Seed uint64
	// Result is the experiment outcome. Jobs that errored or were
	// cancelled carry a failed Result with the experiment's identity
	// filled in.
	Result Result
	// Err reports an execution error, a recovered panic, or — for jobs
	// that never ran because the context was cancelled — the context's
	// error.
	Err error
	// Elapsed is the wall time the job's Run took (zero when it never
	// ran). It never feeds the deterministic reports; the -timings bench
	// trajectories and pefbenchdiff consume it.
	Elapsed time.Duration
}

// Passed reports the job's verdict: it executed without error and its
// result reproduces the paper's prediction. This single predicate drives
// the exit code, report footers, and JSON pass rate alike.
func (j JobResult) Passed() bool { return j.Err == nil && j.Result.Pass }

// Passes counts the passing jobs in a batch.
func Passes(jobs []JobResult) int {
	n := 0
	for _, j := range jobs {
		if j.Passed() {
			n++
		}
	}
	return n
}

// newJobResult is the canonical identity-filled (not yet executed) job
// outcome; the prefill loop and runJob share it so cancelled and executed
// jobs render with the same identity.
func newJobResult(e Experiment, seed uint64) JobResult {
	return JobResult{
		ID:   e.ID,
		Seed: seed,
		Result: Result{
			ID:       e.ID,
			Title:    e.Title,
			Artifact: e.Artifact,
		},
	}
}

// Seeds returns the n consecutive seeds starting at base, the canonical
// sweep for "-seeds n" style invocations.
func Seeds(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// RunBatch fans the (experiment × seed) job matrix out across the generic
// RunPool worker pool and returns one JobResult per job in canonical order:
// experiments in index order, seeds in the order given, seeds varying
// fastest. Results are collected unordered but the returned slice — and the
// OnResult callback sequence — is identical for any worker count, so batch
// output is bit-for-bit reproducible.
//
// A job that panics is recovered into a failed JobResult; execution errors
// likewise mark only their own job. RunBatch itself fails only when ctx is
// cancelled, in which case in-flight jobs finish, unstarted jobs are marked
// with ctx's error, and the partially-filled slice is returned alongside it.
func RunBatch(ctx context.Context, cfg BatchConfig) ([]JobResult, error) {
	exps := cfg.Experiments
	if exps == nil {
		exps = All()
	}
	if cfg.Shard {
		exps = Sharded(exps, cfg.Quick)
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	return RunPool(ctx, PoolConfig[JobResult]{
		Total:   len(exps) * len(seeds),
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
		Run: func(i int) JobResult {
			return runJob(exps[i/len(seeds)], Config{
				Seed:            seeds[i%len(seeds)],
				Quick:           cfg.Quick,
				DisableLockstep: cfg.DisableLockstep,
			})
		},
		Placeholder: func(i int) JobResult {
			return newJobResult(exps[i/len(seeds)], seeds[i%len(seeds)])
		},
		Cancelled: func(_ int, jr JobResult, err error) JobResult {
			jr.Err = fmt.Errorf("harness: experiment %s (seed %d): %w", jr.ID, jr.Seed, err)
			jr.Result.Notes = append(jr.Result.Notes, "job cancelled before running")
			return jr
		},
		OnResult: func(_ int, jr JobResult) {
			if cfg.OnResult != nil {
				cfg.OnResult(jr)
			}
		},
	})
}

// runJob executes one experiment under one job Config, converting panics
// into failed results so a single diverging experiment cannot take down a
// sweep.
func runJob(e Experiment, c Config) (jr JobResult) {
	jr = newJobResult(e, c.Seed)
	start := time.Now()
	defer func() {
		jr.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: experiment %s (seed %d): panic: %v", e.ID, c.Seed, r)
			jr.Result.Pass = false
			jr.Result.Notes = append(jr.Result.Notes, fmt.Sprintf("recovered panic: %v", r))
		}
	}()
	res, err := e.Run(c)
	if err != nil {
		jr.Err = fmt.Errorf("harness: experiment %s (seed %d): %w", e.ID, c.Seed, err)
		return jr
	}
	jr.Result = res
	return jr
}

// SweepAggregate folds a batch's results into the metrics sweep matrix used
// by the aggregate report: per-experiment pass rates across seeds, the
// per-seed min/max/gap summary, and the scalar observations (cover times,
// revisit gaps) each experiment emitted.
func SweepAggregate(jobs []JobResult) *metrics.Sweep {
	sw := metrics.NewSweep()
	for _, j := range jobs {
		sw.Record(j.ID, j.Seed, j.Passed())
		for _, sc := range j.Result.Scalars {
			sw.RecordScalar(j.ID, sc.Name, sc.Value)
		}
	}
	return sw
}

// WriteBatchReport renders a sweep report: a header, the aggregate
// pass-rate table, and a full per-result section for every failing job.
// The report depends only on the job slice, never on scheduling, so equal
// batches render byte-identical reports for any worker count.
func WriteBatchReport(w io.Writer, jobs []JobResult) error {
	sw := SweepAggregate(jobs)
	if _, err := fmt.Fprintf(w, "\n## Aggregate (%d experiments × %d seeds)\n\n", sw.IDs(), sw.SeedCount()); err != nil {
		return err
	}
	if err := sw.Table().Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n## Per-seed spread\n\n"); err != nil {
		return err
	}
	if err := sw.SeedTable().Render(w); err != nil {
		return err
	}
	if sw.ScalarCount() > 0 {
		if _, err := io.WriteString(w, "\n## Scalar metrics\n\n"); err != nil {
			return err
		}
		if err := sw.ScalarTable().Render(w); err != nil {
			return err
		}
	}
	failures := 0
	for _, j := range jobs {
		if j.Passed() {
			continue
		}
		failures++
		if _, err := fmt.Fprintf(w, "\n### Failure: %s seed=%d\n", j.ID, j.Seed); err != nil {
			return err
		}
		if j.Err != nil {
			if _, err := fmt.Fprintf(w, "\nerror: %v\n", j.Err); err != nil {
				return err
			}
			continue
		}
		if err := WriteResult(w, j.Result); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n---\n%d/%d jobs reproduce the paper's predictions.\n", len(jobs)-failures, len(jobs))
	return err
}
