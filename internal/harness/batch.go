package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"pef/internal/metrics"
)

// BatchConfig parameterizes a concurrent (experiment × seed) sweep.
type BatchConfig struct {
	// Experiments selects the experiments to run; nil means All().
	Experiments []Experiment
	// Seeds lists the seeds swept per experiment; empty means {1}.
	Seeds []uint64
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Quick is forwarded to every job's Config.
	Quick bool
	// OnResult, when non-nil, is invoked from the collecting goroutine
	// exactly once per job in canonical (experiment, seed) order, as soon
	// as every earlier job has finished. Emission order is therefore
	// independent of the worker count.
	OnResult func(JobResult)
}

// JobResult is the outcome of one (experiment, seed) job.
type JobResult struct {
	// ID and Seed identify the job.
	ID   string
	Seed uint64
	// Result is the experiment outcome. Jobs that errored or were
	// cancelled carry a failed Result with the experiment's identity
	// filled in.
	Result Result
	// Err reports an execution error, a recovered panic, or — for jobs
	// that never ran because the context was cancelled — the context's
	// error.
	Err error
}

// Passed reports the job's verdict: it executed without error and its
// result reproduces the paper's prediction. This single predicate drives
// the exit code, report footers, and JSON pass rate alike.
func (j JobResult) Passed() bool { return j.Err == nil && j.Result.Pass }

// Passes counts the passing jobs in a batch.
func Passes(jobs []JobResult) int {
	n := 0
	for _, j := range jobs {
		if j.Passed() {
			n++
		}
	}
	return n
}

// newJobResult is the canonical identity-filled (not yet executed) job
// outcome; the prefill loop and runJob share it so cancelled and executed
// jobs render with the same identity.
func newJobResult(e Experiment, seed uint64) JobResult {
	return JobResult{
		ID:   e.ID,
		Seed: seed,
		Result: Result{
			ID:       e.ID,
			Title:    e.Title,
			Artifact: e.Artifact,
		},
	}
}

// Seeds returns the n consecutive seeds starting at base, the canonical
// sweep for "-seeds n" style invocations.
func Seeds(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// RunBatch fans the (experiment × seed) job matrix out across a bounded
// worker pool and returns one JobResult per job in canonical order:
// experiments in index order, seeds in the order given, seeds varying
// fastest. Results are collected unordered but the returned slice — and the
// OnResult callback sequence — is identical for any worker count, so batch
// output is bit-for-bit reproducible.
//
// A job that panics is recovered into a failed JobResult; execution errors
// likewise mark only their own job. RunBatch itself fails only when ctx is
// cancelled, in which case in-flight jobs finish, unstarted jobs are marked
// with ctx's error, and the partially-filled slice is returned alongside it.
func RunBatch(ctx context.Context, cfg BatchConfig) ([]JobResult, error) {
	exps := cfg.Experiments
	if exps == nil {
		exps = All()
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(exps) * len(seeds)
	if workers > total {
		workers = total
	}

	results := make([]JobResult, total)
	for i := range results {
		results[i] = newJobResult(exps[i/len(seeds)], seeds[i%len(seeds)])
	}
	if total == 0 {
		return results, ctx.Err()
	}

	type indexed struct {
		i int
		r JobResult
	}
	jobs := make(chan int)
	out := make(chan indexed)

	// Feeder: stops handing out work as soon as ctx is cancelled.
	go func() {
		defer close(jobs)
		for i := 0; i < total; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// The send is unconditional: the collector drains out
				// until it closes, so even on cancellation a finished
				// job's result is never dropped — "in-flight jobs
				// finish" and their results land in the slice.
				out <- indexed{i, runJob(exps[i/len(seeds)], seeds[i%len(seeds)], cfg.Quick)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Collector: a reorder buffer over the unordered completions. next is
	// the canonical cursor; OnResult fires the moment the prefix is solid.
	done := make([]bool, total)
	next := 0
	for ir := range out {
		results[ir.i] = ir.r
		done[ir.i] = true
		for next < total && done[next] {
			if cfg.OnResult != nil {
				cfg.OnResult(results[next])
			}
			next++
		}
	}

	if err := ctx.Err(); err != nil {
		for i := range results {
			if !done[i] {
				results[i].Err = fmt.Errorf("harness: experiment %s (seed %d): %w", results[i].ID, results[i].Seed, err)
				results[i].Result.Notes = append(results[i].Result.Notes, "job cancelled before running")
			}
		}
		return results, err
	}
	return results, nil
}

// runJob executes one experiment under one seed, converting panics into
// failed results so a single diverging experiment cannot take down a sweep.
func runJob(e Experiment, seed uint64, quick bool) (jr JobResult) {
	jr = newJobResult(e, seed)
	defer func() {
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: experiment %s (seed %d): panic: %v", e.ID, seed, r)
			jr.Result.Pass = false
			jr.Result.Notes = append(jr.Result.Notes, fmt.Sprintf("recovered panic: %v", r))
		}
	}()
	res, err := e.Run(Config{Seed: seed, Quick: quick})
	if err != nil {
		jr.Err = fmt.Errorf("harness: experiment %s (seed %d): %w", e.ID, seed, err)
		return jr
	}
	jr.Result = res
	return jr
}

// SweepAggregate folds a batch's results into the metrics sweep matrix used
// by the aggregate report: per-experiment pass rates across seeds plus the
// per-seed min/max/gap summary.
func SweepAggregate(jobs []JobResult) *metrics.Sweep {
	sw := metrics.NewSweep()
	for _, j := range jobs {
		sw.Record(j.ID, j.Seed, j.Passed())
	}
	return sw
}

// WriteBatchReport renders a sweep report: a header, the aggregate
// pass-rate table, and a full per-result section for every failing job.
// The report depends only on the job slice, never on scheduling, so equal
// batches render byte-identical reports for any worker count.
func WriteBatchReport(w io.Writer, jobs []JobResult) error {
	sw := SweepAggregate(jobs)
	if _, err := fmt.Fprintf(w, "\n## Aggregate (%d experiments × %d seeds)\n\n", sw.IDs(), sw.SeedCount()); err != nil {
		return err
	}
	if err := sw.Table().Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n## Per-seed spread\n\n"); err != nil {
		return err
	}
	if err := sw.SeedTable().Render(w); err != nil {
		return err
	}
	failures := 0
	for _, j := range jobs {
		if j.Passed() {
			continue
		}
		failures++
		if _, err := fmt.Fprintf(w, "\n### Failure: %s seed=%d\n", j.ID, j.Seed); err != nil {
			return err
		}
		if j.Err != nil {
			if _, err := fmt.Fprintf(w, "\nerror: %v\n", j.Err); err != nil {
				return err
			}
			continue
		}
		if err := WriteResult(w, j.Result); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n---\n%d/%d jobs reproduce the paper's predictions.\n", len(jobs)-failures, len(jobs))
	return err
}
