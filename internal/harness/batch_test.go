package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pef/internal/metrics"
)

// syntheticExp builds a fast experiment whose verdict and work depend only
// on the seed, so batch-engine tests don't pay full experiment costs.
func syntheticExp(id string, passUnless func(seed uint64) bool) Experiment {
	return Experiment{
		ID:       id,
		Title:    "synthetic " + id,
		Artifact: "test",
		Run: func(cfg Config) (Result, error) {
			// Seed-dependent busy work scrambles completion order across
			// workers without introducing time dependence.
			acc := cfg.Seed
			for i := uint64(0); i < 1000*(cfg.Seed%7+1); i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			t := metrics.NewTable("seed", "acc")
			t.AddRow(cfg.Seed, acc%100)
			return Result{
				ID:       id,
				Title:    "synthetic " + id,
				Artifact: "test",
				Pass:     !passUnless(cfg.Seed),
				Table:    t,
				Notes:    []string{fmt.Sprintf("seed %d", cfg.Seed)},
			}, nil
		},
	}
}

func syntheticIndex(n int) []Experiment {
	exps := make([]Experiment, n)
	for i := range exps {
		fail := func(uint64) bool { return false }
		if i == 2 {
			fail = func(seed uint64) bool { return seed%3 == 0 }
		}
		exps[i] = syntheticExp(fmt.Sprintf("E-SYN%d", i), fail)
	}
	return exps
}

func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	exps := syntheticIndex(6)
	seeds := Seeds(1, 9)
	render := func(workers int) ([]JobResult, string) {
		jobs, err := RunBatch(context.Background(), BatchConfig{
			Experiments: exps,
			Seeds:       seeds,
			Workers:     workers,
			Quick:       true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := WriteBatchReport(&buf, jobs); err != nil {
			t.Fatalf("workers=%d: report: %v", workers, err)
		}
		return jobs, buf.String()
	}
	jobs1, rep1 := render(1)
	jobs8, rep8 := render(8)
	// Elapsed is wall time, documented as non-deterministic; everything
	// else must be bit-identical across worker counts.
	for i := range jobs1 {
		jobs1[i].Elapsed = 0
		jobs8[i].Elapsed = 0
	}
	if !reflect.DeepEqual(jobs1, jobs8) {
		t.Fatal("RunBatch results differ between workers=1 and workers=8")
	}
	if rep1 != rep8 {
		t.Fatalf("batch reports differ between worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", rep1, rep8)
	}
	if len(jobs1) != len(exps)*len(seeds) {
		t.Fatalf("got %d jobs, want %d", len(jobs1), len(exps)*len(seeds))
	}
}

func TestRunBatchCanonicalOrder(t *testing.T) {
	exps := syntheticIndex(4)
	seeds := Seeds(10, 5)
	var emitted []string
	jobs, err := RunBatch(context.Background(), BatchConfig{
		Experiments: exps,
		Seeds:       seeds,
		Workers:     8,
		OnResult: func(j JobResult) {
			emitted = append(emitted, fmt.Sprintf("%s/%d", j.ID, j.Seed))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range exps {
		for _, s := range seeds {
			want = append(want, fmt.Sprintf("%s/%d", e.ID, s))
		}
	}
	if !reflect.DeepEqual(emitted, want) {
		t.Fatalf("OnResult order:\ngot  %v\nwant %v", emitted, want)
	}
	for i, j := range jobs {
		if got := fmt.Sprintf("%s/%d", j.ID, j.Seed); got != want[i] {
			t.Fatalf("slice order at %d: got %s want %s", i, got, want[i])
		}
	}
}

func TestRunBatchRecoversPanics(t *testing.T) {
	boom := Experiment{
		ID:       "E-BOOM",
		Title:    "panics on even seeds",
		Artifact: "test",
		Run: func(cfg Config) (Result, error) {
			if cfg.Seed%2 == 0 {
				panic(fmt.Sprintf("seed %d diverged", cfg.Seed))
			}
			return Result{ID: "E-BOOM", Pass: true}, nil
		},
	}
	jobs, err := RunBatch(context.Background(), BatchConfig{
		Experiments: []Experiment{boom},
		Seeds:       Seeds(1, 4),
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		even := j.Seed%2 == 0
		if even {
			if j.Err == nil || !strings.Contains(j.Err.Error(), "panic") {
				t.Fatalf("seed %d: want recovered panic, got err=%v", j.Seed, j.Err)
			}
			if j.Result.Pass {
				t.Fatalf("seed %d: panicking job must not pass", j.Seed)
			}
			if j.Result.ID != "E-BOOM" {
				t.Fatalf("seed %d: failed result lost its identity: %q", j.Seed, j.Result.ID)
			}
		} else if j.Err != nil || !j.Result.Pass {
			t.Fatalf("seed %d: healthy job failed: err=%v pass=%t", j.Seed, j.Err, j.Result.Pass)
		}
	}
}

func TestRunBatchPropagatesErrors(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	flaky := Experiment{
		ID: "E-ERR", Title: "errors on seed 2", Artifact: "test",
		Run: func(cfg Config) (Result, error) {
			if cfg.Seed == 2 {
				return Result{}, sentinel
			}
			return Result{ID: "E-ERR", Pass: true}, nil
		},
	}
	jobs, err := RunBatch(context.Background(), BatchConfig{
		Experiments: []Experiment{flaky},
		Seeds:       Seeds(1, 3),
		Workers:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Seed == 2 {
			if !errors.Is(j.Err, sentinel) {
				t.Fatalf("seed 2: want sentinel error, got %v", j.Err)
			}
		} else if j.Err != nil {
			t.Fatalf("seed %d: unexpected error %v", j.Seed, j.Err)
		}
	}
}

func TestRunBatchCancellation(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	blocker := Experiment{
		ID: "E-BLOCK", Title: "blocks until released", Artifact: "test",
		Run: func(cfg Config) (Result, error) {
			started <- struct{}{}
			<-gate
			return Result{ID: "E-BLOCK", Pass: true}, nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		jobs []JobResult
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		jobs, err := RunBatch(ctx, BatchConfig{
			Experiments: []Experiment{blocker},
			Seeds:       Seeds(1, 16),
			Workers:     2,
		})
		res <- outcome{jobs, err}
	}()
	// Wait for both workers to be mid-job, then cancel and release them.
	<-started
	<-started
	cancel()
	close(gate)

	out := <-res
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", out.err)
	}
	if len(out.jobs) != 16 {
		t.Fatalf("got %d job slots, want 16", len(out.jobs))
	}
	cancelled := 0
	for _, j := range out.jobs {
		if errors.Is(j.Err, context.Canceled) {
			cancelled++
		}
	}
	// Two jobs were in flight when cancel hit; nearly all of the rest must
	// have been stopped before running.
	if cancelled < 12 {
		t.Fatalf("only %d/16 jobs were cancelled; sweep did not stop promptly", cancelled)
	}
}

func TestSeedsHelper(t *testing.T) {
	if got := Seeds(5, 3); !reflect.DeepEqual(got, []uint64{5, 6, 7}) {
		t.Fatalf("Seeds(5,3) = %v", got)
	}
	if got := Seeds(9, 0); !reflect.DeepEqual(got, []uint64{9}) {
		t.Fatalf("Seeds(9,0) = %v, want one seed", got)
	}
}

func TestSweepAggregate(t *testing.T) {
	jobs := []JobResult{
		{ID: "A", Seed: 1, Result: Result{Pass: true}},
		{ID: "A", Seed: 2, Result: Result{Pass: false}},
		{ID: "B", Seed: 1, Result: Result{Pass: true}},
		{ID: "B", Seed: 2, Result: Result{Pass: true}, Err: errors.New("boom")},
	}
	sw := SweepAggregate(jobs)
	if sw.IDs() != 2 || sw.SeedCount() != 2 {
		t.Fatalf("matrix shape %dx%d, want 2x2", sw.IDs(), sw.SeedCount())
	}
	// A job with Err counts as failing even if its Result claims Pass.
	if got := sw.Passes(); got != 2 {
		t.Fatalf("passes = %d, want 2", got)
	}
	if got := sw.SeedPasses(); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("per-seed passes = %v, want [2 0]", got)
	}
}

// TestRunBatchRealIndexAcrossSeeds is the integration check: the full
// experiment index swept across seeds through the concurrent engine must
// pass everywhere, matching the paper's seed-independent claims.
func TestRunBatchRealIndexAcrossSeeds(t *testing.T) {
	jobs, err := RunBatch(context.Background(), BatchConfig{
		Seeds:   Seeds(1, 3),
		Workers: 4,
		Quick:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(All())*3 {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(All())*3)
	}
	for _, j := range jobs {
		if j.Err != nil {
			t.Errorf("%s seed=%d errored: %v", j.ID, j.Seed, j.Err)
		} else if !j.Result.Pass {
			t.Errorf("%s seed=%d failed: %v", j.ID, j.Seed, j.Result.Notes)
		}
	}
}
