package harness

import (
	"fmt"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/convergence"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/robot"
	"pef/internal/spec"
	"pef/internal/ssync"
)

// x1Rings is the ring-size sweep of E-X1, shared by the full experiment
// and its per-ring-size shards.
func x1Rings(quick bool) []int {
	if quick {
		return []int{4, 8, 16}
	}
	return []int{4, 8, 16, 32, 64}
}

func runX1(cfg Config) (Result, error) {
	return runX1Rings(cfg, "E-X1", x1Rings(cfg.Quick))
}

func shardX1(quick bool) []Experiment {
	return shardByRing("E-X1", "Cover time scaling of PEF_3+ with ring size",
		"extension", x1Rings(quick), runX1Rings)
}

func runX1Rings(cfg Config, id string, ns []int) (Result, error) {
	res := Result{ID: id, Title: "Cover time scaling of PEF_3+ with ring size",
		Artifact: "extension", Pass: true}
	res.Table = metrics.NewTable("n", "workload", "cover", "maxGap", "verdict")

	workloads := []dynamics.Spec{
		dynamics.StaticSpec(),
		dynamics.BernoulliSpec(0.5),
		dynamics.EventualMissingSpec(0, 32, 0.7, 4),
	}
	for _, n := range ns {
		horizon := 300 * n
		if cfg.Quick {
			horizon = 80 * n
		}
		for _, sp := range workloads {
			rep, _, err := explorationRun(core.PEF3Plus{}, n, 3, obliviousBuild(sp, n), cfg.Seed+uint64(n), horizon)
			if err != nil {
				return res, err
			}
			res.ObserveExploration(rep)
			ok := rep.Covered == n
			if !ok {
				res.Pass = false
			}
			res.Table.AddRow(n, sp.Name, rep.CoverTime, rep.MaxGap, verdict(ok))
		}
	}
	res.Notes = append(res.Notes,
		"Expected shape: cover time grows roughly linearly in n on static rings and by a Δ-factor under dynamics.")
	return res, nil
}

func runX2(cfg Config) (Result, error) {
	res := Result{ID: "E-X2", Title: "Revisit gap versus edge recurrence bound",
		Artifact: "extension", Pass: true}
	res.Table = metrics.NewTable("Δ", "cover", "maxGap", "verdict")

	const n = 8
	deltas := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		deltas = []int{1, 4, 16}
	}
	gaps := make([]int, 0, len(deltas))
	for _, d := range deltas {
		d := d
		horizon := 400 * d
		build := func(seed uint64) fsync.Dynamics {
			base := dynamics.NewBernoulli(n, 0.05, seed)
			return fsync.Oblivious{G: dynamics.NewBoundedRecurrence(base, d, seed^0xBEEF)}
		}
		rep, _, err := explorationRun(core.PEF3Plus{}, n, 3, build, cfg.Seed+uint64(d), horizon)
		if err != nil {
			return res, err
		}
		res.ObserveExploration(rep)
		ok := rep.Covered == n && rep.MaxGap <= horizon/2
		if !ok {
			res.Pass = false
		}
		gaps = append(gaps, rep.MaxGap)
		res.Table.AddRow(d, rep.CoverTime, rep.MaxGap, verdict(ok))
	}
	// Shape check: the gap under the loosest recurrence must exceed the
	// gap under the tightest — the predicted monotone trend.
	if len(gaps) >= 2 && gaps[len(gaps)-1] <= gaps[0] {
		res.Pass = false
		res.Notes = append(res.Notes, "gap did not grow with Δ — unexpected")
	}
	res.Notes = append(res.Notes, "PEF_3+'s revisit gap scales with the recurrence bound Δ of the dynamics.")
	return res, nil
}

func runX3(cfg Config) (Result, error) {
	res := Result{ID: "E-X3", Title: "Rule ablations of PEF_3+",
		Artifact: "extension (Section 3.1 rationale)", Pass: true}
	res.Table = metrics.NewTable("algorithm", "workload", "covered", "maxGap", "explores")

	const n, k = 8, 3
	horizon := 1600
	if cfg.Quick {
		horizon = 600
	}
	algs := []robot.Algorithm{core.PEF3Plus{}, core.NoRule3{}, core.NoRule2{}}
	// The eventual-missing-edge workload is the separator: Rule 1 alone
	// (no-rule3) parks every robot at one extremity forever.
	workloads := []dynamics.Spec{
		dynamics.StaticSpec(),
		dynamics.EventualMissingSpec(0, 20, 0.9, 4),
	}
	explored := map[string]bool{}
	for _, alg := range algs {
		for _, sp := range workloads {
			rep, _, err := explorationRun(alg, n, k, obliviousBuild(sp, n), cfg.Seed+3, horizon)
			if err != nil {
				return res, err
			}
			ok := possibleVerdict(rep, horizon)
			explored[alg.Name()+"/"+sp.Name] = ok
			res.Table.AddRow(alg.Name(), sp.Name, rep.Covered, rep.MaxGap, ok)
		}
	}
	if !explored["pef3+/eventual-missing"] {
		res.Pass = false
		res.Notes = append(res.Notes, "unexpected: full PEF_3+ failed the eventual-missing workload")
	}
	if explored["pef3+/no-rule3/eventual-missing"] {
		res.Pass = false
		res.Notes = append(res.Notes, "unexpected: removing Rule 3 still explored the eventual-missing workload")
	}
	res.Notes = append(res.Notes,
		"Rule 3 (turn back after moving into a tower) is what rescues exploration once an eventual missing edge exists (Lemma 3.1).",
		"The no-rule2 ablation destroys the sentinel role; its outcome documents how much Rule 2 contributes.")
	return res, nil
}

func runX4(cfg Config) (Result, error) {
	res := Result{ID: "E-X4", Title: "SSYNC impossibility versus FSYNC control",
		Artifact: "related work [10] (Section 1)", Pass: true}
	res.Table = metrics.NewTable("scheduler", "dynamics", "moves", "covered", "note")

	const n, k = 6, 3
	horizon := 600
	if cfg.Quick {
		horizon = 200
	}
	nodes := []int{0, 2, 4}
	chirs := []robot.Chirality{robot.RightIsCW, robot.RightIsCW, robot.RightIsCW}

	// SSYNC + freeze adversary: nobody ever moves, yet the realized graph
	// is connected-over-time (each edge present at all instants in which
	// its neighbourhood robot is inactive).
	sim1, err := ssync.New(ssync.Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    ssync.NewFreezeAdversary(n),
		Activation:  ssync.RoundRobin{K: k},
		Nodes:       nodes,
		Chiralities: chirs,
	})
	if err != nil {
		return res, err
	}
	sim1.Run(horizon)
	ssyncBlocked := sim1.Moves() == 0
	res.Table.AddRow("SSYNC round-robin", "freeze adversary", sim1.Moves(), k, "exploration impossible; graph still connected-over-time")
	if !ssyncBlocked {
		res.Pass = false
		res.Notes = append(res.Notes, "unexpected: a robot moved under the SSYNC freeze adversary")
	}

	// SSYNC + the constructive pointed-edge adversary of [10]: removes only
	// the edge the activated robot wants to traverse (found by fixed-point
	// search over its deterministic Compute), falling back to its whole
	// neighbourhood only for present-edge chasers.
	pointed := ssync.NewPointedEdgeAdversary(n, core.PEF3Plus{}, chirs)
	sim3, err := ssync.New(ssync.Config{
		Algorithm:   core.PEF3Plus{},
		Dynamics:    pointed,
		Activation:  ssync.RoundRobin{K: k},
		Nodes:       nodes,
		Chiralities: chirs,
	})
	if err != nil {
		return res, err
	}
	sim3.Run(horizon)
	res.Table.AddRow("SSYNC round-robin", "pointed-edge adversary", sim3.Moves(), k,
		fmt.Sprintf("%d single-edge removals, %d fallbacks", pointed.SingleRemovals(), pointed.BothRemovals()))
	if sim3.Moves() != 0 {
		res.Pass = false
		res.Notes = append(res.Notes, "unexpected: a robot moved under the SSYNC pointed-edge adversary")
	}

	// FSYNC with the same freeze idea is illegal: blocking every robot's
	// neighbourhood forever makes those edges eventually missing around
	// static robots and disconnects the eventual underlying graph. The
	// budgeted variant (edges must reappear) lets PEF_3+ explore.
	vt := spec.NewVisitTracker(n)
	sim2, err := fsync.New(fsync.Config{
		Algorithm:  core.PEF3Plus{},
		Dynamics:   adversary.NewBlockBothSides(n, 3),
		Placements: fsync.EvenPlacements(n, k),
		Observers:  []fsync.Observer{vt},
	})
	if err != nil {
		return res, err
	}
	sim2.Run(horizon)
	rep := vt.Report()
	fsyncExplores := rep.Covered == n
	res.Table.AddRow("FSYNC", "block-both-sides (budget 3)", "-", rep.Covered, "edges must recur; exploration succeeds")
	if !fsyncExplores {
		res.Pass = false
		res.Notes = append(res.Notes, "unexpected: FSYNC control failed to explore")
	}
	res.Notes = append(res.Notes,
		"Reproduces the Di Luna et al. argument that exploration is impossible in SSYNC, motivating the paper's FSYNC model.")
	return res, nil
}

// x5Rings is the ring-size sweep of E-X5, shared by the full experiment
// and its per-ring-size shards.
func x5Rings(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{4, 8, 16}
}

func runX5(cfg Config) (Result, error) {
	return runX5Rings(cfg, "E-X5", x5Rings(cfg.Quick))
}

func shardX5(quick bool) []Experiment {
	return shardByRing("E-X5", "PEF_3+ on connected-over-time chains",
		"Section 1 remark", x5Rings(quick), runX5Rings)
}

func runX5Rings(cfg Config, id string, ns []int) (Result, error) {
	res := Result{ID: id, Title: "PEF_3+ on connected-over-time chains",
		Artifact: "Section 1 remark", Pass: true}
	res.Table = metrics.NewTable("n", "cut edge", "cover", "maxGap", "verdict")

	for _, n := range ns {
		horizon := 300 * n
		if cfg.Quick {
			horizon = 100 * n
		}
		for _, cut := range []int{0, n / 2} {
			cut := cut
			build := func(seed uint64) fsync.Dynamics {
				base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, seed), 4, seed^0x11)
				return fsync.Oblivious{G: dynamics.NewChain(base, cut)}
			}
			rep, _, err := explorationRun(core.PEF3Plus{}, n, 3, build, cfg.Seed+uint64(n+cut), horizon)
			if err != nil {
				return res, err
			}
			res.ObserveExploration(rep)
			ok := possibleVerdict(rep, horizon)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL n=%d cut=%d: %s", n, cut, rep))
			}
			res.Table.AddRow(n, cut, rep.CoverTime, rep.MaxGap, verdict(ok))
		}
	}
	res.Notes = append(res.Notes,
		"A connected-over-time chain is a connected-over-time ring with one edge missing forever; the paper's results transfer.")
	return res, nil
}

func runX6(cfg Config) (Result, error) {
	res := Result{ID: "E-X6", Title: "Self-stabilization probe from corrupted configurations",
		Artifact: "extension ([4] context)", Pass: true}
	res.Table = metrics.NewTable("initial configuration", "workload", "covered", "maxGap", "explores")

	const n, k = 8, 3
	horizon := 2400
	if cfg.Quick {
		horizon = 800
	}
	type initCase struct {
		name       string
		placements []fsync.Placement
	}
	corrupt := func(dirFlips, movedSet int) []fsync.Placement {
		ps := make([]fsync.Placement, k)
		for i := 0; i < k; i++ {
			c := (core.PEF3Plus{}).NewCore()
			// Drive the core into a non-initial state through synthetic
			// views: a moved-flag set, possibly a flipped dir.
			if movedSet&(1<<i) != 0 {
				c.Compute(robot.View{EdgeDir: true})
			}
			if dirFlips&(1<<i) != 0 {
				c.Compute(robot.View{EdgeDir: true, OtherRobots: true})
			}
			ps[i] = fsync.Placement{Node: i * 2, Chirality: robot.RightIsCW, Core: c}
		}
		return ps
	}
	tower := []fsync.Placement{
		{Node: 0, Chirality: robot.RightIsCW},
		{Node: 0, Chirality: robot.RightIsCCW},
		{Node: 0, Chirality: robot.RightIsCW},
	}
	cases := []initCase{
		{"arbitrary dirs and moved flags", corrupt(0b101, 0b111)},
		{"all moved flags corrupted", corrupt(0b000, 0b111)},
		{"triple tower on node 0", tower},
	}
	workloads := []dynamics.Spec{
		dynamics.StaticSpec(),
		dynamics.EventualMissingSpec(0, 16, 0.9, 4),
	}
	for _, c := range cases {
		for _, sp := range workloads {
			vt := spec.NewVisitTracker(n)
			sim, err := fsync.New(fsync.Config{
				Algorithm:   core.PEF3Plus{},
				Dynamics:    obliviousBuild(sp, n)(cfg.Seed + 5),
				Placements:  c.placements,
				AllowTowers: true,
				Observers:   []fsync.Observer{vt},
			})
			if err != nil {
				return res, err
			}
			sim.Run(horizon)
			rep := vt.Report()
			res.Table.AddRow(c.name, sp.Name, rep.Covered, rep.MaxGap, possibleVerdict(rep, horizon))
		}
	}
	res.Notes = append(res.Notes,
		"The paper assumes towerless well-initiated executions; [4] gives a self-stabilizing algorithm.",
		"This probe documents PEF_3+'s empirical behaviour from corrupted states; the paper makes no claim here, so the experiment passes by reporting.")
	return res, nil
}

func runX7(cfg Config) (Result, error) {
	res := Result{ID: "E-X7", Title: "Team size sweep",
		Artifact: "extension", Pass: true}
	res.Table = metrics.NewTable("k", "workload", "cover", "maxGap", "verdict")

	const n = 16
	ks := []int{3, 4, 5, 6, 8}
	if cfg.Quick {
		ks = []int{3, 5}
	}
	workloads := []dynamics.Spec{
		dynamics.BernoulliSpec(0.6),
		dynamics.EventualMissingSpec(3, 40, 0.7, 4),
	}
	for _, k := range ks {
		horizon := 300 * n
		if cfg.Quick {
			horizon = 80 * n
		}
		for _, sp := range workloads {
			rep, _, err := explorationRun(core.PEF3Plus{}, n, k, obliviousBuild(sp, n), cfg.Seed+uint64(k), horizon)
			if err != nil {
				return res, err
			}
			res.ObserveExploration(rep)
			ok := possibleVerdict(rep, horizon)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL k=%d %s: %s", k, sp.Name, rep))
			}
			res.Table.AddRow(k, sp.Name, rep.CoverTime, rep.MaxGap, verdict(ok))
		}
	}
	res.Notes = append(res.Notes, "More robots shorten cover times but are never required beyond three.")
	return res, nil
}

func runX8(cfg Config) (Result, error) {
	res := Result{ID: "E-X8", Title: "Convergence framework prefix growth",
		Artifact: "framework [5]", Pass: true}
	res.Table = metrics.NewTable("source", "graphs", "prefixes", "growing", "executions agree")

	horizon := 240
	if cfg.Quick {
		horizon = 100
	}
	alg := baseline.BounceOnMissing{}
	// One-robot schedule.
	_, _, sim1, _, err := confineOne(alg, robot.RightIsCW, 6, horizon)
	if err != nil {
		return res, err
	}
	g1 := sim1.RecordedGraph()
	b1 := capBoundaries(convergence.PhaseBoundaries(g1), 6)
	seq1 := convergence.SequenceFromSchedule(g1, b1)
	conv1, err := convergence.VerifyExecutionConvergence(alg,
		[]fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}, seq1, g1, horizon)
	if err != nil {
		return res, err
	}
	res.Table.AddRow("Theorem 5.1 schedule", seq1.Len(), fmt.Sprintf("%v", seq1.PrefixLengths()), seq1.GrowingPrefixes(), conv1.OK)
	if !seq1.GrowingPrefixes() || !conv1.OK {
		res.Pass = false
	}

	// Two-robot schedule.
	adv := adversary.NewTwoRobotConfinement(6, 0, 0, 1)
	placements := []fsync.Placement{
		{Node: 0, Chirality: robot.RightIsCW},
		{Node: 1, Chirality: robot.RightIsCW},
	}
	sim2, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  placements,
		RecordGraph: true,
	})
	if err != nil {
		return res, err
	}
	sim2.Run(horizon)
	g2 := sim2.RecordedGraph()
	b2 := capBoundaries(convergence.PhaseBoundaries(g2), 6)
	seq2 := convergence.SequenceFromSchedule(g2, b2)
	conv2, err := convergence.VerifyExecutionConvergence(alg, placements, seq2, g2, horizon)
	if err != nil {
		return res, err
	}
	res.Table.AddRow("Theorem 4.1 schedule", seq2.Len(), fmt.Sprintf("%v", seq2.PrefixLengths()), seq2.GrowingPrefixes(), conv2.OK)
	if !seq2.GrowingPrefixes() || !conv2.OK {
		res.Pass = false
	}

	res.Notes = append(res.Notes,
		"Graph sequences reconstructed from the realized adversary schedules have strictly growing common prefixes,",
		"and executions on them agree with the execution on the limit graph for at least the graph prefix — the [5] theorem.")
	return res, nil
}

// capBoundaries keeps at most the first limit boundaries.
func capBoundaries(bs []int, limit int) []int {
	if len(bs) > limit {
		return bs[:limit]
	}
	return bs
}
