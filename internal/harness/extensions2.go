package harness

import (
	"fmt"

	"pef/internal/classes"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/prng"
	"pef/internal/spec"
)

func runX9(cfg Config) (Result, error) {
	res := Result{ID: "E-X9", Title: "Dynamics taxonomy classification",
		Artifact: "taxonomy of [6] (Section 2.1 context)", Pass: true}
	res.Table = metrics.NewTable("generator", "always-conn", "T-interval", "period", "Δ", "recurrent", "conn-over-time", "hierarchy")

	horizon := 360
	if cfg.Quick {
		horizon = 160
	}
	type gen struct {
		name string
		g    dyngraph.EvolvingGraph
		// wantCOT is the paper-class membership the generator promises.
		wantCOT bool
	}
	gens := []gen{
		{"static", dyngraph.NewStatic(6), true},
		{"bernoulli-0.6", dynamics.NewBernoulli(6, 0.6, cfg.Seed), true},
		{"t-interval-3", dynamics.NewTInterval(6, 3, cfg.Seed), true},
		{"roving-2", dynamics.NewRovingMissing(6, 2), true},
		{"bounded-rec-4", dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(6, 0.2, cfg.Seed), 4, cfg.Seed^1), true},
		{"periodic", mustPeriodic(6), true},
		{"eventual-missing", dyngraph.NewEventualMissing(
			dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(6, 0.7, cfg.Seed), 4, cfg.Seed^2), 0, 40), true},
		{"split-ring", dyngraph.NewWithout(dyngraph.NewStatic(6),
			dyngraph.Removal{Edge: 0, During: []dyngraph.Interval{{Start: 0, End: 1 << 30}}},
			dyngraph.Removal{Edge: 3, During: []dyngraph.Interval{{Start: 0, End: 1 << 30}}}), false},
	}
	for _, g := range gens {
		m := classes.Classify(g.g, horizon, 6, 24)
		if !m.RespectsHierarchy() {
			res.Pass = false
			res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s violates the class hierarchy: %+v", g.name, m))
		}
		if m.ConnectedOverTime != g.wantCOT {
			res.Pass = false
			res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s: connected-over-time=%t, generator promises %t", g.name, m.ConnectedOverTime, g.wantCOT))
		}
		res.Table.AddRow(g.name, m.AlwaysConnected, m.TInterval, m.Period, m.RecurrenceBound,
			m.Recurrent, m.ConnectedOverTime, verdict(m.RespectsHierarchy()))
	}
	res.Notes = append(res.Notes,
		"Places the paper's connected-over-time class at the bottom of the Casteigts et al. hierarchy;",
		"the split ring (two edges never appear) is the canonical non-member every checker must reject.")
	return res, nil
}

// mustPeriodic builds the taxonomy demo timetable; patterns are valid by
// construction.
func mustPeriodic(n int) dyngraph.EvolvingGraph {
	patterns := make([][]bool, n)
	for e := range patterns {
		p := make([]bool, 4)
		p[e%4] = true
		p[(e+2)%4] = true
		patterns[e] = p
	}
	g, err := dynamics.NewPeriodic(n, patterns)
	if err != nil {
		panic(err)
	}
	return g
}

// x10Rings is the ring-size sweep of E-X10, shared by the full experiment
// and its per-ring-size shards.
func x10Rings(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{4, 8, 16, 32}
}

func runX10(cfg Config) (Result, error) {
	return runX10Rings(cfg, "E-X10", x10Rings(cfg.Quick))
}

func shardX10(quick bool) []Experiment {
	return shardByRing("E-X10", "Sentinel formation time (Lemma 3.7)",
		"Lemma 3.7", x10Rings(quick), runX10Rings)
}

func runX10Rings(cfg Config, id string, ns []int) (Result, error) {
	res := Result{ID: id, Title: "Sentinel formation time (Lemma 3.7)",
		Artifact: "Lemma 3.7", Pass: true}
	res.Table = metrics.NewTable("n", "k", "edge missing from", "sentinels stable from", "lag", "verdict")

	for _, n := range ns {
		for _, k := range []int{3, 4} {
			if k >= n {
				continue
			}
			horizon := 400 * 4
			if cfg.Quick {
				horizon = 200 * 4
			}
			const from = 24
			edge := n / 2
			base := dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(n, 0.7, cfg.Seed+uint64(n)), 4, cfg.Seed^3)
			g := dyngraph.NewEventualMissing(base, edge, from)
			watch := spec.NewSentinelWatch(g.Ring(), edge, from)
			sim, err := fsync.New(fsync.Config{
				Algorithm:  core.PEF3Plus{},
				Dynamics:   fsync.Oblivious{G: g},
				Placements: fsync.RandomPlacements(n, k, prng.NewSource(cfg.Seed+uint64(n*10+k))),
				Observers:  []fsync.Observer{watch},
			})
			if err != nil {
				return res, err
			}
			sim.Run(horizon)
			rep := watch.Report()
			// Stabilizing before the edge even vanishes is legal (the
			// robots may coincidentally hold the posts early), so the only
			// requirement is that a stable suffix exists.
			ok := rep.Stabilized
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL n=%d k=%d: %s", n, k, rep))
			}
			lag := -1
			if rep.Stabilized {
				if lag = rep.StableFrom - from; lag < 0 {
					lag = 0
				}
				res.Observe("sentinelLag", lag)
			}
			res.Table.AddRow(n, k, from, rep.StableFrom, lag, verdict(ok))
		}
	}
	res.Notes = append(res.Notes,
		"Lemma 3.7: once an edge is missing forever, one robot ends up posted forever at each extremity, pointing at it.",
		"'lag' is the stabilization delay after the edge disappears; it grows with n (robots must walk to the extremities).")
	return res, nil
}
