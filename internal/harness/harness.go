// Package harness defines and runs the experiment index of DESIGN.md: one
// experiment per table and figure of the paper (E-T1.R1 … E-T1.R5, E-F1,
// E-F2, E-F3) plus the extension experiments (E-X1 … E-X8). Each experiment
// produces a pass/fail verdict against the paper's prediction and a report
// table; cmd/pefexperiments renders the full index into EXPERIMENTS.md.
package harness

import (
	"context"
	"fmt"
	"io"

	"pef/internal/metrics"
	"pef/internal/robot"
	"pef/internal/spec"
)

// Config parameterizes a harness run.
type Config struct {
	// Seed drives all pseudo-randomness; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64
	// Quick reduces horizons and sweep sizes (used by unit tests and
	// benchmarks); the full experiment suite leaves it false.
	Quick bool
	// DisableLockstep keeps experiments that exercise the bit-parallel
	// lockstep engine on the scalar path instead — the same escape hatch
	// scenario campaigns expose, for bisecting a suspected engine
	// divergence. Experiments that never touch the engine ignore it.
	DisableLockstep bool
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E-T1.R2").
	ID string
	// Title describes the experiment.
	Title string
	// Artifact names the paper artifact reproduced (e.g. "Table 1 row 2").
	Artifact string
	// Pass reports whether the observation matches the paper's prediction.
	Pass bool
	// Table holds the measured rows.
	Table *metrics.Table
	// Notes carries free-form findings.
	Notes []string
	// Diagram optionally holds a space-time excerpt (Figures 2 and 3).
	Diagram string
	// Scalars holds per-run scalar observations (cover times, revisit
	// gaps, …) that sweeps aggregate into min/mean/max trends across
	// seeds. Order is the experiment's own emission order.
	Scalars []metrics.Scalar
}

// Observe appends one scalar observation to the result.
func (r *Result) Observe(name string, value int) {
	r.Scalars = append(r.Scalars, metrics.Scalar{Name: name, Value: value})
}

// ObserveExploration records the standard exploration scalars of a run
// report: the cover time (when the run covered the ring) and the maximum
// revisit gap.
func (r *Result) ObserveExploration(rep spec.ExplorationReport) {
	if rep.CoverTime >= 0 {
		r.Observe("cover", rep.CoverTime)
	}
	r.Observe("maxGap", rep.MaxGap)
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID       string
	Title    string
	Artifact string
	Run      func(cfg Config) (Result, error)
	// Shards optionally decomposes the experiment into independently
	// runnable sub-experiments (one per ring size for the heavy sweeps),
	// so a single experiment no longer serializes on one batch worker.
	// The quick flag must match the Config the shards will run under,
	// because it selects the swept ring sizes.
	Shards func(quick bool) []Experiment
}

// Sharded expands every experiment that declares Shards into its
// sub-experiments, leaving the others untouched. Expansion preserves index
// order, and each shard's rows reproduce exactly the rows the full
// experiment computes for that ring size (same seeds, same workloads), so
// a sharded sweep covers the same ground with finer-grained parallelism.
func Sharded(exps []Experiment, quick bool) []Experiment {
	var out []Experiment
	for _, e := range exps {
		if e.Shards != nil {
			out = append(out, e.Shards(quick)...)
			continue
		}
		out = append(out, e)
	}
	return out
}

// shardByRing builds one sub-experiment per ring size with IDs
// "<id>#n=<size>", each running the parameterized body on a single size.
func shardByRing(id, title, artifact string, ns []int, run func(cfg Config, id string, ns []int) (Result, error)) []Experiment {
	out := make([]Experiment, 0, len(ns))
	for _, n := range ns {
		n := n
		sid := fmt.Sprintf("%s#n=%d", id, n)
		out = append(out, Experiment{
			ID:       sid,
			Title:    fmt.Sprintf("%s [n=%d]", title, n),
			Artifact: artifact,
			Run: func(cfg Config) (Result, error) {
				return run(cfg, sid, []int{n})
			},
		})
	}
	return out
}

// shardByRingAlg builds one sub-experiment per (ring size, victim
// algorithm) pair with IDs "<id>#n=<size>/a=<alg>" — the decomposition of
// the impossibility experiments' victim-suite loops, so no (ring, victim)
// case serializes a sweep on one batch worker. Concatenating the shard
// tables in index order reproduces the full experiment exactly.
func shardByRingAlg(id, title, artifact string, ns []int, algs []robot.Algorithm, run func(cfg Config, id string, ns []int, algs []robot.Algorithm) (Result, error)) []Experiment {
	out := make([]Experiment, 0, len(ns)*len(algs))
	for _, n := range ns {
		for _, alg := range algs {
			n, alg := n, alg
			sid := fmt.Sprintf("%s#n=%d/a=%s", id, n, alg.Name())
			out = append(out, Experiment{
				ID:       sid,
				Title:    fmt.Sprintf("%s [n=%d, %s]", title, n, alg.Name()),
				Artifact: artifact,
				Run: func(cfg Config) (Result, error) {
					return run(cfg, sid, []int{n}, []robot.Algorithm{alg})
				},
			})
		}
	}
	return out
}

// All returns the full experiment index in report order.
func All() []Experiment {
	return []Experiment{
		{ID: "E-T1.R1", Title: "PEF_3+ explores with k>=3 robots on n>k rings", Artifact: "Table 1 row 1 (Theorem 3.1)", Run: runT1R1, Shards: shardT1R1},
		{ID: "E-T1.R2", Title: "Two robots are confined on rings of size >= 4", Artifact: "Table 1 row 2 (Theorem 4.1)", Run: runT1R2, Shards: shardT1R2},
		{ID: "E-T1.R3", Title: "PEF_2 explores the 3-node ring with 2 robots", Artifact: "Table 1 row 3 (Theorem 4.2)", Run: runT1R3},
		{ID: "E-T1.R4", Title: "One robot is confined on rings of size >= 3", Artifact: "Table 1 row 4 (Theorem 5.1)", Run: runT1R4, Shards: shardT1R4},
		{ID: "E-T1.R5", Title: "PEF_1 explores the 2-node ring with 1 robot", Artifact: "Table 1 row 5 (Theorem 5.2)", Run: runT1R5},
		{ID: "E-F1", Title: "Mirror gadget G' and Claims 1-4 of Lemma 4.1", Artifact: "Figure 1", Run: runF1},
		{ID: "E-F2", Title: "Four-phase confinement schedule for two robots", Artifact: "Figure 2 (Theorem 4.1 construction)", Run: runF2},
		{ID: "E-F3", Title: "Two-phase confinement schedule for one robot", Artifact: "Figure 3 (Theorem 5.1 construction)", Run: runF3},
		{ID: "E-X1", Title: "Cover time scaling of PEF_3+ with ring size", Artifact: "extension", Run: runX1, Shards: shardX1},
		{ID: "E-X2", Title: "Revisit gap versus edge recurrence bound", Artifact: "extension", Run: runX2},
		{ID: "E-X3", Title: "Rule ablations of PEF_3+", Artifact: "extension (Section 3.1 rationale)", Run: runX3},
		{ID: "E-X4", Title: "SSYNC impossibility versus FSYNC control", Artifact: "related work [10] (Section 1)", Run: runX4},
		{ID: "E-X5", Title: "PEF_3+ on connected-over-time chains", Artifact: "Section 1 remark", Run: runX5, Shards: shardX5},
		{ID: "E-X6", Title: "Self-stabilization probe from corrupted configurations", Artifact: "extension ([4] context)", Run: runX6},
		{ID: "E-X7", Title: "Team size sweep", Artifact: "extension", Run: runX7},
		{ID: "E-X8", Title: "Convergence framework prefix growth", Artifact: "framework [5]", Run: runX8},
		{ID: "E-X9", Title: "Dynamics taxonomy classification", Artifact: "taxonomy of [6] (Section 2.1 context)", Run: runX9},
		{ID: "E-X10", Title: "Sentinel formation time (Lemma 3.7)", Artifact: "Lemma 3.7", Run: runX10, Shards: shardX10},
		{ID: "E-X11", Title: "The three-robot threshold: containment vs legality", Artifact: "Table 1 synthesis", Run: runX11},
		{ID: "E-X12", Title: "Lockstep engine equivalence: bit-parallel vs scalar trajectories", Artifact: "extension (engine invariant)", Run: runX12},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment under cfg.Seed and streams a report to
// w. It returns the results preceding the first execution error, and that
// error (nil when every experiment executed). RunAll is a single-seed view
// over the batch engine: it runs RunBatch with one worker and emits in
// canonical order, so its output is unchanged from the sequential era.
func RunAll(cfg Config, w io.Writer) ([]Result, error) {
	var results []Result
	var firstErr error
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunBatch(ctx, BatchConfig{
		Seeds:           []uint64{cfg.Seed},
		Workers:         1,
		Quick:           cfg.Quick,
		DisableLockstep: cfg.DisableLockstep,
		OnResult: func(j JobResult) {
			if firstErr != nil {
				return
			}
			if j.Err != nil {
				// Stop the batch at the first error, like the
				// sequential loop this replaced.
				firstErr = j.Err
				cancel()
				return
			}
			results = append(results, j.Result)
			if w != nil {
				if werr := WriteResult(w, j.Result); werr != nil {
					firstErr = werr
					cancel()
				}
			}
		},
	})
	if firstErr != nil {
		return results, firstErr
	}
	return results, err
}

// WriteResult renders one result in the report format.
func WriteResult(w io.Writer, res Result) error {
	status := "PASS"
	if !res.Pass {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "\n## %s — %s [%s]\n\nReproduces: %s\n\n", res.ID, res.Title, status, res.Artifact); err != nil {
		return err
	}
	if res.Table != nil && res.Table.Rows() > 0 {
		if _, err := io.WriteString(w, res.Table.String()); err != nil {
			return err
		}
	}
	for _, n := range res.Notes {
		if _, err := fmt.Fprintf(w, "\n- %s", n); err != nil {
			return err
		}
	}
	if res.Diagram != "" {
		if _, err := fmt.Fprintf(w, "\n\n```\n%s```\n", res.Diagram); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
