package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsPassQuick(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s errored: %v", e.ID, err)
			}
			if !res.Pass {
				t.Fatalf("%s failed: notes=%v\n%s", e.ID, res.Notes, res.Table.String())
			}
			if res.ID != e.ID {
				t.Fatalf("result ID %q does not match experiment %q", res.ID, e.ID)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("E-T1.R1"); !ok {
		t.Fatal("E-T1.R1 not found")
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestRunAllStreamsReport(t *testing.T) {
	var buf bytes.Buffer
	results, err := RunAll(Config{Seed: 2, Quick: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(All()) {
		t.Fatalf("got %d results, want %d", len(results), len(All()))
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("report missing %s", e.ID)
		}
	}
	if !strings.Contains(out, "PASS") {
		t.Error("report contains no PASS verdicts")
	}
}

func TestExperimentsDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if _, err := RunAll(Config{Seed: 7, Quick: true}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("experiment suite is not deterministic for a fixed seed")
	}
}
