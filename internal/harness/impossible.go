package harness

import (
	"fmt"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/convergence"
	"pef/internal/core"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/robot"
	"pef/internal/spec"
	"pef/internal/trace"
)

// victimSuite is the empirical stand-in for the universal quantifier of the
// impossibility theorems: all baselines plus the paper's algorithms run
// outside their valid range.
func victimSuite() []robot.Algorithm {
	algs := baseline.Suite()
	algs = append(algs, core.PEF3Plus{}, core.PEF2{}, core.PEF1{}, core.NoRule2{}, core.NoRule3{})
	return algs
}

// confineOne runs the Theorem 5.1 adversary against alg and reports the
// confinement tracker, the adversary (for stall extraction), and the
// simulator (for the recorded schedule).
func confineOne(alg robot.Algorithm, chir robot.Chirality, n, horizon int) (*spec.ConfinementTracker, *adversary.OneRobotConfinement, *fsync.Simulator, *fsync.SnapshotRecorder, error) {
	adv := adversary.NewOneRobotConfinement(n, 0, 0)
	ct := spec.NewConfinementTracker()
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  []fsync.Placement{{Node: 0, Chirality: chir}},
		Observers:   []fsync.Observer{ct, rec},
		RecordGraph: true,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sim.Run(horizon)
	return ct, adv, sim, rec, nil
}

// t1r4Rings is the ring-size sweep of E-T1.R4, shared by the full
// experiment and its per-ring-size shards.
func t1r4Rings(quick bool) []int {
	if quick {
		return []int{3, 8}
	}
	return []int{3, 4, 8, 16}
}

func runT1R4(cfg Config) (Result, error) {
	return runT1R4Cases(cfg, "E-T1.R4", t1r4Rings(cfg.Quick), victimSuite())
}

func shardT1R4(quick bool) []Experiment {
	return shardByRingAlg("E-T1.R4", "One robot is confined on rings of size >= 3",
		"Table 1 row 4 (Theorem 5.1)", t1r4Rings(quick), victimSuite(), runT1R4Cases)
}

func runT1R4Cases(cfg Config, id string, ns []int, algs []robot.Algorithm) (Result, error) {
	res := Result{ID: id, Title: "One robot is confined on rings of size >= 3",
		Artifact: "Table 1 row 4 (Theorem 5.1)", Pass: true}
	res.Table = metrics.NewTable("algorithm", "n", "visited", "outcome", "verdict")

	for _, n := range ns {
		horizon := 64 * n
		if cfg.Quick {
			horizon = 24 * n
		}
		for _, alg := range algs {
			ct, adv, sim, _, err := confineOne(alg, robot.RightIsCW, n, horizon)
			if err != nil {
				return res, err
			}
			outcome := "cycling"
			if _, stalled := adv.Stall(sim.Now(), horizon/2); stalled {
				outcome = "stalled"
			}
			ok := ct.ConfinedTo(2)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s n=%d visited %v", alg.Name(), n, ct.VisitedNodes()))
			}
			res.Table.AddRow(alg.Name(), n, ct.Distinct(), outcome, verdict(ok))
		}
	}
	res.Notes = append(res.Notes,
		"Paper prediction: impossible — every deterministic algorithm visits at most 2 nodes.",
		"'cycling' realizes the recurrent-edges limit graph Gω; 'stalled' realizes a legal eventual-missing-edge graph.")
	return res, nil
}

// t1r2Rings is the ring-size sweep of E-T1.R2, shared by the full
// experiment and its per-ring-size shards.
func t1r2Rings(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{4, 5, 8, 16}
}

func runT1R2(cfg Config) (Result, error) {
	return runT1R2Cases(cfg, "E-T1.R2", t1r2Rings(cfg.Quick), victimSuite())
}

func shardT1R2(quick bool) []Experiment {
	return shardByRingAlg("E-T1.R2", "Two robots are confined on rings of size >= 4",
		"Table 1 row 2 (Theorem 4.1)", t1r2Rings(quick), victimSuite(), runT1R2Cases)
}

func runT1R2Cases(cfg Config, id string, ns []int, algs []robot.Algorithm) (Result, error) {
	res := Result{ID: id, Title: "Two robots are confined on rings of size >= 4",
		Artifact: "Table 1 row 2 (Theorem 4.1)", Pass: true}
	res.Table = metrics.NewTable("algorithm", "n", "visited", "outcome", "verdict")

	for _, n := range ns {
		horizon := 64 * n
		if cfg.Quick {
			horizon = 24 * n
		}
		for _, alg := range algs {
			adv := adversary.NewTwoRobotConfinement(n, 0, 0, 1)
			ct := spec.NewConfinementTracker()
			sim, err := fsync.New(fsync.Config{
				Algorithm: alg,
				Dynamics:  adv,
				Placements: []fsync.Placement{
					{Node: 0, Chirality: robot.RightIsCW},
					{Node: 1, Chirality: robot.RightIsCCW},
				},
				Observers: []fsync.Observer{ct},
			})
			if err != nil {
				return res, err
			}
			sim.Run(horizon)
			outcome := "cycling"
			if _, stalled := adv.Stall(sim.Now(), horizon/2); stalled {
				outcome = "stalled"
			}
			ok := ct.ConfinedTo(3)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s n=%d visited %v", alg.Name(), n, ct.VisitedNodes()))
			}
			res.Table.AddRow(alg.Name(), n, ct.Distinct(), outcome, verdict(ok))
		}
	}
	res.Notes = append(res.Notes,
		"Paper prediction: impossible — every pair of deterministic robots visits at most 3 nodes.",
		"Stalled outcomes feed the Lemma 4.1 mirror gadget; see E-F1.")
	return res, nil
}

func runF1(cfg Config) (Result, error) {
	res := Result{ID: "E-F1", Title: "Mirror gadget G' and Claims 1-4 of Lemma 4.1",
		Artifact: "Figure 1", Pass: true}
	res.Table = metrics.NewTable("algorithm", "chirality", "stall t", "claims 1-4", "stalled forever", "visited in G'", "verdict")

	horizon := 120
	patience := 40
	if cfg.Quick {
		horizon, patience = 60, 20
	}
	cases := 0
	for _, alg := range victimSuite() {
		for _, chir := range []robot.Chirality{robot.RightIsCW, robot.RightIsCCW} {
			ct, adv, sim, rec, err := confineOne(alg, chir, 8, horizon)
			if err != nil {
				return res, err
			}
			_ = ct
			info, stalled := adv.Stall(sim.Now(), patience)
			if !stalled {
				continue // cycling victims are covered by E-T1.R4 directly
			}
			cases++
			in := adversary.MirrorInput{
				Alg:         alg,
				Chir:        chir,
				G:           sim.RecordedGraph(),
				Traj:        rec.Trajectory(0)[:info.Since+1],
				States:      rec.States(0)[:info.Since+1],
				StallTime:   info.Since,
				MissingSide: info.MissingSide,
			}
			world, err := adversary.BuildMirror(in)
			if err != nil {
				return res, fmt.Errorf("mirror build for %s: %w", alg.Name(), err)
			}
			rep, err := world.Verify(horizon / 2)
			if err != nil {
				return res, err
			}
			ok := rep.OK()
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s: %v", alg.Name(), rep.Failures))
			}
			res.Table.AddRow(alg.Name(), chir, info.Since,
				fmt.Sprintf("%t/%t/%t/%t", rep.Claim1, rep.Claim2, rep.Claim3, rep.Claim4),
				rep.StalledForever, rep.DistinctVisited, verdict(ok))
		}
	}
	if cases == 0 {
		res.Pass = false
		res.Notes = append(res.Notes, "no stalled prefixes found — mirror untested")
	}
	res.Notes = append(res.Notes,
		"Each stalled prefix from the Theorem 5.1 adversary is mirrored onto the 8-node gadget of Figure 1.",
		"Claims: (1) symmetric actions, (2) odd distance / no tower, (3) r1 retraces the original prefix, (4) adjacency and equal state at the stall.")
	return res, nil
}

func runF3(cfg Config) (Result, error) {
	res := Result{ID: "E-F3", Title: "Two-phase confinement schedule for one robot",
		Artifact: "Figure 3 (Theorem 5.1 construction)", Pass: true}
	res.Table = metrics.NewTable("check", "value", "verdict")

	n := 8
	horizon := 240
	if cfg.Quick {
		horizon = 80
	}
	// bounce-on-missing keeps moving forever: the schedule realizes Gω.
	ct, _, sim, rec, err := confineOne(baseline.BounceOnMissing{}, robot.RightIsCW, n, horizon)
	if err != nil {
		return res, err
	}
	g := sim.RecordedGraph()

	confined := ct.ConfinedTo(2)
	res.Table.AddRow("distinct nodes visited", ct.Distinct(), verdict(confined))

	cot := dyngraph.VerifyConnectedOverTime(g, horizon, []int{0, horizon / 3, 2 * horizon / 3})
	res.Table.AddRow("realized graph connected-over-time", cot.OK, verdict(cot.OK))

	// Every absence interval of every edge must be finite — the property
	// the proof needs for Gω. On a finite horizon the witness is a short
	// maximal absence run: the live victim keeps moving, so no edge stays
	// blocked for more than a few rounds.
	maxRun := 0
	for e := 0; e < n; e++ {
		if run := dyngraph.MaxAbsenceRun(g, e, horizon); run > maxRun {
			maxRun = run
		}
	}
	finite := maxRun <= horizon/4
	res.Table.AddRow("max absence run (finite intervals)", maxRun, verdict(finite))

	boundaries := convergence.PhaseBoundaries(g)
	maxSeq := 8
	if len(boundaries) < maxSeq {
		maxSeq = len(boundaries)
	}
	seq := convergence.SequenceFromSchedule(g, boundaries[:maxSeq])
	growing := seq.GrowingPrefixes()
	res.Table.AddRow("graph sequence prefixes growing", growing, verdict(growing))

	conv, err := convergence.VerifyExecutionConvergence(baseline.BounceOnMissing{},
		[]fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}, seq, g, horizon)
	if err != nil {
		return res, err
	}
	res.Table.AddRow("execution convergence ([5] theorem)", conv.OK, verdict(conv.OK))

	res.Pass = confined && cot.OK && finite && growing && conv.OK
	snaps := make([]fsync.Snapshot, rec.Len())
	for t := range snaps {
		snaps[t] = rec.At(t)
	}
	res.Diagram = trace.Header(n) + trace.SpaceTimeString(g, snaps, 0, 16)
	res.Notes = append(res.Notes,
		"The diagram shows the alternating single-edge removals of Figure 3 chasing the robot between u and v.")
	return res, nil
}

func runF2(cfg Config) (Result, error) {
	res := Result{ID: "E-F2", Title: "Four-phase confinement schedule for two robots",
		Artifact: "Figure 2 (Theorem 4.1 construction)", Pass: true}
	res.Table = metrics.NewTable("check", "value", "verdict")

	n := 8
	horizon := 320
	if cfg.Quick {
		horizon = 120
	}
	alg := baseline.BounceOnMissing{}
	placements := []fsync.Placement{
		{Node: 0, Chirality: robot.RightIsCW},
		{Node: 1, Chirality: robot.RightIsCW},
	}
	adv := adversary.NewTwoRobotConfinement(n, 0, 0, 1)
	ct := spec.NewConfinementTracker()
	rec := &fsync.SnapshotRecorder{}
	sim, err := fsync.New(fsync.Config{
		Algorithm:   alg,
		Dynamics:    adv,
		Placements:  placements,
		Observers:   []fsync.Observer{ct, rec},
		RecordGraph: true,
	})
	if err != nil {
		return res, err
	}
	sim.Run(horizon)
	g := sim.RecordedGraph()

	confined := ct.ConfinedTo(3)
	res.Table.AddRow("distinct nodes visited", ct.Distinct(), verdict(confined))

	cot := dyngraph.VerifyConnectedOverTime(g, horizon, []int{0, horizon / 3, 2 * horizon / 3})
	res.Table.AddRow("realized graph connected-over-time", cot.OK, verdict(cot.OK))

	boundaries := convergence.PhaseBoundaries(g)
	maxSeq := 8
	if len(boundaries) < maxSeq {
		maxSeq = len(boundaries)
	}
	seq := convergence.SequenceFromSchedule(g, boundaries[:maxSeq])
	growing := seq.GrowingPrefixes()
	res.Table.AddRow("graph sequence prefixes growing", growing, verdict(growing))

	conv, err := convergence.VerifyExecutionConvergence(alg, placements, seq, g, horizon)
	if err != nil {
		return res, err
	}
	res.Table.AddRow("execution convergence ([5] theorem)", conv.OK, verdict(conv.OK))

	res.Pass = confined && cot.OK && growing && conv.OK
	snaps := make([]fsync.Snapshot, rec.Len())
	for t := range snaps {
		snaps[t] = rec.At(t)
	}
	res.Diagram = trace.Header(n) + trace.SpaceTimeString(g, snaps, 0, 20)
	res.Notes = append(res.Notes,
		"The diagram shows the four-phase cycle of Figure 2: r2 pushed v→w, r1 pulled u→v→u, r2 returned w→v.")
	return res, nil
}
