package harness

import (
	"fmt"

	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/prng"
	"pef/internal/robot"
)

// x12Shape is one scenario shape of the lockstep equivalence sweep: an
// algorithm, a ring, a team size, and a per-seed graph family.
type x12Shape struct {
	name  string
	alg   robot.LaneAlgorithm
	n, k  int
	graph func(seed uint64) dyngraph.EvolvingGraph
}

// x12Shapes covers each exploration algorithm of Table 1 on a
// representative dynamics: the high-churn Bernoulli ring, a wrapped family
// (eventual missing edge over bounded recurrence), and the two small-ring
// regimes of PEF_2 and PEF_1.
func x12Shapes() []x12Shape {
	return []x12Shape{
		{"pef3+/bernoulli", core.PEF3Plus{}, 8, 3, func(seed uint64) dyngraph.EvolvingGraph {
			return dynamics.NewBernoulli(8, 0.7, seed)
		}},
		{"pef3+/ev-missing", core.PEF3Plus{}, 9, 4, func(seed uint64) dyngraph.EvolvingGraph {
			return dyngraph.NewEventualMissing(
				dynamics.NewBoundedRecurrence(dynamics.NewBernoulli(9, 0.5, seed), 4, seed^0x51DE), 4, 24)
		}},
		{"pef2/3-ring", core.PEF2{}, 3, 2, func(seed uint64) dyngraph.EvolvingGraph {
			return dynamics.NewBernoulli(3, 0.6, seed)
		}},
		{"pef1/2-ring", core.PEF1{}, 2, 1, func(seed uint64) dyngraph.EvolvingGraph {
			return dynamics.NewBernoulli(2, 0.5, seed)
		}},
	}
}

// runX12 pins the lockstep engine's defining invariant at the harness
// level: a bit-parallel block of seed lanes must reproduce, round by
// round, the exact position trajectories of the scalar simulator runs it
// replaces. Each shape runs a block of independently seeded lanes with
// staggered horizons (exercising lane retirement) against per-lane scalar
// references built from the same seeds. Under Config.DisableLockstep the
// experiment runs the scalar legs only and records that the equivalence
// was not exercised — the bisection escape hatch, not a verdict.
func runX12(cfg Config) (Result, error) {
	res := Result{ID: "E-X12", Title: "Lockstep engine equivalence: bit-parallel vs scalar trajectories",
		Artifact: "extension (engine invariant)", Pass: true}
	res.Table = metrics.NewTable("shape", "alg", "n", "k", "lanes", "horizon", "lane-rounds", "mismatches", "verdict")

	lanes, horizon := 32, 320
	if cfg.Quick {
		lanes, horizon = 8, 120
	}
	for si, sh := range x12Shapes() {
		src := prng.NewSource(cfg.Seed ^ uint64(si+1)*0x9E3779B97F4A7C15)
		seeds := make([]uint64, lanes)
		for l := range seeds {
			seeds[l] = src.Uint64()
		}
		// Horizons are staggered so lanes retire at different rounds.
		laneHorizon := func(l int) int { return horizon + l%5 }

		scalars := make([]*fsync.Simulator, lanes)
		for l := range scalars {
			sim, err := fsync.New(fsync.Config{
				Algorithm:  sh.alg,
				Dynamics:   fsync.Oblivious{G: sh.graph(seeds[l])},
				Placements: fsync.RandomPlacements(sh.n, sh.k, prng.NewSource(seeds[l])),
			})
			if err != nil {
				return res, err
			}
			scalars[l] = sim
		}
		if cfg.DisableLockstep {
			for l, sim := range scalars {
				sim.Run(laneHorizon(l))
			}
			res.Table.AddRow(sh.name, sh.alg.Name(), sh.n, sh.k, lanes, horizon, "-", "-", "skip")
			continue
		}

		lcfg := fsync.LockstepConfig{Algorithm: sh.alg}
		for l := 0; l < lanes; l++ {
			// The lockstep leg gets its own graph instance with the same
			// seed, mirroring how a scalar campaign would build the lane.
			lcfg.Lanes = append(lcfg.Lanes, fsync.LaneRun{
				Graph:      sh.graph(seeds[l]),
				Placements: fsync.RandomPlacements(sh.n, sh.k, prng.NewSource(seeds[l])),
				Horizon:    laneHorizon(l),
			})
		}
		ls, err := fsync.NewLockstep(lcfg)
		if err != nil {
			return res, err
		}
		compared, mismatches := 0, 0
		for !ls.Done() {
			stepped := ls.Step()
			for l := 0; l < lanes; l++ {
				if stepped&(1<<uint(l)) == 0 {
					continue
				}
				scalars[l].Step()
				compared++
				snap := scalars[l].Snapshot()
				for i := 0; i < sh.k; i++ {
					if got, want := ls.Position(i, l), snap.Positions[i]; got != want {
						mismatches++
						if mismatches <= 3 {
							res.Notes = append(res.Notes, fmt.Sprintf(
								"FAIL %s lane %d robot %d at t=%d: lockstep node %d, scalar node %d",
								sh.name, l, i, ls.Now(), got, want))
						}
						break // one mismatch per lane-round
					}
				}
			}
		}
		ok := mismatches == 0
		if !ok {
			res.Pass = false
		}
		res.Observe("laneRounds", compared)
		res.Table.AddRow(sh.name, sh.alg.Name(), sh.n, sh.k, lanes, horizon, compared, mismatches, verdict(ok))
	}
	if cfg.DisableLockstep {
		res.Notes = append(res.Notes,
			"Lockstep disabled (-lockstep=false): scalar legs only, the equivalence was not exercised.")
		return res, nil
	}
	res.Notes = append(res.Notes,
		"Every lane of a bit-parallel block reproduces its scalar reference trajectory node-for-node, round-for-round;",
		"'lane-rounds' counts the per-lane rounds compared (staggered horizons make lanes retire at different times).")
	return res, nil
}
