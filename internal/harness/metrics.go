package harness

import "pef/internal/telemetry"

// PoolMetrics instruments StreamPool/RunPool. Every field is a nilable
// telemetry instrument and a nil *PoolMetrics disables the group, so
// unwired pools pay one branch per job. The pool records around the
// scheduling edges (dispatch, completion, emission) — never inside Run —
// and nothing it records feeds back into scheduling, so wiring metrics
// cannot change emission order or any output byte.
type PoolMetrics struct {
	// Dispatched counts jobs handed to workers; Retired counts jobs
	// emitted in index order. Dispatched-Retired is the live pipeline
	// depth.
	Dispatched *telemetry.Counter
	Retired    *telemetry.Counter
	// PermitWaits counts dispatch stalls: the dispatcher wanted to issue
	// the next job but the reorder window was full. A high rate relative
	// to Dispatched means emission (a slow consumer or one straggler job)
	// is the bottleneck, not the workers.
	PermitWaits *telemetry.Counter
	// InFlight gauges jobs currently dispatched but not yet completed
	// (high-water = peak concurrency actually reached). ReorderDepth
	// gauges completed-but-unemitted results parked in the reorder ring
	// (high-water = worst out-of-order burst).
	InFlight     *telemetry.Gauge
	ReorderDepth *telemetry.Gauge
	// WorkerJobs is the per-worker job-count distribution, one observation
	// per worker goroutine at pool shutdown — the utilization-balance
	// signal (a wide spread means stragglers pinned some workers).
	WorkerJobs *telemetry.Hist
}

// NewPoolMetrics wires a PoolMetrics group onto reg under the given name
// prefix (e.g. "pool"). Nil registry: nil metrics (telemetry off).
func NewPoolMetrics(reg *telemetry.Registry, prefix string) *PoolMetrics {
	if reg == nil {
		return nil
	}
	return &PoolMetrics{
		Dispatched:   reg.Counter(prefix + ".dispatched"),
		Retired:      reg.Counter(prefix + ".retired"),
		PermitWaits:  reg.Counter(prefix + ".permitWaits"),
		InFlight:     reg.Gauge(prefix + ".inFlight"),
		ReorderDepth: reg.Gauge(prefix + ".reorderDepth"),
		WorkerJobs:   reg.Hist(prefix + ".workerJobs"),
	}
}
