package harness

import (
	"context"
	"testing"

	"pef/internal/telemetry"
)

// TestPoolMetricsAccounting runs an instrumented pool and checks the
// deterministic invariants: every job is dispatched and retired exactly
// once, the in-flight gauge drains to zero with a plausible high-water,
// and per-worker job counts sum to the total.
func TestPoolMetricsAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	pm := NewPoolMetrics(reg, "pool")
	const total, workers = 97, 4
	results, err := RunPool(context.Background(), PoolConfig[int]{
		Total:   total,
		Workers: workers,
		Metrics: pm,
		Run:     func(i int) int { return i * i },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != total || results[10] != 100 {
		t.Fatalf("results corrupted: len %d", len(results))
	}
	if got := pm.Dispatched.Value(); got != total {
		t.Fatalf("dispatched = %d, want %d", got, total)
	}
	if got := pm.Retired.Value(); got != total {
		t.Fatalf("retired = %d, want %d", got, total)
	}
	if got := pm.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight did not drain: %d", got)
	}
	if hi := pm.InFlight.High(); hi < 1 {
		t.Fatalf("in-flight high-water = %d, want >= 1", hi)
	}
	wj := pm.WorkerJobs.Value()
	if wj.Count < 1 || wj.Count > workers {
		t.Fatalf("worker-jobs observations = %d, want 1..%d", wj.Count, workers)
	}
	sum := 0
	for _, cell := range wj.Cells {
		sum += cell.Value * cell.Count
	}
	if sum != total {
		t.Fatalf("per-worker job counts sum to %d, want %d", sum, total)
	}
	if pm.ReorderDepth.High() < 0 || pm.ReorderDepth.Value() != 0 {
		t.Fatalf("reorder depth did not drain: %d", pm.ReorderDepth.Value())
	}
}

// TestPoolMetricsNilSafe pins that a nil PoolMetrics (telemetry off) and
// a nil registry cost nothing and change nothing.
func TestPoolMetricsNilSafe(t *testing.T) {
	if NewPoolMetrics(nil, "pool") != nil {
		t.Fatal("nil registry must yield nil metrics")
	}
	results, err := RunPool(context.Background(), PoolConfig[int]{
		Total: 10,
		Run:   func(i int) int { return i },
	})
	if err != nil || len(results) != 10 {
		t.Fatalf("uninstrumented pool broke: %v, %d results", err, len(results))
	}
}

// TestPoolMetricsByteInvisible checks the core telemetry bar at the pool
// level: the emitted result order (and so every report built from it) is
// identical with metrics wired and without.
func TestPoolMetricsByteInvisible(t *testing.T) {
	run := func(pm *PoolMetrics) []int {
		var order []int
		for item := range StreamPool(context.Background(), PoolConfig[int]{
			Total:   50,
			Workers: 7,
			Metrics: pm,
			Run:     func(i int) int { return i * 3 },
		}) {
			order = append(order, item.I, item.R)
		}
		return order
	}
	plain := run(nil)
	instrumented := run(NewPoolMetrics(telemetry.NewRegistry(), "pool"))
	if len(plain) != len(instrumented) {
		t.Fatalf("length mismatch: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("emission diverged at %d: %d vs %d", i, plain[i], instrumented[i])
		}
	}
}
