package harness

import (
	"context"
	"runtime"
	"sync"
)

// PoolConfig parameterizes RunPool, the generic indexed worker pool behind
// every batch-style sweep in this repository. The pool knows nothing about
// experiments: jobs are plain indices 0..Total-1 and results are any type,
// so the experiment index, scenario campaigns, and future workloads all
// share one scheduling and determinism engine.
type PoolConfig[R any] struct {
	// Total is the number of jobs, addressed 0..Total-1.
	Total int
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Run executes job i on a worker goroutine. It must contain its own
	// panic recovery: the pool does not guess how to turn a panic into an
	// R (see runJob for the experiment-index convention).
	Run func(i int) R
	// Placeholder, when non-nil, builds the result slot of a job skipped
	// by cancellation, so it still renders with its identity. It is only
	// invoked for skipped jobs; executed jobs never see it.
	Placeholder func(i int) R
	// Cancelled, when non-nil, rewrites the (placeholder) result of a job
	// that never ran because the context was cancelled.
	Cancelled func(i int, r R, err error) R
	// OnResult, when non-nil, is invoked from the collecting goroutine
	// in strict index order, as soon as every earlier job has finished.
	// Emission order is therefore independent of the worker count. It
	// covers the solid prefix only: after a cancellation, jobs that
	// finished beyond the first skipped index appear in the returned
	// slice but are not streamed.
	OnResult func(i int, r R)
}

// RunPool fans Total jobs out across a bounded worker pool and returns one
// result per job in index order. Results are collected unordered but the
// returned slice — and the OnResult callback sequence — is identical for
// any worker count, so pool output is bit-for-bit reproducible.
//
// RunPool itself fails only when ctx is cancelled, in which case in-flight
// jobs finish, unstarted jobs keep their placeholder (rewritten by
// Cancelled), and the partially-filled slice is returned alongside the
// context error.
func RunPool[R any](ctx context.Context, cfg PoolConfig[R]) ([]R, error) {
	total := cfg.Total
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	results := make([]R, total)
	if total == 0 {
		return results, ctx.Err()
	}

	type indexed struct {
		i int
		r R
	}
	jobs := make(chan int)
	out := make(chan indexed)

	// Feeder: stops handing out work as soon as ctx is cancelled.
	go func() {
		defer close(jobs)
		for i := 0; i < total; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// The send is unconditional: the collector drains out
				// until it closes, so even on cancellation a finished
				// job's result is never dropped — "in-flight jobs
				// finish" and their results land in the slice.
				out <- indexed{i, cfg.Run(i)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Collector: a reorder buffer over the unordered completions. next is
	// the index-order cursor; OnResult fires the moment the prefix is solid.
	done := make([]bool, total)
	next := 0
	for ir := range out {
		results[ir.i] = ir.r
		done[ir.i] = true
		for next < total && done[next] {
			if cfg.OnResult != nil {
				cfg.OnResult(next, results[next])
			}
			next++
		}
	}

	if err := ctx.Err(); err != nil {
		for i := range results {
			if done[i] {
				continue
			}
			var r R
			if cfg.Placeholder != nil {
				r = cfg.Placeholder(i)
			}
			if cfg.Cancelled != nil {
				r = cfg.Cancelled(i, r, err)
			}
			results[i] = r
		}
		return results, err
	}
	return results, nil
}
