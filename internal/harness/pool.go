package harness

import (
	"context"
	"iter"
	"runtime"
	"sync"
)

// PoolConfig parameterizes StreamPool and RunPool, the generic indexed
// worker pool behind every batch-style sweep in this repository. The pool
// knows nothing about experiments: jobs are plain indices 0..Total-1 and
// results are any type, so the experiment index, scenario campaigns, and
// future workloads all share one scheduling and determinism engine.
type PoolConfig[R any] struct {
	// Total is the number of jobs, addressed 0..Total-1.
	Total int
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Window bounds the reorder buffer: at most Window jobs are dispatched
	// beyond the in-order emission cursor, so pool memory is O(Window)
	// regardless of Total. Values < 1 mean 8× the worker count. Emission
	// order — and therefore every report — is unaffected by the value.
	Window int
	// Run executes job i on a worker goroutine. It must contain its own
	// panic recovery: the pool does not guess how to turn a panic into an
	// R (see runJob for the experiment-index convention).
	Run func(i int) R
	// Feed, when non-nil, is invoked from the dispatching goroutine in
	// strict index order immediately before job i is handed to a worker.
	// It lets callers materialize job i's input lazily from a sequential
	// stream (e.g. a seeded scenario sampler) while holding only a
	// Window-sized buffer: Feed(i) happens-before Run(i), and slot i is
	// not reused before job i-Window has been emitted.
	Feed func(i int)
	// Placeholder, when non-nil, builds the result slot of a job skipped
	// by cancellation, so it still renders with its identity. It is only
	// invoked for skipped jobs, in ascending index order, after every
	// dispatched job has finished; executed jobs never see it.
	Placeholder func(i int) R
	// Cancelled, when non-nil, rewrites the (placeholder) result of a job
	// that never ran because the context was cancelled.
	Cancelled func(i int, r R, err error) R
	// OnResult, when non-nil, is invoked from the collecting goroutine
	// in strict index order, as soon as every earlier job has finished.
	// Emission order is therefore independent of the worker count. It
	// covers executed jobs only, never cancellation placeholders.
	OnResult func(i int, r R)
	// Metrics, when non-nil, receives scheduling telemetry (dispatch and
	// retire counts, permit waits, in-flight and reorder-depth gauges,
	// per-worker utilization). Recording happens on scheduling edges
	// only, never inside Run, and feeds nothing back into scheduling —
	// emission order and output bytes are identical with or without it.
	Metrics *PoolMetrics
}

// PoolItem is one streamed pool result: the job index, its result, and a
// non-nil Err exactly when the job never ran because the context was
// cancelled (its R is then the Placeholder/Cancelled rewrite).
type PoolItem[R any] struct {
	I   int
	R   R
	Err error
}

// StreamPool fans Total jobs out across a bounded worker pool and yields
// one PoolItem per job in strict index order. Results are collected
// unordered but the yielded sequence is identical for any worker count,
// so streamed output is bit-for-bit reproducible.
//
// Unlike a collect-then-report pool, StreamPool holds O(Window) state: a
// permit scheme stops the dispatcher from running more than Window jobs
// ahead of the emission cursor, and emitted results are dropped
// immediately. Consumers that need the full slice use RunPool.
//
// On cancellation, in-flight jobs finish and are yielded normally; jobs
// that never started are yielded afterwards, still in index order, with
// Err set to the context's error and their R built by Placeholder and
// rewritten by Cancelled. Breaking out of the iteration early cancels the
// remaining work and returns after in-flight jobs drain.
func StreamPool[R any](ctx context.Context, cfg PoolConfig[R]) iter.Seq[PoolItem[R]] {
	return func(yield func(PoolItem[R]) bool) {
		total := cfg.Total
		if total <= 0 {
			return
		}
		workers := cfg.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > total {
			workers = total
		}
		window := cfg.Window
		if window < 1 {
			window = 8 * workers
		}
		if window < workers {
			window = workers
		}

		inner, cancel := context.WithCancel(ctx)
		defer cancel()

		type indexed struct {
			i int
			r R
		}
		jobs := make(chan int)
		out := make(chan indexed)
		// permits carries the dispatch budget: the dispatcher consumes one
		// token per job and the emitter refunds one per yielded result, so
		// at most window jobs ever sit between dispatch and emission.
		permits := make(chan struct{}, window)
		for i := 0; i < window; i++ {
			permits <- struct{}{}
		}

		// Dispatcher: hands out indices in order, stopping as soon as the
		// context is cancelled. Feed runs here, single-threaded and in
		// index order; the jobs-channel send publishes its effects to the
		// worker running the job.
		m := cfg.Metrics
		go func() {
			defer close(jobs)
			for i := 0; i < total; i++ {
				select {
				case <-permits:
				default:
					// The window is full: emission is the bottleneck right
					// now. Count the stall, then wait as before.
					if m != nil {
						m.PermitWaits.Inc()
					}
					select {
					case <-permits:
					case <-inner.Done():
						return
					}
				}
				if cfg.Feed != nil {
					cfg.Feed(i)
				}
				select {
				case jobs <- i:
					if m != nil {
						m.Dispatched.Inc()
						m.InFlight.Add(1)
					}
				case <-inner.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ran := 0
				for i := range jobs {
					r := cfg.Run(i)
					if m != nil {
						m.InFlight.Add(-1)
					}
					ran++
					// The send is unconditional: the emitter drains out
					// until it closes, so even on cancellation a finished
					// job's result is never dropped — "in-flight jobs
					// finish" and their results are yielded.
					out <- indexed{i, r}
				}
				if m != nil {
					m.WorkerJobs.Observe(ran)
				}
			}()
		}
		go func() {
			wg.Wait()
			close(out)
		}()

		// Emitter: a Window-sized reorder ring over the unordered
		// completions. Dispatch is sequential and bounded by the permit
		// scheme, so slot i%window is free by the time job i's result
		// arrives. next is the index-order cursor.
		ring := make([]R, window)
		done := make([]bool, window)
		next := 0
		stopped := false
		parked := 0 // completed results awaiting in-order emission
		for ir := range out {
			ring[ir.i%window] = ir.r
			done[ir.i%window] = true
			parked++
			if m != nil {
				m.ReorderDepth.Set(int64(parked)) // peak lands in the high-water
			}
			for next < total && done[next%window] {
				slot := next % window
				r := ring[slot]
				done[slot] = false
				parked--
				var zero R
				ring[slot] = zero // drop the reference immediately
				if !stopped && !yield(PoolItem[R]{I: next, R: r}) {
					stopped = true
					cancel() // consumer left: stop dispatching, drain below
				}
				if m != nil {
					m.Retired.Inc()
				}
				next++
				permits <- struct{}{}
			}
			if m != nil {
				m.ReorderDepth.Set(int64(parked))
			}
		}
		if stopped {
			return
		}

		// Dispatched jobs all finished and were yielded; anything left
		// never ran. The dispatcher has exited (close(out) orders after
		// it), so Placeholder may safely continue any sequential stream
		// Feed was drawing from.
		if err := ctx.Err(); err != nil {
			for i := next; i < total; i++ {
				var r R
				if cfg.Placeholder != nil {
					r = cfg.Placeholder(i)
				}
				if cfg.Cancelled != nil {
					r = cfg.Cancelled(i, r, err)
				}
				if !yield(PoolItem[R]{I: i, R: r, Err: err}) {
					return
				}
			}
		}
	}
}

// RunPool fans Total jobs out across a bounded worker pool and returns one
// result per job in index order. It is StreamPool collected into a slice:
// results — and the OnResult callback sequence — are identical for any
// worker count, so pool output is bit-for-bit reproducible.
//
// RunPool itself fails only when ctx is cancelled, in which case in-flight
// jobs finish, unstarted jobs carry their Placeholder result (rewritten by
// Cancelled), and the partially-executed slice is returned alongside the
// context error.
func RunPool[R any](ctx context.Context, cfg PoolConfig[R]) ([]R, error) {
	results := make([]R, cfg.Total)
	for item := range StreamPool(ctx, cfg) {
		results[item.I] = item.R
		if item.Err == nil && cfg.OnResult != nil {
			cfg.OnResult(item.I, item.R)
		}
	}
	return results, ctx.Err()
}
