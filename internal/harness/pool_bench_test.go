package harness

import (
	"context"
	"fmt"
	"testing"

	"pef/internal/prng"
)

// poolBenchJob is one deterministic CPU-bound unit of pool work. Costs
// vary by a factor of three across indices so the reorder machinery is
// actually exercised: with uniform costs the emission cursor never falls
// behind and any window looks perfect.
func poolBenchJob(i int) uint64 {
	rounds := 2000 + 2000*(i%3)
	h := uint64(i) + 1
	for r := 0; r < rounds; r++ {
		h = prng.Hash3(h, uint64(i), uint64(r))
	}
	return h
}

// benchPool runs one full RunPool sweep and folds the results so the work
// cannot be optimized away.
func benchPool(b *testing.B, jobs, workers, window int) {
	b.Helper()
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := RunPool(context.Background(), PoolConfig[uint64]{
			Total:   jobs,
			Workers: workers,
			Window:  window,
			Run:     poolBenchJob,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			sink ^= r
		}
	}
	if sink == 0x5EED {
		b.Log(sink) // keep the fold observable
	}
}

// BenchmarkPoolScaling measures the worker pool along the two axes its
// defaults were chosen on. The workers axis is the multi-core scaling
// curve of a CPU-bound sweep (flat on single-CPU runners, approaching
// linear on real cores). The window axis validates the 8×workers permit
// default of StreamPool: a 1× window stalls dispatch behind the slowest
// in-flight job (head-of-line blocking in the reorder ring), while
// widening far past 8× buys no additional throughput and only grows the
// ring's memory footprint.
func BenchmarkPoolScaling(b *testing.B) {
	const jobs = 256
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchPool(b, jobs, workers, 0) // default window: 8×workers
		})
	}
	for _, mult := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("window=%dx", mult), func(b *testing.B) {
			const workers = 4
			benchPool(b, jobs, workers, mult*workers)
		})
	}
}
