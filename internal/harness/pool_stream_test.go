package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStreamPoolYieldsInOrder checks the core streaming contract: every
// index 0..Total-1 is yielded exactly once, in ascending order, for any
// worker count.
func TestStreamPoolYieldsInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var got []int
		for item := range StreamPool(context.Background(), PoolConfig[int]{
			Total:   50,
			Workers: workers,
			Run:     func(i int) int { return i * i },
		}) {
			if item.Err != nil {
				t.Fatalf("workers=%d: unexpected item error: %v", workers, item.Err)
			}
			if item.R != item.I*item.I {
				t.Fatalf("workers=%d: item %d carries result %d", workers, item.I, item.R)
			}
			got = append(got, item.I)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: yielded %d items", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out-of-order yield at %d: %v", workers, i, got)
			}
		}
	}
}

// TestStreamPoolWindowBoundsDispatch pins the O(Window) memory contract:
// the dispatcher never runs more than Window jobs ahead of the emission
// cursor, even when the head job stalls arbitrarily long.
func TestStreamPoolWindowBoundsDispatch(t *testing.T) {
	const window = 4
	release := make(chan struct{})
	var dispatched atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for item := range StreamPool(context.Background(), PoolConfig[int]{
			Total:   100,
			Workers: 2,
			Window:  window,
			Feed:    func(i int) { dispatched.Store(int64(i + 1)) },
			Run: func(i int) int {
				if i == 0 {
					<-release // stall the head: nothing can be emitted
				}
				return i
			},
		}) {
			_ = item
		}
	}()
	// With index 0 stalled the cursor stays at 0, so at most window jobs
	// may ever be fed. Wait for the dispatcher to go as far as it can.
	for dispatched.Load() < window {
		runtime.Gosched()
	}
	if d := dispatched.Load(); d > window {
		t.Fatalf("dispatcher ran %d jobs ahead of a stalled cursor (window %d)", d, window)
	}
	close(release)
	<-done
	if d := dispatched.Load(); d != 100 {
		t.Fatalf("dispatched %d of 100 jobs", d)
	}
}

// TestStreamPoolFeedHappensBeforeRun checks the lazy-input contract:
// Feed(i) runs in index order and its effects are visible to Run(i), with
// slot reuse only after the prior occupant was emitted.
func TestStreamPoolFeedHappensBeforeRun(t *testing.T) {
	const total, window = 200, 8
	ring := make([]int, window)
	feedOrder := make([]int, 0, total)
	for item := range StreamPool(context.Background(), PoolConfig[int]{
		Total:   total,
		Workers: 4,
		Window:  window,
		Feed: func(i int) {
			feedOrder = append(feedOrder, i)
			ring[i%window] = 3*i + 1
		},
		Run: func(i int) int { return ring[i%window] },
	}) {
		if item.R != 3*item.I+1 {
			t.Fatalf("job %d read a reused slot: got %d", item.I, item.R)
		}
	}
	for i, v := range feedOrder {
		if v != i {
			t.Fatalf("feed order broken at %d: %v", i, feedOrder[:i+1])
		}
	}
}

// TestStreamPoolCancellation checks the tail contract: after
// cancellation, finished jobs yield normally and unstarted jobs yield in
// order with Err set and the Placeholder/Cancelled rewrites applied.
func TestStreamPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := map[int]bool{}
	items := 0
	sawErr := false
	for item := range StreamPool(ctx, PoolConfig[string]{
		Total:   40,
		Workers: 2,
		Window:  4,
		Run: func(i int) string {
			if i == 5 {
				cancel()
			}
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			return fmt.Sprintf("ran-%d", i)
		},
		Placeholder: func(i int) string { return fmt.Sprintf("skip-%d", i) },
		Cancelled:   func(i int, r string, err error) string { return r + ":" + err.Error() },
	}) {
		if item.I != items {
			t.Fatalf("yield order broken: got %d at position %d", item.I, items)
		}
		items++
		if item.Err != nil {
			sawErr = true
			if want := fmt.Sprintf("skip-%d:%v", item.I, context.Canceled); item.R != want {
				t.Fatalf("cancelled item %d = %q, want %q", item.I, item.R, want)
			}
			mu.Lock()
			didRun := ran[item.I]
			mu.Unlock()
			if didRun {
				t.Fatalf("item %d both ran and was marked cancelled", item.I)
			}
		} else if item.R != fmt.Sprintf("ran-%d", item.I) {
			t.Fatalf("executed item %d = %q", item.I, item.R)
		}
	}
	if items != 40 {
		t.Fatalf("yielded %d of 40 items", items)
	}
	if !sawErr {
		t.Fatal("cancellation produced no skipped items")
	}
}

// TestStreamPoolEarlyBreak checks that abandoning the iterator cancels
// remaining work instead of leaking the pool goroutines.
func TestStreamPoolEarlyBreak(t *testing.T) {
	var ran atomic.Int64
	seen := 0
	for item := range StreamPool(context.Background(), PoolConfig[int]{
		Total:   10000,
		Workers: 2,
		Window:  4,
		Run: func(i int) int {
			ran.Add(1)
			return i
		},
	}) {
		_ = item
		seen++
		if seen == 10 {
			break
		}
	}
	// The pool drained before the range returned: nothing beyond the
	// window can run afterwards.
	after := ran.Load()
	if after >= 10000 {
		t.Fatalf("early break still ran all jobs")
	}
	if after < 10 {
		t.Fatalf("ran %d jobs, yielded 10", after)
	}
}

// TestStreamPoolEarlyBreakDrainsInFlight pins the graceful-shutdown
// contract the CLIs lean on: breaking the consumer loop at a yield
// boundary not only cancels undispatched work, it *waits* for every
// in-flight job to run to completion before the range statement
// returns — so an interrupted campaign's aggregate covers a clean
// prefix with no half-torn runs behind it.
func TestStreamPoolEarlyBreakDrainsInFlight(t *testing.T) {
	var started, finished atomic.Int64
	for item := range StreamPool(context.Background(), PoolConfig[int]{
		Total:   1000,
		Workers: 4,
		Window:  8,
		Run: func(i int) int {
			started.Add(1)
			time.Sleep(2 * time.Millisecond)
			finished.Add(1)
			return i
		},
	}) {
		if item.I == 5 {
			break
		}
	}
	// The break has returned: the pool goroutines are gone, so the two
	// counters must agree *now*, not eventually.
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("early break abandoned in-flight jobs: started=%d finished=%d", s, f)
	}
}

// TestRunPoolMatchesStreamPool checks RunPool is exactly the collected
// stream: same results, same OnResult prefix.
func TestRunPoolMatchesStreamPool(t *testing.T) {
	cfg := func() PoolConfig[int] {
		return PoolConfig[int]{
			Total:   64,
			Workers: 4,
			Run:     func(i int) int { return 7 * i },
		}
	}
	var streamed []int
	for item := range StreamPool(context.Background(), cfg()) {
		streamed = append(streamed, item.R)
	}
	var onResult []int
	c := cfg()
	c.OnResult = func(i, r int) { onResult = append(onResult, r) }
	collected, err := RunPool(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range collected {
		if collected[i] != streamed[i] || onResult[i] != streamed[i] {
			t.Fatalf("divergence at %d: collected=%d onResult=%d streamed=%d",
				i, collected[i], onResult[i], streamed[i])
		}
	}
}
