package harness

import (
	"fmt"

	"pef/internal/adversary"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/spec"
)

// explorationRun executes alg with k robots on an n-node ring under the
// workload and returns the exploration report plus the tower invariant
// checker (meaningful for PEF_3+ runs only). Simulators come from the
// fsync pool: across an (experiment × seed) sweep the same backing slices
// serve every run.
func explorationRun(alg robot.Algorithm, n, k int, build func(seed uint64) fsync.Dynamics, seed uint64, horizon int) (spec.ExplorationReport, *spec.TowerInvariants, error) {
	vt := spec.NewVisitTracker(n)
	ti := spec.NewTowerInvariants()
	src := prng.NewSource(seed)
	sim, err := fsync.Acquire(fsync.Config{
		Algorithm:  alg,
		Dynamics:   build(seed),
		Placements: fsync.RandomPlacements(n, k, src),
		Observers:  []fsync.Observer{vt, ti},
	})
	if err != nil {
		return spec.ExplorationReport{}, nil, err
	}
	sim.Run(horizon)
	sim.Release()
	return vt.Report(), ti, nil
}

// obliviousBuild adapts a dynamics.Spec to the harness runner.
func obliviousBuild(sp dynamics.Spec, n int) func(seed uint64) fsync.Dynamics {
	return func(seed uint64) fsync.Dynamics {
		return fsync.Oblivious{G: sp.Build(n, seed)}
	}
}

// possibleVerdict is the finite-horizon acceptance criterion for the
// possibility rows of Table 1: full coverage, at least two visits per node
// (the ring keeps being re-explored), and a revisit gap no larger than half
// the horizon (a gap-bound that stays fixed as horizons grow). The scenario
// oracle enforces the same shared predicate.
func possibleVerdict(rep spec.ExplorationReport, horizon int) bool {
	return rep.ExploreViolation(2, horizon/2) == ""
}

// namedDynamics is one entry of a workload battery; order matters for
// report determinism.
type namedDynamics struct {
	name  string
	build func(seed uint64) fsync.Dynamics
}

// positiveWorkloads is the full workload battery for the possibility
// experiments: the standard oblivious suite plus the adaptive
// block-pointed stress adversary.
func positiveWorkloads(n int) []namedDynamics {
	var out []namedDynamics
	for _, sp := range dynamics.StandardSuite() {
		out = append(out, namedDynamics{name: sp.Name, build: obliviousBuild(sp, n)})
	}
	out = append(out, namedDynamics{
		name: "block-pointed-b3",
		build: func(_ uint64) fsync.Dynamics {
			return adversary.NewBlockPointed(n, 3)
		},
	})
	return out
}

// t1r1Rings is the ring-size sweep of E-T1.R1, shared by the full
// experiment and its per-ring-size shards.
func t1r1Rings(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{4, 6, 8, 12}
}

func runT1R1(cfg Config) (Result, error) {
	return runT1R1Rings(cfg, "E-T1.R1", t1r1Rings(cfg.Quick))
}

func shardT1R1(quick bool) []Experiment {
	return shardByRing("E-T1.R1", "PEF_3+ explores with k>=3 robots on n>k rings",
		"Table 1 row 1 (Theorem 3.1)", t1r1Rings(quick), runT1R1Rings)
}

func runT1R1Rings(cfg Config, id string, ns []int) (Result, error) {
	res := Result{ID: id, Title: "PEF_3+ explores with k>=3 robots on n>k rings",
		Artifact: "Table 1 row 1 (Theorem 3.1)", Pass: true}
	res.Table = metrics.NewTable("k", "n", "workload", "cover", "maxGap", "towers", "verdict")

	ks := []int{3, 4, 5}
	if cfg.Quick {
		ks = []int{3}
	}
	for _, n := range ns {
		horizon := 200 * n
		if cfg.Quick {
			horizon = 60 * n
		}
		for _, k := range ks {
			if n <= k {
				continue
			}
			for _, wl := range positiveWorkloads(n) {
				rep, ti, err := explorationRun(core.PEF3Plus{}, n, k, wl.build, cfg.Seed+uint64(n*100+k), horizon)
				if err != nil {
					return res, err
				}
				res.ObserveExploration(rep)
				ok := possibleVerdict(rep, horizon) && ti.OK()
				if !ok {
					res.Pass = false
					res.Notes = append(res.Notes, fmt.Sprintf("FAIL k=%d n=%d %s: %s, tower violations %v",
						k, n, wl.name, rep, ti.Violations()))
				}
				res.Table.AddRow(k, n, wl.name, rep.CoverTime, rep.MaxGap, ti.TowerRounds(), verdict(ok))
			}
		}
	}
	res.Notes = append(res.Notes,
		"Paper prediction: possible — every workload row must pass.",
		"Tower invariants of Lemmas 3.3/3.4 checked on every round of every run.")
	return res, nil
}

func runT1R3(cfg Config) (Result, error) {
	res := Result{ID: "E-T1.R3", Title: "PEF_2 explores the 3-node ring with 2 robots",
		Artifact: "Table 1 row 3 (Theorem 4.2)", Pass: true}
	res.Table = metrics.NewTable("workload", "chiralities", "cover", "maxGap", "verdict")

	const n, k = 3, 2
	horizon := 2000
	if cfg.Quick {
		horizon = 400
	}
	for _, wl := range positiveWorkloads(n) {
		for ci, chirs := range [][2]robot.Chirality{
			{robot.RightIsCW, robot.RightIsCW},
			{robot.RightIsCW, robot.RightIsCCW},
		} {
			vt := spec.NewVisitTracker(n)
			sim, err := fsync.New(fsync.Config{
				Algorithm: core.PEF2{},
				Dynamics:  wl.build(cfg.Seed + uint64(ci)),
				Placements: []fsync.Placement{
					{Node: 0, Chirality: chirs[0]},
					{Node: 1, Chirality: chirs[1]},
				},
				Observers: []fsync.Observer{vt},
			})
			if err != nil {
				return res, err
			}
			sim.Run(horizon)
			rep := vt.Report()
			res.ObserveExploration(rep)
			ok := possibleVerdict(rep, horizon)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s chir=%v: %s", wl.name, chirs, rep))
			}
			res.Table.AddRow(wl.name, fmt.Sprintf("%v/%v", chirs[0], chirs[1]), rep.CoverTime, rep.MaxGap, verdict(ok))
		}
	}
	res.Notes = append(res.Notes, "Paper prediction: possible on exactly n = 3.")
	return res, nil
}

func runT1R5(cfg Config) (Result, error) {
	res := Result{ID: "E-T1.R5", Title: "PEF_1 explores the 2-node ring with 1 robot",
		Artifact: "Table 1 row 5 (Theorem 5.2)", Pass: true}
	res.Table = metrics.NewTable("variant", "workload", "cover", "maxGap", "verdict")

	const n, k = 2, 1
	horizon := 1000
	if cfg.Quick {
		horizon = 200
	}
	// Two-node rings come in two flavours (Section 5.2): the multigraph
	// with two parallel edges (our native n=2 ring) and the simple 2-node
	// chain (one of the two edges permanently absent).
	type variant struct {
		name string
		wrap func(sp dynamics.Spec) func(seed uint64) fsync.Dynamics
	}
	variants := []variant{
		{"multigraph", func(sp dynamics.Spec) func(seed uint64) fsync.Dynamics {
			return obliviousBuild(sp, n)
		}},
		{"chain", func(sp dynamics.Spec) func(seed uint64) fsync.Dynamics {
			return func(seed uint64) fsync.Dynamics {
				return fsync.Oblivious{G: dynamics.NewChain(sp.Build(n, seed), 1)}
			}
		}},
	}
	for _, v := range variants {
		vname, wrap := v.name, v.wrap
		for _, sp := range dynamics.StandardSuite() {
			if vname == "chain" && sp.Name == "eventual-missing" {
				// The chain variant already removes one of the two edges
				// forever; removing the other too would disconnect the
				// graph permanently, leaving the class of the paper.
				continue
			}
			rep, _, err := explorationRun(core.PEF1{}, n, k, wrap(sp), cfg.Seed+7, horizon)
			if err != nil {
				return res, err
			}
			res.ObserveExploration(rep)
			ok := possibleVerdict(rep, horizon)
			if !ok {
				res.Pass = false
				res.Notes = append(res.Notes, fmt.Sprintf("FAIL %s %s: %s", vname, sp.Name, rep))
			}
			res.Table.AddRow(vname, sp.Name, rep.CoverTime, rep.MaxGap, verdict(ok))
		}
	}
	res.Notes = append(res.Notes, "Paper prediction: possible on exactly n = 2 (both ring flavours).")
	return res, nil
}

func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
