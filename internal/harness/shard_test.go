package harness

import (
	"context"
	"strings"
	"testing"
)

// shardable lists the experiments that declare a ring-size decomposition.
func shardable(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, e := range All() {
		if e.Shards != nil {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		t.Fatal("no shardable experiments in the index")
	}
	return out
}

// TestShardsCoverFullExperiment verifies the defining shard property: for
// each shardable experiment, concatenating the per-ring-size shard tables
// (and verdicts) in index order reproduces the full experiment exactly.
func TestShardsCoverFullExperiment(t *testing.T) {
	cfg := Config{Seed: 3, Quick: true}
	for _, e := range shardable(t) {
		full, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		var tables []string
		pass := true
		for _, sh := range e.Shards(cfg.Quick) {
			if !strings.HasPrefix(sh.ID, e.ID+"#") {
				t.Fatalf("%s: shard ID %q does not extend the parent ID", e.ID, sh.ID)
			}
			res, err := sh.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", sh.ID, err)
			}
			if res.ID != sh.ID {
				t.Fatalf("%s: result carries ID %q", sh.ID, res.ID)
			}
			tables = append(tables, tableRows(res))
			pass = pass && res.Pass
		}
		if got, want := strings.Join(tables, ""), tableRows(full); got != want {
			t.Errorf("%s: shard rows do not concatenate to the full table:\n--- shards ---\n%s--- full ---\n%s", e.ID, got, want)
		}
		if pass != full.Pass {
			t.Errorf("%s: shard verdict %t, full verdict %t", e.ID, pass, full.Pass)
		}
	}
}

// tableRows renders a result's table without the header and with cell
// alignment normalized (tabwriter pads columns differently for different
// row sets), so shard tables can be compared by concatenation.
func tableRows(res Result) string {
	lines := strings.Split(res.Table.String(), "\n")
	if len(lines) < 3 {
		return ""
	}
	var b strings.Builder
	for _, l := range lines[2:] {
		if strings.TrimSpace(l) == "" {
			continue
		}
		b.WriteString(strings.Join(strings.Fields(l), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestShardedBatchDeterministicAcrossWorkers runs the sharded quick index
// through the batch engine at two worker counts and demands byte-identical
// reports — the reorder-buffer guarantee must survive shard expansion.
func TestShardedBatchDeterministicAcrossWorkers(t *testing.T) {
	// E-T1.R1 → 2 quick ring shards; E-T1.R2 → 2 quick rings × the
	// 12-member victim suite.
	exps := Sharded(All()[:2], true)
	if len(exps) != 2+2*12 {
		t.Fatalf("expected 26 shards from the first two experiments, got %d", len(exps))
	}
	render := func(workers int) string {
		jobs, err := RunBatch(context.Background(), BatchConfig{
			Experiments: exps,
			Seeds:       Seeds(1, 3),
			Workers:     workers,
			Quick:       true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		if err := WriteBatchReport(&b, jobs); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(1) != render(8) {
		t.Fatal("sharded batch report differs across worker counts")
	}
}

// TestBatchShardFlag checks that BatchConfig.Shard expands the job matrix.
func TestBatchShardFlag(t *testing.T) {
	exps := All()[:1] // E-T1.R1, 2 quick shards
	jobs, err := RunBatch(context.Background(), BatchConfig{
		Experiments: exps,
		Seeds:       []uint64{1},
		Quick:       true,
		Shard:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("sharded batch produced %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if !strings.HasPrefix(j.ID, "E-T1.R1#n=") {
			t.Fatalf("unexpected shard job ID %q", j.ID)
		}
		if !j.Passed() {
			t.Fatalf("shard %s failed: err=%v notes=%v", j.ID, j.Err, j.Result.Notes)
		}
	}
}

// TestVictimSuiteShardIDs pins the shape of the victim-suite
// decomposition: the impossibility sweeps split into one job per
// (ring size, victim algorithm) pair, each carrying both coordinates in
// its ID.
func TestVictimSuiteShardIDs(t *testing.T) {
	for _, id := range []string{"E-T1.R2", "E-T1.R4"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		shards := e.Shards(true)
		rings := 2
		if len(shards) != rings*len(victimSuite()) {
			t.Fatalf("%s: %d shards, want %d", id, len(shards), rings*len(victimSuite()))
		}
		if want := id + "#n=4/a=keep-direction"; id == "E-T1.R2" && shards[0].ID != want {
			t.Fatalf("%s: first shard ID %q, want %q", id, shards[0].ID, want)
		}
		// Each shard carries exactly one table row: one (ring, victim) case.
		res, err := shards[0].Run(Config{Seed: 2, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.Rows() != 1 {
			t.Fatalf("%s: shard produced %d rows, want 1", id, res.Table.Rows())
		}
	}
}
