package harness

import (
	"fmt"

	"pef/internal/adversary"
	"pef/internal/core"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/metrics"
	"pef/internal/ring"
	"pef/internal/robot"
	"pef/internal/spec"
)

// runX11 makes the computability threshold of Table 1 visible in a single
// sweep: for k = 1 and k = 2 the paper's adversaries legally confine the
// robots; for k >= 3 the naive arc-containment generalization must either
// break legality (boundary edges eventually missing → not
// connected-over-time) or let PEF_3+ escape and explore everything.
func runX11(cfg Config) (Result, error) {
	res := Result{ID: "E-X11", Title: "The three-robot threshold: containment vs legality",
		Artifact: "Table 1 synthesis", Pass: true}
	res.Table = metrics.NewTable("k", "adversary", "visited", "confined", "graph legal (COT)", "outcome")

	const n = 8
	horizon := 640
	if cfg.Quick {
		horizon = 240
	}

	checkLegal := func(g *dyngraph.Recorded) bool {
		return dyngraph.VerifyConnectedOverTime(g, horizon, []int{0, horizon / 3}).OK
	}
	cotStarts := []int{0, horizon / 3}

	// k = 1: Theorem 5.1 adversary. The legality checks run online — a
	// JourneyScan accumulates foremost arrivals round by round and the
	// recorder runs in streaming mode (window 1, recurrence accumulators
	// only) — so this branch holds no O(horizon) edge-set history.
	{
		adv := adversary.NewOneRobotConfinement(n, 0, 0)
		ct := spec.NewConfinementTracker()
		scan := dyngraph.NewJourneyScan(ring.New(n), cotStarts)
		sim, err := fsync.New(fsync.Config{
			Algorithm:    core.PEF3Plus{},
			Dynamics:     adv,
			Placements:   []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}},
			Observers:    []fsync.Observer{ct, fsync.COTScan{Scan: scan}},
			RecordGraph:  true,
			RecordWindow: 1,
		})
		if err != nil {
			return res, err
		}
		sim.Run(horizon)
		// A stalled victim freezes the schedule legally (one eventually
		// missing edge keeps the eventual underlying graph connected, a
		// chain); treat that case as legal even though the journey check
		// needs a longer horizon to certify it.
		legal := scan.Report().OK || len(sim.RecordedGraph().EventuallyMissingOnline(horizon/2)) == 1
		confined := ct.ConfinedTo(2)
		if !confined || !legal {
			res.Pass = false
		}
		res.Table.AddRow(1, "Theorem 5.1 phases", ct.Distinct(), confined, legal, "confined AND legal")
	}

	// k = 2: Theorem 4.1 adversary. PEF_3+ with two robots stalls in a
	// boxed phase, and the frozen schedule alone is not a legal
	// connected-over-time witness (several edges stay missing). This is
	// precisely the case the paper routes through the Lemma 4.1 mirror:
	// the stalled prefix transfers to the 8-node gadget G′, which has a
	// single eventually missing edge (legal), and both robot copies freeze
	// there forever.
	{
		adv := adversary.NewTwoRobotConfinement(n, 0, 0, 1)
		ct := spec.NewConfinementTracker()
		rec := &fsync.SnapshotRecorder{}
		sim, err := fsync.New(fsync.Config{
			Algorithm: core.PEF3Plus{},
			Dynamics:  adv,
			Placements: []fsync.Placement{
				{Node: 0, Chirality: robot.RightIsCW},
				{Node: 1, Chirality: robot.RightIsCCW},
			},
			Observers:   []fsync.Observer{ct, rec},
			RecordGraph: true,
		})
		if err != nil {
			return res, err
		}
		sim.Run(horizon)
		confined := ct.ConfinedTo(3)
		if info, stalled := adv.Stall(sim.Now(), horizon/4); stalled {
			world, err := adversary.BuildMirror(adversary.MirrorInput{
				Alg:         core.PEF3Plus{},
				Chir:        chirOf(info.Robot),
				G:           sim.RecordedGraph(),
				Traj:        rec.Trajectory(info.Robot)[:info.Since+1],
				States:      rec.States(info.Robot)[:info.Since+1],
				StallTime:   info.Since,
				MissingSide: info.MissingSide,
			})
			if err != nil {
				return res, err
			}
			mrep, err := world.Verify(horizon / 4)
			if err != nil {
				return res, err
			}
			legal := mrep.OK() && mrep.StalledForever
			if !confined || !legal {
				res.Pass = false
			}
			res.Table.AddRow(2, "Theorem 4.1 phases → mirror G'", mrep.DistinctVisited, confined, legal,
				"stall transferred to legal 8-node gadget")
		} else {
			legal := checkLegal(sim.RecordedGraph())
			if !confined || !legal {
				res.Pass = false
			}
			res.Table.AddRow(2, "Theorem 4.1 phases", ct.Distinct(), confined, legal, "confined AND legal")
		}
	}

	// k = 3: both arc-containment policies must fail one way or the other.
	for _, policy := range []struct {
		name   string
		budget int
	}{
		{"arc walls forever (budget 0)", 0},
		{"arc walls with budget 6", 6},
	} {
		adv := adversary.NewArcContainment(n, 0, 4, policy.budget)
		ct := spec.NewConfinementTracker()
		// Legality comes from the online scan alone: nothing replays this
		// schedule, so no graph is recorded at all.
		scan := dyngraph.NewJourneyScan(ring.New(n), cotStarts)
		sim, err := fsync.New(fsync.Config{
			Algorithm:  core.PEF3Plus{},
			Dynamics:   adv,
			Placements: fsync.AdjacentPlacements(n, 3, 0),
			Observers:  []fsync.Observer{ct, fsync.COTScan{Scan: scan}},
		})
		if err != nil {
			return res, err
		}
		sim.Run(horizon)
		legal := scan.Report().OK
		confined := ct.ConfinedTo(4)
		outcome := "escaped: exploration wins"
		if confined && legal {
			outcome = "CONTRADICTS Theorem 3.1"
			res.Pass = false
			res.Notes = append(res.Notes, fmt.Sprintf("FAIL: k=3 legally confined by %s", policy.name))
		} else if confined {
			outcome = "confined but ILLEGAL graph"
		}
		res.Table.AddRow(3, policy.name, ct.Distinct(), confined, legal, outcome)
	}

	res.Notes = append(res.Notes,
		"With one or two robots the paper's adversaries confine inside the class of connected-over-time rings.",
		"With three robots every containment attempt must choose: keep walls forever (illegal graph) or reopen them (PEF_3+ escapes).")
	return res, nil
}

// chirOf returns the chirality the E-X11 two-robot run assigns to each
// robot index.
func chirOf(idx int) robot.Chirality {
	if idx == 0 {
		return robot.RightIsCW
	}
	return robot.RightIsCCW
}
