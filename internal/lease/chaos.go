package lease

import "pef/internal/prng"

// Action is one fault the chaos layer injects into a worker's handling
// of a granted block.
type Action int

const (
	// ActNone runs the block normally: heartbeats, one ack.
	ActNone Action = iota
	// ActKill vanishes with the lease: no heartbeat, no ack. Models a
	// worker killed right after taking a block — the coordinator must
	// expire and re-lease it.
	ActKill
	// ActStall completes the block but goes silent past the lease
	// deadline and delivers the ack late. Models a paused/partitioned
	// worker — the fencing token must reject the late ack.
	ActStall
	// ActDoubleAck delivers the same ack twice. Models a worker retrying
	// a response it never saw confirmed — the second ack must be
	// absorbed as an idempotent duplicate.
	ActDoubleAck
)

func (a Action) String() string {
	switch a {
	case ActKill:
		return "kill"
	case ActStall:
		return "stall"
	case ActDoubleAck:
		return "double-ack"
	default:
		return "none"
	}
}

// Chaos is the deterministic fault schedule: the action for a grant is a
// pure function of (Seed, block, epoch), so a chaos run is reproducible
// — same seed, same fleet behavior — and CI can pin its merged report
// against the single-process bytes.
//
// Faults are injected only while epoch < MaxEpoch: every block's lease
// epoch grows on each re-lease, so each block is guaranteed a clean
// epoch eventually and the campaign always terminates.
type Chaos struct {
	// Seed selects the schedule; 0 disables chaos entirely.
	Seed uint64
	// MaxEpoch is the first always-clean epoch (values < 1 mean 2: the
	// schedule may misbehave on a block's first two grants).
	MaxEpoch int
}

// Action returns the scheduled fault for one grant. Nil receiver or zero
// seed: ActNone.
func (c *Chaos) Action(block, epoch int) Action {
	if c == nil || c.Seed == 0 {
		return ActNone
	}
	max := c.MaxEpoch
	if max < 1 {
		max = 2
	}
	if epoch >= max {
		return ActNone
	}
	switch prng.Hash3(c.Seed, uint64(block), uint64(epoch)) % 4 {
	case 0:
		return ActKill
	case 1:
		return ActStall
	case 2:
		return ActDoubleAck
	default:
		return ActNone
	}
}
