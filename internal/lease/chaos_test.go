package lease

import "testing"

func TestChaosScheduleIsDeterministic(t *testing.T) {
	a := &Chaos{Seed: 42}
	b := &Chaos{Seed: 42}
	for block := 0; block < 16; block++ {
		for epoch := 0; epoch < 4; epoch++ {
			if got, want := a.Action(block, epoch), b.Action(block, epoch); got != want {
				t.Fatalf("Action(%d, %d) unstable: %v vs %v", block, epoch, got, want)
			}
		}
	}
	// A different seed selects a different schedule (over a grid this
	// size, collision would mean the seed is ignored).
	c := &Chaos{Seed: 43}
	same := true
	for block := 0; block < 16 && same; block++ {
		for epoch := 0; epoch < 2; epoch++ {
			if a.Action(block, epoch) != c.Action(block, epoch) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules over 32 grants")
	}
}

func TestChaosEpochCutoffGuaranteesTermination(t *testing.T) {
	c := &Chaos{Seed: 7}
	for block := 0; block < 64; block++ {
		for epoch := 2; epoch < 8; epoch++ { // default MaxEpoch is 2
			if act := c.Action(block, epoch); act != ActNone {
				t.Fatalf("Action(%d, %d)=%v past the cutoff, want none", block, epoch, act)
			}
		}
	}
	wide := &Chaos{Seed: 7, MaxEpoch: 4}
	misbehaved := false
	for block := 0; block < 64; block++ {
		for epoch := 2; epoch < 4; epoch++ {
			if wide.Action(block, epoch) != ActNone {
				misbehaved = true
			}
		}
		if act := wide.Action(block, 4); act != ActNone {
			t.Fatalf("Action(%d, 4)=%v past MaxEpoch=4, want none", block, act)
		}
	}
	if !misbehaved {
		t.Fatal("MaxEpoch=4 never injected a fault in epochs [2, 4) over 64 blocks")
	}
}

func TestChaosDisabled(t *testing.T) {
	var nilChaos *Chaos
	for block := 0; block < 8; block++ {
		if act := nilChaos.Action(block, 0); act != ActNone {
			t.Fatalf("nil chaos Action(%d, 0)=%v, want none", block, act)
		}
		if act := (&Chaos{}).Action(block, 0); act != ActNone {
			t.Fatalf("zero-seed chaos Action(%d, 0)=%v, want none", block, act)
		}
	}
}

func TestChaosCoversEveryAction(t *testing.T) {
	c := &Chaos{Seed: 1}
	seen := map[Action]bool{}
	for block := 0; block < 64; block++ {
		for epoch := 0; epoch < 2; epoch++ {
			seen[c.Action(block, epoch)] = true
		}
	}
	for _, act := range []Action{ActNone, ActKill, ActStall, ActDoubleAck} {
		if !seen[act] {
			t.Fatalf("schedule for seed 1 never produced %v over 128 grants", act)
		}
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{
		ActNone:      "none",
		ActKill:      "kill",
		ActStall:     "stall",
		ActDoubleAck: "double-ack",
	}
	for act, want := range cases {
		if got := act.String(); got != want {
			t.Fatalf("%d.String()=%q, want %q", act, got, want)
		}
	}
}
