package lease

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"pef/internal/retry"
)

// WorkerConfig parameterizes Work, the client side of the lease
// protocol.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. "http://127.0.0.1:7077").
	URL string
	// ID names the worker in grants and logs.
	ID string
	// Run executes one leased block and returns its encoded checkpoint
	// (scenario.Checkpoint.Encode bytes). The context is cancelled when
	// the worker learns mid-run that its lease was fenced away — the
	// block belongs to someone else, so the result would be discarded.
	Run func(ctx context.Context, g Grant) ([]byte, error)
	// Chaos, when non-nil, deterministically injects faults per
	// (block, epoch) — see Chaos. Nil means a well-behaved worker.
	Chaos *Chaos
	// MaxRetries bounds transport-level retries per request (values < 1
	// mean 8); each retry backs off exponentially from Backoff (values
	// <= 0 mean 100ms) with deterministic seeded jitter.
	MaxRetries int
	Backoff    time.Duration
	// JitterSeed seeds the backoff jitter; 0 derives one from ID so two
	// workers retrying together do not stay in lockstep.
	JitterSeed uint64
	// Client is the HTTP client; nil means a fresh one with sane
	// timeouts.
	Client *http.Client
	// Logf, when non-nil, receives worker lifecycle lines (lease grants,
	// chaos actions, fencing rejections). Diagnostic only.
	Logf func(format string, args ...any)
}

func (cfg *WorkerConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// Work leases blocks from the coordinator until the campaign reports
// done, running each through cfg.Run and acking the checkpoint under the
// grant's fencing token. Lost leases (ErrStale on heartbeat or ack) are
// abandoned quietly — the re-leased owner's bytes are identical, so
// correctness never depends on which incarnation delivered a block.
//
// Work returns nil when the coordinator reports the campaign done, and
// an error when the campaign failed, the context was cancelled, retries
// were exhausted against an unreachable coordinator, or a chaos
// experiment observed a protocol violation (a late ack that should have
// been fenced but was accepted).
func Work(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Run == nil {
		return errors.New("lease: WorkerConfig.Run is required")
	}
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.MaxRetries < 1 {
		cfg.MaxRetries = 8
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = retry.SeedString(cfg.ID)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	requests := uint64(0) // jitter stream position across the worker's life
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var resp LeaseResponse
		if err := cfg.post(ctx, "/lease", LeaseRequest{Worker: cfg.ID}, &resp, &requests); err != nil {
			return fmt.Errorf("lease: %s: lease request: %w", cfg.ID, err)
		}
		switch {
		case resp.Failed != "":
			return fmt.Errorf("lease: %s: campaign failed: %s", cfg.ID, resp.Failed)
		case resp.Done:
			cfg.logf("%s: campaign done", cfg.ID)
			return nil
		case resp.Grant == nil:
			wait := time.Duration(resp.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			continue
		}
		g := *resp.Grant
		if err := cfg.workBlock(ctx, g, &requests); err != nil {
			return err
		}
	}
}

// workBlock runs one granted block under the chaos plan.
func (cfg *WorkerConfig) workBlock(ctx context.Context, g Grant, requests *uint64) error {
	act := cfg.Chaos.Action(g.Block, g.Epoch)
	cfg.logf("%s: leased block %d [%d, %d) epoch=%d token=%d chaos=%s",
		cfg.ID, g.Block, g.Start, g.End, g.Epoch, g.Token, act)
	switch act {
	case ActKill:
		// Vanish with the lease: no heartbeat, no ack. The coordinator
		// must expire the lease and re-lease the block.
		return nil
	case ActStall:
		// Complete the work but go silent past the lease deadline, then
		// deliver the ack late. The fencing token must reject it — an
		// accepted late ack is a protocol violation worth failing loudly.
		ckpt, err := cfg.Run(ctx, g)
		if err != nil {
			return cfg.runFailure(g, err)
		}
		stall := time.Duration(g.TimeoutMillis)*time.Millisecond*3/2 + 10*time.Millisecond
		if err := sleepCtx(ctx, stall); err != nil {
			return err
		}
		_, err = cfg.ack(ctx, g, ckpt, requests)
		if err == nil {
			return fmt.Errorf("lease: %s: FENCING VIOLATION: late ack for block %d (token %d) was accepted after the lease expired",
				cfg.ID, g.Block, g.Token)
		}
		if !errors.Is(err, ErrStale) {
			return fmt.Errorf("lease: %s: stalled ack for block %d: %w", cfg.ID, g.Block, err)
		}
		cfg.logf("%s: late ack for block %d correctly fenced", cfg.ID, g.Block)
		return nil
	}

	// Healthy path (and double-ack): heartbeat while running, then ack.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fenced := make(chan struct{})
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(g.HeartbeatMillis) * time.Millisecond
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		beats := uint64(0)
		for {
			select {
			case <-t.C:
				beats++
				err := cfg.post(runCtx, "/heartbeat",
					HeartbeatRequest{Worker: cfg.ID, Block: g.Block, Token: g.Token}, &struct{}{}, &beats)
				if errors.Is(err, ErrStale) {
					// The lease moved on without us: abandon the run, its
					// result would be fenced anyway.
					close(fenced)
					cancel()
					return
				}
			case <-stop:
				return
			case <-runCtx.Done():
				return
			}
		}
	}()
	ckpt, err := cfg.Run(runCtx, g)
	close(stop)
	<-hbDone
	select {
	case <-fenced:
		cfg.logf("%s: lease on block %d fenced away mid-run; abandoning", cfg.ID, g.Block)
		return nil
	default:
	}
	if err != nil {
		return cfg.runFailure(g, err)
	}
	dup, err := cfg.ack(ctx, g, ckpt, requests)
	if errors.Is(err, ErrStale) {
		cfg.logf("%s: ack for block %d fenced (lease expired mid-run); abandoning", cfg.ID, g.Block)
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease: %s: ack for block %d: %w", cfg.ID, g.Block, err)
	}
	if dup {
		cfg.logf("%s: ack for block %d was a duplicate", cfg.ID, g.Block)
	}
	if act == ActDoubleAck {
		// Deliver the same ack again: the coordinator must absorb it as
		// an idempotent duplicate, not double-count the block.
		dup, err := cfg.ack(ctx, g, ckpt, requests)
		if err != nil {
			return fmt.Errorf("lease: %s: double-ack for block %d rejected: %w", cfg.ID, g.Block, err)
		}
		if !dup {
			return fmt.Errorf("lease: %s: double-ack for block %d not reported as duplicate", cfg.ID, g.Block)
		}
		cfg.logf("%s: double-ack for block %d absorbed as duplicate", cfg.ID, g.Block)
	}
	return nil
}

// runFailure classifies a Run error: context cancellation propagates,
// anything else is a hard worker failure (the block will be re-leased,
// but a worker that cannot run blocks should say so and exit non-zero).
func (cfg *WorkerConfig) runFailure(g Grant, err error) error {
	return fmt.Errorf("lease: %s: running block %d: %w", cfg.ID, g.Block, err)
}

func (cfg *WorkerConfig) ack(ctx context.Context, g Grant, ckpt []byte, requests *uint64) (bool, error) {
	var resp AckResponse
	err := cfg.post(ctx, "/ack",
		AckRequest{Worker: cfg.ID, Block: g.Block, Token: g.Token, Checkpoint: ckpt}, &resp, requests)
	return resp.Duplicate, err
}

// httpError carries a non-2xx protocol response; fencing rejections
// (409) wrap ErrStale so callers can errors.Is them.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.code, e.msg) }

func (e *httpError) Unwrap() error {
	if e.code == http.StatusConflict {
		return ErrStale
	}
	return nil
}

// post sends one JSON request through the shared retry discipline:
// bounded exponential backoff with deterministic jitter on transport
// failures and 5xx responses, reproducible per (worker, request,
// attempt). Protocol rejections (4xx) are returned immediately —
// retrying a fenced ack cannot unfence it.
func (cfg *WorkerConfig) post(ctx context.Context, path string, body, out any, stream *uint64) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	*stream++
	pol := retry.Policy{MaxRetries: cfg.MaxRetries, Base: cfg.Backoff, Seed: cfg.JitterSeed}
	return retry.Do(ctx, pol, *stream, func(int) (bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL+path, bytes.NewReader(payload))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			return true, err // transport failure: retry
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return true, err
		}
		if resp.StatusCode >= 500 {
			return true, &httpError{code: resp.StatusCode, msg: string(data)}
		}
		if resp.StatusCode >= 400 {
			var eb errorBody
			msg := string(data)
			if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
				msg = eb.Error
			}
			return false, &httpError{code: resp.StatusCode, msg: msg}
		}
		return false, json.Unmarshal(data, out)
	})
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	return retry.Sleep(ctx, d)
}
