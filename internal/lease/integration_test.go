package lease

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// chaoticSeed scans for a chaos seed whose schedule, over the test
// campaign's blocks and faulty epochs, includes at least one kill and
// one stall — so the recovery path (expire → re-lease → fence the
// stale ack) is provably exercised, not just possible. The scan is
// deterministic: the test always runs the same schedule.
func chaoticSeed(t *testing.T, blocks int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		c := &Chaos{Seed: seed}
		var kills, stalls int
		for b := 0; b < blocks; b++ {
			for e := 0; e < 2; e++ {
				switch c.Action(b, e) {
				case ActKill:
					kills++
				case ActStall:
					stalls++
				}
			}
		}
		if kills > 0 && stalls > 0 {
			return seed
		}
	}
	t.Fatal("no chaos seed under 200 yields both a kill and a stall")
	return 0
}

// runBlock is the Run callback real workers use: execute the granted
// block as the contiguous shard of the canonical stream and encode its
// checkpoint.
func runBlock(ctx context.Context, g Grant) ([]byte, error) {
	cfg := scenario.CampaignConfig{
		Generator:  g.Campaign.Generator,
		Gen:        g.Campaign.Gen,
		Count:      g.Campaign.Count,
		Seeds:      g.Campaign.Seeds,
		ShardIndex: g.Block,
		ShardCount: g.Campaign.Blocks,
	}
	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		return nil, err
	}
	for v, serr := range scenario.StreamCampaign(ctx, cfg) {
		if serr != nil {
			return nil, serr
		}
		agg.Add(v)
	}
	return agg.Checkpoint().Encode()
}

// TestChaosFleetReproducesSingleProcessBytes is the package's hard bar:
// a 3-worker fleet under a seeded kill/stall/double-ack schedule, with
// aggressive lease timeouts, must merge to the byte-identical report of
// an uninterrupted single-process run — and every injected failure must
// be observable in the recovery accounting.
func TestChaosFleetReproducesSingleProcessBytes(t *testing.T) {
	const blocks = 6
	camp := Campaign{
		Generator: "uniform",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     48,
		Seeds:     []uint64{1},
		Blocks:    blocks,
	}
	seed := chaoticSeed(t, blocks)
	reg := telemetry.NewRegistry()
	coord, err := New(Config{
		Campaign:         camp,
		HeartbeatTimeout: 200 * time.Millisecond,
		Registry:         reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv, err := Serve("127.0.0.1:0", coord)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = Work(ctx, WorkerConfig{
				URL:   "http://" + srv.Addr(),
				ID:    fmt.Sprintf("w%d", i),
				Run:   runBlock,
				Chaos: &Chaos{Seed: seed},
				Logf:  t.Logf,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("workers exited but the campaign is not done")
	}

	agg, err := coord.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var merged bytes.Buffer
	if err := agg.WriteReport(&merged); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if whole := wholeReport(t, camp); !bytes.Equal(merged.Bytes(), whole) {
		t.Fatalf("chaos fleet diverged from single-process bytes (chaos seed %d):\n--- merged ---\n%s\n--- whole ---\n%s",
			seed, merged.Bytes(), whole)
	}

	// Recovery accounting: the schedule injected kills and stalls, so
	// leases demonstrably expired — and at completion every expired lease
	// has been re-leased (the CI invariant).
	st := coord.Status()
	if st.Expired == 0 {
		t.Fatalf("chaos run recorded no expired leases: %+v", st)
	}
	if st.Expired != st.ReLeased {
		t.Fatalf("expired=%d != reLeased=%d at completion", st.Expired, st.ReLeased)
	}
	if st.Acked != blocks {
		t.Fatalf("acked=%d, want %d", st.Acked, blocks)
	}
	snap := reg.Snapshot()
	if snap.Counters["lease.expired"] != st.Expired || snap.Counters["lease.reLeased"] != st.ReLeased {
		t.Fatalf("telemetry disagrees with status: counters=%v status=%+v", snap.Counters, st)
	}
}

// TestCleanFleetCompletes pins the no-chaos path: multiple well-behaved
// workers drain the campaign with zero expiries and the same bytes.
func TestCleanFleetCompletes(t *testing.T) {
	camp := Campaign{
		Generator: "boundary",
		Gen:       scenario.GenConfig{MaxRing: 8},
		Count:     30,
		Seeds:     []uint64{1, 2},
		Blocks:    5,
	}
	coord, err := New(Config{Campaign: camp, HeartbeatTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv, err := Serve("127.0.0.1:0", coord)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = Work(ctx, WorkerConfig{
				URL: "http://" + srv.Addr(),
				ID:  fmt.Sprintf("clean%d", i),
				Run: runBlock,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	agg, err := coord.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var merged bytes.Buffer
	if err := agg.WriteReport(&merged); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if whole := wholeReport(t, camp); !bytes.Equal(merged.Bytes(), whole) {
		t.Fatal("clean fleet diverged from single-process bytes")
	}
	if st := coord.Status(); st.Expired != 0 || st.ReLeased != 0 {
		t.Fatalf("clean run recorded recoveries: %+v", st)
	}
}

// TestWorkerReportsCampaignFailure pins the loud-failure path: when a
// block exhausts its lease epochs the fleet learns the campaign failed
// and exits non-zero instead of spinning.
func TestWorkerReportsCampaignFailure(t *testing.T) {
	clock := newFakeClock()
	coord, err := New(Config{
		Campaign: Campaign{
			Generator: "uniform",
			Count:     8,
			Seeds:     []uint64{1},
			Blocks:    2,
		},
		HeartbeatTimeout: time.Second,
		MaxEpochs:        1,
		Now:              clock.Now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Burn block 0's single allowed epoch by leasing and going silent:
	// the next lease attempt latches the campaign failure.
	if resp := coord.Lease("earlier"); resp.Grant == nil {
		t.Fatalf("seed lease: %+v", resp)
	}
	clock.Advance(2 * time.Second)
	if resp := coord.Lease("earlier"); resp.Failed == "" {
		t.Fatalf("exhausted lease: got %+v, want Failed", resp)
	}

	srv, err := Serve("127.0.0.1:0", coord)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	werr := Work(ctx, WorkerConfig{
		URL: "http://" + srv.Addr(),
		ID:  "latecomer",
		Run: runBlock,
	})
	if werr == nil || !strings.Contains(werr.Error(), "campaign failed") {
		t.Fatalf("worker against failed campaign: %v, want campaign-failed error", werr)
	}
}
