// Package lease is the fault-tolerant work fabric behind multi-process
// campaigns: a coordinator partitions a campaign's canonical spec stream
// into contiguous blocks and leases them to worker processes, tracking
// heartbeats so a worker that dies — or vanishes with its lease — loses
// the block to a bounded re-lease instead of losing the campaign.
//
// The design is leader-authoritative with per-lease epochs and fencing
// tokens: every grant of a block carries a fresh globally-monotonic
// token, and heartbeats and acks quoting a superseded token are rejected
// (ErrStale), so a stale worker that stalls past its expiry and then
// tries to deliver a late result cannot race the re-leased owner. Acks
// are idempotent — re-acking a completed block with its winning token is
// a harmless duplicate.
//
// Determinism is the package's correctness bar, inherited from the rest
// of the repository: blocks are the same contiguous regions the
// -shard-index/-shard-count machinery runs ([i·total/B, (i+1)·total/B)),
// each block's checkpoint is a deterministic function of the campaign
// identity alone, and the coordinator folds acked checkpoints through
// scenario.MergeCheckpoints — so the merged report is byte-identical to
// a single-process run for any worker fleet and any failure pattern.
package lease

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// ErrStale marks a heartbeat or ack quoting a fencing token that a
// re-lease (or expiry) has superseded. Workers treat it as "the lease is
// lost": abandon the block and move on.
var ErrStale = errors.New("lease: stale fencing token")

// Campaign pins the work the coordinator hands out: the resolved
// campaign identity (exactly the fields a checkpoint echoes) plus the
// number of contiguous blocks the canonical stream is split into.
type Campaign struct {
	Generator string             `json:"generator"`
	Gen       scenario.GenConfig `json:"gen"`
	Count     int                `json:"count"`
	Seeds     []uint64           `json:"seeds"`
	// Blocks is the lease granularity: block i covers
	// [i·total/Blocks, (i+1)·total/Blocks) of the canonical stream —
	// the same partition -shard-index/-shard-count runs, so block
	// checkpoints merge through the existing shard machinery.
	Blocks int `json:"blocks"`
}

// Total returns the number of scenarios in the campaign's canonical
// stream.
func (c Campaign) Total() int { return c.Count * len(c.Seeds) }

// Block returns the [start, end) bounds of block i.
func (c Campaign) Block(i int) (start, end int) {
	total := c.Total()
	return i * total / c.Blocks, (i + 1) * total / c.Blocks
}

// Grant is one lease: a block, its bounds, the lease epoch (how many
// grants of this block preceded it) and the fencing token every
// heartbeat and the final ack must quote. HeartbeatMillis is the cadence
// the coordinator expects; TimeoutMillis is how long silence lasts
// before the lease expires and the block is re-leased.
type Grant struct {
	Worker          string   `json:"worker"`
	Block           int      `json:"block"`
	Start           int      `json:"start"`
	End             int      `json:"end"`
	Epoch           int      `json:"epoch"`
	Token           uint64   `json:"token"`
	HeartbeatMillis int64    `json:"heartbeatMillis"`
	TimeoutMillis   int64    `json:"timeoutMillis"`
	Campaign        Campaign `json:"campaign"`
}

// Config parameterizes a Coordinator.
type Config struct {
	// Campaign identifies the work; Generator/Gen/Count/Seeds are
	// resolved to the same defaults a campaign run applies, so grant
	// payloads and checkpoint identities agree field for field.
	Campaign Campaign
	// HeartbeatTimeout is how long a lease survives without a heartbeat
	// before its block is re-leased. Values <= 0 mean 5s.
	HeartbeatTimeout time.Duration
	// MaxEpochs bounds re-leasing: a block granted this many times
	// without an ack fails the campaign loudly (a block that can never
	// complete must not spin forever). Values <= 0 mean 16.
	MaxEpochs int
	// Registry, when non-nil, receives the coordinator's telemetry
	// (lease.granted/reLeased/expired/acked/... counters and the
	// lease.ackLatencyMillis histogram). Observational only.
	Registry *telemetry.Registry
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// blockState tracks one block of the campaign through the lease
// lifecycle.
type blockState struct {
	state     int // blockPending | blockLeased | blockDone
	epoch     int // grants so far
	token     uint64
	worker    string
	deadline  time.Time
	grantedAt time.Time
}

const (
	blockPending = iota
	blockLeased
	blockDone
)

// Coordinator is the leader: it grants block leases, expires silent
// ones, fences stale acks, and folds accepted block checkpoints into the
// canonical campaign aggregate.
type Coordinator struct {
	cfg     Config
	camp    Campaign
	timeout time.Duration
	now     func() time.Time

	mu     sync.Mutex
	blocks []blockState
	ckpts  []*scenario.Checkpoint // by block index; non-nil when acked
	next   uint64                 // fencing token source (monotonic, never reused)
	acked  int
	failed error
	done   chan struct{}

	// Plain counters back Status and the end-of-run summary; the
	// telemetry instruments mirror them for live /metrics scraping.
	granted, reLeased, expired  int64
	acks, dupAcks, staleAcks    int64
	heartbeats, staleHeartbeats int64
	cGranted, cReLeased         *telemetry.Counter
	cExpired, cAcks, cDupAcks   *telemetry.Counter
	cStaleAcks, cHeartbeats     *telemetry.Counter
	cStaleHeartbeats            *telemetry.Counter
	ackLatency                  *telemetry.Hist
}

// New validates the campaign, resolves its identity to the same defaults
// a campaign run applies, and returns a coordinator with every block
// pending.
func New(cfg Config) (*Coordinator, error) {
	camp := cfg.Campaign
	// Resolve the identity through the aggregate constructor so grants
	// carry exactly the fields block checkpoints will echo back.
	agg, err := scenario.NewAggregate(scenario.CampaignConfig{
		Generator: camp.Generator,
		Gen:       camp.Gen,
		Count:     camp.Count,
		Seeds:     camp.Seeds,
	})
	if err != nil {
		return nil, err
	}
	camp.Generator = agg.Generator
	camp.Gen = agg.Gen
	camp.Count = agg.Count
	camp.Seeds = agg.Seeds
	// A one-spec dry sample catches unknown generators and bounds the
	// samplers cannot honor before any worker is involved.
	if _, err := scenario.Generate(camp.Generator, camp.Gen, camp.Seeds[0], 1); err != nil {
		return nil, err
	}
	total := camp.Total()
	if camp.Blocks < 1 {
		camp.Blocks = 8
	}
	if camp.Blocks > total {
		camp.Blocks = total // every block must be non-empty
	}
	timeout := cfg.HeartbeatTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 16
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Registry
	return &Coordinator{
		cfg:              cfg,
		camp:             camp,
		timeout:          timeout,
		now:              now,
		blocks:           make([]blockState, camp.Blocks),
		ckpts:            make([]*scenario.Checkpoint, camp.Blocks),
		done:             make(chan struct{}),
		cGranted:         reg.Counter("lease.granted"),
		cReLeased:        reg.Counter("lease.reLeased"),
		cExpired:         reg.Counter("lease.expired"),
		cAcks:            reg.Counter("lease.acked"),
		cDupAcks:         reg.Counter("lease.ackDuplicate"),
		cStaleAcks:       reg.Counter("lease.ackStale"),
		cHeartbeats:      reg.Counter("lease.heartbeats"),
		cStaleHeartbeats: reg.Counter("lease.heartbeatStale"),
		ackLatency:       reg.Hist("lease.ackLatencyMillis"),
	}, nil
}

// Campaign returns the resolved campaign identity the coordinator hands
// out in grants.
func (c *Coordinator) Campaign() Campaign { return c.camp }

// Timeout returns the effective heartbeat timeout.
func (c *Coordinator) Timeout() time.Duration { return c.timeout }

// Done is closed when the campaign completes — every block acked — or
// fails (a block exhausted MaxEpochs). Result distinguishes the two.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// LeaseResponse is the coordinator's answer to a lease request: a grant,
// a "come back in RetryMillis" wait (everything leased, nothing
// expired), Done (campaign complete: the worker should exit), or Failed.
type LeaseResponse struct {
	Grant       *Grant `json:"grant,omitempty"`
	RetryMillis int64  `json:"retryMillis,omitempty"`
	Done        bool   `json:"done,omitempty"`
	Failed      string `json:"failed,omitempty"`
}

// Lease grants the lowest-index pending block to worker, expiring silent
// leases first. When nothing is pending it returns a wait hint sized to
// the nearest lease deadline.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	if c.failed != nil {
		return LeaseResponse{Failed: c.failed.Error()}
	}
	if c.acked == len(c.blocks) {
		return LeaseResponse{Done: true}
	}
	for i := range c.blocks {
		b := &c.blocks[i]
		if b.state != blockPending {
			continue
		}
		if b.epoch >= c.cfg.MaxEpochs {
			c.failLocked(fmt.Errorf("lease: block %d exhausted %d lease epochs without an ack", i, b.epoch))
			return LeaseResponse{Failed: c.failed.Error()}
		}
		epoch := b.epoch
		b.epoch++
		c.next++
		b.state = blockLeased
		b.token = c.next
		b.worker = worker
		b.grantedAt = now
		b.deadline = now.Add(c.timeout)
		c.granted++
		c.cGranted.Inc()
		if epoch > 0 {
			c.reLeased++
			c.cReLeased.Inc()
		}
		start, end := c.camp.Block(i)
		hb := c.timeout / 3
		if hb < time.Millisecond {
			hb = time.Millisecond
		}
		return LeaseResponse{Grant: &Grant{
			Worker:          worker,
			Block:           i,
			Start:           start,
			End:             end,
			Epoch:           epoch,
			Token:           b.token,
			HeartbeatMillis: hb.Milliseconds(),
			TimeoutMillis:   c.timeout.Milliseconds(),
			Campaign:        c.camp,
		}}
	}
	// Everything in flight: tell the worker when the earliest lease could
	// expire so it polls neither hot nor lazily.
	retry := c.timeout
	for i := range c.blocks {
		b := &c.blocks[i]
		if b.state == blockLeased {
			if d := b.deadline.Sub(now); d < retry {
				retry = d
			}
		}
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return LeaseResponse{RetryMillis: retry.Milliseconds()}
}

// Heartbeat extends the lease on block quoting token. A token superseded
// by expiry or re-lease earns ErrStale — the worker's signal to abandon
// the block.
func (c *Coordinator) Heartbeat(block int, token uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	if block < 0 || block >= len(c.blocks) {
		return fmt.Errorf("lease: heartbeat for unknown block %d", block)
	}
	b := &c.blocks[block]
	if b.state != blockLeased || b.token != token {
		c.staleHeartbeats++
		c.cStaleHeartbeats.Inc()
		return fmt.Errorf("%w (heartbeat for block %d)", ErrStale, block)
	}
	b.deadline = now.Add(c.timeout)
	c.heartbeats++
	c.cHeartbeats.Inc()
	return nil
}

// Ack delivers block's completed checkpoint under token. Fencing: a
// token superseded by expiry or re-lease is rejected with ErrStale even
// if the payload is valid — the re-leased owner's ack is authoritative.
// Re-acking a done block with its winning token reports duplicate=true
// and succeeds (idempotence); checkpoints that fail to decode, mismatch
// the campaign identity, or do not exactly cover the block are rejected.
func (c *Coordinator) Ack(block int, token uint64, data []byte) (duplicate bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	if block < 0 || block >= len(c.blocks) {
		return false, fmt.Errorf("lease: ack for unknown block %d", block)
	}
	b := &c.blocks[block]
	if b.state == blockDone {
		if b.token == token {
			c.dupAcks++
			c.cDupAcks.Inc()
			return true, nil
		}
		c.staleAcks++
		c.cStaleAcks.Inc()
		return false, fmt.Errorf("%w (late ack for completed block %d)", ErrStale, block)
	}
	if b.state != blockLeased || b.token != token {
		c.staleAcks++
		c.cStaleAcks.Inc()
		return false, fmt.Errorf("%w (ack for block %d)", ErrStale, block)
	}
	ckpt, derr := scenario.DecodeCheckpoint(data)
	if derr != nil {
		return false, fmt.Errorf("lease: block %d checkpoint rejected: %w", block, derr)
	}
	if verr := c.validateBlockCheckpoint(block, ckpt); verr != nil {
		return false, verr
	}
	b.state = blockDone
	c.ckpts[block] = ckpt
	c.acked++
	c.acks++
	c.cAcks.Inc()
	c.ackLatency.Observe(int(now.Sub(b.grantedAt).Milliseconds()))
	if c.acked == len(c.blocks) {
		close(c.done)
	}
	return false, nil
}

// validateBlockCheckpoint rejects a checkpoint whose campaign identity
// or block coverage disagrees with the grant — a confused (or byzantine)
// worker must not smuggle foreign results into the merge.
func (c *Coordinator) validateBlockCheckpoint(block int, ckpt *scenario.Checkpoint) error {
	if ckpt.Generator != c.camp.Generator || ckpt.Count != c.camp.Count ||
		ckpt.Gen != c.camp.Gen || !equalSeeds(ckpt.Seeds, c.camp.Seeds) {
		return fmt.Errorf("lease: block %d checkpoint describes a different campaign (%s/%d/%v, want %s/%d/%v)",
			block, ckpt.Generator, ckpt.Count, ckpt.Seeds, c.camp.Generator, c.camp.Count, c.camp.Seeds)
	}
	start, end := c.camp.Block(block)
	if ckpt.Start != start || ckpt.End != end {
		return fmt.Errorf("lease: block %d checkpoint covers [%d, %d), want [%d, %d)",
			block, ckpt.Start, ckpt.End, start, end)
	}
	if ckpt.Done != end-start {
		return fmt.Errorf("lease: block %d checkpoint is incomplete (%d of %d scenarios)",
			block, ckpt.Done, end-start)
	}
	return nil
}

// Expire sweeps lease deadlines against the clock, returning pending any
// block whose worker went silent. Request handling sweeps implicitly;
// servers also tick this so expiry does not depend on request traffic.
func (c *Coordinator) Expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.now())
}

func (c *Coordinator) expireLocked(now time.Time) {
	for i := range c.blocks {
		b := &c.blocks[i]
		if b.state == blockLeased && now.After(b.deadline) {
			b.state = blockPending
			b.token = 0 // invalidate: a late ack must not match
			c.expired++
			c.cExpired.Inc()
		}
	}
}

// failLocked latches the first fatal error and wakes waiters.
func (c *Coordinator) failLocked(err error) {
	if c.failed == nil {
		c.failed = err
		close(c.done)
	}
}

// Result returns the merged whole-campaign aggregate once Done is
// closed: byte-identical to a single-process run of the same campaign.
func (c *Coordinator) Result() (*scenario.Aggregate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, c.failed
	}
	if c.acked != len(c.blocks) {
		return nil, fmt.Errorf("lease: campaign incomplete (%d of %d blocks acked)", c.acked, len(c.blocks))
	}
	return scenario.MergeCheckpoints(c.ckpts...)
}

// Status is a point-in-time summary of the lease fabric, served as JSON
// by /status and rendered into the end-of-run summary line.
type Status struct {
	Blocks          int    `json:"blocks"`
	Acked           int    `json:"acked"`
	Leased          int    `json:"leased"`
	Pending         int    `json:"pending"`
	Done            bool   `json:"done"`
	Granted         int64  `json:"granted"`
	ReLeased        int64  `json:"reLeased"`
	Expired         int64  `json:"expired"`
	Acks            int64  `json:"acks"`
	DupAcks         int64  `json:"dupAcks"`
	StaleAcks       int64  `json:"staleAcks"`
	Heartbeats      int64  `json:"heartbeats"`
	StaleHeartbeats int64  `json:"staleHeartbeats"`
	Failed          string `json:"failed,omitempty"`
}

// Status reports the current lease-fabric state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Blocks:          len(c.blocks),
		Acked:           c.acked,
		Done:            c.failed == nil && c.acked == len(c.blocks),
		Granted:         c.granted,
		ReLeased:        c.reLeased,
		Expired:         c.expired,
		Acks:            c.acks,
		DupAcks:         c.dupAcks,
		StaleAcks:       c.staleAcks,
		Heartbeats:      c.heartbeats,
		StaleHeartbeats: c.staleHeartbeats,
	}
	for i := range c.blocks {
		switch c.blocks[i].state {
		case blockLeased:
			s.Leased++
		case blockPending:
			s.Pending++
		}
	}
	if c.failed != nil {
		s.Failed = c.failed.Error()
	}
	return s
}

// Summary renders the one-line recovery accounting printed at the end of
// a coordinator run. At completion every expired lease has been
// re-leased, so expired == reLeased — the observable recovery invariant
// CI asserts.
func (s Status) Summary() string {
	return fmt.Sprintf("lease summary: blocks=%d acked=%d granted=%d reLeased=%d expired=%d dupAcks=%d staleAcks=%d staleHeartbeats=%d",
		s.Blocks, s.Acked, s.Granted, s.ReLeased, s.Expired, s.DupAcks, s.StaleAcks, s.StaleHeartbeats)
}

func equalSeeds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
