package lease

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pef/internal/scenario"
	"pef/internal/telemetry"
)

// fakeClock is a manually advanced clock for driving lease deadlines
// without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testCampaign is the small campaign the unit tests lease out: 12
// scenarios in 4 blocks of 3.
func testCampaign() Campaign {
	return Campaign{
		Generator: "uniform",
		Gen:       scenario.GenConfig{MaxRing: 6},
		Count:     12,
		Seeds:     []uint64{1},
		Blocks:    4,
	}
}

func newTestCoordinator(t *testing.T, clock *fakeClock, mut func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Campaign:         testCampaign(),
		HeartbeatTimeout: time.Second,
		Now:              clock.Now,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// blockCheckpoint runs block i of the campaign for real and returns its
// encoded checkpoint — the exact bytes a healthy worker would ack.
func blockCheckpoint(t *testing.T, camp Campaign, block int) []byte {
	t.Helper()
	cfg := scenario.CampaignConfig{
		Generator:  camp.Generator,
		Gen:        camp.Gen,
		Count:      camp.Count,
		Seeds:      camp.Seeds,
		ShardIndex: block,
		ShardCount: camp.Blocks,
	}
	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		t.Fatalf("NewAggregate(block %d): %v", block, err)
	}
	for v, serr := range scenario.StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign(block %d): %v", block, serr)
		}
		agg.Add(v)
	}
	data, err := agg.Checkpoint().Encode()
	if err != nil {
		t.Fatalf("Encode(block %d): %v", block, err)
	}
	return data
}

// wholeReport runs the campaign single-process and renders its report —
// the byte-identity baseline every merged result must match.
func wholeReport(t *testing.T, camp Campaign) []byte {
	t.Helper()
	cfg := scenario.CampaignConfig{
		Generator: camp.Generator,
		Gen:       camp.Gen,
		Count:     camp.Count,
		Seeds:     camp.Seeds,
	}
	agg, err := scenario.NewAggregate(cfg)
	if err != nil {
		t.Fatalf("NewAggregate: %v", err)
	}
	for v, serr := range scenario.StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign: %v", serr)
		}
		agg.Add(v)
	}
	var buf bytes.Buffer
	if err := agg.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	return buf.Bytes()
}

func mustGrant(t *testing.T, c *Coordinator, worker string) Grant {
	t.Helper()
	resp := c.Lease(worker)
	if resp.Grant == nil {
		t.Fatalf("Lease(%s): no grant (resp=%+v)", worker, resp)
	}
	return *resp.Grant
}

func TestLeaseGrantsBlocksInOrder(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	camp := c.Campaign()
	var lastToken uint64
	for i := 0; i < camp.Blocks; i++ {
		g := mustGrant(t, c, "w")
		if g.Block != i {
			t.Fatalf("grant %d: got block %d, want lowest pending %d", i, g.Block, i)
		}
		if g.Epoch != 0 {
			t.Fatalf("block %d: fresh grant has epoch %d, want 0", i, g.Epoch)
		}
		start, end := camp.Block(i)
		if g.Start != start || g.End != end {
			t.Fatalf("block %d: grant bounds [%d, %d), want [%d, %d)", i, g.Start, g.End, start, end)
		}
		if g.Token <= lastToken {
			t.Fatalf("block %d: token %d not strictly monotonic after %d", i, g.Token, lastToken)
		}
		lastToken = g.Token
	}
	// Everything leased: the fabric answers with a bounded wait hint.
	resp := c.Lease("w2")
	if resp.Grant != nil || resp.Done || resp.Failed != "" {
		t.Fatalf("all leased: unexpected response %+v", resp)
	}
	if resp.RetryMillis <= 0 || resp.RetryMillis > c.Timeout().Milliseconds() {
		t.Fatalf("all leased: retry hint %dms outside (0, %dms]", resp.RetryMillis, c.Timeout().Milliseconds())
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	g := mustGrant(t, c, "w")
	// Heartbeat just before the deadline, then cross the original
	// deadline: the lease must still be alive.
	clock.Advance(900 * time.Millisecond)
	if err := c.Heartbeat(g.Block, g.Token); err != nil {
		t.Fatalf("heartbeat before deadline: %v", err)
	}
	clock.Advance(900 * time.Millisecond) // 1.8s after grant, 0.9s after beat
	if err := c.Heartbeat(g.Block, g.Token); err != nil {
		t.Fatalf("heartbeat extended lease rejected: %v", err)
	}
	if got := c.Status().Expired; got != 0 {
		t.Fatalf("heartbeated lease expired %d times, want 0", got)
	}
}

func TestExpiredLeaseIsReleasedWithFreshEpochAndToken(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	g := mustGrant(t, c, "w1")
	clock.Advance(c.Timeout() + time.Millisecond)
	// The silent lease lapses and the same block goes to the next asker.
	g2 := mustGrant(t, c, "w2")
	if g2.Block != g.Block {
		t.Fatalf("re-lease granted block %d, want expired block %d", g2.Block, g.Block)
	}
	if g2.Epoch != g.Epoch+1 {
		t.Fatalf("re-lease epoch %d, want %d", g2.Epoch, g.Epoch+1)
	}
	if g2.Token <= g.Token {
		t.Fatalf("re-lease token %d not newer than %d", g2.Token, g.Token)
	}
	st := c.Status()
	if st.Expired != 1 || st.ReLeased != 1 {
		t.Fatalf("expired=%d reLeased=%d, want 1/1", st.Expired, st.ReLeased)
	}
	// The superseded incarnation is fenced on both channels.
	if err := c.Heartbeat(g.Block, g.Token); !errors.Is(err, ErrStale) {
		t.Fatalf("stale heartbeat: got %v, want ErrStale", err)
	}
	data := blockCheckpoint(t, c.Campaign(), g.Block)
	if _, err := c.Ack(g.Block, g.Token, data); !errors.Is(err, ErrStale) {
		t.Fatalf("stale ack with valid payload: got %v, want ErrStale", err)
	}
	// The live incarnation is untouched by the fencing rejections.
	if err := c.Heartbeat(g2.Block, g2.Token); err != nil {
		t.Fatalf("live heartbeat after fencing: %v", err)
	}
}

func TestAckIsIdempotentForWinningToken(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	g := mustGrant(t, c, "w")
	data := blockCheckpoint(t, c.Campaign(), g.Block)
	dup, err := c.Ack(g.Block, g.Token, data)
	if err != nil || dup {
		t.Fatalf("first ack: dup=%t err=%v", dup, err)
	}
	dup, err = c.Ack(g.Block, g.Token, data)
	if err != nil || !dup {
		t.Fatalf("re-ack with winning token: dup=%t err=%v, want duplicate", dup, err)
	}
	// A non-winning token acking a done block is stale, not a duplicate.
	if _, err := c.Ack(g.Block, g.Token+99, data); !errors.Is(err, ErrStale) {
		t.Fatalf("foreign-token ack on done block: got %v, want ErrStale", err)
	}
	st := c.Status()
	if st.Acked != 1 || st.DupAcks != 1 || st.StaleAcks != 1 {
		t.Fatalf("acked=%d dupAcks=%d staleAcks=%d, want 1/1/1", st.Acked, st.DupAcks, st.StaleAcks)
	}
}

func TestAckRejectsBadCheckpoints(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	camp := c.Campaign()
	g := mustGrant(t, c, "w")

	if _, err := c.Ack(g.Block, g.Token, []byte("not json")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// A checkpoint for the wrong block must not land in this slot.
	wrong := blockCheckpoint(t, camp, g.Block+1)
	if _, err := c.Ack(g.Block, g.Token, wrong); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Fatalf("wrong-block checkpoint: got %v, want coverage rejection", err)
	}
	// A checkpoint from a different campaign identity is foreign goods.
	foreign := camp
	foreign.Seeds = []uint64{99}
	foreignData := blockCheckpoint(t, foreign, g.Block)
	if _, err := c.Ack(g.Block, g.Token, foreignData); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("foreign-campaign checkpoint: got %v, want identity rejection", err)
	}
	// The rejections must not have consumed the lease.
	data := blockCheckpoint(t, camp, g.Block)
	if dup, err := c.Ack(g.Block, g.Token, data); err != nil || dup {
		t.Fatalf("valid ack after rejections: dup=%t err=%v", dup, err)
	}
}

func TestCompletionMergesToSingleProcessBytes(t *testing.T) {
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	c := newTestCoordinator(t, clock, func(cfg *Config) { cfg.Registry = reg })
	camp := c.Campaign()

	if _, err := c.Result(); err == nil {
		t.Fatal("Result before completion should fail")
	}
	for i := 0; i < camp.Blocks; i++ {
		g := mustGrant(t, c, "w")
		if _, err := c.Ack(g.Block, g.Token, blockCheckpoint(t, camp, g.Block)); err != nil {
			t.Fatalf("ack block %d: %v", g.Block, err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed after final ack")
	}
	if resp := c.Lease("late"); !resp.Done {
		t.Fatalf("post-completion lease: got %+v, want Done", resp)
	}
	agg, err := c.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	var merged bytes.Buffer
	if err := agg.WriteReport(&merged); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if whole := wholeReport(t, camp); !bytes.Equal(merged.Bytes(), whole) {
		t.Fatalf("merged report diverges from single-process run:\n--- merged ---\n%s\n--- whole ---\n%s", merged.Bytes(), whole)
	}
	// The telemetry instruments mirror the fabric's accounting.
	snap := reg.Snapshot()
	if got := snap.Counters["lease.granted"]; got != int64(camp.Blocks) {
		t.Fatalf("lease.granted=%d, want %d", got, camp.Blocks)
	}
	if got := snap.Hists["lease.ackLatencyMillis"].Count; got != camp.Blocks {
		t.Fatalf("ackLatencyMillis count=%d, want %d", got, camp.Blocks)
	}
}

func TestMaxEpochsFailsCampaignLoudly(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, func(cfg *Config) { cfg.MaxEpochs = 2 })
	// Burn both allowed epochs of block 0 without ever acking.
	for i := 0; i < 2; i++ {
		g := mustGrant(t, c, "w")
		if g.Block != 0 || g.Epoch != i {
			t.Fatalf("grant %d: block=%d epoch=%d", i, g.Block, g.Epoch)
		}
		clock.Advance(c.Timeout() + time.Millisecond)
	}
	resp := c.Lease("w")
	if resp.Failed == "" || !strings.Contains(resp.Failed, "exhausted") {
		t.Fatalf("exhausted block: got %+v, want Failed", resp)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed on campaign failure")
	}
	if _, err := c.Result(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("Result after failure: %v", err)
	}
	if st := c.Status(); st.Failed == "" || st.Done {
		t.Fatalf("failed status: %+v", st)
	}
}

func TestNewRejectsBadCampaigns(t *testing.T) {
	if _, err := New(Config{Campaign: Campaign{Generator: "nope", Count: 10, Seeds: []uint64{1}}}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := New(Config{Campaign: Campaign{Generator: "uniform", Gen: scenario.GenConfig{MaxRing: 3}, Count: 10, Seeds: []uint64{1}}}); err == nil {
		t.Fatal("unsatisfiable maxring accepted")
	}
}

func TestBlocksCappedAtStreamLength(t *testing.T) {
	c, err := New(Config{Campaign: Campaign{
		Generator: "uniform",
		Count:     3,
		Seeds:     []uint64{1},
		Blocks:    64,
	}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	camp := c.Campaign()
	if camp.Blocks != 3 {
		t.Fatalf("Blocks=%d, want capped at total 3", camp.Blocks)
	}
	for i := 0; i < camp.Blocks; i++ {
		start, end := camp.Block(i)
		if end-start != 1 {
			t.Fatalf("block %d: [%d, %d) not a single scenario", i, start, end)
		}
	}
}
