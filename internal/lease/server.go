package lease

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Protocol request bodies. Responses are LeaseResponse, AckResponse, and
// Status; errors render as errorBody with a status code that encodes the
// class: 409 Conflict for fencing rejections (ErrStale), 400 Bad Request
// for malformed or invalid payloads.
type (
	// LeaseRequest asks for the next pending block.
	LeaseRequest struct {
		Worker string `json:"worker"`
	}
	// HeartbeatRequest extends a held lease.
	HeartbeatRequest struct {
		Worker string `json:"worker"`
		Block  int    `json:"block"`
		Token  uint64 `json:"token"`
	}
	// AckRequest delivers a completed block checkpoint (the exact bytes
	// scenario.Checkpoint.Encode produced — the embedded checksum rides
	// along, so transit corruption is caught by the same integrity check
	// that guards on-disk checkpoints).
	AckRequest struct {
		Worker     string          `json:"worker"`
		Block      int             `json:"block"`
		Token      uint64          `json:"token"`
		Checkpoint json.RawMessage `json:"checkpoint"`
	}
	// AckResponse reports whether the ack was an idempotent duplicate.
	AckResponse struct {
		Duplicate bool `json:"duplicate,omitempty"`
	}
	errorBody struct {
		Error string `json:"error"`
	}
)

// Handler serves the lease protocol for a coordinator:
//
//	POST /lease      LeaseRequest     -> LeaseResponse
//	POST /heartbeat  HeartbeatRequest -> {} | 409
//	POST /ack        AckRequest       -> AckResponse | 409 | 400
//	GET  /status     -> Status
//	GET  /metrics    -> telemetry snapshot (empty when no Registry)
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Lease(req.Worker))
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Heartbeat(req.Block, req.Token); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST /ack", func(w http.ResponseWriter, r *http.Request) {
		var req AckRequest
		if !decodeBody(w, r, &req) {
			return
		}
		dup, err := c.Ack(req.Block, req.Token, req.Checkpoint)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, AckResponse{Duplicate: dup})
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.cfg.Registry.Snapshot())
	})
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "pefcoord lease fabric")
		fmt.Fprintln(w, "  POST /lease /heartbeat /ack   worker protocol")
		fmt.Fprintln(w, "  GET  /status                  lease-fabric state (JSON)")
		fmt.Fprintln(w, "  GET  /metrics                 telemetry snapshot (JSON)")
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("lease: bad request body: %v", err)})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrStale) {
		code = http.StatusConflict
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing to report to
}

// Server runs a coordinator's Handler on a TCP listener, with a
// background expiry tick so silent leases lapse even when no request
// traffic drives the sweep.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	stop chan struct{}
}

// Serve starts the lease endpoint on addr (":0" picks a free port; Addr
// reports the choice).
func Serve(addr string, c *Coordinator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lease: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(c), ReadHeaderTimeout: 5 * time.Second},
		stop: make(chan struct{}),
	}
	go s.srv.Serve(ln) //nolint:errcheck // Close() shutdown error is expected
	tick := c.Timeout() / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Expire()
			case <-s.stop:
				return
			}
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the expiry ticker and shuts the server down. Nil receiver:
// no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	close(s.stop)
	return s.srv.Close()
}
