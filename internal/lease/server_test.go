package lease

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pef/internal/telemetry"
)

// postJSON drives one protocol request against a test server and
// returns the status code and raw body.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func TestHandlerProtocol(t *testing.T) {
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	c := newTestCoordinator(t, clock, func(cfg *Config) { cfg.Registry = reg })
	ts := httptest.NewServer(Handler(c))
	defer ts.Close()

	// Lease a block over the wire.
	code, body := postJSON(t, ts.URL+"/lease", LeaseRequest{Worker: "w"})
	if code != http.StatusOK {
		t.Fatalf("/lease: HTTP %d: %s", code, body)
	}
	var lr LeaseResponse
	if err := json.Unmarshal(body, &lr); err != nil || lr.Grant == nil {
		t.Fatalf("/lease response %s: grant=%v err=%v", body, lr.Grant, err)
	}
	g := *lr.Grant

	// A live heartbeat succeeds; a fenced token earns 409 Conflict with
	// a JSON error body.
	code, _ = postJSON(t, ts.URL+"/heartbeat", HeartbeatRequest{Worker: "w", Block: g.Block, Token: g.Token})
	if code != http.StatusOK {
		t.Fatalf("live heartbeat: HTTP %d", code)
	}
	code, body = postJSON(t, ts.URL+"/heartbeat", HeartbeatRequest{Worker: "x", Block: g.Block, Token: g.Token + 1})
	if code != http.StatusConflict {
		t.Fatalf("stale heartbeat: HTTP %d, want 409", code)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "stale") {
		t.Fatalf("stale heartbeat body %s: %v", body, err)
	}

	// A stale ack is 409 too; a malformed ack payload is 400.
	code, _ = postJSON(t, ts.URL+"/ack", AckRequest{Worker: "x", Block: g.Block, Token: g.Token + 1})
	if code != http.StatusConflict {
		t.Fatalf("stale ack: HTTP %d, want 409", code)
	}
	code, _ = postJSON(t, ts.URL+"/ack", AckRequest{
		Worker: "w", Block: g.Block, Token: g.Token, Checkpoint: json.RawMessage(`"garbage"`),
	})
	if code != http.StatusBadRequest {
		t.Fatalf("garbage ack: HTTP %d, want 400", code)
	}

	// A valid ack lands and reports non-duplicate.
	ckpt := blockCheckpoint(t, c.Campaign(), g.Block)
	code, body = postJSON(t, ts.URL+"/ack", AckRequest{
		Worker: "w", Block: g.Block, Token: g.Token, Checkpoint: ckpt,
	})
	if code != http.StatusOK {
		t.Fatalf("valid ack: HTTP %d: %s", code, body)
	}
	var ar AckResponse
	if err := json.Unmarshal(body, &ar); err != nil || ar.Duplicate {
		t.Fatalf("ack response %s: %v", body, err)
	}

	// Introspection: /status mirrors the fabric, /metrics the registry.
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.Acked != 1 || st.Blocks != c.Campaign().Blocks {
		t.Fatalf("/status %+v: %v", st, err)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var snap telemetry.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || snap.Counters["lease.granted"] != 1 || snap.Counters["lease.ackStale"] != 1 {
		t.Fatalf("/metrics %+v: %v", snap, err)
	}

	// Malformed request bodies are 400, unknown paths 404.
	resp, err = http.Post(ts.URL+"/lease", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST /lease malformed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatalf("GET /nope: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestServeBackgroundExpiry(t *testing.T) {
	// A real-clock coordinator with a tiny timeout: the server's expiry
	// ticker must lapse a silent lease with no request traffic at all.
	c, err := New(Config{
		Campaign: Campaign{
			Generator: "uniform",
			Count:     8,
			Seeds:     []uint64{1},
			Blocks:    2,
		},
		HeartbeatTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	if resp := c.Lease("silent"); resp.Grant == nil {
		t.Fatalf("lease: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background ticker never expired the silent lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
