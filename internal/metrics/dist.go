package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Dist is a bounded online distribution of integer observations: a
// value→count table plus a running count and sum. Its memory grows with
// the number of *distinct* values observed, never with the number of
// observations, which is what lets streaming campaign aggregation hold
// O(aggregate) state over million-scenario verdict streams. Summary is
// bit-identical to Summarize over the same multiset, so swapping stored
// sample slices for a Dist changes no rendered report byte.
//
// The zero Dist is not usable; create with NewDist.
type Dist struct {
	counts map[int]int
	count  int
	sum    int
}

// NewDist creates an empty distribution.
func NewDist() *Dist {
	return &Dist{counts: make(map[int]int)}
}

// Add records one observation of v.
func (d *Dist) Add(v int) { d.AddN(v, 1) }

// AddN records n observations of v. Non-positive n is a no-op.
func (d *Dist) AddN(v, n int) {
	if n <= 0 {
		return
	}
	d.counts[v] += n
	d.count += n
	d.sum += v * n
}

// Merge folds every observation of o into d. Merging is commutative and
// associative: any partition of a stream merged in any order yields the
// same distribution, the property checkpoint/resume relies on.
func (d *Dist) Merge(o *Dist) {
	if o == nil {
		return
	}
	for v, n := range o.counts {
		d.AddN(v, n)
	}
}

// Count returns the number of observations.
func (d *Dist) Count() int { return d.count }

// Distinct returns the number of distinct observed values — the memory
// footprint the aggregation guards assert is bounded.
func (d *Dist) Distinct() int { return len(d.counts) }

// sortedValues returns the distinct observed values in ascending order.
func (d *Dist) sortedValues() []int {
	keys := make([]int, 0, len(d.counts))
	for v := range d.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	return keys
}

// Values expands the distribution into the ascending multiset of
// observations (each value repeated by its count).
func (d *Dist) Values() []int {
	out := make([]int, 0, d.count)
	for _, v := range d.sortedValues() {
		for i := 0; i < d.counts[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}

// at returns the i-th element (0-based) of the ascending multiset, using
// the cumulative counts over keys.
func at(keys []int, counts map[int]int, i int) int {
	seen := 0
	for _, v := range keys {
		seen += counts[v]
		if i < seen {
			return v
		}
	}
	return keys[len(keys)-1]
}

// Summary condenses the distribution exactly like Summarize over the same
// multiset: identical Count/Min/Max, the same integer-summed Mean, and
// the same linearly interpolated Median and P95.
func (d *Dist) Summary() Summary {
	if d.count == 0 {
		return Summary{}
	}
	keys := d.sortedValues()
	return Summary{
		Count:  d.count,
		Min:    keys[0],
		Max:    keys[len(keys)-1],
		Mean:   float64(d.sum) / float64(d.count),
		Median: d.quantile(keys, 0.5),
		P95:    d.quantile(keys, 0.95),
	}
}

// quantile mirrors percentile over the ascending multiset: the same
// position arithmetic and the same interpolation expression, so the float
// results are bit-identical.
func (d *Dist) quantile(keys []int, p float64) float64 {
	if d.count == 1 {
		return float64(keys[0])
	}
	pos := p * float64(d.count-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= d.count {
		return float64(keys[len(keys)-1])
	}
	frac := pos - float64(lo)
	return float64(at(keys, d.counts, lo))*(1-frac) + float64(at(keys, d.counts, hi))*frac
}

// DistEntry is one (value, count) cell of a serialized distribution.
type DistEntry struct {
	Value int `json:"v"`
	Count int `json:"n"`
}

// Entries returns the distribution as (value, count) pairs in ascending
// value order — the canonical serialized form used by campaign
// checkpoints.
func (d *Dist) Entries() []DistEntry {
	out := make([]DistEntry, 0, len(d.counts))
	for _, v := range d.sortedValues() {
		out = append(out, DistEntry{Value: v, Count: d.counts[v]})
	}
	return out
}

// DistFromEntries rebuilds a distribution from serialized entries. It
// rejects non-positive counts so corrupt checkpoints fail loudly.
func DistFromEntries(entries []DistEntry) (*Dist, error) {
	d := NewDist()
	for _, e := range entries {
		if e.Count <= 0 {
			return nil, fmt.Errorf("metrics: distribution entry for value %d has non-positive count %d", e.Value, e.Count)
		}
		d.AddN(e.Value, e.Count)
	}
	return d, nil
}

// MarshalJSON encodes the distribution as its canonical entry list.
func (d *Dist) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.Entries())
}

// UnmarshalJSON decodes the canonical entry list.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var entries []DistEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return err
	}
	nd, err := DistFromEntries(entries)
	if err != nil {
		return err
	}
	*d = *nd
	return nil
}
