package metrics

import (
	"encoding/json"
	"reflect"
	"testing"

	"pef/internal/prng"
)

// TestDistSummaryMatchesSummarize is the substitution property the sweep
// rework rests on: for any multiset, Dist.Summary must be bit-identical to
// Summarize over the sample slice — including the interpolated quantiles.
func TestDistSummaryMatchesSummarize(t *testing.T) {
	src := prng.NewSource(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(60)
		xs := make([]int, n)
		d := NewDist()
		for i := range xs {
			xs[i] = src.Intn(12) - 3 // collisions and negatives on purpose
			d.Add(xs[i])
		}
		if got, want := d.Summary(), Summarize(xs); got != want {
			t.Fatalf("trial %d: Dist.Summary() = %+v, Summarize = %+v (xs=%v)", trial, got, want, xs)
		}
	}
	if got := NewDist().Summary(); got != (Summary{}) {
		t.Fatalf("empty dist summary = %+v", got)
	}
}

// TestDistMergeOrderIndependent checks the checkpoint/resume property:
// any partition of a stream, merged in any order, yields the same
// distribution.
func TestDistMergeOrderIndependent(t *testing.T) {
	a, b, whole := NewDist(), NewDist(), NewDist()
	for i := 0; i < 100; i++ {
		v := (i * 7) % 13
		whole.Add(v)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	ba := NewDist()
	ba.Merge(b)
	ba.Merge(a)
	ab := NewDist()
	ab.Merge(a)
	ab.Merge(b)
	for _, m := range []*Dist{ab, ba} {
		if m.Summary() != whole.Summary() || m.Count() != whole.Count() {
			t.Fatalf("merged dist diverges: %+v vs %+v", m.Summary(), whole.Summary())
		}
	}
}

func TestDistEntriesRoundTrip(t *testing.T) {
	d := NewDist()
	for _, v := range []int{5, -1, 5, 3, 5, -1} {
		d.Add(v)
	}
	wantEntries := []DistEntry{{-1, 2}, {3, 1}, {5, 3}}
	if got := d.Entries(); !reflect.DeepEqual(got, wantEntries) {
		t.Fatalf("Entries() = %v", got)
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Summary() != d.Summary() || back.Distinct() != d.Distinct() {
		t.Fatalf("JSON round-trip changed the distribution: %+v vs %+v", back.Summary(), d.Summary())
	}
	if _, err := DistFromEntries([]DistEntry{{1, 0}}); err == nil {
		t.Fatal("zero-count entry accepted")
	}
}

// TestDistFootprintBoundedByValueUniverse pins the memory contract: the
// distinct-value footprint saturates at the value universe no matter how
// many observations stream through.
func TestDistFootprintBoundedByValueUniverse(t *testing.T) {
	d := NewDist()
	for i := 0; i < 1000; i++ {
		d.Add(i % 17)
	}
	atThousand := d.Distinct()
	for i := 0; i < 9000; i++ {
		d.Add(i % 17)
	}
	if d.Distinct() != atThousand || d.Distinct() != 17 {
		t.Fatalf("footprint grew with observations: %d then %d", atThousand, d.Distinct())
	}
	if d.Count() != 10000 {
		t.Fatalf("count = %d", d.Count())
	}
}
