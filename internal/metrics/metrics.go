// Package metrics provides the small statistics and report-formatting
// toolkit shared by the experiment harness: summaries of integer series and
// aligned text tables.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary condenses an integer series.
type Summary struct {
	Count  int
	Min    int
	Max    int
	Mean   float64
	Median float64
	P95    float64
}

// Summarize computes a Summary. An empty series yields the zero Summary.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	total := 0
	for _, x := range sorted {
		total += x
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   float64(total) / float64(len(sorted)),
		Median: percentile(sorted, 0.5),
		P95:    percentile(sorted, 0.95),
	}
}

// percentile returns the p-quantile of a sorted series by linear
// interpolation.
func percentile(sorted []int, p float64) float64 {
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return float64(sorted[len(sorted)-1])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// Gap returns the max-min spread of the series — for seed sweeps, how far
// the hardest adversary schedule sits from the easiest.
func (s Summary) Gap() int { return s.Max - s.Min }

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d max=%d mean=%.1f median=%.1f p95=%.1f",
		s.Count, s.Min, s.Max, s.Mean, s.Median, s.P95)
}

// Table is an aligned text table for experiment reports.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: append([]string(nil), headers...)}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table, aligned with tabs.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.headers) > 0 {
		if _, err := fmt.Fprintln(tw, strings.Join(t.headers, "\t")); err != nil {
			return err
		}
		underline := make([]string, len(t.headers))
		for i, h := range t.headers {
			underline[i] = strings.Repeat("-", len(h))
		}
		if _, err := fmt.Fprintln(tw, strings.Join(underline, "\t")); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder never fails.
	_ = t.Render(&b)
	return b.String()
}
