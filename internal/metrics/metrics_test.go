package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]int{7})
	if s.Count != 1 || s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeKnownSeries(t *testing.T) {
	s := Summarize([]int{4, 1, 3, 2})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if !strings.Contains(s.String(), "min=1") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []int{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	prop := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		in := make([]int, len(xs))
		for i, x := range xs {
			in[i] = int(x)
		}
		s := Summarize(in)
		return s.Count == len(in) &&
			float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max) &&
			float64(s.Min) <= s.Median && s.Median <= float64(s.Max) &&
			s.Median <= s.P95+1e-9 && s.P95 <= float64(s.Max)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 22)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, underline, two rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Fatalf("header malformed:\n%s", out)
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22") {
		t.Fatalf("rows malformed:\n%s", out)
	}
}

func TestTableWithoutHeaders(t *testing.T) {
	tb := NewTable()
	tb.AddRow("x")
	out := tb.String()
	if strings.Contains(out, "----") {
		t.Fatalf("headerless table rendered separator:\n%s", out)
	}
}
