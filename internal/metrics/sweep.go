package metrics

import "fmt"

// Sweep aggregates a pass/fail matrix over (experiment × seed) jobs into
// the summary rows of a seed-sweep report: pass rates per experiment and
// the per-seed pass-count spread (min/max/gap) that reveals whether some
// adversary schedules are harder than others. Both axes keep
// first-recorded order so rendering is deterministic for a fixed record
// sequence.
type Sweep struct {
	ids     []string
	seeds   []uint64
	idIdx   map[string]int
	seedIdx map[uint64]int
	pass    map[[2]int]bool

	// Scalar observations (cover times, revisit gaps, …) keyed by
	// (id, metric name), in first-recorded order for deterministic
	// rendering. Each series is a bounded Dist — O(distinct values), never
	// O(observations) — so sweeps and streaming campaigns aggregate
	// scalars without retaining per-job samples.
	scalarKeys []scalarKey
	scalarIdx  map[scalarKey]int
	scalars    []*Dist
}

// scalarKey addresses one scalar series: an experiment ID and a metric name.
type scalarKey struct {
	id   string
	name string
}

// Scalar is one named scalar observation attached to a job result (e.g.
// {"cover", 137}). Experiments record several per run; the sweep aggregates
// them into min/mean/max rows across every seed and run.
type Scalar struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// NewSweep creates an empty sweep matrix.
func NewSweep() *Sweep {
	return &Sweep{
		idIdx:     make(map[string]int),
		seedIdx:   make(map[uint64]int),
		pass:      make(map[[2]int]bool),
		scalarIdx: make(map[scalarKey]int),
	}
}

// Record stores one verdict. Recording the same (id, seed) twice keeps the
// last verdict.
func (s *Sweep) Record(id string, seed uint64, pass bool) {
	i, ok := s.idIdx[id]
	if !ok {
		i = len(s.ids)
		s.idIdx[id] = i
		s.ids = append(s.ids, id)
	}
	j, ok := s.seedIdx[seed]
	if !ok {
		j = len(s.seeds)
		s.seedIdx[seed] = j
		s.seeds = append(s.seeds, seed)
	}
	s.pass[[2]int{i, j}] = pass
}

// RecordScalar appends one scalar observation for the given experiment ID.
// Unlike Record, scalars accumulate: every observation contributes to the
// min/mean/max aggregate of its (id, name) series.
func (s *Sweep) RecordScalar(id, name string, value int) {
	s.scalarDist(id, name).Add(value)
}

// scalarDist returns the distribution for (id, name), creating it in
// first-recorded order when new.
func (s *Sweep) scalarDist(id, name string) *Dist {
	k := scalarKey{id, name}
	i, ok := s.scalarIdx[k]
	if !ok {
		i = len(s.scalarKeys)
		s.scalarIdx[k] = i
		s.scalarKeys = append(s.scalarKeys, k)
		s.scalars = append(s.scalars, NewDist())
	}
	return s.scalars[i]
}

// ScalarSeries returns the recorded values for one (id, name) series as an
// ascending multiset (the per-observation order is not retained), nil when
// the series was never recorded.
func (s *Sweep) ScalarSeries(id, name string) []int {
	i, ok := s.scalarIdx[scalarKey{id, name}]
	if !ok {
		return nil
	}
	return s.scalars[i].Values()
}

// ScalarState is the canonical serialized form of one scalar series —
// the unit of campaign checkpoints.
type ScalarState struct {
	ID      string      `json:"id"`
	Metric  string      `json:"metric"`
	Entries []DistEntry `json:"entries"`
}

// ScalarStates exports every scalar series in first-recorded order.
func (s *Sweep) ScalarStates() []ScalarState {
	out := make([]ScalarState, 0, len(s.scalarKeys))
	for i, k := range s.scalarKeys {
		out = append(out, ScalarState{ID: k.id, Metric: k.name, Entries: s.scalars[i].Entries()})
	}
	return out
}

// RestoreScalars folds serialized scalar series back into the sweep,
// preserving the exported order — Add-ing further observations afterwards
// continues the stream exactly where the checkpoint cut it.
func (s *Sweep) RestoreScalars(states []ScalarState) error {
	for _, st := range states {
		d, err := DistFromEntries(st.Entries)
		if err != nil {
			return fmt.Errorf("metrics: series %s/%s: %w", st.ID, st.Metric, err)
		}
		s.scalarDist(st.ID, st.Metric).Merge(d)
	}
	return nil
}

// ScalarCount returns the number of distinct (id, metric) scalar series.
func (s *Sweep) ScalarCount() int { return len(s.scalarKeys) }

// ScalarRow is one aggregated scalar series, the unit of the scalar table
// and of machine-readable sweep output.
type ScalarRow struct {
	ID     string  `json:"id"`
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	Min    int     `json:"min"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Max    int     `json:"max"`
}

// ScalarRows aggregates every recorded scalar series in first-recorded
// order.
func (s *Sweep) ScalarRows() []ScalarRow {
	rows := make([]ScalarRow, 0, len(s.scalarKeys))
	for i, k := range s.scalarKeys {
		sum := s.scalars[i].Summary()
		rows = append(rows, ScalarRow{
			ID:     k.id,
			Metric: k.name,
			Count:  sum.Count,
			Min:    sum.Min,
			Mean:   sum.Mean,
			Median: sum.Median,
			Max:    sum.Max,
		})
	}
	return rows
}

// ScalarTable renders the per-experiment scalar aggregates: one row per
// (experiment, metric) series with its count and min/mean/max spread.
func (s *Sweep) ScalarTable() *Table {
	t := NewTable("experiment", "metric", "count", "min", "mean", "median", "max")
	for _, r := range s.ScalarRows() {
		t.AddRow(r.ID, r.Metric, r.Count, r.Min, fmt.Sprintf("%.1f", r.Mean), fmt.Sprintf("%.1f", r.Median), r.Max)
	}
	return t
}

// IDs returns the number of distinct experiment IDs recorded.
func (s *Sweep) IDs() int { return len(s.ids) }

// SeedCount returns the number of distinct seeds recorded.
func (s *Sweep) SeedCount() int { return len(s.seeds) }

// Passes returns the total number of passing verdicts.
func (s *Sweep) Passes() int {
	n := 0
	for _, p := range s.pass {
		if p {
			n++
		}
	}
	return n
}

// PassRate returns the overall fraction of passing verdicts, in [0, 1].
// An empty sweep has pass rate 0.
func (s *Sweep) PassRate() float64 {
	if len(s.pass) == 0 {
		return 0
	}
	return float64(s.Passes()) / float64(len(s.pass))
}

// passesFor counts passing seeds for the id at index i.
func (s *Sweep) passesFor(i int) int {
	n := 0
	for j := range s.seeds {
		if s.pass[[2]int{i, j}] {
			n++
		}
	}
	return n
}

// passesAt counts passing experiments for the seed at index j.
func (s *Sweep) passesAt(j int) int {
	n := 0
	for i := range s.ids {
		if s.pass[[2]int{i, j}] {
			n++
		}
	}
	return n
}

// SeedPasses returns the per-seed pass counts in recorded seed order — the
// series whose Summarize().Gap() measures schedule-to-schedule spread.
func (s *Sweep) SeedPasses() []int {
	out := make([]int, len(s.seeds))
	for j := range s.seeds {
		out[j] = s.passesAt(j)
	}
	return out
}

// Table renders the per-experiment aggregate: one row per ID with its pass
// count and pass rate across seeds, closed by an overall row.
func (s *Sweep) Table() *Table {
	t := NewTable("experiment", "seeds", "passes", "pass-rate")
	for i, id := range s.ids {
		p := s.passesFor(i)
		t.AddRow(id, len(s.seeds), p, rate(p, len(s.seeds)))
	}
	t.AddRow("overall", len(s.pass), s.Passes(), rate(s.Passes(), len(s.pass)))
	return t
}

// SeedTable renders the per-seed view: one row per seed with the number of
// experiments that pass under it, closed by a min/max/gap summary row over
// the per-seed pass counts.
func (s *Sweep) SeedTable() *Table {
	t := NewTable("seed", "experiments", "passes", "pass-rate")
	for j, seed := range s.seeds {
		p := s.passesAt(j)
		t.AddRow(seed, len(s.ids), p, rate(p, len(s.ids)))
	}
	sum := Summarize(s.SeedPasses())
	t.AddRow("spread", "", fmt.Sprintf("min=%d max=%d", sum.Min, sum.Max), fmt.Sprintf("gap=%d", sum.Gap()))
	return t
}

// rate formats a pass ratio as a percentage.
func rate(passes, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(passes)/float64(total))
}
