package metrics

import "fmt"

// Sweep aggregates a pass/fail matrix over (experiment × seed) jobs into
// the summary rows of a seed-sweep report: pass rates per experiment and
// the per-seed pass-count spread (min/max/gap) that reveals whether some
// adversary schedules are harder than others. Both axes keep
// first-recorded order so rendering is deterministic for a fixed record
// sequence.
type Sweep struct {
	ids     []string
	seeds   []uint64
	idIdx   map[string]int
	seedIdx map[uint64]int
	pass    map[[2]int]bool
}

// NewSweep creates an empty sweep matrix.
func NewSweep() *Sweep {
	return &Sweep{
		idIdx:   make(map[string]int),
		seedIdx: make(map[uint64]int),
		pass:    make(map[[2]int]bool),
	}
}

// Record stores one verdict. Recording the same (id, seed) twice keeps the
// last verdict.
func (s *Sweep) Record(id string, seed uint64, pass bool) {
	i, ok := s.idIdx[id]
	if !ok {
		i = len(s.ids)
		s.idIdx[id] = i
		s.ids = append(s.ids, id)
	}
	j, ok := s.seedIdx[seed]
	if !ok {
		j = len(s.seeds)
		s.seedIdx[seed] = j
		s.seeds = append(s.seeds, seed)
	}
	s.pass[[2]int{i, j}] = pass
}

// IDs returns the number of distinct experiment IDs recorded.
func (s *Sweep) IDs() int { return len(s.ids) }

// SeedCount returns the number of distinct seeds recorded.
func (s *Sweep) SeedCount() int { return len(s.seeds) }

// Passes returns the total number of passing verdicts.
func (s *Sweep) Passes() int {
	n := 0
	for _, p := range s.pass {
		if p {
			n++
		}
	}
	return n
}

// PassRate returns the overall fraction of passing verdicts, in [0, 1].
// An empty sweep has pass rate 0.
func (s *Sweep) PassRate() float64 {
	if len(s.pass) == 0 {
		return 0
	}
	return float64(s.Passes()) / float64(len(s.pass))
}

// passesFor counts passing seeds for the id at index i.
func (s *Sweep) passesFor(i int) int {
	n := 0
	for j := range s.seeds {
		if s.pass[[2]int{i, j}] {
			n++
		}
	}
	return n
}

// passesAt counts passing experiments for the seed at index j.
func (s *Sweep) passesAt(j int) int {
	n := 0
	for i := range s.ids {
		if s.pass[[2]int{i, j}] {
			n++
		}
	}
	return n
}

// SeedPasses returns the per-seed pass counts in recorded seed order — the
// series whose Summarize().Gap() measures schedule-to-schedule spread.
func (s *Sweep) SeedPasses() []int {
	out := make([]int, len(s.seeds))
	for j := range s.seeds {
		out[j] = s.passesAt(j)
	}
	return out
}

// Table renders the per-experiment aggregate: one row per ID with its pass
// count and pass rate across seeds, closed by an overall row.
func (s *Sweep) Table() *Table {
	t := NewTable("experiment", "seeds", "passes", "pass-rate")
	for i, id := range s.ids {
		p := s.passesFor(i)
		t.AddRow(id, len(s.seeds), p, rate(p, len(s.seeds)))
	}
	t.AddRow("overall", len(s.pass), s.Passes(), rate(s.Passes(), len(s.pass)))
	return t
}

// SeedTable renders the per-seed view: one row per seed with the number of
// experiments that pass under it, closed by a min/max/gap summary row over
// the per-seed pass counts.
func (s *Sweep) SeedTable() *Table {
	t := NewTable("seed", "experiments", "passes", "pass-rate")
	for j, seed := range s.seeds {
		p := s.passesAt(j)
		t.AddRow(seed, len(s.ids), p, rate(p, len(s.ids)))
	}
	sum := Summarize(s.SeedPasses())
	t.AddRow("spread", "", fmt.Sprintf("min=%d max=%d", sum.Min, sum.Max), fmt.Sprintf("gap=%d", sum.Gap()))
	return t
}

// rate formats a pass ratio as a percentage.
func rate(passes, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(passes)/float64(total))
}
