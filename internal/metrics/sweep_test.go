package metrics

import (
	"reflect"
	"strings"
	"testing"
)

func TestSweepPassRates(t *testing.T) {
	sw := NewSweep()
	for seed := uint64(1); seed <= 4; seed++ {
		sw.Record("E-A", seed, true)
		sw.Record("E-B", seed, seed != 3)
	}
	if sw.IDs() != 2 || sw.SeedCount() != 4 {
		t.Fatalf("shape %dx%d, want 2x4", sw.IDs(), sw.SeedCount())
	}
	if sw.Passes() != 7 {
		t.Fatalf("passes = %d, want 7", sw.Passes())
	}
	if got, want := sw.PassRate(), 7.0/8.0; got != want {
		t.Fatalf("pass rate = %v, want %v", got, want)
	}
	if got := sw.SeedPasses(); !reflect.DeepEqual(got, []int{2, 2, 1, 2}) {
		t.Fatalf("seed passes = %v", got)
	}
}

func TestSweepRecordOverwrites(t *testing.T) {
	sw := NewSweep()
	sw.Record("E-A", 1, false)
	sw.Record("E-A", 1, true)
	if sw.Passes() != 1 || sw.IDs() != 1 || sw.SeedCount() != 1 {
		t.Fatalf("re-record must keep the last verdict in a 1x1 matrix; passes=%d", sw.Passes())
	}
}

func TestSweepTables(t *testing.T) {
	sw := NewSweep()
	sw.Record("E-A", 1, true)
	sw.Record("E-A", 2, false)
	sw.Record("E-B", 1, true)
	sw.Record("E-B", 2, true)

	agg := sw.Table().String()
	for _, want := range []string{"E-A", "50.0%", "E-B", "100.0%", "overall", "75.0%"} {
		if !strings.Contains(agg, want) {
			t.Errorf("aggregate table missing %q:\n%s", want, agg)
		}
	}
	seedTab := sw.SeedTable().String()
	for _, want := range []string{"spread", "min=1 max=2", "gap=1"} {
		if !strings.Contains(seedTab, want) {
			t.Errorf("seed table missing %q:\n%s", want, seedTab)
		}
	}
}

func TestSweepDeterministicRendering(t *testing.T) {
	build := func() string {
		sw := NewSweep()
		for _, id := range []string{"E-C", "E-A", "E-B"} {
			for seed := uint64(3); seed >= 1; seed-- {
				sw.Record(id, seed, (seed+uint64(len(id)))%2 == 0)
			}
		}
		return sw.Table().String() + sw.SeedTable().String()
	}
	if build() != build() {
		t.Fatal("sweep rendering is not deterministic")
	}
	// First-recorded order is preserved on both axes.
	out := build()
	if strings.Index(out, "E-C") > strings.Index(out, "E-A") {
		t.Fatal("ID axis not in first-recorded order")
	}
}

func TestSummaryGap(t *testing.T) {
	if got := Summarize([]int{4, 9, 6}).Gap(); got != 5 {
		t.Fatalf("gap = %d, want 5", got)
	}
	if got := (Summary{}).Gap(); got != 0 {
		t.Fatalf("zero summary gap = %d, want 0", got)
	}
	if got := Summarize(nil).Gap(); got != 0 {
		t.Fatalf("empty series gap = %d, want 0", got)
	}
}

func TestSweepEmpty(t *testing.T) {
	sw := NewSweep()
	if sw.PassRate() != 0 {
		t.Fatal("empty sweep must have pass rate 0")
	}
	if got := sw.Table().String(); !strings.Contains(got, "n/a") {
		t.Fatalf("empty aggregate table should mark rate n/a:\n%s", got)
	}
}

func TestSweepScalars(t *testing.T) {
	sw := NewSweep()
	sw.RecordScalar("E-A", "cover", 10)
	sw.RecordScalar("E-A", "cover", 20)
	sw.RecordScalar("E-A", "maxGap", 7)
	sw.RecordScalar("E-B", "cover", 30)
	if got := sw.ScalarCount(); got != 3 {
		t.Fatalf("ScalarCount = %d, want 3", got)
	}
	if got := sw.ScalarSeries("E-A", "cover"); !reflect.DeepEqual(got, []int{10, 20}) {
		t.Fatalf("ScalarSeries(E-A, cover) = %v", got)
	}
	if got := sw.ScalarSeries("E-A", "missing"); got != nil {
		t.Fatalf("unknown series = %v, want nil", got)
	}
	rows := sw.ScalarRows()
	want := []ScalarRow{
		{ID: "E-A", Metric: "cover", Count: 2, Min: 10, Mean: 15, Median: 15, Max: 20},
		{ID: "E-A", Metric: "maxGap", Count: 1, Min: 7, Mean: 7, Median: 7, Max: 7},
		{ID: "E-B", Metric: "cover", Count: 1, Min: 30, Mean: 30, Median: 30, Max: 30},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("ScalarRows:\ngot  %+v\nwant %+v", rows, want)
	}
	// Rendering keeps first-recorded order and is deterministic.
	out := sw.ScalarTable().String()
	if strings.Index(out, "maxGap") > strings.Index(out, "E-B") {
		t.Fatalf("scalar table lost first-recorded order:\n%s", out)
	}
	if out != sw.ScalarTable().String() {
		t.Fatal("scalar table rendering is not deterministic")
	}
}
