// Package prng provides the deterministic pseudo-randomness used by every
// stochastic dynamics generator in this repository.
//
// Two properties matter for reproducing the paper's experiments:
//
//  1. Reproducibility: the entire experiment suite must be bit-for-bit
//     reproducible from a single seed.
//  2. Random access: evolving-graph generators are queried as pure functions
//     Present(edge, t) in arbitrary order (analysis code jumps around in
//     time), so the generator cannot carry sequential stream state.
//
// Both are satisfied by hashing (seed, stream, t) through SplitMix64, the
// output function of Steele et al.'s splittable PRNG, which passes BigCrush
// and is trivially random-access.
package prng

import (
	"math"
	"math/bits"
)

// mix is the SplitMix64 finalizer: a bijective avalanche permutation of the
// 64-bit input.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash3 hashes a (seed, stream, t) triple to a uniform 64-bit value. Streams
// with distinct identifiers produce statistically independent sequences.
func Hash3(seed, stream, t uint64) uint64 {
	h := mix(seed)
	h = mix(h ^ bits.RotateLeft64(stream, 31))
	h = mix(h ^ bits.RotateLeft64(t, 17))
	return h
}

// Float64At returns a uniform float64 in [0, 1) for the triple.
func Float64At(seed, stream, t uint64) float64 {
	// 53 high bits, the float64 mantissa width.
	return float64(Hash3(seed, stream, t)>>11) / (1 << 53)
}

// Stream3 precomputes the (seed, stream) prefix of Hash3, so call sites
// that query one stream at many instants pay the two prefix mixes once:
// At3(Stream3(seed, stream), t) == Hash3(seed, stream, t) for every t.
func Stream3(seed, stream uint64) uint64 {
	h := mix(seed)
	return mix(h ^ bits.RotateLeft64(stream, 31))
}

// At3 finishes a Stream3 prefix at instant t.
func At3(prefix, t uint64) uint64 {
	return mix(prefix ^ bits.RotateLeft64(t, 17))
}

// Threshold53 converts a probability into the integer acceptance bound of
// BoolAt: for every triple, BoolAt(seed, stream, t, p) is exactly
// Hash3(seed, stream, t)>>11 < Threshold53(p). The equivalence is bitwise:
// Float64At scales a 53-bit integer by the exact power 2^-53, so comparing
// against p is comparing that integer against p*2^53, rounded up to the
// next integer when fractional.
func Threshold53(p float64) uint64 {
	if !(p > 0) { // also rejects NaN
		return 0
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// UintnAt returns a uniform integer in [0, n) for the triple. It panics if
// n <= 0.
func UintnAt(seed, stream, t uint64, n int) int {
	if n <= 0 {
		panic("prng: UintnAt with non-positive n")
	}
	// Multiply-shift bounded reduction (Lemire); bias is negligible for the
	// small n used by the experiments and irrelevant to correctness.
	hi, _ := bits.Mul64(Hash3(seed, stream, t), uint64(n))
	return int(hi)
}

// BoolAt returns true with probability p for the triple.
func BoolAt(seed, stream, t uint64, p float64) bool {
	return Float64At(seed, stream, t) < p
}

// Source is a sequential deterministic generator for call sites that do not
// need random access (initial placements, shuffles). The zero value is a
// valid generator seeded with 0.
type Source struct {
	state uint64
}

// NewSource returns a sequential source with the given seed.
func NewSource(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next value of the SplitMix64 sequence.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new statistically independent source derived from s.
func (s *Source) Split() *Source {
	return &Source{state: mix(s.Uint64())}
}
