package prng

import (
	"testing"
	"testing/quick"
)

func TestHash3Deterministic(t *testing.T) {
	if Hash3(1, 2, 3) != Hash3(1, 2, 3) {
		t.Fatal("Hash3 not deterministic")
	}
	if Hash3(1, 2, 3) == Hash3(1, 2, 4) || Hash3(1, 2, 3) == Hash3(1, 3, 3) || Hash3(1, 2, 3) == Hash3(2, 2, 3) {
		t.Fatal("Hash3 collides on adjacent inputs (suspicious)")
	}
}

func TestFloat64AtRange(t *testing.T) {
	for i := uint64(0); i < 5000; i++ {
		f := Float64At(42, 7, i)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64At out of range: %v", f)
		}
	}
}

func TestFloat64AtMean(t *testing.T) {
	sum := 0.0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		sum += Float64At(1, 1, i)
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestUintnAt(t *testing.T) {
	counts := make([]int, 5)
	for i := uint64(0); i < 5000; i++ {
		v := UintnAt(9, 3, i, 5)
		if v < 0 || v >= 5 {
			t.Fatalf("UintnAt out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("value %d count %d far from uniform", v, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UintnAt(0) accepted")
		}
	}()
	UintnAt(1, 1, 1, 0)
}

func TestBoolAtExtremes(t *testing.T) {
	for i := uint64(0); i < 200; i++ {
		if BoolAt(3, 3, i, 0) {
			t.Fatal("p=0 returned true")
		}
		if !BoolAt(3, 3, i, 1) {
			t.Fatal("p=1 returned false")
		}
	}
}

func TestSourceSequence(t *testing.T) {
	a, b := NewSource(5), NewSource(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSource(6)
	same := true
	a2 := NewSource(5)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestSourceIntnAndFloat(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) accepted")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(3)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	s := NewSource(1)
	child := s.Split()
	// Parent and child should produce different streams.
	same := true
	for i := 0; i < 10; i++ {
		if s.Uint64() != child.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("split stream identical to parent")
	}
}

func TestHash3AvalancheProperty(t *testing.T) {
	// Flipping one input bit should change the output (no fixed points on
	// random probes).
	prop := func(seed, stream, tt uint64, bit uint8) bool {
		h1 := Hash3(seed, stream, tt)
		h2 := Hash3(seed, stream, tt^(1<<(bit%64)))
		return h1 != h2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolAtFrequencyProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		hits := 0
		for i := uint64(0); i < 2000; i++ {
			if BoolAt(seed, 1, i, 0.3) {
				hits++
			}
		}
		return hits > 450 && hits < 750
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStream3At3MatchesHash3 pins the split-hash identity the lane engine's
// materialization fast path rests on: precomputing the (seed, stream)
// prefix and finishing per instant is the same function as Hash3.
func TestStream3At3MatchesHash3(t *testing.T) {
	f := func(seed, stream, at uint64) bool {
		return At3(Stream3(seed, stream), at) == Hash3(seed, stream, at)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestThreshold53MatchesBoolAt pins the integer acceptance bound against
// the float comparison over random triples and probabilities, plus the
// exact boundary cases.
func TestThreshold53MatchesBoolAt(t *testing.T) {
	f := func(seed, stream, at uint64, raw uint16) bool {
		p := float64(raw) / 65535
		thr := Threshold53(p)
		return (Hash3(seed, stream, at)>>11 < thr) == BoolAt(seed, stream, at, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 1e-300, 1.0 / 3, 0.5, 1} {
		thr := Threshold53(p)
		for i := uint64(0); i < 2000; i++ {
			if (Hash3(3, 9, i)>>11 < thr) != BoolAt(3, 9, i, p) {
				t.Fatalf("p=%v t=%d: threshold disagrees with BoolAt", p, i)
			}
		}
	}
}
