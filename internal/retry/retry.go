// Package retry is the shared bounded-exponential-backoff discipline:
// the retry loop the lease worker client and the pefserve example client
// both run their HTTP requests through. Jitter is deterministic — drawn
// from the pure counter-mode prng at (Seed, stream, attempt) — so a
// retry schedule replays bit for bit under a fixed seed (the chaos tests
// depend on this), while differently-seeded clients retrying against the
// same server stay decorrelated instead of thundering in lockstep.
package retry

import (
	"context"
	"fmt"
	"time"

	"pef/internal/prng"
)

// Policy parameterizes a bounded retry loop. The zero value is usable:
// every field has a served default.
type Policy struct {
	// MaxRetries bounds retries per request (values < 1 mean 8); the
	// first attempt is free, so an operation runs at most 1+MaxRetries
	// times.
	MaxRetries int
	// Base is the first backoff delay (values <= 0 mean 100ms); retry k
	// waits Base<<(k-1) scaled by the jitter factor.
	Base time.Duration
	// Seed seeds the deterministic jitter stream (0 means 1). Derive one
	// from a client identity with SeedString.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.MaxRetries < 1 {
		p.MaxRetries = 8
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Delay returns the pause before retry attempt (1-based) of request
// stream: exponential backoff with ±50% deterministic jitter. The factor
// comes from the seeded stream, so schedules are reproducible per
// (Seed, stream, attempt).
func (p Policy) Delay(stream, attempt uint64) time.Duration {
	p = p.withDefaults()
	d := p.Base << (attempt - 1)
	f := 0.5 + prng.Float64At(p.Seed, stream, attempt)
	return time.Duration(float64(d) * f)
}

// Do runs op up to 1+MaxRetries times, sleeping the jittered backoff of
// request stream between attempts. op reports (retryable, err): a nil
// err stops with success, a non-retryable err is returned immediately
// (retrying a protocol rejection cannot un-reject it), and a retryable
// err is remembered for the exhaustion report. A context cancellation
// during a backoff sleep returns ctx.Err().
func Do(ctx context.Context, p Policy, stream uint64, op func(attempt int) (retryable bool, err error)) error {
	p = p.withDefaults()
	var last error
	for attempt := 0; attempt <= p.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := Sleep(ctx, p.Delay(stream, uint64(attempt))); err != nil {
				return err
			}
		}
		retryable, err := op(attempt)
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		last = err
	}
	return fmt.Errorf("retry: %d retries exhausted: %w", p.MaxRetries, last)
}

// Sleep pauses for d, returning ctx.Err() early if the context is
// cancelled first.
func Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SeedString derives a stable non-zero jitter seed from an identifier
// (FNV-1a), so named clients get reproducible-but-decorrelated schedules
// without explicit seeding.
func SeedString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
