package retry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDelayDeterministicAndBounded pins the jitter contract: the same
// (policy, stream, attempt) always yields the same delay, the delay sits
// inside [0.5, 1.5)×Base<<(attempt-1), and distinct streams or seeds
// decorrelate.
func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Seed: 7}
	for attempt := uint64(1); attempt <= 4; attempt++ {
		d1 := p.Delay(3, attempt)
		d2 := p.Delay(3, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		base := p.Base << (attempt - 1)
		lo, hi := base/2, base+base/2
		if d1 < lo || d1 >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, lo, hi)
		}
	}
	if p.Delay(3, 1) == p.Delay(4, 1) {
		t.Fatal("distinct streams produced identical jitter")
	}
	q := Policy{Base: 100 * time.Millisecond, Seed: 8}
	if p.Delay(3, 1) == q.Delay(3, 1) {
		t.Fatal("distinct seeds produced identical jitter")
	}
}

func TestDoRetriesTransientFailures(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Nanosecond, Seed: 1}
	attempts := 0
	err := Do(context.Background(), p, 1, func(int) (bool, error) {
		attempts++
		if attempts < 3 {
			return true, errors.New("transient")
		}
		return false, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestDoPermanentErrorReturnsImmediately(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Nanosecond}
	perm := errors.New("permanent")
	attempts := 0
	err := Do(context.Background(), p, 1, func(int) (bool, error) {
		attempts++
		return false, perm
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want %v", err, perm)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries on permanent errors)", attempts)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	p := Policy{MaxRetries: 2, Base: time.Nanosecond}
	inner := errors.New("down")
	attempts := 0
	err := Do(context.Background(), p, 1, func(int) (bool, error) {
		attempts++
		return true, inner
	})
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("exhaustion error does not wrap the last failure: %v", err)
	}
	if !strings.Contains(err.Error(), "2 retries exhausted") {
		t.Fatalf("exhaustion error = %q", err)
	}
}

func TestDoContextCancelledDuringBackoff(t *testing.T) {
	p := Policy{MaxRetries: 3, Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, p, 1, func(int) (bool, error) {
		return true, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancelled context: %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0): %v", err)
	}
}

func TestSeedStringStableAndNonZero(t *testing.T) {
	if SeedString("w1") != SeedString("w1") {
		t.Fatal("SeedString not stable")
	}
	if SeedString("w1") == SeedString("w2") {
		t.Fatal("distinct IDs collided")
	}
	if SeedString("") == 0 {
		t.Fatal("SeedString must never return 0 (a zero seed would alias the default)")
	}
}
