package ring

import (
	"fmt"
	"math/bits"
	"strings"
)

// EdgeSet is a fixed-capacity bitset over the edge indices of a ring. It is
// the presence set E_t of an evolving graph at one instant: bit e is set iff
// edge e is present. EdgeSet values are small and copied freely; all methods
// with a pointer receiver mutate in place, all methods with a value receiver
// are pure.
type EdgeSet struct {
	n     int
	words []uint64
}

const wordBits = 64

// NewEdgeSet returns an empty edge set over n edges.
func NewEdgeSet(n int) EdgeSet {
	if n < 0 {
		panic("ring: negative EdgeSet size")
	}
	return EdgeSet{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FullEdgeSet returns the set containing every edge index in [0, n).
func FullEdgeSet(n int) EdgeSet {
	s := NewEdgeSet(n)
	for e := 0; e < n; e++ {
		s.Add(e)
	}
	return s
}

// EdgeSetOf returns the set over n edges containing exactly the listed edges.
func EdgeSetOf(n int, edges ...int) EdgeSet {
	s := NewEdgeSet(n)
	for _, e := range edges {
		s.Add(e)
	}
	return s
}

// Size returns the capacity n of the set (number of edge indices).
func (s EdgeSet) Size() int { return s.n }

// Contains reports whether edge e is in the set. Out-of-range indices are
// never contained.
func (s EdgeSet) Contains(e int) bool {
	if e < 0 || e >= s.n {
		return false
	}
	return s.words[e/wordBits]&(1<<(uint(e)%wordBits)) != 0
}

// Add inserts edge e. It panics on out-of-range indices: silently dropping
// an edge would corrupt an adversary schedule.
func (s *EdgeSet) Add(e int) {
	s.check(e)
	s.words[e/wordBits] |= 1 << (uint(e) % wordBits)
}

// Remove deletes edge e from the set.
func (s *EdgeSet) Remove(e int) {
	s.check(e)
	s.words[e/wordBits] &^= 1 << (uint(e) % wordBits)
}

func (s *EdgeSet) check(e int) {
	if e < 0 || e >= s.n {
		panic(fmt.Sprintf("ring: edge %d out of range [0,%d)", e, s.n))
	}
}

// Count returns the number of edges in the set.
func (s EdgeSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsFull reports whether every edge index in [0, n) is present.
func (s EdgeSet) IsFull() bool { return s.Count() == s.n }

// IsEmpty reports whether no edge is present.
func (s EdgeSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s EdgeSet) Clone() EdgeSet {
	c := EdgeSet{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes every edge from the set in place.
func (s *EdgeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom overwrites the set with the contents of o, reusing the backing
// words when the capacities match and reallocating otherwise. It is the
// in-place counterpart of Clone for pooled presence sets.
func (s *EdgeSet) CopyFrom(o EdgeSet) {
	if len(s.words) != len(o.words) {
		s.words = make([]uint64, len(o.words))
	}
	s.n = o.n
	copy(s.words, o.words)
}

// Without returns a copy of the set with the listed edges removed.
func (s EdgeSet) Without(edges ...int) EdgeSet {
	c := s.Clone()
	for _, e := range edges {
		c.Remove(e)
	}
	return c
}

// With returns a copy of the set with the listed edges added.
func (s EdgeSet) With(edges ...int) EdgeSet {
	c := s.Clone()
	for _, e := range edges {
		c.Add(e)
	}
	return c
}

// Union returns the elementwise union of s and o. Both sets must have the
// same capacity.
func (s EdgeSet) Union(o EdgeSet) EdgeSet {
	s.checkSame(o)
	c := s.Clone()
	for i, w := range o.words {
		c.words[i] |= w
	}
	return c
}

// Intersect returns the elementwise intersection of s and o.
func (s EdgeSet) Intersect(o EdgeSet) EdgeSet {
	s.checkSame(o)
	c := s.Clone()
	for i, w := range o.words {
		c.words[i] &= w
	}
	return c
}

// Equal reports whether the two sets have the same capacity and elements.
func (s EdgeSet) Equal(o EdgeSet) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

func (s EdgeSet) checkSame(o EdgeSet) {
	if s.n != o.n {
		panic(fmt.Sprintf("ring: EdgeSet size mismatch %d vs %d", s.n, o.n))
	}
}

// Edges returns the contained edge indices in increasing order.
func (s EdgeSet) Edges() []int {
	out := make([]int, 0, s.Count())
	for e := 0; e < s.n; e++ {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	return out
}

// Missing returns the absent edge indices in increasing order.
func (s EdgeSet) Missing() []int {
	out := make([]int, 0, s.n-s.Count())
	for e := 0; e < s.n; e++ {
		if !s.Contains(e) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the set as e.g. "{0,2,5}/8".
func (s EdgeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, e := range s.Edges() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	}
	fmt.Fprintf(&b, "}/%d", s.n)
	return b.String()
}

// ConnectedAsRing reports whether the subgraph of the n-node ring retaining
// exactly the edges of s is connected. A ring snapshot is connected iff at
// most one edge is missing.
func (s EdgeSet) ConnectedAsRing() bool {
	return s.n-s.Count() <= 1
}
