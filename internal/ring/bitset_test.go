package ring

import (
	"testing"
	"testing/quick"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(10)
	if !s.IsEmpty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(9)
	if !s.Contains(3) || !s.Contains(9) || s.Contains(4) {
		t.Fatal("membership wrong after Add")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	s.Remove(3)
	if s.Contains(3) || s.Count() != 1 {
		t.Fatal("Remove failed")
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Fatal("out-of-range Contains must be false")
	}
}

func TestEdgeSetAddPanicsOutOfRange(t *testing.T) {
	s := NewEdgeSet(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(4) did not panic")
		}
	}()
	s.Add(4)
}

func TestFullEdgeSet(t *testing.T) {
	s := FullEdgeSet(70) // crosses a word boundary
	if !s.IsFull() || s.Count() != 70 {
		t.Fatalf("FullEdgeSet(70): count=%d full=%v", s.Count(), s.IsFull())
	}
	if len(s.Missing()) != 0 {
		t.Fatal("full set reports missing edges")
	}
}

func TestEdgeSetOfAndString(t *testing.T) {
	s := EdgeSetOf(8, 1, 5, 5)
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if got := s.String(); got != "{1,5}/8" {
		t.Fatalf("String = %q", got)
	}
}

func TestWithWithout(t *testing.T) {
	s := FullEdgeSet(6)
	w := s.Without(2, 4)
	if w.Contains(2) || w.Contains(4) || !s.Contains(2) {
		t.Fatal("Without mutated receiver or failed")
	}
	back := w.With(2, 4)
	if !back.Equal(s) {
		t.Fatal("With did not restore the set")
	}
	missing := w.Missing()
	if len(missing) != 2 || missing[0] != 2 || missing[1] != 4 {
		t.Fatalf("Missing = %v", missing)
	}
}

func TestUnionIntersect(t *testing.T) {
	a := EdgeSetOf(8, 0, 1, 2)
	b := EdgeSetOf(8, 2, 3)
	if got := a.Union(b).Edges(); len(got) != 4 {
		t.Fatalf("Union edges = %v", got)
	}
	inter := a.Intersect(b)
	if inter.Count() != 1 || !inter.Contains(2) {
		t.Fatalf("Intersect = %v", inter)
	}
}

func TestEdgeSetSizeMismatchPanics(t *testing.T) {
	a, b := NewEdgeSet(4), NewEdgeSet(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Union across sizes did not panic")
		}
	}()
	a.Union(b)
}

func TestConnectedAsRing(t *testing.T) {
	if !FullEdgeSet(5).ConnectedAsRing() {
		t.Fatal("full ring must be connected")
	}
	if !FullEdgeSet(5).Without(2).ConnectedAsRing() {
		t.Fatal("ring minus one edge must be connected")
	}
	if FullEdgeSet(5).Without(1, 3).ConnectedAsRing() {
		t.Fatal("ring minus two edges must be disconnected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := EdgeSetOf(6, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEdgeSetRoundTripProperty(t *testing.T) {
	// Adding then removing an element restores the original set.
	prop := func(n uint8, e int, seed uint64) bool {
		size := int(n%100) + 1
		s := NewEdgeSet(size)
		for i := 0; i < size; i++ {
			if seed>>(uint(i)%64)&1 == 1 {
				s.Add(i)
			}
		}
		x := ((e % size) + size) % size
		before := s.Contains(x)
		c := s.Clone()
		c.Add(x)
		if !c.Contains(x) {
			return false
		}
		c.Remove(x)
		if c.Contains(x) {
			return false
		}
		if before {
			c.Add(x)
		}
		return c.Equal(s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesMissingPartitionProperty(t *testing.T) {
	prop := func(n uint8, seed uint64) bool {
		size := int(n%80) + 1
		s := NewEdgeSet(size)
		for i := 0; i < size; i++ {
			if seed>>(uint(i)%64)&1 == 1 {
				s.Add(i)
			}
		}
		return len(s.Edges())+len(s.Missing()) == size
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSetClearAndCopyFrom(t *testing.T) {
	s := EdgeSetOf(70, 0, 5, 64, 69)
	s.Clear()
	if !s.IsEmpty() || s.Size() != 70 {
		t.Fatalf("Clear left %v", s)
	}
	src := EdgeSetOf(70, 1, 63, 68)
	s.CopyFrom(src)
	if !s.Equal(src) {
		t.Fatalf("CopyFrom = %v, want %v", s, src)
	}
	// CopyFrom must be a deep copy: mutating the source afterwards may not
	// leak through.
	src.Add(2)
	if s.Contains(2) {
		t.Fatal("CopyFrom shares storage with its source")
	}
	// Capacity changes reallocate.
	var small EdgeSet
	small.CopyFrom(EdgeSetOf(3, 1))
	if small.Size() != 3 || !small.Contains(1) || small.Contains(0) {
		t.Fatalf("CopyFrom into zero set = %v", small)
	}
}
