package ring

import "fmt"

// This file holds the word-level primitives of the lockstep engine: direct
// access to an EdgeSet's backing words and the 64×64 bit transpose that
// turns per-lane presence rows (one word per seed lane, bit e = edge e)
// into per-edge lane columns (one word per edge, bit l = lane l). All lane
// code indexes bits LSB-first, matching EdgeSet's own layout.

// Word returns the i-th 64-bit word of the set's backing storage: bit b of
// word i is set iff edge i*64+b is in the set.
func (s EdgeSet) Word(i int) uint64 { return s.words[i] }

// Words returns the number of backing words.
func (s EdgeSet) Words() int { return len(s.words) }

// SetWord overwrites the i-th backing word. Bits beyond the set's capacity
// are cleared, so the EdgeSet invariants (no phantom edges) hold for any
// input word.
func (s *EdgeSet) SetWord(i int, w uint64) {
	if i == len(s.words)-1 {
		if tail := uint(s.n % wordBits); tail != 0 {
			w &= (1 << tail) - 1
		}
	} else if i < 0 || i >= len(s.words) {
		panic(fmt.Sprintf("ring: word %d out of range [0,%d)", i, len(s.words)))
	}
	s.words[i] = w
}

// Transpose64 transposes the 64×64 bit matrix held in m in place, with
// LSB-first bit indexing: afterwards bit r of m[c] equals what bit c of
// m[r] was before. The lockstep engine uses it to convert 64 lane rows of
// edge-presence bits into 64 edge columns of lane bits (and the same word
// matrix shape works for any n ≤ 64 — unused rows and bits are just zero).
func Transpose64(m *[64]uint64) {
	// Recursive block swap (Hacker's Delight transpose32, widened to 64
	// and mirrored for LSB-first indexing): at each step, swap the
	// upper-right and lower-left j×j sub-blocks of every 2j×2j block.
	j := uint(32)
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := ((m[k] >> j) ^ m[k+j]) & mask
			m[k+j] ^= t
			m[k] ^= t << j
		}
		j >>= 1
		mask ^= mask << j
	}
}
