package ring

import (
	"testing"

	"pef/internal/prng"
)

// naiveTranspose64 is the obvious reference: bit r of out[c] = bit c of
// in[r].
func naiveTranspose64(in [64]uint64) [64]uint64 {
	var out [64]uint64
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			if in[r]&(1<<uint(c)) != 0 {
				out[c] |= 1 << uint(r)
			}
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	src := prng.NewSource(0x7A13)
	for trial := 0; trial < 200; trial++ {
		var m [64]uint64
		for i := range m {
			m[i] = src.Uint64()
		}
		want := naiveTranspose64(m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
		// An involution: transposing twice restores the input.
		Transpose64(&got)
		if got != m {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

func TestTranspose64SingleBit(t *testing.T) {
	for r := 0; r < 64; r += 7 {
		for c := 0; c < 64; c += 5 {
			var m [64]uint64
			m[r] = 1 << uint(c)
			Transpose64(&m)
			for i := range m {
				want := uint64(0)
				if i == c {
					want = 1 << uint(r)
				}
				if m[i] != want {
					t.Fatalf("bit (%d,%d): word %d = %#x, want %#x", r, c, i, m[i], want)
				}
			}
		}
	}
}

func TestEdgeSetWordAccess(t *testing.T) {
	s := NewEdgeSet(10)
	s.Add(0)
	s.Add(9)
	if got := s.Word(0); got != 1|1<<9 {
		t.Fatalf("Word(0) = %#x, want %#x", got, uint64(1|1<<9))
	}
	if s.Words() != 1 {
		t.Fatalf("Words() = %d, want 1", s.Words())
	}
	// SetWord masks bits past the capacity so invariants hold.
	s.SetWord(0, ^uint64(0))
	if got := s.Count(); got != 10 {
		t.Fatalf("Count after SetWord = %d, want 10", got)
	}
	for e := 0; e < 10; e++ {
		if !s.Contains(e) {
			t.Fatalf("edge %d missing after SetWord", e)
		}
	}

	big := NewEdgeSet(64)
	big.SetWord(0, ^uint64(0))
	if big.Count() != 64 {
		t.Fatalf("64-edge Count = %d, want 64", big.Count())
	}
}
