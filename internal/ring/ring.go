// Package ring models the static ring topology underlying every
// connected-over-time graph considered in the paper (Bournat, Dubois, Petit,
// ICDCS 2017): an anonymous, unoriented ring of n nodes.
//
// Conventions (fixed once for the whole repository):
//
//   - Nodes are indexed 0..n-1.
//   - Edge i joins node i and node (i+1) mod n.
//   - The global clockwise direction from node v crosses edge v and arrives
//     at node (v+1) mod n; counter-clockwise crosses edge (v-1+n) mod n.
//
// "Clockwise" is the label used by the external observer of Section 2.1 of
// the paper; robots themselves never see it (they only have chirality, see
// package robot).
package ring

import (
	"fmt"
)

// Direction is a global direction on the ring, visible only to the external
// observer (the simulator and the checkers), never to robots.
type Direction int8

const (
	// CW is the global clockwise direction (increasing node index).
	CW Direction = 1
	// CCW is the global counter-clockwise direction (decreasing node index).
	CCW Direction = -1
)

// Opposite returns the reverse global direction.
func (d Direction) Opposite() Direction { return -d }

// String returns "CW" or "CCW".
func (d Direction) String() string {
	switch d {
	case CW:
		return "CW"
	case CCW:
		return "CCW"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Valid reports whether d is one of CW, CCW.
func (d Direction) Valid() bool { return d == CW || d == CCW }

// MinSize is the smallest ring the model admits. A 2-node ring is the
// degenerate case discussed in Section 5.2 of the paper (either a simple
// 2-node chain or a 2-node multigraph with two parallel edges; see Multi2).
const MinSize = 2

// Ring is a static ring of N nodes. The zero value is not valid; use New.
type Ring struct {
	n int
}

// New returns a ring with n nodes. It panics if n < MinSize, since no object
// of the paper's model exists below that size.
func New(n int) Ring {
	if n < MinSize {
		panic(fmt.Sprintf("ring: size %d below minimum %d", n, MinSize))
	}
	return Ring{n: n}
}

// Size returns the number of nodes (which equals the number of edges).
func (r Ring) Size() int { return r.n }

// Edges returns the number of edges of the underlying ring. For a ring this
// equals the number of nodes; it is provided for readability at call sites.
func (r Ring) Edges() int { return r.n }

// Node normalizes an arbitrary integer to a node index in [0, n).
func (r Ring) Node(v int) int {
	v %= r.n
	if v < 0 {
		v += r.n
	}
	return v
}

// ValidNode reports whether v is a node index of the ring.
func (r Ring) ValidNode(v int) bool { return v >= 0 && v < r.n }

// ValidEdge reports whether e is an edge index of the ring.
func (r Ring) ValidEdge(e int) bool { return e >= 0 && e < r.n }

// Next returns the node adjacent to v in global direction d.
func (r Ring) Next(v int, d Direction) int {
	return r.Node(v + int(d))
}

// EdgeTowards returns the edge index crossed when leaving node v in global
// direction d.
func (r Ring) EdgeTowards(v int, d Direction) int {
	if d == CW {
		return v
	}
	return r.Node(v - 1)
}

// EdgeEndpoints returns the two endpoints of edge e, in (low, high mod n)
// order: edge e joins e and (e+1) mod n.
func (r Ring) EdgeEndpoints(e int) (int, int) {
	return e, r.Node(e + 1)
}

// EdgeBetween returns the edge joining adjacent nodes u and v and true, or
// (0, false) if u and v are not adjacent (or equal).
func (r Ring) EdgeBetween(u, v int) (int, bool) {
	switch {
	case r.Node(u+1) == v:
		return u, true
	case r.Node(v+1) == u:
		return v, true
	default:
		return 0, false
	}
}

// CWDist returns the number of clockwise hops from u to v (in [0, n)).
func (r Ring) CWDist(u, v int) int {
	return r.Node(v - u)
}

// Dist returns the ring distance between nodes u and v, i.e. the length of a
// shortest path in the underlying graph (Section 2.1 of the paper).
func (r Ring) Dist(u, v int) int {
	cw := r.CWDist(u, v)
	if ccw := r.n - cw; ccw < cw {
		return ccw
	}
	return cw
}

// TowardsOf returns the global direction of a shortest route from u to v,
// preferring CW on ties. It panics if u == v, where no direction is defined.
func (r Ring) TowardsOf(u, v int) Direction {
	if u == v {
		panic("ring: TowardsOf called with identical nodes")
	}
	cw := r.CWDist(u, v)
	if cw <= r.n-cw {
		return CW
	}
	return CCW
}

// Walk returns the node reached from v after crossing steps edges in global
// direction d. Negative steps walk the opposite way.
func (r Ring) Walk(v, steps int, d Direction) int {
	return r.Node(v + steps*int(d))
}

// PathNodes returns the nodes traversed (inclusive of both ends) when
// walking from u to v in global direction d. The result has CWDist or
// n-CWDist+... length depending on the direction; it always terminates
// because the ring is finite.
func (r Ring) PathNodes(u, v int, d Direction) []int {
	nodes := make([]int, 0, r.n+1)
	cur := u
	nodes = append(nodes, cur)
	for cur != v {
		cur = r.Next(cur, d)
		nodes = append(nodes, cur)
	}
	return nodes
}

// String implements fmt.Stringer.
func (r Ring) String() string { return fmt.Sprintf("Ring(n=%d)", r.n) }
