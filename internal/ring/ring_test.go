package ring

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsBelowMinSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

func TestDirectionOpposite(t *testing.T) {
	if CW.Opposite() != CCW || CCW.Opposite() != CW {
		t.Fatal("Opposite is not an involution on directions")
	}
	if !CW.Valid() || !CCW.Valid() || Direction(0).Valid() {
		t.Fatal("Valid misclassifies directions")
	}
}

func TestDirectionString(t *testing.T) {
	if CW.String() != "CW" || CCW.String() != "CCW" {
		t.Fatalf("unexpected direction strings %q %q", CW, CCW)
	}
	if Direction(5).String() == "" {
		t.Fatal("invalid direction should still render")
	}
}

func TestNodeNormalization(t *testing.T) {
	r := New(5)
	cases := []struct{ in, want int }{
		{0, 0}, {4, 4}, {5, 0}, {7, 2}, {-1, 4}, {-6, 4}, {10, 0},
	}
	for _, c := range cases {
		if got := r.Node(c.in); got != c.want {
			t.Errorf("Node(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextAndEdgeTowards(t *testing.T) {
	r := New(6)
	if r.Next(0, CW) != 1 || r.Next(0, CCW) != 5 {
		t.Fatal("Next broken at node 0")
	}
	if r.Next(5, CW) != 0 {
		t.Fatal("Next does not wrap clockwise")
	}
	if r.EdgeTowards(0, CW) != 0 || r.EdgeTowards(0, CCW) != 5 {
		t.Fatal("EdgeTowards broken at node 0")
	}
	if r.EdgeTowards(3, CW) != 3 || r.EdgeTowards(3, CCW) != 2 {
		t.Fatal("EdgeTowards broken at node 3")
	}
}

func TestEdgeEndpointsAndBetween(t *testing.T) {
	r := New(4)
	a, b := r.EdgeEndpoints(3)
	if a != 3 || b != 0 {
		t.Fatalf("EdgeEndpoints(3) = (%d,%d), want (3,0)", a, b)
	}
	e, ok := r.EdgeBetween(2, 3)
	if !ok || e != 2 {
		t.Fatalf("EdgeBetween(2,3) = (%d,%v), want (2,true)", e, ok)
	}
	e, ok = r.EdgeBetween(3, 2)
	if !ok || e != 2 {
		t.Fatalf("EdgeBetween(3,2) = (%d,%v), want (2,true)", e, ok)
	}
	if _, ok := r.EdgeBetween(0, 2); ok {
		t.Fatal("EdgeBetween accepted non-adjacent nodes")
	}
	if _, ok := r.EdgeBetween(1, 1); ok {
		t.Fatal("EdgeBetween accepted identical nodes")
	}
}

func TestDistances(t *testing.T) {
	r := New(7)
	if d := r.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) = %d, want 3", d)
	}
	if d := r.Dist(0, 5); d != 2 {
		t.Fatalf("Dist(0,5) = %d, want 2", d)
	}
	if d := r.Dist(4, 4); d != 0 {
		t.Fatalf("Dist(4,4) = %d, want 0", d)
	}
}

func TestTowardsOf(t *testing.T) {
	r := New(6)
	if r.TowardsOf(0, 2) != CW {
		t.Fatal("TowardsOf(0,2) should be CW")
	}
	if r.TowardsOf(0, 5) != CCW {
		t.Fatal("TowardsOf(0,5) should be CCW")
	}
	if r.TowardsOf(0, 3) != CW {
		t.Fatal("TowardsOf tie should prefer CW")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TowardsOf(1,1) did not panic")
		}
	}()
	r.TowardsOf(1, 1)
}

func TestWalkAndPathNodes(t *testing.T) {
	r := New(5)
	if r.Walk(0, 7, CW) != 2 {
		t.Fatal("Walk CW wrap broken")
	}
	if r.Walk(0, 2, CCW) != 3 {
		t.Fatal("Walk CCW broken")
	}
	path := r.PathNodes(3, 1, CW)
	want := []int{3, 4, 0, 1}
	if len(path) != len(want) {
		t.Fatalf("PathNodes length %d, want %d", len(path), len(want))
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathNodes = %v, want %v", path, want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	prop := func(n uint8, a, b int) bool {
		size := int(n%62) + 2
		r := New(size)
		u, v := r.Node(a), r.Node(b)
		return r.Dist(u, v) == r.Dist(v, u) && r.Dist(u, v) <= size/2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextEdgeConsistencyProperty(t *testing.T) {
	// Crossing the edge EdgeTowards(v, d) from v must land on Next(v, d),
	// and the edge must be adjacent to both.
	prop := func(n uint8, a int, cw bool) bool {
		size := int(n%62) + 2
		r := New(size)
		v := r.Node(a)
		d := CW
		if !cw {
			d = CCW
		}
		e := r.EdgeTowards(v, d)
		x, y := r.EdgeEndpoints(e)
		next := r.Next(v, d)
		return (x == v && y == next) || (x == next && y == v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCWDistInverseProperty(t *testing.T) {
	prop := func(n uint8, a, b int) bool {
		size := int(n%62) + 2
		r := New(size)
		u, v := r.Node(a), r.Node(b)
		cw := r.CWDist(u, v)
		return r.Walk(u, cw, CW) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
