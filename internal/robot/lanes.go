package robot

// This file defines the seed-lane dimension of the lockstep engine: a
// LaneCore is one robot's state machine replicated across up to 64
// independent seed lanes, one bit per lane per variable, advanced with
// word-wide boolean transitions. Lane l of every word corresponds to seed
// lane l; bits of retired lanes are garbage the caller masks out.

// LaneView is the Look-phase view of one robot across all lanes: each
// field is the per-lane value of the corresponding View predicate, bit l
// holding lane l's bit.
type LaneView struct {
	// EdgeDir is ExistsEdge(dir) per lane (dir as of the Look phase).
	EdgeDir uint64
	// EdgeOpp is ExistsEdge(opposite dir) per lane.
	EdgeOpp uint64
	// OtherRobots is ExistsOtherRobotsOnCurrentNode() per lane.
	OtherRobots uint64
}

// LaneCore is the bit-parallel form of Core: the same deterministic
// Compute rule applied to 64 lanes at once. Lane l of a LaneCore must
// evolve exactly as a scalar Core fed lane l's views — the lockstep
// engine's byte-identity guarantee rests on that equivalence, which the
// core package's differential tests pin down.
type LaneCore interface {
	// DirRight returns the dir variable per lane: bit l set iff lane l's
	// dir is Right. The initial value is 0 (every lane starts at Left,
	// matching Core).
	DirRight() uint64
	// Compute executes the Compute phase on all lanes at once.
	Compute(view LaneView)
}

// LaneAlgorithm is implemented by algorithms that provide a bit-parallel
// core alongside the scalar one. The lockstep engine only accepts
// algorithms implementing it; everything else runs on the scalar path.
type LaneAlgorithm interface {
	Algorithm
	// NewLaneCore returns a lane core with every lane in the algorithm's
	// initial state.
	NewLaneCore() LaneCore
}
