package robot

import (
	"fmt"
	"sort"
	"sync"
)

// registry maps algorithm names to constructors so the command-line tools
// can instantiate algorithms by flag value. Packages register themselves in
// well-named Register calls from their init-free setup functions invoked by
// the harness (we avoid init() per the style guide; see RegisterBuiltins in
// package core and baseline).
type registry struct {
	mu   sync.RWMutex
	algs map[string]func() Algorithm
}

var global = &registry{algs: make(map[string]func() Algorithm)}

// Register installs a constructor under the algorithm's name. Registering
// the same name twice is an error at the call site and panics: silently
// replacing an algorithm would corrupt experiment provenance.
func Register(name string, ctor func() Algorithm) {
	global.mu.Lock()
	defer global.mu.Unlock()
	if _, dup := global.algs[name]; dup {
		panic(fmt.Sprintf("robot: duplicate algorithm registration %q", name))
	}
	global.algs[name] = ctor
}

// Registered reports whether name is present in the registry.
func Registered(name string) bool {
	global.mu.RLock()
	defer global.mu.RUnlock()
	_, ok := global.algs[name]
	return ok
}

// New instantiates the named algorithm, or returns an error listing the
// available names.
func New(name string) (Algorithm, error) {
	global.mu.RLock()
	ctor, ok := global.algs[name]
	global.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("robot: unknown algorithm %q (known: %v)", name, Names())
	}
	return ctor(), nil
}

// Names returns the registered algorithm names in sorted order.
func Names() []string {
	global.mu.RLock()
	defer global.mu.RUnlock()
	names := make([]string, 0, len(global.algs))
	for n := range global.algs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
