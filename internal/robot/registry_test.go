package robot

import (
	"strings"
	"testing"
)

func testAlg(name string) func() Algorithm {
	return func() Algorithm {
		return Func{AlgName: name, Rule: func(d LocalDir, _ View) LocalDir { return d }}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	const name = "registry-test-alg"
	if Registered(name) {
		t.Fatal("phantom registration")
	}
	Register(name, testAlg(name))
	if !Registered(name) {
		t.Fatal("registration not visible")
	}
	alg, err := New(name)
	if err != nil || alg.Name() != name {
		t.Fatalf("New: %v", err)
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("Names does not list registration")
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("definitely-not-registered")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	const name = "registry-dup-alg"
	Register(name, testAlg(name))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	Register(name, testAlg(name))
}

func TestNamesSorted(t *testing.T) {
	Register("zzz-test", testAlg("zzz-test"))
	Register("aaa-test", testAlg("aaa-test"))
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}
