// Package robot models the autonomous mobile robots of Section 2.2 of the
// paper: uniform, anonymous, silent, endowed with persistent memory, local
// weak multiplicity detection, and an individual stable chirality. Robots
// operate in fully synchronous Look–Compute–Move cycles (package fsync runs
// the cycles; this package defines what a robot is).
package robot

import "fmt"

// LocalDir is the value of a robot's dir variable: one of the two port
// labels (left, right) the robot assigns to its current node. The labels
// are private to the robot; two robots need not agree (no common sense of
// direction). Signed values make Opposite a negation, which keeps the
// chirality composition below branch-free.
type LocalDir int8

const (
	// Left is the initial value of every robot's dir variable (Section 2.2).
	Left LocalDir = -1
	// Right is the other port label.
	Right LocalDir = 1
)

// Opposite returns the other local direction (the paper's overline-dir).
func (d LocalDir) Opposite() LocalDir { return -d }

// Valid reports whether d is Left or Right.
func (d LocalDir) Valid() bool { return d == Left || d == Right }

// String implements fmt.Stringer.
func (d LocalDir) String() string {
	switch d {
	case Left:
		return "left"
	case Right:
		return "right"
	default:
		return fmt.Sprintf("LocalDir(%d)", int8(d))
	}
}

// Chirality fixes how a robot's local labels map onto the external
// observer's global directions. It is stable over the ring and over time,
// but two robots may have opposite chirality (Section 2.2).
type Chirality int8

const (
	// RightIsCW maps local right to global clockwise.
	RightIsCW Chirality = 1
	// RightIsCCW maps local right to global counter-clockwise.
	RightIsCCW Chirality = -1
)

// Valid reports whether c is one of the two chirality values.
func (c Chirality) Valid() bool { return c == RightIsCW || c == RightIsCCW }

// Opposite returns the mirror chirality.
func (c Chirality) Opposite() Chirality { return -c }

// String implements fmt.Stringer.
func (c Chirality) String() string {
	switch c {
	case RightIsCW:
		return "right=CW"
	case RightIsCCW:
		return "right=CCW"
	default:
		return fmt.Sprintf("Chirality(%d)", int8(c))
	}
}

// GlobalSign returns the sign (+1 for CW, -1 for CCW) of the global
// direction that local direction d denotes under chirality c. The caller
// (the simulator) converts the sign to a ring.Direction; robots themselves
// never see global directions.
func (c Chirality) GlobalSign(d LocalDir) int {
	return int(c) * int(d)
}

// View is the local environment gathered during the Look phase
// (Section 2.3): the values of the three predicates a robot can evaluate.
// It deliberately contains nothing else — no node identity, no global
// direction, no count of co-located robots (weak multiplicity detection).
type View struct {
	// EdgeDir is ExistsEdge(dir): an edge is present at the port the robot
	// currently points to.
	EdgeDir bool
	// EdgeOpp is ExistsEdge(opposite dir): an edge is present at the other
	// port.
	EdgeOpp bool
	// OtherRobots is ExistsOtherRobotsOnCurrentNode(): at least one other
	// robot shares the node.
	OtherRobots bool
}

// ExistsEdge returns the predicate value for local direction d relative to
// the robot's pointed direction: the robot asks about "dir" or "opposite of
// dir", never about absolute ports.
func (v View) ExistsEdge(pointed, d LocalDir) bool {
	if d == pointed {
		return v.EdgeDir
	}
	return v.EdgeOpp
}

// StateKind selects the rendering schema of a StateCode: which persistent
// variables the code carries and how String lays them out. Each algorithm
// family picks the kind matching its variable set, so codes from different
// families never compare equal by accident.
type StateKind uint8

const (
	// StateDir encodes algorithms whose only persistent variable is dir.
	StateDir StateKind = iota
	// StateDirMoved adds the HasMovedPreviousStep flag (PEF_3+).
	StateDirMoved
	// StateSweep adds a done/sweep counter pair packed into Aux
	// (pendulum, doubling zigzag).
	StateSweep
	// StateLCG adds a full 64-bit generator register in Aux (lcg-walker).
	StateLCG
)

// StateCode is a compact, comparable encoding of a robot core's persistent
// variables — the engine-level replacement for string state encodings on
// the simulation hot path. Two robots are "in the same state" (Lemma 4.1)
// iff their StateCodes are equal (plain ==); rendering to the classic
// string form happens lazily via String at the trace/report boundary only.
// Encodings must be purely local: they may mention left/right but never
// clockwise/counter-clockwise.
type StateCode struct {
	// Kind is the rendering schema.
	Kind StateKind
	// Dir is the dir variable, present in every algorithm.
	Dir LocalDir
	// Flag carries the kind's boolean variable (moved for StateDirMoved).
	Flag bool
	// Aux carries the kind's numeric payload (packed counters, LCG state).
	Aux uint64
}

// DirState encodes a dir-only core.
func DirState(d LocalDir) StateCode { return StateCode{Kind: StateDir, Dir: d} }

// DirMovedState encodes a (dir, HasMovedPreviousStep) core.
func DirMovedState(d LocalDir, moved bool) StateCode {
	return StateCode{Kind: StateDirMoved, Dir: d, Flag: moved}
}

// SweepState encodes a (dir, done, sweep) core; both counters must fit in
// 32 bits (the doubling zigzag caps its sweep well below that).
func SweepState(d LocalDir, done, sweep int) StateCode {
	return StateCode{Kind: StateSweep, Dir: d, Aux: uint64(uint32(done)) | uint64(uint32(sweep))<<32}
}

// LCGState encodes a (dir, generator register) core.
func LCGState(d LocalDir, state uint64) StateCode {
	return StateCode{Kind: StateLCG, Dir: d, Aux: state}
}

// String renders the code in the classic persistent-variable form
// ("dir=left,moved=true"). It allocates, so the engine never calls it; the
// trace and report layers do.
func (c StateCode) String() string {
	switch c.Kind {
	case StateDirMoved:
		return fmt.Sprintf("dir=%s,moved=%t", c.Dir, c.Flag)
	case StateSweep:
		return fmt.Sprintf("dir=%s,done=%d/%d", c.Dir, uint32(c.Aux), uint32(c.Aux>>32))
	case StateLCG:
		return fmt.Sprintf("dir=%s,lcg=%d", c.Dir, c.Aux)
	default:
		return "dir=" + c.Dir.String()
	}
}

// Core is one robot's deterministic state machine: the persistent variables
// of Section 2.2 plus the Compute rule. Implementations must be
// deterministic — the computability results quantify over deterministic
// algorithms only.
type Core interface {
	// Dir returns the current value of the dir variable. The simulator
	// reads it during Look (to evaluate ExistsEdge(dir)) and again after
	// Compute (to perform Move).
	Dir() LocalDir
	// Compute executes the Compute phase on the view gathered during Look,
	// possibly modifying the robot's persistent variables (including dir).
	Compute(view View)
	// State returns the compact encoding of all persistent variables. Two
	// robots are "in the same state" (Lemma 4.1) iff their codes are equal.
	// State must not allocate: the simulator calls it every round.
	State() StateCode
}

// Algorithm is a uniform deterministic algorithm: a factory producing one
// fresh Core per robot, all identical (robots are uniform and anonymous).
type Algorithm interface {
	// Name identifies the algorithm in reports and registries.
	Name() string
	// NewCore returns a Core in the algorithm's initial state
	// (dir = Left, all other variables at their initial values).
	NewCore() Core
}

// Func adapts a stateless compute rule to the Algorithm interface, for
// algorithms whose only persistent variable is dir itself.
type Func struct {
	// AlgName is the reported name.
	AlgName string
	// Rule maps (current dir, view) to the next dir.
	Rule func(dir LocalDir, view View) LocalDir
}

// Name implements Algorithm.
func (f Func) Name() string { return f.AlgName }

// NewCore implements Algorithm.
func (f Func) NewCore() Core { return &funcCore{dir: Left, rule: f.Rule} }

type funcCore struct {
	dir  LocalDir
	rule func(dir LocalDir, view View) LocalDir
}

func (c *funcCore) Dir() LocalDir { return c.dir }

func (c *funcCore) Compute(view View) {
	next := c.rule(c.dir, view)
	if !next.Valid() {
		panic(fmt.Sprintf("robot: rule returned invalid direction %d", next))
	}
	c.dir = next
}

func (c *funcCore) State() StateCode { return DirState(c.dir) }
