package robot

import (
	"testing"
	"testing/quick"
)

func TestLocalDirOpposite(t *testing.T) {
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Fatal("Opposite broken")
	}
	if !Left.Valid() || !Right.Valid() || LocalDir(0).Valid() {
		t.Fatal("Valid broken")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Fatal("String broken")
	}
	if LocalDir(3).String() == "" {
		t.Fatal("invalid dir should render")
	}
}

func TestChirality(t *testing.T) {
	if RightIsCW.Opposite() != RightIsCCW {
		t.Fatal("Opposite broken")
	}
	if !RightIsCW.Valid() || Chirality(0).Valid() {
		t.Fatal("Valid broken")
	}
	cases := []struct {
		c    Chirality
		d    LocalDir
		sign int
	}{
		{RightIsCW, Right, 1},
		{RightIsCW, Left, -1},
		{RightIsCCW, Right, -1},
		{RightIsCCW, Left, 1},
	}
	for _, c := range cases {
		if got := c.c.GlobalSign(c.d); got != c.sign {
			t.Errorf("GlobalSign(%v,%v) = %d, want %d", c.c, c.d, got, c.sign)
		}
	}
	if RightIsCW.String() == RightIsCCW.String() {
		t.Fatal("chirality strings must differ")
	}
}

func TestChiralityCompositionProperty(t *testing.T) {
	// Flipping either the chirality or the local direction flips the
	// global sign; flipping both preserves it.
	prop := func(cBit, dBit bool) bool {
		c := RightIsCW
		if cBit {
			c = RightIsCCW
		}
		d := Left
		if dBit {
			d = Right
		}
		return c.GlobalSign(d) == -c.Opposite().GlobalSign(d) &&
			c.GlobalSign(d) == -c.GlobalSign(d.Opposite()) &&
			c.GlobalSign(d) == c.Opposite().GlobalSign(d.Opposite())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestViewExistsEdge(t *testing.T) {
	v := View{EdgeDir: true, EdgeOpp: false}
	if !v.ExistsEdge(Left, Left) {
		t.Fatal("pointed-direction query should read EdgeDir")
	}
	if v.ExistsEdge(Left, Right) {
		t.Fatal("opposite-direction query should read EdgeOpp")
	}
	if !v.ExistsEdge(Right, Right) {
		t.Fatal("pointed=Right query should read EdgeDir")
	}
}

func TestFuncAlgorithm(t *testing.T) {
	alg := Func{
		AlgName: "flipper",
		Rule: func(d LocalDir, _ View) LocalDir {
			return d.Opposite()
		},
	}
	if alg.Name() != "flipper" {
		t.Fatal("Name broken")
	}
	core := alg.NewCore()
	if core.Dir() != Left {
		t.Fatal("initial dir must be Left")
	}
	core.Compute(View{})
	if core.Dir() != Right {
		t.Fatal("rule not applied")
	}
	if core.State().String() != "dir=right" {
		t.Fatalf("State = %q", core.State())
	}
	// Independent cores do not share state.
	other := alg.NewCore()
	if other.Dir() != Left {
		t.Fatal("cores share state")
	}
}

func TestFuncCorePanicsOnInvalidRule(t *testing.T) {
	core := Func{
		AlgName: "broken",
		Rule:    func(LocalDir, View) LocalDir { return 0 },
	}.NewCore()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid direction accepted")
		}
	}()
	core.Compute(View{})
}
