package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"

	"pef/internal/metrics"
)

// Aggregate is the online campaign aggregation state: per-family verdict
// counts, bounded scalar distributions, and the violation list, folded in
// one verdict at a time. It holds O(aggregate) memory — families × metrics
// × distinct scalar values, plus the (expected-empty) violations — never
// O(scenarios), which is what lets StreamCampaign report on
// million-scenario sweeps without collecting verdicts.
//
// Reports rendered from an Aggregate are byte-identical to the legacy
// collected path: Campaign.WriteReport and Campaign.WriteJSON are now
// implemented by folding their verdict slice through an Aggregate.
type Aggregate struct {
	// Generator, Gen, Count and Seeds echo the resolved campaign
	// configuration; checkpoints embed them so a resumed campaign cannot
	// silently continue under different parameters.
	Generator string
	Gen       GenConfig
	Count     int
	Seeds     []uint64

	// start and end delimit the contiguous block of the canonical stream
	// this aggregate is responsible for ([0, total) for whole campaigns,
	// the shard block for sharded ones); checkpoints carry them so
	// per-shard aggregates merge back in order.
	start, end int

	done       int
	ok         int
	familyIdx  map[string]int
	families   []FamilyStats
	sweep      *metrics.Sweep
	violations []Verdict
	millis     int64
	// reg resolves family descriptors for the margin instrumentation
	// (confinement limits); never nil after NewAggregate.
	reg *Registry
	// marginBuf is the reused margin scratch slice keeping the
	// steady-state Add fold allocation-free.
	marginBuf []Margin
}

// NewAggregate creates the aggregation state for the campaign described
// by cfg (defaults resolved exactly like RunCampaign). When cfg.Resume is
// set, the checkpointed prefix is folded in, so Add-ing the remaining
// verdict stream reproduces the uninterrupted aggregate.
func NewAggregate(cfg CampaignConfig) (*Aggregate, error) {
	rcfg, err := cfg.resolved()
	if err != nil {
		return nil, err
	}
	start, _, end := rcfg.region()
	a := &Aggregate{
		Generator: rcfg.Generator,
		Gen:       rcfg.Gen.withDefaults(),
		Count:     rcfg.Count,
		Seeds:     rcfg.Seeds,
		start:     start,
		end:       end,
		familyIdx: map[string]int{},
		sweep:     metrics.NewSweep(),
		reg:       rcfg.registry(),
	}
	if rcfg.Resume != nil {
		if err := a.restore(rcfg.Resume); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Start returns the offset of the aggregate's block in the canonical
// stream (0 for whole campaigns).
func (a *Aggregate) Start() int { return a.start }

// End returns the exclusive end of the aggregate's block.
func (a *Aggregate) End() int { return a.end }

// Done returns the number of verdicts folded in (including a resumed
// checkpoint's prefix).
func (a *Aggregate) Done() int { return a.done }

// OKCount returns the number of folded verdicts whose expectation holds.
func (a *Aggregate) OKCount() int { return a.ok }

// Violations returns the folded verdicts that failed their predicate or
// errored, in fold order (canonical order when fed from a campaign
// stream).
func (a *Aggregate) Violations() []Verdict { return a.violations }

// FamilyTable returns the per-family aggregates in first-seen order.
func (a *Aggregate) FamilyTable() []FamilyStats { return a.families }

// Sweep returns the scalar aggregation state: per-family cover-time,
// revisit-gap and distinct-node distributions.
func (a *Aggregate) Sweep() *metrics.Sweep { return a.sweep }

// Add folds one verdict into the aggregate. Folding the canonical verdict
// stream reproduces every report of the collected path byte for byte.
func (a *Aggregate) Add(v Verdict) {
	a.done++
	passed := v.OK && v.Err == ""
	if passed {
		a.ok++
	}
	fam := v.Spec.Family
	i, seen := a.familyIdx[fam]
	if !seen {
		i = len(a.families)
		a.familyIdx[fam] = i
		a.families = append(a.families, FamilyStats{Family: fam})
	}
	a.families[i].Runs++
	if passed {
		a.families[i].OK++
	}
	switch v.Expect {
	case ExpectExplore:
		a.families[i].Explore++
	case ExpectConfine:
		a.families[i].Confine++
	default:
		a.families[i].None++
	}
	if v.Err != "" {
		a.families[i].Errors++
	}
	if v.Err == "" { // errored/cancelled scenarios carry no metrics
		if v.CoverTime >= 0 {
			a.sweep.RecordScalar(fam, "cover", v.CoverTime)
		}
		if v.Outcome == "explored" || v.Outcome == "partial" {
			a.sweep.RecordScalar(fam, "maxGap", v.MaxGap)
		}
		a.sweep.RecordScalar(fam, "distinct", v.Distinct)
		// Margin distributions: how much headroom each verdict had against
		// the bound its property enforced (see Registry.Margins). They ride
		// the same sweep scalars as the metrics above, so checkpoints,
		// resume and shard merge preserve them for free.
		a.marginBuf = a.reg.AppendMargins(a.marginBuf[:0], v)
		for _, m := range a.marginBuf {
			a.sweep.RecordScalar(fam, m.Metric, m.Value)
		}
	}
	if !v.OK || v.Err != "" {
		a.violations = append(a.violations, v)
	}
}

// Merge folds b into a. Merging the parts of any in-order partition of a
// campaign stream reproduces the whole-stream aggregate exactly — counts
// and distributions are commutative, and first-seen orders concatenate —
// which is the property checkpoint/resume and multi-process sharding rely
// on. The two aggregates must describe the same campaign configuration;
// Merge itself does not police block adjacency (callers feeding it an
// out-of-order partition get an order-scrambled report) — MergeCheckpoints
// is the checked, shard-aware entry point.
func (a *Aggregate) Merge(b *Aggregate) error {
	if a.Generator != b.Generator || a.Count != b.Count ||
		!reflect.DeepEqual(a.Seeds, b.Seeds) || a.Gen != b.Gen {
		return fmt.Errorf("scenario: merging aggregates of different campaigns (%s/%d/%v vs %s/%d/%v)",
			a.Generator, a.Count, a.Seeds, b.Generator, b.Count, b.Seeds)
	}
	a.done += b.done
	a.ok += b.ok
	for _, fs := range b.families {
		i, seen := a.familyIdx[fs.Family]
		if !seen {
			i = len(a.families)
			a.familyIdx[fs.Family] = i
			a.families = append(a.families, FamilyStats{Family: fs.Family})
		}
		a.families[i].Runs += fs.Runs
		a.families[i].OK += fs.OK
		a.families[i].Explore += fs.Explore
		a.families[i].Confine += fs.Confine
		a.families[i].None += fs.None
		a.families[i].Errors += fs.Errors
	}
	if err := a.sweep.RestoreScalars(b.sweep.ScalarStates()); err != nil {
		return err
	}
	a.violations = append(a.violations, b.violations...)
	return nil
}

// MergeCheckpoints folds completed per-shard campaign checkpoints into
// the whole-campaign aggregate. The checkpoints may arrive in any order;
// they must describe the same campaign, each must be complete over its
// block (Done == End-Start), and together they must tile the canonical
// stream exactly — [0, total) with no gap and no overlap. The merged
// aggregate's reports are byte-identical to a single-process run of the
// whole campaign.
func MergeCheckpoints(ckpts ...*Checkpoint) (*Aggregate, error) {
	if len(ckpts) == 0 {
		return nil, fmt.Errorf("scenario: no checkpoints to merge")
	}
	sorted := append([]*Checkpoint(nil), ckpts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	total := sorted[0].Count * len(sorted[0].Seeds)
	for i, c := range sorted {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if c.Done != c.effEnd(c.Count*len(c.Seeds))-c.Start {
			return nil, fmt.Errorf("scenario: shard [%d, %d) is incomplete (%d of %d scenarios done); finish or resume it before merging",
				c.Start, c.effEnd(c.Count*len(c.Seeds)), c.Done, c.effEnd(c.Count*len(c.Seeds))-c.Start)
		}
		if i == 0 && c.Start != 0 {
			return nil, fmt.Errorf("scenario: first shard starts at %d, not 0 — shard [0, %d) is missing", c.Start, c.Start)
		}
	}
	a, err := NewAggregate(CampaignConfig{Resume: sorted[0]})
	if err != nil {
		return nil, err
	}
	for _, c := range sorted[1:] {
		b, err := NewAggregate(CampaignConfig{Resume: c})
		if err != nil {
			return nil, err
		}
		if b.start != a.start+a.done {
			return nil, fmt.Errorf("scenario: shard starting at %d does not continue the merged prefix [0, %d) (gap or overlap)", b.start, a.start+a.done)
		}
		if err := a.Merge(b); err != nil {
			return nil, err
		}
		a.end = b.end
	}
	if a.done != total {
		return nil, fmt.Errorf("scenario: merged shards cover %d of %d scenarios — a shard is missing", a.done, total)
	}
	return a, nil
}

// WriteReport renders the aggregate as the human-readable campaign
// report: the family table, the scalar spread, and one section per
// violation — byte-identical to the legacy collected rendering.
func (a *Aggregate) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Scenario campaign (generator=%s, count=%d, seeds=%d)\n",
		a.Generator, a.Count, len(a.Seeds)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n## Families (%d scenarios, %d ok)\n\n", a.done, a.ok); err != nil {
		return err
	}
	ft := metrics.NewTable("family", "runs", "ok", "explore", "confine", "none", "errors")
	for _, fs := range a.families {
		ft.AddRow(fs.Family, fs.Runs, fs.OK, fs.Explore, fs.Confine, fs.None, fs.Errors)
	}
	if err := ft.Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n## Scalar metrics\n\n"); err != nil {
		return err
	}
	if err := a.sweep.ScalarTable().Render(w); err != nil {
		return err
	}
	for _, v := range a.violations {
		if _, err := fmt.Fprintf(w, "\n### Violation: %s\n", v.ID); err != nil {
			return err
		}
		detail := v.Violation
		if v.Err != "" {
			detail = v.Err
		}
		if _, err := fmt.Fprintf(w, "\nexpect=%s outcome=%s covered=%d/%d maxGap=%d distinct=%d: %s\n",
			v.Expect, v.Outcome, v.Covered, v.Spec.Ring, v.MaxGap, v.Distinct, detail); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n---\n%d/%d scenarios satisfy the paper's predicates.\n",
		a.done-len(a.violations), a.done)
	return err
}

// SetWallMillis records the campaign's measured wall time for the JSON
// document (pefscenarios -timings). Timings are observational: they never
// enter reports or checkpoints, so byte-identity guarantees are unaffected
// unless the producer opts in.
func (a *Aggregate) SetWallMillis(ms int64) { a.millis = ms }

// jsonCampaign is the versioned machine-readable campaign document (the
// BENCH_*.json payload of scenario sweeps). It deliberately omits the
// worker count so reports are byte-identical for any -workers value.
type jsonCampaign struct {
	Version    int                 `json:"version"`
	Generator  string              `json:"generator"`
	Count      int                 `json:"count"`
	Seeds      []uint64            `json:"seeds"`
	Total      int                 `json:"total"`
	OK         int                 `json:"ok"`
	OKRate     float64             `json:"okRate"`
	Families   []FamilyStats       `json:"families"`
	Scalars    []metrics.ScalarRow `json:"scalars"`
	Violations []Verdict           `json:"violations,omitempty"`
	// Millis is the campaign's measured wall time; zero (omitted) unless
	// the producer recorded one (pefscenarios -timings). It is the one
	// field that varies run to run: strip it before byte-comparing
	// documents, or leave it unset.
	Millis int64 `json:"millis,omitempty"`
}

// WriteJSON renders the versioned campaign document from the aggregate.
func (a *Aggregate) WriteJSON(w io.Writer) error {
	doc := jsonCampaign{
		Version:    Version,
		Generator:  a.Generator,
		Count:      a.Count,
		Seeds:      a.Seeds,
		Total:      a.done,
		OK:         a.ok,
		Families:   a.families,
		Scalars:    a.sweep.ScalarRows(),
		Violations: a.violations,
		Millis:     a.millis,
	}
	if doc.Total > 0 {
		doc.OKRate = float64(doc.OK) / float64(doc.Total)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
