package scenario

import (
	"testing"
)

// steadySpec is the alloc-guard workload: a mid-size static-ring spec so
// every allocation left in the oracle path is per-spec bookkeeping, never
// per-round.
func steadySpec(horizon int) Spec {
	return Spec{
		Version:   Version,
		Ring:      12,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: PlaceEven,
		Family:    "static",
		Horizon:   horizon,
		Seed:      7,
	}
}

// TestOracleEvaluationSteadyStateAllocFree guards the campaign hot path:
// the per-spec cost of Run must not scale with the horizon — all per-round
// work (snapshots, presence sets, occupancy, trackers) reuses pooled
// storage. Per-spec constant bookkeeping (verdict, ID string, reports) is
// allowed; per-round allocation is the regression this test catches.
// Skipped under -race (instrumented allocation counts).
func TestOracleEvaluationSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	measure := func(horizon int) float64 {
		s := steadySpec(horizon)
		Run(s) // warm pools and grow tracker capacity for this horizon
		return testing.AllocsPerRun(20, func() {
			if v := Run(s); !v.OK {
				t.Fatalf("guard spec failed: %+v", v)
			}
		})
	}
	short := measure(200)
	long := measure(1400)
	// Six times the rounds may not cost extra allocations beyond noise.
	if long > short+2 {
		t.Fatalf("oracle evaluation allocates per round: %v allocs at horizon 200 vs %v at 1400", short, long)
	}
}
