package scenario

import (
	"fmt"
	"testing"
)

// steadySpec is the alloc-guard workload: a mid-size static-ring spec so
// every allocation left in the oracle path is per-spec bookkeeping, never
// per-round.
func steadySpec(horizon int) Spec {
	return Spec{
		Version:   Version,
		Ring:      12,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: PlaceEven,
		Family:    "static",
		Horizon:   horizon,
		Seed:      7,
	}
}

// TestOracleEvaluationSteadyStateAllocFree guards the campaign hot path:
// the per-spec cost of Run must not scale with the horizon — all per-round
// work (snapshots, presence sets, occupancy, trackers) reuses pooled
// storage. Per-spec constant bookkeeping (verdict, ID string, reports) is
// allowed; per-round allocation is the regression this test catches.
// Skipped under -race (instrumented allocation counts).
func TestOracleEvaluationSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	measure := func(horizon int) float64 {
		s := steadySpec(horizon)
		Run(s) // warm pools and grow tracker capacity for this horizon
		return testing.AllocsPerRun(20, func() {
			if v := Run(s); !v.OK {
				t.Fatalf("guard spec failed: %+v", v)
			}
		})
	}
	short := measure(200)
	long := measure(1400)
	// Six times the rounds may not cost extra allocations beyond noise.
	if long > short+2 {
		t.Fatalf("oracle evaluation allocates per round: %v allocs at horizon 200 vs %v at 1400", short, long)
	}
}

// syntheticVerdict builds verdict i of a stream whose scalar values cycle
// over a fixed universe — the shape of a long steady-state campaign.
func syntheticVerdict(i int) Verdict {
	fam := []string{"static", "bernoulli", "markov", "roving"}[i%4]
	return Verdict{
		ID:        fmt.Sprintf("v%d", i),
		Spec:      Spec{Ring: 8 + i%4, Robots: 3, Family: fam},
		Expect:    ExpectExplore,
		Outcome:   "explored",
		OK:        true,
		Covered:   8,
		CoverTime: i % 50,
		MaxGap:    i % 30,
		Distinct:  i % 8,
	}
}

// newTestAggregate builds an aggregate for a synthetic stream.
func newTestAggregate(t testing.TB) *Aggregate {
	t.Helper()
	agg, err := NewAggregate(CampaignConfig{Generator: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// footprint measures the aggregate's retained state: family rows, scalar
// distribution cells, and violations. This is the quantity the streaming
// redesign promises stays O(aggregate) — bounded by the value universe,
// independent of how many scenarios streamed through.
func footprint(a *Aggregate) int {
	n := len(a.FamilyTable()) + len(a.Violations())
	for _, st := range a.Sweep().ScalarStates() {
		n += len(st.Entries)
	}
	return n
}

// TestAggregateStateBoundedByScenarioCount is the aggregation-side memory
// guard of the streaming campaign redesign: folding ten times more
// verdicts from the same value universe must not grow the aggregate's
// retained state at all. (The collected legacy path held every verdict —
// O(scenarios); the aggregate holds distributions — O(distinct values).)
func TestAggregateStateBoundedByScenarioCount(t *testing.T) {
	agg := newTestAggregate(t)
	for i := 0; i < 1000; i++ {
		agg.Add(syntheticVerdict(i))
	}
	atThousand := footprint(agg)
	for i := 1000; i < 10000; i++ {
		agg.Add(syntheticVerdict(i))
	}
	if got := footprint(agg); got != atThousand {
		t.Fatalf("aggregation state grew with scenario count: %d cells at 1k verdicts, %d at 10k", atThousand, got)
	}
	if agg.Done() != 10000 {
		t.Fatalf("Done() = %d", agg.Done())
	}
}

// TestAggregateAddSteadyStateAllocFree guards the per-verdict cost of
// streamed aggregation: once the value universe has been seen, Add must
// not allocate. Skipped under -race (instrumented allocation counts).
func TestAggregateAddSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	agg := newTestAggregate(t)
	verdicts := make([]Verdict, 200)
	for i := range verdicts {
		verdicts[i] = syntheticVerdict(i)
		agg.Add(verdicts[i]) // warm: populate families and distributions
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		agg.Add(verdicts[i%len(verdicts)])
		i++
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state Aggregate.Add allocates: %v allocs/op", allocs)
	}
}
