package scenario

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkOracleRun measures one spec evaluation end to end (dynamics
// build, pooled simulator run, predicate check) — the per-scenario unit
// cost a million-scenario campaign pays.
func BenchmarkOracleRun(b *testing.B) {
	for _, family := range []string{"static", "bernoulli", "markov"} {
		b.Run(family, func(b *testing.B) {
			s := steadySpec(600)
			s.Family = family
			switch family {
			case "bernoulli":
				s.Params.P = 0.6
			case "markov":
				s.Params.Up, s.Params.Down = 0.4, 0.25
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := Run(s); !v.OK {
					b.Fatalf("spec failed: %+v", v)
				}
			}
		})
	}
}

// BenchmarkCampaign measures a small sharded campaign through the worker
// pool, the full path of cmd/pefscenarios.
func BenchmarkCampaign(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := RunCampaign(context.Background(), CampaignConfig{
					Generator: "uniform",
					Count:     64,
					Seeds:     []uint64{1},
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(c.Verdicts) != 64 {
					b.Fatalf("campaign produced %d verdicts", len(c.Verdicts))
				}
			}
		})
	}
}
