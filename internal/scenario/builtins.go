package scenario

import (
	"fmt"
	"math"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
)

// registerBuiltins is the registry bootstrap: it installs the paper's
// algorithms and baselines, the stock dynamics families, the combinator
// families (periodic timetables, adversary compositions), and the oracle
// properties. Registration order is load-bearing — it fixes the canonical
// enumeration order of every listing and sampler pool, and hence the
// byte-identity of recorded campaign streams — so entries here must only
// ever be appended.
//
// This function is the single place where built-in names are bound to
// behaviour; everywhere else resolves through the registry.
func registerBuiltins(r *Registry) {
	mustAlg := func(name, desc string, alg robot.Algorithm) {
		if err := r.RegisterAlgorithm(name, AlgorithmDescriptor{
			Description: desc,
			Stock:       true, // frozen victim pool: only the bootstrap sets this
			New:         func() robot.Algorithm { return alg },
		}); err != nil {
			panic(err)
		}
	}
	// The paper's algorithms and their ablations, then the baseline suite
	// (the empirical stand-in for the impossibility theorems' universal
	// quantifier), in the historical victim-pool order.
	mustAlg(core.PEF3PlusName, "Algorithm 1: k >= 3 robots explore any connected-over-time ring n > k", core.PEF3Plus{})
	mustAlg(core.PEF2Name, "Section 4.2: two robots on the 3-node ring", core.PEF2{})
	mustAlg(core.PEF1Name, "Section 5.2: one robot on the 2-node ring", core.PEF1{})
	mustAlg(core.NoRule2Name, "PEF_3+ ablation without Rule 2 (tower breaking)", core.NoRule2{})
	mustAlg(core.NoRule3Name, "PEF_3+ ablation without Rule 3 (sentinel turnaround)", core.NoRule3{})
	for _, alg := range baseline.Suite() {
		mustAlg(alg.Name(), "baseline candidate from the impossibility victim suite", alg)
	}

	mustFam := func(name string, d FamilyDescriptor) {
		if err := r.RegisterFamily(name, d); err != nil {
			panic(err)
		}
	}

	// Stock oblivious connected-over-time families, in the historical
	// sampler-pool order. Each Graph closure calls the family's dedicated
	// constructor; each Sample closure replays the historical parameter
	// draws exactly.
	mustFam("static", FamilyDescriptor{
		Description: "every edge always present",
		Stock:       true,
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dyngraph.NewStatic(s.Ring), nil
		},
	})
	mustFam("bernoulli", FamilyDescriptor{
		Description: "each edge independently present with probability p each round",
		Params:      []ParamField{{Name: "p", Kind: ParamFloat, Min: 0, Max: 1, Doc: "per-edge presence probability"}},
		Stock:       true,
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.NewBernoulli(s.Ring, s.Params.P, s.Seed), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			return Params{P: probIn(src, 0.3, 0.95)}
		},
	})
	mustFam("bounded", FamilyDescriptor{
		Description: "Bernoulli(p) forced recurrent with bound delta",
		Params: []ParamField{
			{Name: "p", Kind: ParamFloat, Min: 0, Max: 1, Doc: "background presence probability"},
			{Name: "delta", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "forced recurrence bound"},
		},
		Stock:      true,
		Explorable: true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.BoundedBernoulliSpec(s.Params.P, s.Params.Delta).Build(s.Ring, s.Seed), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			p := probIn(src, 0.05, 0.5)
			return Params{P: p, Delta: intIn(src, 1, 8)}
		},
	})
	mustFam("t-interval", FamilyDescriptor{
		Description: "T-interval-connected: stable spanning subgraph per window of t rounds",
		Params:      []ParamField{{Name: "t", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "interval-connectivity window"}},
		Stock:       true,
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.NewTInterval(s.Ring, s.Params.T, s.Seed), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			return Params{T: intIn(src, 1, 8)}
		},
	})
	mustFam("roving", FamilyDescriptor{
		Description: "exactly one edge absent at each instant, rotating every period rounds",
		Params:      []ParamField{{Name: "period", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "rotation period"}},
		Stock:       true,
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.NewRovingMissing(s.Ring, s.Params.Period), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			return Params{Period: intIn(src, 1, 6)}
		},
	})
	mustFam("chain", FamilyDescriptor{
		Description: "connected-over-time chain: edge cut missing forever, the rest recurrent",
		Params: []ParamField{
			{Name: "cut", Kind: ParamInt, Min: 0, Max: math.Inf(1), Doc: "permanently missing edge"},
			{Name: "p", Kind: ParamFloat, Min: 0, Max: 1, Doc: "background keep probability"},
			{Name: "delta", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "forced recurrence bound"},
		},
		Stock:      true,
		Explorable: true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.ChainSpec(s.Params.Cut, s.Params.P, s.Params.Delta).Build(s.Ring, s.Seed), nil
		},
		Sample: func(src *prng.Source, n, _ int) Params {
			cut := intIn(src, 0, n-1)
			p := probIn(src, 0.5, 0.9)
			return Params{Cut: cut, P: p, Delta: intIn(src, 2, 6)}
		},
	})
	mustFam("eventual-missing", FamilyDescriptor{
		Description: "one edge disappears forever at time from, the rest stay recurrent",
		Params: []ParamField{
			{Name: "edge", Kind: ParamInt, Min: 0, Max: math.Inf(1), Doc: "the eventually missing edge"},
			{Name: "from", Kind: ParamInt, Min: 0, Max: math.Inf(1), Doc: "instant the edge disappears"},
			{Name: "p", Kind: ParamFloat, Min: 0, Max: 1, Doc: "background keep probability"},
			{Name: "delta", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "forced recurrence bound"},
		},
		Stock:      true,
		Explorable: true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.EventualMissingSpec(s.Params.Edge, s.Params.From, s.Params.P, s.Params.Delta).Build(s.Ring, s.Seed), nil
		},
		Sample: func(src *prng.Source, n, horizon int) Params {
			edge := intIn(src, 0, n-1)
			from := intIn(src, 0, horizon/4)
			p := probIn(src, 0.5, 0.9)
			return Params{Edge: edge, From: from, P: p, Delta: intIn(src, 2, 6)}
		},
	})
	mustFam("markov", FamilyDescriptor{
		Description: "bursty links: per-edge two-state Markov chain (up: absent->present, down: present->absent)",
		Params: []ParamField{
			{Name: "up", Kind: ParamFloat, Min: 0, Max: 1, Required: true, Doc: "absent->present transition probability"},
			{Name: "down", Kind: ParamFloat, Min: 0, Max: 1, Doc: "present->absent transition probability"},
		},
		Stock:      true,
		Explorable: true,
		Build: func(s Spec) (fsync.Dynamics, error) {
			// The materialized GenerateMarkov trace would retain O(horizon)
			// edge sets; the streaming chain is bit-identical and holds only
			// a bounded window, which is what lets campaigns scale to very
			// long horizons.
			g, err := dynamics.NewMarkovStream(s.Ring, s.Params.Up, s.Params.Down, s.Seed, markovWindow)
			if err != nil {
				return nil, err
			}
			return fsync.Oblivious{G: g}, nil
		},
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			// Composable form: the same chain, rematerialized per member.
			return dynamics.MarkovSpec(s.Params.Up, s.Params.Down, s.Horizon).Build(s.Ring, s.Seed), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			up := probIn(src, 0.2, 0.8)
			return Params{Up: up, Down: probIn(src, 0.05, 0.6)}
		},
	})

	// Adaptive adversaries. block-pointed closes the stock pool (the
	// historical uniform pool is the eight families above plus this one);
	// the confinement theorems follow with their proof-pinned placements
	// and declared expectations.
	mustFam(FamilyBlockPointed, FamilyDescriptor{
		Description: "budgeted stress adversary: every pointed edge removed, none absent beyond budget rounds",
		Params:      []ParamField{{Name: "budget", Kind: ParamInt, Min: 1, Max: math.Inf(1), Required: true, Doc: "max consecutive rounds an edge stays absent"}},
		Stock:       true,
		Explorable:  true,
		Build: func(s Spec) (fsync.Dynamics, error) {
			return adversary.NewBlockPointed(s.Ring, s.Params.Budget), nil
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			return Params{Budget: intIn(src, 1, 4)}
		},
	})
	mustFam(FamilyConfineOne, FamilyDescriptor{
		Description:  "Theorem 5.1 adversary: confines any single robot to two nodes",
		Expect:       ExpectConfine,
		ConfineLimit: 2,
		Validate: func(s Spec) error {
			if s.Robots != 1 || s.Ring < 3 {
				return fmt.Errorf("scenario: %s needs k=1 and n>=3, got k=%d n=%d", s.Family, s.Robots, s.Ring)
			}
			return nil
		},
		Build: func(s Spec) (fsync.Dynamics, error) {
			return adversary.NewOneRobotConfinement(s.Ring, 0, 0), nil
		},
		Placements: func(Spec) []fsync.Placement {
			return []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}
		},
	})
	mustFam(FamilyConfineTwo, FamilyDescriptor{
		Description:  "Theorem 4.1 adversary: confines any two robots to three nodes",
		Expect:       ExpectConfine,
		ConfineLimit: 3,
		Validate: func(s Spec) error {
			if s.Robots != 2 || s.Ring < 4 {
				return fmt.Errorf("scenario: %s needs k=2 and n>=4, got k=%d n=%d", s.Family, s.Robots, s.Ring)
			}
			return nil
		},
		Build: func(s Spec) (fsync.Dynamics, error) {
			return adversary.NewTwoRobotConfinement(s.Ring, 0, 0, 1), nil
		},
		Placements: func(Spec) []fsync.Placement {
			return []fsync.Placement{
				{Node: 0, Chirality: robot.RightIsCW},
				{Node: 1, Chirality: robot.RightIsCCW},
			}
		},
	})

	// Combinator families: the ROADMAP's open "periodic timetables" and
	// "adversary compositions" workloads. Not Stock — the historical pools
	// stay frozen — but Explorable, so the "registered" generator sweeps
	// them alongside everything registered later.
	mustFam("periodic", FamilyDescriptor{
		Description: "seeded periodic timetable: per-edge appearance pattern with one guaranteed slot per period",
		Params:      []ParamField{{Name: "period", Kind: ParamInt, Min: 1, Max: 64, Required: true, Doc: "timetable period"}},
		Explorable:  true,
		Graph: func(s Spec) (dyngraph.EvolvingGraph, error) {
			return dynamics.NewTimetable(s.Ring, s.Params.Period, s.Seed)
		},
		Sample: func(src *prng.Source, _, _ int) Params {
			return Params{Period: intIn(src, 2, 8)}
		},
		Horizon: func(n int, p Params) int {
			// A pattern guarantees one appearance per period, so the
			// timetable behaves like a recurrence bound of Period: scale
			// the horizon exactly like the bounded family does for Delta.
			return exploreHorizon(n, Params{Delta: p.Period})
		},
	})
	mustCompose := func(name, mode string, members ...string) {
		d, err := r.ComposeFamilies(mode, members...)
		if err != nil {
			panic(err)
		}
		mustFam(name, d)
	}
	mustCompose("compose:union", dynamics.ComposeUnion, "bernoulli", "roving")
	mustCompose("compose:intersect", dynamics.ComposeIntersect, "bernoulli", "t-interval")
	mustCompose("compose:interleave", dynamics.ComposeInterleave, "bernoulli", "roving")

	// Oracle properties: the enforceable values of Spec.Expect.
	mustProp := func(name string, p Property) {
		if err := r.RegisterProperty(name, p); err != nil {
			panic(err)
		}
	}
	mustProp(ExpectExplore, Property{
		Description: "the run covers the ring and keeps revisiting every node (perpetual exploration)",
		Check: func(in PropertyInput) PropertyResult {
			return PropertyResult{OK: in.ExploreViolation == "", Violation: in.ExploreViolation}
		},
	})
	mustProp(ExpectConfine, Property{
		Description: "the robots stay inside the theorem's distinct-node bound",
		Check: func(in PropertyInput) PropertyResult {
			limit := in.ConfineLimit
			if limit == 0 {
				limit = 3 // generic two-robot bound when the family declares none
			}
			if in.Distinct <= limit {
				return PropertyResult{OK: true, Outcome: "confined"}
			}
			return PropertyResult{
				Outcome:   "escaped",
				Violation: fmt.Sprintf("visited %d distinct nodes, theorem bound is %d", in.Distinct, limit),
			}
		},
	})
	mustProp(ExpectNone, Property{
		Description: "no claim enforced: the oracle only reports metrics",
		Check: func(PropertyInput) PropertyResult {
			return PropertyResult{OK: true}
		},
	})
}
