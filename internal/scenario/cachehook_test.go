package scenario

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// mapCache is a correct in-memory VerdictCache with call accounting.
type mapCache struct {
	mu            sync.Mutex
	m             map[string]Verdict
	hits, stores  int
	lookups       int
	storedWithErr int
}

func newMapCache() *mapCache { return &mapCache{m: map[string]Verdict{}} }

func (c *mapCache) Lookup(s Spec) (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	v, ok := c.m[s.ID()]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *mapCache) Store(s Spec, v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v.Err != "" {
		c.storedWithErr++
	}
	c.stores++
	c.m[s.ID()] = v
}

func campaignReport(t *testing.T, cfg CampaignConfig) string {
	t.Helper()
	agg, err := NewAggregate(cfg)
	if err != nil {
		t.Fatalf("NewAggregate: %v", err)
	}
	total := 0
	for v, serr := range StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign: %v", serr)
		}
		agg.Add(v)
		total++
	}
	var buf bytes.Buffer
	if err := agg.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	return buf.String()
}

// TestCampaignCacheByteIdentity pins the cache hook's contract: a
// campaign with a cache attached renders the byte-identical report of
// the uncached run — on the cold pass (all misses, everything stored)
// and on the warm pass (all hits, zero engine executions) — for both
// engine paths.
func TestCampaignCacheByteIdentity(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		base := CampaignConfig{
			Generator:       "boundary",
			Gen:             GenConfig{MaxRing: 8},
			Count:           32,
			Seeds:           []uint64{3},
			Workers:         4,
			DisableLockstep: scalar,
		}
		want := campaignReport(t, base)

		cold := base
		mc := newMapCache()
		cold.Cache = mc
		if got := campaignReport(t, cold); got != want {
			t.Fatalf("scalar=%v: cold cached report diverged:\n--- cached ---\n%s\n--- direct ---\n%s", scalar, got, want)
		}
		if mc.stores == 0 {
			t.Fatalf("scalar=%v: cold pass stored nothing", scalar)
		}
		if mc.storedWithErr != 0 {
			t.Fatalf("scalar=%v: %d error verdicts offered to Store", scalar, mc.storedWithErr)
		}

		warm := base
		warm.Cache = mc
		storesBefore := mc.stores
		if got := campaignReport(t, warm); got != want {
			t.Fatalf("scalar=%v: warm cached report diverged from direct bytes", scalar)
		}
		if mc.stores != storesBefore {
			t.Fatalf("scalar=%v: warm pass ran %d engine executions, want 0", scalar, mc.stores-storesBefore)
		}
		if mc.hits != 32 {
			t.Fatalf("scalar=%v: warm pass hit %d of 32", scalar, mc.hits)
		}
	}
}

// TestCampaignCacheNeverStoresCancelled: a cancelled campaign yields
// error-carrying verdicts for the unexecuted tail; none of them may be
// offered to Store (a cached cancellation would poison later runs).
func TestCampaignCacheNeverStoresCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mc := newMapCache()
	cfg := CampaignConfig{
		Generator: "boundary",
		Gen:       GenConfig{MaxRing: 8},
		Count:     16,
		Seeds:     []uint64{3},
		Cache:     mc,
	}
	for range StreamCampaign(ctx, cfg) {
	}
	if mc.storedWithErr != 0 {
		t.Fatalf("%d cancelled verdicts reached Store", mc.storedWithErr)
	}
}
