package scenario

import (
	"context"
	"fmt"
	"io"
	"iter"
	"runtime"

	"pef/internal/harness"
	"pef/internal/metrics"
	"pef/internal/prng"
)

// CampaignConfig parameterizes a generated-scenario sweep: the generator,
// its parameter-space bounds, how many scenarios each generator seed
// contributes, and the worker pool they shard across.
type CampaignConfig struct {
	// Generator names the sampler (see Generators); empty means "uniform".
	Generator string
	// Gen bounds the sampled parameter space.
	Gen GenConfig
	// Count is the number of scenarios generated per seed; values < 1
	// mean 1.
	Count int
	// Seeds lists the generator seeds; empty means {1}.
	Seeds []uint64
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// Resume, when non-nil, continues a checkpointed campaign: the
	// generator, bounds, count and seeds are adopted from the checkpoint
	// (conflicting non-zero overrides are rejected), the checkpointed
	// prefix of the canonical stream is skipped, and reports fold the
	// checkpoint's aggregate back in — byte-identical to the
	// uninterrupted run.
	Resume *Checkpoint
	// OnVerdict, when non-nil, streams executed verdicts in canonical
	// order (seeds in the order given, stream index inside each seed),
	// independent of the worker count. On cancellation only the executed
	// prefix is streamed; consume Campaign.Verdicts for everything.
	OnVerdict func(Verdict)
}

// resolved fills the config defaults and adopts a Resume checkpoint's
// campaign identity, rejecting conflicting explicit overrides.
func (cfg CampaignConfig) resolved() (CampaignConfig, error) {
	if r := cfg.Resume; r != nil {
		if err := r.validate(); err != nil {
			return cfg, err
		}
		if cfg.Generator != "" && cfg.Generator != r.Generator {
			return cfg, fmt.Errorf("scenario: resume generator %q conflicts with checkpoint %q", cfg.Generator, r.Generator)
		}
		if cfg.Count > 0 && cfg.Count != r.Count {
			return cfg, fmt.Errorf("scenario: resume count %d conflicts with checkpoint %d", cfg.Count, r.Count)
		}
		if len(cfg.Seeds) > 0 && !equalSeeds(cfg.Seeds, r.Seeds) {
			return cfg, fmt.Errorf("scenario: resume seeds %v conflict with checkpoint %v", cfg.Seeds, r.Seeds)
		}
		if cfg.Gen != (GenConfig{}) && cfg.Gen.withDefaults() != r.Gen {
			return cfg, fmt.Errorf("scenario: resume generator bounds %+v conflict with checkpoint %+v", cfg.Gen.withDefaults(), r.Gen)
		}
		cfg.Generator = r.Generator
		cfg.Count = r.Count
		cfg.Seeds = append([]uint64(nil), r.Seeds...)
		cfg.Gen = r.Gen
	}
	if cfg.Generator == "" {
		cfg.Generator = "uniform"
	}
	if cfg.Count < 1 {
		cfg.Count = 1
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1}
	}
	return cfg, nil
}

func equalSeeds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// specStream draws the campaign's canonical scenario sequence lazily:
// seeds in order, Count samples per seed, each seed's stream identical to
// Generate(generator, cfg, seed, count). Campaigns therefore never
// materialize the full spec slice — the pool feeds one window at a time.
type specStream struct {
	gen    Generator
	cfg    GenConfig
	seeds  []uint64
	count  int
	seed   int // index into seeds of the current source
	inSeed int // samples already drawn from the current source
	src    *prng.Source
}

func newSpecStream(gen Generator, cfg GenConfig, seeds []uint64, count int) *specStream {
	return &specStream{gen: gen, cfg: cfg, seeds: seeds, count: count}
}

// next returns the following spec of the canonical sequence. Calling it
// more than len(seeds)*count times is a bug in the caller.
func (st *specStream) next() Spec {
	for st.src == nil || st.inSeed == st.count {
		if st.src != nil {
			st.seed++
		}
		if st.seed >= len(st.seeds) {
			panic("scenario: spec stream exhausted")
		}
		st.src = prng.NewSource(st.seeds[st.seed])
		st.inSeed = 0
	}
	st.inSeed++
	return st.gen.Sample(st.cfg, st.src)
}

// campaignWindow returns the pool window — and hence the size of the spec
// ring and the reorder buffer — for a worker count.
func campaignWindow(workers int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return 8 * workers
}

// StreamCampaign generates Count scenarios per seed and shards them
// across the harness worker pool, yielding one (verdict, error) pair per
// scenario in canonical order — byte-identical for any worker count. It
// is the bounded-memory core of the campaign subsystem: specs are fed
// lazily from the seeded samplers, at most O(workers) verdicts are ever
// buffered for reordering, and nothing is retained after a yield, so a
// million-scenario sweep holds whatever state the consumer keeps (an
// Aggregate, typically) and no more.
//
// Error semantics: a configuration failure (unknown generator, invalid
// bounds, checkpoint conflict) yields exactly one (zero Verdict, err)
// pair and stops. After a context cancellation, scenarios that never ran
// are still yielded — in order, with their identity-filled error verdict
// and err set to ctx.Err() — so consumers always see exactly
// Count × len(Seeds) pairs otherwise. Scenario-level failures are not
// stream errors: they arrive as OK=false or Err-carrying verdicts with a
// nil stream error, exactly like RunCampaign records them.
//
// When cfg.Resume is set the checkpointed prefix is skipped: the stream
// yields only the remaining scenarios; fold them into the checkpoint's
// Aggregate (see NewAggregate) to reproduce the full-campaign reports.
func StreamCampaign(ctx context.Context, cfg CampaignConfig) iter.Seq2[Verdict, error] {
	return func(yield func(Verdict, error) bool) {
		rcfg, err := cfg.resolved()
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		gen, err := NewGenerator(rcfg.Generator)
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		gcfg := rcfg.Gen.withDefaults()
		if err := gcfg.validate(); err != nil {
			yield(Verdict{}, err)
			return
		}
		total := rcfg.Count * len(rcfg.Seeds)
		skip := 0
		if rcfg.Resume != nil {
			skip = rcfg.Resume.Done
		}
		stream := newSpecStream(gen, gcfg, rcfg.Seeds, rcfg.Count)
		for i := 0; i < skip; i++ {
			stream.next() // replay the sampler past the checkpointed prefix
		}

		window := campaignWindow(rcfg.Workers)
		ring := make([]Spec, window)
		fed := 0
		for item := range harness.StreamPool(ctx, harness.PoolConfig[Verdict]{
			Total:   total - skip,
			Workers: rcfg.Workers,
			Window:  window,
			// Feed materializes spec i into its ring slot right before
			// dispatch; the pool guarantees Feed(i) happens-before Run(i)
			// and that the slot is not reused until job i was yielded.
			Feed: func(i int) {
				ring[i%window] = stream.next()
				fed = i + 1
			},
			Run: func(i int) Verdict {
				return Run(ring[i%window]) // Run recovers its own panics
			},
			// Placeholder runs after the dispatcher has exited (the pool
			// orders it after close(out)), so continuing the sampler for
			// never-fed indices is race-free.
			Placeholder: func(i int) Verdict {
				var s Spec
				if i < fed {
					s = ring[i%window]
				} else {
					s = stream.next()
				}
				return Verdict{ID: s.ID(), Spec: s, Expect: s.Expect, Outcome: "error", CoverTime: -1}
			},
			Cancelled: func(_ int, v Verdict, err error) Verdict {
				v.Err = fmt.Sprintf("scenario cancelled before running: %v", err)
				return v
			},
		}) {
			if !yield(item.R, item.Err) {
				return
			}
		}
	}
}

// Campaign is a completed sweep: the verdicts this process executed in
// canonical order, plus the resolved configuration that produced them.
// Every report derives from the aggregate fold alone, so campaign output
// is byte-identical for any worker count — and, for resumed campaigns,
// identical to the uninterrupted run's.
type Campaign struct {
	// Generator, Gen, Count and Seeds echo the resolved configuration.
	Generator string
	Gen       GenConfig
	Count     int
	Seeds     []uint64
	// Verdicts holds one verdict per scenario this process ran, in
	// canonical order. For resumed campaigns it covers only the portion
	// after the checkpoint; reports and counters below always include
	// the checkpointed prefix.
	Verdicts []Verdict

	// resumed is the checkpoint the campaign continued from, nil for
	// fresh runs.
	resumed *Checkpoint
	// agg caches the verdict fold behind every accessor below; it is
	// built lazily on first use. Mutating Verdicts after that first use
	// is unsupported (reports would keep serving the cached fold).
	agg *Aggregate
}

// RunCampaign generates Count scenarios per seed and shards them across
// the harness worker pool, checking every one against the property
// oracle. It is StreamCampaign collected into a Campaign; use the stream
// (plus NewAggregate) directly when the verdict slice of a huge sweep
// should not be held in memory.
//
// Scenario-level failures (panics, invalid samples) become error
// verdicts; RunCampaign itself fails only on an unknown generator, an
// inconsistent Resume checkpoint, or a cancelled context.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	rcfg, err := cfg.resolved()
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Generator: rcfg.Generator,
		Gen:       rcfg.Gen.withDefaults(),
		Count:     rcfg.Count,
		Seeds:     rcfg.Seeds,
		resumed:   rcfg.Resume,
	}
	var ctxErr error
	for v, err := range StreamCampaign(ctx, rcfg) {
		if err != nil {
			if v.ID == "" {
				return nil, err // configuration failure: no stream ran
			}
			ctxErr = err // cancellation: identity-filled verdict, keep collecting
		}
		c.Verdicts = append(c.Verdicts, v)
		if err == nil && rcfg.OnVerdict != nil {
			rcfg.OnVerdict(v)
		}
	}
	return c, ctxErr
}

// aggregate folds the campaign (resumed prefix plus collected verdicts)
// into an Aggregate, computed once and cached: every accessor below is a
// cheap read after the first.
func (c *Campaign) aggregate() *Aggregate {
	if c.agg != nil {
		return c.agg
	}
	a, err := NewAggregate(CampaignConfig{
		Generator: c.Generator,
		Gen:       c.Gen,
		Count:     c.Count,
		Seeds:     c.Seeds,
		Resume:    c.resumed,
	})
	if err != nil {
		// The campaign was built from a validated configuration; a fold
		// failure is a programming error, not a user input.
		panic(fmt.Sprintf("scenario: campaign aggregate: %v", err))
	}
	for _, v := range c.Verdicts {
		a.Add(v)
	}
	c.agg = a
	return a
}

// Checkpoint snapshots the campaign — including any resumed prefix — as a
// resumable checkpoint.
func (c *Campaign) Checkpoint() *Checkpoint { return c.aggregate().Checkpoint() }

// OKCount returns the number of verdicts whose expectation holds,
// including a resumed checkpoint's prefix.
func (c *Campaign) OKCount() int { return c.aggregate().OKCount() }

// Total returns the number of scenarios the campaign accounts for,
// including a resumed checkpoint's prefix.
func (c *Campaign) Total() int { return c.aggregate().Done() }

// Violations returns the verdicts that failed their predicate or errored,
// in canonical order, including a resumed checkpoint's prefix.
func (c *Campaign) Violations() []Verdict { return c.aggregate().Violations() }

// FamilyStats aggregates a campaign per dynamics family.
type FamilyStats struct {
	Family string `json:"family"`
	// Runs and OK count the family's scenarios and how many satisfied
	// their expectation.
	Runs int `json:"runs"`
	OK   int `json:"ok"`
	// ByExpect counts runs per enforced expectation, in canonical order
	// (explore, confine, none).
	Explore int `json:"explore,omitempty"`
	Confine int `json:"confine,omitempty"`
	None    int `json:"none,omitempty"`
}

// FamilyTable returns per-family aggregates in first-seen (canonical)
// order.
func (c *Campaign) FamilyTable() []FamilyStats { return c.aggregate().FamilyTable() }

// Sweep folds the campaign into the shared metrics aggregate: per-family
// verdict counts via scalars plus cover-time and revisit-gap series for
// the explored scenarios.
func (c *Campaign) Sweep() *metrics.Sweep { return c.aggregate().Sweep() }

// WriteReport renders the campaign as a human-readable report: the family
// aggregate, the scalar spread, and one section per violation.
func (c *Campaign) WriteReport(w io.Writer) error { return c.aggregate().WriteReport(w) }

// WriteJSON renders the versioned campaign document.
func (c *Campaign) WriteJSON(w io.Writer) error { return c.aggregate().WriteJSON(w) }
