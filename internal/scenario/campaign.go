package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"pef/internal/harness"
	"pef/internal/metrics"
)

// CampaignConfig parameterizes a generated-scenario sweep: the generator,
// its parameter-space bounds, how many scenarios each generator seed
// contributes, and the worker pool they shard across.
type CampaignConfig struct {
	// Generator names the sampler (see Generators); empty means "uniform".
	Generator string
	// Gen bounds the sampled parameter space.
	Gen GenConfig
	// Count is the number of scenarios generated per seed; values < 1
	// mean 1.
	Count int
	// Seeds lists the generator seeds; empty means {1}.
	Seeds []uint64
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// OnVerdict, when non-nil, streams verdicts in canonical order
	// (seeds in the order given, stream index inside each seed),
	// independent of the worker count. On cancellation only the solid
	// prefix is streamed; consume Campaign.Verdicts for everything that
	// still finished.
	OnVerdict func(Verdict)
}

// Campaign is a completed sweep: the generated specs and their verdicts in
// canonical order, plus the configuration that produced them. Every report
// derives from the verdict slice alone, so campaign output is
// byte-identical for any worker count.
type Campaign struct {
	// Generator, Count and Seeds echo the resolved configuration.
	Generator string
	Count     int
	Seeds     []uint64
	// Verdicts holds one verdict per generated scenario in canonical
	// order.
	Verdicts []Verdict
}

// RunCampaign generates Count scenarios per seed and shards them across
// the harness worker pool, checking every one against the property oracle.
// Scenario-level failures (panics, invalid samples) become error verdicts;
// RunCampaign itself fails only on an unknown generator or a cancelled
// context.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	name := cfg.Generator
	if name == "" {
		name = "uniform"
	}
	count := cfg.Count
	if count < 1 {
		count = 1
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	var specs []Spec
	for _, seed := range seeds {
		batch, err := Generate(name, cfg.Gen, seed, count)
		if err != nil {
			return nil, err
		}
		specs = append(specs, batch...)
	}
	verdicts, err := harness.RunPool(ctx, harness.PoolConfig[Verdict]{
		Total:   len(specs),
		Workers: cfg.Workers,
		Run: func(i int) Verdict {
			return Run(specs[i]) // Run recovers its own panics
		},
		Placeholder: func(i int) Verdict {
			return Verdict{ID: specs[i].ID(), Spec: specs[i], Expect: specs[i].Expect, Outcome: "error", CoverTime: -1}
		},
		Cancelled: func(_ int, v Verdict, err error) Verdict {
			v.Err = fmt.Sprintf("scenario cancelled before running: %v", err)
			return v
		},
		OnResult: func(_ int, v Verdict) {
			if cfg.OnVerdict != nil {
				cfg.OnVerdict(v)
			}
		},
	})
	c := &Campaign{Generator: name, Count: count, Seeds: seeds, Verdicts: verdicts}
	return c, err
}

// OKCount returns the number of verdicts whose expectation holds.
func (c *Campaign) OKCount() int {
	n := 0
	for _, v := range c.Verdicts {
		if v.OK && v.Err == "" {
			n++
		}
	}
	return n
}

// Violations returns the verdicts that failed their predicate or errored,
// in canonical order.
func (c *Campaign) Violations() []Verdict {
	var out []Verdict
	for _, v := range c.Verdicts {
		if !v.OK || v.Err != "" {
			out = append(out, v)
		}
	}
	return out
}

// FamilyStats aggregates a campaign per dynamics family.
type FamilyStats struct {
	Family string `json:"family"`
	// Runs and OK count the family's scenarios and how many satisfied
	// their expectation.
	Runs int `json:"runs"`
	OK   int `json:"ok"`
	// ByExpect counts runs per enforced expectation, in canonical order
	// (explore, confine, none).
	Explore int `json:"explore,omitempty"`
	Confine int `json:"confine,omitempty"`
	None    int `json:"none,omitempty"`
}

// FamilyTable returns per-family aggregates in first-seen (canonical)
// order.
func (c *Campaign) FamilyTable() []FamilyStats {
	idx := map[string]int{}
	var stats []FamilyStats
	for _, v := range c.Verdicts {
		fam := v.Spec.Family
		i, ok := idx[fam]
		if !ok {
			i = len(stats)
			idx[fam] = i
			stats = append(stats, FamilyStats{Family: fam})
		}
		stats[i].Runs++
		if v.OK && v.Err == "" {
			stats[i].OK++
		}
		switch v.Expect {
		case ExpectExplore:
			stats[i].Explore++
		case ExpectConfine:
			stats[i].Confine++
		default:
			stats[i].None++
		}
	}
	return stats
}

// Sweep folds the campaign into the shared metrics aggregate: per-family
// verdict counts via scalars plus cover-time and revisit-gap series for
// the explored scenarios.
func (c *Campaign) Sweep() *metrics.Sweep {
	sw := metrics.NewSweep()
	for _, v := range c.Verdicts {
		if v.Err != "" {
			continue // errored/cancelled scenarios carry no metrics
		}
		fam := v.Spec.Family
		if v.CoverTime >= 0 {
			sw.RecordScalar(fam, "cover", v.CoverTime)
		}
		if v.Outcome == "explored" || v.Outcome == "partial" {
			sw.RecordScalar(fam, "maxGap", v.MaxGap)
		}
		sw.RecordScalar(fam, "distinct", v.Distinct)
	}
	return sw
}

// WriteReport renders the campaign as a human-readable report: the family
// aggregate, the scalar spread, and one section per violation.
func (c *Campaign) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Scenario campaign (generator=%s, count=%d, seeds=%d)\n",
		c.Generator, c.Count, len(c.Seeds)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n## Families (%d scenarios, %d ok)\n\n", len(c.Verdicts), c.OKCount()); err != nil {
		return err
	}
	ft := metrics.NewTable("family", "runs", "ok", "explore", "confine", "none")
	for _, fs := range c.FamilyTable() {
		ft.AddRow(fs.Family, fs.Runs, fs.OK, fs.Explore, fs.Confine, fs.None)
	}
	if err := ft.Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n## Scalar metrics\n\n"); err != nil {
		return err
	}
	if err := c.Sweep().ScalarTable().Render(w); err != nil {
		return err
	}
	violations := c.Violations()
	for _, v := range violations {
		if _, err := fmt.Fprintf(w, "\n### Violation: %s\n", v.ID); err != nil {
			return err
		}
		detail := v.Violation
		if v.Err != "" {
			detail = v.Err
		}
		if _, err := fmt.Fprintf(w, "\nexpect=%s outcome=%s covered=%d/%d maxGap=%d distinct=%d: %s\n",
			v.Expect, v.Outcome, v.Covered, v.Spec.Ring, v.MaxGap, v.Distinct, detail); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n---\n%d/%d scenarios satisfy the paper's predicates.\n",
		len(c.Verdicts)-len(violations), len(c.Verdicts))
	return err
}

// jsonCampaign is the versioned machine-readable campaign document (the
// BENCH_*.json payload of scenario sweeps). It deliberately omits the
// worker count so reports are byte-identical for any -workers value.
type jsonCampaign struct {
	Version    int                 `json:"version"`
	Generator  string              `json:"generator"`
	Count      int                 `json:"count"`
	Seeds      []uint64            `json:"seeds"`
	Total      int                 `json:"total"`
	OK         int                 `json:"ok"`
	OKRate     float64             `json:"okRate"`
	Families   []FamilyStats       `json:"families"`
	Scalars    []metrics.ScalarRow `json:"scalars"`
	Violations []Verdict           `json:"violations,omitempty"`
}

// WriteJSON renders the versioned campaign document.
func (c *Campaign) WriteJSON(w io.Writer) error {
	doc := jsonCampaign{
		Version:    Version,
		Generator:  c.Generator,
		Count:      c.Count,
		Seeds:      c.Seeds,
		Total:      len(c.Verdicts),
		OK:         c.OKCount(),
		Families:   c.FamilyTable(),
		Scalars:    c.Sweep().ScalarRows(),
		Violations: c.Violations(),
	}
	if doc.Total > 0 {
		doc.OKRate = float64(doc.OK) / float64(doc.Total)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
