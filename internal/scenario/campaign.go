package scenario

import (
	"context"
	"fmt"
	"io"
	"iter"
	"runtime"

	"pef/internal/harness"
	"pef/internal/metrics"
	"pef/internal/prng"
	"pef/internal/telemetry"
)

// CampaignConfig parameterizes a generated-scenario sweep: the generator,
// its parameter-space bounds, how many scenarios each generator seed
// contributes, the worker pool they shard across, and optionally which
// contiguous shard of the canonical stream this process runs.
type CampaignConfig struct {
	// Registry resolves family/algorithm/property names; nil means the
	// process default.
	Registry *Registry
	// Generator names the sampler (see Generators); empty means "uniform".
	Generator string
	// Gen bounds the sampled parameter space.
	Gen GenConfig
	// Count is the number of scenarios generated per seed; values < 1
	// mean 1.
	Count int
	// Seeds lists the generator seeds; empty means {1}.
	Seeds []uint64
	// Workers bounds the worker pool; values < 1 mean GOMAXPROCS.
	Workers int
	// ShardIndex and ShardCount select one contiguous block of the
	// canonical stream for multi-process campaigns: shard i of c runs
	// scenarios [i·total/c, (i+1)·total/c). ShardCount 0 (or 1 with
	// index 0) means the whole stream. Per-shard aggregates written as
	// checkpoints merge back into the single-process report via
	// MergeCheckpoints.
	ShardIndex, ShardCount int
	// Resume, when non-nil, continues a checkpointed campaign: the
	// generator, bounds, count, seeds and shard region are adopted from
	// the checkpoint (conflicting non-zero overrides are rejected), the
	// checkpointed prefix of the region is skipped, and reports fold the
	// checkpoint's aggregate back in — byte-identical to the
	// uninterrupted run.
	Resume *Checkpoint
	// OnVerdict, when non-nil, streams executed verdicts in canonical
	// order (seeds in the order given, stream index inside each seed),
	// independent of the worker count. On cancellation only the executed
	// prefix is streamed; consume Campaign.Verdicts for everything.
	OnVerdict func(Verdict)
	// DisableLockstep forces every scenario onto the scalar oracle — the
	// escape hatch for the bit-parallel lane engine. Off (the default),
	// shape-aligned eligible scenarios advance up to 64 seeds per word;
	// verdicts and reports are byte-identical either way.
	DisableLockstep bool
	// LaneWidth is the number of consecutive scenarios batched into one
	// pool job, within which shape-aligned runs share lockstep engine
	// instances. Values < 1 mean 1024 — wide enough that sampled shapes
	// recur tens of times per block, which is what amortizes the engine's
	// per-round circuit (64-scenario blocks of a diverse sampler average
	// one to two lanes per shape and gain nothing). Narrower widths give
	// finer work granularity for many-worker campaigns at the cost of lane
	// packing. Ignored when DisableLockstep is set (every job is then a
	// single scenario).
	LaneWidth int
	// Telemetry, when non-nil, instruments the whole campaign stack: the
	// worker pool, the oracle, the lockstep router and the simulators.
	// Purely observational — verdict streams and every report stay
	// byte-identical with or without it.
	Telemetry *Telemetry
	// Cache, when non-nil, intercepts execution per spec: looked-up
	// verdicts replace engine runs, freshly computed clean verdicts are
	// offered to Store. Streams and reports stay byte-identical with any
	// correct cache attached, because per-spec verdicts are already
	// invariant under engine blocking (lockstep vs scalar, any lane
	// width) and a cache only substitutes a spec's own stored verdict.
	Cache VerdictCache
	// Trace, when non-nil, receives structured campaign lifecycle events
	// (campaign-start, block-retired) as JSONL. Events are emitted from
	// the single-threaded emission path with monotonic sequence numbers
	// and no wall clocks, so a trace file is byte-identical for any
	// worker count.
	Trace *telemetry.Tracer
}

// VerdictCache is the campaign-side face of a verdict store (pefserve's
// content-addressed cache implements it). Lookup returns the verdict of
// a previously executed identical spec; Store offers a freshly computed
// one. Both are called concurrently from pool workers and must be safe
// for concurrent use. Implementations must return verdicts exactly as
// stored — the campaign trusts them byte for byte. Verdicts carrying an
// execution error (Err != "", which includes cancellations) are never
// offered to Store.
type VerdictCache interface {
	Lookup(s Spec) (Verdict, bool)
	Store(s Spec, v Verdict)
}

// registry resolves the effective registry of the config.
func (cfg CampaignConfig) registry() *Registry {
	if cfg.Registry != nil {
		return cfg.Registry
	}
	return DefaultRegistry()
}

// resolved fills the config defaults, validates the shard selection, and
// adopts a Resume checkpoint's campaign identity, rejecting conflicting
// explicit overrides.
func (cfg CampaignConfig) resolved() (CampaignConfig, error) {
	if cfg.ShardCount < 0 || cfg.ShardIndex < 0 {
		return cfg, fmt.Errorf("scenario: negative shard selection %d/%d", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.ShardCount > 0 && cfg.ShardIndex >= cfg.ShardCount {
		return cfg, fmt.Errorf("scenario: shard index %d outside shard count %d", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.ShardCount == 0 && cfg.ShardIndex > 0 {
		return cfg, fmt.Errorf("scenario: shard index %d without a shard count", cfg.ShardIndex)
	}
	if r := cfg.Resume; r != nil {
		if err := r.validate(); err != nil {
			return cfg, err
		}
		if cfg.ShardCount > 0 {
			return cfg, fmt.Errorf("scenario: resume adopts the checkpoint's shard region; drop the explicit shard selection")
		}
		if cfg.Generator != "" && cfg.Generator != r.Generator {
			return cfg, fmt.Errorf("scenario: resume generator %q conflicts with checkpoint %q", cfg.Generator, r.Generator)
		}
		if cfg.Count > 0 && cfg.Count != r.Count {
			return cfg, fmt.Errorf("scenario: resume count %d conflicts with checkpoint %d", cfg.Count, r.Count)
		}
		if len(cfg.Seeds) > 0 && !equalSeeds(cfg.Seeds, r.Seeds) {
			return cfg, fmt.Errorf("scenario: resume seeds %v conflict with checkpoint %v", cfg.Seeds, r.Seeds)
		}
		if cfg.Gen != (GenConfig{}) && cfg.Gen.withDefaults() != r.Gen {
			return cfg, fmt.Errorf("scenario: resume generator bounds %+v conflict with checkpoint %+v", cfg.Gen.withDefaults(), r.Gen)
		}
		cfg.Generator = r.Generator
		cfg.Count = r.Count
		cfg.Seeds = append([]uint64(nil), r.Seeds...)
		cfg.Gen = r.Gen
	}
	if cfg.Generator == "" {
		cfg.Generator = "uniform"
	}
	if cfg.Count < 1 {
		cfg.Count = 1
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []uint64{1}
	}
	if total := cfg.Count * len(cfg.Seeds); cfg.ShardCount > total {
		// An empty shard would checkpoint a [0, 0) block, which is
		// indistinguishable from a pre-shard whole-campaign checkpoint.
		return cfg, fmt.Errorf("scenario: %d shards for %d scenarios (every shard must be non-empty)", cfg.ShardCount, total)
	}
	if cfg.LaneWidth < 0 {
		return cfg, fmt.Errorf("scenario: negative lane width %d", cfg.LaneWidth)
	}
	if cfg.LaneWidth == 0 {
		cfg.LaneWidth = 1024
	}
	if cfg.DisableLockstep {
		cfg.LaneWidth = 1
	}
	return cfg, nil
}

// region returns the [start, end) block of the canonical stream this
// resolved config is responsible for, and the position to resume from
// inside it (== start for fresh runs).
func (cfg CampaignConfig) region() (start, from, end int) {
	total := cfg.Count * len(cfg.Seeds)
	if r := cfg.Resume; r != nil {
		return r.Start, r.Start + r.Done, r.effEnd(total)
	}
	if cfg.ShardCount > 1 {
		start = cfg.ShardIndex * total / cfg.ShardCount
		end = (cfg.ShardIndex + 1) * total / cfg.ShardCount
		return start, start, end
	}
	return 0, 0, total
}

func equalSeeds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// specStream draws the campaign's canonical scenario sequence lazily:
// seeds in order, Count samples per seed, each seed's stream identical to
// Generate(generator, cfg, seed, count). Campaigns therefore never
// materialize the full spec slice — the pool feeds one window at a time.
type specStream struct {
	reg    *Registry
	gen    Generator
	cfg    GenConfig
	seeds  []uint64
	count  int
	seed   int // index into seeds of the current source
	inSeed int // samples already drawn from the current source
	src    *prng.Source
}

func newSpecStream(reg *Registry, gen Generator, cfg GenConfig, seeds []uint64, count int) *specStream {
	return &specStream{reg: reg, gen: gen, cfg: cfg, seeds: seeds, count: count}
}

// next returns the following spec of the canonical sequence. Calling it
// more than len(seeds)*count times is a bug in the caller.
func (st *specStream) next() Spec {
	for st.src == nil || st.inSeed == st.count {
		if st.src != nil {
			st.seed++
		}
		if st.seed >= len(st.seeds) {
			panic("scenario: spec stream exhausted")
		}
		st.src = prng.NewSource(st.seeds[st.seed])
		st.inSeed = 0
	}
	st.inSeed++
	return st.gen.Sample(st.reg, st.cfg, st.src)
}

// campaignWindow returns the pool window — and hence the size of the spec
// ring and the reorder buffer — for a worker count.
func campaignWindow(workers int) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return 8 * workers
}

// StreamCampaign generates Count scenarios per seed and shards them
// across the harness worker pool, yielding one (verdict, error) pair per
// scenario in canonical order — byte-identical for any worker count. It
// is the bounded-memory core of the campaign subsystem: specs are fed
// lazily from the seeded samplers, at most O(workers) verdicts are ever
// buffered for reordering, and nothing is retained after a yield, so a
// million-scenario sweep holds whatever state the consumer keeps (an
// Aggregate, typically) and no more.
//
// Error semantics: a configuration failure (unknown generator, invalid
// bounds, checkpoint conflict) yields exactly one (zero Verdict, err)
// pair and stops. After a context cancellation, scenarios that never ran
// are still yielded — in order, with their identity-filled error verdict
// and err set to ctx.Err() — so consumers always see exactly one pair per
// scenario of the selected region otherwise. Scenario-level failures are
// not stream errors: they arrive as OK=false or Err-carrying verdicts
// with a nil stream error, exactly like RunCampaign records them.
//
// When cfg.Resume is set the checkpointed prefix is skipped: the stream
// yields only the remaining scenarios; fold them into the checkpoint's
// Aggregate (see NewAggregate) to reproduce the full-campaign reports.
// When a shard is selected, only that contiguous block streams.
func StreamCampaign(ctx context.Context, cfg CampaignConfig) iter.Seq2[Verdict, error] {
	return func(yield func(Verdict, error) bool) {
		rcfg, err := cfg.resolved()
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		reg := rcfg.registry()
		gen, err := NewGenerator(rcfg.Generator)
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		gcfg := rcfg.Gen.withDefaults()
		if err := gcfg.validate(reg); err != nil {
			yield(Verdict{}, err)
			return
		}
		_, from, end := rcfg.region()
		stream := newSpecStream(reg, gen, gcfg, rcfg.Seeds, rcfg.Count)
		for i := 0; i < from; i++ {
			stream.next() // replay the sampler past the skipped prefix
		}
		// Every field is resolution-level (no worker count, no clock), so
		// the trace prefix is identical for any pool configuration.
		rcfg.Trace.Emit("campaign-start", map[string]any{
			"generator": rcfg.Generator,
			"count":     rcfg.Count,
			"seeds":     len(rcfg.Seeds),
			"from":      from,
			"end":       end,
		})

		streamBlocks(ctx, rcfg, reg, stream.next, end-from, yield)
	}
}

// StreamSpecs runs an explicit spec list through the campaign engine —
// the same worker pool, lane blocking, cache and trace path as
// StreamCampaign, minus the seeded sampler — yielding one (verdict,
// error) pair per spec in input order, byte-identical for any worker
// count and lane width. It is the steering hook of the coverage-guided
// searcher: generated-then-mutated spec blocks run here without round-
// tripping through a Generator. The sampler-stream fields of cfg
// (Generator, Gen, Count, Seeds, the shard selection and Resume) are
// ignored; error semantics otherwise match StreamCampaign.
func StreamSpecs(ctx context.Context, cfg CampaignConfig, specs []Spec) iter.Seq2[Verdict, error] {
	return func(yield func(Verdict, error) bool) {
		cfg.Generator, cfg.Gen = "", GenConfig{}
		cfg.Count, cfg.Seeds = 0, nil
		cfg.ShardIndex, cfg.ShardCount = 0, 0
		cfg.Resume = nil
		rcfg, err := cfg.resolved()
		if err != nil {
			yield(Verdict{}, err)
			return
		}
		if len(specs) == 0 {
			return
		}
		pos := 0
		next := func() Spec {
			s := specs[pos]
			pos++
			return s
		}
		streamBlocks(ctx, rcfg, rcfg.registry(), next, len(specs), yield)
	}
}

// streamBlocks shards the next-supplied spec sequence across the worker
// pool in LaneWidth blocks and yields verdicts in canonical (input)
// order — the shared engine core behind StreamCampaign's lazy sampler
// streams and StreamSpecs' explicit lists.
func streamBlocks(ctx context.Context, rcfg CampaignConfig, reg *Registry, next func() Spec, total int, yield func(Verdict, error) bool) {
	// Jobs are blocks of LaneWidth consecutive specs of the canonical
	// stream (1 when lockstep is disabled): the block is the unit the
	// lane engine packs seed lanes from, and flattening block verdicts
	// in job order reproduces the canonical per-spec stream exactly.
	width := rcfg.LaneWidth
	jobs := (total + width - 1) / width
	blockLen := func(i int) int {
		if i == jobs-1 {
			return total - i*width
		}
		return width
	}
	window := campaignWindow(rcfg.Workers)
	ring := make([][]Spec, window)
	for i := range ring {
		ring[i] = make([]Spec, 0, width)
	}
	fed := 0
	for item := range harness.StreamPool(ctx, harness.PoolConfig[[]Verdict]{
		Total:   jobs,
		Workers: rcfg.Workers,
		Window:  window,
		Metrics: rcfg.Telemetry.poolMetrics(),
		// Feed materializes job i's spec block into its ring slot right
		// before dispatch; the pool guarantees Feed(i) happens-before
		// Run(i) and that the slot is not reused until job i was yielded.
		Feed: func(i int) {
			block := ring[i%window][:0]
			for j := 0; j < blockLen(i); j++ {
				block = append(block, next())
			}
			ring[i%window] = block
			fed = i + 1
		},
		Run: func(i int) []Verdict {
			block := ring[i%window]
			opts := RunOptions{Registry: reg, Telemetry: rcfg.Telemetry}
			if rcfg.Cache == nil {
				return runSpecs(ctx, block, opts, rcfg.DisableLockstep)
			}
			// Cached path: serve hits from the store and run only the
			// miss subset as its own block. Safe for byte-identity:
			// per-spec verdicts are invariant under blocking, so the
			// miss sub-block computes exactly the bytes the full block
			// would have.
			vs := make([]Verdict, len(block))
			var misses []Spec
			var missAt []int
			for j, s := range block {
				if v, ok := rcfg.Cache.Lookup(s); ok {
					vs[j] = v
					continue
				}
				misses = append(misses, s)
				missAt = append(missAt, j)
			}
			if len(misses) > 0 {
				for j, v := range runSpecs(ctx, misses, opts, rcfg.DisableLockstep) {
					if v.Err == "" {
						rcfg.Cache.Store(misses[j], v)
					}
					vs[missAt[j]] = v
				}
			}
			return vs
		},
		// Placeholder runs after the dispatcher has exited (the pool
		// orders it after close(out)), so continuing the sampler for
		// never-fed indices is race-free.
		Placeholder: func(i int) []Verdict {
			var block []Spec
			if i < fed {
				block = ring[i%window]
			} else {
				for j := 0; j < blockLen(i); j++ {
					block = append(block, next())
				}
			}
			vs := make([]Verdict, len(block))
			for j, s := range block {
				vs[j] = Verdict{ID: s.ID(), Spec: s, Expect: s.Expect, Outcome: "error", CoverTime: -1}
			}
			return vs
		},
		Cancelled: func(_ int, vs []Verdict, err error) []Verdict {
			for j := range vs {
				vs[j].Err = fmt.Sprintf("scenario cancelled before running: %v", err)
			}
			return vs
		},
	}) {
		for _, v := range item.R {
			if !yield(v, item.Err) {
				return
			}
		}
		// Blocks retire in index order on this single-threaded path, so
		// the event sequence is deterministic for any worker count.
		rcfg.Trace.Emit("block-retired", map[string]any{
			"block": item.I,
			"specs": len(item.R),
		})
	}
}

// runSpecs executes one spec block through the configured engine path:
// the lockstep router by default, the scalar oracle under
// DisableLockstep. Verdict bytes are identical either way.
func runSpecs(ctx context.Context, block []Spec, opts RunOptions, scalar bool) []Verdict {
	if scalar {
		vs := make([]Verdict, len(block))
		for j, s := range block {
			v, rerr := RunWith(ctx, s, opts)
			if rerr != nil && v.Err == "" {
				v.Err = rerr.Error()
				v.OK = false
			}
			vs[j] = v
		}
		return vs
	}
	return RunBlock(ctx, block, opts)
}

// Campaign is a completed sweep: the verdicts this process executed in
// canonical order, plus the resolved configuration that produced them.
// Every report derives from the aggregate fold alone, so campaign output
// is byte-identical for any worker count — and, for resumed campaigns,
// identical to the uninterrupted run's.
type Campaign struct {
	// Generator, Gen, Count and Seeds echo the resolved configuration.
	Generator string
	Gen       GenConfig
	Count     int
	Seeds     []uint64
	// ShardIndex and ShardCount echo the shard selection (0/0 for whole
	// campaigns).
	ShardIndex, ShardCount int
	// Verdicts holds one verdict per scenario this process ran, in
	// canonical order. For resumed campaigns it covers only the portion
	// after the checkpoint; reports and counters below always include
	// the checkpointed prefix.
	Verdicts []Verdict

	// registry is the resolver the campaign ran under.
	registry *Registry
	// resumed is the checkpoint the campaign continued from, nil for
	// fresh runs.
	resumed *Checkpoint
	// agg caches the verdict fold behind every accessor below; it is
	// built lazily on first use. Mutating Verdicts after that first use
	// is unsupported (reports would keep serving the cached fold).
	agg *Aggregate
}

// RunCampaign generates Count scenarios per seed and shards them across
// the harness worker pool, checking every one against the property
// oracle. It is StreamCampaign collected into a Campaign; use the stream
// (plus NewAggregate) directly when the verdict slice of a huge sweep
// should not be held in memory.
//
// Scenario-level failures (panics, invalid samples) become error
// verdicts; RunCampaign itself fails only on an unknown generator, an
// inconsistent Resume checkpoint, or a cancelled context.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	rcfg, err := cfg.resolved()
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		Generator:  rcfg.Generator,
		Gen:        rcfg.Gen.withDefaults(),
		Count:      rcfg.Count,
		Seeds:      rcfg.Seeds,
		ShardIndex: rcfg.ShardIndex,
		ShardCount: rcfg.ShardCount,
		registry:   rcfg.Registry,
		resumed:    rcfg.Resume,
	}
	var ctxErr error
	for v, err := range StreamCampaign(ctx, rcfg) {
		if err != nil {
			if v.ID == "" {
				return nil, err // configuration failure: no stream ran
			}
			ctxErr = err // cancellation: identity-filled verdict, keep collecting
		}
		c.Verdicts = append(c.Verdicts, v)
		if err == nil && rcfg.OnVerdict != nil {
			rcfg.OnVerdict(v)
		}
	}
	return c, ctxErr
}

// aggregate folds the campaign (resumed prefix plus collected verdicts)
// into an Aggregate, computed once and cached: every accessor below is a
// cheap read after the first.
func (c *Campaign) aggregate() *Aggregate {
	if c.agg != nil {
		return c.agg
	}
	a, err := NewAggregate(CampaignConfig{
		Registry:   c.registry,
		Generator:  c.Generator,
		Gen:        c.Gen,
		Count:      c.Count,
		Seeds:      c.Seeds,
		ShardIndex: c.ShardIndex,
		ShardCount: c.ShardCount,
		Resume:     c.resumed,
	})
	if err != nil {
		// The campaign was built from a validated configuration; a fold
		// failure is a programming error, not a user input.
		panic(fmt.Sprintf("scenario: campaign aggregate: %v", err))
	}
	for _, v := range c.Verdicts {
		a.Add(v)
	}
	c.agg = a
	return a
}

// Checkpoint snapshots the campaign — including any resumed prefix — as a
// resumable checkpoint.
func (c *Campaign) Checkpoint() *Checkpoint { return c.aggregate().Checkpoint() }

// OKCount returns the number of verdicts whose expectation holds,
// including a resumed checkpoint's prefix.
func (c *Campaign) OKCount() int { return c.aggregate().OKCount() }

// Total returns the number of scenarios the campaign accounts for,
// including a resumed checkpoint's prefix.
func (c *Campaign) Total() int { return c.aggregate().Done() }

// Violations returns the verdicts that failed their predicate or errored,
// in canonical order, including a resumed checkpoint's prefix.
func (c *Campaign) Violations() []Verdict { return c.aggregate().Violations() }

// FamilyStats aggregates a campaign per dynamics family.
type FamilyStats struct {
	Family string `json:"family"`
	// Runs and OK count the family's scenarios and how many satisfied
	// their expectation.
	Runs int `json:"runs"`
	OK   int `json:"ok"`
	// ByExpect counts runs per enforced expectation, in canonical order
	// (explore, confine, none). Custom properties count under None.
	Explore int `json:"explore,omitempty"`
	Confine int `json:"confine,omitempty"`
	None    int `json:"none,omitempty"`
	// Errors counts runs that died before producing metrics (panics,
	// invalid samples, cancellations) — previously invisible: they only
	// surfaced inside the violation list.
	Errors int `json:"errors,omitempty"`
}

// FamilyTable returns per-family aggregates in first-seen (canonical)
// order.
func (c *Campaign) FamilyTable() []FamilyStats { return c.aggregate().FamilyTable() }

// Sweep folds the campaign into the shared metrics aggregate: per-family
// verdict counts via scalars plus cover-time and revisit-gap series for
// the explored scenarios.
func (c *Campaign) Sweep() *metrics.Sweep { return c.aggregate().Sweep() }

// WriteReport renders the campaign as a human-readable report: the family
// aggregate, the scalar spread, and one section per violation.
func (c *Campaign) WriteReport(w io.Writer) error { return c.aggregate().WriteReport(w) }

// WriteJSON renders the versioned campaign document.
func (c *Campaign) WriteJSON(w io.Writer) error { return c.aggregate().WriteJSON(w) }
