package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"pef/internal/metrics"
)

// Checkpoint is the serialized state of a partially executed campaign:
// the resolved configuration, how many scenarios of the canonical stream
// have been aggregated, and the complete aggregation state. Because the
// aggregate is merge-based, resuming from a checkpoint and finishing the
// stream reproduces the uninterrupted campaign's reports byte for byte —
// specs are never stored, only re-derived from (generator, seeds, count).
type Checkpoint struct {
	// Version is the scenario format version the checkpoint was written
	// under.
	Version int `json:"version"`
	// Generator, Gen, Count and Seeds pin the campaign the checkpoint
	// belongs to; Resume adopts them and rejects conflicting overrides.
	Generator string    `json:"generator"`
	Gen       GenConfig `json:"gen"`
	Count     int       `json:"count"`
	Seeds     []uint64  `json:"seeds"`
	// Start and End delimit the contiguous block of the canonical stream
	// this checkpoint's process is responsible for: [0, total) for whole
	// campaigns (End 0 is normalized to total, keeping pre-shard
	// checkpoints readable), the shard block for `-shard-index/-shard-
	// count` runs. MergeCheckpoints tiles completed blocks back into the
	// whole-campaign aggregate.
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// Done is the number of aggregated scenarios of the block: resuming
	// skips exactly Start+Done generated scenarios and finishes at End.
	Done int `json:"done"`
	// OK, Families, Scalars and Violations are the aggregate state.
	OK         int                   `json:"ok"`
	Families   []FamilyStats         `json:"families,omitempty"`
	Scalars    []metrics.ScalarState `json:"scalars,omitempty"`
	Violations []Verdict             `json:"violations,omitempty"`
	// Checksum is the hex SHA-256 of the checkpoint's content (the
	// indented JSON rendering with this field empty). Encode always
	// writes it; DecodeCheckpoint verifies it when present, so a
	// truncated or bit-flipped checkpoint fails loudly instead of
	// resuming a silently diverged campaign. Checkpoints from before the
	// field simply lack it and skip the check.
	Checksum string `json:"checksum,omitempty"`
}

// Checkpoint snapshots the aggregate as a resumable checkpoint. The
// snapshot is deep-copied: later Add calls on the aggregate never mutate
// an already-taken checkpoint, so periodic mid-stream checkpointing is
// safe.
func (a *Aggregate) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Version:    Version,
		Generator:  a.Generator,
		Gen:        a.Gen,
		Count:      a.Count,
		Seeds:      append([]uint64(nil), a.Seeds...),
		Start:      a.start,
		End:        a.end,
		Done:       a.done,
		OK:         a.ok,
		Families:   append([]FamilyStats(nil), a.families...),
		Scalars:    a.sweep.ScalarStates(), // already copies entry slices
		Violations: append([]Verdict(nil), a.violations...),
	}
}

// restore folds a checkpoint's prefix into a fresh aggregate whose
// configuration was already adopted from it.
func (a *Aggregate) restore(c *Checkpoint) error {
	if err := c.validate(); err != nil {
		return err
	}
	a.done = c.Done
	a.ok = c.OK
	a.families = append([]FamilyStats(nil), c.Families...)
	for i, fs := range a.families {
		a.familyIdx[fs.Family] = i
	}
	if err := a.sweep.RestoreScalars(c.Scalars); err != nil {
		return err
	}
	a.violations = append([]Verdict(nil), c.Violations...)
	return nil
}

// validate checks internal consistency so corrupt checkpoints fail before
// a resumed campaign silently diverges.
func (c *Checkpoint) validate() error {
	if c.Version != Version {
		return fmt.Errorf("scenario: unsupported checkpoint version %d (want %d)", c.Version, Version)
	}
	if c.Count < 1 || len(c.Seeds) == 0 {
		return fmt.Errorf("scenario: checkpoint lacks campaign shape (count=%d, %d seeds)", c.Count, len(c.Seeds))
	}
	total := c.Count * len(c.Seeds)
	end := c.effEnd(total)
	if c.Start < 0 || c.Start > end || end > total {
		return fmt.Errorf("scenario: checkpoint block [%d, %d) outside campaign of %d scenarios", c.Start, end, total)
	}
	if c.Done < 0 || c.Start+c.Done > end {
		return fmt.Errorf("scenario: checkpoint Done=%d outside its block [%d, %d)", c.Done, c.Start, end)
	}
	if c.OK < 0 || c.OK > c.Done {
		return fmt.Errorf("scenario: checkpoint OK=%d exceeds Done=%d", c.OK, c.Done)
	}
	runs := 0
	for _, fs := range c.Families {
		runs += fs.Runs
	}
	if runs != c.Done {
		return fmt.Errorf("scenario: checkpoint family runs %d disagree with Done=%d", runs, c.Done)
	}
	// The aggregate maintains len(violations) == done-ok by construction;
	// a truncated violation list would silently drop report sections after
	// resume.
	if len(c.Violations) != c.Done-c.OK {
		return fmt.Errorf("scenario: checkpoint carries %d violations for Done=%d OK=%d (want %d)",
			len(c.Violations), c.Done, c.OK, c.Done-c.OK)
	}
	return nil
}

// effEnd resolves the block end: 0 (pre-shard checkpoints never encoded
// one) means the whole campaign.
func (c *Checkpoint) effEnd(total int) int {
	if c.End == 0 {
		return total
	}
	return c.End
}

// Encode renders the checkpoint as indented JSON with its content
// checksum filled in.
func (c *Checkpoint) Encode() ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	cp := *c
	sum, err := cp.contentChecksum()
	if err != nil {
		return nil, err
	}
	cp.Checksum = sum
	return json.MarshalIndent(&cp, "", "  ")
}

// contentChecksum hashes the checkpoint's content: the indented JSON
// rendering with the Checksum field cleared, so the stored hash covers
// every other byte of the file.
func (c *Checkpoint) contentChecksum() (string, error) {
	cp := *c
	cp.Checksum = ""
	body, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeCheckpoint parses and validates an encoded checkpoint,
// verifying the content checksum when one is present.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("scenario: decode checkpoint: %w", err)
	}
	if c.Checksum != "" {
		want, err := c.contentChecksum()
		if err != nil {
			return nil, err
		}
		if c.Checksum != want {
			return nil, fmt.Errorf("scenario: checkpoint checksum mismatch (file is corrupt or truncated): stored %s, content %s",
				c.Checksum, want)
		}
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
