package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// shardCheckpoint runs shard i of n for cfg's campaign to completion and
// returns its checkpoint.
func shardCheckpoint(t *testing.T, base CampaignConfig, i, n int) *Checkpoint {
	t.Helper()
	cfg := base
	cfg.ShardIndex, cfg.ShardCount = i, n
	agg, err := NewAggregate(cfg)
	if err != nil {
		t.Fatalf("NewAggregate(shard %d/%d): %v", i, n, err)
	}
	for v, serr := range StreamCampaign(context.Background(), cfg) {
		if serr != nil {
			t.Fatalf("StreamCampaign(shard %d/%d): %v", i, n, serr)
		}
		agg.Add(v)
	}
	return agg.Checkpoint()
}

// TestMergeCheckpointsFailurePaths pins the merge guards one by one:
// every way a set of block checkpoints can fail to tile the campaign —
// gaps, duplicates, genuine overlaps, foreign campaigns — must be a
// loud error, never a silently wrong aggregate.
func TestMergeCheckpointsFailurePaths(t *testing.T) {
	base := CampaignConfig{Generator: "uniform", Gen: GenConfig{MaxRing: 8}, Count: 24, Seeds: []uint64{3}}
	thirds := make([]*Checkpoint, 3)
	for i := range thirds {
		thirds[i] = shardCheckpoint(t, base, i, 3)
	}

	if _, err := MergeCheckpoints(); err == nil {
		t.Error("empty merge accepted")
	}
	// Gapped region: [0, 8) + [16, 24) leaves the middle third missing.
	if _, err := MergeCheckpoints(thirds[0], thirds[2]); err == nil || !strings.Contains(err.Error(), "gap or overlap") {
		t.Errorf("gapped merge: %v, want gap/overlap rejection", err)
	}
	// Missing first block: the merge cannot even anchor at 0.
	if _, err := MergeCheckpoints(thirds[1], thirds[2]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("merge without block 0: %v, want missing-shard rejection", err)
	}
	// Duplicate block: the same region delivered twice.
	if _, err := MergeCheckpoints(thirds[0], thirds[1], thirds[1], thirds[2]); err == nil {
		t.Error("duplicate block accepted")
	}
	// Genuine overlap: halves [0, 12), [12, 24) interleaved with the
	// middle third [8, 16) — distinct blocks, overlapping coverage.
	halves := []*Checkpoint{shardCheckpoint(t, base, 0, 2), shardCheckpoint(t, base, 1, 2)}
	if _, err := MergeCheckpoints(halves[0], thirds[1], halves[1]); err == nil || !strings.Contains(err.Error(), "gap or overlap") {
		t.Errorf("overlapping blocks: %v, want gap/overlap rejection", err)
	}
	// Mixed campaign identity: block 1 computed under a different seed
	// tiles the region perfectly but describes another campaign.
	foreign := base
	foreign.Seeds = []uint64{99}
	alien := shardCheckpoint(t, foreign, 1, 3)
	if _, err := MergeCheckpoints(thirds[0], alien, thirds[2]); err == nil || !strings.Contains(err.Error(), "different campaigns") {
		t.Errorf("mixed-identity merge: %v, want campaign-identity rejection", err)
	}
	// The happy path still holds after all that rejection.
	if _, err := MergeCheckpoints(thirds[2], thirds[0], thirds[1]); err != nil {
		t.Errorf("clean merge: %v", err)
	}
}

// TestCheckpointChecksumRoundTrip pins the integrity envelope: Encode
// stamps a content checksum, DecodeCheckpoint verifies it, and a
// checkpoint from before the field (no checksum) still decodes.
func TestCheckpointChecksumRoundTrip(t *testing.T) {
	base := CampaignConfig{Generator: "uniform", Gen: GenConfig{MaxRing: 8}, Count: 10, Seeds: []uint64{1}}
	ckpt := shardCheckpoint(t, base, 0, 1)
	data, err := ckpt.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Contains(data, []byte(`"checksum"`)) {
		t.Fatal("Encode omitted the content checksum")
	}
	back, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if back.Done != ckpt.Done || back.OK != ckpt.OK {
		t.Fatalf("round trip changed the aggregate: %d/%d vs %d/%d", back.Done, back.OK, ckpt.Done, ckpt.OK)
	}

	// Legacy checkpoints carry no checksum and skip the check.
	legacy := *ckpt
	legacy.Checksum = ""
	legacyData, err := json.MarshalIndent(&legacy, "", "  ")
	if err != nil {
		t.Fatalf("marshal legacy: %v", err)
	}
	if _, err := DecodeCheckpoint(legacyData); err != nil {
		t.Fatalf("legacy checkpoint without checksum rejected: %v", err)
	}
}

// TestCheckpointCorruptionDetected flips content bytes and truncates the
// file: both must fail loudly instead of resuming a diverged campaign.
func TestCheckpointCorruptionDetected(t *testing.T) {
	base := CampaignConfig{Generator: "uniform", Gen: GenConfig{MaxRing: 8}, Count: 10, Seeds: []uint64{1}}
	data, err := shardCheckpoint(t, base, 0, 1).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// A bit-flip that stays valid JSON and sails past the structural
	// validator (nothing cross-checks the generator name): only the
	// content checksum can catch it.
	corrupt := bytes.Replace(data, []byte(`"generator": "uniform"`), []byte(`"generator": "uniforn"`), 1)
	if bytes.Equal(corrupt, data) {
		t.Fatal("corruption did not land; fixture drifted")
	}
	if _, err := DecodeCheckpoint(corrupt); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("bit-flipped checkpoint: %v, want checksum mismatch", err)
	}
	// Truncation: half a file is not a checkpoint.
	if _, err := DecodeCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
