package scenario

import (
	"fmt"

	"pef/internal/prng"
)

// GenConfig bounds the parameter space the samplers draw from. The zero
// value means "defaults" (rings of 4..16 nodes, teams of up to 5 robots).
type GenConfig struct {
	// MinRing and MaxRing bound the sampled ring sizes. MinRing is
	// clamped to 4 for samplers that need room for three robots.
	MinRing int `json:"minRing,omitempty"`
	MaxRing int `json:"maxRing,omitempty"`
	// MaxRobots bounds the sampled team sizes.
	MaxRobots int `json:"maxRobots,omitempty"`
	// Families optionally restricts the "registered" generator's family
	// pool to a comma-separated list of registered explorable families
	// (e.g. "periodic,compose:union"). The other generators draw from
	// their frozen stock pools and ignore it.
	Families string `json:"families,omitempty"`
	// FamilyWeights optionally biases the "registered" generator's pool:
	// a comma-separated "family=weight" list over registered explorable
	// families with positive integer weights, e.g. "bernoulli=3,periodic=1".
	// The listed families *are* the pool (mutually exclusive with
	// Families), picked with probability weight/total by one deterministic
	// draw per sample. The other generators draw from their frozen stock
	// pools and ignore it.
	FamilyWeights string `json:"familyWeights,omitempty"`
}

// WithDefaults returns the config with unset fields filled exactly like
// Generate and campaigns resolve them — the searcher uses it to clamp
// mutated ring sizes against the same bounds sampling honored.
func (c GenConfig) WithDefaults() GenConfig { return c.withDefaults() }

// withDefaults fills unset (zero) fields without overriding explicit
// values; validate rejects explicit values the samplers cannot honor.
func (c GenConfig) withDefaults() GenConfig {
	if c.MinRing < 2 {
		c.MinRing = 4
	}
	if c.MaxRing == 0 {
		c.MaxRing = c.MinRing + 12
	}
	if c.MaxRobots < 1 {
		c.MaxRobots = 5
	}
	return c
}

// validate checks a defaulted config against the registry: every sampler
// needs rings of at least 4 nodes (three robots plus room to move,
// confine-two's n >= 4), room for the three-robot teams the possibility
// samplers draw, and any family filter must name registered explorable
// families.
func (c GenConfig) validate(r *Registry) error {
	if c.MaxRing < 4 {
		return fmt.Errorf("scenario: MaxRing %d below 4 (samplers need rings of at least 4 nodes)", c.MaxRing)
	}
	if c.MaxRing < c.MinRing {
		return fmt.Errorf("scenario: MaxRing %d below MinRing %d", c.MaxRing, c.MinRing)
	}
	if c.MaxRobots < 3 {
		return fmt.Errorf("scenario: MaxRobots %d below 3 (PEF_3+ samplers need three-robot teams)", c.MaxRobots)
	}
	if c.Families != "" {
		if _, err := r.explorableFamilies(c.Families); err != nil {
			return err
		}
	}
	if c.FamilyWeights != "" {
		if c.Families != "" {
			return fmt.Errorf("scenario: Families and FamilyWeights are mutually exclusive (the weighted list is the pool)")
		}
		if _, err := r.weightedFamilies(c.FamilyWeights); err != nil {
			return err
		}
	}
	return nil
}

// Generator is a named, seeded sampler over the scenario space. Sampling
// is a pure function of the source stream and the registry contents: the
// same (registry, seed) always yields the same spec sequence, for any
// count, so campaigns are replayable from (generator, seed, count) alone.
type Generator struct {
	// Name identifies the generator ("uniform", "boundary", "markov",
	// "adversarial", "registered").
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// Sample draws the next spec from the stream, resolving names
	// through the registry.
	Sample func(r *Registry, cfg GenConfig, src *prng.Source) Spec
}

// Generators returns the scenario samplers in canonical order.
func Generators() []Generator {
	return []Generator{
		{
			Name:        "uniform",
			Description: "uniform in-threshold sampling over every connected-over-time stock family",
			Sample:      sampleUniform,
		},
		{
			Name:        "boundary",
			Description: "boundary-biased: threshold rings (n=2, n=3, n=k+1), under-threshold teams, theorem adversaries",
			Sample:      sampleBoundary,
		},
		{
			Name:        "markov",
			Description: "bursty-link Markov dynamics across the up/down transition space",
			Sample:      sampleMarkov,
		},
		{
			Name:        "adversarial",
			Description: "adaptive adversaries: budgeted pointed-edge stress and the confinement theorems",
			Sample:      sampleAdversarial,
		},
		{
			Name:        "registered",
			Description: "every registered explorable family (built-in, periodic, compose:*, user-registered); -families restricts the pool",
			Sample:      sampleRegistered,
		},
	}
}

// NewGenerator returns the named generator.
func NewGenerator(name string) (Generator, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, nil
		}
	}
	names := make([]string, 0, len(Generators()))
	for _, g := range Generators() {
		names = append(names, g.Name)
	}
	return Generator{}, fmt.Errorf("scenario: unknown generator %q (known: %v)", name, names)
}

// Generate draws count specs from the named generator under one seed,
// resolving families and algorithms through the default registry. Equal
// (name, cfg, seed, count) calls against an unchanged registry return
// identical spec slices, and a longer stream extends a shorter one.
func Generate(name string, cfg GenConfig, seed uint64, count int) ([]Spec, error) {
	return DefaultRegistry().Generate(name, cfg, seed, count)
}

// Generate draws count specs from the named generator under one seed,
// resolving names through this registry.
func (r *Registry) Generate(name string, cfg GenConfig, seed uint64, count int) ([]Spec, error) {
	g, err := NewGenerator(name)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(r); err != nil {
		return nil, err
	}
	src := prng.NewSource(seed)
	specs := make([]Spec, count)
	for i := range specs {
		specs[i] = g.Sample(r, cfg, src)
	}
	return specs, nil
}

// intIn samples uniformly from [lo, hi].
func intIn(src *prng.Source, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + src.Intn(hi-lo+1)
}

// probIn samples a probability from [lo, hi], quantized to exact
// hundredths (one division, no accumulated float error) so spec IDs and
// JSON stay compact.
func probIn(src *prng.Source, lo, hi float64) float64 {
	loSteps := int(lo*100 + 0.5)
	steps := int((hi-lo)*100 + 0.5)
	return float64(loSteps+src.Intn(steps+1)) / 100
}

// pick returns one of the options.
func pick(src *prng.Source, options ...string) string {
	return options[src.Intn(len(options))]
}

// pickWeighted draws one pool entry: uniformly when weights is nil (the
// historical single-Intn draw, bit-compatible with pick), else by
// cumulative weight with one Intn over the weight total — still a single
// draw, so weighted and uniform streams consume the source identically.
func pickWeighted(src *prng.Source, pool []string, weights []int) string {
	if weights == nil {
		return pick(src, pool...)
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	u := src.Intn(total)
	for i, w := range weights {
		u -= w
		if u < 0 {
			return pool[i]
		}
	}
	return pool[len(pool)-1]
}

// sampleFamily draws a parameter point and horizon for the named family
// via its descriptor, replaying the historical draw order: the candidate
// horizon is computed first (some families read it when sampling), then
// the parameters, then the final horizon for the sampled point.
func sampleFamily(r *Registry, src *prng.Source, family string, n int) (Params, int) {
	d, ok := r.Family(family)
	if !ok {
		// Samplers only draw registered names; reaching this is a
		// programming error in the sampler, not a user input.
		panic(fmt.Sprintf("scenario: sampler drew unregistered family %q", family))
	}
	h0 := exploreHorizon(n, Params{})
	p := d.sample(src, n, h0)
	return p, d.horizonFor(n, p)
}

// exploreHorizon is the standard horizon for explore-expectation runs:
// 200·n as in the possibility experiments, floored for the small rings
// whose dedicated algorithms need more rounds per node, and stretched for
// loose recurrence bounds (matching the E-X2 horizon scaling).
func exploreHorizon(n int, p Params) int {
	h := 200 * n
	if h < 1200 {
		h = 1200
	}
	if min := 400 * p.Delta; h < min {
		h = min
	}
	return h
}

// expectationOf derives a sampled spec's expectation; samplers only emit
// registered families, so derivation cannot fail.
func expectationOf(r *Registry, s Spec) string {
	exp, err := r.Expectation(s)
	if err != nil {
		panic(err)
	}
	return exp
}

// sampleUniform draws in-threshold scenarios uniformly: k >= 3 robots with
// PEF_3+ on any ring that fits them, across the frozen stock pool (the
// oblivious connected-over-time families plus the budgeted pointed-edge
// adversary).
func sampleUniform(r *Registry, cfg GenConfig, src *prng.Source) Spec {
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	k := intIn(src, 3, kHi)
	family := pick(src, r.stockFamilies()...)
	p, horizon := sampleFamily(r, src, family, n)
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    k,
		Algorithm: "pef3+",
		Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
		Family:    family,
		Params:    p,
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = expectationOf(r, s)
	return s
}

// SampleFamilySpec draws one in-threshold spec of the named explorable
// family under cfg's bounds — the per-family steering hook of the
// coverage-guided searcher: where sampleRegistered lets the pool pick
// the family, a search loop picks it (bandit arms, corpus mutation) and
// samples the rest of the spec here. Draw order is fixed — ring, team,
// family parameters, placement, run seed — so equal (registry, cfg,
// family, source state) always yields the same spec.
func (r *Registry) SampleFamilySpec(cfg GenConfig, family string, src *prng.Source) (Spec, error) {
	d, ok := r.Family(family)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown family %q (registered: %v)", family, r.FamilyNames())
	}
	if !d.Explorable {
		return Spec{}, fmt.Errorf("scenario: family %q is not explorable (the searcher samples explore-expectation specs only)", family)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(r); err != nil {
		return Spec{}, err
	}
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	k := intIn(src, 3, kHi)
	p, horizon := sampleFamily(r, src, family, n)
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    k,
		Algorithm: "pef3+",
		Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
		Family:    family,
		Params:    p,
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = expectationOf(r, s)
	return s, nil
}

// sampleBoundary draws from the computability boundary of Table 1: the
// minimal rings of PEF_1 and PEF_2, minimal-margin PEF_3+ teams (n = k+1),
// the confinement theorems, and under-threshold teams on oblivious
// dynamics (where the paper makes no claim and the oracle only measures).
func sampleBoundary(r *Registry, cfg GenConfig, src *prng.Source) Spec {
	var s Spec
	switch src.Intn(6) {
	case 0: // PEF_1 on the 2-node ring
		family := pick(src, r.stockGraphFamilies()...)
		p, horizon := sampleFamily(r, src, family, 2)
		s = Spec{Ring: 2, Robots: 1, Algorithm: "pef1", Family: family, Params: p, Horizon: horizon}
	case 1: // PEF_2 on the 3-node ring
		family := pick(src, r.stockGraphFamilies()...)
		p, horizon := sampleFamily(r, src, family, 3)
		s = Spec{Ring: 3, Robots: 2, Algorithm: "pef2", Family: family, Params: p, Horizon: horizon}
	case 2: // minimal-margin PEF_3+: n = k+1
		kHi := cfg.MaxRobots
		if kHi > cfg.MaxRing-1 {
			kHi = cfg.MaxRing - 1
		}
		k := intIn(src, 3, kHi)
		n := k + 1
		family := pick(src, r.stockGraphFamilies()...)
		p, horizon := sampleFamily(r, src, family, n)
		s = Spec{Ring: n, Robots: k, Algorithm: "pef3+", Family: family, Params: p, Horizon: horizon}
	case 3: // Theorem 5.1 confinement of any single robot
		n := intIn(src, 3, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 1, Algorithm: pickVictim(r, src), Family: FamilyConfineOne, Horizon: 64 * n}
	case 4: // Theorem 4.1 confinement of any two robots
		n := intIn(src, 4, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 2, Algorithm: pickVictim(r, src), Family: FamilyConfineTwo, Horizon: 64 * n}
	default: // under-threshold team on oblivious dynamics: no paper claim
		k := intIn(src, 1, 2)
		n := intIn(src, k+2, cfg.MaxRing)
		if n < 4 {
			n = 4
		}
		horizon := exploreHorizon(n, Params{})
		d, _ := r.Family("bernoulli")
		s = Spec{Ring: n, Robots: k, Algorithm: "pef3+", Family: "bernoulli", Params: d.sample(src, n, horizon), Horizon: horizon}
	}
	s.Version = Version
	if s.Placement == "" {
		s.Placement = pick(src, PlaceRandom, PlaceEven, PlaceAdjacent)
	}
	s.Seed = src.Uint64()
	s.Expect = expectationOf(r, s)
	return s
}

// pickVictim samples a confinement victim from the frozen stock
// algorithm pool. The theorems quantify over *all* deterministic
// algorithms, but the sampler pool stays pinned to the bootstrap set so
// recorded campaign streams replay bit for bit regardless of later
// registrations; user algorithms face the adversaries through explicitly
// constructed specs.
func pickVictim(r *Registry, src *prng.Source) string {
	names := r.stockAlgorithms()
	return names[src.Intn(len(names))]
}

// sampleMarkov draws in-threshold scenarios whose dynamics is the bursty
// two-state Markov link model, sweeping the (up, down) transition space.
func sampleMarkov(r *Registry, cfg GenConfig, src *prng.Source) Spec {
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	k := intIn(src, 3, kHi)
	placement := pick(src, PlaceRandom, PlaceEven, PlaceAdjacent)
	d, _ := r.Family("markov")
	horizon := exploreHorizon(n, Params{})
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    k,
		Algorithm: "pef3+",
		Placement: placement,
		Family:    "markov",
		Params:    d.sample(src, n, horizon),
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = expectationOf(r, s)
	return s
}

// sampleAdversarial draws adaptive-adversary scenarios: the budgeted
// pointed-edge stress adversary against full teams (which must still
// explore) and the confinement theorems against sampled victims (which
// must stay confined).
func sampleAdversarial(r *Registry, cfg GenConfig, src *prng.Source) Spec {
	var s Spec
	switch src.Intn(3) {
	case 0: // block-pointed stress: exploration must survive
		lo := cfg.MinRing
		if lo < 4 {
			lo = 4
		}
		n := intIn(src, lo, cfg.MaxRing)
		kHi := cfg.MaxRobots
		if kHi > n-1 {
			kHi = n - 1
		}
		k := intIn(src, 3, kHi)
		placement := pick(src, PlaceRandom, PlaceEven, PlaceAdjacent)
		d, _ := r.Family(FamilyBlockPointed)
		horizon := exploreHorizon(n, Params{})
		s = Spec{
			Ring: n, Robots: k, Algorithm: "pef3+",
			Placement: placement,
			Family:    FamilyBlockPointed, Params: d.sample(src, n, horizon),
			Horizon: horizon,
		}
	case 1: // Theorem 5.1
		n := intIn(src, 3, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 1, Algorithm: pickVictim(r, src), Placement: PlaceRandom, Family: FamilyConfineOne, Horizon: 64 * n}
	default: // Theorem 4.1
		n := intIn(src, 4, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 2, Algorithm: pickVictim(r, src), Placement: PlaceRandom, Family: FamilyConfineTwo, Horizon: 64 * n}
	}
	s.Version = Version
	s.Seed = src.Uint64()
	s.Expect = expectationOf(r, s)
	return s
}

// sampleRegistered draws in-threshold scenarios like sampleUniform but
// over *every* registered explorable family — the stock pool, the
// combinator families (periodic, compose:*) and anything registered by
// the embedding program — optionally restricted by cfg.Families. It is
// the generator that makes user-registered dynamics campaign-reachable
// without touching the frozen historical pools.
func sampleRegistered(r *Registry, cfg GenConfig, src *prng.Source) Spec {
	pool, weights, err := r.ExplorableFamilies(cfg)
	if err != nil {
		// Generate/StreamCampaign validate the filter up front; reaching
		// this is a programming error, not a user input.
		panic(err)
	}
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	k := intIn(src, 3, kHi)
	family := pickWeighted(src, pool, weights)
	p, horizon := sampleFamily(r, src, family, n)
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    k,
		Algorithm: "pef3+",
		Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
		Family:    family,
		Params:    p,
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = expectationOf(r, s)
	return s
}
