package scenario

import (
	"fmt"

	"pef/internal/prng"
)

// GenConfig bounds the parameter space the samplers draw from. The zero
// value means "defaults" (rings of 4..16 nodes, teams of up to 5 robots).
type GenConfig struct {
	// MinRing and MaxRing bound the sampled ring sizes. MinRing is
	// clamped to 4 for samplers that need room for three robots.
	MinRing int `json:"minRing,omitempty"`
	MaxRing int `json:"maxRing,omitempty"`
	// MaxRobots bounds the sampled team sizes.
	MaxRobots int `json:"maxRobots,omitempty"`
}

// withDefaults fills unset (zero) fields without overriding explicit
// values; validate rejects explicit values the samplers cannot honor.
func (c GenConfig) withDefaults() GenConfig {
	if c.MinRing < 2 {
		c.MinRing = 4
	}
	if c.MaxRing == 0 {
		c.MaxRing = c.MinRing + 12
	}
	if c.MaxRobots < 1 {
		c.MaxRobots = 5
	}
	return c
}

// validate checks a defaulted config: every sampler needs rings of at
// least 4 nodes (three robots plus room to move, confine-two's n >= 4)
// and room for the three-robot teams the possibility samplers draw.
func (c GenConfig) validate() error {
	if c.MaxRing < 4 {
		return fmt.Errorf("scenario: MaxRing %d below 4 (samplers need rings of at least 4 nodes)", c.MaxRing)
	}
	if c.MaxRing < c.MinRing {
		return fmt.Errorf("scenario: MaxRing %d below MinRing %d", c.MaxRing, c.MinRing)
	}
	if c.MaxRobots < 3 {
		return fmt.Errorf("scenario: MaxRobots %d below 3 (PEF_3+ samplers need three-robot teams)", c.MaxRobots)
	}
	return nil
}

// Generator is a named, seeded sampler over the scenario space. Sampling
// is a pure function of the source stream: the same seed always yields the
// same spec sequence, for any count, so campaigns are replayable from
// (generator, seed, count) alone.
type Generator struct {
	// Name identifies the generator ("uniform", "boundary", "markov",
	// "adversarial").
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// Sample draws the next spec from the stream.
	Sample func(cfg GenConfig, src *prng.Source) Spec
}

// Generators returns the registry of scenario samplers in canonical order.
func Generators() []Generator {
	return []Generator{
		{
			Name:        "uniform",
			Description: "uniform in-threshold sampling over every connected-over-time family",
			Sample:      sampleUniform,
		},
		{
			Name:        "boundary",
			Description: "boundary-biased: threshold rings (n=2, n=3, n=k+1), under-threshold teams, theorem adversaries",
			Sample:      sampleBoundary,
		},
		{
			Name:        "markov",
			Description: "bursty-link Markov dynamics across the up/down transition space",
			Sample:      sampleMarkov,
		},
		{
			Name:        "adversarial",
			Description: "adaptive adversaries: budgeted pointed-edge stress and the confinement theorems",
			Sample:      sampleAdversarial,
		},
	}
}

// NewGenerator returns the named generator.
func NewGenerator(name string) (Generator, error) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, nil
		}
	}
	names := make([]string, 0, len(Generators()))
	for _, g := range Generators() {
		names = append(names, g.Name)
	}
	return Generator{}, fmt.Errorf("scenario: unknown generator %q (known: %v)", name, names)
}

// Generate draws count specs from the named generator under one seed.
// Equal (name, cfg, seed, count) calls return identical spec slices, and a
// longer stream extends a shorter one.
func Generate(name string, cfg GenConfig, seed uint64, count int) ([]Spec, error) {
	g, err := NewGenerator(name)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := prng.NewSource(seed)
	specs := make([]Spec, count)
	for i := range specs {
		specs[i] = g.Sample(cfg, src)
	}
	return specs, nil
}

// intIn samples uniformly from [lo, hi].
func intIn(src *prng.Source, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + src.Intn(hi-lo+1)
}

// probIn samples a probability from [lo, hi], quantized to exact
// hundredths (one division, no accumulated float error) so spec IDs and
// JSON stay compact.
func probIn(src *prng.Source, lo, hi float64) float64 {
	loSteps := int(lo*100 + 0.5)
	steps := int((hi-lo)*100 + 0.5)
	return float64(loSteps+src.Intn(steps+1)) / 100
}

// pick returns one of the options.
func pick(src *prng.Source, options ...string) string {
	return options[src.Intn(len(options))]
}

// cotFamilies is the oblivious connected-over-time family pool the
// explore-expectation samplers draw from.
var cotFamilies = []string{
	"static", "bernoulli", "bounded", "t-interval",
	"roving", "chain", "eventual-missing", "markov",
}

// cotParams samples a parameter point for the named oblivious family on an
// n-node ring with the given horizon. The ranges are chosen so every
// sampled workload stays connected-over-time with margins the paper's
// algorithms handle on a 200·n horizon (validated by the oracle tests).
func cotParams(src *prng.Source, family string, n, horizon int) Params {
	switch family {
	case "bernoulli":
		return Params{P: probIn(src, 0.3, 0.95)}
	case "bounded":
		return Params{P: probIn(src, 0.05, 0.5), Delta: intIn(src, 1, 8)}
	case "t-interval":
		return Params{T: intIn(src, 1, 8)}
	case "roving":
		return Params{Period: intIn(src, 1, 6)}
	case "chain":
		return Params{Cut: intIn(src, 0, n-1), P: probIn(src, 0.5, 0.9), Delta: intIn(src, 2, 6)}
	case "eventual-missing":
		return Params{
			Edge: intIn(src, 0, n-1), From: intIn(src, 0, horizon/4),
			P: probIn(src, 0.5, 0.9), Delta: intIn(src, 2, 6),
		}
	case "markov":
		return Params{Up: probIn(src, 0.2, 0.8), Down: probIn(src, 0.05, 0.6)}
	}
	return Params{} // static
}

// exploreHorizon is the standard horizon for explore-expectation runs:
// 200·n as in the possibility experiments, floored for the small rings
// whose dedicated algorithms need more rounds per node, and stretched for
// loose recurrence bounds (matching the E-X2 horizon scaling).
func exploreHorizon(n int, p Params) int {
	h := 200 * n
	if h < 1200 {
		h = 1200
	}
	if min := 400 * p.Delta; h < min {
		h = min
	}
	return h
}

// sampleUniform draws in-threshold scenarios uniformly: k >= 3 robots with
// PEF_3+ on any ring that fits them, across the full oblivious family
// space plus the budgeted pointed-edge adversary.
func sampleUniform(cfg GenConfig, src *prng.Source) Spec {
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	k := intIn(src, 3, kHi)
	family := pick(src, append(append([]string{}, cotFamilies...), FamilyBlockPointed)...)
	var p Params
	var horizon int
	if family == FamilyBlockPointed {
		p = Params{Budget: intIn(src, 1, 4)}
		horizon = exploreHorizon(n, p)
	} else {
		horizon = exploreHorizon(n, Params{})
		p = cotParams(src, family, n, horizon)
		horizon = exploreHorizon(n, p)
	}
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    k,
		Algorithm: "pef3+",
		Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
		Family:    family,
		Params:    p,
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = Expectation(s)
	return s
}

// sampleBoundary draws from the computability boundary of Table 1: the
// minimal rings of PEF_1 and PEF_2, minimal-margin PEF_3+ teams (n = k+1),
// the confinement theorems, and under-threshold teams on oblivious
// dynamics (where the paper makes no claim and the oracle only measures).
func sampleBoundary(cfg GenConfig, src *prng.Source) Spec {
	var s Spec
	switch src.Intn(6) {
	case 0: // PEF_1 on the 2-node ring
		family := pick(src, cotFamilies...)
		horizon := exploreHorizon(2, Params{})
		p := cotParams(src, family, 2, horizon)
		s = Spec{Ring: 2, Robots: 1, Algorithm: "pef1", Family: family, Params: p, Horizon: exploreHorizon(2, p)}
	case 1: // PEF_2 on the 3-node ring
		family := pick(src, cotFamilies...)
		horizon := exploreHorizon(3, Params{})
		p := cotParams(src, family, 3, horizon)
		s = Spec{Ring: 3, Robots: 2, Algorithm: "pef2", Family: family, Params: p, Horizon: exploreHorizon(3, p)}
	case 2: // minimal-margin PEF_3+: n = k+1
		kHi := cfg.MaxRobots
		if kHi > cfg.MaxRing-1 {
			kHi = cfg.MaxRing - 1
		}
		k := intIn(src, 3, kHi)
		n := k + 1
		family := pick(src, cotFamilies...)
		horizon := exploreHorizon(n, Params{})
		p := cotParams(src, family, n, horizon)
		s = Spec{Ring: n, Robots: k, Algorithm: "pef3+", Family: family, Params: p, Horizon: exploreHorizon(n, p)}
	case 3: // Theorem 5.1 confinement of any single robot
		n := intIn(src, 3, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 1, Algorithm: pickVictim(src), Family: FamilyConfineOne, Horizon: 64 * n}
	case 4: // Theorem 4.1 confinement of any two robots
		n := intIn(src, 4, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 2, Algorithm: pickVictim(src), Family: FamilyConfineTwo, Horizon: 64 * n}
	default: // under-threshold team on oblivious dynamics: no paper claim
		k := intIn(src, 1, 2)
		n := intIn(src, k+2, cfg.MaxRing)
		if n < 4 {
			n = 4
		}
		horizon := exploreHorizon(n, Params{})
		s = Spec{Ring: n, Robots: k, Algorithm: "pef3+", Family: "bernoulli", Params: cotParams(src, "bernoulli", n, horizon), Horizon: horizon}
	}
	s.Version = Version
	if s.Placement == "" {
		s.Placement = pick(src, PlaceRandom, PlaceEven, PlaceAdjacent)
	}
	s.Seed = src.Uint64()
	s.Expect = Expectation(s)
	return s
}

// pickVictim samples an algorithm for the universally-quantified
// confinement theorems: any deterministic algorithm must stay confined.
func pickVictim(src *prng.Source) string {
	names := AlgorithmNames()
	return names[src.Intn(len(names))]
}

// sampleMarkov draws in-threshold scenarios whose dynamics is the bursty
// two-state Markov link model, sweeping the (up, down) transition space.
func sampleMarkov(cfg GenConfig, src *prng.Source) Spec {
	lo := cfg.MinRing
	if lo < 4 {
		lo = 4
	}
	n := intIn(src, lo, cfg.MaxRing)
	kHi := cfg.MaxRobots
	if kHi > n-1 {
		kHi = n - 1
	}
	horizon := exploreHorizon(n, Params{})
	s := Spec{
		Version:   Version,
		Ring:      n,
		Robots:    intIn(src, 3, kHi),
		Algorithm: "pef3+",
		Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
		Family:    "markov",
		Params:    cotParams(src, "markov", n, horizon),
		Horizon:   horizon,
		Seed:      src.Uint64(),
	}
	s.Expect = Expectation(s)
	return s
}

// sampleAdversarial draws adaptive-adversary scenarios: the budgeted
// pointed-edge stress adversary against full teams (which must still
// explore) and the confinement theorems against sampled victims (which
// must stay confined).
func sampleAdversarial(cfg GenConfig, src *prng.Source) Spec {
	var s Spec
	switch src.Intn(3) {
	case 0: // block-pointed stress: exploration must survive
		lo := cfg.MinRing
		if lo < 4 {
			lo = 4
		}
		n := intIn(src, lo, cfg.MaxRing)
		kHi := cfg.MaxRobots
		if kHi > n-1 {
			kHi = n - 1
		}
		s = Spec{
			Ring: n, Robots: intIn(src, 3, kHi), Algorithm: "pef3+",
			Placement: pick(src, PlaceRandom, PlaceEven, PlaceAdjacent),
			Family:    FamilyBlockPointed, Params: Params{Budget: intIn(src, 1, 4)},
			Horizon: exploreHorizon(n, Params{}),
		}
	case 1: // Theorem 5.1
		n := intIn(src, 3, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 1, Algorithm: pickVictim(src), Placement: PlaceRandom, Family: FamilyConfineOne, Horizon: 64 * n}
	default: // Theorem 4.1
		n := intIn(src, 4, cfg.MaxRing)
		s = Spec{Ring: n, Robots: 2, Algorithm: pickVictim(src), Placement: PlaceRandom, Family: FamilyConfineTwo, Horizon: 64 * n}
	}
	s.Version = Version
	s.Seed = src.Uint64()
	s.Expect = Expectation(s)
	return s
}
