package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pef/internal/dyngraph"
	"pef/internal/fsync"
	"pef/internal/robot"
	"pef/internal/spec"
)

// This file routes blocks of specs through the bit-parallel lockstep
// engine: up to 64 seeds of one scenario shape advance per machine word.
// Eligibility is conservative — anything the lane engine cannot represent
// (big rings, adaptive adversaries, imperative overrides, algorithms
// without a lane core) falls back to the scalar oracle — and every lane's
// verdict is byte-identical to the scalar RunWith verdict for the same
// spec, an invariant the differential tests in lockstep_test.go pin
// across all registered families and generators.

// laneWordSize is the lane capacity of one engine run: one seed per bit
// of a uint64.
const laneWordSize = 64

// laneEval bundles the per-block lane tracker a campaign worker reuses
// from block to block, mirroring the scalar evaluator pool.
type laneEval struct {
	lv   *spec.LaneVisits
	runs []fsync.LaneRun
}

var laneEvalPool = sync.Pool{New: func() any {
	return &laneEval{lv: spec.NewLaneVisits()}
}}

// lockstepEligible reports whether the spec may run on the lane engine
// under the given options, returning the resolved lane algorithm and
// evolving graph when it may — or, when it may not, a short reason tag
// for the engine.skip.* telemetry counters. Overrides (imperative
// algorithm/dynamics, explicit placements, observers — but NOT attached
// Telemetry, which is observational) and adaptive adversaries are
// scalar-only; so are rings wider than the 64-bit presence word and
// algorithms without a bit-parallel core. A dynamics build error also
// reports ineligible: the scalar path rebuilds and reports the identical
// error verdict.
func lockstepEligible(s Spec, o RunOptions, res preparedRun) (robot.LaneAlgorithm, dyngraph.EvolvingGraph, bool, string) {
	if o.Algorithm != nil || o.Dynamics != nil || len(o.Placements) > 0 || len(o.Observers) > 0 {
		return nil, nil, false, "overrides"
	}
	if s.Ring > laneWordSize {
		return nil, nil, false, "ring-width"
	}
	la, ok := res.alg.(robot.LaneAlgorithm)
	if !ok {
		return nil, nil, false, "algorithm"
	}
	dyn, err := res.fam.build(s)
	if err != nil {
		return nil, nil, false, "family-build"
	}
	obl, ok := dyn.(fsync.Oblivious)
	if !ok || obl.G == nil {
		return nil, nil, false, "dynamics"
	}
	return la, obl.G, true, ""
}

// blockKey is the shape a lane group must share: one lockstep run drives
// one ring size, one team size and one algorithm across all its lanes
// (per-lane graphs, placements, horizons and verdicts differ freely).
type blockKey struct {
	ring, robots int
	algorithm    string
}

// RunBlock executes a block of specs, routing shape-aligned eligible runs
// through the lockstep engine (up to 64 seeds per engine instance) and
// everything else through the scalar oracle. Verdicts come back in spec
// order and are byte-identical to per-spec RunWith calls, with run errors
// folded into Verdict.Err exactly like the campaign worker folds them.
func RunBlock(ctx context.Context, specs []Spec, o RunOptions) []Verdict {
	out := make([]Verdict, len(specs))
	ev := laneEvalPool.Get().(*laneEval)
	defer laneEvalPool.Put(ev)

	// Group eligible specs by shape; everything else runs scalar.
	tel := o.Telemetry
	groups := map[blockKey][]int{}
	algs := map[blockKey]robot.LaneAlgorithm{}
	graphs := make([]dyngraph.EvolvingGraph, len(specs))
	for i, s := range specs {
		v, res, err := prepareRun(s, o)
		if err != nil {
			// The error verdict is final; RunWith would add nothing.
			out[i] = v
			continue
		}
		la, g, ok, reason := lockstepEligible(s, o, res)
		if !ok {
			if tel != nil {
				tel.scalarSpecs.Inc()
				tel.skipReason(reason).Inc()
			}
			out[i] = runScalar(ctx, specs[i], o)
			continue
		}
		key := blockKey{s.Ring, s.Robots, s.Algorithm}
		graphs[i] = g
		groups[key] = append(groups[key], i)
		if _, seen := algs[key]; !seen {
			algs[key] = la
		}
	}

	// Iterate groups in first-member order so the engine's work schedule is
	// deterministic (verdict order is positional either way).
	keys := make([]blockKey, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && groups[keys[j]][0] < groups[keys[j-1]][0]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, key := range keys {
		members := groups[key]
		for len(members) > 0 {
			lanes := len(members)
			if lanes > laneWordSize {
				lanes = laneWordSize
			}
			if tel != nil {
				tel.lockstepGroups.Inc()
				tel.lockstepSpecs.Add(int64(lanes))
				tel.laneOccupancy.Observe(lanes)
				start := time.Now()
				runLockstepGroup(ctx, specs, graphs, members[:lanes], algs[key], o, ev, out)
				tel.lockstepMillis.Add(time.Since(start).Milliseconds())
			} else {
				runLockstepGroup(ctx, specs, graphs, members[:lanes], algs[key], o, ev, out)
			}
			members = members[lanes:]
		}
	}
	return out
}

// runScalar is RunWith with the campaign worker's error folding.
func runScalar(ctx context.Context, s Spec, o RunOptions) Verdict {
	v, err := RunWith(ctx, s, o)
	if err != nil && v.Err == "" {
		v.Err = err.Error()
		v.OK = false
	}
	return v
}

// runLockstepGroup advances one shape-aligned group of specs (≤ 64) on a
// single lockstep engine instance and writes their verdicts into out. Any
// engine-level failure — configuration rejection or a panic mid-run —
// falls back to scalar runs for the whole group, which rebuild their
// dynamics from the specs and reproduce the verdicts (or the error)
// independently.
func runLockstepGroup(ctx context.Context, specs []Spec, graphs []dyngraph.EvolvingGraph, members []int, alg robot.LaneAlgorithm, o RunOptions, ev *laneEval, out []Verdict) {
	fallback := true
	defer func() {
		if r := recover(); r != nil {
			fallback = true
		}
		if fallback {
			for _, i := range members {
				out[i] = runScalar(ctx, specs[i], o)
			}
		}
	}()

	ev.runs = ev.runs[:0]
	for _, i := range members {
		s := specs[i]
		ev.runs = append(ev.runs, fsync.LaneRun{
			Graph:      graphs[i],
			Placements: placements(o.registry(), s),
			Horizon:    s.Horizon,
		})
	}
	ls, err := fsync.AcquireLockstep(fsync.LockstepConfig{
		Algorithm: alg,
		Lanes:     ev.runs,
		Metrics:   o.Telemetry.simMetrics(),
	})
	if err != nil {
		return // scalar fallback reproduces the rejection per spec
	}

	n := ls.Ring().Size()
	lv := ev.lv
	lv.Reset(n)
	all := ^uint64(0)
	if len(members) < laneWordSize {
		all = uint64(1)<<uint(len(members)) - 1
	}

	check := o.CheckEvery
	if check < 1 {
		check = 256
	}
	sinceCheck := 0
	cancelled := false
	primed := false
	for !ls.Done() {
		if sinceCheck <= 0 {
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			sinceCheck = check
		}
		if !primed {
			// The initial configuration counts as a visited instant, but —
			// like the scalar trackers, which prime on the first observed
			// round — only once at least one round actually executes.
			lv.Record(0, ls.Occupancy(), all)
			primed = true
		}
		stepped := ls.Step()
		lv.Record(ls.Now(), ls.Occupancy(), stepped)
		sinceCheck--
	}
	executed := ls.Now()
	stillActive := ls.Active()
	ls.Release()
	fallback = false

	for l, i := range members {
		s := specs[i]
		v, res, perr := prepareRun(s, o)
		if perr != nil {
			// prepareRun succeeded during grouping; a failure here would be
			// a registry mutation mid-block. Surface the error verdict.
			out[i] = v
			continue
		}
		if cancelled && stillActive&(1<<uint(l)) != 0 {
			instants := executed + 1
			if !primed {
				instants = 0 // no round ran: the scalar tracker saw nothing
			}
			rep := lv.Report(l, instants)
			v.Covered, v.CoverTime, v.MaxGap = rep.Covered, rep.CoverTime, rep.MaxGap
			v.Distinct = lv.Distinct(l)
			v.Outcome = "cancelled"
			v.Err = fmt.Sprintf("cancelled after %d of %d rounds: %v", executed, s.Horizon, ctx.Err())
			v.OK = false
			out[i] = v
			continue
		}
		classify(&v, s, res, lv.Report(l, s.Horizon+1), lv.Distinct(l))
		out[i] = v
	}
}
