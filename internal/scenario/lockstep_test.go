package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"reflect"
	"testing"

	"pef/internal/fsync"
)

var updateLockstepGoldens = flag.Bool("update-lockstep-goldens", false,
	"regenerate testdata/lockstep_registered.* from the scalar path")

// TestRunBlockMatchesRunWith is the engine-equivalence suite: for every
// stock generator plus the registered generator over all explorable
// families, block verdicts must equal per-spec scalar verdicts field for
// field, at every block width (1 disables lane sharing entirely, 7 forces
// partial words and mixed retirement, 64 is the full word).
func TestRunBlockMatchesRunWith(t *testing.T) {
	ctx := context.Background()
	for _, gen := range []string{"uniform", "boundary", "markov", "adversarial", "registered"} {
		specs, err := Generate(gen, GenConfig{}, 5, 48)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		want := make([]Verdict, len(specs))
		for i, s := range specs {
			want[i] = runScalar(ctx, s, RunOptions{})
		}
		for _, width := range []int{1, 7, 64} {
			for start := 0; start < len(specs); start += width {
				end := min(start+width, len(specs))
				got := RunBlock(ctx, specs[start:end], RunOptions{})
				for j := range got {
					if !reflect.DeepEqual(got[j], want[start+j]) {
						t.Fatalf("%s width %d spec %d (%s):\nlockstep %+v\nscalar   %+v",
							gen, width, start+j, specs[start+j].ID(), got[j], want[start+j])
					}
				}
			}
		}
	}
}

// TestCampaignLockstepScalarByteIdentity pins the campaign-level
// guarantee: reports and JSON documents are byte-identical between the
// scalar path (DisableLockstep) and the lane engine, for any worker count
// and lane width — and both match the committed golden generated from
// the scalar path over the full explorable-family pool.
func TestCampaignLockstepScalarByteIdentity(t *testing.T) {
	base := CampaignConfig{Generator: "registered", Count: 40, Seeds: []uint64{3, 4}}
	render := func(cfg CampaignConfig) (string, string) {
		c, err := RunCampaign(context.Background(), cfg)
		if err != nil {
			t.Fatalf("campaign %+v: %v", cfg, err)
		}
		var rep, js bytes.Buffer
		if err := c.WriteReport(&rep); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return rep.String(), js.String()
	}

	scalar := base
	scalar.DisableLockstep = true
	scalar.Workers = 1
	wantRep, wantJSON := render(scalar)

	if *updateLockstepGoldens {
		if err := os.WriteFile("testdata/lockstep_registered.txt", []byte(wantRep), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/lockstep_registered.json", []byte(wantJSON), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	goldRep, err := os.ReadFile("testdata/lockstep_registered.txt")
	if err != nil {
		t.Fatal(err)
	}
	goldJSON, err := os.ReadFile("testdata/lockstep_registered.json")
	if err != nil {
		t.Fatal(err)
	}
	if wantRep != string(goldRep) {
		t.Error("scalar report differs from committed golden")
	}
	if wantJSON != string(goldJSON) {
		t.Error("scalar JSON differs from committed golden")
	}

	for _, workers := range []int{1, 4} {
		for _, width := range []int{1, 7, 64} {
			cfg := base
			cfg.Workers = workers
			cfg.LaneWidth = width
			rep, js := render(cfg)
			if rep != wantRep {
				t.Errorf("workers=%d width=%d: lockstep report differs from scalar", workers, width)
			}
			if js != wantJSON {
				t.Errorf("workers=%d width=%d: lockstep JSON differs from scalar", workers, width)
			}
		}
	}
}

// TestRunBlockObserversForceScalar checks the conservative eligibility
// gate: any imperative override routes through the scalar oracle (whose
// observers see real snapshots), never the lane engine.
func TestRunBlockObserversForceScalar(t *testing.T) {
	specs, err := Generate("uniform", GenConfig{}, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	obs := countRounds{&rounds}
	tel := NewTelemetry()
	got := RunBlock(context.Background(), specs, RunOptions{Observers: []fsync.Observer{obs}, Telemetry: tel})
	for i, s := range specs {
		want := runScalar(context.Background(), s, RunOptions{Observers: []fsync.Observer{obs}})
		// The observer counter differs between the two passes; compare the
		// stable fields.
		want.Err = got[i].Err
		if got[i].ID != s.ID() || got[i].OK != want.OK || got[i].Outcome != want.Outcome {
			t.Fatalf("spec %d: override verdict %+v, want %+v", i, got[i], want)
		}
	}
	if rounds == 0 {
		t.Fatal("observers were dropped: the block must have run scalar with observers attached")
	}
	// The telemetry bundle saw the routing decision: every spec left the
	// lockstep path, attributed to the observer override.
	snap := tel.Snapshot()
	if got := snap.Counters["engine.lockstepSpecs"]; got != 0 {
		t.Fatalf("engine.lockstepSpecs = %d with observers attached, want 0", got)
	}
	if got := snap.Counters["engine.skip.overrides"]; got != int64(len(specs)) {
		t.Fatalf("engine.skip.overrides = %d, want %d", got, len(specs))
	}
	if got := snap.Counters["engine.scalarSpecs"]; got != int64(len(specs)) {
		t.Fatalf("engine.scalarSpecs = %d, want %d", got, len(specs))
	}
}

// TestRunBlockTelemetryStaysLockstep is the differential counterpart of
// TestRunBlockObserversForceScalar: attaching Telemetry — unlike
// attaching observers — must NOT force a block off the lockstep path,
// and must not change a single verdict field.
func TestRunBlockTelemetryStaysLockstep(t *testing.T) {
	specs, err := Generate("uniform", GenConfig{}, 21, 64)
	if err != nil {
		t.Fatal(err)
	}
	plain := RunBlock(context.Background(), specs, RunOptions{})
	tel := NewTelemetry()
	got := RunBlock(context.Background(), specs, RunOptions{Telemetry: tel})
	for i := range specs {
		if got[i] != plain[i] {
			t.Fatalf("spec %d: telemetry changed the verdict:\n got %+v\nwant %+v", i, got[i], plain[i])
		}
	}
	snap := tel.Snapshot()
	if got := snap.Counters["engine.lockstepSpecs"]; got == 0 {
		t.Fatalf("engine.lockstepSpecs = 0: telemetry forced the block off the lockstep path (counters: %v)", snap.Counters)
	}
	if got := snap.Counters["engine.skip.overrides"]; got != 0 {
		t.Fatalf("engine.skip.overrides = %d with no overrides attached, want 0", got)
	}
	if lock, scal := snap.Counters["engine.lockstepSpecs"], snap.Counters["engine.scalarSpecs"]; lock+scal != int64(len(specs)) {
		t.Fatalf("lockstep(%d)+scalar(%d) specs != %d routed", lock, scal, len(specs))
	}
	if snap.Counters["sim.lockstep.rounds"] == 0 {
		t.Fatal("lane engine ran but recorded no lockstep rounds")
	}
}

// countRounds counts observed rounds; its presence in RunOptions must
// force the scalar engine.
type countRounds struct{ rounds *int }

func (c countRounds) ObserveRound(fsync.RoundEvent) { *c.rounds++ }
