package scenario

// Margin is one predicate-headroom observation of a verdict: how far a
// measured execution stayed from the bound its property enforced. Small
// margins mark the regions where the paper's theorems are tightest — the
// signal the coverage-guided search steers by.
type Margin struct {
	// Metric names the margin ("coverSlack", "gapHeadroom",
	// "confineHeadroom") — the same scalar IDs campaign reports record.
	Metric string `json:"metric"`
	// Value is the raw headroom in the metric's own unit (rounds for the
	// explore margins, distinct nodes for confinement). Negative values
	// mark a violated bound.
	Value int `json:"value"`
	// Rel is Value normalized by its bound to per-mille — coverSlack over
	// the horizon, gapHeadroom over the Horizon/2 gap ceiling,
	// confineHeadroom over the confinement limit — so margins compare
	// across specs and metrics. Surviving runs land in [0, 1000];
	// violations go negative.
	Rel int `json:"rel"`
}

// Margins computes the predicate margins of a verdict: exactly the
// headrooms Aggregate.Add records into campaign reports, in the same
// order (coverSlack, then gapHeadroom, for explore expectations;
// confineHeadroom for confinement). Errored and cancelled verdicts carry
// no metrics and return nil, as do report-only (ExpectNone) verdicts —
// no enforced bound, no margin.
func (r *Registry) Margins(v Verdict) []Margin {
	return r.AppendMargins(nil, v)
}

// AppendMargins is Margins appending into dst — the allocation-free form
// the per-verdict aggregation fold uses (hand it a reused scratch slice).
func (r *Registry) AppendMargins(dst []Margin, v Verdict) []Margin {
	if v.Err != "" {
		return dst
	}
	ms := dst
	switch v.Expect {
	case ExpectExplore:
		if v.CoverTime >= 0 {
			// Rounds to spare between full cover and the horizon.
			ms = append(ms, newMargin("coverSlack", v.Spec.Horizon-v.CoverTime, v.Spec.Horizon))
		}
		if v.Outcome == "explored" || v.Outcome == "partial" {
			// Distance from the revisit-gap ceiling the explore property
			// enforces (Horizon/2, see ExploreViolation).
			ms = append(ms, newMargin("gapHeadroom", v.Spec.Horizon/2-v.MaxGap, v.Spec.Horizon/2))
		}
	case ExpectConfine:
		// Distinct-node headroom under the family's confinement limit.
		limit := r.confineLimit(v.Spec.Family)
		ms = append(ms, newMargin("confineHeadroom", limit-v.Distinct, limit))
	}
	return ms
}

func newMargin(metric string, value, bound int) Margin {
	m := Margin{Metric: metric, Value: value}
	if bound > 0 {
		m.Rel = value * 1000 / bound
	}
	return m
}
