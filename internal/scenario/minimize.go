package scenario

import (
	"context"
	"math"
)

// Minimize deterministically shrinks a failing scenario to a smaller
// reproducer: it greedily lowers the horizon, ring size, team size and
// dynamics parameters — in that fixed order, smallest candidate first —
// keeping every step only if the shrunk spec still fails the same way
// (predicate violation stays a violation of the same enforced
// expectation; execution errors stay errors). The passes repeat until a
// fixed point, so Minimize is idempotent: Minimize(Minimize(s)) ==
// Minimize(s). A spec that does not fail is returned unchanged.
//
// For explore-expectation violations a shrink must also stay
// *attributable*: the paper's own algorithm at the shrunk (ring, team)
// must still satisfy the predicate there. Without this control run the
// shrinker would collapse every violation into a trivially unsatisfiable
// corner (horizon 1, say) that "fails" for any algorithm and reproduces
// nothing.
//
// Minimization re-runs the scenario for every accepted or probed
// candidate, so its cost is a small multiple of running the original
// spec; the horizon pass runs first to cut the per-probe cost early.
//
// Minimize resolves names through the default registry; violations found
// under a custom registry shrink via the Registry.Minimize method (the
// default would misread their families as unknown and "shrink" the
// config error instead of the behaviour).
func Minimize(s Spec) Spec { return DefaultRegistry().Minimize(s) }

// Minimize deterministically shrinks a failing scenario against this
// registry; see the package-level Minimize for the algorithm.
func (r *Registry) Minimize(s Spec) Spec {
	v := runIn(r, s)
	if v.OK && v.Err == "" {
		return s
	}
	// Pin the enforced expectation so shrinking cannot silently switch
	// the predicate being violated (e.g. an under-threshold shrink
	// turning an explore claim into a vacuous "none").
	if s.Expect == "" {
		s.Expect = v.Expect
	}
	wantErr := v.Err != ""
	fails := func(c Spec) bool {
		cv := runIn(r, c)
		if cv.OK && cv.Err == "" {
			return false
		}
		if (cv.Err != "") != wantErr {
			return false
		}
		return wantErr || stillAttributable(r, c)
	}
	for pass := 0; pass < 8; pass++ {
		next := shrinkOnce(s, fails)
		if next == s {
			break
		}
		s = next
	}
	return s
}

// stillAttributable guards explore-expectation shrinks against vacuous
// failures: the paper's proven algorithm at the candidate's (ring, team)
// must itself satisfy the predicate there, so the candidate's failure
// stays attributable to the scenario under test rather than to an
// unsatisfiable corner of the parameter space. When the suspect *is* the
// paper's algorithm (a genuine counterexample candidate against the
// reproduction), there is no independent control and the shrink is
// accepted on the failure signature alone.
func stillAttributable(r *Registry, c Spec) bool {
	if c.Expect != ExpectExplore {
		return true // confinement escapes and vacuous expectations shrink freely
	}
	control := paperAlgorithm(c.Ring, c.Robots)
	if control == "" {
		return false // outside the computable region: explore is unprovable there
	}
	if control == c.Algorithm {
		return true
	}
	cc := c
	cc.Algorithm = control
	cv := runIn(r, cc)
	return cv.OK && cv.Err == ""
}

// runIn is Run against an explicit registry: errors fold into the
// verdict, like every campaign-facing entry point.
func runIn(r *Registry, s Spec) Verdict {
	v, err := RunWith(context.Background(), s, RunOptions{Registry: r})
	if err != nil && v.Err == "" {
		v.Err = err.Error()
		v.OK = false
	}
	return v
}

// shrinkOnce runs every shrink pass once and returns the improved spec
// (== s at a fixed point).
func shrinkOnce(s Spec, fails func(Spec) bool) Spec {
	s = shrinkHorizon(s, fails)
	s = shrinkRing(s, fails)
	s = shrinkRobots(s, fails)
	s = shrinkParams(s, fails)
	return s
}

// accept returns c when it still fails, otherwise s.
func accept(s, c Spec, fails func(Spec) bool) (Spec, bool) {
	if fails(c) {
		return c, true
	}
	return s, false
}

// shrinkHorizon probes a fixed ladder of shorter horizons, smallest
// first.
func shrinkHorizon(s Spec, fails func(Spec) bool) Spec {
	h := s.Horizon
	for _, cand := range []int{1, h / 16, h / 8, h / 4, h / 2, (3 * h) / 4} {
		if cand < 1 || cand >= h {
			continue
		}
		c := s
		c.Horizon = cand
		if next, ok := accept(s, c, fails); ok {
			return next
		}
	}
	return s
}

// shrinkRing probes every smaller ring size in ascending order. Shrinks
// that break the spec's structural constraints produce error verdicts and
// are rejected by the failure-signature check (unless the original
// already errored, in which case a smaller erroring spec is exactly the
// minimal reproducer).
func shrinkRing(s Spec, fails func(Spec) bool) Spec {
	for n := 2; n < s.Ring; n++ {
		c := s
		c.Ring = n
		// Keep positional parameters inside the smaller ring so the probe
		// fails for behavioral reasons, not out-of-range indices.
		if c.Params.Edge >= n {
			c.Params.Edge = 0
		}
		if c.Params.Cut >= n {
			c.Params.Cut = 0
		}
		if next, ok := accept(s, c, fails); ok {
			return next
		}
	}
	return s
}

// shrinkRobots probes every smaller team size in ascending order.
func shrinkRobots(s Spec, fails func(Spec) bool) Spec {
	for k := 1; k < s.Robots; k++ {
		c := s
		c.Robots = k
		if next, ok := accept(s, c, fails); ok {
			return next
		}
	}
	return s
}

// shrinkParams probes simpler dynamics parameters: integers toward zero
// (halving, then zero), probabilities toward coarse one-decimal values.
func shrinkParams(s Spec, fails func(Spec) bool) Spec {
	ints := []struct {
		get func(*Params) *int
	}{
		{func(p *Params) *int { return &p.Delta }},
		{func(p *Params) *int { return &p.Edge }},
		{func(p *Params) *int { return &p.From }},
		{func(p *Params) *int { return &p.Period }},
		{func(p *Params) *int { return &p.T }},
		{func(p *Params) *int { return &p.Cut }},
		{func(p *Params) *int { return &p.Budget }},
	}
	for _, f := range ints {
		cur := *f.get(&s.Params)
		for _, cand := range []int{0, cur / 2} {
			if cand >= cur {
				continue
			}
			c := s
			*f.get(&c.Params) = cand
			if next, ok := accept(s, c, fails); ok {
				s = next
				break
			}
		}
	}
	floats := []func(*Params) *float64{
		func(p *Params) *float64 { return &p.P },
		func(p *Params) *float64 { return &p.Up },
		func(p *Params) *float64 { return &p.Down },
	}
	for _, get := range floats {
		cur := *get(&s.Params)
		for _, cand := range []float64{0, math.Round(cur*10) / 10} {
			if cand >= cur {
				continue
			}
			c := s
			*get(&c.Params) = cand
			if next, ok := accept(s, c, fails); ok {
				s = next
				break
			}
		}
	}
	return s
}
