package scenario

import "testing"

// violatingSpec is a deterministic counterexample workload: the
// oscillator baseline never leaves its starting neighborhood, so forcing
// the explore expectation on it violates the predicate at any size.
func violatingSpec() Spec {
	return Spec{
		Version:   Version,
		Ring:      12,
		Robots:    3,
		Algorithm: "oscillator",
		Placement: PlaceAdjacent,
		Family:    "static",
		Horizon:   2400,
		Seed:      7,
		Expect:    ExpectExplore,
	}
}

func TestMinimizeLeavesPassingSpecsAlone(t *testing.T) {
	s := Spec{
		Version:   Version,
		Ring:      8,
		Robots:    3,
		Algorithm: "pef3+",
		Placement: PlaceEven,
		Family:    "static",
		Horizon:   1600,
		Seed:      1,
	}
	if v := Run(s); !v.OK {
		t.Fatalf("baseline spec unexpectedly fails: %+v", v)
	}
	if got := Minimize(s); got != s {
		t.Fatalf("Minimize changed a passing spec:\n got %+v\nwant %+v", got, s)
	}
}

func TestMinimizeShrinksAndPreservesViolation(t *testing.T) {
	s := violatingSpec()
	v := Run(s)
	if v.OK || v.Err != "" {
		t.Fatalf("seed spec is not a clean violation: %+v", v)
	}
	m := Minimize(s)
	mv := Run(m)
	if mv.OK || mv.Err != "" {
		t.Fatalf("minimized spec no longer violates cleanly: %+v", mv)
	}
	if mv.Expect != v.Expect {
		t.Fatalf("minimization switched the enforced predicate: %s vs %s", mv.Expect, v.Expect)
	}
	if m.Ring > s.Ring || m.Robots > s.Robots || m.Horizon > s.Horizon {
		t.Fatalf("minimized spec grew: %+v", m)
	}
	if m.Ring == s.Ring && m.Horizon == s.Horizon && m.Robots == s.Robots {
		t.Fatalf("minimizer made no progress on an obviously shrinkable spec: %+v", m)
	}
}

func TestMinimizeIsIdempotentAndDeterministic(t *testing.T) {
	s := violatingSpec()
	first := Minimize(s)
	if again := Minimize(s); again != first {
		t.Fatalf("Minimize is not deterministic:\n %+v\nvs %+v", again, first)
	}
	if twice := Minimize(first); twice != first {
		t.Fatalf("Minimize is not idempotent:\n %+v\nvs %+v", twice, first)
	}
}

func TestMinimizePreservesErrorSignature(t *testing.T) {
	s := violatingSpec()
	s.Algorithm = "no-such-algorithm" // error verdict, not a violation
	if v := Run(s); v.Err == "" {
		t.Fatalf("seed spec did not error: %+v", v)
	}
	m := Minimize(s)
	if mv := Run(m); mv.Err == "" {
		t.Fatalf("minimized spec lost the error signature: %+v", mv)
	}
}
