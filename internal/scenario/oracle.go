package scenario

import (
	"context"
	"fmt"
	"sync"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/spec"
)

// Verdict is the oracle's structured outcome for one spec: the expectation
// it enforced, what actually happened, scalar metrics, and — when the
// paper's predicate failed — a violation message. A Verdict with OK=false
// is a counterexample candidate against the paper (or, far more likely, a
// bug in the reproduction); campaigns treat any of them as failures.
type Verdict struct {
	// ID is the spec's canonical identifier.
	ID string `json:"id"`
	// Spec is the scenario that ran.
	Spec Spec `json:"spec"`
	// Expect is the enforced expectation (never empty: derived via
	// Expectation when the spec leaves it open).
	Expect string `json:"expect"`
	// Outcome summarizes the run: "explored", "partial", "confined",
	// "escaped", or "error".
	Outcome string `json:"outcome"`
	// OK reports that the expectation holds (vacuously true for
	// ExpectNone).
	OK bool `json:"ok"`
	// Covered, CoverTime and MaxGap are the exploration metrics of the
	// run (CoverTime is -1 when the ring was never fully covered).
	Covered   int `json:"covered"`
	CoverTime int `json:"coverTime"`
	MaxGap    int `json:"maxGap"`
	// Distinct is the number of distinct nodes ever visited (the
	// quantity the confinement theorems bound).
	Distinct int `json:"distinct"`
	// Violation explains a failed predicate.
	Violation string `json:"violation,omitempty"`
	// Err reports an execution error or recovered panic.
	Err string `json:"error,omitempty"`
}

// algorithmPool is the scenario subsystem's own name→algorithm table,
// built once: the paper's algorithms, their ablations, and the baseline
// suite. It deliberately bypasses the global registry (campaign workers
// must not race on registration), and every entry is a stateless factory
// (fresh cores come from NewCore), so sharing the values across workers
// is safe.
var algorithmPool = sync.OnceValues(func() ([]string, map[string]robot.Algorithm) {
	algs := []robot.Algorithm{
		core.PEF3Plus{}, core.PEF2{}, core.PEF1{},
		core.NoRule2{}, core.NoRule3{},
	}
	algs = append(algs, baseline.Suite()...)
	names := make([]string, len(algs))
	byName := make(map[string]robot.Algorithm, len(algs))
	for i, alg := range algs {
		names[i] = alg.Name()
		byName[alg.Name()] = alg
	}
	return names, byName
})

// resolveAlgorithm instantiates a robot algorithm by name.
func resolveAlgorithm(name string) (robot.Algorithm, error) {
	_, byName := algorithmPool()
	if alg, ok := byName[name]; ok {
		return alg, nil
	}
	return nil, fmt.Errorf("scenario: unknown algorithm %q", name)
}

// AlgorithmNames lists every algorithm name a Spec may reference, in
// canonical order.
func AlgorithmNames() []string {
	names, _ := algorithmPool()
	return append([]string(nil), names...)
}

// placements realizes the spec's placement policy. The confinement
// adversaries require their proof's initial configuration (robots on nodes
// 0 and 1, mirrored chiralities), so they override the policy.
func placements(s Spec) []fsync.Placement {
	switch s.Family {
	case FamilyConfineOne:
		return []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}
	case FamilyConfineTwo:
		return []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCCW},
		}
	}
	switch s.Placement {
	case PlaceEven:
		return fsync.EvenPlacements(s.Ring, s.Robots)
	case PlaceAdjacent:
		return fsync.AdjacentPlacements(s.Ring, s.Robots, 0)
	default:
		return fsync.RandomPlacements(s.Ring, s.Robots, prng.NewSource(s.Seed))
	}
}

// buildDynamics realizes the spec's dynamics family.
func buildDynamics(s Spec) (fsync.Dynamics, error) {
	switch s.Family {
	case FamilyBlockPointed:
		return adversary.NewBlockPointed(s.Ring, s.Params.Budget), nil
	case FamilyConfineOne:
		return adversary.NewOneRobotConfinement(s.Ring, 0, 0), nil
	case FamilyConfineTwo:
		return adversary.NewTwoRobotConfinement(s.Ring, 0, 0, 1), nil
	}
	fp := dynamics.FamilyParams{
		P: s.Params.P, Up: s.Params.Up, Down: s.Params.Down,
		Delta: s.Params.Delta, Edge: s.Params.Edge, From: s.Params.From,
		Period: s.Params.Period, T: s.Params.T, Cut: s.Params.Cut,
		// Materialized families (markov) record exactly the horizon the
		// run needs.
		Horizon: s.Horizon,
	}
	wl, err := dynamics.Family(s.Family, fp)
	if err != nil {
		return nil, err
	}
	if s.Family == "markov" {
		// The materialized Family build retains O(horizon) edge sets; the
		// streaming chain is bit-identical and holds only a bounded window,
		// which is what lets campaigns scale to very long horizons.
		g, err := dynamics.NewMarkovStream(s.Ring, s.Params.Up, s.Params.Down, s.Seed, markovWindow)
		if err != nil {
			return nil, err
		}
		return fsync.Oblivious{G: g}, nil
	}
	return fsync.Oblivious{G: wl.Build(s.Ring, s.Seed)}, nil
}

// markovWindow is the sliding-window size of streaming markov runs; the
// simulator reads only the current instant, so a handful of retained
// snapshots is plenty.
const markovWindow = 8

// confineLimit returns the confinement bound a theorem adversary enforces.
func confineLimit(family string) int {
	if family == FamilyConfineOne {
		return 2 // Theorem 5.1: one robot visits at most two nodes
	}
	return 3 // Theorem 4.1: two robots visit at most three nodes
}

// evaluator bundles the per-spec checkers a campaign worker reuses from
// spec to spec; together with the fsync simulator pool it makes the
// steady-state per-round cost of a campaign allocation-free.
type evaluator struct {
	vt *spec.VisitTracker
	ct *spec.ConfinementTracker
}

var evalPool = sync.Pool{New: func() any {
	return &evaluator{vt: spec.NewVisitTracker(1), ct: spec.NewConfinementTracker()}
}}

// RunOptions customizes one oracle run beyond what the declarative Spec
// pins down. The zero value runs the spec exactly as written; overrides
// let the facade route imperative configurations (arbitrary Algorithm and
// Dynamics values, explicit placements, extra observers) through the same
// unified execution and verdict path.
type RunOptions struct {
	// Algorithm, when non-nil, overrides the Spec.Algorithm registry
	// lookup — the spec's name then only labels the verdict.
	Algorithm robot.Algorithm
	// Dynamics, when non-nil, overrides the Spec.Family build. Its ring
	// size must equal Spec.Ring; the spec's family then only labels the
	// verdict.
	Dynamics fsync.Dynamics
	// Placements, when non-empty, overrides the spec's placement policy
	// (but never the confinement adversaries' proof configuration).
	Placements []fsync.Placement
	// Observers are attached to the simulator in addition to the oracle's
	// own trackers — trace sinks, diagnostics, custom metrics.
	Observers []fsync.Observer
	// CheckEvery is the number of rounds between context-cancellation
	// polls; values < 1 mean 256. Smaller values cancel long horizons
	// faster at slightly higher per-round cost.
	CheckEvery int
}

// validateForRun checks the spec like Spec.Validate, relaxed by the
// overrides: an injected Algorithm skips the registry lookup, an injected
// Dynamics skips the family checks (the engine still validates ring/team
// shape). Non-positive horizons are always rejected — a zero-round run
// would report Covered=0 without ever executing, the silent-failure mode
// the unified entry point exists to close.
func validateForRun(s Spec, o RunOptions) error {
	if s.Ring < 2 {
		return fmt.Errorf("scenario: ring size %d below 2", s.Ring)
	}
	if s.Robots < 1 || s.Robots >= s.Ring {
		return fmt.Errorf("scenario: need 0 < robots < ring, got k=%d n=%d", s.Robots, s.Ring)
	}
	if s.Horizon < 1 {
		return fmt.Errorf("scenario: non-positive horizon %d (a run must execute at least one round)", s.Horizon)
	}
	if o.Algorithm == nil {
		if _, err := resolveAlgorithm(s.Algorithm); err != nil {
			return err
		}
	}
	if len(o.Placements) == 0 {
		switch s.Placement {
		case PlaceRandom, PlaceEven, PlaceAdjacent:
		default:
			return fmt.Errorf("scenario: unknown placement %q", s.Placement)
		}
	} else if len(o.Placements) != s.Robots {
		return fmt.Errorf("scenario: %d explicit placements for k=%d robots", len(o.Placements), s.Robots)
	}
	if o.Dynamics != nil {
		if n := o.Dynamics.Ring().Size(); n != s.Ring {
			return fmt.Errorf("scenario: dynamics ring size %d disagrees with spec ring %d", n, s.Ring)
		}
	} else {
		if !knownFamily(s.Family) {
			return fmt.Errorf("scenario: unknown family %q", s.Family)
		}
		switch s.Family {
		case FamilyConfineOne:
			if s.Robots != 1 || s.Ring < 3 {
				return fmt.Errorf("scenario: %s needs k=1 and n>=3, got k=%d n=%d", s.Family, s.Robots, s.Ring)
			}
		case FamilyConfineTwo:
			if s.Robots != 2 || s.Ring < 4 {
				return fmt.Errorf("scenario: %s needs k=2 and n>=4, got k=%d n=%d", s.Family, s.Robots, s.Ring)
			}
		case FamilyBlockPointed:
			if s.Params.Budget < 1 {
				return fmt.Errorf("scenario: %s needs Budget >= 1, got %d", s.Family, s.Params.Budget)
			}
		}
	}
	switch s.Expect {
	case "", ExpectExplore, ExpectConfine, ExpectNone:
	default:
		return fmt.Errorf("scenario: unknown expectation %q", s.Expect)
	}
	return nil
}

// Run executes the spec and checks the paper's predicate. It never
// panics: invalid specs and diverging runs come back as error verdicts,
// so one bad sample cannot take down a million-scenario campaign.
func Run(s Spec) Verdict {
	v, err := RunWith(context.Background(), s, RunOptions{})
	if err != nil && v.Err == "" {
		v.Err = err.Error()
		v.OK = false
	}
	return v
}

// RunWith is the unified oracle entry point behind the public pef.Run: it
// executes the spec under ctx with the given overrides and checks the
// paper's predicate for it.
//
// Configuration problems (invalid spec, unknown names, inconsistent
// overrides) return a non-nil error alongside an error verdict. When ctx
// is cancelled mid-run the partial verdict — metrics over the rounds that
// did execute, Outcome "cancelled" — is returned together with ctx's
// error, so long horizons stay cancellable without losing what was
// already measured. Predicate violations are not errors: they come back
// as OK=false verdicts.
func RunWith(ctx context.Context, s Spec, o RunOptions) (v Verdict, err error) {
	v = Verdict{ID: s.ID(), Spec: s, Expect: s.Expect, CoverTime: -1, Outcome: "error"}
	if v.Expect == "" {
		v.Expect = Expectation(s)
	}
	defer func() {
		if r := recover(); r != nil {
			v.Err = fmt.Sprintf("panic: %v", r)
			v.Outcome = "error"
			v.OK = false
		}
	}()
	if verr := validateForRun(s, o); verr != nil {
		v.Err = verr.Error()
		return v, verr
	}
	alg := o.Algorithm
	if alg == nil {
		if alg, err = resolveAlgorithm(s.Algorithm); err != nil {
			v.Err = err.Error()
			return v, err
		}
	}
	dyn := o.Dynamics
	if dyn == nil {
		if dyn, err = buildDynamics(s); err != nil {
			v.Err = err.Error()
			return v, err
		}
	}
	place := o.Placements
	if len(place) == 0 || s.Family == FamilyConfineOne || s.Family == FamilyConfineTwo {
		place = placements(s)
	}
	ev := evalPool.Get().(*evaluator)
	defer evalPool.Put(ev)
	vt, ct := ev.vt, ev.ct
	vt.Reset(s.Ring)
	ct.Reset()
	observers := make([]fsync.Observer, 0, 2+len(o.Observers))
	observers = append(observers, vt, ct)
	observers = append(observers, o.Observers...)
	sim, err := fsync.Acquire(fsync.Config{
		Algorithm:  alg,
		Dynamics:   dyn,
		Placements: place,
		Observers:  observers,
	})
	if err != nil {
		v.Err = err.Error()
		return v, err
	}
	check := o.CheckEvery
	if check < 1 {
		check = 256
	}
	cancelled := false
	for sim.Now() < s.Horizon {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		target := sim.Now() + check
		if target > s.Horizon {
			target = s.Horizon
		}
		for sim.Now() < target {
			sim.Step() // not sim.Run: its returned Snapshot would allocate per chunk
		}
	}
	executed := sim.Now()
	sim.Release()
	rep := vt.Report()
	v.Covered, v.CoverTime, v.MaxGap = rep.Covered, rep.CoverTime, rep.MaxGap
	v.Distinct = ct.Distinct()
	if cancelled {
		err := ctx.Err()
		v.Outcome = "cancelled"
		v.Err = fmt.Sprintf("cancelled after %d of %d rounds: %v", executed, s.Horizon, err)
		v.OK = false
		return v, err
	}

	exploreMsg := rep.ExploreViolation(2, s.Horizon/2)
	v.Outcome = "partial"
	if exploreMsg == "" {
		v.Outcome = "explored"
	}

	switch v.Expect {
	case ExpectExplore:
		if exploreMsg != "" {
			v.Violation = exploreMsg
			v.OK = false
			return v, nil
		}
		v.OK = true
	case ExpectConfine:
		limit := confineLimit(s.Family)
		if v.Distinct <= limit {
			v.Outcome = "confined"
			v.OK = true
		} else {
			v.Outcome = "escaped"
			v.Violation = fmt.Sprintf("visited %d distinct nodes, theorem bound is %d", v.Distinct, limit)
			v.OK = false
		}
	default: // ExpectNone: informational
		v.OK = true
	}
	return v, nil
}
