package scenario

import (
	"fmt"
	"sync"

	"pef/internal/adversary"
	"pef/internal/baseline"
	"pef/internal/core"
	"pef/internal/dynamics"
	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/spec"
)

// Verdict is the oracle's structured outcome for one spec: the expectation
// it enforced, what actually happened, scalar metrics, and — when the
// paper's predicate failed — a violation message. A Verdict with OK=false
// is a counterexample candidate against the paper (or, far more likely, a
// bug in the reproduction); campaigns treat any of them as failures.
type Verdict struct {
	// ID is the spec's canonical identifier.
	ID string `json:"id"`
	// Spec is the scenario that ran.
	Spec Spec `json:"spec"`
	// Expect is the enforced expectation (never empty: derived via
	// Expectation when the spec leaves it open).
	Expect string `json:"expect"`
	// Outcome summarizes the run: "explored", "partial", "confined",
	// "escaped", or "error".
	Outcome string `json:"outcome"`
	// OK reports that the expectation holds (vacuously true for
	// ExpectNone).
	OK bool `json:"ok"`
	// Covered, CoverTime and MaxGap are the exploration metrics of the
	// run (CoverTime is -1 when the ring was never fully covered).
	Covered   int `json:"covered"`
	CoverTime int `json:"coverTime"`
	MaxGap    int `json:"maxGap"`
	// Distinct is the number of distinct nodes ever visited (the
	// quantity the confinement theorems bound).
	Distinct int `json:"distinct"`
	// Violation explains a failed predicate.
	Violation string `json:"violation,omitempty"`
	// Err reports an execution error or recovered panic.
	Err string `json:"error,omitempty"`
}

// algorithmPool is the scenario subsystem's own name→algorithm table,
// built once: the paper's algorithms, their ablations, and the baseline
// suite. It deliberately bypasses the global registry (campaign workers
// must not race on registration), and every entry is a stateless factory
// (fresh cores come from NewCore), so sharing the values across workers
// is safe.
var algorithmPool = sync.OnceValues(func() ([]string, map[string]robot.Algorithm) {
	algs := []robot.Algorithm{
		core.PEF3Plus{}, core.PEF2{}, core.PEF1{},
		core.NoRule2{}, core.NoRule3{},
	}
	algs = append(algs, baseline.Suite()...)
	names := make([]string, len(algs))
	byName := make(map[string]robot.Algorithm, len(algs))
	for i, alg := range algs {
		names[i] = alg.Name()
		byName[alg.Name()] = alg
	}
	return names, byName
})

// resolveAlgorithm instantiates a robot algorithm by name.
func resolveAlgorithm(name string) (robot.Algorithm, error) {
	_, byName := algorithmPool()
	if alg, ok := byName[name]; ok {
		return alg, nil
	}
	return nil, fmt.Errorf("scenario: unknown algorithm %q", name)
}

// AlgorithmNames lists every algorithm name a Spec may reference, in
// canonical order.
func AlgorithmNames() []string {
	names, _ := algorithmPool()
	return append([]string(nil), names...)
}

// placements realizes the spec's placement policy. The confinement
// adversaries require their proof's initial configuration (robots on nodes
// 0 and 1, mirrored chiralities), so they override the policy.
func placements(s Spec) []fsync.Placement {
	switch s.Family {
	case FamilyConfineOne:
		return []fsync.Placement{{Node: 0, Chirality: robot.RightIsCW}}
	case FamilyConfineTwo:
		return []fsync.Placement{
			{Node: 0, Chirality: robot.RightIsCW},
			{Node: 1, Chirality: robot.RightIsCCW},
		}
	}
	switch s.Placement {
	case PlaceEven:
		return fsync.EvenPlacements(s.Ring, s.Robots)
	case PlaceAdjacent:
		return fsync.AdjacentPlacements(s.Ring, s.Robots, 0)
	default:
		return fsync.RandomPlacements(s.Ring, s.Robots, prng.NewSource(s.Seed))
	}
}

// buildDynamics realizes the spec's dynamics family.
func buildDynamics(s Spec) (fsync.Dynamics, error) {
	switch s.Family {
	case FamilyBlockPointed:
		return adversary.NewBlockPointed(s.Ring, s.Params.Budget), nil
	case FamilyConfineOne:
		return adversary.NewOneRobotConfinement(s.Ring, 0, 0), nil
	case FamilyConfineTwo:
		return adversary.NewTwoRobotConfinement(s.Ring, 0, 0, 1), nil
	}
	fp := dynamics.FamilyParams{
		P: s.Params.P, Up: s.Params.Up, Down: s.Params.Down,
		Delta: s.Params.Delta, Edge: s.Params.Edge, From: s.Params.From,
		Period: s.Params.Period, T: s.Params.T, Cut: s.Params.Cut,
		// Materialized families (markov) record exactly the horizon the
		// run needs.
		Horizon: s.Horizon,
	}
	wl, err := dynamics.Family(s.Family, fp)
	if err != nil {
		return nil, err
	}
	if s.Family == "markov" {
		// The materialized Family build retains O(horizon) edge sets; the
		// streaming chain is bit-identical and holds only a bounded window,
		// which is what lets campaigns scale to very long horizons.
		g, err := dynamics.NewMarkovStream(s.Ring, s.Params.Up, s.Params.Down, s.Seed, markovWindow)
		if err != nil {
			return nil, err
		}
		return fsync.Oblivious{G: g}, nil
	}
	return fsync.Oblivious{G: wl.Build(s.Ring, s.Seed)}, nil
}

// markovWindow is the sliding-window size of streaming markov runs; the
// simulator reads only the current instant, so a handful of retained
// snapshots is plenty.
const markovWindow = 8

// confineLimit returns the confinement bound a theorem adversary enforces.
func confineLimit(family string) int {
	if family == FamilyConfineOne {
		return 2 // Theorem 5.1: one robot visits at most two nodes
	}
	return 3 // Theorem 4.1: two robots visit at most three nodes
}

// evaluator bundles the per-spec checkers a campaign worker reuses from
// spec to spec; together with the fsync simulator pool it makes the
// steady-state per-round cost of a campaign allocation-free.
type evaluator struct {
	vt *spec.VisitTracker
	ct *spec.ConfinementTracker
}

var evalPool = sync.Pool{New: func() any {
	return &evaluator{vt: spec.NewVisitTracker(1), ct: spec.NewConfinementTracker()}
}}

// Run executes the spec and checks the paper's predicate. It never
// panics: invalid specs and diverging runs come back as error verdicts,
// so one bad sample cannot take down a million-scenario campaign.
func Run(s Spec) (v Verdict) {
	v = Verdict{ID: s.ID(), Spec: s, Expect: s.Expect, CoverTime: -1, Outcome: "error"}
	if v.Expect == "" {
		v.Expect = Expectation(s)
	}
	defer func() {
		if r := recover(); r != nil {
			v.Err = fmt.Sprintf("panic: %v", r)
			v.Outcome = "error"
			v.OK = false
		}
	}()
	if err := s.Validate(); err != nil {
		v.Err = err.Error()
		return v
	}
	alg, err := resolveAlgorithm(s.Algorithm)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	dyn, err := buildDynamics(s)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	ev := evalPool.Get().(*evaluator)
	defer evalPool.Put(ev)
	vt, ct := ev.vt, ev.ct
	vt.Reset(s.Ring)
	ct.Reset()
	sim, err := fsync.Acquire(fsync.Config{
		Algorithm:  alg,
		Dynamics:   dyn,
		Placements: placements(s),
		Observers:  []fsync.Observer{vt, ct},
	})
	if err != nil {
		v.Err = err.Error()
		return v
	}
	sim.Run(s.Horizon)
	sim.Release()
	rep := vt.Report()
	v.Covered, v.CoverTime, v.MaxGap = rep.Covered, rep.CoverTime, rep.MaxGap
	v.Distinct = ct.Distinct()

	exploreMsg := rep.ExploreViolation(2, s.Horizon/2)
	v.Outcome = "partial"
	if exploreMsg == "" {
		v.Outcome = "explored"
	}

	switch v.Expect {
	case ExpectExplore:
		if exploreMsg != "" {
			v.Violation = exploreMsg
			v.OK = false
			return v
		}
		v.OK = true
	case ExpectConfine:
		limit := confineLimit(s.Family)
		if v.Distinct <= limit {
			v.Outcome = "confined"
			v.OK = true
		} else {
			v.Outcome = "escaped"
			v.Violation = fmt.Sprintf("visited %d distinct nodes, theorem bound is %d", v.Distinct, limit)
			v.OK = false
		}
	default: // ExpectNone: informational
		v.OK = true
	}
	return v
}
