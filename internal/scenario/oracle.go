package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pef/internal/fsync"
	"pef/internal/prng"
	"pef/internal/robot"
	"pef/internal/spec"
)

// Verdict is the oracle's structured outcome for one spec: the expectation
// it enforced, what actually happened, scalar metrics, and — when the
// paper's predicate failed — a violation message. A Verdict with OK=false
// is a counterexample candidate against the paper (or, far more likely, a
// bug in the reproduction); campaigns treat any of them as failures.
type Verdict struct {
	// ID is the spec's canonical identifier.
	ID string `json:"id"`
	// Spec is the scenario that ran.
	Spec Spec `json:"spec"`
	// Expect is the enforced expectation (never empty on a successful
	// run: derived via the registry when the spec leaves it open).
	Expect string `json:"expect"`
	// Outcome summarizes the run: "explored", "partial", "confined",
	// "escaped", or "error".
	Outcome string `json:"outcome"`
	// OK reports that the expectation holds (vacuously true for
	// ExpectNone).
	OK bool `json:"ok"`
	// Covered, CoverTime and MaxGap are the exploration metrics of the
	// run (CoverTime is -1 when the ring was never fully covered).
	Covered   int `json:"covered"`
	CoverTime int `json:"coverTime"`
	MaxGap    int `json:"maxGap"`
	// Distinct is the number of distinct nodes ever visited (the
	// quantity the confinement theorems bound).
	Distinct int `json:"distinct"`
	// Violation explains a failed predicate.
	Violation string `json:"violation,omitempty"`
	// Err reports an execution error or recovered panic.
	Err string `json:"error,omitempty"`
}

// AlgorithmNames lists every algorithm name a Spec may reference in the
// default registry, in canonical (registration) order.
func AlgorithmNames() []string {
	return DefaultRegistry().AlgorithmNames()
}

// placements realizes the spec's placement policy. Families that pin
// their initial configuration (the confinement adversaries require their
// proofs') override the policy via their descriptor.
func placements(r *Registry, s Spec) []fsync.Placement {
	if d, ok := r.Family(s.Family); ok && d.Placements != nil {
		return d.Placements(s)
	}
	switch s.Placement {
	case PlaceEven:
		return fsync.EvenPlacements(s.Ring, s.Robots)
	case PlaceAdjacent:
		return fsync.AdjacentPlacements(s.Ring, s.Robots, 0)
	default:
		return fsync.RandomPlacements(s.Ring, s.Robots, prng.NewSource(s.Seed))
	}
}

// markovWindow is the sliding-window size of streaming markov runs; the
// simulator reads only the current instant, so a handful of retained
// snapshots is plenty.
const markovWindow = 8

// evaluator bundles the per-spec checkers a campaign worker reuses from
// spec to spec; together with the fsync simulator pool it makes the
// steady-state per-round cost of a campaign allocation-free.
type evaluator struct {
	vt *spec.VisitTracker
	ct *spec.ConfinementTracker
}

var evalPool = sync.Pool{New: func() any {
	return &evaluator{vt: spec.NewVisitTracker(1), ct: spec.NewConfinementTracker()}
}}

// RunOptions customizes one oracle run beyond what the declarative Spec
// pins down. The zero value runs the spec exactly as written against the
// default registry; overrides let the facade route imperative
// configurations (arbitrary Algorithm and Dynamics values, explicit
// placements, extra observers, alternative registries) through the same
// unified execution and verdict path.
type RunOptions struct {
	// Registry, when non-nil, resolves algorithm, family and property
	// names instead of the process default.
	Registry *Registry
	// Algorithm, when non-nil, overrides the Spec.Algorithm registry
	// lookup — the spec's name then only labels the verdict.
	Algorithm robot.Algorithm
	// Dynamics, when non-nil, overrides the Spec.Family build. Its ring
	// size must equal Spec.Ring; the spec's family then only labels the
	// verdict.
	Dynamics fsync.Dynamics
	// Placements, when non-empty, overrides the spec's placement policy
	// (but never a family's pinned proof configuration).
	Placements []fsync.Placement
	// Observers are attached to the simulator in addition to the oracle's
	// own trackers — trace sinks, diagnostics, custom metrics.
	Observers []fsync.Observer
	// CheckEvery is the number of rounds between context-cancellation
	// polls; values < 1 mean 256. Smaller values cancel long horizons
	// faster at slightly higher per-round cost.
	CheckEvery int
	// Telemetry, when non-nil, receives oracle and engine instrumentation
	// (run counts, per-family wall time, simulator round counters). It is
	// observational only — verdicts are byte-identical with or without it
	// — and, unlike Observers, it does not force a block off the lockstep
	// path.
	Telemetry *Telemetry
}

// registry resolves the effective registry of the options.
func (o RunOptions) registry() *Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return DefaultRegistry()
}

// validateForRun checks the spec like Spec.Validate, relaxed by the
// overrides: an injected Algorithm skips the registry lookup, an injected
// Dynamics skips the family checks (the engine still validates ring/team
// shape). Non-positive horizons are always rejected — a zero-round run
// would report Covered=0 without ever executing, the silent-failure mode
// the unified entry point exists to close.
func validateForRun(s Spec, o RunOptions) error {
	reg := o.registry()
	if s.Ring < 2 {
		return fmt.Errorf("scenario: ring size %d below 2", s.Ring)
	}
	if s.Robots < 1 || s.Robots >= s.Ring {
		return fmt.Errorf("scenario: need 0 < robots < ring, got k=%d n=%d", s.Robots, s.Ring)
	}
	if s.Horizon < 1 {
		return fmt.Errorf("scenario: non-positive horizon %d (a run must execute at least one round)", s.Horizon)
	}
	if o.Algorithm == nil {
		if _, err := reg.Algorithm(s.Algorithm); err != nil {
			return err
		}
	}
	if len(o.Placements) == 0 {
		switch s.Placement {
		case PlaceRandom, PlaceEven, PlaceAdjacent:
		default:
			return fmt.Errorf("scenario: unknown placement %q", s.Placement)
		}
	} else if len(o.Placements) != s.Robots {
		return fmt.Errorf("scenario: %d explicit placements for k=%d robots", len(o.Placements), s.Robots)
	}
	if o.Dynamics != nil {
		if n := o.Dynamics.Ring().Size(); n != s.Ring {
			return fmt.Errorf("scenario: dynamics ring size %d disagrees with spec ring %d", n, s.Ring)
		}
	} else {
		d, err := reg.familyOrErr(s.Family)
		if err != nil {
			return err
		}
		if err := d.validateSpec(s.Family, s); err != nil {
			return err
		}
	}
	if s.Expect != "" {
		if _, ok := reg.Property(s.Expect); !ok {
			return fmt.Errorf("scenario: unknown expectation %q (registered properties: %v)", s.Expect, reg.PropertyNames())
		}
	}
	return nil
}

// Run executes the spec against the default registry and checks its
// property. It never panics: invalid specs and diverging runs come back
// as error verdicts, so one bad sample cannot take down a
// million-scenario campaign.
func Run(s Spec) Verdict {
	v, err := RunWith(context.Background(), s, RunOptions{})
	if err != nil && v.Err == "" {
		v.Err = err.Error()
		v.OK = false
	}
	return v
}

// RunWith is the unified oracle entry point behind the public pef.Run: it
// executes the spec under ctx with the given overrides and checks the
// registered property for it.
//
// Configuration problems (invalid spec, unregistered names, inconsistent
// overrides) return a non-nil error alongside an error verdict. When ctx
// is cancelled mid-run the partial verdict — metrics over the rounds that
// did execute, Outcome "cancelled" — is returned together with ctx's
// error, so long horizons stay cancellable without losing what was
// already measured. Predicate violations are not errors: they come back
// as OK=false verdicts.
func RunWith(ctx context.Context, s Spec, o RunOptions) (v Verdict, err error) {
	defer func() {
		if r := recover(); r != nil {
			v.Err = fmt.Sprintf("panic: %v", r)
			v.Outcome = "error"
			v.OK = false
		}
	}()
	if o.Telemetry != nil {
		o.Telemetry.scalarRuns.Inc()
		start := time.Now()
		defer func() {
			o.Telemetry.famMillis(s.Family).Add(time.Since(start).Milliseconds())
		}()
	}
	v, res, err := prepareRun(s, o)
	if err != nil {
		return v, err
	}
	reg, fam, alg := res.reg, res.fam, res.alg
	dyn := o.Dynamics
	if dyn == nil {
		if dyn, err = fam.build(s); err != nil {
			v.Err = err.Error()
			return v, err
		}
	}
	place := o.Placements
	if len(place) == 0 || fam.Placements != nil {
		place = placements(reg, s)
	}
	ev := evalPool.Get().(*evaluator)
	defer evalPool.Put(ev)
	vt, ct := ev.vt, ev.ct
	vt.Reset(s.Ring)
	ct.Reset()
	observers := make([]fsync.Observer, 0, 2+len(o.Observers))
	observers = append(observers, vt, ct)
	observers = append(observers, o.Observers...)
	sim, err := fsync.Acquire(fsync.Config{
		Algorithm:  alg,
		Dynamics:   dyn,
		Placements: place,
		Observers:  observers,
		Metrics:    o.Telemetry.simMetrics(),
	})
	if err != nil {
		v.Err = err.Error()
		return v, err
	}
	check := o.CheckEvery
	if check < 1 {
		check = 256
	}
	cancelled := false
	for sim.Now() < s.Horizon {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		target := sim.Now() + check
		if target > s.Horizon {
			target = s.Horizon
		}
		for sim.Now() < target {
			sim.Step() // not sim.Run: its returned Snapshot would allocate per chunk
		}
	}
	executed := sim.Now()
	sim.Release()
	rep := vt.Report()
	if cancelled {
		err := ctx.Err()
		v.Covered, v.CoverTime, v.MaxGap = rep.Covered, rep.CoverTime, rep.MaxGap
		v.Distinct = ct.Distinct()
		v.Outcome = "cancelled"
		v.Err = fmt.Sprintf("cancelled after %d of %d rounds: %v", executed, s.Horizon, err)
		v.OK = false
		return v, err
	}
	classify(&v, s, res, rep, ct.Distinct())
	return v, nil
}

// preparedRun is everything the oracle resolves for a spec before
// execution: the registered descriptors both the scalar and the lockstep
// paths judge the run by.
type preparedRun struct {
	reg  *Registry
	fam  FamilyDescriptor
	prop Property
	alg  robot.Algorithm
}

// prepareRun is the shared pre-execution half of the oracle: it derives
// the enforced expectation, validates the spec against the overrides, and
// resolves the property, family and algorithm. On failure the returned
// verdict is the error verdict RunWith would produce.
func prepareRun(s Spec, o RunOptions) (Verdict, preparedRun, error) {
	reg := o.registry()
	v := Verdict{ID: s.ID(), Spec: s, Expect: s.Expect, CoverTime: -1, Outcome: "error"}
	res := preparedRun{reg: reg}
	if v.Expect == "" {
		// Deriving the expectation requires a registered family — an
		// unregistered name is a loud error here, never a silent
		// fall-through to report-only. The one exception is an injected
		// Dynamics: its family is documented as a verdict label only, so
		// an unregistered label falls back to the family-independent
		// algorithm-threshold rule.
		exp, eerr := reg.Expectation(s)
		if eerr != nil {
			if o.Dynamics == nil {
				v.Err = eerr.Error()
				return v, res, eerr
			}
			exp = algorithmExpectation(s)
		}
		v.Expect = exp
	}
	if verr := validateForRun(s, o); verr != nil {
		v.Err = verr.Error()
		return v, res, verr
	}
	prop, ok := reg.Property(v.Expect)
	if !ok {
		perr := fmt.Errorf("scenario: unknown expectation %q (registered properties: %v)", v.Expect, reg.PropertyNames())
		v.Err = perr.Error()
		return v, res, perr
	}
	res.prop = prop
	// validateForRun established the family is registered except under a
	// Dynamics override, where an absent (label-only) family leaves the
	// zero descriptor: no pinned placements, no confinement limit.
	res.fam, _ = reg.Family(s.Family)
	res.alg = o.Algorithm
	if res.alg == nil {
		alg, aerr := reg.Algorithm(s.Algorithm)
		if aerr != nil {
			v.Err = aerr.Error()
			return v, res, aerr
		}
		res.alg = alg
	}
	return v, res, nil
}

// classify is the shared post-execution half of the oracle: it fills the
// verdict's metrics from the exploration report and judges the run by the
// registered property — identically for the scalar and lockstep engines.
func classify(v *Verdict, s Spec, res preparedRun, rep spec.ExplorationReport, distinct int) {
	v.Covered, v.CoverTime, v.MaxGap = rep.Covered, rep.CoverTime, rep.MaxGap
	v.Distinct = distinct

	exploreMsg := rep.ExploreViolation(2, s.Horizon/2)
	v.Outcome = "partial"
	if exploreMsg == "" {
		v.Outcome = "explored"
	}

	pr := res.prop.Check(PropertyInput{
		Spec:             s,
		Covered:          v.Covered,
		CoverTime:        v.CoverTime,
		MaxGap:           v.MaxGap,
		Distinct:         v.Distinct,
		ExploreViolation: exploreMsg,
		ConfineLimit:     res.fam.ConfineLimit,
	})
	v.OK = pr.OK
	if pr.Outcome != "" {
		v.Outcome = pr.Outcome
	}
	v.Violation = pr.Violation
}
